/**
 * @file
 * Unit and property tests for the discrete wavelet transform.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"
#include "dsp/dwt.hh"
#include "dsp/feature_pool.hh"

namespace
{

using namespace xpro;

double
maxAbsDiff(const std::vector<double> &a, const std::vector<double> &b)
{
    EXPECT_EQ(a.size(), b.size());
    double worst = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        worst = std::max(worst, std::fabs(a[i] - b[i]));
    return worst;
}

TEST(DwtTest, HaarStepOfConstant)
{
    const std::vector<double> flat(8, 1.0);
    const DwtLevel level = dwtStep(flat, Wavelet::Haar);
    ASSERT_EQ(level.approx.size(), 4u);
    for (double v : level.approx)
        EXPECT_NEAR(v, std::numbers::sqrt2, 1e-12);
    for (double v : level.detail)
        EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(DwtTest, HaarStepKnownValues)
{
    const std::vector<double> signal = {1.0, 3.0, 2.0, 4.0};
    const DwtLevel level = dwtStep(signal, Wavelet::Haar);
    const double s = 1.0 / std::numbers::sqrt2;
    EXPECT_NEAR(level.approx[0], (1.0 + 3.0) * s, 1e-12);
    EXPECT_NEAR(level.approx[1], (2.0 + 4.0) * s, 1e-12);
    EXPECT_NEAR(level.detail[0], (1.0 - 3.0) * s, 1e-12);
    EXPECT_NEAR(level.detail[1], (2.0 - 4.0) * s, 1e-12);
}

TEST(DwtTest, Db4SmoothSignalHasSmallDetails)
{
    std::vector<double> smooth(64);
    for (size_t i = 0; i < smooth.size(); ++i)
        smooth[i] = std::sin(2.0 * std::numbers::pi * i / 64.0);
    const DwtLevel level = dwtStep(smooth, Wavelet::Db4);
    double detail_energy = 0.0;
    double approx_energy = 0.0;
    for (double v : level.detail)
        detail_energy += v * v;
    for (double v : level.approx)
        approx_energy += v * v;
    EXPECT_LT(detail_energy, 0.01 * approx_energy);
}

TEST(DwtTest, StepPreservesEnergyHaar)
{
    Rng rng(71);
    std::vector<double> signal(32);
    for (double &v : signal)
        v = rng.gaussian();
    const DwtLevel level = dwtStep(signal, Wavelet::Haar);
    double in_energy = 0.0;
    for (double v : signal)
        in_energy += v * v;
    double out_energy = 0.0;
    for (double v : level.approx)
        out_energy += v * v;
    for (double v : level.detail)
        out_energy += v * v;
    EXPECT_NEAR(in_energy, out_energy, 1e-9);
}

TEST(DwtTest, OddLengthPanics)
{
    const std::vector<double> odd(7, 1.0);
    EXPECT_THROW(dwtStep(odd, Wavelet::Haar), PanicError);
}

TEST(DwtTest, DecompositionLengthsMatchPaper)
{
    // 128-sample frame, 5 levels -> details 64, 32, 16, 8, 4 and a
    // 4-sample approximation (paper Section 4.4).
    std::vector<double> frame(dwtFrameLength, 1.0);
    const DwtDecomposition decomp =
        dwtDecompose(frame, Wavelet::Db4, dwtLevels);
    ASSERT_EQ(decomp.detail.size(), 5u);
    EXPECT_EQ(decomp.detail[0].size(), 64u);
    EXPECT_EQ(decomp.detail[1].size(), 32u);
    EXPECT_EQ(decomp.detail[2].size(), 16u);
    EXPECT_EQ(decomp.detail[3].size(), 8u);
    EXPECT_EQ(decomp.detail[4].size(), 4u);
    EXPECT_EQ(decomp.approx.size(), 4u);
}

TEST(DwtTest, IndivisibleLengthPanics)
{
    const std::vector<double> signal(96, 0.0); // 96 / 32 = 3, ok to 5?
    // 96 is not divisible by 2^5 = 32 evenly? 96/32 = 3 exactly, so
    // use a genuinely indivisible length instead.
    const std::vector<double> bad(100, 0.0);
    EXPECT_NO_THROW(dwtDecompose(signal, Wavelet::Haar, 5));
    EXPECT_THROW(dwtDecompose(bad, Wavelet::Haar, 5), PanicError);
}

class DwtReconstructionTest
    : public ::testing::TestWithParam<std::tuple<Wavelet, size_t>>
{
};

TEST_P(DwtReconstructionTest, PerfectReconstruction)
{
    const auto [wavelet, levels] = GetParam();
    Rng rng(73 + levels);
    std::vector<double> signal(dwtFrameLength);
    for (double &v : signal)
        v = rng.gaussian(0.0, 2.0);

    const DwtDecomposition decomp =
        dwtDecompose(signal, wavelet, levels);
    const std::vector<double> restored =
        dwtReconstruct(decomp, wavelet);
    EXPECT_LT(maxAbsDiff(signal, restored), 1e-9)
        << waveletName(wavelet) << " levels=" << levels;
}

INSTANTIATE_TEST_SUITE_P(
    WaveletsAndLevels, DwtReconstructionTest,
    ::testing::Combine(::testing::Values(Wavelet::Haar, Wavelet::Db4),
                       ::testing::Values(size_t{1}, size_t{2},
                                         size_t{3}, size_t{4},
                                         size_t{5})));

TEST(DwtTest, SingleStepRoundTrip)
{
    Rng rng(75);
    std::vector<double> signal(16);
    for (double &v : signal)
        v = rng.uniform(-1.0, 1.0);
    for (Wavelet w : {Wavelet::Haar, Wavelet::Db4}) {
        const DwtLevel level = dwtStep(signal, w);
        const std::vector<double> back = idwtStep(level, w);
        EXPECT_LT(maxAbsDiff(signal, back), 1e-10) << waveletName(w);
    }
}

TEST(DwtTest, FramePadsShortSignals)
{
    std::vector<double> short_signal(82, 1.0);
    const std::vector<double> frame = frameForDwt(short_signal);
    ASSERT_EQ(frame.size(), dwtFrameLength);
    EXPECT_DOUBLE_EQ(frame[81], 1.0);
    EXPECT_DOUBLE_EQ(frame[82], 0.0);
    EXPECT_DOUBLE_EQ(frame[127], 0.0);
}

TEST(DwtTest, FrameTruncatesLongSignals)
{
    std::vector<double> long_signal(136);
    for (size_t i = 0; i < long_signal.size(); ++i)
        long_signal[i] = static_cast<double>(i);
    const std::vector<double> frame = frameForDwt(long_signal);
    ASSERT_EQ(frame.size(), dwtFrameLength);
    EXPECT_DOUBLE_EQ(frame[127], 127.0);
}

TEST(DwtTest, WaveletNames)
{
    EXPECT_EQ(waveletName(Wavelet::Haar), "Haar");
    EXPECT_EQ(waveletName(Wavelet::Db4), "Db4");
}

/** The deterministic probe shared by the golden-vector tests. */
std::vector<double>
goldenSignal()
{
    std::vector<double> signal(128);
    for (size_t i = 0; i < 128; ++i)
        signal[i] = std::sin(0.37 * double(i)) +
                    0.5 * std::cos(1.3 * double(i)) +
                    0.01 * double(i);
    return signal;
}

// Golden vectors captured from the scalar dwtStep() chain; the
// vectorized decomposition must keep reproducing them to the last
// bit across backend and compiler changes (the differential tests
// in test_hotpath_identity.cc prove SIMD == scalar; these pin the
// scalar values themselves against silent drift).
TEST(DwtTest, GoldenVectorsHaarTwoLevels)
{
    const DwtDecomposition decomp =
        dwtDecompose(goldenSignal(), Wavelet::Haar, 2);
    const double detail0[8] = {
        -0.0037935191826708459, -0.20993222419541585,
        -0.16223139259567887,   0.53977677926857759,
        -0.17423066300534626,   0.56258211023462434,
        -0.20512869709556925,   -0.16485421870920847,
    };
    const double approx[8] = {
        0.91697045740045213,  1.8867174595831355,
        -0.27061455282220898, -1.4330737587587672,
        0.54488981556824001,  2.0516439796369972,
        0.45664917512899306,  -1.0674776257659024,
    };
    ASSERT_EQ(decomp.detail[0].size(), 64u);
    ASSERT_EQ(decomp.approx.size(), 32u);
    for (size_t i = 0; i < 8; ++i) {
        EXPECT_EQ(decomp.detail[0][i], detail0[i]) << "detail " << i;
        EXPECT_EQ(decomp.approx[i], approx[i]) << "approx " << i;
    }
}

TEST(DwtTest, GoldenVectorsDb4TwoLevels)
{
    const DwtDecomposition decomp =
        dwtDecompose(goldenSignal(), Wavelet::Db4, 2);
    const double detail1[8] = {
        1.2379515461654214,   0.24819665201440402,
        -1.0346456870505429,  -0.89649484344831554,
        0.28211013397005713,  0.85551147908204339,
        0.37665311214455044,  -0.22315522726585424,
    };
    const double approx[8] = {
        1.2871106887661801,   1.5702786081595925,
        -0.84560187291130817, -1.3467986273010373,
        1.1805587909437707,   2.2642769898183563,
        0.00211432394615646,  -1.3970344552290634,
    };
    ASSERT_EQ(decomp.detail[1].size(), 32u);
    for (size_t i = 0; i < 8; ++i) {
        EXPECT_EQ(decomp.detail[1][i], detail1[i]) << "detail " << i;
        EXPECT_EQ(decomp.approx[i], approx[i]) << "approx " << i;
    }
}

} // namespace
