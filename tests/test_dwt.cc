/**
 * @file
 * Unit and property tests for the discrete wavelet transform.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"
#include "dsp/dwt.hh"
#include "dsp/feature_pool.hh"

namespace
{

using namespace xpro;

double
maxAbsDiff(const std::vector<double> &a, const std::vector<double> &b)
{
    EXPECT_EQ(a.size(), b.size());
    double worst = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        worst = std::max(worst, std::fabs(a[i] - b[i]));
    return worst;
}

TEST(DwtTest, HaarStepOfConstant)
{
    const std::vector<double> flat(8, 1.0);
    const DwtLevel level = dwtStep(flat, Wavelet::Haar);
    ASSERT_EQ(level.approx.size(), 4u);
    for (double v : level.approx)
        EXPECT_NEAR(v, std::numbers::sqrt2, 1e-12);
    for (double v : level.detail)
        EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(DwtTest, HaarStepKnownValues)
{
    const std::vector<double> signal = {1.0, 3.0, 2.0, 4.0};
    const DwtLevel level = dwtStep(signal, Wavelet::Haar);
    const double s = 1.0 / std::numbers::sqrt2;
    EXPECT_NEAR(level.approx[0], (1.0 + 3.0) * s, 1e-12);
    EXPECT_NEAR(level.approx[1], (2.0 + 4.0) * s, 1e-12);
    EXPECT_NEAR(level.detail[0], (1.0 - 3.0) * s, 1e-12);
    EXPECT_NEAR(level.detail[1], (2.0 - 4.0) * s, 1e-12);
}

TEST(DwtTest, Db4SmoothSignalHasSmallDetails)
{
    std::vector<double> smooth(64);
    for (size_t i = 0; i < smooth.size(); ++i)
        smooth[i] = std::sin(2.0 * std::numbers::pi * i / 64.0);
    const DwtLevel level = dwtStep(smooth, Wavelet::Db4);
    double detail_energy = 0.0;
    double approx_energy = 0.0;
    for (double v : level.detail)
        detail_energy += v * v;
    for (double v : level.approx)
        approx_energy += v * v;
    EXPECT_LT(detail_energy, 0.01 * approx_energy);
}

TEST(DwtTest, StepPreservesEnergyHaar)
{
    Rng rng(71);
    std::vector<double> signal(32);
    for (double &v : signal)
        v = rng.gaussian();
    const DwtLevel level = dwtStep(signal, Wavelet::Haar);
    double in_energy = 0.0;
    for (double v : signal)
        in_energy += v * v;
    double out_energy = 0.0;
    for (double v : level.approx)
        out_energy += v * v;
    for (double v : level.detail)
        out_energy += v * v;
    EXPECT_NEAR(in_energy, out_energy, 1e-9);
}

TEST(DwtTest, OddLengthPanics)
{
    const std::vector<double> odd(7, 1.0);
    EXPECT_THROW(dwtStep(odd, Wavelet::Haar), PanicError);
}

TEST(DwtTest, DecompositionLengthsMatchPaper)
{
    // 128-sample frame, 5 levels -> details 64, 32, 16, 8, 4 and a
    // 4-sample approximation (paper Section 4.4).
    std::vector<double> frame(dwtFrameLength, 1.0);
    const DwtDecomposition decomp =
        dwtDecompose(frame, Wavelet::Db4, dwtLevels);
    ASSERT_EQ(decomp.detail.size(), 5u);
    EXPECT_EQ(decomp.detail[0].size(), 64u);
    EXPECT_EQ(decomp.detail[1].size(), 32u);
    EXPECT_EQ(decomp.detail[2].size(), 16u);
    EXPECT_EQ(decomp.detail[3].size(), 8u);
    EXPECT_EQ(decomp.detail[4].size(), 4u);
    EXPECT_EQ(decomp.approx.size(), 4u);
}

TEST(DwtTest, IndivisibleLengthPanics)
{
    const std::vector<double> signal(96, 0.0); // 96 / 32 = 3, ok to 5?
    // 96 is not divisible by 2^5 = 32 evenly? 96/32 = 3 exactly, so
    // use a genuinely indivisible length instead.
    const std::vector<double> bad(100, 0.0);
    EXPECT_NO_THROW(dwtDecompose(signal, Wavelet::Haar, 5));
    EXPECT_THROW(dwtDecompose(bad, Wavelet::Haar, 5), PanicError);
}

class DwtReconstructionTest
    : public ::testing::TestWithParam<std::tuple<Wavelet, size_t>>
{
};

TEST_P(DwtReconstructionTest, PerfectReconstruction)
{
    const auto [wavelet, levels] = GetParam();
    Rng rng(73 + levels);
    std::vector<double> signal(dwtFrameLength);
    for (double &v : signal)
        v = rng.gaussian(0.0, 2.0);

    const DwtDecomposition decomp =
        dwtDecompose(signal, wavelet, levels);
    const std::vector<double> restored =
        dwtReconstruct(decomp, wavelet);
    EXPECT_LT(maxAbsDiff(signal, restored), 1e-9)
        << waveletName(wavelet) << " levels=" << levels;
}

INSTANTIATE_TEST_SUITE_P(
    WaveletsAndLevels, DwtReconstructionTest,
    ::testing::Combine(::testing::Values(Wavelet::Haar, Wavelet::Db4),
                       ::testing::Values(size_t{1}, size_t{2},
                                         size_t{3}, size_t{4},
                                         size_t{5})));

TEST(DwtTest, SingleStepRoundTrip)
{
    Rng rng(75);
    std::vector<double> signal(16);
    for (double &v : signal)
        v = rng.uniform(-1.0, 1.0);
    for (Wavelet w : {Wavelet::Haar, Wavelet::Db4}) {
        const DwtLevel level = dwtStep(signal, w);
        const std::vector<double> back = idwtStep(level, w);
        EXPECT_LT(maxAbsDiff(signal, back), 1e-10) << waveletName(w);
    }
}

TEST(DwtTest, FramePadsShortSignals)
{
    std::vector<double> short_signal(82, 1.0);
    const std::vector<double> frame = frameForDwt(short_signal);
    ASSERT_EQ(frame.size(), dwtFrameLength);
    EXPECT_DOUBLE_EQ(frame[81], 1.0);
    EXPECT_DOUBLE_EQ(frame[82], 0.0);
    EXPECT_DOUBLE_EQ(frame[127], 0.0);
}

TEST(DwtTest, FrameTruncatesLongSignals)
{
    std::vector<double> long_signal(136);
    for (size_t i = 0; i < long_signal.size(); ++i)
        long_signal[i] = static_cast<double>(i);
    const std::vector<double> frame = frameForDwt(long_signal);
    ASSERT_EQ(frame.size(), dwtFrameLength);
    EXPECT_DOUBLE_EQ(frame[127], 127.0);
}

TEST(DwtTest, WaveletNames)
{
    EXPECT_EQ(waveletName(Wavelet::Haar), "Haar");
    EXPECT_EQ(waveletName(Wavelet::Db4), "Db4");
}

} // namespace
