/**
 * @file
 * Unit tests for the per-event energy model (Eq. 1-3 semantics,
 * broadcast transfers, result delivery).
 */

#include <gtest/gtest.h>

#include "core/energy_model.hh"
#include "topology_fixtures.hh"

namespace
{

using namespace xpro;
using xpro::test::CellSpec;
using xpro::test::MiniTopology;
using xpro::test::chainTopology;

const WirelessLink link2(transceiver(WirelessModel::Model2));

TEST(EnergyModelTest, AllInSensorPaysComputePlusResult)
{
    const EngineTopology topo = chainTopology(100, 200, 50);
    const auto e = sensorEventEnergy(
        topo, Placement::allInSensor(topo), link2);
    EXPECT_NEAR(e.compute.nj(), 350.0, 1e-9);
    // Only the result leaves the sensor.
    const Energy result =
        link2.transfer(EngineTopology::resultBits).txEnergy;
    EXPECT_NEAR(e.tx.nj(), result.nj(), 1e-9);
    EXPECT_NEAR(e.rx.nj(), 0.0, 1e-9);
}

TEST(EnergyModelTest, AllInAggregatorPaysRawOnly)
{
    const EngineTopology topo = chainTopology(100, 200, 50, 2048);
    const auto e = sensorEventEnergy(
        topo, Placement::allInAggregator(topo), link2);
    EXPECT_NEAR(e.compute.nj(), 0.0, 1e-9);
    EXPECT_NEAR(e.tx.nj(), link2.transfer(2048).txEnergy.nj(), 1e-9);
    EXPECT_NEAR(e.rx.nj(), 0.0, 1e-9);
}

TEST(EnergyModelTest, MidChainCutPaysIntermediateTransfer)
{
    const EngineTopology topo = chainTopology(100, 200, 50, 2048);
    // Feature in sensor; svm and fusion offloaded.
    const Placement p =
        Placement::fromMask(topo, {true, true, false, false});
    const auto e = sensorEventEnergy(topo, p, link2);
    EXPECT_NEAR(e.compute.nj(), 100.0, 1e-9);
    EXPECT_NEAR(e.tx.nj(), link2.transfer(32).txEnergy.nj(), 1e-9);
}

TEST(EnergyModelTest, ReverseCrossingPaysReception)
{
    const EngineTopology topo = chainTopology(100, 200, 50, 2048);
    // Feature offloaded but svm+fusion kept in the sensor: the
    // sensor sends raw and receives the feature value back.
    const Placement p =
        Placement::fromMask(topo, {true, false, true, true});
    const auto e = sensorEventEnergy(topo, p, link2);
    EXPECT_NEAR(e.compute.nj(), 250.0, 1e-9);
    EXPECT_NEAR(e.tx.nj(),
                link2.transfer(2048).txEnergy.nj() +
                    link2.transfer(EngineTopology::resultBits)
                        .txEnergy.nj(),
                1e-9);
    EXPECT_NEAR(e.rx.nj(), link2.transfer(32).rxEnergy.nj(), 1e-9);
}

TEST(EnergyModelTest, BroadcastChargedOncePerFanout)
{
    // One feature feeding three SVM cells across the link.
    MiniTopology mini(1024);
    CellSpec spec;
    const size_t feature = mini.addCell(spec, ComponentKind::Var);
    const size_t s1 = mini.addCell(spec, ComponentKind::Svm);
    const size_t s2 = mini.addCell(spec, ComponentKind::Svm);
    const size_t s3 = mini.addCell(spec, ComponentKind::Svm);
    const size_t fusion = mini.addCell(spec);
    mini.connect(DataflowGraph::sourceId, feature);
    mini.connect(feature, s1);
    mini.connect(feature, s2);
    mini.connect(feature, s3);
    mini.connect(s1, fusion);
    mini.connect(s2, fusion);
    mini.connect(s3, fusion);
    const EngineTopology topo = mini.build(fusion);

    // Feature in sensor; all SVMs and fusion in the aggregator.
    const Placement p = Placement::fromMask(
        topo, {true, true, false, false, false, false});
    const auto e = sensorEventEnergy(topo, p, link2);
    // One broadcast of the 32-bit feature value, not three.
    EXPECT_NEAR(e.tx.nj(), link2.transfer(32).txEnergy.nj(), 1e-9);
}

TEST(EnergyModelTest, DistinctPayloadsAreSeparateBroadcasts)
{
    // A DWT-like producer with two bands read by different cells.
    MiniTopology mini(4096);
    CellSpec dwt;
    dwt.outputBits = 2048;
    const size_t dwt_node = mini.addCell(dwt, ComponentKind::Dwt);
    CellSpec spec;
    const size_t detail_reader = mini.addCell(spec);
    const size_t approx_reader = mini.addCell(spec);
    const size_t fusion = mini.addCell(spec);
    mini.connect(DataflowGraph::sourceId, dwt_node);
    mini.connect(dwt_node, detail_reader, 1024);
    mini.connect(dwt_node, approx_reader, 512);
    mini.connect(detail_reader, fusion);
    mini.connect(approx_reader, fusion);
    const EngineTopology topo = mini.build(fusion);

    const Placement p = Placement::fromMask(
        topo, {true, true, false, false, false});
    const auto e = sensorEventEnergy(topo, p, link2);
    EXPECT_NEAR(e.tx.nj(),
                link2.transfer(1024).txEnergy.nj() +
                    link2.transfer(512).txEnergy.nj(),
                1e-9);
}

TEST(EnergyModelTest, AggregatorMirrorsSensorTraffic)
{
    const EngineTopology topo = chainTopology(100, 200, 50, 2048);
    const Placement p =
        Placement::fromMask(topo, {true, true, false, false});
    const auto sensor = sensorEventEnergy(topo, p, link2);
    const auto agg = aggregatorEventEnergy(topo, p, link2);
    // svm(500) + fusion(500) software energy.
    EXPECT_NEAR(agg.compute.nj(), 1000.0, 1e-9);
    // The aggregator receives the one crossing transfer.
    EXPECT_NEAR(agg.radio.nj(), link2.transfer(32).rxEnergy.nj(),
                1e-9);
    EXPECT_GT(sensor.tx.nj(), 0.0);
}

TEST(EnergyModelTest, WirelessModelScalesTransferCosts)
{
    const EngineTopology topo = chainTopology(100, 200, 50, 2048);
    const Placement p = Placement::allInAggregator(topo);
    const WirelessLink link1(transceiver(WirelessModel::Model1));
    const WirelessLink link3(transceiver(WirelessModel::Model3));
    const double high =
        sensorEventEnergy(topo, p, link1).tx.nj();
    const double mid = sensorEventEnergy(topo, p, link2).tx.nj();
    const double low = sensorEventEnergy(topo, p, link3).tx.nj();
    EXPECT_GT(high, mid);
    EXPECT_GT(mid, low);
    EXPECT_NEAR(high / mid, 2.9 / 1.53, 1e-6);
}

} // namespace
