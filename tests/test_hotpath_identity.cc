/**
 * @file
 * Differential test harness for the allocation-free SIMD serving hot
 * path (ctest label `hotpath`). Every vectorized kernel is compared
 * against its retained scalar reference with EXACT equality — the
 * order-preserving SIMD contract (common/simd.hh) promises
 * bit-identical results, so no ULP slack appears anywhere in this
 * file. The same discipline covers the compiled serving pipeline
 * (HotPathPipeline vs TrainedPipeline), cross-user batching at every
 * batch size and worker count, and the fleet report bytes. The
 * counting allocator (alloc_count.hh) then pins the other half of
 * the contract: zero steady-state heap allocations per event.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "alloc_count.hh"
#include "common/arena.hh"
#include "common/matrix.hh"
#include "common/random.hh"
#include "common/simd.hh"
#include "core/pipeline.hh"
#include "data/testcases.hh"
#include "dsp/dwt.hh"
#include "dsp/feature_pool.hh"
#include "fleet/fleet.hh"
#include "ml/kernel.hh"
#include "serve/batch_server.hh"
#include "serve/hot_path.hh"

namespace
{

using namespace xpro;
using xpro::testing::AllocScope;

std::vector<double>
randomVector(Rng &rng, size_t n)
{
    std::vector<double> values(n);
    for (double &v : values)
        v = rng.uniform(-2.0, 2.0);
    return values;
}

FlatMatrix
randomMatrix(Rng &rng, size_t rows, size_t cols)
{
    FlatMatrix m(rows, cols);
    for (size_t i = 0; i < rows; ++i) {
        for (size_t j = 0; j < cols; ++j)
            m.rowData(i)[j] = rng.uniform(-2.0, 2.0);
    }
    return m;
}

// --- SIMD kernels vs scalar references ----------------------------

TEST(SimdKernelTest, BackendNameIsKnown)
{
    const std::string name = simdBackendName();
    EXPECT_TRUE(name == "generic" || name == "sse2" ||
                name == "avx2")
        << name;
}

TEST(SimdKernelTest, ScaleMatchesScalarReferenceExactly)
{
    Rng rng(40601);
    for (size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 13u, 64u, 100u}) {
        const std::vector<double> src = randomVector(rng, n);
        const double c = rng.uniform(-3.0, 3.0);
        std::vector<double> simd(n, -1.0), scalar(n, -1.0);
        simdScale(simd.data(), src.data(), c, n);
        scalar_ref::scale(scalar.data(), src.data(), c, n);
        EXPECT_EQ(0, std::memcmp(simd.data(), scalar.data(),
                                 n * sizeof(double)))
            << "n=" << n;
    }
}

TEST(SimdKernelTest, AxpyMatchesScalarReferenceExactly)
{
    Rng rng(40602);
    for (size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 13u, 64u, 100u}) {
        const std::vector<double> src = randomVector(rng, n);
        const std::vector<double> base = randomVector(rng, n);
        const double c = rng.uniform(-3.0, 3.0);
        std::vector<double> simd = base, scalar = base;
        simdAxpy(simd.data(), src.data(), c, n);
        scalar_ref::axpy(scalar.data(), src.data(), c, n);
        EXPECT_EQ(0, std::memcmp(simd.data(), scalar.data(),
                                 n * sizeof(double)))
            << "n=" << n;
    }
}

TEST(SimdKernelTest, DotPackedMatchesPerColumnScalarDots)
{
    Rng rng(40603);
    for (size_t n : {1u, 2u, 3u, 5u, 8u, 17u, 48u, 129u}) {
        for (size_t count = 1; count <= simdPackWidth; ++count) {
            std::vector<std::vector<double>> rows;
            std::vector<const double *> rowPtrs;
            for (size_t j = 0; j < count; ++j) {
                rows.push_back(randomVector(rng, n));
                rowPtrs.push_back(rows.back().data());
            }
            std::vector<double> packed(n * simdPackWidth);
            simdPackRows(rowPtrs.data(), count, n, packed.data());

            const std::vector<double> a = randomVector(rng, n);
            double lanes[simdPackWidth];
            simdDotPacked(a.data(), packed.data(), n, lanes);
            for (size_t j = 0; j < count; ++j) {
                EXPECT_EQ(lanes[j], scalar_ref::dot(a.data(),
                                                    rows[j].data(),
                                                    n))
                    << "n=" << n << " lane " << j;
            }
            // Zero-filled pad lanes produce exact zero dots.
            for (size_t j = count; j < simdPackWidth; ++j)
                EXPECT_EQ(lanes[j], 0.0);
        }
    }
}

TEST(SimdKernelTest, SquaredNormsPackedMatchesScalar)
{
    Rng rng(40604);
    for (size_t n : {1u, 2u, 7u, 8u, 31u, 96u}) {
        std::vector<std::vector<double>> rows;
        std::vector<const double *> rowPtrs;
        for (size_t j = 0; j < simdPackWidth; ++j) {
            rows.push_back(randomVector(rng, n));
            rowPtrs.push_back(rows.back().data());
        }
        std::vector<double> packed(n * simdPackWidth);
        simdPackRows(rowPtrs.data(), simdPackWidth, n,
                     packed.data());
        double lanes[simdPackWidth];
        simdSquaredNormsPacked(packed.data(), n, lanes);
        for (size_t j = 0; j < simdPackWidth; ++j) {
            EXPECT_EQ(lanes[j],
                      scalar_ref::squaredNorm(rows[j].data(), n))
                << "n=" << n << " lane " << j;
        }
    }
}

TEST(SimdKernelTest, ZScoreMatchesScalarReferenceExactly)
{
    Rng rng(50505);
    for (size_t n : {1u, 2u, 3u, 4u, 5u, 8u, 17u, 64u, 187u}) {
        const std::vector<double> src = randomVector(rng, n);
        const double mu = rng.uniform(-1.0, 1.0);
        const double sigma = rng.uniform(0.1, 3.0);
        std::vector<double> got(n, -1.0);
        std::vector<double> want(n, -2.0);
        simdZScore(got.data(), src.data(), mu, sigma, n);
        scalar_ref::zscore(want.data(), src.data(), mu, sigma, n);
        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(got[i], want[i]) << "n=" << n << " i=" << i;
    }
}

TEST(SimdKernelTest, PackedStatsKernelsMatchScalarReference)
{
    Rng rng(70707);
    for (size_t n : {1u, 2u, 3u, 8u, 64u, 187u}) {
        std::vector<std::vector<double>> rows;
        std::vector<const double *> rowPtrs;
        for (size_t j = 0; j < simdPackWidth; ++j) {
            rows.push_back(randomVector(rng, n));
            rowPtrs.push_back(rows.back().data());
        }
        std::vector<double> packed(n * simdPackWidth);
        simdPackRows(rowPtrs.data(), simdPackWidth, n,
                     packed.data());

        double mx[simdPackWidth], mn[simdPackWidth];
        double sum[simdPackWidth];
        double rmx[simdPackWidth], rmn[simdPackWidth];
        double rsum[simdPackWidth];
        simdMaxMinSumPacked(packed.data(), n, mx, mn, sum);
        scalar_ref::maxMinSumPacked(packed.data(), n, rmx, rmn,
                                    rsum);

        double mu[simdPackWidth], sigma[simdPackWidth];
        for (size_t j = 0; j < simdPackWidth; ++j) {
            mu[j] = rsum[j] / static_cast<double>(n);
            sigma[j] = rng.uniform(0.5, 2.0);
        }
        double acc[simdPackWidth], racc[simdPackWidth];
        simdCenteredSquareSumPacked(packed.data(), n, mu, acc);
        scalar_ref::centeredSquareSumPacked(packed.data(), n, mu,
                                            racc);
        double cz[simdPackWidth], rcz[simdPackWidth];
        simdSignCrossingsPacked(packed.data(), n, cz);
        scalar_ref::signCrossingsPacked(packed.data(), n, rcz);
        double a3[simdPackWidth], a4[simdPackWidth];
        double ra3[simdPackWidth], ra4[simdPackWidth];
        simdMoment34Packed(packed.data(), n, mu, sigma, a3, a4);
        scalar_ref::moment34Packed(packed.data(), n, mu, sigma, ra3,
                                   ra4);

        for (size_t j = 0; j < simdPackWidth; ++j) {
            EXPECT_EQ(mx[j], rmx[j]) << "max n=" << n << " j=" << j;
            EXPECT_EQ(mn[j], rmn[j]) << "min n=" << n << " j=" << j;
            EXPECT_EQ(sum[j], rsum[j])
                << "sum n=" << n << " j=" << j;
            EXPECT_EQ(acc[j], racc[j])
                << "var acc n=" << n << " j=" << j;
            EXPECT_EQ(cz[j], rcz[j])
                << "crossings n=" << n << " j=" << j;
            EXPECT_EQ(a3[j], ra3[j]) << "m3 n=" << n << " j=" << j;
            EXPECT_EQ(a4[j], ra4[j]) << "m4 n=" << n << " j=" << j;
        }
    }
}

// --- Fused statistics pass ----------------------------------------

TEST(FeatureIdentityTest, FusedAllKindsMatchesPerKindExactly)
{
    Rng rng(60606);
    for (size_t n : {1u, 2u, 7u, 64u, 100u, 187u}) {
        for (int trial = 0; trial < 8; ++trial) {
            const std::vector<double> signal = randomVector(rng, n);
            double fused[featureKindCount];
            computeAllKindsInto(signal.data(), n, fused);
            for (size_t k = 0; k < featureKindCount; ++k) {
                EXPECT_EQ(fused[k],
                          computeFeature(allFeatureKinds[k],
                                         signal.data(), n))
                    << "n=" << n << " kind "
                    << featureName(allFeatureKinds[k]);
            }
        }
    }
    // Near-constant signal: sigma < 1e-12 must zero skew/kurtosis
    // exactly like the per-kind references do.
    const std::vector<double> flat(64, 0.75);
    double fused[featureKindCount];
    computeAllKindsInto(flat.data(), flat.size(), fused);
    for (size_t k = 0; k < featureKindCount; ++k) {
        EXPECT_EQ(fused[k],
                  computeFeature(allFeatureKinds[k], flat.data(),
                                 flat.size()))
            << "flat signal, kind "
            << featureName(allFeatureKinds[k]);
    }
}

TEST(FeatureIdentityTest, PackedAllKindsMatchesPerLaneExactly)
{
    Rng rng(80808);
    for (size_t n : {1u, 2u, 8u, 64u, 187u}) {
        for (size_t lanes : {1u, 3u, 8u}) {
            std::vector<std::vector<double>> rows;
            std::vector<const double *> rowPtrs;
            for (size_t j = 0; j < lanes; ++j) {
                // Lane 1 gets a constant signal so the packed path
                // must reproduce the degenerate sigma < 1e-12
                // branch per lane.
                rows.push_back(j == 1
                                   ? std::vector<double>(n, 0.25)
                                   : randomVector(rng, n));
                rowPtrs.push_back(rows.back().data());
            }
            std::vector<double> packed(n * simdPackWidth);
            simdPackRows(rowPtrs.data(), lanes, n, packed.data());

            std::vector<double> out(lanes * featureKindCount,
                                    -7.0);
            computeAllKindsPacked(packed.data(), n, lanes,
                                  out.data(), featureKindCount);
            for (size_t j = 0; j < lanes; ++j) {
                double want[featureKindCount];
                computeAllKindsInto(rows[j].data(), n, want);
                for (size_t k = 0; k < featureKindCount; ++k) {
                    EXPECT_EQ(out[j * featureKindCount + k],
                              want[k])
                        << "n=" << n << " lanes=" << lanes
                        << " lane " << j << " kind "
                        << featureName(allFeatureKinds[k]);
                }
            }
        }
    }
}

// --- Arena --------------------------------------------------------

TEST(ArenaTest, AllocationsAreAlignedAndAccounted)
{
    Arena arena(256);
    size_t used = 0;
    for (size_t bytes : {1u, 7u, 16u, 33u, 250u}) {
        void *p = arena.alloc(bytes);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(reinterpret_cast<uintptr_t>(p) %
                      alignof(std::max_align_t),
                  0u);
        used += bytes;
        EXPECT_GE(arena.bytesUsed(), used);
    }
}

TEST(ArenaTest, ResetKeepsCapacityAndStopsAllocating)
{
    Arena arena(1 << 10);
    // Warmup: grow to the workload's high-water mark.
    for (int pass = 0; pass < 2; ++pass) {
        arena.reset();
        for (int i = 0; i < 40; ++i)
            arena.alloc<double>(17);
    }
    const size_t blocks = arena.blockCount();
    const size_t reserved = arena.bytesReserved();
    AllocScope scope;
    for (int pass = 0; pass < 10; ++pass) {
        arena.reset();
        for (int i = 0; i < 40; ++i) {
            double *p = arena.alloc<double>(17);
            p[0] = 1.0;
            p[16] = 2.0;
        }
    }
    EXPECT_EQ(scope.count(), 0u);
    EXPECT_EQ(arena.blockCount(), blocks);
    EXPECT_EQ(arena.bytesReserved(), reserved);
}

TEST(ArenaTest, OversizedRequestGetsItsOwnBlock)
{
    Arena arena(64);
    double *big = arena.alloc<double>(100); // 800 bytes > 64
    ASSERT_NE(big, nullptr);
    big[0] = 1.0;
    big[99] = 2.0;
    EXPECT_GE(arena.bytesReserved(), 800u);
}

// --- Blocked multiply and Gram vs scalar schedules ----------------

TEST(MatrixIdentityTest, MultiplyTransposedMatchesScalarDots)
{
    Rng rng(40610);
    for (int trial = 0; trial < 20; ++trial) {
        const size_t r1 = 1 + rng.below(20);
        const size_t r2 = 1 + rng.below(20);
        const size_t cols = 1 + rng.below(24);
        const FlatMatrix a = randomMatrix(rng, r1, cols);
        const FlatMatrix b = randomMatrix(rng, r2, cols);
        const FlatMatrix out = a.multiplyTransposed(b);
        ASSERT_EQ(out.size(), r1);
        ASSERT_EQ(out.cols(), r2);
        for (size_t i = 0; i < r1; ++i) {
            for (size_t j = 0; j < r2; ++j) {
                EXPECT_EQ(out.rowData(i)[j],
                          scalar_ref::dot(a.rowData(i),
                                          b.rowData(j), cols))
                    << "trial " << trial << " (" << i << ", " << j
                    << ")";
            }
        }
    }
}

TEST(MatrixIdentityTest, RowSquaredNormsMatchScalar)
{
    Rng rng(40611);
    for (int trial = 0; trial < 10; ++trial) {
        const size_t rows = 1 + rng.below(30);
        const size_t cols = 1 + rng.below(24);
        const FlatMatrix a = randomMatrix(rng, rows, cols);
        const std::vector<double> norms = a.rowSquaredNorms();
        ASSERT_EQ(norms.size(), rows);
        for (size_t i = 0; i < rows; ++i) {
            EXPECT_EQ(norms[i],
                      scalar_ref::squaredNorm(a.rowData(i), cols))
                << "trial " << trial << " row " << i;
        }
    }
}

TEST(KernelIdentityTest, RbfGramMatchesScalarParts)
{
    Rng rng(40620);
    Kernel kernel;
    kernel.kind = KernelKind::Rbf;
    kernel.gamma = 0.37;
    for (int trial = 0; trial < 10; ++trial) {
        const size_t r1 = 1 + rng.below(15);
        const size_t r2 = 1 + rng.below(15);
        const size_t cols = 1 + rng.below(16);
        const FlatMatrix a = randomMatrix(rng, r1, cols);
        const FlatMatrix b = randomMatrix(rng, r2, cols);
        const FlatMatrix gram = kernel.gram(a, b);
        for (size_t i = 0; i < r1; ++i) {
            const double xn =
                scalar_ref::squaredNorm(a.rowData(i), cols);
            for (size_t j = 0; j < r2; ++j) {
                const double zn =
                    scalar_ref::squaredNorm(b.rowData(j), cols);
                const double dot = scalar_ref::dot(
                    a.rowData(i), b.rowData(j), cols);
                EXPECT_EQ(gram.rowData(i)[j],
                          rbfFromParts(kernel.gamma, xn, zn, dot))
                    << "trial " << trial;
            }
        }
    }
}

TEST(KernelIdentityTest, LinearGramMatchesScalarDots)
{
    Rng rng(40621);
    Kernel kernel;
    kernel.kind = KernelKind::Linear;
    const FlatMatrix a = randomMatrix(rng, 9, 7);
    const FlatMatrix b = randomMatrix(rng, 5, 7);
    const FlatMatrix gram = kernel.gram(a, b);
    for (size_t i = 0; i < a.size(); ++i) {
        for (size_t j = 0; j < b.size(); ++j) {
            EXPECT_EQ(gram.rowData(i)[j],
                      scalar_ref::dot(a.rowData(i), b.rowData(j),
                                      7));
        }
    }
}

TEST(KernelIdentityTest, GramSymmetricMatchesGramExactly)
{
    Rng rng(40622);
    Kernel kernel;
    kernel.kind = KernelKind::Rbf;
    kernel.gamma = 1.1;
    for (size_t rows : {1u, 3u, 8u, 9u, 17u, 24u}) {
        const FlatMatrix a = randomMatrix(rng, rows, 11);
        const FlatMatrix full = kernel.gram(a, a);
        const FlatMatrix sym = kernel.gramSymmetric(a);
        ASSERT_EQ(sym.size(), rows);
        for (size_t i = 0; i < rows; ++i) {
            EXPECT_EQ(0, std::memcmp(sym.rowData(i),
                                     full.rowData(i),
                                     rows * sizeof(double)))
                << "rows=" << rows << " i=" << i;
        }
    }
}

// --- DWT: vectorized decomposition vs chained scalar steps --------

TEST(DwtIdentityTest, DecomposeMatchesChainedDwtStepExactly)
{
    Rng rng(40630);
    for (Wavelet wavelet : {Wavelet::Haar, Wavelet::Db4}) {
        for (size_t n : {16u, 32u, 64u, 128u, 256u}) {
            const size_t maxLevels =
                wavelet == Wavelet::Haar ? 4u : 3u;
            for (size_t levels = 1; levels <= maxLevels; ++levels) {
                const std::vector<double> signal =
                    randomVector(rng, n);

                // Scalar reference: chain the retained per-level
                // step.
                std::vector<std::vector<double>> refDetail;
                std::vector<double> approx = signal;
                for (size_t l = 0; l < levels; ++l) {
                    DwtLevel level = dwtStep(approx, wavelet);
                    refDetail.push_back(std::move(level.detail));
                    approx = std::move(level.approx);
                }

                DwtScratch scratch;
                scratch.decompose(signal.data(), n, wavelet,
                                  levels);
                ASSERT_EQ(scratch.levels(), levels);
                for (size_t l = 0; l < levels; ++l) {
                    ASSERT_EQ(scratch.detailSize(l),
                              refDetail[l].size());
                    EXPECT_EQ(0, std::memcmp(
                                     scratch.detailData(l),
                                     refDetail[l].data(),
                                     refDetail[l].size() *
                                         sizeof(double)))
                        << waveletName(wavelet) << " n=" << n
                        << " level " << l;
                }
                ASSERT_EQ(scratch.approxSize(), approx.size());
                EXPECT_EQ(0, std::memcmp(scratch.approxData(),
                                         approx.data(),
                                         approx.size() *
                                             sizeof(double)))
                    << waveletName(wavelet) << " n=" << n;

                // And the vector wrapper rides the same path.
                const DwtDecomposition decomp =
                    dwtDecompose(signal, wavelet, levels);
                for (size_t l = 0; l < levels; ++l)
                    EXPECT_EQ(decomp.detail[l], refDetail[l]);
                EXPECT_EQ(decomp.approx, approx);
            }
        }
    }
}

TEST(DwtIdentityTest, SteadyStateDecomposeIsAllocationFree)
{
    Rng rng(40631);
    const std::vector<double> signal = randomVector(rng, 128);
    DwtScratch scratch;
    scratch.decompose(signal.data(), 128, Wavelet::Db4, 5);
    AllocScope scope;
    for (int i = 0; i < 50; ++i)
        scratch.decompose(signal.data(), 128, Wavelet::Db4, 5);
    EXPECT_EQ(scope.count(), 0u);
}

// --- Feature extraction -------------------------------------------

TEST(FeatureIdentityTest, ExtractAllIntoMatchesExtractAll)
{
    Rng rng(40640);
    const FeatureExtractor extractor(Wavelet::Db4);
    DwtScratch scratch;
    for (size_t n : {100u, 128u, 132u, 187u}) {
        const std::vector<double> segment = randomVector(rng, n);
        const std::vector<double> reference =
            extractor.extractAll(segment);
        double fast[featurePoolSize];
        extractor.extractAllInto(segment.data(), n, fast, scratch);
        ASSERT_EQ(reference.size(), featurePoolSize);
        for (size_t f = 0; f < featurePoolSize; ++f)
            EXPECT_EQ(fast[f], reference[f]) << "n=" << n
                                             << " feature " << f;
    }
}

// --- Compiled hot path vs the trained pipeline --------------------

TrainedPipeline
trainTiny(TestCase testCase, uint64_t seed, size_t candidates,
          size_t maxSegments)
{
    const SignalDataset dataset = makeTestCase(testCase, seed);
    EngineConfig config;
    config.subspace.candidates = candidates;
    TrainingOptions options;
    options.maxTrainingSegments = maxSegments;
    options.seed = seed;
    return trainPipeline(dataset, config, options);
}

TEST(HotPathTest, ClassifyMatchesTrainedPipelineOnEverySegment)
{
    const uint64_t seed = 2017;
    const SignalDataset dataset = makeTestCase(TestCase::C1, seed);
    const TrainedPipeline pipeline =
        trainTiny(TestCase::C1, seed, 6, 60);
    const HotPathPipeline hot(pipeline);
    EXPECT_GT(hot.baseCount(), 0u);

    Arena arena;
    DwtScratch scratch;
    for (const Segment &segment : dataset.segments) {
        EXPECT_EQ(hot.classify(segment.samples, arena, scratch),
                  pipeline.classify(segment.samples));
    }
}

TEST(HotPathTest, ClassifyManyMatchesClassifyAtEveryGroupSize)
{
    const uint64_t seed = 2017;
    const SignalDataset dataset = makeTestCase(TestCase::C1, seed);
    const TrainedPipeline pipeline =
        trainTiny(TestCase::C1, seed, 6, 60);
    const HotPathPipeline hot(pipeline);

    Arena arena;
    DwtScratch scratch;
    Rng rng(90909);
    for (size_t count : {1u, 2u, 5u, 8u}) {
        const double *segments[simdPackWidth];
        size_t picked[simdPackWidth];
        const size_t n = dataset.segments.front().samples.size();
        for (size_t j = 0; j < count; ++j) {
            picked[j] = rng.below(dataset.segments.size());
            const Segment &segment = dataset.segments[picked[j]];
            ASSERT_EQ(segment.samples.size(), n);
            segments[j] = segment.samples.data();
        }
        int labels[simdPackWidth];
        hot.classifyMany(segments, count, n, labels, arena,
                         scratch);
        for (size_t j = 0; j < count; ++j) {
            EXPECT_EQ(labels[j],
                      pipeline.classify(
                          dataset.segments[picked[j]].samples))
                << "count=" << count << " lane " << j;
        }
    }
}

TEST(HotPathTest, SteadyStateClassifyIsAllocationFree)
{
    const TrainedPipeline pipeline =
        trainTiny(TestCase::C1, 2017, 6, 60);
    const HotPathPipeline hot(pipeline);
    const SignalDataset dataset = makeTestCase(TestCase::C1, 2017);

    Arena arena;
    DwtScratch scratch;
    // Warmup: grow arena and scratch to their high-water marks.
    for (size_t i = 0; i < 3 && i < dataset.segments.size(); ++i)
        hot.classify(dataset.segments[i].samples, arena, scratch);

    int sink = 0;
    AllocScope scope;
    for (const Segment &segment : dataset.segments) {
        sink += hot.classify(segment.samples.data(),
                             segment.samples.size(), arena,
                             scratch);
    }
    EXPECT_EQ(scope.count(), 0u)
        << "steady-state classify must not touch the heap";
    EXPECT_NE(sink, 12345); // keep the loop observable
}

// --- Cross-user batching ------------------------------------------

TEST(BatchServerTest, AnyBatchSizeAndWorkerCountIsBitIdentical)
{
    // Two users with different models and segment lengths.
    const TrainedPipeline p0 = trainTiny(TestCase::C1, 2017, 4, 40);
    const TrainedPipeline p1 = trainTiny(TestCase::E1, 2019, 4, 40);
    const SignalDataset d0 = makeTestCase(TestCase::C1, 2017);
    const SignalDataset d1 = makeTestCase(TestCase::E1, 2019);
    const HotPathPipeline h0(p0), h1(p1);

    Rng rng(40650);
    std::vector<ServingEvent> events;
    for (size_t e = 0; e < 57; ++e) {
        const uint32_t user = rng.chance(0.5) ? 0 : 1;
        const SignalDataset &data = user == 0 ? d0 : d1;
        const Segment &segment =
            data.segments[e % data.segments.size()];
        events.push_back({user, segment.samples.data(),
                          segment.samples.size()});
    }

    // Per-event oracle: each event alone through the trained
    // pipeline (the PR-3 batch-vs-per-sample discipline).
    std::vector<int> expected;
    for (const ServingEvent &event : events) {
        const TrainedPipeline &pipeline = event.user == 0 ? p0 : p1;
        expected.push_back(pipeline.classify(
            {event.segment, event.segment + event.length}));
    }

    for (size_t batch : {0u, 1u, 3u, 8u, 32u}) {
        for (size_t workers : {1u, 2u, 5u}) {
            BatchServer server({&h0, &h1}, batch, workers);
            EXPECT_EQ(server.serve(events), expected)
                << "batch=" << batch << " workers=" << workers;
        }
    }
}

TEST(BatchServerTest, SingleWorkerServeLoopIsAllocationFree)
{
    const TrainedPipeline pipeline =
        trainTiny(TestCase::C1, 2017, 4, 40);
    const SignalDataset dataset = makeTestCase(TestCase::C1, 2017);
    const HotPathPipeline hot(pipeline);

    std::vector<ServingEvent> events;
    for (size_t e = 0; e < 32; ++e) {
        const Segment &segment =
            dataset.segments[e % dataset.segments.size()];
        events.push_back({0, segment.samples.data(),
                          segment.samples.size()});
    }
    std::vector<int> out(events.size(), 0);

    BatchServer server({&hot}, 8, 1);
    server.serveInto(events.data(), events.size(), out.data());

    AllocScope scope;
    for (int pass = 0; pass < 5; ++pass)
        server.serveInto(events.data(), events.size(), out.data());
    EXPECT_EQ(scope.count(), 0u)
        << "inline steady-state serving must not touch the heap";
}

// --- Fleet serving phase ------------------------------------------

FleetConfig
servingFleetConfig(size_t batchEvents, size_t servingWorkers)
{
    FleetConfig config;
    config.nodes = heterogeneousFleet(2);
    for (FleetNodeSpec &node : config.nodes) {
        node.subspaceCandidates = 4;
        node.maxTrainingSegments = 40;
    }
    config.eventsPerNode = 2;
    config.servingEvents = 24;
    config.batchEvents = batchEvents;
    config.servingWorkers = servingWorkers;
    return config;
}

TEST(FleetServingTest, ReportBytesIdenticalAcrossBatchSettings)
{
    const FleetResult whole = runFleet(servingFleetConfig(0, 1));
    const std::string bytes = whole.report.serialize();
    EXPECT_NE(bytes.find("serving v1"), std::string::npos);

    const ServingReport &serving = whole.report.serving;
    EXPECT_TRUE(serving.enabled);
    EXPECT_EQ(serving.events, 24u);
    EXPECT_EQ(serving.users, 2u);
    ASSERT_EQ(serving.nodeEvents.size(), 2u);
    EXPECT_EQ(serving.nodeEvents[0] + serving.nodeEvents[1], 24u);

    // Any batch size x worker count must serialize byte for byte
    // the same: cross-user batching only reorders computation
    // between events, never inside one.
    for (const auto &[batch, workers] :
         {std::pair<size_t, size_t>{1, 1}, {3, 2}, {7, 5}}) {
        const FleetResult other =
            runFleet(servingFleetConfig(batch, workers));
        EXPECT_EQ(other.report.serialize(), bytes)
            << "batch=" << batch << " workers=" << workers;
    }
}

TEST(FleetServingTest, DisabledServingKeepsLegacyReportBytes)
{
    FleetConfig config = servingFleetConfig(0, 1);
    config.servingEvents = 0;
    const FleetResult result = runFleet(config);
    EXPECT_FALSE(result.report.serving.enabled);
    EXPECT_EQ(result.report.serialize().find("serving"),
              std::string::npos);
}

} // namespace
