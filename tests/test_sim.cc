/**
 * @file
 * Tests for the event-driven system simulator, including the
 * cross-validation invariants against the analytic models: energies
 * agree exactly; the simulated completion time is lower-bounded by
 * the analytic critical path and equals it absent radio contention.
 */

#include <gtest/gtest.h>

#include "alloc_count.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "core/delay_model.hh"
#include "core/partitioner.hh"
#include "sim/event_queue.hh"
#include "sim/system_sim.hh"
#include "topology_fixtures.hh"

namespace
{

using namespace xpro;
using xpro::test::CellSpec;
using xpro::test::MiniTopology;
using xpro::test::chainTopology;

const WirelessLink link2(transceiver(WirelessModel::Model2));

TEST(EventQueueTest, RunsInTimeOrder)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(Time::millis(3.0), [&] { order.push_back(3); });
    queue.schedule(Time::millis(1.0), [&] { order.push_back(1); });
    queue.schedule(Time::millis(2.0), [&] { order.push_back(2); });
    queue.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(queue.now().ms(), 3.0);
}

TEST(EventQueueTest, SimultaneousEventsKeepFifoOrder)
{
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        queue.schedule(Time::millis(1.0),
                       [&order, i] { order.push_back(i); });
    queue.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, HandlersMayScheduleMoreEvents)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(Time::millis(1.0), [&] {
        ++fired;
        queue.scheduleAfter(Time::millis(1.0), [&] { ++fired; });
    });
    queue.runAll();
    EXPECT_EQ(fired, 2);
    EXPECT_DOUBLE_EQ(queue.now().ms(), 2.0);
}

TEST(EventQueueTest, SchedulingIntoThePastPanics)
{
    EventQueue queue;
    queue.schedule(Time::millis(2.0), [&] {
        queue.schedule(Time::millis(1.0), [] {});
    });
    EXPECT_THROW(queue.runAll(), PanicError);
}

TEST(EventQueueTest, RunawayLoopIsCaught)
{
    EventQueue queue;
    std::function<void()> respawn = [&] {
        queue.scheduleAfter(Time::nanos(1.0), respawn);
    };
    queue.schedule(Time(), respawn);
    EXPECT_THROW(queue.runAll(100), PanicError);
}

TEST(SystemSimTest, EnergiesMatchAnalyticModelExactly)
{
    Rng rng(1301);
    for (int trial = 0; trial < 20; ++trial) {
        const EngineTopology topo = [&] {
            MiniTopology mini(512 + 64 * rng.below(16));
            CellSpec spec;
            std::vector<size_t> features;
            for (size_t i = 0; i < 1 + rng.below(3); ++i) {
                spec.sensorNj = rng.uniform(10.0, 2000.0);
                const size_t f = mini.addCell(spec);
                mini.connect(DataflowGraph::sourceId, f);
                features.push_back(f);
            }
            const size_t fusion = mini.addCell(spec);
            for (size_t f : features)
                mini.connect(f, fusion);
            return mini.build(fusion);
        }();

        // Random placement.
        std::vector<bool> mask(topo.graph.nodeCount());
        mask[DataflowGraph::sourceId] = true;
        for (size_t v = 1; v < mask.size(); ++v)
            mask[v] = rng.chance(0.5);
        const Placement p = Placement::fromMask(topo, mask);

        const SimResult sim = simulateEvent(topo, p, link2);
        const SensorEnergyBreakdown model =
            sensorEventEnergy(topo, p, link2);
        EXPECT_NEAR(sim.sensorEnergy.compute.nj(), model.compute.nj(),
                    1e-9)
            << "trial " << trial;
        EXPECT_NEAR(sim.sensorEnergy.tx.nj(), model.tx.nj(), 1e-9)
            << "trial " << trial;
        EXPECT_NEAR(sim.sensorEnergy.rx.nj(), model.rx.nj(), 1e-9)
            << "trial " << trial;
    }
}

TEST(SystemSimTest, CompletionLowerBoundedByCriticalPath)
{
    Rng rng(1303);
    for (int trial = 0; trial < 20; ++trial) {
        const EngineTopology topo = chainTopology(
            rng.uniform(10, 2000), rng.uniform(10, 2000),
            rng.uniform(10, 2000), 256 << rng.below(4));
        std::vector<bool> mask(topo.graph.nodeCount());
        mask[DataflowGraph::sourceId] = true;
        for (size_t v = 1; v < mask.size(); ++v)
            mask[v] = rng.chance(0.5);
        const Placement p = Placement::fromMask(topo, mask);

        const Time simulated =
            simulateEvent(topo, p, link2).completion;
        const Time analytic = eventDelay(topo, p, link2).total();
        EXPECT_GE(simulated.us() + 1e-9, analytic.us())
            << "trial " << trial;
    }
}

TEST(SystemSimTest, ChainWithoutContentionMatchesAnalyticExactly)
{
    // A pure chain has at most one in-flight transfer: simulation
    // and critical path must agree to the nanosecond.
    const EngineTopology topo = chainTopology(100, 200, 50, 2048);
    for (const Placement &p :
         {Placement::allInSensor(topo),
          Placement::allInAggregator(topo),
          Placement::fromMask(topo, {true, true, false, false})}) {
        const Time simulated =
            simulateEvent(topo, p, link2).completion;
        const Time analytic = eventDelay(topo, p, link2).total();
        EXPECT_NEAR(simulated.us(), analytic.us(), 1e-9);
    }
}

TEST(SystemSimTest, RadioContentionDelaysParallelTransfers)
{
    // Two equal branches crossing simultaneously: the second
    // transfer must wait for the first, so the simulated completion
    // exceeds the analytic (contention-free) critical path.
    MiniTopology mini(512);
    CellSpec spec;
    spec.sensorUs = 10.0;
    spec.outputBits = 4096;
    const size_t a = mini.addCell(spec);
    const size_t b = mini.addCell(spec);
    CellSpec join;
    join.aggregatorUs = 1.0;
    const size_t fusion = mini.addCell(join);
    mini.connect(DataflowGraph::sourceId, a);
    mini.connect(DataflowGraph::sourceId, b);
    mini.connect(a, fusion);
    mini.connect(b, fusion);
    const EngineTopology topo = mini.build(fusion);

    const Placement p =
        Placement::fromMask(topo, {true, true, true, false});
    const SimResult sim = simulateEvent(topo, p, link2);
    const Time analytic = eventDelay(topo, p, link2).total();
    const Time payload = link2.transfer(4096).airTime;
    EXPECT_NEAR(sim.completion.us(),
                analytic.us() + payload.us(), 1e-9);
    EXPECT_EQ(sim.transfers, 2u);
}

TEST(SystemSimTest, TraceRecordsActivity)
{
    const EngineTopology topo = chainTopology(100, 200, 50, 1024);
    const SimResult sim = simulateEvent(
        topo, Placement::fromMask(topo, {true, true, false, false}),
        link2);
    EXPECT_FALSE(sim.trace.empty());
    bool saw_radio = false;
    for (const TraceEntry &entry : sim.trace)
        saw_radio |= entry.what.find("radio") != std::string::npos;
    EXPECT_TRUE(saw_radio);
}

TEST(SystemSimTest, StreamMeetsRealTimeAtPaperRates)
{
    const EngineTopology topo = chainTopology(100, 200, 50, 4096);
    const StreamResult stream = simulateStream(
        topo, Placement::allInAggregator(topo), link2, 4.0, 20);
    EXPECT_EQ(stream.events, 20u);
    EXPECT_EQ(stream.deadlineMisses, 0u);
    EXPECT_LT(stream.worstLatency.ms(), 250.0);
}

TEST(SystemSimTest, StreamDetectsOverload)
{
    // Absurdly slow sensor cells at a high event rate must miss
    // deadlines.
    const EngineTopology topo = [&] {
        MiniTopology mini(256);
        CellSpec slow;
        slow.sensorUs = 400000.0; // 0.4 s per cell
        const size_t f = mini.addCell(slow);
        const size_t z = mini.addCell(slow);
        mini.connect(DataflowGraph::sourceId, f);
        mini.connect(f, z);
        return mini.build(z);
    }();
    const StreamResult stream = simulateStream(
        topo, Placement::allInSensor(topo), link2, 10.0, 5);
    EXPECT_GT(stream.deadlineMisses, 0u);
}

TEST(SystemSimTest, EventLoopAllocationsIndependentOfEventCount)
{
    // The steady-state event loop is allocation-free: every heap
    // allocation a stream run performs belongs to setup (flat
    // dataflow state, queue reserve), whose count does not depend
    // on how many events flow through. Equal totals across event
    // counts pin exactly that — one extra allocation per event
    // would show up as a difference of 30 here.
    const EngineTopology topo = chainTopology(100, 200, 50, 4096);
    const Placement placement = Placement::trivialCut(topo);
    const auto measure = [&](size_t events) {
        xpro::testing::AllocScope scope;
        simulateStream(topo, placement, link2, 4.0, events);
        return scope.count();
    };
    measure(5); // warm process-wide caches (tap tables, logging)
    const size_t few = measure(10);
    const size_t many = measure(40);
    EXPECT_EQ(few, many)
        << "the per-event loop must not touch the heap";
}

} // namespace
