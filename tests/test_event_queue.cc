/**
 * @file
 * Tests for the population-scale simulation kernel: the hierarchical
 * TimeWheel's (at, node, kind, data) pop order (independent of
 * insertion order — the determinism contract DESIGN.md §16 builds
 * on), cascade behavior across level boundaries and the far-overflow
 * horizon, window clamping, scheduling from inside a drain, and the
 * ShardedEventQueue's window loop at several worker counts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.hh"
#include "common/worker_pool.hh"
#include "sim/event_queue.hh"

namespace
{

using namespace xpro;

bool
wheelOrderLess(const WheelItem &a, const WheelItem &b)
{
    if (a.at != b.at)
        return a.at < b.at;
    if (a.node != b.node)
        return a.node < b.node;
    if (a.kind != b.kind)
        return a.kind < b.kind;
    return a.data < b.data;
}

std::vector<WheelItem>
drainAll(TimeWheel &wheel, uint64_t end)
{
    std::vector<WheelItem> popped;
    wheel.drainUntil(end,
                     [&](const WheelItem &item) { popped.push_back(item); });
    return popped;
}

void
expectSameItems(const std::vector<WheelItem> &actual,
                std::vector<WheelItem> expected)
{
    std::sort(expected.begin(), expected.end(), wheelOrderLess);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < actual.size(); ++i) {
        EXPECT_EQ(actual[i].at, expected[i].at) << "index " << i;
        EXPECT_EQ(actual[i].node, expected[i].node) << "index " << i;
        EXPECT_EQ(actual[i].kind, expected[i].kind) << "index " << i;
        EXPECT_EQ(actual[i].data, expected[i].data) << "index " << i;
    }
}

TEST(TimeWheelTest, PopsInTickOrderAgainstSortedReference)
{
    TimeWheel wheel;
    Rng rng(2017);
    std::vector<WheelItem> items;
    for (uint32_t i = 0; i < 2000; ++i) {
        WheelItem item;
        item.at = static_cast<uint64_t>(rng.below(1 << 20));
        item.node = static_cast<uint32_t>(rng.below(500));
        item.kind = static_cast<uint32_t>(rng.below(3));
        item.data = i;
        items.push_back(item);
        wheel.schedule(item);
    }
    EXPECT_EQ(wheel.pending(), items.size());
    expectSameItems(drainAll(wheel, uint64_t(1) << 21), items);
    EXPECT_TRUE(wheel.empty());
}

TEST(TimeWheelTest, PopOrderIndependentOfInsertionOrder)
{
    // Many items on the same tick, inserted forwards in one wheel
    // and backwards in another: both must pop in node-id order.
    std::vector<WheelItem> items;
    for (uint32_t n = 0; n < 64; ++n) {
        WheelItem item;
        item.at = 1000;
        item.node = 63 - n; // descending insertion
        item.kind = n % 2;
        item.data = n;
        items.push_back(item);
    }
    TimeWheel forwards;
    TimeWheel backwards;
    for (const WheelItem &item : items)
        forwards.schedule(item);
    for (auto it = items.rbegin(); it != items.rend(); ++it)
        backwards.schedule(*it);

    const std::vector<WheelItem> a = drainAll(forwards, 2000);
    const std::vector<WheelItem> b = drainAll(backwards, 2000);
    ASSERT_EQ(a.size(), items.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].node, b[i].node);
        EXPECT_EQ(a[i].node, i); // ascending node order
        EXPECT_EQ(a[i].data, b[i].data);
    }
}

TEST(TimeWheelTest, CascadesAcrossLevelBoundaries)
{
    // One item just below and one just above each level boundary
    // (256, 256^2, 256^3), plus one beyond the 256^4 horizon that
    // must take the far-overflow path.
    TimeWheel wheel;
    std::vector<WheelItem> items;
    uint32_t next_node = 0;
    for (uint64_t boundary :
         {uint64_t(1) << 8, uint64_t(1) << 16, uint64_t(1) << 24,
          uint64_t(1) << 32}) {
        for (uint64_t at : {boundary - 1, boundary, boundary + 1}) {
            WheelItem item;
            item.at = at;
            item.node = next_node++;
            items.push_back(item);
            wheel.schedule(item);
        }
    }
    expectSameItems(drainAll(wheel, uint64_t(1) << 34), items);
    EXPECT_TRUE(wheel.empty());
}

TEST(TimeWheelTest, FarOverflowRefilesWhenWheelCatchesUp)
{
    TimeWheel wheel;
    WheelItem far;
    far.at = (uint64_t(1) << 33) + 12345;
    far.node = 7;
    wheel.schedule(far);
    WheelItem near;
    near.at = 10;
    near.node = 1;
    wheel.schedule(near);

    std::vector<WheelItem> first = drainAll(wheel, 100);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0].node, 1u);
    EXPECT_EQ(wheel.pending(), 1u);

    std::vector<WheelItem> second =
        drainAll(wheel, (uint64_t(1) << 34));
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0].at, far.at);
    EXPECT_EQ(second[0].node, 7u);
    EXPECT_TRUE(wheel.empty());
}

TEST(TimeWheelTest, DrainUntilClampsToWindowEnd)
{
    TimeWheel wheel;
    for (uint64_t at : {5, 99, 100, 101, 250}) {
        WheelItem item;
        item.at = at;
        item.node = static_cast<uint32_t>(at);
        wheel.schedule(item);
    }
    // Window end is exclusive: at == 100 stays pending.
    const std::vector<WheelItem> popped = drainAll(wheel, 100);
    ASSERT_EQ(popped.size(), 2u);
    EXPECT_EQ(popped[0].at, 5u);
    EXPECT_EQ(popped[1].at, 99u);
    EXPECT_EQ(wheel.now(), 100u);
    EXPECT_EQ(wheel.pending(), 3u);

    const std::vector<WheelItem> rest = drainAll(wheel, 300);
    ASSERT_EQ(rest.size(), 3u);
    EXPECT_EQ(rest[0].at, 100u);
    EXPECT_EQ(wheel.now(), 300u);
}

TEST(TimeWheelTest, HandlerMayScheduleFollowUps)
{
    // Every popped item schedules a follow-up until a generation
    // budget runs out — including follow-ups that land in the same
    // level-0 slot one rotation later (the swap-out case).
    TimeWheel wheel;
    WheelItem seed;
    seed.at = 1;
    seed.node = 42;
    wheel.schedule(seed);
    size_t popped = 0;
    uint64_t last_at = 0;
    wheel.drainUntil(10000, [&](const WheelItem &item) {
        EXPECT_GE(item.at, last_at);
        last_at = item.at;
        ++popped;
        if (item.data < 20) {
            WheelItem next = item;
            next.at = item.at + 256; // same slot, next rotation
            next.data = item.data + 1;
            wheel.schedule(next);
        }
    });
    EXPECT_EQ(popped, 21u);
    EXPECT_TRUE(wheel.empty());
}

TEST(ShardedEventQueueTest, DrainsAllShardsAcrossWindows)
{
    // The same item set, sharded 1 vs 4 ways and drained with 1 vs 4
    // workers, must produce the same per-node pop sequence.
    Rng rng(99);
    std::vector<WheelItem> items;
    for (uint32_t i = 0; i < 1000; ++i) {
        WheelItem item;
        item.at = static_cast<uint64_t>(rng.below(50000));
        item.node = static_cast<uint32_t>(rng.below(64));
        item.data = i;
        items.push_back(item);
    }

    const auto runSharded = [&](size_t shards, size_t workers) {
        ShardedEventQueue queue(shards, 1000);
        for (const WheelItem &item : items)
            queue.shard(item.node % shards).schedule(item);
        // Per-node sequences: a merge keyed on stable ids, so the
        // result must not depend on the sharding.
        std::vector<std::vector<uint64_t>> per_node(64);
        size_t windows = 0;
        WorkerPool pool(workers);
        queue.run(pool,
                  [&](size_t, const WheelItem &item) {
                      per_node[item.node].push_back(
                          (item.at << 16) | item.data);
                  },
                  [&](uint64_t, uint64_t) { ++windows; });
        EXPECT_EQ(queue.pending(), 0u);
        EXPECT_EQ(windows, 50u); // max at 49999 -> window 49
        return per_node;
    };

    const auto reference = runSharded(1, 1);
    EXPECT_EQ(runSharded(4, 1), reference);
    EXPECT_EQ(runSharded(4, 4), reference);
    EXPECT_EQ(runSharded(16, 2), reference);

    size_t total = 0;
    for (const auto &seq : reference)
        total += seq.size();
    EXPECT_EQ(total, items.size());
}

} // namespace
