/**
 * @file
 * Tests for the population-scale simulation kernel: the hierarchical
 * TimeWheel's (at, node, kind, data) pop order (independent of
 * insertion order — the determinism contract DESIGN.md §16 builds
 * on), cascade behavior across level boundaries and the far-overflow
 * horizon, window clamping, scheduling from inside a drain, and the
 * ShardedEventQueue's window loop at several worker counts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.hh"
#include "common/worker_pool.hh"
#include "sim/event_queue.hh"

namespace
{

using namespace xpro;

bool
wheelOrderLess(const WheelItem &a, const WheelItem &b)
{
    if (a.at != b.at)
        return a.at < b.at;
    if (a.node != b.node)
        return a.node < b.node;
    if (a.kind != b.kind)
        return a.kind < b.kind;
    return a.data < b.data;
}

std::vector<WheelItem>
drainAll(TimeWheel &wheel, uint64_t end)
{
    std::vector<WheelItem> popped;
    wheel.drainUntil(end,
                     [&](const WheelItem &item) { popped.push_back(item); });
    return popped;
}

void
expectSameItems(const std::vector<WheelItem> &actual,
                std::vector<WheelItem> expected)
{
    std::sort(expected.begin(), expected.end(), wheelOrderLess);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < actual.size(); ++i) {
        EXPECT_EQ(actual[i].at, expected[i].at) << "index " << i;
        EXPECT_EQ(actual[i].node, expected[i].node) << "index " << i;
        EXPECT_EQ(actual[i].kind, expected[i].kind) << "index " << i;
        EXPECT_EQ(actual[i].data, expected[i].data) << "index " << i;
    }
}

TEST(TimeWheelTest, PopsInTickOrderAgainstSortedReference)
{
    TimeWheel wheel;
    Rng rng(2017);
    std::vector<WheelItem> items;
    for (uint32_t i = 0; i < 2000; ++i) {
        WheelItem item;
        item.at = static_cast<uint64_t>(rng.below(1 << 20));
        item.node = static_cast<uint32_t>(rng.below(500));
        item.kind = static_cast<uint32_t>(rng.below(3));
        item.data = i;
        items.push_back(item);
        wheel.schedule(item);
    }
    EXPECT_EQ(wheel.pending(), items.size());
    expectSameItems(drainAll(wheel, uint64_t(1) << 21), items);
    EXPECT_TRUE(wheel.empty());
}

TEST(TimeWheelTest, PopOrderIndependentOfInsertionOrder)
{
    // Many items on the same tick, inserted forwards in one wheel
    // and backwards in another: both must pop in node-id order.
    std::vector<WheelItem> items;
    for (uint32_t n = 0; n < 64; ++n) {
        WheelItem item;
        item.at = 1000;
        item.node = 63 - n; // descending insertion
        item.kind = n % 2;
        item.data = n;
        items.push_back(item);
    }
    TimeWheel forwards;
    TimeWheel backwards;
    for (const WheelItem &item : items)
        forwards.schedule(item);
    for (auto it = items.rbegin(); it != items.rend(); ++it)
        backwards.schedule(*it);

    const std::vector<WheelItem> a = drainAll(forwards, 2000);
    const std::vector<WheelItem> b = drainAll(backwards, 2000);
    ASSERT_EQ(a.size(), items.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].node, b[i].node);
        EXPECT_EQ(a[i].node, i); // ascending node order
        EXPECT_EQ(a[i].data, b[i].data);
    }
}

TEST(TimeWheelTest, CascadesAcrossLevelBoundaries)
{
    // One item just below and one just above each level boundary
    // (256, 256^2, 256^3), plus one beyond the 256^4 horizon that
    // must take the far-overflow path.
    TimeWheel wheel;
    std::vector<WheelItem> items;
    uint32_t next_node = 0;
    for (uint64_t boundary :
         {uint64_t(1) << 8, uint64_t(1) << 16, uint64_t(1) << 24,
          uint64_t(1) << 32}) {
        for (uint64_t at : {boundary - 1, boundary, boundary + 1}) {
            WheelItem item;
            item.at = at;
            item.node = next_node++;
            items.push_back(item);
            wheel.schedule(item);
        }
    }
    expectSameItems(drainAll(wheel, uint64_t(1) << 34), items);
    EXPECT_TRUE(wheel.empty());
}

TEST(TimeWheelTest, FarOverflowRefilesWhenWheelCatchesUp)
{
    TimeWheel wheel;
    WheelItem far;
    far.at = (uint64_t(1) << 33) + 12345;
    far.node = 7;
    wheel.schedule(far);
    WheelItem near;
    near.at = 10;
    near.node = 1;
    wheel.schedule(near);

    std::vector<WheelItem> first = drainAll(wheel, 100);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0].node, 1u);
    EXPECT_EQ(wheel.pending(), 1u);

    std::vector<WheelItem> second =
        drainAll(wheel, (uint64_t(1) << 34));
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0].at, far.at);
    EXPECT_EQ(second[0].node, 7u);
    EXPECT_TRUE(wheel.empty());
}

TEST(TimeWheelTest, DrainUntilClampsToWindowEnd)
{
    TimeWheel wheel;
    for (uint64_t at : {5, 99, 100, 101, 250}) {
        WheelItem item;
        item.at = at;
        item.node = static_cast<uint32_t>(at);
        wheel.schedule(item);
    }
    // Window end is exclusive: at == 100 stays pending.
    const std::vector<WheelItem> popped = drainAll(wheel, 100);
    ASSERT_EQ(popped.size(), 2u);
    EXPECT_EQ(popped[0].at, 5u);
    EXPECT_EQ(popped[1].at, 99u);
    EXPECT_EQ(wheel.now(), 100u);
    EXPECT_EQ(wheel.pending(), 3u);

    const std::vector<WheelItem> rest = drainAll(wheel, 300);
    ASSERT_EQ(rest.size(), 3u);
    EXPECT_EQ(rest[0].at, 100u);
    EXPECT_EQ(wheel.now(), 300u);
}

TEST(TimeWheelTest, HandlerMayScheduleFollowUps)
{
    // Every popped item schedules a follow-up until a generation
    // budget runs out — including follow-ups that land in the same
    // level-0 slot one rotation later (the swap-out case).
    TimeWheel wheel;
    WheelItem seed;
    seed.at = 1;
    seed.node = 42;
    wheel.schedule(seed);
    size_t popped = 0;
    uint64_t last_at = 0;
    wheel.drainUntil(10000, [&](const WheelItem &item) {
        EXPECT_GE(item.at, last_at);
        last_at = item.at;
        ++popped;
        if (item.data < 20) {
            WheelItem next = item;
            next.at = item.at + 256; // same slot, next rotation
            next.data = item.data + 1;
            wheel.schedule(next);
        }
    });
    EXPECT_EQ(popped, 21u);
    EXPECT_TRUE(wheel.empty());
}

TEST(ShardedEventQueueTest, DrainsAllShardsAcrossWindows)
{
    // The same item set, sharded 1 vs 4 ways and drained with 1 vs 4
    // workers, must produce the same per-node pop sequence.
    Rng rng(99);
    std::vector<WheelItem> items;
    for (uint32_t i = 0; i < 1000; ++i) {
        WheelItem item;
        item.at = static_cast<uint64_t>(rng.below(50000));
        item.node = static_cast<uint32_t>(rng.below(64));
        item.data = i;
        items.push_back(item);
    }

    const auto runSharded = [&](size_t shards, size_t workers) {
        ShardedEventQueue queue(shards, 1000);
        for (const WheelItem &item : items)
            queue.shard(item.node % shards).schedule(item);
        // Per-node sequences: a merge keyed on stable ids, so the
        // result must not depend on the sharding.
        std::vector<std::vector<uint64_t>> per_node(64);
        size_t windows = 0;
        WorkerPool pool(workers);
        queue.run(pool,
                  [&](size_t, const WheelItem &item) {
                      per_node[item.node].push_back(
                          (item.at << 16) | item.data);
                  },
                  [&](uint64_t, uint64_t) { ++windows; });
        EXPECT_EQ(queue.pending(), 0u);
        EXPECT_EQ(windows, 50u); // max at 49999 -> window 49
        return per_node;
    };

    const auto reference = runSharded(1, 1);
    EXPECT_EQ(runSharded(4, 1), reference);
    EXPECT_EQ(runSharded(4, 4), reference);
    EXPECT_EQ(runSharded(16, 2), reference);

    size_t total = 0;
    for (const auto &seq : reference)
        total += seq.size();
    EXPECT_EQ(total, items.size());
}

TEST(TimeWheelTest, ExtractIfRemovesMatchesAcrossAllLevels)
{
    // Matching items vanish from every residence — level-0 slots,
    // upper-level slots and the far-overflow vector — and the
    // survivors still pop in wheel order with a valid far minimum.
    TimeWheel wheel;
    std::vector<WheelItem> kept, taken;
    const uint64_t far_horizon = uint64_t(1) << 32;
    const uint64_t ats[] = {3,        700,      70000,
                            9000000,  far_horizon + 5,
                            far_horizon + 900000};
    uint32_t id = 0;
    for (uint64_t at : ats) {
        for (uint32_t node = 0; node < 2; ++node) {
            WheelItem item;
            item.at = at;
            item.node = node;
            item.data = id++;
            wheel.schedule(item);
            (node == 1 ? taken : kept).push_back(item);
        }
    }
    std::vector<WheelItem> out;
    wheel.extractIf(
        [](const WheelItem &item) { return item.node == 1; }, out);
    EXPECT_EQ(out.size(), taken.size());
    EXPECT_EQ(wheel.pending(), kept.size());
    expectSameItems(drainAll(wheel, far_horizon + 1000001), kept);
    EXPECT_TRUE(wheel.empty());
}

TEST(TimeWheelTest, ExtractIfOfEveryFarItemClearsFarMinimum)
{
    // Removing the whole far-overflow set must reset the cached
    // minimum; a later far item then establishes a fresh one and
    // still pops at its exact tick.
    TimeWheel wheel;
    WheelItem far;
    far.at = (uint64_t(1) << 32) + 42;
    far.node = 9;
    wheel.schedule(far);
    std::vector<WheelItem> out;
    wheel.extractIf([](const WheelItem &) { return true; }, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(wheel.empty());
    far.at = (uint64_t(1) << 33) + 7;
    wheel.schedule(far);
    const std::vector<WheelItem> popped =
        drainAll(wheel, far.at + 1);
    ASSERT_EQ(popped.size(), 1u);
    EXPECT_EQ(popped[0].at, far.at);
}

TEST(ShardedEventQueueTest, DropIfDiscardsTransportForDepartedNode)
{
    // The removed-node contract's drop arm: in-flight transport
    // items (kind != 0) addressed to the departed node disappear,
    // self-injects (kind == 0) and other nodes' items survive.
    ShardedEventQueue queue(4, 1000);
    for (uint32_t i = 0; i < 40; ++i) {
        WheelItem item;
        item.at = 10 + i;
        item.node = i % 4;
        item.kind = static_cast<uint8_t>((i / 4) % 2); // 0 or 1
        item.data = i;
        queue.shard(item.node % 4).schedule(item);
    }
    const uint32_t departed = 3;
    const size_t dropped = queue.dropIf([&](const WheelItem &item) {
        return item.node == departed && item.kind != 0;
    });
    EXPECT_EQ(dropped, 5u); // half of node 3's ten items are kind 1
    EXPECT_EQ(queue.pending(), 35u);
    size_t departed_pops = 0;
    WorkerPool pool(1);
    queue.run(pool,
              [&](size_t, const WheelItem &item) {
                  if (item.node == departed) {
                      EXPECT_EQ(item.kind, 0);
                      ++departed_pops;
                  }
              },
              [](uint64_t, uint64_t) {});
    EXPECT_EQ(departed_pops, 5u); // the kind-0 self-injects remain
}

TEST(ShardedEventQueueTest, RekeyIfMovesItemsAcrossShardsAndTicks)
{
    // The redirect arm: a migrated node's items follow it to the
    // new shard, possibly at a later tick, and pop exactly once.
    ShardedEventQueue queue(4, 1000);
    const uint32_t mover = 2;
    for (uint32_t i = 0; i < 12; ++i) {
        WheelItem item;
        item.at = 5 + i;
        item.node = i % 4;
        item.data = i;
        queue.shard(item.node % 4).schedule(item);
    }
    const size_t moved = queue.rekeyIf(
        [&](const WheelItem &item) { return item.node == mover; },
        [&](WheelItem &item) {
            item.at += 2500; // into a later window
            return size_t(0); // re-home onto shard 0
        });
    EXPECT_EQ(moved, 3u);
    EXPECT_EQ(queue.pending(), 12u); // moved, not dropped
    std::vector<std::pair<size_t, uint64_t>> mover_pops;
    WorkerPool pool(1);
    queue.run(pool,
              [&](size_t s, const WheelItem &item) {
                  if (item.node == mover)
                      mover_pops.push_back({s, item.at});
              },
              [](uint64_t, uint64_t) {});
    ASSERT_EQ(mover_pops.size(), 3u);
    for (const auto &[s, at] : mover_pops) {
        EXPECT_EQ(s, 0u);
        EXPECT_GE(at, 2505u);
    }
}

TEST(ShardedEventQueueTest, RekeyIfAppliesOnceWhenTargetStillMatches)
{
    // All matches are extracted before any is re-filed: a predicate
    // that keeps matching the moved items (the common "flag by
    // node" case) must not see them a second time, even when the
    // target shard was already scanned.
    ShardedEventQueue queue(2, 1000);
    for (uint32_t i = 0; i < 8; ++i) {
        WheelItem item;
        item.at = 1 + i;
        item.node = 7; // every item matches, both shards populated
        item.data = i;
        queue.shard(i % 2).schedule(item);
    }
    size_t calls = 0;
    const size_t moved = queue.rekeyIf(
        [](const WheelItem &item) { return item.node == 7; },
        [&](WheelItem &item) {
            ++calls;
            item.at += 10;
            return size_t(0); // shard 0 — scanned first
        });
    EXPECT_EQ(moved, 8u);
    EXPECT_EQ(calls, 8u);
    EXPECT_EQ(queue.pending(), 8u);
}

} // namespace
