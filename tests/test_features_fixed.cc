/**
 * @file
 * Tests that the Q16.16 feature datapath tracks the double-precision
 * reference within quantization error, on signals with the dynamic
 * range of normalized biosignals.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"
#include "dsp/features.hh"
#include "dsp/features_fixed.hh"

namespace
{

using namespace xpro;

std::vector<double>
randomSignal(Rng &rng, size_t n, double amplitude)
{
    std::vector<double> signal(n);
    for (double &v : signal)
        v = rng.gaussian(0.0, amplitude);
    return signal;
}

TEST(FeaturesFixedTest, QuantizeRoundTrips)
{
    const std::vector<double> signal = {0.5, -1.25, 3.75};
    const std::vector<Fixed> q = quantizeSignal(signal);
    ASSERT_EQ(q.size(), 3u);
    for (size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(q[i].toDouble(), signal[i], 1.0 / 65536.0);
}

TEST(FeaturesFixedTest, MaxMinExactOnGrid)
{
    const std::vector<double> signal = {0.5, -1.5, 2.0, 0.25};
    const auto q = quantizeSignal(signal);
    EXPECT_DOUBLE_EQ(fixedMax(q).toDouble(), 2.0);
    EXPECT_DOUBLE_EQ(fixedMin(q).toDouble(), -1.5);
}

TEST(FeaturesFixedTest, CzeroMatchesReferenceExactly)
{
    Rng rng(31);
    for (int trial = 0; trial < 20; ++trial) {
        const auto signal = randomSignal(rng, 128, 1.0);
        const auto q = quantizeSignal(signal);
        EXPECT_DOUBLE_EQ(fixedCzero(q).toDouble(),
                         featureCzero(signal));
    }
}

TEST(FeaturesFixedTest, MeanTracksReference)
{
    Rng rng(33);
    for (int trial = 0; trial < 20; ++trial) {
        const auto signal = randomSignal(rng, 128, 2.0);
        const auto q = quantizeSignal(signal);
        EXPECT_NEAR(fixedMean(q).toDouble(), featureMean(signal), 1e-3);
    }
}

TEST(FeaturesFixedTest, VarAndStdTrackReference)
{
    Rng rng(35);
    for (int trial = 0; trial < 20; ++trial) {
        const auto signal = randomSignal(rng, 128, 2.0);
        const auto q = quantizeSignal(signal);
        const double var_ref = featureVar(signal);
        EXPECT_NEAR(fixedVar(q).toDouble(), var_ref,
                    1e-3 * (1.0 + var_ref));
        EXPECT_NEAR(fixedStd(q).toDouble(), std::sqrt(var_ref), 1e-2);
    }
}

TEST(FeaturesFixedTest, SkewKurtTrackReference)
{
    Rng rng(37);
    for (int trial = 0; trial < 20; ++trial) {
        const auto signal = randomSignal(rng, 128, 1.0);
        const auto q = quantizeSignal(signal);
        // Division-heavy z-score path accumulates more error.
        EXPECT_NEAR(fixedSkew(q).toDouble(), featureSkew(signal), 0.05);
        EXPECT_NEAR(fixedKurt(q).toDouble(), featureKurt(signal), 0.1);
    }
}

TEST(FeaturesFixedTest, ConstantSignalDegenerates)
{
    const std::vector<Fixed> flat(16, Fixed::fromDouble(3.0));
    EXPECT_EQ(fixedVar(flat).raw(), 0);
    EXPECT_EQ(fixedStd(flat).raw(), 0);
    EXPECT_EQ(fixedSkew(flat).raw(), 0);
    EXPECT_EQ(fixedKurt(flat).raw(), 0);
}

TEST(FeaturesFixedTest, StdIsSqrtOfVar)
{
    // The Std cell reuses the Var cell output (paper Fig. 5); verify
    // the composition identity on the fixed grid.
    Rng rng(39);
    for (int trial = 0; trial < 10; ++trial) {
        const auto q = quantizeSignal(randomSignal(rng, 64, 3.0));
        EXPECT_EQ(fixedStd(q).raw(), fixedVar(q).sqrt().raw());
    }
}

TEST(FeaturesFixedTest, DispatchMatchesDirect)
{
    Rng rng(41);
    const auto q = quantizeSignal(randomSignal(rng, 64, 1.0));
    EXPECT_EQ(computeFixedFeature(FeatureKind::Max, q).raw(),
              fixedMax(q).raw());
    EXPECT_EQ(computeFixedFeature(FeatureKind::Var, q).raw(),
              fixedVar(q).raw());
    EXPECT_EQ(computeFixedFeature(FeatureKind::Kurt, q).raw(),
              fixedKurt(q).raw());
}

/** Parameterized sweep across segment lengths used by the 6 cases. */
class FixedFeatureSweepTest
    : public ::testing::TestWithParam<size_t>
{
};

TEST_P(FixedFeatureSweepTest, AllFeaturesTrackReference)
{
    Rng rng(1000 + GetParam());
    const auto signal = randomSignal(rng, GetParam(), 1.5);
    const auto q = quantizeSignal(signal);
    for (FeatureKind kind : allFeatureKinds) {
        const double ref = computeFeature(kind, signal);
        const double fixed = computeFixedFeature(kind, q).toDouble();
        EXPECT_NEAR(fixed, ref, 0.1 * (1.0 + std::fabs(ref)))
            << featureName(kind) << " at length " << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(SegmentLengths, FixedFeatureSweepTest,
                         ::testing::Values(82, 128, 132, 136));

} // namespace
