/**
 * @file
 * Unit tests for platform models (battery, sensor node, aggregator)
 * and the engine evaluator.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/evaluator.hh"
#include "topology_fixtures.hh"

namespace
{

using namespace xpro;
using xpro::test::chainTopology;

const WirelessLink link2(transceiver(WirelessModel::Model2));

TEST(BatteryTest, NominalEnergyMatchesCapacity)
{
    const Battery battery(40.0, 3.7);
    EXPECT_NEAR(battery.nominalEnergy().j(), 40.0 * 3.6 * 3.7, 1e-9);
}

TEST(BatteryTest, LifetimeInverselyProportionalToLoad)
{
    const Battery battery = Battery::sensorNodeBattery();
    const Time light = battery.lifetime(Power::micros(10.0));
    const Time heavy = battery.lifetime(Power::micros(100.0));
    EXPECT_GT(light, heavy);
    // Rate derating makes the heavy load slightly worse than 10x.
    EXPECT_GT(light / heavy, 9.99);
}

TEST(BatteryTest, RateDeratingReducesUsableEnergy)
{
    const Battery battery(40.0, 3.7, 0.9, 0.05);
    const Energy trickle = battery.usableEnergy(Power::micros(1.0));
    const Energy heavy = battery.usableEnergy(Power::watts(0.148));
    EXPECT_GT(trickle, heavy);
}

TEST(BatteryTest, InvalidParametersPanic)
{
    EXPECT_THROW(Battery(0.0, 3.7), PanicError);
    EXPECT_THROW(Battery(40.0, 3.7, 1.5), PanicError);
}

TEST(SensorNodeTest, PowerCombinesSensingAndEvents)
{
    SensorNodeConfig config;
    config.sensingPower = Power::micros(2.0);
    const SensorNode node(config);
    const Power p = node.averagePower(Energy::micros(4.0), 5.0);
    EXPECT_NEAR(p.uw(), 2.0 + 20.0, 1e-9);
}

TEST(SensorNodeTest, LifetimeDropsWithEventEnergy)
{
    const SensorNode node;
    EXPECT_GT(node.lifetime(Energy::micros(1.0), 4.0),
              node.lifetime(Energy::micros(10.0), 4.0));
}

TEST(AggregatorCpuTest, SoftwareCostsScaleWithWork)
{
    const AggregatorCpu cpu;
    CellWorkload small;
    small.count(AluOp::Mul) = 100;
    CellWorkload large;
    large.count(AluOp::Mul) = 1000;
    EXPECT_NEAR(cpu.run(large).energy / cpu.run(small).energy, 10.0,
                1e-9);
    EXPECT_EQ(cpu.run(small).cycles, 300u);
}

TEST(AggregatorCpuTest, SuperComputationCostsMoreCycles)
{
    EXPECT_GT(AggregatorCpu::opCycles(AluOp::Exp),
              AggregatorCpu::opCycles(AluOp::Mul));
    EXPECT_GT(AggregatorCpu::opCycles(AluOp::Div),
              AggregatorCpu::opCycles(AluOp::Add));
}

TEST(EvaluatorTest, EvaluationFieldsAreConsistent)
{
    const EngineTopology topo = chainTopology(100, 200, 50, 2048);
    const SensorNode sensor;
    const Aggregator aggregator;
    const WorkloadContext workload{4.0};
    const EngineEvaluation eval = evaluateEngineKind(
        EngineKind::InSensor, topo, link2, sensor, aggregator,
        workload);
    EXPECT_EQ(eval.kind, EngineKind::InSensor);
    EXPECT_EQ(eval.placement.sensorCellCount(),
              topo.graph.cellCount());
    EXPECT_GT(eval.sensorLifetime.hr(), 0.0);
    EXPECT_GT(eval.aggregatorLifetime.hr(), 0.0);
    EXPECT_NEAR(eval.sensorEnergy.total().nj(),
                sensorEventEnergy(topo,
                                  Placement::allInSensor(topo),
                                  link2)
                    .total()
                    .nj(),
                1e-9);
}

TEST(EvaluatorTest, LowerSensorEnergyMeansLongerLifetime)
{
    const EngineTopology topo = chainTopology(100, 9000, 9000, 512);
    const SensorNode sensor;
    const Aggregator aggregator;
    const WorkloadContext workload{4.0};
    const auto a = evaluateEngineKind(EngineKind::InAggregator, topo,
                                      link2, sensor, aggregator,
                                      workload);
    const auto s = evaluateEngineKind(EngineKind::InSensor, topo,
                                      link2, sensor, aggregator,
                                      workload);
    EXPECT_LT(a.sensorEnergy.total(), s.sensorEnergy.total());
    EXPECT_GT(a.sensorLifetime, s.sensorLifetime);
}

TEST(EvaluatorTest, CrossEndNeverHasShorterLifetimeUnconstrained)
{
    const EngineTopology topo = chainTopology(300, 700, 100, 4096);
    const SensorNode sensor;
    const Aggregator aggregator;
    const WorkloadContext workload{4.0};
    const auto c =
        evaluateEngineKind(EngineKind::CrossEnd, topo, link2, sensor,
                           aggregator, workload);
    const auto a = evaluateEngineKind(EngineKind::InAggregator, topo,
                                      link2, sensor, aggregator,
                                      workload);
    const auto s = evaluateEngineKind(EngineKind::InSensor, topo,
                                      link2, sensor, aggregator,
                                      workload);
    // The delay constraint can exclude the cheaper single end, but
    // XPro must always at least match the faster one.
    const double limit =
        std::min(a.delay.total().us(), s.delay.total().us());
    EXPECT_LE(c.delay.total().us(), limit + 1e-6);
    EXPECT_GE(c.sensorLifetime.hr() + 1e-9,
              std::min(a.sensorLifetime.hr(), s.sensorLifetime.hr()));
}

TEST(EvaluatorTest, AggregatorOverheadDependsOnPlacement)
{
    const EngineTopology topo = chainTopology(100, 200, 50, 2048);
    const SensorNode sensor;
    const Aggregator aggregator;
    const WorkloadContext workload{4.0};
    const auto a = evaluateEngineKind(EngineKind::InAggregator, topo,
                                      link2, sensor, aggregator,
                                      workload);
    const auto s = evaluateEngineKind(EngineKind::InSensor, topo,
                                      link2, sensor, aggregator,
                                      workload);
    // All software cells on the aggregator in A, none in S.
    EXPECT_GT(a.aggregatorEnergy.compute.nj(), 0.0);
    EXPECT_NEAR(s.aggregatorEnergy.compute.nj(), 0.0, 1e-9);
    EXPECT_LT(s.aggregatorEnergy.total(), a.aggregatorEnergy.total());
}

TEST(EvaluatorTest, ZeroEventRatePanics)
{
    const EngineTopology topo = chainTopology(100, 200, 50);
    const SensorNode sensor;
    const Aggregator aggregator;
    EXPECT_THROW(
        evaluateEngineKind(EngineKind::InSensor, topo, link2, sensor,
                           aggregator, WorkloadContext{0.0}),
        PanicError);
}

} // namespace
