/**
 * @file
 * Unit tests for the logging and error-reporting facilities.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/logging.hh"

namespace
{

std::vector<std::pair<xpro::LogLevel, std::string>> capturedMessages;

void
captureSink(xpro::LogLevel level, const std::string &message)
{
    capturedMessages.emplace_back(level, message);
}

class LoggingTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        capturedMessages.clear();
        _previous = xpro::setLogSink(captureSink);
    }

    void TearDown() override { xpro::setLogSink(_previous); }

  private:
    xpro::LogSink _previous = nullptr;
};

TEST_F(LoggingTest, FatalThrowsFatalError)
{
    EXPECT_THROW(xpro::fatal("bad config value %d", 42),
                 xpro::FatalError);
    ASSERT_EQ(capturedMessages.size(), 1u);
    EXPECT_EQ(capturedMessages[0].first, xpro::LogLevel::Fatal);
    EXPECT_EQ(capturedMessages[0].second, "bad config value 42");
}

TEST_F(LoggingTest, PanicThrowsPanicError)
{
    EXPECT_THROW(xpro::panic("impossible state %s", "reached"),
                 xpro::PanicError);
    ASSERT_EQ(capturedMessages.size(), 1u);
    EXPECT_EQ(capturedMessages[0].first, xpro::LogLevel::Panic);
}

TEST_F(LoggingTest, FatalErrorIsNotPanicError)
{
    try {
        xpro::fatal("user error");
        FAIL() << "fatal() returned";
    } catch (const xpro::PanicError &) {
        FAIL() << "fatal() threw PanicError";
    } catch (const xpro::FatalError &e) {
        EXPECT_STREQ(e.what(), "user error");
    }
}

TEST_F(LoggingTest, WarnAndInformDoNotThrow)
{
    EXPECT_NO_THROW(xpro::warn("watch out: %d", 1));
    EXPECT_NO_THROW(xpro::inform("status %s", "ok"));
    ASSERT_EQ(capturedMessages.size(), 2u);
    EXPECT_EQ(capturedMessages[0].first, xpro::LogLevel::Warn);
    EXPECT_EQ(capturedMessages[1].first, xpro::LogLevel::Inform);
}

TEST_F(LoggingTest, AssertPassesOnTrueCondition)
{
    EXPECT_NO_THROW(xproAssert(1 + 1 == 2, "math broke"));
    EXPECT_TRUE(capturedMessages.empty());
}

TEST_F(LoggingTest, AssertThrowsWithConditionText)
{
    try {
        xproAssert(2 > 3, "values %d and %d", 2, 3);
        FAIL() << "assert did not throw";
    } catch (const xpro::PanicError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("2 > 3"), std::string::npos);
        EXPECT_NE(what.find("values 2 and 3"), std::string::npos);
    }
}

TEST_F(LoggingTest, AssertToleratesPercentInCondition)
{
    // The condition text must not be interpreted as a format string.
    const int n = 5;
    try {
        xproAssert(n % 2 == 0, "n was %d", n);
        FAIL() << "assert did not throw";
    } catch (const xpro::PanicError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("n % 2 == 0"), std::string::npos);
        EXPECT_NE(what.find("n was 5"), std::string::npos);
    }
}

TEST_F(LoggingTest, SinkRestoreReturnsPrevious)
{
    xpro::LogSink prev = xpro::setLogSink(nullptr); // default
    EXPECT_EQ(prev, captureSink);
    xpro::setLogSink(captureSink);
}

} // namespace
