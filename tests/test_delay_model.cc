/**
 * @file
 * Unit tests for the end-to-end delay model.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/delay_model.hh"
#include "topology_fixtures.hh"

namespace
{

using namespace xpro;
using xpro::test::CellSpec;
using xpro::test::MiniTopology;
using xpro::test::chainTopology;

const WirelessLink link2(transceiver(WirelessModel::Model2));

TEST(DelayModelTest, AllInSensorIsFrontComputePlusResult)
{
    const EngineTopology topo = chainTopology(100, 200, 50);
    const DelayBreakdown d =
        eventDelay(topo, Placement::allInSensor(topo), link2);
    // 3 cells x 50 us hardware delay each.
    EXPECT_NEAR(d.frontCompute.us(), 150.0, 1e-9);
    EXPECT_NEAR(d.backCompute.us(), 0.0, 1e-9);
    EXPECT_NEAR(d.wireless.us(),
                link2.transfer(EngineTopology::resultBits)
                    .airTime.us(),
                1e-9);
}

TEST(DelayModelTest, AllInAggregatorIsRawPlusSoftware)
{
    const EngineTopology topo = chainTopology(100, 200, 50, 4096);
    const DelayBreakdown d =
        eventDelay(topo, Placement::allInAggregator(topo), link2);
    EXPECT_NEAR(d.frontCompute.us(), 0.0, 1e-9);
    // 3 cells x 5 us software each.
    EXPECT_NEAR(d.backCompute.us(), 15.0, 1e-9);
    EXPECT_NEAR(d.wireless.us(), link2.transfer(4096).airTime.us(),
                1e-9);
}

TEST(DelayModelTest, MixedPlacementAccumulatesBothEnds)
{
    const EngineTopology topo = chainTopology(100, 200, 50, 4096);
    const Placement p =
        Placement::fromMask(topo, {true, true, false, false});
    const DelayBreakdown d = eventDelay(topo, p, link2);
    EXPECT_NEAR(d.frontCompute.us(), 50.0, 1e-9);
    EXPECT_NEAR(d.backCompute.us(), 10.0, 1e-9);
    EXPECT_NEAR(d.wireless.us(), link2.transfer(32).airTime.us(),
                1e-9);
    EXPECT_NEAR(d.total().us(), 60.0 + d.wireless.us(), 1e-9);
}

TEST(DelayModelTest, ParallelBranchesTakeSlowest)
{
    MiniTopology mini(1024);
    CellSpec fast;
    fast.sensorUs = 10.0;
    CellSpec slow;
    slow.sensorUs = 300.0;
    const size_t a = mini.addCell(fast);
    const size_t b = mini.addCell(slow);
    CellSpec join;
    join.sensorUs = 5.0;
    const size_t fusion = mini.addCell(join);
    mini.connect(DataflowGraph::sourceId, a);
    mini.connect(DataflowGraph::sourceId, b);
    mini.connect(a, fusion);
    mini.connect(b, fusion);
    const EngineTopology topo = mini.build(fusion);

    const DelayBreakdown d =
        eventDelay(topo, Placement::allInSensor(topo), link2);
    // Critical path goes through the slow branch only.
    EXPECT_NEAR(d.frontCompute.us(), 305.0, 1e-9);
}

TEST(DelayModelTest, CrossEndCanBeFasterThanEitherEnd)
{
    // Slow hardware, fast software, large raw payload: a mid cut
    // transfers one word and uses the fast back-end.
    const EngineTopology topo = chainTopology(100, 200, 50, 8192);
    const Time t_sensor =
        eventDelay(topo, Placement::allInSensor(topo), link2)
            .total();
    const Time t_agg =
        eventDelay(topo, Placement::allInAggregator(topo), link2)
            .total();
    const Time t_mid =
        eventDelay(topo,
                   Placement::fromMask(topo,
                                       {true, true, false, false}),
                   link2)
            .total();
    EXPECT_LT(t_mid, t_sensor);
    EXPECT_LT(t_mid, t_agg);
}

TEST(DelayModelTest, WirelessDelayScalesWithPayload)
{
    const EngineTopology small = chainTopology(10, 10, 10, 1024);
    const EngineTopology large = chainTopology(10, 10, 10, 8192);
    const Time t_small =
        eventDelay(small, Placement::allInAggregator(small), link2)
            .wireless;
    const Time t_large =
        eventDelay(large, Placement::allInAggregator(large), link2)
            .wireless;
    EXPECT_GT(t_large, t_small);
    EXPECT_NEAR(t_large / t_small, (8192.0 + 8) / (1024.0 + 8),
                1e-9);
}

} // namespace
