/**
 * @file
 * Unit tests for Placement.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/placement.hh"
#include "topology_fixtures.hh"

namespace
{

using namespace xpro;
using xpro::test::chainTopology;

TEST(PlacementTest, AllInSensorHasEveryCell)
{
    const EngineTopology topo = chainTopology(100, 100, 100);
    const Placement p = Placement::allInSensor(topo);
    EXPECT_EQ(p.sensorCellCount(), topo.graph.cellCount());
    EXPECT_FALSE(p.rawDataTransmitted(topo));
}

TEST(PlacementTest, AllInAggregatorKeepsSourceAtSensor)
{
    const EngineTopology topo = chainTopology(100, 100, 100);
    const Placement p = Placement::allInAggregator(topo);
    EXPECT_EQ(p.sensorCellCount(), 0u);
    EXPECT_TRUE(p.inSensor(DataflowGraph::sourceId));
    EXPECT_TRUE(p.rawDataTransmitted(topo));
}

TEST(PlacementTest, TrivialCutSplitsAtClassifier)
{
    const EngineTopology topo = chainTopology(100, 100, 100);
    const Placement p = Placement::trivialCut(topo);
    EXPECT_TRUE(p.inSensor(1));  // feature
    EXPECT_FALSE(p.inSensor(2)); // svm
    EXPECT_FALSE(p.inSensor(3)); // fusion
    EXPECT_FALSE(p.rawDataTransmitted(topo));
}

TEST(PlacementTest, FromMaskValidatesShape)
{
    const EngineTopology topo = chainTopology(100, 100, 100);
    EXPECT_THROW(
        Placement::fromMask(topo, std::vector<bool>(2, true)),
        PanicError);
    // Source must stay in the sensor.
    std::vector<bool> mask(topo.graph.nodeCount(), true);
    mask[DataflowGraph::sourceId] = false;
    EXPECT_THROW(Placement::fromMask(topo, mask), PanicError);
}

TEST(PlacementTest, SummaryReportsCounts)
{
    const EngineTopology topo = chainTopology(100, 100, 100);
    const std::string s =
        Placement::allInAggregator(topo).summary(topo);
    EXPECT_NE(s.find("0/3"), std::string::npos);
    EXPECT_NE(s.find("raw data transmitted"), std::string::npos);
}

TEST(PlacementTest, RawTransmittedOnlyWhenSourceConsumerOffloaded)
{
    const EngineTopology topo = chainTopology(100, 100, 100);
    // Only the fusion cell offloaded: raw data stays local.
    std::vector<bool> mask = {true, true, true, false};
    const Placement p = Placement::fromMask(topo, mask);
    EXPECT_FALSE(p.rawDataTransmitted(topo));
    // Offloading the feature (the raw consumer) transmits raw data.
    std::vector<bool> mask2 = {true, false, true, true};
    const Placement p2 = Placement::fromMask(topo, mask2);
    EXPECT_TRUE(p2.rawDataTransmitted(topo));
}

} // namespace
