/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/logging.hh"
#include "common/random.hh"

namespace
{

using xpro::Rng;

TEST(RandomTest, SameSeedSameStream)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RandomTest, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int differences = 0;
    for (int i = 0; i < 32; ++i)
        differences += a.next() != b.next();
    EXPECT_GT(differences, 0);
}

TEST(RandomTest, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(RandomTest, UniformRangeRespectsBounds)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(-3.0, 5.0);
        EXPECT_GE(v, -3.0);
        EXPECT_LT(v, 5.0);
    }
}

TEST(RandomTest, UniformMeanIsCentered)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RandomTest, BelowStaysBelow)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(RandomTest, BelowCoversAllResidues)
{
    Rng rng(15);
    std::set<uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.below(10));
    EXPECT_EQ(seen.size(), 10u);
}

TEST(RandomTest, RangeInclusive)
{
    Rng rng(17);
    std::set<int64_t> seen;
    for (int i = 0; i < 500; ++i) {
        const int64_t v = rng.range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(RandomTest, GaussianMomentsRoughlyStandard)
{
    Rng rng(19);
    double sum = 0.0;
    double sum_sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.gaussian();
        sum += v;
        sum_sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RandomTest, GaussianScaled)
{
    Rng rng(21);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RandomTest, ChanceExtremes)
{
    Rng rng(23);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(RandomTest, ShufflePreservesElements)
{
    Rng rng(25);
    std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> shuffled = items;
    rng.shuffle(shuffled);
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, items);
}

TEST(RandomTest, SampleWithoutReplacementIsDistinct)
{
    Rng rng(27);
    for (int trial = 0; trial < 50; ++trial) {
        const auto sample = rng.sampleWithoutReplacement(48, 12);
        EXPECT_EQ(sample.size(), 12u);
        std::set<size_t> unique(sample.begin(), sample.end());
        EXPECT_EQ(unique.size(), 12u);
        for (size_t idx : sample)
            EXPECT_LT(idx, 48u);
    }
}

TEST(RandomTest, SampleFullPoolIsPermutation)
{
    Rng rng(29);
    const auto sample = rng.sampleWithoutReplacement(10, 10);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
}

TEST(RandomTest, SampleTooManyPanics)
{
    Rng rng(31);
    EXPECT_THROW(rng.sampleWithoutReplacement(5, 6), xpro::PanicError);
}

} // namespace
