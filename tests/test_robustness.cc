/**
 * @file
 * Robustness sweeps: the generator, energy/delay models and
 * simulator under extreme cost values, degenerate topologies and
 * the full (node x wireless) configuration grid. These are the
 * failure-injection counterparts of the happy-path tests: nothing
 * here should crash, loop or break an invariant.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "core/partitioner.hh"
#include "sim/system_sim.hh"
#include "topology_fixtures.hh"

namespace
{

using namespace xpro;
using xpro::test::CellSpec;
using xpro::test::MiniTopology;
using xpro::test::chainTopology;

/** Invariants every (topology, link) pair must satisfy. */
void
checkInvariants(const EngineTopology &topo, const WirelessLink &link)
{
    const XProGenerator gen(topo, link);
    const PartitionResult result = gen.generate();

    // Delay limit respected.
    EXPECT_LE(result.delay.total().us(),
              result.delayLimit.us() + 1e-6);

    // Reported energy equals re-evaluated energy.
    EXPECT_NEAR(result.energy.total().nj(),
                sensorEventEnergy(topo, result.placement, link)
                    .total()
                    .nj(),
                1e-6);

    // Never worse than the best delay-feasible single end.
    const Time limit = result.delayLimit;
    for (const Placement &single :
         {Placement::allInSensor(topo),
          Placement::allInAggregator(topo)}) {
        if (eventDelay(topo, single, link).total() > limit)
            continue;
        EXPECT_LE(result.energy.total().nj(),
                  sensorEventEnergy(topo, single, link).total().nj() +
                      1e-6);
    }

    // The simulator agrees on energy and never beats the critical
    // path.
    const SimResult sim =
        simulateEvent(topo, result.placement, link);
    EXPECT_NEAR(sim.sensorEnergy.total().nj(),
                result.energy.total().nj(), 1e-6);
    EXPECT_GE(sim.completion.us() + 1e-9,
              result.delay.total().us() -
                  // The analytic result transfer may overlap in the
                  // breakdown; allow rounding noise only.
                  1e-6);
}

TEST(RobustnessTest, ExtremeCellCosts)
{
    const WirelessLink link(transceiver(WirelessModel::Model2));
    // Near-zero and enormous costs in every combination.
    const double values[] = {0.001, 1.0, 1e6};
    for (double feature : values) {
        for (double svm : values) {
            for (double fusion : values) {
                checkInvariants(
                    chainTopology(feature, svm, fusion, 1024), link);
            }
        }
    }
}

TEST(RobustnessTest, ExtremePayloads)
{
    const WirelessLink link(transceiver(WirelessModel::Model2));
    for (size_t bits : {size_t{8}, size_t{1024}, size_t{1} << 20})
        checkInvariants(chainTopology(100, 100, 100, bits), link);
}

TEST(RobustnessTest, SingleCellTopology)
{
    MiniTopology mini(256);
    CellSpec spec;
    const size_t only = mini.addCell(spec);
    mini.connect(DataflowGraph::sourceId, only);
    const EngineTopology topo = mini.build(only);
    const WirelessLink link(transceiver(WirelessModel::Model2));
    checkInvariants(topo, link);
}

TEST(RobustnessTest, WideFanoutTopology)
{
    // One source feeding 40 parallel cells into one fusion.
    MiniTopology mini(4096);
    CellSpec spec;
    std::vector<size_t> cells;
    for (int i = 0; i < 40; ++i) {
        spec.sensorNj = 10.0 * (i + 1);
        const size_t id = mini.addCell(spec);
        mini.connect(DataflowGraph::sourceId, id);
        cells.push_back(id);
    }
    const size_t fusion = mini.addCell(spec);
    for (size_t c : cells)
        mini.connect(c, fusion);
    const EngineTopology topo = mini.build(fusion);
    const WirelessLink link(transceiver(WirelessModel::Model2));
    checkInvariants(topo, link);
}

TEST(RobustnessTest, DeepChainTopology)
{
    MiniTopology mini(1024);
    CellSpec spec;
    size_t prev = DataflowGraph::sourceId;
    size_t last = 0;
    for (int i = 0; i < 60; ++i) {
        spec.sensorNj = 20.0 + 5.0 * i;
        last = mini.addCell(spec);
        mini.connect(prev, last);
        prev = last;
    }
    const EngineTopology topo = mini.build(last);
    const WirelessLink link(transceiver(WirelessModel::Model2));
    checkInvariants(topo, link);
}

/** Grid sweep: every (process node, wireless model) combination. */
class ConfigGridTest
    : public ::testing::TestWithParam<
          std::tuple<ProcessNode, WirelessModel>>
{
};

TEST_P(ConfigGridTest, InvariantsHoldEverywhere)
{
    const auto [node, model] = GetParam();
    (void)node; // the mini fixture carries explicit costs
    const WirelessLink link(transceiver(model));
    Rng rng(7000 + static_cast<uint64_t>(model));
    for (int trial = 0; trial < 5; ++trial) {
        MiniTopology mini(512 + 512 * rng.below(8));
        CellSpec spec;
        std::vector<size_t> features;
        for (size_t i = 0; i < 2 + rng.below(3); ++i) {
            spec.sensorNj = rng.uniform(5.0, 5000.0);
            spec.sensorUs = rng.uniform(5.0, 500.0);
            const size_t id = mini.addCell(spec);
            mini.connect(DataflowGraph::sourceId, id);
            features.push_back(id);
        }
        const size_t fusion = mini.addCell(spec);
        for (size_t f : features)
            mini.connect(f, fusion);
        checkInvariants(mini.build(fusion), link);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConfigGridTest,
    ::testing::Combine(::testing::ValuesIn(allProcessNodes),
                       ::testing::ValuesIn(allWirelessModels)));

} // namespace
