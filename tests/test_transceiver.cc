/**
 * @file
 * Unit tests for the wireless transceiver models and link
 * packetization.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "wireless/link.hh"

namespace
{

using namespace xpro;

TEST(TransceiverTest, PaperEnergyValues)
{
    EXPECT_DOUBLE_EQ(transceiver(WirelessModel::Model1).txPerBit.nj(),
                     2.9);
    EXPECT_DOUBLE_EQ(transceiver(WirelessModel::Model1).rxPerBit.nj(),
                     3.3);
    EXPECT_DOUBLE_EQ(transceiver(WirelessModel::Model2).txPerBit.nj(),
                     1.53);
    EXPECT_DOUBLE_EQ(transceiver(WirelessModel::Model2).rxPerBit.nj(),
                     1.71);
    EXPECT_DOUBLE_EQ(transceiver(WirelessModel::Model3).txPerBit.nj(),
                     0.42);
    EXPECT_DOUBLE_EQ(transceiver(WirelessModel::Model3).rxPerBit.nj(),
                     0.295);
}

TEST(TransceiverTest, EnergyOrderingHighMediumLow)
{
    const Energy m1 = transceiver(WirelessModel::Model1).txEnergy(1000);
    const Energy m2 = transceiver(WirelessModel::Model2).txEnergy(1000);
    const Energy m3 = transceiver(WirelessModel::Model3).txEnergy(1000);
    EXPECT_GT(m1, m2);
    EXPECT_GT(m2, m3);
}

TEST(TransceiverTest, AirTimeUsesDataRate)
{
    const Transceiver &radio = transceiver(WirelessModel::Model2);
    EXPECT_DOUBLE_EQ(radio.dataRateBps, 2.0e6);
    EXPECT_DOUBLE_EQ(radio.airTime(2000).ms(), 1.0);
}

TEST(TransceiverTest, NamesMentionEnergies)
{
    EXPECT_NE(wirelessModelName(WirelessModel::Model2).find("1.53"),
              std::string::npos);
    EXPECT_NE(wirelessModelName(WirelessModel::Model3).find("0.42"),
              std::string::npos);
}

TEST(LinkTest, HeaderAddedOncePerPayload)
{
    const WirelessLink link(transceiver(WirelessModel::Model2));
    const TransferCost cost = link.transfer(32);
    EXPECT_EQ(cost.bits, 32u + packetHeaderBits);
    EXPECT_DOUBLE_EQ(cost.txEnergy.nj(), 40 * 1.53);
    EXPECT_DOUBLE_EQ(cost.rxEnergy.nj(), 40 * 1.71);
}

TEST(LinkTest, AirTimeMatchesBits)
{
    const WirelessLink link(transceiver(WirelessModel::Model2));
    EXPECT_DOUBLE_EQ(link.transfer(3992).airTime.ms(), 2.0);
}

TEST(LinkTest, EmptyTransferPanics)
{
    const WirelessLink link(transceiver(WirelessModel::Model2));
    EXPECT_THROW(link.transfer(0), PanicError);
}

} // namespace
