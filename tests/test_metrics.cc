/**
 * @file
 * Unit tests for classification metrics.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "ml/metrics.hh"

namespace
{

using namespace xpro;

TEST(MetricsTest, PerfectPrediction)
{
    const std::vector<int> labels = {1, -1, 1, -1};
    const Confusion c = confusionMatrix(labels, labels);
    EXPECT_EQ(c.truePositives, 2u);
    EXPECT_EQ(c.trueNegatives, 2u);
    EXPECT_EQ(c.falsePositives, 0u);
    EXPECT_EQ(c.falseNegatives, 0u);
    EXPECT_DOUBLE_EQ(c.accuracy(), 1.0);
    EXPECT_DOUBLE_EQ(c.precision(), 1.0);
    EXPECT_DOUBLE_EQ(c.recall(), 1.0);
    EXPECT_DOUBLE_EQ(c.f1(), 1.0);
}

TEST(MetricsTest, AllWrong)
{
    const std::vector<int> actual = {1, -1};
    const std::vector<int> predicted = {-1, 1};
    const Confusion c = confusionMatrix(predicted, actual);
    EXPECT_DOUBLE_EQ(c.accuracy(), 0.0);
    EXPECT_EQ(c.falsePositives, 1u);
    EXPECT_EQ(c.falseNegatives, 1u);
}

TEST(MetricsTest, MixedCase)
{
    const std::vector<int> actual = {1, 1, 1, -1, -1, -1};
    const std::vector<int> predicted = {1, 1, -1, -1, 1, -1};
    const Confusion c = confusionMatrix(predicted, actual);
    EXPECT_EQ(c.truePositives, 2u);
    EXPECT_EQ(c.falseNegatives, 1u);
    EXPECT_EQ(c.falsePositives, 1u);
    EXPECT_EQ(c.trueNegatives, 2u);
    EXPECT_DOUBLE_EQ(c.accuracy(), 4.0 / 6.0);
    EXPECT_DOUBLE_EQ(c.precision(), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(c.recall(), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(c.f1(), 2.0 / 3.0);
}

TEST(MetricsTest, DegenerateDenominators)
{
    // No positives predicted and none present.
    const std::vector<int> actual = {-1, -1};
    const std::vector<int> predicted = {-1, -1};
    const Confusion c = confusionMatrix(predicted, actual);
    EXPECT_DOUBLE_EQ(c.precision(), 0.0);
    EXPECT_DOUBLE_EQ(c.recall(), 0.0);
    EXPECT_DOUBLE_EQ(c.f1(), 0.0);
    EXPECT_DOUBLE_EQ(c.accuracy(), 1.0);
}

TEST(MetricsTest, EmptyInput)
{
    const Confusion c = confusionMatrix({}, {});
    EXPECT_EQ(c.total(), 0u);
    EXPECT_DOUBLE_EQ(c.accuracy(), 0.0);
}

TEST(MetricsTest, SizeMismatchPanics)
{
    EXPECT_THROW(confusionMatrix({1}, {1, -1}), PanicError);
}

TEST(MetricsTest, AccuracyScoreHelper)
{
    EXPECT_DOUBLE_EQ(accuracyScore({1, -1, 1}, {1, 1, 1}), 2.0 / 3.0);
}

} // namespace
