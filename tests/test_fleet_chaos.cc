/**
 * @file
 * Tests for the deterministic chaos layer (DESIGN.md §18): the
 * seeded schedule of gateway crashes, cloud outages and node churn
 * must leave the FleetReport byte-identical at any shards x workers
 * combination; a disabled schedule must leave the report
 * byte-identical to a run that never heard of chaos; and the
 * self-healing responses (failover migration, retry backoff, the
 * degradation ladder) must account for every offered event.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/logging.hh"
#include "core/report.hh"
#include "fleet/chaos.hh"
#include "fleet/fleet.hh"

namespace
{

using namespace xpro;

FleetReport
runChaos(const ChaosConfig &chaos, size_t shards, size_t workers,
         uint64_t nodes = 8192, uint64_t events = 6)
{
    PopulationFleetConfig config;
    config.nodes = nodes;
    config.shards = shards;
    config.workers = workers;
    config.eventsPerNode = events;
    config.chaos = chaos;
    return runPopulationFleet(config).report;
}

/** Offered events partition into completions, sensor-local
 *  fallbacks, duty suppressions and chaos-dropped in-flight items —
 *  nothing may vanish silently. */
void
expectEventAccounting(const FleetReport &report, uint64_t nodes,
                      uint64_t events)
{
    EXPECT_EQ(report.totalEvents + report.tiers.localFallbacks +
                  report.tiers.dutySuppressed +
                  report.chaos.droppedEvents,
              nodes * events);
}

TEST(FleetChaosTest, DisabledScheduleLeavesReportUntouched)
{
    // Chaos knobs set but enabled == false must be byte-identical
    // to a configuration that never mentioned chaos: the hot path
    // may not even smell the config.
    PopulationFleetConfig plain;
    plain.nodes = 4096;
    plain.shards = 4;
    plain.eventsPerNode = 3;
    const std::string reference =
        runPopulationFleet(plain).report.serialize();

    PopulationFleetConfig armed = plain;
    armed.chaos = ChaosConfig::profile("harsh");
    armed.chaos.enabled = false;
    EXPECT_EQ(runPopulationFleet(armed).report.serialize(),
              reference);
    // And the disabled report carries no chaos section at all.
    EXPECT_EQ(reference.find("chaos v1"), std::string::npos);
}

TEST(FleetChaosTest, ReportByteIdenticalAcrossShardsAndWorkers)
{
    // The §18 determinism gate under an ACTIVE schedule: crashes,
    // failover migrations, cloud outages and churn all happen at
    // window barriers keyed on stable ids, so the serialized report
    // is a pure function of the configuration.
    const ChaosConfig chaos = ChaosConfig::profile("harsh");
    const std::string reference = runChaos(chaos, 1, 1).serialize();
    EXPECT_NE(reference.find("chaos v1"), std::string::npos);
    for (size_t shards : {4, 16}) {
        for (size_t workers : {1, 2, 4}) {
            EXPECT_EQ(runChaos(chaos, shards, workers).serialize(),
                      reference)
                << "shards=" << shards << " workers=" << workers;
        }
    }
}

TEST(FleetChaosTest, GatewayCrashMigratesNodesToNeighbor)
{
    // Flaky profile on a multi-gateway fleet: every crash with a
    // live neighbor must fail over, re-homing the dead gateway's
    // nodes; restarts bring them back. No event may vanish.
    ChaosConfig chaos = ChaosConfig::profile("flaky");
    const uint64_t nodes = 16384; // 8 gateways at 32:64
    const FleetReport report = runChaos(chaos, 4, 2, nodes, 6);

    EXPECT_GT(report.chaos.gatewayCrashes, 0u);
    EXPECT_GT(report.chaos.failovers, 0u);
    EXPECT_GT(report.chaos.migratedNodes, 0u);
    EXPECT_GT(report.chaos.failbackNodes, 0u);
    EXPECT_GT(report.chaos.gatewayDownWindows, 0u);
    EXPECT_GE(report.chaos.gatewayCrashes,
              report.chaos.gatewayRestarts);
    EXPECT_FALSE(report.chaos.episodes.empty() &&
                 report.chaos.droppedEpisodes == 0);
    expectEventAccounting(report, nodes, 6);
}

TEST(FleetChaosTest, CloudOutageDegradesToGatewayLocal)
{
    // Rung 1 of the degradation ladder: with the cloud unreachable
    // the gateways aggregate locally — events keep completing, no
    // ingest quota is burned, nothing falls back to the sensor.
    ChaosConfig chaos;
    chaos.enabled = true;
    chaos.cloudOutages.push_back({0, 1000000}); // the whole run
    const uint64_t nodes = 4096;
    const FleetReport report = runChaos(chaos, 4, 2, nodes, 4);

    EXPECT_GT(report.chaos.gatewayLocalEvents, 0u);
    EXPECT_GT(report.chaos.cloudDownWindows, 0u);
    EXPECT_EQ(report.chaos.gatewayCrashes, 0u);
    EXPECT_EQ(report.tiers.cloudThrottled, 0u);
    expectEventAccounting(report, nodes, 4);
}

TEST(FleetChaosTest, ChurnParksInjectsAndReplaysOnRejoin)
{
    // Churned-out nodes: in-flight transport is dropped (charged to
    // droppedEvents), pending self-injects park until the rejoin
    // tick and replay late — so leaves == joins and the accounting
    // still closes.
    const ChaosConfig chaos = ChaosConfig::profile("churn");
    const uint64_t nodes = 8192;
    const FleetReport report = runChaos(chaos, 4, 2, nodes, 6);

    EXPECT_GT(report.chaos.churnLeaves, 0u);
    EXPECT_EQ(report.chaos.churnLeaves, report.chaos.churnJoins);
    EXPECT_GT(report.chaos.parkedInjects, 0u);
    EXPECT_GT(report.chaos.replayedEvents, 0u);
    expectEventAccounting(report, nodes, 6);
}

TEST(FleetChaosTest, LoneGatewayCrashBlacksOutItsNodes)
{
    // A single-gateway fleet has no failover target: when its
    // gateway dies the ladder bottoms out at sensor-local
    // classification, with zero failovers and zero migrations.
    ChaosConfig chaos;
    chaos.enabled = true;
    chaos.gatewayMtbfWindows = 4;
    chaos.gatewayMttrWindows = 4;
    const uint64_t nodes = 512; // one gateway at 32:64
    const FleetReport report = runChaos(chaos, 1, 1, nodes, 8);

    EXPECT_GT(report.chaos.gatewayCrashes, 0u);
    EXPECT_EQ(report.chaos.failovers, 0u);
    EXPECT_EQ(report.chaos.migratedNodes, 0u);
    EXPECT_GT(report.chaos.blackoutFallbacks, 0u);
    expectEventAccounting(report, nodes, 8);
}

TEST(FleetChaosTest, SharedFaultProfileDrivesPopulationArq)
{
    // The unified FaultProfile (wireless/fault.hh) drives the
    // population path's per-uplink ARQ: offered partitions into
    // delivered + abandoned, and the report stays byte-identical
    // across shard groupings even with the Gilbert-Elliott state
    // machine running per node.
    const auto runAt = [](size_t shards, size_t workers) {
        PopulationFleetConfig config;
        config.nodes = 8192;
        config.shards = shards;
        config.workers = workers;
        config.eventsPerNode = 4;
        config.faults = FaultProfile::preset("harsh");
        return runPopulationFleet(config).report;
    };
    const FleetReport report = runAt(1, 1);

    EXPECT_TRUE(report.robustness.enabled);
    EXPECT_GT(report.robustness.packetsOffered, 0u);
    EXPECT_EQ(report.robustness.packetsDelivered +
                  report.robustness.packetsAbandoned,
              report.robustness.packetsOffered);
    EXPECT_GE(report.robustness.attempts,
              report.robustness.packetsOffered);
    EXPECT_EQ(report.robustness.degradedEvents,
              report.robustness.packetsAbandoned);
    EXPECT_EQ(runAt(8, 4).serialize(), report.serialize());
}

TEST(FleetChaosTest, RobustnessSectionFormatIsShared)
{
    // The RobustnessReport serialization is the contract both the
    // detailed path (sim/fault_sim) and the population path emit;
    // pin its bytes so neither can drift away from the other.
    RobustnessReport r;
    r.enabled = true;
    r.packetsOffered = 10;
    r.packetsDelivered = 9;
    r.packetsAbandoned = 1;
    r.attempts = 14;
    r.retryHistogram = {7, 2};
    EXPECT_EQ(r.serialize(),
              "robustness v1\n"
              "packets 10 9 1\n"
              "attempts 14\n"
              "retries 7 2\n"
              "probes 0\n"
              "degraded_events 0\n"
              "buffered 0\n"
              "replayed 0\n"
              "outages 0\n"
              "outage_ms 0.000000000e+00\n"
              "recovery_ms 0.000000000e+00\n");
}

TEST(FleetChaosTest, ChaosConfigValidatesItsKnobs)
{
    ChaosConfig chaos;
    chaos.enabled = true;
    chaos.gatewayMtbfWindows = 8;
    chaos.gatewayMttrWindows = 0;
    EXPECT_THROW(chaos.validate(), FatalError);
    chaos.gatewayMttrWindows = 2;
    EXPECT_NO_THROW(chaos.validate());
    chaos.cloudOutages.push_back({5, 5});
    EXPECT_THROW(chaos.validate(), FatalError);
    chaos.cloudOutages.back() = {5, 6};
    EXPECT_NO_THROW(chaos.validate());
    chaos.churnFraction = 1.5;
    EXPECT_THROW(chaos.validate(), FatalError);
    chaos.churnFraction = 0.5;
    chaos.churnSpreadWindows = 0;
    EXPECT_THROW(chaos.validate(), FatalError);
    EXPECT_THROW(ChaosConfig::profile("bogus"), FatalError);
    EXPECT_FALSE(ChaosConfig::profile("none").enabled);
}

} // namespace
