/**
 * @file
 * Unit tests for the dense matrix and linear solvers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "common/matrix.hh"
#include "common/random.hh"

namespace
{

using xpro::Matrix;

TEST(MatrixTest, ConstructionAndAccess)
{
    Matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
    m(0, 1) = -2.0;
    EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(MatrixTest, IdentityProduct)
{
    Matrix a(3, 3);
    int v = 1;
    for (size_t i = 0; i < 3; ++i)
        for (size_t j = 0; j < 3; ++j)
            a(i, j) = v++;
    const Matrix product = a * Matrix::identity(3);
    for (size_t i = 0; i < 3; ++i)
        for (size_t j = 0; j < 3; ++j)
            EXPECT_DOUBLE_EQ(product(i, j), a(i, j));
}

TEST(MatrixTest, MatrixProductKnownValues)
{
    Matrix a(2, 3);
    a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
    a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
    Matrix b(3, 2);
    b(0, 0) = 7; b(0, 1) = 8;
    b(1, 0) = 9; b(1, 1) = 10;
    b(2, 0) = 11; b(2, 1) = 12;
    const Matrix c = a * b;
    EXPECT_DOUBLE_EQ(c(0, 0), 58);
    EXPECT_DOUBLE_EQ(c(0, 1), 64);
    EXPECT_DOUBLE_EQ(c(1, 0), 139);
    EXPECT_DOUBLE_EQ(c(1, 1), 154);
}

TEST(MatrixTest, AdditionSubtractionScaling)
{
    Matrix a(2, 2, 1.0);
    Matrix b(2, 2, 2.0);
    EXPECT_DOUBLE_EQ((a + b)(0, 0), 3.0);
    EXPECT_DOUBLE_EQ((b - a)(1, 1), 1.0);
    EXPECT_DOUBLE_EQ((a * 4.0)(0, 1), 4.0);
}

TEST(MatrixTest, TransposeRoundTrip)
{
    Matrix a(2, 3);
    a(0, 2) = 5.0;
    a(1, 0) = -3.0;
    const Matrix t = a.transpose();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t(2, 0), 5.0);
    EXPECT_DOUBLE_EQ(t(0, 1), -3.0);
    const Matrix back = t.transpose();
    EXPECT_DOUBLE_EQ(back(0, 2), 5.0);
}

TEST(MatrixTest, NormOfUnitVector)
{
    Matrix v = Matrix::columnVector({3.0, 4.0});
    EXPECT_DOUBLE_EQ(v.norm(), 5.0);
}

TEST(MatrixTest, SolveDiagonal)
{
    Matrix a = Matrix::identity(3) * 2.0;
    Matrix b = Matrix::columnVector({2.0, 4.0, 6.0});
    const Matrix x = Matrix::solve(a, b);
    EXPECT_NEAR(x(0, 0), 1.0, 1e-12);
    EXPECT_NEAR(x(1, 0), 2.0, 1e-12);
    EXPECT_NEAR(x(2, 0), 3.0, 1e-12);
}

TEST(MatrixTest, SolveRequiresPivoting)
{
    // Leading zero forces a row swap.
    Matrix a(2, 2);
    a(0, 0) = 0.0; a(0, 1) = 1.0;
    a(1, 0) = 1.0; a(1, 1) = 0.0;
    Matrix b = Matrix::columnVector({3.0, 7.0});
    const Matrix x = Matrix::solve(a, b);
    EXPECT_NEAR(x(0, 0), 7.0, 1e-12);
    EXPECT_NEAR(x(1, 0), 3.0, 1e-12);
}

TEST(MatrixTest, SolveSingularIsFatal)
{
    Matrix a(2, 2, 1.0); // rank one
    Matrix b = Matrix::columnVector({1.0, 2.0});
    EXPECT_THROW(Matrix::solve(a, b), xpro::FatalError);
}

TEST(MatrixTest, SolveRandomSystems)
{
    xpro::Rng rng(101);
    for (int trial = 0; trial < 20; ++trial) {
        const size_t n = 1 + trial % 8;
        Matrix a(n, n);
        for (size_t i = 0; i < n; ++i) {
            for (size_t j = 0; j < n; ++j)
                a(i, j) = rng.uniform(-1.0, 1.0);
            a(i, i) += 3.0; // Diagonally dominant => nonsingular.
        }
        Matrix x_true(n, 1);
        for (size_t i = 0; i < n; ++i)
            x_true(i, 0) = rng.uniform(-5.0, 5.0);
        const Matrix b = a * x_true;
        const Matrix x = Matrix::solve(a, b);
        EXPECT_NEAR((x - x_true).norm(), 0.0, 1e-9);
    }
}

TEST(MatrixTest, LeastSquaresRecoverExactSolution)
{
    // Overdetermined but consistent system.
    Matrix a(4, 2);
    a(0, 0) = 1; a(0, 1) = 0;
    a(1, 0) = 0; a(1, 1) = 1;
    a(2, 0) = 1; a(2, 1) = 1;
    a(3, 0) = 2; a(3, 1) = -1;
    Matrix x_true = Matrix::columnVector({2.0, -3.0});
    const Matrix b = a * x_true;
    const Matrix x = Matrix::leastSquares(a, b);
    EXPECT_NEAR((x - x_true).norm(), 0.0, 1e-9);
}

TEST(MatrixTest, LeastSquaresMinimizesResidual)
{
    // Inconsistent system: fit y = w * x through three points.
    Matrix a(3, 1);
    a(0, 0) = 1; a(1, 0) = 2; a(2, 0) = 3;
    Matrix b = Matrix::columnVector({1.1, 1.9, 3.2});
    const Matrix x = Matrix::leastSquares(a, b);
    // Closed form: w = sum(x*y) / sum(x*x).
    const double expected = (1 * 1.1 + 2 * 1.9 + 3 * 3.2) / 14.0;
    EXPECT_NEAR(x(0, 0), expected, 1e-12);
}

TEST(MatrixTest, RidgeShrinksSolution)
{
    Matrix a = Matrix::identity(2);
    Matrix b = Matrix::columnVector({1.0, 1.0});
    const Matrix plain = Matrix::leastSquares(a, b, 0.0);
    const Matrix ridge = Matrix::leastSquares(a, b, 1.0);
    EXPECT_NEAR(plain(0, 0), 1.0, 1e-12);
    EXPECT_NEAR(ridge(0, 0), 0.5, 1e-12);
}

TEST(MatrixTest, FlattenIsRowMajor)
{
    Matrix a(2, 2);
    a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
    const std::vector<double> flat = a.flatten();
    EXPECT_EQ(flat, (std::vector<double>{1, 2, 3, 4}));
}

} // namespace
