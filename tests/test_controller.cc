/**
 * @file
 * Tests for the runtime-adaptive cross-end controller (control/):
 * anti-thrashing guards on oscillating channels, byte-identity of
 * the static windowed path with the legacy stream simulator,
 * warm-solve discipline (exactly one cold solve per controller) and
 * worker-count determinism of the fleet decision trace.
 */

#include <gtest/gtest.h>

#include "common/argparse.hh"
#include "common/logging.hh"
#include "control/adaptive_fleet.hh"
#include "control/adaptive_sim.hh"
#include "control/controller.hh"
#include "control/trace.hh"
#include "wireless/transceiver.hh"
#include "topology_fixtures.hh"

namespace
{

using namespace xpro;
using xpro::test::CellSpec;
using xpro::test::MiniTopology;
using xpro::test::chainTopology;

const WirelessLink link2(transceiver(WirelessModel::Model2));

/**
 * A chain whose optimal cut flips with the channel cost: at nominal
 * prices the cheap feature cut (128-bit intermediate) wins; once
 * transfers cost ~4x, pushing the SVM in-sensor (32-bit crossing)
 * is cheaper.
 */
EngineTopology
flippingTopology()
{
    MiniTopology mini(1024);
    CellSpec feature;
    feature.name = "feature";
    feature.sensorNj = 100.0;
    feature.outputBits = 128;
    const size_t f = mini.addCell(feature, ComponentKind::Var);
    CellSpec svm;
    svm.name = "svm";
    svm.sensorNj = 400.0;
    svm.outputBits = 32;
    const size_t s = mini.addCell(svm, ComponentKind::Svm);
    CellSpec fusion;
    fusion.name = "fusion";
    fusion.sensorNj = 50.0;
    fusion.outputBits = 32;
    const size_t z = mini.addCell(fusion, ComponentKind::Fusion);
    mini.connect(DataflowGraph::sourceId, f);
    mini.connect(f, s);
    mini.connect(s, z);
    return mini.build(z);
}

/** A deep fade: ~90% of the time in the Bad state. */
GilbertElliottParams
harshChannel()
{
    GilbertElliottParams bad;
    bad.lossGood = 0.2;
    bad.lossBad = 0.95;
    bad.pGoodToBad = 0.9;
    bad.pBadToGood = 0.05;
    return bad;
}

/** Feed @p controller alternating clean/fade telemetry. */
size_t
driveSquareWave(CrossEndController &controller, size_t windows,
                double fade_scale)
{
    size_t flips = 0;
    for (size_t w = 0; w < windows; ++w) {
        ControlTelemetry telemetry;
        telemetry.at = Time::seconds(60.0) * double(w + 1);
        telemetry.eventsPerSecond = 4.0;
        telemetry.stateOfCharge = 1.0;
        telemetry.meanAttemptsPerPacket =
            (w / 2) % 2 == 1 ? fade_scale : 1.0;
        const ControlDecision decision =
            controller.observe(telemetry);
        flips += decision.action == "repartition";
    }
    return flips;
}

// --- controller policy --------------------------------------------

TEST(ControllerTest, UnguardedControllerThrashesOnSquareWave)
{
    const EngineTopology topo = flippingTopology();
    ControlConfig config;
    config.hysteresis = 0.0;
    config.minDwell = Time();
    CrossEndController controller(topo, link2, config);
    const size_t flips = driveSquareWave(controller, 16, 4.0);
    // Every half-period boundary flips the cut back and forth.
    EXPECT_GE(flips, 6u);
    EXPECT_EQ(controller.report().repartitions, flips);
}

TEST(ControllerTest, MinimumDwellPreventsOscillation)
{
    const EngineTopology topo = flippingTopology();
    ControlConfig config;
    config.hysteresis = 0.0;
    config.minDwell = Time::seconds(600.0); // 10 windows
    CrossEndController controller(topo, link2, config);
    const size_t flips = driveSquareWave(controller, 16, 4.0);
    EXPECT_LE(flips, 2u);
    EXPECT_GT(controller.report().dwellHolds, 0u);
}

TEST(ControllerTest, HysteresisBandHoldsSmallImprovements)
{
    const EngineTopology topo = flippingTopology();
    ControlConfig config;
    config.hysteresis = 10.0; // no improvement can clear 1000%
    config.minDwell = Time();
    CrossEndController controller(topo, link2, config);
    const size_t flips = driveSquareWave(controller, 16, 4.0);
    EXPECT_EQ(flips, 0u);
    EXPECT_GT(controller.report().hysteresisHolds, 0u);
}

TEST(ControllerTest, OneColdSolvePerControllerLifetime)
{
    const EngineTopology topo = flippingTopology();
    ControlConfig config;
    config.hysteresis = 0.0;
    config.minDwell = Time();
    CrossEndController controller(topo, link2, config);
    driveSquareWave(controller, 16, 4.0);
    const ControlReport report = controller.report();
    EXPECT_EQ(report.coldSolves, 1u);
    EXPECT_GE(report.warmSolves, 1u);
}

TEST(ControllerTest, DutyLevelFollowsStateOfCharge)
{
    const EngineTopology topo = flippingTopology();
    CrossEndController controller(topo, link2, ControlConfig{});
    ControlTelemetry telemetry;
    telemetry.eventsPerSecond = 4.0;
    const double socs[] = {1.0, 0.5, 0.34, 0.2, 0.1};
    const size_t levels[] = {0, 0, 1, 1, 2};
    for (size_t i = 0; i < 5; ++i) {
        telemetry.at = Time::seconds(60.0) * double(i + 1);
        telemetry.stateOfCharge = socs[i];
        controller.observe(telemetry);
        EXPECT_EQ(controller.dutyLevel(), levels[i])
            << "soc " << socs[i];
    }
}

TEST(ControllerTest, HandoverCostCountsMovedCellsOnly)
{
    const EngineTopology topo = flippingTopology();
    CrossEndController controller(topo, link2, ControlConfig{});
    EXPECT_EQ(controller.handoverCost(controller.placement())
                  .movedCells,
              0u);
    EXPECT_EQ(
        controller.handoverCost(controller.placement()).sensorEnergy
            .j(),
        0.0);
    const Placement all = Placement::allInSensor(topo);
    const HandoverCost cost = controller.handoverCost(all);
    EXPECT_GT(cost.movedCells, 0u);
    EXPECT_GT(cost.sensorEnergy.j(), 0.0);
    EXPECT_GT(cost.airTime.sec(), 0.0);
}

TEST(ControllerTest, ConfigValidationPanicsOnNonsense)
{
    ControlConfig config;
    config.repartitionPeriod = Time();
    EXPECT_THROW(config.validate(), PanicError);

    config = ControlConfig{};
    config.dutyLevels = {1.0, 1.2};
    config.socThresholds = {0.5};
    EXPECT_THROW(config.validate(), PanicError);

    config = ControlConfig{};
    config.socThresholds = {0.15, 0.35}; // must decrease
    EXPECT_THROW(config.validate(), PanicError);

    config = ControlConfig{};
    config.dutyLevels = {1.0};
    config.socThresholds = {0.5}; // one level needs no thresholds
    EXPECT_THROW(config.validate(), PanicError);
}

// --- adaptive stream over a trace ---------------------------------

TEST(AdaptiveSimTest, StaticPathMatchesLegacyStreamByteForByte)
{
    const EngineTopology topo = flippingTopology();
    const Placement placement =
        Placement::fromMask(topo, {true, true, false, false});
    const NonstationaryTrace trace =
        NonstationaryTrace::steady(1, Time::seconds(10.0), 4.0);

    AdaptiveRunConfig run;
    run.control.repartitionPeriod = Time::seconds(10.0);
    run.sampleCap = 0; // simulate every event
    const AdaptiveStreamResult windowed =
        simulateStaticStream(topo, placement, link2, trace, run);

    const StreamResult legacy =
        simulateStream(topo, placement, link2, 4.0, 40);

    EXPECT_EQ(windowed.stream.events, legacy.events);
    EXPECT_EQ(windowed.stream.deadlineMisses,
              legacy.deadlineMisses);
    EXPECT_EQ(windowed.stream.degradedEvents, legacy.degradedEvents);
    EXPECT_EQ(windowed.stream.meanLatency.us(),
              legacy.meanLatency.us());
    EXPECT_EQ(windowed.stream.worstLatency.us(),
              legacy.worstLatency.us());
    EXPECT_EQ(windowed.stream.sensorEnergy.compute.j(),
              legacy.sensorEnergy.compute.j());
    EXPECT_EQ(windowed.stream.sensorEnergy.tx.j(),
              legacy.sensorEnergy.tx.j());
    EXPECT_EQ(windowed.stream.sensorEnergy.rx.j(),
              legacy.sensorEnergy.rx.j());
    EXPECT_FALSE(windowed.stream.control.enabled);
    EXPECT_FALSE(windowed.stream.robustness.enabled);
}

TEST(AdaptiveSimTest, ControllerRepartitionsOnSquareWaveTrace)
{
    const EngineTopology topo = flippingTopology();
    const NonstationaryTrace trace = NonstationaryTrace::squareWave(
        12, Time::seconds(60.0), 4.0, 2, harshChannel());

    AdaptiveRunConfig run;
    run.control.hysteresis = 0.0;
    run.control.minDwell = Time();
    run.sampleCap = 32;
    const AdaptiveStreamResult result =
        simulateAdaptiveStream(topo, link2, trace, run);

    const ControlReport &control = result.stream.control;
    EXPECT_TRUE(control.enabled);
    EXPECT_EQ(control.windows, 12u);
    EXPECT_GE(control.repartitions, 2u);
    EXPECT_EQ(control.coldSolves, 1u);
    EXPECT_GE(control.warmSolves, 1u);
    EXPECT_GT(control.handoverTotalUj, 0.0);
    EXPECT_EQ(control.decisions.size(), 12u);
    EXPECT_LT(result.finalStateOfCharge, 1.0);
}

TEST(AdaptiveSimTest, RunsAreDeterministic)
{
    const EngineTopology topo = flippingTopology();
    const NonstationaryTrace trace = NonstationaryTrace::squareWave(
        8, Time::seconds(60.0), 4.0, 2, harshChannel());
    AdaptiveRunConfig run;
    run.control.hysteresis = 0.0;
    run.control.minDwell = Time();
    run.sampleCap = 16;
    const AdaptiveStreamResult a =
        simulateAdaptiveStream(topo, link2, trace, run);
    const AdaptiveStreamResult b =
        simulateAdaptiveStream(topo, link2, trace, run);
    EXPECT_EQ(a.stream.control.serialize(),
              b.stream.control.serialize());
    EXPECT_EQ(a.batteryEnergy.j(), b.batteryEnergy.j());
}

TEST(AdaptiveSimTest, LifetimeBeatsStaticExtremesOnDrift)
{
    const EngineTopology topo = flippingTopology();
    // Alternate clean and faded hours so neither static extreme is
    // ever right for long.
    const NonstationaryTrace trace = NonstationaryTrace::squareWave(
        8, Time::hours(0.5), 4.0, 2, harshChannel());
    AdaptiveRunConfig run;
    run.sensor.battery = Battery(2.0, 3.7); // small cell: fast test
    run.sampleCap = 16;

    const LifetimeResult adaptive =
        adaptiveLifetime(topo, link2, trace, run);
    const LifetimeResult in_sensor = staticLifetime(
        topo, Placement::allInSensor(topo), link2, trace, run);
    const LifetimeResult in_aggregator = staticLifetime(
        topo, Placement::allInAggregator(topo), link2, trace, run);

    EXPECT_GT(adaptive.lifetime.sec(), in_sensor.lifetime.sec());
    EXPECT_GT(adaptive.lifetime.sec(),
              in_aggregator.lifetime.sec());
    EXPECT_EQ(adaptive.control.coldSolves, 1u);
    EXPECT_GT(adaptive.tracePasses, 1u);
}

TEST(AdaptiveSimTest, DecisionTraceCapBoundsRetention)
{
    const EngineTopology topo = flippingTopology();
    const NonstationaryTrace trace = NonstationaryTrace::squareWave(
        12, Time::seconds(60.0), 4.0, 2, harshChannel());
    AdaptiveRunConfig run;
    run.control.decisionTraceCap = 5;
    run.sampleCap = 16;
    const AdaptiveStreamResult result =
        simulateAdaptiveStream(topo, link2, trace, run);
    EXPECT_EQ(result.stream.control.decisions.size(), 5u);
    EXPECT_EQ(result.stream.control.droppedDecisions, 7u);
    EXPECT_EQ(result.stream.control.windows, 12u);
}

// --- nonstationary traces -----------------------------------------

TEST(TraceTest, DiscretizeNeverStraddlesEnvironmentChanges)
{
    NonstationaryTrace trace;
    ControlWindow a;
    a.duration = Time::seconds(150.0);
    a.eventsPerSecond = 1.0;
    ControlWindow b;
    b.duration = Time::seconds(90.0);
    b.eventsPerSecond = 8.0;
    trace.windows = {a, b};

    const std::vector<ControlWindow> chopped =
        trace.discretize(Time::seconds(60.0));
    ASSERT_EQ(chopped.size(), 5u);
    EXPECT_EQ(chopped[0].duration.sec(), 60.0);
    EXPECT_EQ(chopped[2].duration.sec(), 30.0); // trailing chunk
    EXPECT_EQ(chopped[2].eventsPerSecond, 1.0);
    EXPECT_EQ(chopped[3].eventsPerSecond, 8.0);
    EXPECT_EQ(chopped[4].duration.sec(), 30.0);
    Time total;
    for (const ControlWindow &w : chopped)
        total += w.duration;
    EXPECT_EQ(total.sec(), trace.total().sec());
}

TEST(TraceTest, DayTraceIsSeededAndNonstationary)
{
    const NonstationaryTrace day = NonstationaryTrace::day(7);
    ASSERT_EQ(day.windows.size(), 24u);
    EXPECT_EQ(day.total().hr(), 24.0);
    size_t faded = 0;
    for (const ControlWindow &w : day.windows)
        faded += !w.idealChannel();
    EXPECT_GT(faded, 0u);
    EXPECT_LT(faded, 24u);
    EXPECT_NE(day.windows[2].eventsPerSecond,
              day.windows[12].eventsPerSecond);
    // Same seed, same day; different seed, different episodes.
    const NonstationaryTrace again = NonstationaryTrace::day(7);
    for (size_t w = 0; w < 24; ++w) {
        EXPECT_EQ(day.windows[w].idealChannel(),
                  again.windows[w].idealChannel());
    }
}

// --- fleet decision-trace determinism -----------------------------

/** Small-but-real fleet config that trains quickly. */
FleetConfig
tinyFleetConfig(size_t workers)
{
    FleetConfig config;
    config.nodes = heterogeneousFleet(3);
    for (FleetNodeSpec &node : config.nodes) {
        node.subspaceCandidates = 6;
        node.maxTrainingSegments = 60;
    }
    config.workers = workers;
    config.eventsPerNode = 3;
    return config;
}

TEST(AdaptiveFleetTest, ControlReportIsByteIdenticalAcrossWorkers)
{
    const NonstationaryTrace trace = NonstationaryTrace::squareWave(
        4, Time::seconds(60.0), 2.0, 1, harshChannel());
    AdaptiveRunConfig run;
    run.sampleCap = 8;

    const FleetResult one =
        runAdaptiveFleet(tinyFleetConfig(1), trace, run);
    const FleetResult four =
        runAdaptiveFleet(tinyFleetConfig(4), trace, run);

    ASSERT_TRUE(one.report.control.enabled);
    EXPECT_EQ(one.report.control.coldSolves, 3u); // one per node
    EXPECT_EQ(one.report.control.windows, 12u);   // 4 per node
    EXPECT_EQ(one.report.control.serialize(),
              four.report.control.serialize());
    EXPECT_EQ(one.report.serialize(), four.report.serialize());
}

// --- argparse satellites ------------------------------------------

TEST(ArgparseTest, RealParsersValidate)
{
    EXPECT_EQ(parsePositiveRealArg("2.5", "--repartition-period"),
              2.5);
    EXPECT_THROW(parsePositiveRealArg("0", "--repartition-period"),
                 FatalError);
    EXPECT_THROW(parsePositiveRealArg("-1", "--repartition-period"),
                 FatalError);
    EXPECT_THROW(parsePositiveRealArg("abc", "--repartition-period"),
                 FatalError);
    EXPECT_EQ(parseNonNegativeRealArg("0", "--hysteresis"), 0.0);
    EXPECT_EQ(parseNonNegativeRealArg("0.25", "--hysteresis"), 0.25);
    EXPECT_THROW(parseNonNegativeRealArg("-0.1", "--hysteresis"),
                 FatalError);
    EXPECT_THROW(parseNonNegativeRealArg("nope", "--hysteresis"),
                 FatalError);
}

} // namespace
