/**
 * @file
 * Counting allocator for the allocation-regression tests.
 *
 * Linking xpro_alloc_count into a test binary replaces the global
 * operator new/delete family with counting forwards to malloc/free.
 * AllocScope then measures how many heap allocations a region of
 * code performed — the tool the hot-path tests use to prove the
 * steady-state serving and simulation loops allocate zero times per
 * event after warmup (DESIGN.md §15).
 *
 * The counter is process-global and atomic; scope the measured
 * region to a single thread (the allocation-free claims are about
 * the inline paths) and keep gtest assertions outside it.
 */

#ifndef XPRO_TESTS_ALLOC_COUNT_HH
#define XPRO_TESTS_ALLOC_COUNT_HH

#include <cstddef>

namespace xpro::testing
{

/** Heap allocations (any operator new) since program start. */
size_t allocCount();

/** Counts allocations from construction to count(). */
class AllocScope
{
  public:
    AllocScope() : _start(allocCount()) {}

    size_t count() const { return allocCount() - _start; }

  private:
    size_t _start;
};

} // namespace xpro::testing

#endif // XPRO_TESTS_ALLOC_COUNT_HH
