/**
 * @file
 * Tests closing the loop between the executable serial-cell
 * simulator, the fixed-point feature datapath and the cost library:
 * values must be bit-exact with features_fixed, and measured
 * op/cycle counts must agree with the modeled workloads.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"
#include "dsp/features_fixed.hh"
#include "hw/cell_library.hh"
#include "hw/cell_model.hh"
#include "hw/cell_sim.hh"

namespace
{

using namespace xpro;

const Technology &tech90 = Technology::get(ProcessNode::Tsmc90);

std::vector<Fixed>
randomInput(Rng &rng, size_t n, double amplitude = 1.5)
{
    std::vector<Fixed> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i)
        out.push_back(Fixed::fromDouble(rng.gaussian(0.0, amplitude)));
    return out;
}

TEST(CellSimTest, ResultsBitExactWithFixedDatapath)
{
    Rng rng(1801);
    for (int trial = 0; trial < 10; ++trial) {
        const auto input = randomInput(rng, 128);
        for (FeatureKind kind : allFeatureKinds) {
            const CellExecution exec =
                executeFeatureCell(kind, input, tech90);
            EXPECT_EQ(exec.result.raw(),
                      computeFixedFeature(kind, input).raw())
                << featureName(kind) << " trial " << trial;
        }
    }
}

TEST(CellSimTest, OpCountsMatchCostLibrary)
{
    Rng rng(1803);
    const size_t n = 128;
    const auto input = randomInput(rng, n);
    for (FeatureKind kind : allFeatureKinds) {
        const CellExecution exec =
            executeFeatureCell(kind, input, tech90);
        const CellWorkload model = featureCellWorkload(kind, n);
        for (AluOp op : allAluOps) {
            const double executed =
                static_cast<double>(exec.count(op));
            const double modeled =
                static_cast<double>(model.count(op));
            // Czero's Add count is data dependent (one increment per
            // crossing); the model uses n/2.
            const double tolerance =
                (kind == FeatureKind::Czero && op == AluOp::Add)
                    ? 0.6 * static_cast<double>(n)
                    : 0.15 * std::max(modeled, 8.0);
            EXPECT_NEAR(executed, modeled, tolerance)
                << featureName(kind) << " " << aluOpName(op);
        }
    }
}

TEST(CellSimTest, CyclesMatchSerialModeModel)
{
    Rng rng(1805);
    const size_t n = 128;
    const auto input = randomInput(rng, n);
    for (FeatureKind kind : allFeatureKinds) {
        const CellExecution exec =
            executeFeatureCell(kind, input, tech90);
        const ModeCosts model = evaluateCellMode(
            featureCellWorkload(kind, n), AluMode::Serial, tech90);
        const double ratio = static_cast<double>(exec.cycles) /
                             static_cast<double>(model.cycles);
        EXPECT_GT(ratio, 0.8) << featureName(kind);
        EXPECT_LT(ratio, 1.25) << featureName(kind);
    }
}

TEST(CellSimTest, MaxMinCountsAreExact)
{
    Rng rng(1807);
    const auto input = randomInput(rng, 100);
    for (FeatureKind kind : {FeatureKind::Max, FeatureKind::Min}) {
        const CellExecution exec =
            executeFeatureCell(kind, input, tech90);
        EXPECT_EQ(exec.count(AluOp::Buf), 100u);
        EXPECT_EQ(exec.count(AluOp::Cmp), 99u);
        EXPECT_EQ(exec.count(AluOp::Mul), 0u);
    }
}

TEST(CellSimTest, StdIssuesExactlyOneSqrt)
{
    Rng rng(1809);
    const auto input = randomInput(rng, 64);
    const CellExecution exec =
        executeFeatureCell(FeatureKind::Std, input, tech90);
    EXPECT_EQ(exec.count(AluOp::Sqrt), 1u);
}

TEST(CellSimTest, CyclesScaleWithInputLength)
{
    Rng rng(1811);
    const auto short_input = randomInput(rng, 32);
    const auto long_input = randomInput(rng, 128);
    for (FeatureKind kind : allFeatureKinds) {
        const size_t short_cycles =
            executeFeatureCell(kind, short_input, tech90).cycles;
        const size_t long_cycles =
            executeFeatureCell(kind, long_input, tech90).cycles;
        EXPECT_GT(long_cycles, 3 * short_cycles)
            << featureName(kind);
    }
}

TEST(CellSimTest, ConstantInputDegeneratesGracefully)
{
    const std::vector<Fixed> flat(64, Fixed::fromDouble(2.0));
    for (FeatureKind kind : allFeatureKinds) {
        const CellExecution exec =
            executeFeatureCell(kind, flat, tech90);
        EXPECT_EQ(exec.result.raw(),
                  computeFixedFeature(kind, flat).raw())
            << featureName(kind);
    }
}

TEST(CellSimTest, TooShortInputPanics)
{
    const std::vector<Fixed> one(1, Fixed());
    EXPECT_THROW(executeFeatureCell(FeatureKind::Max, one, tech90),
                 PanicError);
}

} // namespace
