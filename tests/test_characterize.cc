/**
 * @file
 * Tests that the ALU-mode characterization reproduces the shape of
 * paper Fig. 4: serial optimal for most components, pipeline optimal
 * for Std and DWT, simple comparison cells near-tied between serial
 * and pipeline, and parallel never optimal (with the parallel DWT
 * about two orders of magnitude above serial).
 */

#include <gtest/gtest.h>

#include "hw/characterize.hh"

namespace
{

using namespace xpro;

const Technology &tech90 = Technology::get(ProcessNode::Tsmc90);

TEST(CharacterizeTest, CoversAllComponents)
{
    const auto rows = characterizeAllComponents(tech90);
    ASSERT_EQ(rows.size(), allComponentKinds.size());
    for (size_t i = 0; i < rows.size(); ++i)
        EXPECT_EQ(rows[i].kind, allComponentKinds[i]);
}

TEST(CharacterizeTest, Fig4OptimalModes)
{
    // Paper Fig. 4 red stars.
    const struct
    {
        ComponentKind kind;
        AluMode expected;
    } stars[] = {
        {ComponentKind::Max, AluMode::Serial},
        {ComponentKind::Min, AluMode::Serial},
        {ComponentKind::Mean, AluMode::Serial},
        {ComponentKind::Var, AluMode::Serial},
        {ComponentKind::Std, AluMode::Pipeline},
        {ComponentKind::Czero, AluMode::Serial},
        {ComponentKind::Skew, AluMode::Serial},
        {ComponentKind::Kurt, AluMode::Serial},
        {ComponentKind::Dwt, AluMode::Pipeline},
        {ComponentKind::Svm, AluMode::Serial},
        {ComponentKind::Fusion, AluMode::Serial},
    };
    for (const auto &row : stars) {
        const auto c = characterizeComponent(row.kind, tech90);
        EXPECT_EQ(c.bestMode, row.expected)
            << componentName(row.kind);
    }
}

TEST(CharacterizeTest, ParallelNeverOptimal)
{
    for (const auto &c : characterizeAllComponents(tech90))
        EXPECT_NE(c.bestMode, AluMode::Parallel)
            << componentName(c.kind);
}

TEST(CharacterizeTest, SimpleCellsNearTieWithPipeline)
{
    // "Some simple operations, such as Max, Min and Czero, being
    // similar to the pipeline mode."
    for (ComponentKind kind :
         {ComponentKind::Max, ComponentKind::Min, ComponentKind::Czero}) {
        const auto c = characterizeComponent(kind, tech90);
        const double ratio = c.mode(AluMode::Pipeline).energy /
                             c.mode(AluMode::Serial).energy;
        EXPECT_GT(ratio, 0.8) << componentName(kind);
        EXPECT_LT(ratio, 1.25) << componentName(kind);
    }
}

TEST(CharacterizeTest, ParallelDwtTwoOrdersAboveSerial)
{
    const auto c = characterizeComponent(ComponentKind::Dwt, tech90);
    const double ratio = c.mode(AluMode::Parallel).energy /
                         c.mode(AluMode::Serial).energy;
    EXPECT_GT(ratio, 30.0);
}

TEST(CharacterizeTest, BestAccessorIsConsistent)
{
    const auto c = characterizeComponent(ComponentKind::Svm, tech90);
    EXPECT_DOUBLE_EQ(c.best().energy.pj(),
                     c.mode(c.bestMode).energy.pj());
}

TEST(CharacterizeTest, StarsStableAcrossTechnologies)
{
    // The optimal-mode pattern is set by relative costs, which are
    // shared across nodes; absolute energies shift, stars should
    // not.
    for (ProcessNode node : allProcessNodes) {
        const auto rows =
            characterizeAllComponents(Technology::get(node));
        for (const auto &c : rows) {
            const auto baseline =
                characterizeComponent(c.kind, tech90);
            EXPECT_EQ(c.bestMode, baseline.bestMode)
                << componentName(c.kind) << " at "
                << processNodeName(node);
        }
    }
}

TEST(CharacterizeTest, EnergiesInPicojoulePerEventRange)
{
    // Fig. 4 reports pJ/event on a log axis from hundreds of pJ up;
    // our reconstruction should land within sane bounds.
    for (const auto &c : characterizeAllComponents(tech90)) {
        EXPECT_GT(c.best().energy.pj(), 100.0)
            << componentName(c.kind);
        EXPECT_LT(c.best().energy.pj(), 1.0e6)
            << componentName(c.kind);
    }
}

TEST(CharacterizeTest, DelaysWellUnderRealTimeBudget)
{
    // Every single cell must finish far inside a segment period
    // (hundreds of ms) at the 16 MHz cell clock.
    for (const auto &c : characterizeAllComponents(tech90)) {
        EXPECT_LT(c.best().delay.ms(), 1.0) << componentName(c.kind);
    }
}

TEST(CharacterizeTest, SetupParametersPropagate)
{
    CharacterizationSetup small;
    small.featureInputLength = 32;
    small.svmSupportVectors = 5;
    const auto small_var = characterizeComponent(
        ComponentKind::Var, tech90, small);
    const auto big_var = characterizeComponent(ComponentKind::Var,
                                               tech90);
    EXPECT_LT(small_var.best().energy, big_var.best().energy);

    const auto small_svm = characterizeComponent(
        ComponentKind::Svm, tech90, small);
    const auto big_svm = characterizeComponent(ComponentKind::Svm,
                                               tech90);
    EXPECT_LT(small_svm.best().energy, big_svm.best().energy);
}

TEST(CharacterizeTest, ComponentForFeatureRoundTrip)
{
    for (FeatureKind kind : allFeatureKinds) {
        const ComponentKind comp = componentForFeature(kind);
        EXPECT_EQ(componentName(comp), featureName(kind));
    }
}

} // namespace
