/**
 * @file
 * Unit tests for the functional-cell mode cost model.
 */

#include <gtest/gtest.h>

#include <set>

#include "hw/cell_library.hh"
#include "hw/cell_model.hh"

namespace
{

using namespace xpro;

const Technology &tech90 = Technology::get(ProcessNode::Tsmc90);

CellWorkload
addOnlyWorkload(size_t n)
{
    CellWorkload w;
    w.count(AluOp::Add) = n;
    w.count(AluOp::Buf) = n;
    w.pipelineStream = n;
    return w;
}

TEST(CellModelTest, DatapathOpsExcludesBuffer)
{
    CellWorkload w;
    w.count(AluOp::Add) = 10;
    w.count(AluOp::Mul) = 5;
    w.count(AluOp::Buf) = 100;
    EXPECT_EQ(w.datapathOps(), 15u);
}

TEST(CellModelTest, WorkloadComposition)
{
    CellWorkload a;
    a.count(AluOp::Add) = 3;
    a.pipelineStream = 3;
    a.pipelineBufferScale = 0.2;
    CellWorkload b;
    b.count(AluOp::Add) = 2;
    b.count(AluOp::Sqrt) = 1;
    b.pipelineStream = 2;
    a += b;
    EXPECT_EQ(a.count(AluOp::Add), 5u);
    EXPECT_EQ(a.count(AluOp::Sqrt), 1u);
    EXPECT_EQ(a.pipelineStream, 5u);
    // Composition keeps the weaker streaming benefit.
    EXPECT_DOUBLE_EQ(a.pipelineBufferScale, 1.0);
}

TEST(CellModelTest, SerialCyclesMatchOpLatencies)
{
    CellWorkload w;
    w.count(AluOp::Add) = 10; // 1 cycle each
    w.count(AluOp::Mul) = 5;  // 2 cycles each
    w.count(AluOp::Div) = 1;  // 16 cycles
    const ModeCosts costs =
        evaluateCellMode(w, AluMode::Serial, tech90);
    EXPECT_EQ(costs.cycles, 10u + 10u + 16u);
    EXPECT_DOUBLE_EQ(costs.delay.us(),
                     static_cast<double>(costs.cycles) / 16.0);
}

TEST(CellModelTest, EnergyScalesWithWork)
{
    const ModeCosts small =
        evaluateCellMode(addOnlyWorkload(64), AluMode::Serial, tech90);
    const ModeCosts large =
        evaluateCellMode(addOnlyWorkload(256), AluMode::Serial,
                         tech90);
    EXPECT_GT(large.energy, small.energy);
    EXPECT_GT(large.delay, small.delay);
    // Roughly proportional (fixed wake cost breaks exactness).
    EXPECT_NEAR(large.energy / small.energy, 4.0, 0.5);
}

TEST(CellModelTest, ParallelIsFastestSerialIsSlowest)
{
    const CellWorkload w = dwtLevelWorkload(128);
    const ModeCosts serial =
        evaluateCellMode(w, AluMode::Serial, tech90);
    const ModeCosts parallel =
        evaluateCellMode(w, AluMode::Parallel, tech90);
    const ModeCosts pipeline =
        evaluateCellMode(w, AluMode::Pipeline, tech90);
    EXPECT_LT(parallel.delay, pipeline.delay);
    EXPECT_LT(pipeline.delay, serial.delay);
}

TEST(CellModelTest, ParallelDwtIsTwoOrdersAboveSerial)
{
    // Paper Fig. 4: the monotonic parallel DWT needs a large number
    // of simultaneous multipliers and lands about two orders of
    // magnitude above serial.
    const CellWorkload w = dwtLevelWorkload(128);
    const double ratio =
        evaluateCellMode(w, AluMode::Parallel, tech90).energy /
        evaluateCellMode(w, AluMode::Serial, tech90).energy;
    EXPECT_GT(ratio, 30.0);
    EXPECT_LT(ratio, 300.0);
}

TEST(CellModelTest, EnergyScalesAcrossTechnologies)
{
    const CellWorkload w = svmCellWorkload(12, 40);
    const Energy e130 =
        evaluateCellMode(w, AluMode::Serial,
                         Technology::get(ProcessNode::Tsmc130))
            .energy;
    const Energy e90 =
        evaluateCellMode(w, AluMode::Serial, tech90).energy;
    const Energy e45 =
        evaluateCellMode(w, AluMode::Serial,
                         Technology::get(ProcessNode::Tsmc45))
            .energy;
    EXPECT_GT(e130, e90);
    EXPECT_GT(e90, e45);
    // Delay is technology-independent at the fixed 16 MHz clock.
    EXPECT_EQ(evaluateCellMode(w, AluMode::Serial,
                               Technology::get(ProcessNode::Tsmc130))
                  .cycles,
              evaluateCellMode(w, AluMode::Serial,
                               Technology::get(ProcessNode::Tsmc45))
                  .cycles);
}

TEST(CellModelTest, PipelineBufferScaleReducesEnergy)
{
    CellWorkload streaming = dwtLevelWorkload(128);
    CellWorkload nonstreaming = streaming;
    nonstreaming.pipelineBufferScale = 1.0;
    const Energy with_streaming =
        evaluateCellMode(streaming, AluMode::Pipeline, tech90).energy;
    const Energy without =
        evaluateCellMode(nonstreaming, AluMode::Pipeline, tech90)
            .energy;
    EXPECT_LT(with_streaming, without);
}

TEST(CellModelTest, BestModeMatchesExhaustiveMinimum)
{
    for (ComponentKind kind : allComponentKinds) {
        const CellWorkload w = [&] {
            switch (kind) {
              case ComponentKind::Dwt:
                return dwtLevelWorkload(64);
              case ComponentKind::Svm:
                return svmCellWorkload(12, 25);
              case ComponentKind::Fusion:
                return fusionCellWorkload(10);
              default:
                return featureCellWorkload(
                    static_cast<FeatureKind>(kind), 128);
            }
        }();
        const AluMode best = bestCellMode(w, tech90);
        const Energy best_energy = bestCellCosts(w, tech90).energy;
        for (AluMode mode : allAluModes) {
            EXPECT_LE(best_energy.pj(),
                      evaluateCellMode(w, mode, tech90).energy.pj() +
                          1e-9)
                << componentName(kind) << " " << aluModeName(mode);
        }
        EXPECT_EQ(best_energy.pj(),
                  evaluateCellMode(w, best, tech90).energy.pj());
    }
}

TEST(CellModelTest, ActivePowerIsEnergyOverDelay)
{
    const ModeCosts costs =
        evaluateCellMode(addOnlyWorkload(100), AluMode::Serial,
                         tech90);
    EXPECT_NEAR(costs.activePower().uw(),
                costs.energy.uj() / costs.delay.sec(), 1e-9);
}

TEST(CellModelTest, ModeNames)
{
    std::set<std::string> names;
    for (AluMode mode : allAluModes)
        names.insert(aluModeName(mode));
    EXPECT_EQ(names.size(), 3u);
}

} // namespace
