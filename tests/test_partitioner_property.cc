/**
 * @file
 * Property-based oracle suite for the Automatic XPro Generator,
 * driven by seeded random DAG topologies rather than hand-built
 * fixtures. Pins down the three contracts the warm-started
 * generator rests on:
 *
 *  - the min-cut capacity equals the induced placement's modeled
 *    sensor energy (the s-t graph *is* the energy model);
 *  - on small topologies the cut matches exhaustive enumeration of
 *    all 2^n placements;
 *  - warm-started sweeps (ascending, descending, and admission
 *    reweights) are indistinguishable from cold solves at every
 *    lambda, and the parallel candidate evaluation reproduces the
 *    sequential design bit for bit.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/random.hh"
#include "core/partitioner.hh"
#include "topology_fixtures.hh"

namespace
{

using namespace xpro;
using xpro::test::CellSpec;
using xpro::test::MiniTopology;

const WirelessLink link2(transceiver(WirelessModel::Model2));

/**
 * Random DAG topology with up to 12 cells (exhaustively enumerable):
 * every cell consumes the raw source or earlier cells at random, and
 * dangling cells are wired into the fusion cell.
 */
EngineTopology
randomDag(Rng &rng)
{
    MiniTopology mini(256 + 64 * rng.below(16));
    const size_t cells = 2 + rng.below(10); // excluding fusion
    std::vector<size_t> ids;
    std::vector<bool> has_consumer;
    for (size_t i = 0; i < cells; ++i) {
        CellSpec spec;
        spec.name = "c" + std::to_string(i);
        spec.sensorNj = rng.uniform(10.0, 4000.0);
        spec.aggregatorNj = rng.uniform(50.0, 6000.0);
        spec.sensorUs = rng.uniform(5.0, 400.0);
        spec.aggregatorUs = rng.uniform(1.0, 40.0);
        spec.outputBits = 16 + 16 * rng.below(4);
        const size_t id = mini.addCell(
            spec, rng.chance(0.5) ? ComponentKind::Var
                                  : ComponentKind::Svm);
        bool fed = false;
        for (size_t j = 0; j < ids.size(); ++j) {
            if (rng.chance(0.35)) {
                mini.connect(ids[j], id);
                has_consumer[j] = true;
                fed = true;
            }
        }
        if (!fed || rng.chance(0.3))
            mini.connect(DataflowGraph::sourceId, id);
        ids.push_back(id);
        has_consumer.push_back(false);
    }
    CellSpec fuse;
    fuse.name = "fusion";
    fuse.sensorNj = rng.uniform(5.0, 200.0);
    const size_t fusion = mini.addCell(fuse);
    for (size_t j = 0; j < ids.size(); ++j) {
        if (!has_consumer[j] || rng.chance(0.2))
            mini.connect(ids[j], fusion);
    }
    return mini.build(fusion);
}

/** The generator's geometric sweep schedule, optionally reversed. */
std::vector<double>
lambdaSchedule(bool descending)
{
    std::vector<double> lambdas;
    for (double lambda = 1e-10; lambda <= 1e4; lambda *= 1.3)
        lambdas.push_back(lambda);
    if (descending)
        std::reverse(lambdas.begin(), lambdas.end());
    return lambdas;
}

bool
samePlacement(const Placement &a, const Placement &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t u = 0; u < a.size(); ++u) {
        if (a.inSensor(u) != b.inSensor(u))
            return false;
    }
    return true;
}

class GeneratorPropertyTest
    : public ::testing::TestWithParam<uint64_t>
{
};

/**
 * The s-t graph is the energy model: at lambda == 0 the min-cut
 * capacity is exactly the induced placement's sensor event energy,
 * and under an admission penalty it is exactly the penalized
 * objective.
 */
TEST_P(GeneratorPropertyTest, CutCapacityEqualsSensorEnergy)
{
    Rng rng(GetParam());
    const EngineTopology topo = randomDag(rng);
    const XProGenerator gen(topo, link2);
    const LambdaCut cut = gen.cutAt(0.0);
    const double modeled =
        sensorEventEnergy(topo, cut.placement, link2).total().j();
    EXPECT_NEAR(cut.cutValue, modeled,
                1e-9 * (1.0 + modeled));

    GeneratorOptions options;
    options.aggregatorEnergyWeight = 0.7;
    const XProGenerator penalized(topo, link2, options);
    const LambdaCut pcut = penalized.cutAt(0.0);
    const double pobjective =
        penalized.objective(pcut.placement).j();
    EXPECT_NEAR(pcut.cutValue, pobjective,
                1e-9 * (1.0 + pobjective));
}

/**
 * Oracle equivalence: on these <= 12-cell topologies the cut's
 * energy matches brute-force enumeration of every placement.
 */
TEST_P(GeneratorPropertyTest, MatchesExhaustiveEnumeration)
{
    Rng rng(GetParam() + 100);
    const EngineTopology topo = randomDag(rng);
    ASSERT_LE(topo.graph.cellCount(), 12u);
    const XProGenerator gen(topo, link2);
    const Placement via_cut = gen.minimumEnergyPlacement();
    const Placement oracle =
        gen.exhaustiveOptimum(Time::hours(1.0), 12);
    const double cut_energy =
        sensorEventEnergy(topo, via_cut, link2).total().nj();
    const double oracle_energy =
        sensorEventEnergy(topo, oracle, link2).total().nj();
    EXPECT_NEAR(cut_energy, oracle_energy,
                1e-6 * (1.0 + oracle_energy));
}

/**
 * Warm-start transparency: a single generator swept across the full
 * lambda schedule — ascending or descending, so capacity updates go
 * both up and down — induces the same placement and cut value as a
 * fresh generator solving each lambda from zero flow.
 */
TEST_P(GeneratorPropertyTest, WarmSweepMatchesColdSolves)
{
    Rng rng(GetParam() + 200);
    const EngineTopology topo = randomDag(rng);
    for (bool descending : {false, true}) {
        const XProGenerator warm_gen(topo, link2);
        for (double lambda : lambdaSchedule(descending)) {
            const LambdaCut warm = warm_gen.cutAt(lambda);
            const LambdaCut cold =
                XProGenerator(topo, link2).cutAt(lambda);
            EXPECT_TRUE(samePlacement(warm.placement,
                                      cold.placement))
                << "lambda " << lambda << " descending "
                << descending;
            EXPECT_NEAR(warm.cutValue, cold.cutValue,
                        1e-9 * (1.0 + cold.cutValue))
                << "lambda " << lambda;
        }
    }
}

/**
 * Admission reweighting keeps the warm network honest: tightening
 * and relaxing the aggregator-energy penalty on one instance gives
 * the same cut as a generator built fresh at that weight.
 */
TEST_P(GeneratorPropertyTest, PenaltyReweightMatchesFreshGenerator)
{
    Rng rng(GetParam() + 300);
    const EngineTopology topo = randomDag(rng);
    XProGenerator warm_gen(topo, link2);
    for (double weight : {0.0, 0.5, 2.0, 0.25, 8.0, 0.0}) {
        warm_gen.setAggregatorEnergyWeight(weight);
        const LambdaCut warm = warm_gen.cutAt(0.0);
        GeneratorOptions options;
        options.aggregatorEnergyWeight = weight;
        const LambdaCut cold =
            XProGenerator(topo, link2, options).cutAt(0.0);
        EXPECT_TRUE(samePlacement(warm.placement, cold.placement))
            << "weight " << weight;
        EXPECT_NEAR(warm.cutValue, cold.cutValue,
                    1e-9 * (1.0 + cold.cutValue))
            << "weight " << weight;
    }
}

/**
 * Determinism across worker counts: the parallel candidate
 * evaluation of generate() returns the same design as the
 * sequential path.
 */
TEST_P(GeneratorPropertyTest, ParallelSweepMatchesSequential)
{
    Rng rng(GetParam() + 400);
    const EngineTopology topo = randomDag(rng);
    const PartitionResult sequential =
        XProGenerator(topo, link2).generate();
    for (size_t workers : {2u, 5u}) {
        GeneratorOptions options;
        options.sweepWorkers = workers;
        const PartitionResult parallel =
            XProGenerator(topo, link2, options).generate();
        EXPECT_TRUE(samePlacement(sequential.placement,
                                  parallel.placement))
            << "workers " << workers;
        EXPECT_DOUBLE_EQ(sequential.energy.total().nj(),
                         parallel.energy.total().nj())
            << "workers " << workers;
        EXPECT_DOUBLE_EQ(sequential.delay.total().us(),
                         parallel.delay.total().us())
            << "workers " << workers;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorPropertyTest,
                         ::testing::Range(uint64_t{7000},
                                          uint64_t{7012}));

} // namespace
