/**
 * @file
 * Unit tests for the random subspace ensemble.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/logging.hh"
#include "common/random.hh"
#include "ml/random_subspace.hh"

namespace
{

using namespace xpro;

/**
 * Synthetic pool data: only a few "informative" columns carry the
 * class signal; the rest are noise, as in the real 48-feature pool
 * where only some features suit a given biosignal.
 */
LabeledData
poolData(Rng &rng, size_t n, size_t pool, std::set<size_t> informative)
{
    LabeledData data;
    for (size_t i = 0; i < n; ++i) {
        const bool positive = i % 2 == 0;
        std::vector<double> row(pool);
        for (size_t c = 0; c < pool; ++c) {
            if (informative.count(c)) {
                row[c] = rng.gaussian(positive ? 1.0 : -1.0, 0.35);
            } else {
                row[c] = rng.gaussian(0.0, 1.0);
            }
        }
        data.rows.push_back(std::move(row));
        data.labels.push_back(positive ? 1 : -1);
    }
    return data;
}

RandomSubspaceConfig
smallConfig(uint64_t seed)
{
    RandomSubspaceConfig config;
    config.subspaceDimension = 6;
    config.candidates = 30;
    config.keepFraction = 0.2;
    config.svm.kernel = {KernelKind::Rbf, 0.5};
    config.svm.c = 5.0;
    config.seed = seed;
    return config;
}

TEST(RandomSubspaceTest, LearnsInformativePool)
{
    Rng rng(401);
    const LabeledData train = poolData(rng, 160, 24, {1, 5, 9, 17});
    const LabeledData test = poolData(rng, 80, 24, {1, 5, 9, 17});
    const RandomSubspace ensemble =
        RandomSubspace::train(train, smallConfig(11));
    EXPECT_GE(ensemble.accuracy(test), 0.85);
}

TEST(RandomSubspaceTest, KeepsRequestedMemberCount)
{
    Rng rng(403);
    const LabeledData train = poolData(rng, 120, 24, {0, 3});
    RandomSubspaceConfig config = smallConfig(13);
    config.candidates = 20;
    config.keepFraction = 0.25;
    const RandomSubspace ensemble =
        RandomSubspace::train(train, config);
    EXPECT_EQ(ensemble.bases().size(), 5u);
    EXPECT_EQ(ensemble.fusionWeights().size(), 5u);
}

TEST(RandomSubspaceTest, BasesUseRequestedDimension)
{
    Rng rng(405);
    const LabeledData train = poolData(rng, 120, 24, {0, 3});
    const RandomSubspace ensemble =
        RandomSubspace::train(train, smallConfig(15));
    for (const BaseClassifier &base : ensemble.bases()) {
        EXPECT_EQ(base.featureIndices.size(), 6u);
        // Indices must be sorted, unique and within the pool.
        EXPECT_TRUE(std::is_sorted(base.featureIndices.begin(),
                                   base.featureIndices.end()));
        std::set<size_t> unique(base.featureIndices.begin(),
                                base.featureIndices.end());
        EXPECT_EQ(unique.size(), 6u);
        for (size_t idx : base.featureIndices)
            EXPECT_LT(idx, 24u);
        EXPECT_EQ(base.model.dimension(), 6u);
    }
}

TEST(RandomSubspaceTest, UsedFeaturesAreUnionOfBases)
{
    Rng rng(407);
    const LabeledData train = poolData(rng, 120, 24, {0, 3});
    const RandomSubspace ensemble =
        RandomSubspace::train(train, smallConfig(17));
    std::set<size_t> expected;
    for (const BaseClassifier &base : ensemble.bases())
        expected.insert(base.featureIndices.begin(),
                        base.featureIndices.end());
    const std::vector<size_t> used = ensemble.usedFeatureIndices();
    EXPECT_EQ(std::set<size_t>(used.begin(), used.end()), expected);
    EXPECT_TRUE(std::is_sorted(used.begin(), used.end()));
}

TEST(RandomSubspaceTest, SelectionPrefersAccurateBases)
{
    Rng rng(409);
    const LabeledData train = poolData(rng, 200, 24, {2, 7});
    RandomSubspaceConfig config = smallConfig(19);
    config.candidates = 40;
    config.keepFraction = 0.1;
    const RandomSubspace ensemble =
        RandomSubspace::train(train, config);
    // Kept members should be sorted by validation accuracy
    // (descending) and all predictive better than chance.
    const auto &bases = ensemble.bases();
    for (size_t i = 1; i < bases.size(); ++i)
        EXPECT_GE(bases[i - 1].validationAccuracy,
                  bases[i].validationAccuracy);
    EXPECT_GT(bases.front().validationAccuracy, 0.6);
}

TEST(RandomSubspaceTest, DeterministicGivenSeed)
{
    Rng rng(411);
    const LabeledData train = poolData(rng, 100, 16, {1});
    const RandomSubspace a =
        RandomSubspace::train(train, smallConfig(23));
    const RandomSubspace b =
        RandomSubspace::train(train, smallConfig(23));
    ASSERT_EQ(a.bases().size(), b.bases().size());
    for (size_t i = 0; i < a.bases().size(); ++i)
        EXPECT_EQ(a.bases()[i].featureIndices,
                  b.bases()[i].featureIndices);
}

TEST(RandomSubspaceTest, ScoreSignMatchesPrediction)
{
    Rng rng(413);
    const LabeledData train = poolData(rng, 100, 16, {1, 4});
    const RandomSubspace ensemble =
        RandomSubspace::train(train, smallConfig(29));
    for (size_t i = 0; i < 10; ++i) {
        const double s = ensemble.score(train.rows[i]);
        EXPECT_EQ(ensemble.predict(train.rows[i]), s >= 0.0 ? 1 : -1);
    }
}

TEST(RandomSubspaceTest, EnsembleBeatsWorstBase)
{
    Rng rng(415);
    const LabeledData train = poolData(rng, 160, 24, {2, 9, 13});
    const LabeledData test = poolData(rng, 120, 24, {2, 9, 13});
    const RandomSubspace ensemble =
        RandomSubspace::train(train, smallConfig(31));

    double worst_base = 1.0;
    for (const BaseClassifier &base : ensemble.bases()) {
        LabeledData projected;
        projected.labels = test.labels;
        for (const auto &row : test.rows) {
            std::vector<double> sub;
            for (size_t idx : base.featureIndices)
                sub.push_back(row[idx]);
            projected.rows.push_back(std::move(sub));
        }
        worst_base =
            std::min(worst_base, base.model.accuracy(projected));
    }
    EXPECT_GE(ensemble.accuracy(test) + 1e-9, worst_base);
}

TEST(RandomSubspaceTest, SubspaceLargerThanPoolPanics)
{
    Rng rng(417);
    const LabeledData train = poolData(rng, 40, 4, {0});
    RandomSubspaceConfig config = smallConfig(37);
    config.subspaceDimension = 5;
    EXPECT_THROW(RandomSubspace::train(train, config), PanicError);
}

} // namespace
