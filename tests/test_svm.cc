/**
 * @file
 * Unit tests for the SMO-trained binary SVM.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"
#include "ml/svm.hh"

namespace
{

using namespace xpro;

LabeledData
linearlySeparable(Rng &rng, size_t per_class, double gap)
{
    LabeledData data;
    for (size_t i = 0; i < per_class; ++i) {
        data.rows.push_back({rng.gaussian(gap, 0.5),
                             rng.gaussian(gap, 0.5)});
        data.labels.push_back(1);
        data.rows.push_back({rng.gaussian(-gap, 0.5),
                             rng.gaussian(-gap, 0.5)});
        data.labels.push_back(-1);
    }
    return data;
}

/** XOR pattern: not linearly separable, RBF-separable. */
LabeledData
xorData(Rng &rng, size_t per_cluster)
{
    LabeledData data;
    const double centers[4][2] = {
        {1.0, 1.0}, {-1.0, -1.0}, {1.0, -1.0}, {-1.0, 1.0},
    };
    for (int c = 0; c < 4; ++c) {
        for (size_t i = 0; i < per_cluster; ++i) {
            data.rows.push_back({
                centers[c][0] + 0.2 * rng.gaussian(),
                centers[c][1] + 0.2 * rng.gaussian(),
            });
            data.labels.push_back(c < 2 ? 1 : -1);
        }
    }
    return data;
}

TEST(SvmTest, LinearKernelSeparatesLinearData)
{
    Rng rng(201);
    const LabeledData data = linearlySeparable(rng, 40, 2.0);
    SvmConfig config;
    config.kernel = {KernelKind::Linear, 0.0};
    const Svm model = Svm::train(data, config);
    EXPECT_GE(model.accuracy(data), 0.98);
}

TEST(SvmTest, RbfKernelSolvesXor)
{
    Rng rng(203);
    const LabeledData data = xorData(rng, 25);
    SvmConfig config;
    config.kernel = {KernelKind::Rbf, 1.0};
    config.c = 10.0;
    const Svm model = Svm::train(data, config);
    EXPECT_GE(model.accuracy(data), 0.97);
}

TEST(SvmTest, LinearKernelFailsOnXor)
{
    Rng rng(205);
    const LabeledData data = xorData(rng, 25);
    SvmConfig config;
    config.kernel = {KernelKind::Linear, 0.0};
    const Svm model = Svm::train(data, config);
    // Linear separator cannot exceed ~75% on balanced XOR clusters.
    EXPECT_LE(model.accuracy(data), 0.8);
}

TEST(SvmTest, GeneralizesToHeldOutData)
{
    Rng rng(207);
    const LabeledData train = linearlySeparable(rng, 50, 1.5);
    const LabeledData test = linearlySeparable(rng, 50, 1.5);
    SvmConfig config;
    config.kernel = {KernelKind::Rbf, 0.5};
    const Svm model = Svm::train(train, config);
    EXPECT_GE(model.accuracy(test), 0.95);
}

TEST(SvmTest, DecisionSignMatchesPrediction)
{
    Rng rng(209);
    const LabeledData data = linearlySeparable(rng, 30, 2.0);
    SvmConfig config;
    config.kernel = {KernelKind::Rbf, 0.5};
    const Svm model = Svm::train(data, config);
    for (const auto &row : data.rows) {
        const double d = model.decision(row);
        EXPECT_EQ(model.predict(row), d >= 0.0 ? 1 : -1);
    }
}

TEST(SvmTest, SupportVectorsAreSubsetOfTraining)
{
    Rng rng(211);
    const LabeledData data = linearlySeparable(rng, 30, 2.0);
    SvmConfig config;
    config.kernel = {KernelKind::Rbf, 0.5};
    const Svm model = Svm::train(data, config);
    EXPECT_GT(model.supportVectorCount(), 0u);
    EXPECT_LE(model.supportVectorCount(), data.size());
    EXPECT_EQ(model.dimension(), 2u);
}

TEST(SvmTest, WellSeparatedDataUsesFewSupportVectors)
{
    Rng rng(213);
    const LabeledData easy = linearlySeparable(rng, 50, 4.0);
    const LabeledData hard = linearlySeparable(rng, 50, 0.4);
    SvmConfig config;
    config.kernel = {KernelKind::Rbf, 0.5};
    const Svm easy_model = Svm::train(easy, config);
    const Svm hard_model = Svm::train(hard, config);
    // Margin violations pile up support vectors on overlapping data.
    EXPECT_LT(easy_model.supportVectorCount(),
              hard_model.supportVectorCount());
}

TEST(SvmTest, SingleClassIsFatal)
{
    LabeledData data;
    data.rows = {{0.0}, {1.0}};
    data.labels = {1, 1};
    SvmConfig config;
    EXPECT_THROW(Svm::train(data, config), FatalError);
}

TEST(SvmTest, BadLabelPanics)
{
    LabeledData data;
    data.rows = {{0.0}, {1.0}};
    data.labels = {1, 0};
    SvmConfig config;
    EXPECT_THROW(Svm::train(data, config), PanicError);
}

TEST(SvmTest, DimensionMismatchPanics)
{
    Rng rng(215);
    const LabeledData data = linearlySeparable(rng, 10, 2.0);
    SvmConfig config;
    const Svm model = Svm::train(data, config);
    EXPECT_THROW(model.decision({1.0, 2.0, 3.0}), PanicError);
}

TEST(SvmTest, DeterministicTraining)
{
    Rng rng(217);
    const LabeledData data = linearlySeparable(rng, 30, 1.0);
    SvmConfig config;
    config.kernel = {KernelKind::Rbf, 0.7};
    const Svm a = Svm::train(data, config);
    const Svm b = Svm::train(data, config);
    EXPECT_EQ(a.supportVectorCount(), b.supportVectorCount());
    EXPECT_DOUBLE_EQ(a.bias(), b.bias());
}

/** Accuracy should hold across the C sweep on separable data. */
class SvmRegularizationTest : public ::testing::TestWithParam<double>
{
};

TEST_P(SvmRegularizationTest, SeparableDataStaysAccurate)
{
    Rng rng(219);
    const LabeledData data = linearlySeparable(rng, 40, 2.5);
    SvmConfig config;
    config.kernel = {KernelKind::Rbf, 0.5};
    config.c = GetParam();
    const Svm model = Svm::train(data, config);
    EXPECT_GE(model.accuracy(data), 0.95) << "C=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(CSweep, SvmRegularizationTest,
                         ::testing::Values(0.1, 1.0, 10.0, 100.0));

} // namespace
