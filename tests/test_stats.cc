/**
 * @file
 * Unit tests for the streaming Summary accumulator.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"
#include "common/stats.hh"

namespace
{

using xpro::Summary;

TEST(StatsTest, EmptySummaryIsZero)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(StatsTest, SingleValue)
{
    Summary s;
    s.add(3.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StatsTest, KnownSequence)
{
    Summary s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StatsTest, MergeMatchesSequential)
{
    xpro::Rng rng(55);
    Summary whole;
    Summary left;
    Summary right;
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.gaussian(10.0, 3.0);
        whole.add(v);
        (i % 2 ? left : right).add(v);
    }
    Summary merged = left;
    merged.merge(right);
    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_NEAR(merged.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(merged.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(merged.min(), whole.min());
    EXPECT_DOUBLE_EQ(merged.max(), whole.max());
}

TEST(StatsTest, MergeWithEmpty)
{
    Summary a;
    a.add(1.0);
    a.add(2.0);
    Summary empty;
    Summary merged = a;
    merged.merge(empty);
    EXPECT_EQ(merged.count(), 2u);
    EXPECT_DOUBLE_EQ(merged.mean(), 1.5);

    Summary other;
    other.merge(a);
    EXPECT_EQ(other.count(), 2u);
    EXPECT_DOUBLE_EQ(other.mean(), 1.5);
}

TEST(StatsTest, NumericallyStableAroundLargeOffset)
{
    Summary s;
    const double offset = 1.0e9;
    for (double v : {offset + 1.0, offset + 2.0, offset + 3.0})
        s.add(v);
    EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
    EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-6);
}

} // namespace
