/**
 * @file
 * Unit tests for the CSV reporting helpers.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "core/report.hh"

namespace
{

using namespace xpro;

TEST(CsvTableTest, HeaderAndRows)
{
    CsvTable table({"a", "b"});
    table.beginRow().add(std::string("x")).add(1.5);
    table.beginRow().add(std::string("y")).add(size_t{7});
    std::ostringstream out;
    table.write(out);
    EXPECT_EQ(out.str(), "a,b\nx,1.5\ny,7\n");
}

TEST(CsvTableTest, IntegralDoublesPrintWithoutDecimals)
{
    CsvTable table({"v"});
    table.beginRow().add(42.0);
    std::ostringstream out;
    table.write(out);
    EXPECT_EQ(out.str(), "v\n42\n");
}

TEST(CsvTableTest, EscapesSpecialCharacters)
{
    CsvTable table({"name"});
    table.beginRow().add(std::string("a,b"));
    table.beginRow().add(std::string("say \"hi\""));
    std::ostringstream out;
    table.write(out);
    EXPECT_EQ(out.str(), "name\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
}

TEST(CsvTableTest, RaggedRowsPanic)
{
    CsvTable table({"a", "b"});
    table.beginRow().add(1.0);
    std::ostringstream out;
    EXPECT_THROW(table.write(out), PanicError);
    // Completing the row makes it valid again.
    table.add(2.0);
    EXPECT_NO_THROW(table.write(out));
    // Starting a new row after an incomplete one also panics.
    table.beginRow().add(1.0);
    EXPECT_THROW(table.beginRow(), PanicError);
}

TEST(CsvTableTest, TooManyCellsPanics)
{
    CsvTable table({"only"});
    table.beginRow().add(1.0);
    EXPECT_THROW(table.add(2.0), PanicError);
}

TEST(CsvTableTest, AddBeforeBeginRowPanics)
{
    CsvTable table({"a"});
    EXPECT_THROW(table.add(1.0), PanicError);
}

TEST(CsvTableTest, EmptyColumnsPanics)
{
    EXPECT_THROW(CsvTable({}), PanicError);
}

TEST(CsvTableTest, WriteFileRoundTrips)
{
    const std::string path = "/tmp/xpro_test_report.csv";
    CsvTable table({"k", "v"});
    table.beginRow().add(std::string("battery")).add(42.5);
    table.writeFile(path);
    std::ifstream in(path);
    std::stringstream content;
    content << in.rdbuf();
    EXPECT_EQ(content.str(), "k,v\nbattery,42.5\n");
    std::remove(path.c_str());
}

TEST(CsvTableTest, UnwritablePathIsFatal)
{
    CsvTable table({"a"});
    table.beginRow().add(1.0);
    EXPECT_THROW(table.writeFile("/nonexistent-dir/x.csv"),
                 FatalError);
}

} // namespace
