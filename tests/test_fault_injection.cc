/**
 * @file
 * Tests for the event-level fault-injection stack: the seeded
 * Gilbert-Elliott loss process, bounded ARQ accounting, the outage
 * detector with sensor-local fallback and replay, and the fleet-wide
 * dead-node tolerance. The two headline invariants: a disabled
 * profile reproduces the legacy simulators byte for byte, and a
 * permanent outage still classifies every event (locally), with the
 * degraded compute energy exactly the all-in-sensor figure.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "common/logging.hh"
#include "core/energy_model.hh"
#include "fleet/fleet.hh"
#include "sim/system_sim.hh"
#include "topology_fixtures.hh"

namespace
{

using namespace xpro;
using xpro::test::chainTopology;

const WirelessLink link2(transceiver(WirelessModel::Model2));

/** A lossy-but-recoverable chain for the stream tests. */
FaultProfile
burstyProfile()
{
    return FaultProfile::preset("bursty");
}

/** Enabled profile whose channel never loses a packet. */
FaultProfile
lossFreeProfile()
{
    FaultProfile profile;
    profile.enabled = true;
    // Defaults: lossGood = 0 and pGoodToBad = 0, so the chain never
    // leaves the Good state and never drops.
    return profile;
}

/** Enabled profile that loses every packet forever. */
FaultProfile
permanentOutageProfile()
{
    FaultProfile profile;
    profile.enabled = true;
    profile.outages.push_back({Time(), Time::millis(1e9)});
    return profile;
}

// --- LossProcess ---------------------------------------------------

TEST(LossProcessTest, SameSeedReproducesTheExactSequence)
{
    FaultProfile profile;
    profile.enabled = true;
    profile.seed = 42;
    profile.burst = {0.4, 0.9, 0.1, 0.2};
    LossProcess a(profile);
    LossProcess b(profile);
    for (int i = 0; i < 2048; ++i) {
        const Time at = Time::micros(double(i));
        ASSERT_EQ(a.dropPacket(at), b.dropPacket(at)) << "draw " << i;
        ASSERT_EQ(a.inBadState(), b.inBadState()) << "draw " << i;
    }
    EXPECT_EQ(a.draws(), 2048u);
}

TEST(LossProcessTest, DifferentSeedsDiverge)
{
    FaultProfile profile;
    profile.enabled = true;
    profile.burst = {0.5, 0.9, 0.1, 0.2};
    profile.seed = 42;
    LossProcess a(profile);
    profile.seed = 43;
    LossProcess b(profile);
    bool diverged = false;
    for (int i = 0; i < 2048 && !diverged; ++i) {
        const Time at = Time::micros(double(i));
        diverged = a.dropPacket(at) != b.dropPacket(at);
    }
    EXPECT_TRUE(diverged);
}

TEST(LossProcessTest, DisabledProfileNeverDropsOrDraws)
{
    LossProcess loss((FaultProfile()));
    for (int i = 0; i < 64; ++i)
        EXPECT_FALSE(loss.dropPacket(Time::millis(double(i))));
    EXPECT_EQ(loss.draws(), 0u);
}

TEST(LossProcessTest, OutageWindowForcesLossWithoutConsumingDraws)
{
    FaultProfile profile;
    profile.enabled = true;
    profile.burst.lossGood = 0.0;
    profile.burst.pGoodToBad = 0.0;
    profile.outages.push_back({Time::millis(1.0), Time::millis(2.0)});
    LossProcess loss(profile);
    EXPECT_FALSE(loss.dropPacket(Time::millis(0.5)));
    EXPECT_EQ(loss.draws(), 1u);
    // Inside the window every packet dies, draw-free: the stochastic
    // chain stays in sync with an outage-free run.
    EXPECT_TRUE(loss.dropPacket(Time::millis(1.0)));
    EXPECT_TRUE(loss.dropPacket(Time::millis(1.999)));
    EXPECT_EQ(loss.draws(), 1u);
    // The window is half-open: at its end the channel is back.
    EXPECT_FALSE(loss.dropPacket(Time::millis(2.0)));
    EXPECT_EQ(loss.draws(), 2u);
}

TEST(ArqConfigTest, BackoffGrowsGeometrically)
{
    ArqConfig arq;
    arq.ackTimeout = Time::micros(50.0);
    arq.backoffFactor = 2.0;
    EXPECT_DOUBLE_EQ(arq.backoff(0).us(), 50.0);
    EXPECT_DOUBLE_EQ(arq.backoff(1).us(), 100.0);
    EXPECT_DOUBLE_EQ(arq.backoff(3).us(), 400.0);
}

TEST(FaultProfileTest, ValidateRejectsNonsense)
{
    {
        FaultProfile p;
        p.burst.lossBad = 1.5;
        EXPECT_THROW(p.validate(), PanicError);
    }
    {
        FaultProfile p;
        p.arq.backoffFactor = 0.5;
        EXPECT_THROW(p.validate(), PanicError);
    }
    {
        FaultProfile p;
        p.outageThreshold = 0;
        EXPECT_THROW(p.validate(), PanicError);
    }
    {
        FaultProfile p;
        p.outages.push_back({Time::millis(5.0), Time::millis(5.0)});
        EXPECT_THROW(p.validate(), PanicError);
    }
}

TEST(FaultProfileTest, PresetsValidateAndUnknownNamesAreFatal)
{
    for (const std::string &name : FaultProfile::presetNames()) {
        const FaultProfile profile = FaultProfile::preset(name);
        profile.validate();
        EXPECT_EQ(profile.enabled, name != "none") << name;
    }
    EXPECT_THROW(FaultProfile::preset("nope"), FatalError);
}

TEST(ChannelModelTest, DeliverableMatchesTheExpectationFloor)
{
    ChannelModel ideal;
    EXPECT_TRUE(ideal.deliverable(1u << 20));

    ChannelModel terrible;
    terrible.bitErrorRate = 0.5;
    EXPECT_FALSE(terrible.deliverable(100));
    EXPECT_THROW(terrible.expectedTransmissions(100), PanicError);

    // A deliverable packet never panics.
    ChannelModel noisy;
    noisy.bitErrorRate = 1e-3;
    ASSERT_TRUE(noisy.deliverable(500));
    EXPECT_GT(noisy.expectedTransmissions(500), 1.0);
}

// --- Disabled profile = legacy, byte for byte ----------------------

TEST(FaultSimTest, DisabledProfileMatchesLegacyEventExactly)
{
    const EngineTopology topo = chainTopology(100, 200, 50, 2048);
    const Placement cut = Placement::trivialCut(topo);
    const SimResult legacy = simulateEvent(topo, cut, link2);
    const SimResult gated =
        simulateEvent(topo, cut, link2, FaultProfile());

    EXPECT_FALSE(gated.robustness.enabled);
    EXPECT_DOUBLE_EQ(gated.completion.us(), legacy.completion.us());
    EXPECT_DOUBLE_EQ(gated.sensorEnergy.compute.nj(),
                     legacy.sensorEnergy.compute.nj());
    EXPECT_DOUBLE_EQ(gated.sensorEnergy.tx.nj(),
                     legacy.sensorEnergy.tx.nj());
    EXPECT_DOUBLE_EQ(gated.sensorEnergy.rx.nj(),
                     legacy.sensorEnergy.rx.nj());
    EXPECT_EQ(gated.transfers, legacy.transfers);
    EXPECT_DOUBLE_EQ(gated.radioBusy.us(), legacy.radioBusy.us());
    ASSERT_EQ(gated.trace.size(), legacy.trace.size());
    for (size_t i = 0; i < gated.trace.size(); ++i) {
        EXPECT_DOUBLE_EQ(gated.trace[i].at.us(),
                         legacy.trace[i].at.us());
        EXPECT_EQ(gated.trace[i].what, legacy.trace[i].what);
    }
}

TEST(FaultSimTest, DisabledProfileMatchesLegacyStreamExactly)
{
    const EngineTopology topo = chainTopology(100, 200, 50, 4096);
    const Placement cut = Placement::trivialCut(topo);
    const StreamResult legacy =
        simulateStream(topo, cut, link2, 4.0, 10);
    const StreamResult gated =
        simulateStream(topo, cut, link2, 4.0, 10, FaultProfile());

    EXPECT_FALSE(gated.robustness.enabled);
    EXPECT_EQ(gated.events, legacy.events);
    EXPECT_EQ(gated.deadlineMisses, legacy.deadlineMisses);
    EXPECT_EQ(gated.degradedEvents, 0u);
    EXPECT_DOUBLE_EQ(gated.worstLatency.us(),
                     legacy.worstLatency.us());
    EXPECT_DOUBLE_EQ(gated.meanLatency.us(), legacy.meanLatency.us());
    EXPECT_EQ(gated.robustness.serialize(),
              legacy.robustness.serialize());
}

// --- ARQ accounting ------------------------------------------------

TEST(FaultSimTest, BurstyStreamAccountingIsConsistent)
{
    const EngineTopology topo = chainTopology(100, 200, 50, 4096);
    const Placement cut = Placement::trivialCut(topo);
    const StreamResult stream =
        simulateStream(topo, cut, link2, 4.0, 40, burstyProfile());
    const RobustnessReport &r = stream.robustness;

    EXPECT_TRUE(r.enabled);
    EXPECT_EQ(stream.events, 40u);
    EXPECT_EQ(r.packetsOffered,
              r.packetsDelivered + r.packetsAbandoned);
    EXPECT_GE(r.attempts, r.packetsOffered);
    EXPECT_GT(r.packetsDelivered, 0u);
    const size_t histogram_total =
        std::accumulate(r.retryHistogram.begin(),
                        r.retryHistogram.end(), size_t{0});
    EXPECT_EQ(histogram_total, r.packetsDelivered);
    EXPECT_EQ(stream.degradedEvents, r.degradedEvents);
}

TEST(FaultSimTest, FixedSeedReproducesTheStreamExactly)
{
    const EngineTopology topo = chainTopology(100, 200, 50, 4096);
    const Placement cut = Placement::trivialCut(topo);
    const StreamResult a =
        simulateStream(topo, cut, link2, 4.0, 30, burstyProfile());
    const StreamResult b =
        simulateStream(topo, cut, link2, 4.0, 30, burstyProfile());

    EXPECT_EQ(a.robustness.serialize(), b.robustness.serialize());
    EXPECT_DOUBLE_EQ(a.worstLatency.us(), b.worstLatency.us());
    EXPECT_DOUBLE_EQ(a.meanLatency.us(), b.meanLatency.us());
    EXPECT_DOUBLE_EQ(a.sensorEnergy.total().nj(),
                     b.sensorEnergy.total().nj());
    EXPECT_EQ(a.deadlineMisses, b.deadlineMisses);
}

// --- Outage fallback -----------------------------------------------

TEST(FaultSimTest, PermanentOutageStillClassifiesEveryEvent)
{
    const EngineTopology topo = chainTopology(100, 200, 50, 2048);
    const Placement cut = Placement::trivialCut(topo);
    const StreamResult stream = simulateStream(
        topo, cut, link2, 4.0, 6, permanentOutageProfile());
    const RobustnessReport &r = stream.robustness;

    // No packet ever gets through, yet every event completes via the
    // sensor-local fallback and waits on the replay shelf.
    EXPECT_EQ(stream.events, 6u);
    EXPECT_EQ(stream.degradedEvents, 6u);
    EXPECT_EQ(r.packetsDelivered, 0u);
    EXPECT_EQ(r.packetsAbandoned, r.packetsOffered);
    EXPECT_EQ(r.bufferedResults, 6u);
    EXPECT_EQ(r.replayedResults, 0u);
    EXPECT_GE(r.outages, 1u);

    // Each event computes every cell in-sensor exactly once (the cut
    // cells normally, the rest via the fallback), so the degraded
    // compute energy is exactly the all-in-sensor figure.
    const SensorEnergyBreakdown all_in_sensor = sensorEventEnergy(
        topo, Placement::allInSensor(topo), link2);
    EXPECT_NEAR(stream.sensorEnergy.compute.nj(),
                6.0 * all_in_sensor.compute.nj(), 1e-6);
}

TEST(FaultSimTest, SingleEventOutageFallsBackWithoutProbes)
{
    const EngineTopology topo = chainTopology(100, 200, 50, 2048);
    const Placement cut = Placement::trivialCut(topo);
    const SimResult sim = simulateEvent(topo, cut, link2,
                                        permanentOutageProfile());

    EXPECT_EQ(sim.robustness.degradedEvents, 1u);
    EXPECT_EQ(sim.robustness.packetsDelivered, 0u);
    // A single-event run has no later traffic to recover for.
    EXPECT_EQ(sim.robustness.probes, 0u);
    EXPECT_GT(sim.completion, Time());
    const SensorEnergyBreakdown all_in_sensor = sensorEventEnergy(
        topo, Placement::allInSensor(topo), link2);
    EXPECT_NEAR(sim.sensorEnergy.compute.nj(),
                all_in_sensor.compute.nj(), 1e-9);
}

TEST(FaultSimTest, MidStreamOutageRecoversAndReplays)
{
    const EngineTopology topo = chainTopology(100, 200, 50, 2048);
    const Placement cut = Placement::trivialCut(topo);
    // Loss-free channel with one scripted 800 ms hole: the detector
    // must declare an outage, probe through it, recover and replay
    // the locally classified results.
    FaultProfile profile = lossFreeProfile();
    profile.outages.push_back(
        {Time::millis(100.0), Time::millis(900.0)});
    const StreamResult stream =
        simulateStream(topo, cut, link2, 4.0, 8, profile);
    const RobustnessReport &r = stream.robustness;

    EXPECT_EQ(stream.events, 8u);
    EXPECT_EQ(r.outages, 1u);
    EXPECT_GE(r.probes, 1u);
    EXPECT_GE(r.degradedEvents, 2u);
    EXPECT_GE(r.replayedResults, 1u);
    EXPECT_EQ(r.bufferedResults, 0u);
    EXPECT_GT(r.outageTimeMs, 0.0);
    EXPECT_GT(r.meanRecoveryMs, 0.0);
    EXPECT_GT(r.packetsDelivered, 0u);
}

// --- Fleet ---------------------------------------------------------

FleetMember
cutChainMember(const EngineTopology &topology)
{
    FleetMember member;
    member.topology = topology;
    member.placement = Placement::trivialCut(topology);
    member.eventsPerSecond = 4.0;
    return member;
}

TEST(FleetFaultTest, LossFreeChannelDeliversEverythingFirstTry)
{
    const EngineTopology topo = chainTopology(100, 200, 50, 2048);
    std::vector<FleetMember> members(3, cutChainMember(topo));
    const FcfsArbiter fcfs;
    const FleetSimResult fleet = simulateFleet(
        members, link2, fcfs, 4, lossFreeProfile());
    const RobustnessReport &r = fleet.robustness;

    EXPECT_TRUE(r.enabled);
    EXPECT_EQ(r.packetsDelivered, r.packetsOffered);
    EXPECT_EQ(r.packetsAbandoned, 0u);
    EXPECT_EQ(r.attempts, r.packetsOffered);
    EXPECT_EQ(r.degradedEvents, 0u);
    for (const MemberSimResult &member : fleet.members) {
        EXPECT_EQ(member.events, 4u);
        EXPECT_EQ(member.degradedEvents, 0u);
    }
}

TEST(FleetFaultTest, DeadNodeDegradesAloneWithoutStallingTheFleet)
{
    const EngineTopology topo = chainTopology(100, 200, 50, 2048);
    std::vector<FleetMember> members(3, cutChainMember(topo));
    const std::vector<NodeOutage> dead = {
        {1, Time(), Time::millis(1e9)}};
    const size_t events = 3;

    // The dropout machinery must ride on a loss-free channel when no
    // stochastic profile is configured.
    for (const RadioPolicy policy :
         {RadioPolicy::Fcfs, RadioPolicy::Tdma}) {
        const FcfsArbiter fcfs;
        const TdmaArbiter tdma(members.size(), Time::millis(5.0));
        const RadioArbiter &arbiter =
            policy == RadioPolicy::Fcfs
                ? static_cast<const RadioArbiter &>(fcfs)
                : static_cast<const RadioArbiter &>(tdma);
        const FleetSimResult fleet = simulateFleet(
            members, link2, arbiter, events, FaultProfile(), dead);

        ASSERT_EQ(fleet.members.size(), 3u);
        // The dead node classifies every event locally; its bounded
        // ARQ keeps the shared channel live for the healthy nodes.
        EXPECT_EQ(fleet.members[1].degradedEvents, events);
        EXPECT_EQ(fleet.members[0].degradedEvents, 0u);
        EXPECT_EQ(fleet.members[2].degradedEvents, 0u);
        for (const MemberSimResult &member : fleet.members)
            EXPECT_EQ(member.events, events);
        EXPECT_GE(fleet.robustness.packetsAbandoned, events);
        EXPECT_GT(fleet.robustness.packetsDelivered, 0u);
    }
}

TEST(FleetFaultTest, FaultInjectedReportIsWorkerCountInvariant)
{
    FleetConfig config;
    config.nodes = heterogeneousFleet(2);
    for (FleetNodeSpec &node : config.nodes) {
        node.subspaceCandidates = 6;
        node.maxTrainingSegments = 60;
    }
    config.eventsPerNode = 3;
    config.faults = burstyProfile();
    config.workers = 1;
    const FleetResult one = runFleet(config);
    config.workers = 4;
    config.sweepWorkers = 2;
    const FleetResult four = runFleet(config);

    EXPECT_TRUE(one.report.robustness.enabled);
    EXPECT_EQ(one.report.serialize(), four.report.serialize());
}

} // namespace
