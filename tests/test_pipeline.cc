/**
 * @file
 * Integration tests: full training pipeline and one-call XPro design
 * on the paper's test cases (scaled-down training budgets).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/pipeline.hh"
#include "data/testcases.hh"

namespace
{

using namespace xpro;

EngineConfig
quickConfig()
{
    EngineConfig config;
    config.subspace.candidates = 15;
    config.subspace.keepFraction = 0.2;
    config.subspace.subspaceDimension = 8;
    return config;
}

TrainingOptions
quickOptions()
{
    TrainingOptions options;
    options.maxTrainingSegments = 100;
    options.seed = 123;
    return options;
}

TEST(PipelineTest, TrainsAboveChanceOnEveryCase)
{
    for (TestCase tc : allTestCases) {
        const SignalDataset dataset = makeTestCase(tc, 5);
        const TrainedPipeline pipeline =
            trainPipeline(dataset, quickConfig(), quickOptions());
        EXPECT_GT(pipeline.testAccuracy, 0.55)
            << testCaseInfo(tc).symbol;
        EXPECT_GT(pipeline.trainCount, 0u);
        EXPECT_GT(pipeline.testCount, 0u);
    }
}

TEST(PipelineTest, EasyCasesReachHighAccuracy)
{
    const SignalDataset dataset = makeTestCase(TestCase::M1, 5);
    const TrainedPipeline pipeline =
        trainPipeline(dataset, quickConfig(), quickOptions());
    EXPECT_GT(pipeline.testAccuracy, 0.9);
}

TEST(PipelineTest, ClassifyMatchesEnsembleOnSegments)
{
    const SignalDataset dataset = makeTestCase(TestCase::C1, 5);
    const TrainedPipeline pipeline =
        trainPipeline(dataset, quickConfig(), quickOptions());
    size_t correct = 0;
    const size_t n = 100;
    for (size_t i = 0; i < n; ++i) {
        correct += pipeline.classify(dataset.segments[i].samples) ==
                   dataset.segments[i].label;
    }
    EXPECT_GT(static_cast<double>(correct) / n, 0.7);
}

TEST(PipelineTest, DesignProducesConsistentArtifacts)
{
    const SignalDataset dataset = makeTestCase(TestCase::E1, 5);
    const XProDesign design =
        designXPro(dataset, quickConfig(), quickOptions());

    EXPECT_EQ(design.topology.segmentLength, dataset.segmentLength);
    EXPECT_EQ(design.topology.graph.validate(), "");
    EXPECT_LE(design.partition.delay.total().us(),
              design.partition.delayLimit.us() + 1e-6);
    // Reported energy matches re-evaluating the placement.
    const WirelessLink link(transceiver(design.config.wireless));
    EXPECT_NEAR(design.partition.energy.total().nj(),
                sensorEventEnergy(design.topology,
                                  design.partition.placement, link)
                    .total()
                    .nj(),
                1e-6);
}

TEST(PipelineTest, DesignIsDeterministic)
{
    const SignalDataset dataset = makeTestCase(TestCase::C2, 5);
    const XProDesign a =
        designXPro(dataset, quickConfig(), quickOptions());
    const XProDesign b =
        designXPro(dataset, quickConfig(), quickOptions());
    EXPECT_EQ(a.partition.placement.sensorCellCount(),
              b.partition.placement.sensorCellCount());
    EXPECT_DOUBLE_EQ(a.partition.energy.total().nj(),
                     b.partition.energy.total().nj());
}

TEST(PipelineTest, TinyDatasetIsRejected)
{
    SignalDataset dataset;
    dataset.segments.resize(3);
    EXPECT_THROW(trainPipeline(dataset, quickConfig(), {}),
                 PanicError);
}

} // namespace
