/**
 * @file
 * Unit tests for the engine-kind helpers and a full integration
 * sweep: every paper test case evaluated under every engine kind,
 * with the paper's structural orderings asserted per case.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/pipeline.hh"
#include "data/testcases.hh"

namespace
{

using namespace xpro;

TEST(EngineTest, NamesAndTagsAreDistinct)
{
    std::set<std::string> names;
    std::set<std::string> tags;
    for (EngineKind kind : allEngineKinds) {
        names.insert(engineKindName(kind));
        tags.insert(engineKindTag(kind));
    }
    EXPECT_EQ(names.size(), allEngineKinds.size());
    EXPECT_EQ(tags.size(), allEngineKinds.size());
    EXPECT_EQ(engineKindTag(EngineKind::CrossEnd), "C");
    EXPECT_EQ(engineKindTag(EngineKind::InAggregator), "A");
}

/** Integration sweep across the six paper cases. */
class EngineSweepTest : public ::testing::TestWithParam<TestCase>
{
};

TEST_P(EngineSweepTest, PaperOrderingsHoldPerCase)
{
    const TestCase tc = GetParam();
    const SignalDataset dataset = makeTestCase(tc, 21);

    EngineConfig config;
    config.subspace.candidates = 25;
    config.subspace.keepFraction = 0.2;
    TrainingOptions options;
    options.maxTrainingSegments = 150;
    options.seed = 31;
    const TrainedPipeline pipeline =
        trainPipeline(dataset, config, options);

    const EngineTopology topology = buildEngineTopology(
        pipeline.ensemble, dataset.segmentLength, config,
        dataset.eventsPerSecond());
    const WirelessLink link(transceiver(config.wireless));
    const SensorNode sensor;
    const Aggregator aggregator;
    const WorkloadContext workload{dataset.eventsPerSecond()};

    const auto a = evaluateEngineKind(EngineKind::InAggregator,
                                      topology, link, sensor,
                                      aggregator, workload);
    const auto s =
        evaluateEngineKind(EngineKind::InSensor, topology, link,
                           sensor, aggregator, workload);
    const auto c =
        evaluateEngineKind(EngineKind::CrossEnd, topology, link,
                           sensor, aggregator, workload);

    // A's sensor energy is pure transmission; S's is pure compute
    // plus the result packet.
    EXPECT_NEAR(a.sensorEnergy.compute.nj(), 0.0, 1e-9);
    EXPECT_GT(s.sensorEnergy.compute.nj(), 0.0);
    EXPECT_LT(s.sensorEnergy.wireless().uj(),
              0.05 * s.sensorEnergy.total().uj());

    // XPro: at least as good as the best feasible single end, under
    // the delay limit, and under 4 ms (paper Fig. 10).
    const double limit_us =
        std::min(a.delay.total().us(), s.delay.total().us());
    EXPECT_LE(c.delay.total().us(), limit_us + 1e-6);
    EXPECT_LT(c.delay.total().ms(), 4.0);
    EXPECT_LT(a.delay.total().ms(), 4.0);
    EXPECT_GE(c.sensorLifetime.hr() + 1e-9,
              std::min(a.sensorLifetime.hr(), s.sensorLifetime.hr()));

    // Aggregator overhead ordering (paper Fig. 13 direction).
    EXPECT_LE(c.aggregatorEnergy.total().uj(),
              a.aggregatorEnergy.total().uj() + 1e-9);
    EXPECT_NEAR(s.aggregatorEnergy.compute.uj(), 0.0, 1e-9);

    // The aggregator engine has the largest delay (Fig. 10).
    EXPECT_GE(a.delay.total().us(), s.delay.total().us());
    EXPECT_GE(a.delay.total().us(), c.delay.total().us());
}

INSTANTIATE_TEST_SUITE_P(
    AllCases, EngineSweepTest, ::testing::ValuesIn(allTestCases),
    [](const ::testing::TestParamInfo<TestCase> &info) {
        return std::string(testCaseInfo(info.param).symbol);
    });

} // namespace
