/**
 * @file
 * Hand-built miniature engine topologies for partitioner and model
 * tests: small enough for exhaustive placement enumeration, with
 * directly controllable costs.
 */

#ifndef XPRO_TESTS_TOPOLOGY_FIXTURES_HH
#define XPRO_TESTS_TOPOLOGY_FIXTURES_HH

#include <vector>

#include "core/topology.hh"

namespace xpro::test
{

/** Specification of one synthetic cell. */
struct CellSpec
{
    std::string name;
    double sensorNj = 100.0;
    double aggregatorNj = 500.0;
    double sensorUs = 50.0;
    double aggregatorUs = 5.0;
    size_t outputBits = 32;
};

/** Builder for miniature topologies. */
class MiniTopology
{
  public:
    explicit MiniTopology(size_t source_bits)
    {
        _topology.graph = DataflowGraph(source_bits);
        _topology.cells.resize(1);
        _topology.segmentLength = source_bits / 32;
    }

    size_t
    addCell(const CellSpec &spec,
            ComponentKind kind = ComponentKind::Mean)
    {
        DataflowNode node;
        node.name = spec.name;
        node.outputBits = spec.outputBits;
        node.costs.sensorEnergy = Energy::nanos(spec.sensorNj);
        node.costs.aggregatorEnergy = Energy::nanos(spec.aggregatorNj);
        node.costs.sensorDelay = Time::micros(spec.sensorUs);
        node.costs.aggregatorDelay = Time::micros(spec.aggregatorUs);
        const size_t id = _topology.graph.addCell(node);
        CellInfo info;
        info.kind = kind;
        _topology.cells.push_back(info);
        return id;
    }

    void
    connect(size_t producer, size_t consumer, size_t bits = 0)
    {
        _topology.graph.addEdge(producer, consumer, bits);
    }

    /** Finalize with @p fusion as the result cell. */
    EngineTopology
    build(size_t fusion)
    {
        _topology.fusionNode = fusion;
        _topology.cells[fusion].kind = ComponentKind::Fusion;
        return _topology;
    }

  private:
    EngineTopology _topology;
};

/**
 * A three-cell chain: source -> feature -> svm -> fusion, with the
 * given per-cell sensor energies (nJ).
 */
inline EngineTopology
chainTopology(double feature_nj, double svm_nj, double fusion_nj,
              size_t source_bits = 1024)
{
    MiniTopology mini(source_bits);
    CellSpec feature;
    feature.name = "feature";
    feature.sensorNj = feature_nj;
    const size_t f = mini.addCell(feature, ComponentKind::Var);
    CellSpec svm;
    svm.name = "svm";
    svm.sensorNj = svm_nj;
    const size_t s = mini.addCell(svm, ComponentKind::Svm);
    CellSpec fusion;
    fusion.name = "fusion";
    fusion.sensorNj = fusion_nj;
    const size_t z = mini.addCell(fusion, ComponentKind::Fusion);
    mini.connect(DataflowGraph::sourceId, f);
    mini.connect(f, s);
    mini.connect(s, z);
    return mini.build(z);
}

} // namespace xpro::test

#endif // XPRO_TESTS_TOPOLOGY_FIXTURES_HH
