/**
 * @file
 * Tests for the Q16.16 DWT datapath: quantization error bounds
 * against the double-precision reference across levels, and
 * end-to-end agreement of DWT-domain features computed entirely on
 * the fixed grid.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"
#include "dsp/dwt_fixed.hh"
#include "dsp/features.hh"
#include "dsp/features_fixed.hh"

namespace
{

using namespace xpro;

std::vector<Fixed>
quantize(const std::vector<double> &signal)
{
    return quantizeSignal(signal);
}

std::vector<double>
toDouble(const std::vector<Fixed> &signal)
{
    std::vector<double> out;
    out.reserve(signal.size());
    for (Fixed v : signal)
        out.push_back(v.toDouble());
    return out;
}

TEST(DwtFixedTest, TapsQuantizeAccurately)
{
    for (Wavelet w : {Wavelet::Haar, Wavelet::Db4}) {
        const auto low = fixedLowPassTaps(w);
        const auto high = fixedHighPassTaps(w);
        EXPECT_EQ(low.size(), w == Wavelet::Haar ? 2u : 4u);
        EXPECT_EQ(high.size(), low.size());
        // QMF relation survives quantization: high[i] = +-low[rev].
        for (size_t i = 0; i < low.size(); ++i) {
            const double sign = (i % 2 == 0) ? 1.0 : -1.0;
            EXPECT_NEAR(high[i].toDouble(),
                        sign * low[low.size() - 1 - i].toDouble(),
                        1e-4);
        }
    }
}

TEST(DwtFixedTest, StepTracksDoubleReference)
{
    Rng rng(1701);
    std::vector<double> signal(64);
    for (double &v : signal)
        v = rng.gaussian(0.0, 2.0);

    for (Wavelet w : {Wavelet::Haar, Wavelet::Db4}) {
        const DwtLevel ref = dwtStep(signal, w);
        const FixedDwtLevel fixed = fixedDwtStep(quantize(signal), w);
        ASSERT_EQ(fixed.approx.size(), ref.approx.size());
        for (size_t i = 0; i < ref.approx.size(); ++i) {
            EXPECT_NEAR(fixed.approx[i].toDouble(), ref.approx[i],
                        1e-3)
                << waveletName(w);
            EXPECT_NEAR(fixed.detail[i].toDouble(), ref.detail[i],
                        1e-3)
                << waveletName(w);
        }
    }
}

TEST(DwtFixedTest, FiveLevelErrorStaysBounded)
{
    // Quantization error accumulates across levels but must stay at
    // the 1e-2 scale after five cascaded MAC stages.
    Rng rng(1703);
    std::vector<double> signal(128);
    for (double &v : signal)
        v = rng.gaussian(0.0, 1.5);

    const DwtDecomposition ref =
        dwtDecompose(signal, Wavelet::Db4, 5);
    const FixedDwtDecomposition fixed =
        fixedDwtDecompose(quantize(signal), Wavelet::Db4, 5);

    ASSERT_EQ(fixed.detail.size(), 5u);
    for (size_t level = 0; level < 5; ++level) {
        ASSERT_EQ(fixed.detail[level].size(),
                  ref.detail[level].size());
        for (size_t i = 0; i < ref.detail[level].size(); ++i) {
            EXPECT_NEAR(fixed.detail[level][i].toDouble(),
                        ref.detail[level][i], 2e-2)
                << "level " << level + 1;
        }
    }
    for (size_t i = 0; i < ref.approx.size(); ++i)
        EXPECT_NEAR(fixed.approx[i].toDouble(), ref.approx[i], 2e-2);
}

TEST(DwtFixedTest, FeaturesOnFixedBandsTrackReference)
{
    // Full hardware path: quantize -> fixed DWT -> fixed features,
    // compared against the all-double path.
    Rng rng(1705);
    std::vector<double> signal(128);
    for (double &v : signal)
        v = rng.gaussian(0.0, 1.0);

    const DwtDecomposition ref =
        dwtDecompose(signal, Wavelet::Db4, 5);
    const FixedDwtDecomposition fixed =
        fixedDwtDecompose(quantize(signal), Wavelet::Db4, 5);

    for (size_t level = 0; level < 3; ++level) {
        const double ref_var = featureVar(ref.detail[level]);
        const double fixed_var =
            fixedVar(fixed.detail[level]).toDouble();
        EXPECT_NEAR(fixed_var, ref_var, 0.05 * (1.0 + ref_var))
            << "level " << level + 1;
        const double ref_max = featureMax(ref.detail[level]);
        EXPECT_NEAR(fixedMax(fixed.detail[level]).toDouble(),
                    ref_max, 0.02)
            << "level " << level + 1;
    }
}

TEST(DwtFixedTest, HaarStepOfConstantIsExactScaling)
{
    const std::vector<Fixed> flat(8, Fixed::fromDouble(1.0));
    const FixedDwtLevel level = fixedDwtStep(flat, Wavelet::Haar);
    for (Fixed v : level.approx)
        EXPECT_NEAR(v.toDouble(), std::numbers::sqrt2, 1e-4);
    for (Fixed v : level.detail)
        EXPECT_NEAR(v.toDouble(), 0.0, 1e-4);
}

TEST(DwtFixedTest, InvalidInputsPanic)
{
    const std::vector<Fixed> odd(7, Fixed());
    EXPECT_THROW(fixedDwtStep(odd, Wavelet::Haar), PanicError);
    const std::vector<Fixed> bad(100, Fixed());
    EXPECT_THROW(fixedDwtDecompose(bad, Wavelet::Haar, 5),
                 PanicError);
}

TEST(DwtFixedTest, ToDoubleHelperSanity)
{
    // Guard the test helper itself.
    const std::vector<Fixed> v = {Fixed::fromDouble(0.5)};
    EXPECT_NEAR(toDouble(v)[0], 0.5, 1e-4);
}

} // namespace
