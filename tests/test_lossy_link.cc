/**
 * @file
 * Tests for the lossy-channel link model and its effect on the
 * Automatic XPro Generator (Section 5.7 extension): expected-cost
 * math, degeneration to the ideal channel, and the structural
 * consequence that noisy channels push the cut toward compact
 * payloads.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "core/partitioner.hh"
#include "topology_fixtures.hh"

namespace
{

using namespace xpro;
using xpro::test::chainTopology;

TEST(ChannelModelTest, IdealChannelIsOneTransmission)
{
    ChannelModel ideal;
    EXPECT_DOUBLE_EQ(ideal.expectedTransmissions(10000), 1.0);
}

TEST(ChannelModelTest, ExpectedTransmissionsClosedForm)
{
    ChannelModel noisy;
    noisy.bitErrorRate = 1e-3;
    const size_t bits = 500;
    EXPECT_NEAR(noisy.expectedTransmissions(bits),
                1.0 / std::pow(1.0 - 1e-3, 500.0), 1e-9);
    // Longer packets are penalized super-linearly.
    EXPECT_GT(noisy.expectedTransmissions(2000) / 4.0,
              noisy.expectedTransmissions(500));
}

TEST(ChannelModelTest, UndeliverablePacketPanics)
{
    ChannelModel terrible;
    terrible.bitErrorRate = 0.5;
    EXPECT_THROW(terrible.expectedTransmissions(100), PanicError);
    ChannelModel invalid;
    invalid.bitErrorRate = 1.0;
    EXPECT_THROW(invalid.expectedTransmissions(1), PanicError);
}

TEST(LossyLinkTest, ZeroBerMatchesIdealLinkExactly)
{
    const Transceiver &radio = transceiver(WirelessModel::Model2);
    const WirelessLink ideal(radio);
    const WirelessLink zero_ber(radio, ChannelModel{});
    for (size_t bits : {size_t{32}, size_t{1024}, size_t{4096}}) {
        EXPECT_DOUBLE_EQ(zero_ber.transfer(bits).txEnergy.nj(),
                         ideal.transfer(bits).txEnergy.nj());
        EXPECT_DOUBLE_EQ(zero_ber.transfer(bits).airTime.us(),
                         ideal.transfer(bits).airTime.us());
        EXPECT_DOUBLE_EQ(zero_ber.transfer(bits).attempts, 1.0);
    }
}

TEST(LossyLinkTest, LossRaisesAllCosts)
{
    const Transceiver &radio = transceiver(WirelessModel::Model2);
    const WirelessLink ideal(radio);
    ChannelModel channel;
    channel.bitErrorRate = 5e-4;
    const WirelessLink lossy(radio, channel);
    const TransferCost a = ideal.transfer(1024);
    const TransferCost b = lossy.transfer(1024);
    EXPECT_GT(b.txEnergy, a.txEnergy);
    EXPECT_GT(b.rxEnergy, a.rxEnergy);
    EXPECT_GT(b.airTime, a.airTime);
    EXPECT_GT(b.attempts, 1.0);
}

TEST(LossyLinkTest, BigPayloadsSufferMoreThanSmall)
{
    const Transceiver &radio = transceiver(WirelessModel::Model2);
    ChannelModel channel;
    channel.bitErrorRate = 1e-3;
    const WirelessLink lossy(radio, channel);
    const WirelessLink ideal(radio);
    const double small_inflation =
        lossy.transfer(40).txEnergy / ideal.transfer(40).txEnergy;
    const double large_inflation =
        lossy.transfer(4096).txEnergy /
        ideal.transfer(4096).txEnergy;
    EXPECT_GT(large_inflation, 2.0 * small_inflation);
}

TEST(LossyLinkTest, NoisyChannelShiftsCutTowardCompactPayloads)
{
    // Compute slightly above the ideal raw-shipping cost: the ideal
    // channel ships raw data; a noisy channel makes the big packet
    // prohibitively expensive, so the generator computes
    // (compresses) in-sensor instead.
    const EngineTopology topo =
        chainTopology(4000, 4000, 4000, 8192);
    const Transceiver &radio = transceiver(WirelessModel::Model3);

    const WirelessLink ideal(radio);
    ChannelModel channel;
    channel.bitErrorRate = 1e-3;
    const WirelessLink noisy(radio, channel);

    const Placement ideal_cut =
        XProGenerator(topo, ideal).minimumEnergyPlacement();
    const Placement noisy_cut =
        XProGenerator(topo, noisy).minimumEnergyPlacement();

    // Ideal Model-3 channel: shipping 8192 raw bits costs ~3.5 uJ,
    // below the 4 uJ front cell; raw goes out. At BER 1e-3 the raw
    // packet needs ~3600 expected attempts; the front cell must
    // stay local.
    EXPECT_TRUE(ideal_cut.rawDataTransmitted(topo));
    EXPECT_FALSE(noisy_cut.rawDataTransmitted(topo));
    EXPECT_GT(noisy_cut.sensorCellCount(),
              ideal_cut.sensorCellCount());
}

TEST(LossyLinkTest, GeneratorInvariantsHoldUnderLoss)
{
    const EngineTopology topo = chainTopology(100, 300, 50, 2048);
    ChannelModel channel;
    channel.bitErrorRate = 2e-4;
    const WirelessLink lossy(
        transceiver(WirelessModel::Model2), channel);
    const PartitionResult result =
        XProGenerator(topo, lossy).generate();
    EXPECT_LE(result.delay.total().us(),
              result.delayLimit.us() + 1e-6);
    EXPECT_NEAR(result.energy.total().nj(),
                sensorEventEnergy(topo, result.placement, lossy)
                    .total()
                    .nj(),
                1e-6);
}

} // namespace
