/**
 * @file
 * Tests for the stream segmenters: sliding windows and the
 * peak-triggered (beat-aligned) extractor, including detection on
 * synthetic continuous ECG.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/logging.hh"
#include "common/random.hh"
#include "data/ecg_synth.hh"
#include "dsp/features.hh"
#include "dsp/segment.hh"

namespace
{

using namespace xpro;

TEST(SlidingWindowTest, NonOverlappingWindows)
{
    SlidingWindowSegmenter seg(4, 4);
    for (int i = 0; i < 12; ++i)
        seg.push(static_cast<double>(i));
    ASSERT_EQ(seg.ready(), 3u);
    EXPECT_EQ(seg.pop(), (std::vector<double>{0, 1, 2, 3}));
    EXPECT_EQ(seg.pop(), (std::vector<double>{4, 5, 6, 7}));
    EXPECT_EQ(seg.pop(), (std::vector<double>{8, 9, 10, 11}));
}

TEST(SlidingWindowTest, OverlappingWindows)
{
    SlidingWindowSegmenter seg(4, 2);
    for (int i = 0; i < 8; ++i)
        seg.push(static_cast<double>(i));
    ASSERT_EQ(seg.ready(), 3u);
    EXPECT_EQ(seg.pop(), (std::vector<double>{0, 1, 2, 3}));
    EXPECT_EQ(seg.pop(), (std::vector<double>{2, 3, 4, 5}));
    EXPECT_EQ(seg.pop(), (std::vector<double>{4, 5, 6, 7}));
}

TEST(SlidingWindowTest, BlockPushEqualsSamplePush)
{
    SlidingWindowSegmenter a(8, 3);
    SlidingWindowSegmenter b(8, 3);
    Rng rng(1601);
    std::vector<double> samples(64);
    for (double &v : samples)
        v = rng.gaussian();
    for (double v : samples)
        a.push(v);
    b.push(samples);
    ASSERT_EQ(a.ready(), b.ready());
    while (a.ready() > 0)
        EXPECT_EQ(a.pop(), b.pop());
}

TEST(SlidingWindowTest, PopWithoutWindowPanics)
{
    SlidingWindowSegmenter seg(4, 4);
    seg.push(1.0);
    EXPECT_THROW(seg.pop(), PanicError);
}

TEST(SlidingWindowTest, InvalidConfigPanics)
{
    EXPECT_THROW(SlidingWindowSegmenter(0, 1), PanicError);
    EXPECT_THROW(SlidingWindowSegmenter(4, 0), PanicError);
}

TEST(PeakSegmenterTest, DetectsIsolatedSpikes)
{
    PeakSegmenterConfig config;
    config.windowLength = 20;
    config.prePeakFraction = 0.5;
    config.thresholdRms = 3.0;
    config.refractory = 30;
    PeakTriggeredSegmenter seg(config);

    // Low-level noise with two large spikes.
    Rng rng(1603);
    for (int i = 0; i < 400; ++i) {
        double v = 0.05 * rng.gaussian();
        if (i == 100 || i == 250)
            v = 5.0;
        seg.push(v);
    }
    EXPECT_EQ(seg.peaksDetected(), 2u);
    ASSERT_EQ(seg.ready(), 2u);
    // The spike sits near the middle of its window.
    const std::vector<double> window = seg.pop();
    ASSERT_EQ(window.size(), 20u);
    const auto peak_pos =
        std::max_element(window.begin(), window.end()) -
        window.begin();
    EXPECT_NEAR(static_cast<double>(peak_pos), 10.0, 1.0);
}

TEST(PeakSegmenterTest, RefractorySuppressesDoubleTriggers)
{
    PeakSegmenterConfig config;
    config.windowLength = 16;
    config.refractory = 50;
    PeakTriggeredSegmenter seg(config);
    Rng rng(1605);
    for (int i = 0; i < 300; ++i) {
        double v = 0.05 * rng.gaussian();
        // A burst of three successive large samples: one beat.
        if (i >= 100 && i <= 102)
            v = 4.0;
        seg.push(v);
    }
    EXPECT_EQ(seg.peaksDetected(), 1u);
}

TEST(PeakSegmenterTest, FindsSyntheticHeartbeats)
{
    // Continuous ECG at 360 Hz: beats every ~0.83 s for 10 s.
    const double rate = 360.0;
    Rng rng(1607);
    EcgSynthConfig ecg;
    ecg.noiseLevel = 0.03;

    std::vector<double> stream;
    const size_t beats = 12;
    for (size_t b = 0; b < beats; ++b) {
        const auto beat = synthesizeEcgSegment(
            300, rate, false, ecg, rng);
        stream.insert(stream.end(), beat.begin(), beat.end());
    }

    PeakSegmenterConfig config;
    config.windowLength = 82; // C1's segment shape
    config.prePeakFraction = 0.4;
    config.thresholdRms = 2.5;
    config.refractory = 180; // half a beat period
    PeakTriggeredSegmenter seg(config);
    seg.push(stream);

    // Nearly every beat is detected and windowed.
    EXPECT_GE(seg.peaksDetected(), beats - 2);
    EXPECT_LE(seg.peaksDetected(), beats + 2);
    EXPECT_GE(seg.ready(), beats - 3);

    // Each extracted window contains a dominant R peak.
    while (seg.ready() > 0) {
        const std::vector<double> window = seg.pop();
        ASSERT_EQ(window.size(), 82u);
        EXPECT_GT(featureMax(window), 0.5);
    }
}

TEST(PeakSegmenterTest, ThresholdAdaptsToSignalLevel)
{
    PeakTriggeredSegmenter seg;
    Rng rng(1609);
    for (int i = 0; i < 500; ++i)
        seg.push(0.1 * rng.gaussian());
    const double quiet = seg.threshold();
    for (int i = 0; i < 2000; ++i)
        seg.push(1.0 * rng.gaussian());
    EXPECT_GT(seg.threshold(), 3.0 * quiet);
}

TEST(PeakSegmenterTest, InvalidConfigPanics)
{
    PeakSegmenterConfig bad;
    bad.windowLength = 1;
    EXPECT_THROW(PeakTriggeredSegmenter{bad}, PanicError);
    PeakSegmenterConfig bad2;
    bad2.prePeakFraction = 1.5;
    EXPECT_THROW(PeakTriggeredSegmenter{bad2}, PanicError);
}

} // namespace
