/**
 * @file
 * Unit tests for the reconstructed process-technology library.
 */

#include <gtest/gtest.h>

#include "hw/technology.hh"

namespace
{

using namespace xpro;

TEST(TechnologyTest, NodeNames)
{
    EXPECT_EQ(processNodeName(ProcessNode::Tsmc130), "130nm");
    EXPECT_EQ(processNodeName(ProcessNode::Tsmc90), "90nm");
    EXPECT_EQ(processNodeName(ProcessNode::Tsmc45), "45nm");
    EXPECT_EQ(Technology::get(ProcessNode::Tsmc90).name(), "90nm");
}

TEST(TechnologyTest, SingletonIdentity)
{
    const Technology &a = Technology::get(ProcessNode::Tsmc45);
    const Technology &b = Technology::get(ProcessNode::Tsmc45);
    EXPECT_EQ(&a, &b);
}

TEST(TechnologyTest, DynamicEnergyShrinksWithFeatureSize)
{
    for (AluOp op : allAluOps) {
        const Energy e130 =
            Technology::get(ProcessNode::Tsmc130).opEnergy(op);
        const Energy e90 =
            Technology::get(ProcessNode::Tsmc90).opEnergy(op);
        const Energy e45 =
            Technology::get(ProcessNode::Tsmc45).opEnergy(op);
        EXPECT_GT(e130, e90) << aluOpName(op);
        EXPECT_GT(e90, e45) << aluOpName(op);
    }
}

TEST(TechnologyTest, RelativeOpCostsAreArchitectural)
{
    const Technology &tech = Technology::get(ProcessNode::Tsmc90);
    // Multiply is many times an add; super computation is an order
    // above multiply-class ops; buffer access is cheapest.
    EXPECT_GT(tech.opEnergy(AluOp::Mul).pj(),
              5.0 * tech.opEnergy(AluOp::Add).pj());
    EXPECT_GT(tech.opEnergy(AluOp::Div), tech.opEnergy(AluOp::Mul));
    EXPECT_GT(tech.opEnergy(AluOp::Exp), tech.opEnergy(AluOp::Div));
    EXPECT_LT(tech.opEnergy(AluOp::Buf), tech.opEnergy(AluOp::Add));
}

TEST(TechnologyTest, CyclesAreProcessIndependent)
{
    // The cell clock is fixed at 16 MHz across nodes, so latencies
    // in cycles do not scale with the process.
    for (AluOp op : allAluOps) {
        EXPECT_EQ(Technology::get(ProcessNode::Tsmc130).opCycles(op),
                  Technology::get(ProcessNode::Tsmc45).opCycles(op))
            << aluOpName(op);
    }
}

TEST(TechnologyTest, SuperComputationIsMultiCycle)
{
    const Technology &tech = Technology::get(ProcessNode::Tsmc90);
    EXPECT_EQ(tech.opCycles(AluOp::Add), 1u);
    EXPECT_GT(tech.opCycles(AluOp::Div), 8u);
    EXPECT_GT(tech.opCycles(AluOp::Sqrt), tech.opCycles(AluOp::Div));
    EXPECT_GT(tech.opCycles(AluOp::Exp), 8u);
}

TEST(TechnologyTest, LeakageScalesSlowerThanDynamic)
{
    const Technology &t130 = Technology::get(ProcessNode::Tsmc130);
    const Technology &t45 = Technology::get(ProcessNode::Tsmc45);
    const double dynamic_ratio =
        t130.opEnergy(AluOp::Add) / t45.opEnergy(AluOp::Add);
    const double leakage_ratio =
        t130.unitLeakage() / t45.unitLeakage();
    EXPECT_GT(dynamic_ratio, leakage_ratio);
}

TEST(TechnologyTest, ClockFrequencyIsPaperValue)
{
    EXPECT_DOUBLE_EQ(Technology::cellClockHz, 16.0e6);
}

TEST(TechnologyTest, WakeEnergyIsSmall)
{
    // Power-gating overhead must be negligible next to a single
    // multiply-heavy cell execution (paper Section 4.3).
    const Technology &tech = Technology::get(ProcessNode::Tsmc90);
    EXPECT_LT(tech.wakeEnergy().pj(),
              tech.opEnergy(AluOp::Mul).pj());
}

TEST(TechnologyTest, OpNamesUnique)
{
    std::set<std::string> names;
    for (AluOp op : allAluOps)
        names.insert(aluOpName(op));
    EXPECT_EQ(names.size(), aluOpCount);
}

} // namespace
