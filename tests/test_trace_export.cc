/**
 * @file
 * Tests for the Chrome trace-event JSON exporter: structural JSON
 * sanity, track assignment of the fault-injection instant markers,
 * round-trip agreement with the simulator's raw trace, byte
 * determinism under a fixed fault seed, and byte identity between
 * the legacy and disabled-fault simulations.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "json_check.hh"
#include "sim/trace_export.hh"
#include "topology_fixtures.hh"

namespace
{

using namespace xpro;
using xpro::test::chainTopology;

const WirelessLink link2(transceiver(WirelessModel::Model2));

std::string
exportToString(const SimResult &sim, const EngineTopology &topo,
               const Placement &placement)
{
    std::ostringstream out;
    writeChromeTrace(sim, topo, placement, out);
    return out.str();
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream in(text);
    for (std::string line; std::getline(in, line);)
        lines.push_back(line);
    return lines;
}

size_t
countOccurrences(const std::string &text, const std::string &needle)
{
    size_t count = 0;
    for (size_t at = text.find(needle); at != std::string::npos;
         at = text.find(needle, at + needle.size()))
        ++count;
    return count;
}

/** Fault profile that abandons every packet quickly. */
FaultProfile
deadLinkProfile()
{
    FaultProfile profile;
    profile.enabled = true;
    profile.arq.maxRetries = 2;
    profile.outages.push_back({Time(), Time::millis(1e9)});
    return profile;
}

TEST(TraceExportTest, EmitsStructurallySoundJson)
{
    const EngineTopology topo = chainTopology(100, 200, 50, 2048);
    const Placement cut = Placement::trivialCut(topo);
    const SimResult sim = simulateEvent(topo, cut, link2);
    const std::string json = exportToString(sim, topo, cut);

    const std::vector<std::string> lines = splitLines(json);
    ASSERT_GE(lines.size(), 3u);
    EXPECT_EQ(lines.front(), "[");
    EXPECT_EQ(lines.back(), "]");
    EXPECT_EQ(countOccurrences(json, "{"),
              countOccurrences(json, "}"));
    // Every record line but the last is comma-terminated.
    for (size_t i = 1; i + 2 < lines.size(); ++i)
        EXPECT_EQ(lines[i].back(), ',') << "line " << i;
    EXPECT_EQ(lines[lines.size() - 2].back(), '}');
    // The three track-name metadata records lead.
    EXPECT_EQ(countOccurrences(json, "\"thread_name\""), 3u);
    // A cut chain puts activity on all three tracks.
    EXPECT_GT(countOccurrences(json, "\"ph\":\"X\""), 0u);
}

TEST(TraceExportTest, FaultMarkersBecomeInstantEventsOnTheirTracks)
{
    const EngineTopology topo = chainTopology(100, 200, 50, 2048);
    const Placement cut = Placement::trivialCut(topo);
    const SimResult sim =
        simulateEvent(topo, cut, link2, deadLinkProfile());

    // The raw trace must hold the full fault story for one
    // abandoned packet: 2 retries, a drop, the fallback and the
    // local classification.
    size_t raw_markers = 0;
    for (const TraceEntry &entry : sim.trace) {
        raw_markers +=
            entry.what.rfind("retry ", 0) == 0 ||
            entry.what.rfind("drop ", 0) == 0 ||
            entry.what.rfind("outage ", 0) == 0 ||
            entry.what.rfind("fallback #", 0) == 0 ||
            entry.what.rfind("local result #", 0) == 0;
    }
    ASSERT_GE(raw_markers, 4u);

    const std::string json = exportToString(sim, topo, cut);
    // Round trip: every raw marker is exported, as an instant event.
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"i\""), raw_markers);
    EXPECT_EQ(countOccurrences(json, "\"s\":\"t\""), raw_markers);

    // Retries/drops annotate the radio track, fallback milestones
    // the sensor track.
    for (const std::string &line : splitLines(json)) {
        if (line.find("\"name\":\"retry ") != std::string::npos ||
            line.find("\"name\":\"drop ") != std::string::npos) {
            EXPECT_NE(line.find("\"tid\":1"), std::string::npos)
                << line;
            EXPECT_NE(line.find("\"ph\":\"i\""), std::string::npos)
                << line;
        }
        if (line.find("\"name\":\"fallback #") !=
                std::string::npos ||
            line.find("\"name\":\"local result #") !=
                std::string::npos) {
            EXPECT_NE(line.find("\"tid\":0"), std::string::npos)
                << line;
        }
    }
    // ARQ attempts still pair into radio duration events ("try N"
    // suffixes keep the FIFO pairing valid).
    EXPECT_GT(countOccurrences(json, " try 1\",\"ph\":\"X\""), 0u);
}

TEST(TraceExportTest, FixedSeedExportsByteIdentically)
{
    const EngineTopology topo = chainTopology(100, 200, 50, 2048);
    const Placement cut = Placement::trivialCut(topo);
    const FaultProfile bursty = FaultProfile::preset("bursty");
    const SimResult a = simulateEvent(topo, cut, link2, bursty);
    const SimResult b = simulateEvent(topo, cut, link2, bursty);
    EXPECT_EQ(exportToString(a, topo, cut),
              exportToString(b, topo, cut));
}

TEST(TraceExportTest, DisabledFaultExportMatchesLegacyByteForByte)
{
    const EngineTopology topo = chainTopology(100, 200, 50, 2048);
    const Placement cut = Placement::trivialCut(topo);
    const SimResult legacy = simulateEvent(topo, cut, link2);
    const SimResult gated =
        simulateEvent(topo, cut, link2, FaultProfile());
    const std::string legacy_json = exportToString(legacy, topo, cut);
    EXPECT_EQ(legacy_json, exportToString(gated, topo, cut));
    // No instant events in a fault-free trace.
    EXPECT_EQ(countOccurrences(legacy_json, "\"ph\":\"i\""), 0u);
}

TEST(TraceExportTest, ChromeTraceRoundTripsStrictJson)
{
    const EngineTopology topo = chainTopology(100, 200, 50, 2048);
    const Placement cut = Placement::trivialCut(topo);
    std::string error;

    // Fault-free, faulty (retries/drops feed the ARQ counter
    // tracks) and bursty traces all parse strictly.
    const SimResult clean = simulateEvent(topo, cut, link2);
    EXPECT_TRUE(test::jsonValid(exportToString(clean, topo, cut),
                                &error))
        << error;
    const SimResult dead =
        simulateEvent(topo, cut, link2, deadLinkProfile());
    const std::string dead_json = exportToString(dead, topo, cut);
    EXPECT_TRUE(test::jsonValid(dead_json, &error)) << error;
    // The drop markers produced cumulative ARQ counter samples.
    EXPECT_GT(countOccurrences(dead_json, "\"ph\":\"C\""), 0u);
    EXPECT_GT(countOccurrences(dead_json, "\"arq retries\""), 0u);
    const SimResult bursty = simulateEvent(
        topo, cut, link2, FaultProfile::preset("bursty"));
    EXPECT_TRUE(test::jsonValid(exportToString(bursty, topo, cut),
                                &error))
        << error;
}

TEST(TraceExportTest, StatsSnapshotBecomesCounterTracks)
{
    const EngineTopology topo = chainTopology(100, 200, 50, 2048);
    const Placement cut = Placement::trivialCut(topo);
    const SimResult sim = simulateEvent(topo, cut, link2);

    StatsSnapshot stats;
    stats.entries.push_back({"demo.hits", StatKind::Counter,
                             StatScope::Stable, 42, {}});
    stats.entries.push_back({"demo.diag_only", StatKind::Counter,
                             StatScope::Diag, 7, {}});
    stats.entries.push_back(
        {"demo.zero", StatKind::Counter, StatScope::Stable, 0, {}});

    std::ostringstream out;
    writeChromeTrace(sim, topo, cut, out, &stats);
    const std::string json = out.str();
    std::string error;
    EXPECT_TRUE(test::jsonValid(json, &error)) << error;
    // Stable nonzero stats become flat counter tracks (two samples:
    // trace start and end); diag and zero-valued stats are skipped.
    EXPECT_EQ(countOccurrences(json, "\"stat demo.hits\""), 2u);
    EXPECT_EQ(countOccurrences(json, "demo.diag_only"), 0u);
    EXPECT_EQ(countOccurrences(json, "demo.zero"), 0u);
    // Without the snapshot the output is unchanged (opt-in).
    EXPECT_EQ(exportToString(sim, topo, cut),
              exportToString(sim, topo, cut));
}

TEST(TraceExportTest, ControlTraceRoundTripsStrictJson)
{
    ControlReport report;
    report.enabled = true;
    ControlDecision hold;
    hold.window = 0;
    hold.atMs = 10.0;
    hold.action = "hold";
    hold.dutyLevel = 1;
    hold.sensorCells = 3;
    report.decisions.push_back(hold);
    ControlDecision repart;
    repart.window = 1;
    repart.atMs = 20.0;
    repart.action = "repartition";
    repart.dutyLevel = 1;
    repart.sensorCells = 5;
    repart.movedCells = 2;
    repart.handoverUj = 1.5;
    repart.handoverMs = 0.25;
    report.decisions.push_back(repart);

    std::ostringstream out;
    writeControlTrace(report, out);
    const std::string json = out.str();
    std::string error;
    EXPECT_TRUE(test::jsonValid(json, &error)) << error;
    // Counter tracks: duty level + sensor cells per decision, and
    // the cumulative repartition count.
    EXPECT_EQ(countOccurrences(json, "\"duty level\""), 2u);
    EXPECT_EQ(countOccurrences(json, "\"sensor cells\""), 2u);
    EXPECT_EQ(countOccurrences(json, "\"repartitions\""), 2u);
    EXPECT_GT(countOccurrences(json, "\"ph\":\"C\""), 0u);
    // The handover landed on the wireless-channel track.
    EXPECT_GT(countOccurrences(json, "\"ph\":\"X\""), 0u);
}

TEST(TraceExportTest, EmptyControlReportIsValidJson)
{
    // The old writer comma-terminated the metadata records, so a
    // report with zero decisions produced a trailing comma before
    // the closing bracket — strict parsers reject that.
    ControlReport report;
    std::ostringstream out;
    writeControlTrace(report, out);
    std::string error;
    EXPECT_TRUE(test::jsonValid(out.str(), &error)) << error;
}

TEST(TraceExportTest, JsonCheckerRejectsTrailingCommas)
{
    // Sanity-check the checker itself, else the round trips above
    // prove nothing.
    EXPECT_TRUE(test::jsonValid("[]"));
    EXPECT_TRUE(test::jsonValid("[\n  {\"a\":1},\n  {\"b\":2}\n]"));
    EXPECT_TRUE(test::jsonValid("{\"x\":[1,2,3],\"y\":null}"));
    EXPECT_TRUE(test::jsonValid("-1.5e-3"));
    EXPECT_FALSE(test::jsonValid("[{\"a\":1},]"));
    EXPECT_FALSE(test::jsonValid("{\"a\":1,}"));
    EXPECT_FALSE(test::jsonValid("[1,2"));
    EXPECT_FALSE(test::jsonValid("[] []"));
    EXPECT_FALSE(test::jsonValid("{\"a\":01}"));
}

} // namespace
