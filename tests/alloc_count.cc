#include "alloc_count.hh"

#include <atomic>
#include <cstdlib>
#include <new>

namespace
{

std::atomic<size_t> g_allocations{0};

void *
countedAlloc(size_t bytes)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    void *p = std::malloc(bytes ? bytes : 1);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
countedAlignedAlloc(size_t bytes, size_t alignment)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    // aligned_alloc requires the size to be a multiple of the
    // alignment.
    const size_t rounded =
        (bytes + alignment - 1) / alignment * alignment;
    void *p = std::aligned_alloc(alignment,
                                 rounded ? rounded : alignment);
    if (!p)
        throw std::bad_alloc();
    return p;
}

} // namespace

namespace xpro::testing
{

size_t
allocCount()
{
    return g_allocations.load(std::memory_order_relaxed);
}

} // namespace xpro::testing

// Replaceable global allocation functions: count, then forward to
// malloc/free. free() handles both plain and aligned blocks on the
// platforms this repo targets (glibc).

void *
operator new(std::size_t bytes)
{
    return countedAlloc(bytes);
}

void *
operator new[](std::size_t bytes)
{
    return countedAlloc(bytes);
}

void *
operator new(std::size_t bytes, const std::nothrow_t &) noexcept
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(bytes ? bytes : 1);
}

void *
operator new[](std::size_t bytes, const std::nothrow_t &) noexcept
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(bytes ? bytes : 1);
}

void *
operator new(std::size_t bytes, std::align_val_t alignment)
{
    return countedAlignedAlloc(bytes,
                               static_cast<size_t>(alignment));
}

void *
operator new[](std::size_t bytes, std::align_val_t alignment)
{
    return countedAlignedAlloc(bytes,
                               static_cast<size_t>(alignment));
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}
