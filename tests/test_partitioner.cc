/**
 * @file
 * Unit and property tests for the Automatic XPro Generator: min-cut
 * correctness against an exhaustive oracle, the cut-value ==
 * energy-model invariant, the never-worse-than-single-end guarantee
 * and the delay constraint.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "core/partitioner.hh"
#include "topology_fixtures.hh"

namespace
{

using namespace xpro;
using xpro::test::CellSpec;
using xpro::test::MiniTopology;
using xpro::test::chainTopology;

const WirelessLink link2(transceiver(WirelessModel::Model2));

/** Random miniature topology with layered structure. */
EngineTopology
randomTopology(Rng &rng)
{
    MiniTopology mini(256 + 64 * rng.below(32));
    const size_t features = 1 + rng.below(4);
    const size_t svms = 1 + rng.below(3);
    std::vector<size_t> feature_nodes;
    for (size_t i = 0; i < features; ++i) {
        CellSpec spec;
        spec.name = "f" + std::to_string(i);
        spec.sensorNj = rng.uniform(20.0, 3000.0);
        spec.aggregatorNj = rng.uniform(100.0, 5000.0);
        spec.sensorUs = rng.uniform(10.0, 400.0);
        spec.aggregatorUs = rng.uniform(1.0, 40.0);
        const size_t id = mini.addCell(spec, ComponentKind::Var);
        mini.connect(DataflowGraph::sourceId, id);
        feature_nodes.push_back(id);
    }
    std::vector<size_t> svm_nodes;
    for (size_t i = 0; i < svms; ++i) {
        CellSpec spec;
        spec.name = "s" + std::to_string(i);
        spec.sensorNj = rng.uniform(50.0, 4000.0);
        spec.aggregatorNj = rng.uniform(100.0, 5000.0);
        spec.sensorUs = rng.uniform(10.0, 400.0);
        spec.aggregatorUs = rng.uniform(1.0, 40.0);
        const size_t id = mini.addCell(spec, ComponentKind::Svm);
        for (size_t f : feature_nodes) {
            if (rng.chance(0.7))
                mini.connect(f, id);
        }
        // Guarantee connectivity.
        mini.connect(feature_nodes[rng.below(feature_nodes.size())],
                     id);
        svm_nodes.push_back(id);
    }
    CellSpec fusion_spec;
    fusion_spec.name = "fusion";
    fusion_spec.sensorNj = rng.uniform(5.0, 100.0);
    const size_t fusion = mini.addCell(fusion_spec);
    for (size_t s : svm_nodes)
        mini.connect(s, fusion);
    return mini.build(fusion);
}

TEST(PartitionerTest, PrefersSensorFrontWhenComputeIsCheap)
{
    // Tiny compute, big raw payload: the sensor keeps at least the
    // compressing front cell (the raw segment never crosses), and
    // since every intermediate value is one word, the cheapest cut
    // transmits right after the first cell.
    const EngineTopology topo = chainTopology(5, 5, 5, 8192);
    const Placement p =
        XProGenerator(topo, link2).minimumEnergyPlacement();
    EXPECT_TRUE(p.inSensor(1));
    EXPECT_FALSE(p.rawDataTransmitted(topo));
    const double cross =
        sensorEventEnergy(topo, p, link2).total().nj();
    EXPECT_LE(cross, sensorEventEnergy(
                         topo, Placement::allInSensor(topo), link2)
                         .total()
                         .nj() +
                         1e-9);
    EXPECT_LT(cross, sensorEventEnergy(
                         topo, Placement::allInAggregator(topo),
                         link2)
                         .total()
                         .nj());
}

TEST(PartitionerTest, PrefersAggregatorWhenComputeIsExpensive)
{
    // Compute far above the raw transfer cost: ship the raw data.
    const EngineTopology topo = chainTopology(9000, 9000, 9000, 256);
    const Placement p =
        XProGenerator(topo, link2).minimumEnergyPlacement();
    EXPECT_EQ(p.sensorCellCount(), 0u);
}

TEST(PartitionerTest, FindsMidChainCut)
{
    // Cheap feature compressing 8192 bits to one word, expensive
    // classifier: cut after the feature.
    const EngineTopology topo = chainTopology(50, 9000, 9000, 8192);
    const Placement p =
        XProGenerator(topo, link2).minimumEnergyPlacement();
    EXPECT_TRUE(p.inSensor(1));
    EXPECT_FALSE(p.inSensor(2));
    EXPECT_FALSE(p.inSensor(3));
}

TEST(PartitionerTest, CutValueEqualsEnergyModel)
{
    Rng rng(901);
    for (int trial = 0; trial < 40; ++trial) {
        const EngineTopology topo = randomTopology(rng);
        const XProGenerator gen(topo, link2);
        const Placement p = gen.minimumEnergyPlacement();
        // The induced placement's modeled energy must equal the
        // energy of the best placement found exhaustively (the cut
        // is optimal and consistent with the model).
        const Placement oracle = gen.exhaustiveOptimum(
            Time::hours(1.0)); // effectively unconstrained
        const double via_cut =
            sensorEventEnergy(topo, p, link2).total().nj();
        const double via_oracle =
            sensorEventEnergy(topo, oracle, link2).total().nj();
        EXPECT_NEAR(via_cut, via_oracle, 1e-6)
            << "trial " << trial;
    }
}

TEST(PartitionerTest, NeverWorseThanEitherSingleEnd)
{
    Rng rng(903);
    for (int trial = 0; trial < 40; ++trial) {
        const EngineTopology topo = randomTopology(rng);
        const Placement p =
            XProGenerator(topo, link2).minimumEnergyPlacement();
        const double cross =
            sensorEventEnergy(topo, p, link2).total().nj();
        const double in_sensor =
            sensorEventEnergy(topo, Placement::allInSensor(topo),
                              link2)
                .total()
                .nj();
        const double in_aggregator =
            sensorEventEnergy(topo,
                              Placement::allInAggregator(topo),
                              link2)
                .total()
                .nj();
        EXPECT_LE(cross, in_sensor + 1e-9) << "trial " << trial;
        EXPECT_LE(cross, in_aggregator + 1e-9) << "trial " << trial;
    }
}

TEST(PartitionerTest, GenerateMeetsDelayLimit)
{
    Rng rng(905);
    for (int trial = 0; trial < 30; ++trial) {
        const EngineTopology topo = randomTopology(rng);
        const XProGenerator gen(topo, link2);
        const PartitionResult result = gen.generate();
        EXPECT_LE(result.delay.total().us(),
                  result.delayLimit.us() + 1e-6)
            << "trial " << trial;
    }
}

TEST(PartitionerTest, DelayLimitIsMinOfSingleEnds)
{
    const EngineTopology topo = chainTopology(100, 200, 50, 4096);
    const XProGenerator gen(topo, link2);
    const Time t_sensor =
        eventDelay(topo, Placement::allInSensor(topo), link2)
            .total();
    const Time t_agg =
        eventDelay(topo, Placement::allInAggregator(topo), link2)
            .total();
    EXPECT_DOUBLE_EQ(gen.delayLimit().us(),
                     std::min(t_sensor, t_agg).us());
}

TEST(PartitionerTest, ConstrainedResultMatchesOracleEnergy)
{
    Rng rng(907);
    for (int trial = 0; trial < 25; ++trial) {
        const EngineTopology topo = randomTopology(rng);
        const XProGenerator gen(topo, link2);
        const PartitionResult result = gen.generate();
        const Placement oracle =
            gen.exhaustiveOptimum(result.delayLimit);
        const double got =
            sensorEventEnergy(topo, result.placement, link2)
                .total()
                .nj();
        const double best =
            sensorEventEnergy(topo, oracle, link2).total().nj();
        // The Lagrangian sweep is a heuristic under a binding delay
        // constraint; it must still be close to the oracle and never
        // better (oracle is exact).
        EXPECT_GE(got, best - 1e-6) << "trial " << trial;
        EXPECT_LE(got, 2.0 * best + 1e-6) << "trial " << trial;
        if (result.unconstrainedFeasible) {
            EXPECT_NEAR(got, best, 1e-6) << "trial " << trial;
        }
    }
}

TEST(PartitionerTest, SingleEndDesignsAreFeasibleFallbacks)
{
    // Pathological costs: generate() must still return something
    // meeting the limit.
    const EngineTopology topo =
        chainTopology(50000, 50000, 50000, 64);
    const PartitionResult result =
        XProGenerator(topo, link2).generate();
    EXPECT_LE(result.delay.total().us(),
              result.delayLimit.us() + 1e-6);
}

TEST(PartitionerTest, ExhaustiveGuardRejectsLargeTopologies)
{
    Rng rng(909);
    const EngineTopology topo = randomTopology(rng);
    EXPECT_THROW(XProGenerator(topo, link2)
                     .exhaustiveOptimum(Time::hours(1.0), 2),
                 FatalError);
}

TEST(PartitionerTest, BroadcastMakesSharedFeatureCheaperToOffload)
{
    // Two expensive SVMs sharing one feature: offloading both pays
    // the feature broadcast once, so the cut offloads them together.
    MiniTopology mini(512);
    CellSpec feat;
    feat.sensorNj = 50.0;
    const size_t f = mini.addCell(feat, ComponentKind::Var);
    CellSpec svm;
    svm.sensorNj = 400.0;
    const size_t s1 = mini.addCell(svm, ComponentKind::Svm);
    const size_t s2 = mini.addCell(svm, ComponentKind::Svm);
    CellSpec fuse;
    fuse.sensorNj = 10.0;
    const size_t z = mini.addCell(fuse);
    mini.connect(DataflowGraph::sourceId, f);
    mini.connect(f, s1);
    mini.connect(f, s2);
    mini.connect(s1, z);
    mini.connect(s2, z);
    const EngineTopology topo = mini.build(z);

    const Placement p =
        XProGenerator(topo, link2).minimumEnergyPlacement();
    // Feature value broadcast (40 bits, ~61 nJ) is cheaper than
    // 800 nJ of SVM compute: both SVMs and the fusion offload.
    EXPECT_TRUE(p.inSensor(f));
    EXPECT_FALSE(p.inSensor(s1));
    EXPECT_FALSE(p.inSensor(s2));
    EXPECT_FALSE(p.inSensor(z));
}

} // namespace
