/**
 * @file
 * Tests for the multi-classification extension (paper Section 5.7):
 * one-vs-rest training, the 4-class gesture dataset, the extended
 * topology, and that the unchanged Automatic XPro Generator handles
 * the multi-class engine.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/logging.hh"
#include "core/multiclass_topology.hh"
#include "core/partitioner.hh"
#include "data/gestures.hh"
#include "dsp/feature_pool.hh"
#include "sim/system_sim.hh"

namespace
{

using namespace xpro;

/** Small synthetic pool data with one informative column per class. */
MultiClassData
syntheticMultiClass(Rng &rng, size_t per_class, size_t classes,
                    size_t pool)
{
    MultiClassData data;
    data.classCount = classes;
    for (size_t i = 0; i < per_class; ++i) {
        for (size_t cls = 0; cls < classes; ++cls) {
            std::vector<double> row(pool);
            for (size_t c = 0; c < pool; ++c)
                row[c] = rng.gaussian(c == cls ? 1.2 : 0.0, 0.4);
            data.rows.push_back(std::move(row));
            data.labels.push_back(cls);
        }
    }
    return data;
}

RandomSubspaceConfig
smallConfig()
{
    RandomSubspaceConfig config;
    config.subspaceDimension = 4;
    config.candidates = 20;
    config.keepFraction = 0.2;
    config.svm.kernel = {KernelKind::Rbf, 0.5};
    config.svm.c = 5.0;
    config.seed = 7;
    return config;
}

TEST(MultiClassTest, LearnsSyntheticProblem)
{
    Rng rng(1501);
    const MultiClassData train =
        syntheticMultiClass(rng, 40, 3, 10);
    const MultiClassData test = syntheticMultiClass(rng, 25, 3, 10);
    const MultiClassSubspace model =
        MultiClassSubspace::train(train, smallConfig());
    EXPECT_EQ(model.classCount(), 3u);
    EXPECT_GT(model.accuracy(test), 0.8);
}

TEST(MultiClassTest, ScoresMatchPrediction)
{
    Rng rng(1503);
    const MultiClassData train =
        syntheticMultiClass(rng, 30, 3, 8);
    const MultiClassSubspace model =
        MultiClassSubspace::train(train, smallConfig());
    for (size_t i = 0; i < 10; ++i) {
        const auto s = model.scores(train.rows[i]);
        ASSERT_EQ(s.size(), 3u);
        const size_t argmax = static_cast<size_t>(
            std::max_element(s.begin(), s.end()) - s.begin());
        EXPECT_EQ(model.predict(train.rows[i]), argmax);
    }
}

TEST(MultiClassTest, UsedFeaturesAreUnionOverClasses)
{
    Rng rng(1505);
    const MultiClassData train =
        syntheticMultiClass(rng, 30, 3, 12);
    const MultiClassSubspace model =
        MultiClassSubspace::train(train, smallConfig());
    std::set<size_t> expected;
    for (size_t cls = 0; cls < model.classCount(); ++cls) {
        const auto idx =
            model.classEnsemble(cls).usedFeatureIndices();
        expected.insert(idx.begin(), idx.end());
    }
    const auto used = model.usedFeatureIndices();
    EXPECT_EQ(std::set<size_t>(used.begin(), used.end()), expected);
}

TEST(MultiClassTest, InvalidInputsPanic)
{
    MultiClassData bad;
    bad.classCount = 1;
    bad.rows = {{0.0}};
    bad.labels = {0};
    EXPECT_THROW(MultiClassSubspace::train(bad, smallConfig()),
                 PanicError);
    MultiClassData out_of_range;
    out_of_range.classCount = 2;
    out_of_range.rows = {{0.0}};
    out_of_range.labels = {5};
    EXPECT_THROW(
        MultiClassSubspace::train(out_of_range, smallConfig()),
        PanicError);
}

TEST(GestureDatasetTest, ShapeAndBalance)
{
    const GestureDataset ds = makeEmgGestureDataset(50, 3);
    EXPECT_EQ(ds.classCount, 4u);
    EXPECT_EQ(ds.size(), 200u);
    EXPECT_EQ(ds.segmentLength, 132u);
    EXPECT_EQ(ds.classNames.size(), 4u);
    size_t per_class[4] = {0, 0, 0, 0};
    for (const GestureSegment &segment : ds.segments) {
        ASSERT_LT(segment.label, 4u);
        ASSERT_EQ(segment.samples.size(), 132u);
        ++per_class[segment.label];
    }
    for (size_t cls = 0; cls < 4; ++cls)
        EXPECT_EQ(per_class[cls], 50u);
}

TEST(GestureDatasetTest, Deterministic)
{
    const GestureDataset a = makeEmgGestureDataset(10, 3);
    const GestureDataset b = makeEmgGestureDataset(10, 3);
    EXPECT_EQ(a.segments[0].samples, b.segments[0].samples);
}

/** Full multi-class topology fixture. */
class MultiClassTopologyTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        const GestureDataset raw = makeEmgGestureDataset(40, 11);
        FeatureExtractor extractor;
        MultiClassData data;
        data.classCount = raw.classCount;
        for (const GestureSegment &segment : raw.segments) {
            data.rows.push_back(
                extractor.extractAll(segment.samples));
            data.labels.push_back(segment.label);
        }
        FeatureScaler scaler;
        scaler.fit(data.rows);
        scaler.transformRowsInPlace(data.rows);

        RandomSubspaceConfig config = smallConfig();
        config.subspaceDimension = 8;
        model = new MultiClassSubspace(
            MultiClassSubspace::train(data, config));
        topology = new EngineTopology(buildMultiClassTopology(
            *model, raw.segmentLength, EngineConfig{},
            raw.eventsPerSecond()));
    }

    static void
    TearDownTestSuite()
    {
        delete topology;
        delete model;
        topology = nullptr;
        model = nullptr;
    }

    static MultiClassSubspace *model;
    static EngineTopology *topology;
};

MultiClassSubspace *MultiClassTopologyTest::model = nullptr;
EngineTopology *MultiClassTopologyTest::topology = nullptr;

TEST_F(MultiClassTopologyTest, GraphIsValid)
{
    EXPECT_EQ(topology->graph.validate(), "");
}

TEST_F(MultiClassTopologyTest, ArgmaxIsTheTerminal)
{
    const auto terminals = topology->graph.terminals();
    ASSERT_EQ(terminals.size(), 1u);
    EXPECT_EQ(terminals[0], topology->fusionNode);
    EXPECT_EQ(topology->cells[topology->fusionNode].kind,
              ComponentKind::Argmax);
    // One fusion cell per class feeds the argmax.
    EXPECT_EQ(topology->graph.predecessors(topology->fusionNode)
                  .size(),
              model->classCount());
}

TEST_F(MultiClassTopologyTest, SvmCellsCoverEveryClass)
{
    std::set<size_t> classes_seen;
    for (size_t node = 1; node < topology->graph.nodeCount(); ++node) {
        if (topology->cells[node].kind == ComponentKind::Svm)
            classes_seen.insert(topology->cells[node].classIndex);
    }
    EXPECT_EQ(classes_seen.size(), model->classCount());
    size_t expected_svms = 0;
    for (size_t cls = 0; cls < model->classCount(); ++cls)
        expected_svms += model->classEnsemble(cls).bases().size();
    EXPECT_EQ(topology->svmNodes.size(), expected_svms);
}

TEST_F(MultiClassTopologyTest, FeatureCellsAreShared)
{
    // Feature cells = union over classes, not per-class copies.
    size_t feature_cells = 0;
    for (size_t idx = 0; idx < featurePoolSize; ++idx)
        feature_cells += topology->featureNodes[idx] != 0;
    EXPECT_EQ(feature_cells, model->usedFeatureIndices().size());
}

TEST_F(MultiClassTopologyTest, GeneratorHandlesMultiClassEngine)
{
    const WirelessLink link(transceiver(WirelessModel::Model2));
    const PartitionResult result =
        XProGenerator(*topology, link).generate();
    EXPECT_LE(result.delay.total().us(),
              result.delayLimit.us() + 1e-6);
    // Never worse than either single end in energy when both are
    // delay-feasible; at minimum never worse than the best feasible.
    const double cross = result.energy.total().nj();
    const double in_sensor =
        sensorEventEnergy(*topology,
                          Placement::allInSensor(*topology), link)
            .total()
            .nj();
    EXPECT_LE(cross, in_sensor + 1e-6);
}

TEST_F(MultiClassTopologyTest, SimulatorRunsMultiClassEngine)
{
    const WirelessLink link(transceiver(WirelessModel::Model2));
    const Placement placement =
        XProGenerator(*topology, link).generate().placement;
    const SimResult sim =
        simulateEvent(*topology, placement, link);
    EXPECT_GT(sim.completion.us(), 0.0);
    const auto model_energy =
        sensorEventEnergy(*topology, placement, link);
    EXPECT_NEAR(sim.sensorEnergy.total().nj(),
                model_energy.total().nj(), 1e-6);
}

} // namespace
