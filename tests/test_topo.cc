/**
 * @file
 * Unit tests for critical-path and reachability utilities.
 */

#include <gtest/gtest.h>

#include "graph/dataflow_graph.hh"
#include "graph/topo.hh"

namespace
{

using xpro::DataflowGraph;
using xpro::DataflowNode;
using xpro::Time;

DataflowNode
makeCell(const std::string &name)
{
    DataflowNode node;
    node.name = name;
    node.outputBits = 32;
    return node;
}

TEST(TopoTest, ChainSumsDelays)
{
    DataflowGraph g(64);
    const size_t a = g.addCell(makeCell("a"));
    const size_t b = g.addCell(makeCell("b"));
    g.addEdge(DataflowGraph::sourceId, a);
    g.addEdge(a, b);

    const Time total = criticalPath(
        g, [](size_t) { return Time::micros(10.0); },
        [](size_t, size_t) { return Time::micros(1.0); });
    // source(10) + edge(1) + a(10) + edge(1) + b(10)
    EXPECT_DOUBLE_EQ(total.us(), 32.0);
}

TEST(TopoTest, ParallelBranchesTakeSlowest)
{
    DataflowGraph g(64);
    const size_t fast = g.addCell(makeCell("fast"));
    const size_t slow = g.addCell(makeCell("slow"));
    const size_t join = g.addCell(makeCell("join"));
    g.addEdge(DataflowGraph::sourceId, fast);
    g.addEdge(DataflowGraph::sourceId, slow);
    g.addEdge(fast, join);
    g.addEdge(slow, join);

    const Time total = criticalPath(
        g,
        [&](size_t id) {
            if (id == slow)
                return Time::micros(100.0);
            if (id == fast)
                return Time::micros(1.0);
            if (id == join)
                return Time::micros(5.0);
            return Time(); // source
        },
        [](size_t, size_t) { return Time(); });
    EXPECT_DOUBLE_EQ(total.us(), 105.0);
}

TEST(TopoTest, EdgeDelayDependsOnEndpoints)
{
    DataflowGraph g(64);
    const size_t a = g.addCell(makeCell("a"));
    const size_t b = g.addCell(makeCell("b"));
    g.addEdge(DataflowGraph::sourceId, a);
    g.addEdge(a, b);

    // Only the a->b hop is a (slow) wireless hop.
    const Time total = criticalPath(
        g, [](size_t) { return Time(); },
        [&](size_t u, size_t v) {
            return (u == a && v == b) ? Time::millis(2.0) : Time();
        });
    EXPECT_DOUBLE_EQ(total.ms(), 2.0);
}

TEST(TopoTest, CompletionTimesMonotoneAlongEdges)
{
    DataflowGraph g(64);
    const size_t a = g.addCell(makeCell("a"));
    const size_t b = g.addCell(makeCell("b"));
    const size_t c = g.addCell(makeCell("c"));
    g.addEdge(DataflowGraph::sourceId, a);
    g.addEdge(a, b);
    g.addEdge(b, c);
    g.addEdge(a, c);

    const auto done = completionTimes(
        g, [](size_t) { return Time::micros(3.0); },
        [](size_t, size_t) { return Time::micros(1.0); });
    EXPECT_LT(done[DataflowGraph::sourceId], done[a]);
    EXPECT_LT(done[a], done[b]);
    EXPECT_LT(done[b], done[c]);
}

TEST(TopoTest, EmptyGraphTakesSourceDelay)
{
    DataflowGraph g(64);
    const Time total = criticalPath(
        g, [](size_t) { return Time::millis(1.0); },
        [](size_t, size_t) { return Time(); });
    EXPECT_DOUBLE_EQ(total.ms(), 1.0);
}

TEST(TopoTest, ReachableFromSource)
{
    DataflowGraph g(64);
    const size_t a = g.addCell(makeCell("a"));
    const size_t b = g.addCell(makeCell("b"));
    const size_t island = g.addCell(makeCell("island"));
    g.addEdge(DataflowGraph::sourceId, a);
    g.addEdge(a, b);
    g.addEdge(island, b);

    const std::vector<bool> reached =
        reachableFrom(g, DataflowGraph::sourceId);
    EXPECT_TRUE(reached[a]);
    EXPECT_TRUE(reached[b]);
    EXPECT_FALSE(reached[island]);
}

TEST(TopoTest, ReachableFromInteriorNode)
{
    DataflowGraph g(64);
    const size_t a = g.addCell(makeCell("a"));
    const size_t b = g.addCell(makeCell("b"));
    g.addEdge(DataflowGraph::sourceId, a);
    g.addEdge(a, b);
    const std::vector<bool> reached = reachableFrom(g, a);
    EXPECT_FALSE(reached[DataflowGraph::sourceId]);
    EXPECT_TRUE(reached[a]);
    EXPECT_TRUE(reached[b]);
}

} // namespace
