/**
 * @file
 * Unit tests for the component op-count library.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "hw/cell_library.hh"

namespace
{

using namespace xpro;

TEST(CellLibraryTest, MaxMinAreCompareOnly)
{
    for (FeatureKind kind : {FeatureKind::Max, FeatureKind::Min}) {
        const CellWorkload w = featureCellWorkload(kind, 128);
        EXPECT_EQ(w.count(AluOp::Cmp), 127u);
        EXPECT_EQ(w.count(AluOp::Mul), 0u);
        EXPECT_EQ(w.count(AluOp::Div), 0u);
        EXPECT_EQ(w.count(AluOp::Buf), 128u);
    }
}

TEST(CellLibraryTest, MeanIsAddDominated)
{
    const CellWorkload w = featureCellWorkload(FeatureKind::Mean, 100);
    EXPECT_GE(w.count(AluOp::Add), 100u);
    EXPECT_EQ(w.count(AluOp::Mul), 0u);
}

TEST(CellLibraryTest, VarHasOneMultiplyPerSample)
{
    const CellWorkload w = featureCellWorkload(FeatureKind::Var, 128);
    EXPECT_EQ(w.count(AluOp::Mul), 128u);
    EXPECT_EQ(w.count(AluOp::Sqrt), 0u);
}

TEST(CellLibraryTest, StdIsVarPlusSqrt)
{
    const CellWorkload var = featureCellWorkload(FeatureKind::Var, 128);
    const CellWorkload std_full =
        featureCellWorkload(FeatureKind::Std, 128);
    EXPECT_EQ(std_full.count(AluOp::Sqrt), 1u);
    EXPECT_EQ(std_full.count(AluOp::Mul), var.count(AluOp::Mul));
    EXPECT_EQ(std_full.count(AluOp::Add), var.count(AluOp::Add));
}

TEST(CellLibraryTest, StdFromVarIsSqrtOnly)
{
    // Paper Fig. 5: the Std cell reuses the Var cell and adds only a
    // square root.
    const CellWorkload w = stdFromVarWorkload();
    EXPECT_EQ(w.count(AluOp::Sqrt), 1u);
    EXPECT_EQ(w.count(AluOp::Mul), 0u);
    EXPECT_EQ(w.count(AluOp::Add), 0u);
    EXPECT_EQ(w.datapathOps(), 1u);
}

TEST(CellLibraryTest, SkewKurtUseDividePerSample)
{
    for (FeatureKind kind : {FeatureKind::Skew, FeatureKind::Kurt}) {
        const CellWorkload w = featureCellWorkload(kind, 64);
        EXPECT_EQ(w.count(AluOp::Div), 67u) << featureName(kind);
        EXPECT_EQ(w.count(AluOp::Sqrt), 1u) << featureName(kind);
    }
    // Skew's z^3 and Kurt's (z^2)^2 both take two multiplies per
    // sample on top of the variance pass (the executable cell
    // simulator confirms the counts are equal).
    EXPECT_EQ(featureCellWorkload(FeatureKind::Kurt, 64)
                  .count(AluOp::Mul),
              featureCellWorkload(FeatureKind::Skew, 64)
                  .count(AluOp::Mul));
}

TEST(CellLibraryTest, DwtWorkloadScalesWithLengthAndTaps)
{
    const CellWorkload db4 = dwtLevelWorkload(128, 4);
    EXPECT_EQ(db4.count(AluOp::Mul), 4u * 128u);
    EXPECT_EQ(db4.count(AluOp::Add), 3u * 128u);
    const CellWorkload haar = dwtLevelWorkload(128, 2);
    EXPECT_LT(haar.count(AluOp::Mul), db4.count(AluOp::Mul));
    const CellWorkload short_level = dwtLevelWorkload(16, 4);
    EXPECT_EQ(short_level.count(AluOp::Mul), 4u * 16u);
}

TEST(CellLibraryTest, DwtStreamsInPipelineMode)
{
    const CellWorkload w = dwtLevelWorkload(128, 4);
    EXPECT_LT(w.pipelineBufferScale, 0.5);
    // Feature reductions have no streaming buffer advantage.
    EXPECT_DOUBLE_EQ(featureCellWorkload(FeatureKind::Var, 128)
                         .pipelineBufferScale,
                     1.0);
}

TEST(CellLibraryTest, SvmWorkloadScalesWithSupportVectors)
{
    const CellWorkload small = svmCellWorkload(12, 10);
    const CellWorkload large = svmCellWorkload(12, 40);
    EXPECT_EQ(small.count(AluOp::Exp), 10u);
    EXPECT_EQ(large.count(AluOp::Exp), 40u);
    EXPECT_EQ(large.count(AluOp::Mul), 13u * 40u);
    EXPECT_GT(large.count(AluOp::Add), small.count(AluOp::Add));
}

TEST(CellLibraryTest, FusionIsTiny)
{
    const CellWorkload w = fusionCellWorkload(10);
    EXPECT_EQ(w.count(AluOp::Mul), 10u);
    EXPECT_EQ(w.count(AluOp::Cmp), 1u);
    EXPECT_LT(w.datapathOps(), 30u);
}

TEST(CellLibraryTest, InvalidParametersPanic)
{
    EXPECT_THROW(featureCellWorkload(FeatureKind::Var, 1), PanicError);
    EXPECT_THROW(dwtLevelWorkload(3, 4), PanicError);
    EXPECT_THROW(svmCellWorkload(0, 10), PanicError);
    EXPECT_THROW(svmCellWorkload(12, 0), PanicError);
    EXPECT_THROW(fusionCellWorkload(0), PanicError);
}

TEST(CellLibraryTest, ComponentNamesUnique)
{
    std::set<std::string> names;
    for (ComponentKind kind : allComponentKinds)
        names.insert(componentName(kind));
    EXPECT_EQ(names.size(), allComponentKinds.size());
}

} // namespace
