/**
 * @file
 * Unit tests for the strong unit types (Energy, Time, Power).
 */

#include <gtest/gtest.h>

#include "common/units.hh"

namespace
{

using xpro::Energy;
using xpro::Power;
using xpro::Time;

TEST(UnitsTest, TimeFactoriesAgree)
{
    EXPECT_DOUBLE_EQ(Time::millis(1500.0).sec(), 1.5);
    EXPECT_DOUBLE_EQ(Time::micros(2.0).ns(), 2000.0);
    EXPECT_DOUBLE_EQ(Time::hours(2.0).sec(), 7200.0);
    EXPECT_DOUBLE_EQ(Time::seconds(7200.0).hr(), 2.0);
}

TEST(UnitsTest, TimeFromClockCycles)
{
    // 16 MHz is the paper's functional-cell clock.
    const Time t = Time::cycles(16.0e6, 16.0e6);
    EXPECT_DOUBLE_EQ(t.sec(), 1.0);
    EXPECT_DOUBLE_EQ(Time::cycles(8, 16.0e6).us(), 0.5);
}

TEST(UnitsTest, EnergyFactoriesAgree)
{
    EXPECT_DOUBLE_EQ(Energy::picos(1.0e6).uj(), 1.0);
    EXPECT_DOUBLE_EQ(Energy::nanos(1.53).nj(), 1.53);
    EXPECT_DOUBLE_EQ(Energy::micros(3.0).nj(), 3000.0);
}

TEST(UnitsTest, ArithmeticAndComparison)
{
    const Energy a = Energy::nanos(2.0);
    const Energy b = Energy::nanos(3.0);
    EXPECT_DOUBLE_EQ((a + b).nj(), 5.0);
    EXPECT_DOUBLE_EQ((b - a).nj(), 1.0);
    EXPECT_DOUBLE_EQ((a * 2.5).nj(), 5.0);
    EXPECT_DOUBLE_EQ(b / a, 1.5);
    EXPECT_LT(a, b);
    EXPECT_EQ(a, Energy::picos(2000.0));
}

TEST(UnitsTest, PowerTimesTimeIsEnergy)
{
    const Power p = Power::micros(400.0); // 400 uW receiver
    const Time t = Time::millis(2.0);
    const Energy e = p * t;
    EXPECT_DOUBLE_EQ(e.nj(), 800.0);
    EXPECT_DOUBLE_EQ((t * p).nj(), 800.0);
}

TEST(UnitsTest, EnergyOverTimeIsPower)
{
    const Energy e = Energy::micros(1.0);
    const Power p = e.over(Time::millis(1.0));
    EXPECT_DOUBLE_EQ(p.mw(), 1.0);
}

TEST(UnitsTest, AccumulationOperators)
{
    Energy total;
    total += Energy::nanos(1.0);
    total += Energy::nanos(2.0);
    EXPECT_DOUBLE_EQ(total.nj(), 3.0);

    Time elapsed;
    elapsed += Time::micros(10.0);
    elapsed += Time::micros(5.0);
    EXPECT_DOUBLE_EQ(elapsed.us(), 15.0);
}

TEST(UnitsTest, DefaultConstructedIsZero)
{
    EXPECT_DOUBLE_EQ(Energy().j(), 0.0);
    EXPECT_DOUBLE_EQ(Time().sec(), 0.0);
    EXPECT_DOUBLE_EQ(Power().w(), 0.0);
}

TEST(UnitsTest, ScalarOnLeft)
{
    EXPECT_DOUBLE_EQ((2.0 * Energy::nanos(3.0)).nj(), 6.0);
    EXPECT_DOUBLE_EQ((2.0 * Time::millis(3.0)).ms(), 6.0);
    EXPECT_DOUBLE_EQ((2.0 * Power::millis(3.0)).mw(), 6.0);
}

} // namespace
