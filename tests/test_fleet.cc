/**
 * @file
 * Tests for the fleet subsystem: worker pool, radio arbitration,
 * aggregator admission control and the many-node event simulation.
 * The two headline invariants of ISSUE requirements live here: a
 * two-node fleet sharing the radio completes strictly later than
 * the single-node critical path, and a full fleet run produces a
 * byte-identical report for any worker-pool size.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "alloc_count.hh"
#include "common/argparse.hh"
#include "common/logging.hh"
#include "fleet/fleet.hh"
#include "sim/system_sim.hh"
#include "topology_fixtures.hh"

namespace
{

using namespace xpro;
using xpro::test::CellSpec;
using xpro::test::MiniTopology;
using xpro::test::chainTopology;

const WirelessLink link2(transceiver(WirelessModel::Model2));

// --- WorkerPool ---------------------------------------------------

TEST(WorkerPoolTest, MapKeepsResultsIndexed)
{
    for (size_t workers : {1u, 2u, 3u, 8u}) {
        WorkerPool pool(workers);
        const std::vector<size_t> out =
            pool.map<size_t>(17, [](size_t i) { return i * i; });
        ASSERT_EQ(out.size(), 17u);
        for (size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], i * i) << "workers=" << workers;
    }
}

TEST(WorkerPoolTest, RunsEveryTaskExactlyOnce)
{
    WorkerPool pool(4);
    std::vector<std::atomic<int>> hits(100);
    pool.run(hits.size(), [&](size_t i) { ++hits[i]; });
    for (const auto &hit : hits)
        EXPECT_EQ(hit.load(), 1);
}

TEST(WorkerPoolTest, PropagatesTheFirstException)
{
    WorkerPool pool(3);
    EXPECT_THROW(pool.run(8,
                          [](size_t i) {
                              if (i == 5)
                                  throw std::runtime_error("boom");
                          }),
                 std::runtime_error);
}

TEST(WorkerPoolTest, AccountsBusyTime)
{
    WorkerPool pool(2);
    pool.run(4, [](size_t) {
        volatile double sink = 0.0;
        for (int i = 0; i < 10000; ++i)
            sink = sink + static_cast<double>(i);
    });
    EXPECT_GE(pool.lastWork(), pool.lastMakespan());
    EXPECT_GT(pool.lastMakespan(), Time());
}

TEST(WorkerPoolTest, ZeroWorkersClampToOne)
{
    WorkerPool pool(0);
    const std::vector<int> out =
        pool.map<int>(3, [](size_t i) { return int(i) + 1; });
    EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

// --- Radio arbitration --------------------------------------------

TEST(RadioSchedTest, FcfsGrantsLowestSequenceImmediately)
{
    const FcfsArbiter arbiter;
    EXPECT_EQ(arbiter.name(), "fcfs");
    std::vector<RadioRequest> pending;
    pending.push_back({2, 7, Time::millis(1.0), Time::millis(2.0)});
    pending.push_back({0, 3, Time::millis(1.5), Time::millis(2.0)});
    Time start;
    const size_t chosen =
        arbiter.grant(pending, Time::millis(4.0), &start);
    EXPECT_EQ(chosen, 1u);
    EXPECT_DOUBLE_EQ(start.ms(), 4.0);
}

TEST(RadioSchedTest, FcfsNeverStartsBeforeReady)
{
    const FcfsArbiter arbiter;
    std::vector<RadioRequest> pending;
    pending.push_back({0, 0, Time::millis(9.0), Time::millis(1.0)});
    Time start;
    arbiter.grant(pending, Time::millis(2.0), &start);
    EXPECT_DOUBLE_EQ(start.ms(), 9.0);
}

TEST(RadioSchedTest, TdmaSlotMath)
{
    const TdmaArbiter arbiter(3, Time::millis(2.0));
    EXPECT_EQ(arbiter.name(), "tdma");
    EXPECT_DOUBLE_EQ(arbiter.frame().ms(), 6.0);
    // Node 0 owns [0, 2), node 1 [2, 4), node 2 [4, 6), repeating.
    EXPECT_DOUBLE_EQ(arbiter.nextSlotStart(0, Time()).ms(), 0.0);
    EXPECT_DOUBLE_EQ(arbiter.nextSlotStart(1, Time()).ms(), 2.0);
    EXPECT_DOUBLE_EQ(arbiter.nextSlotStart(2, Time()).ms(), 4.0);
    // Asking just past a slot start rolls to the next frame.
    EXPECT_DOUBLE_EQ(
        arbiter.nextSlotStart(1, Time::millis(2.5)).ms(), 8.0);
    // Asking exactly at a slot start returns it.
    EXPECT_DOUBLE_EQ(
        arbiter.nextSlotStart(1, Time::millis(8.0)).ms(), 8.0);
    // Mid-slot times count as the owner's air time.
    EXPECT_TRUE(arbiter.inOwnSlot(1, Time::millis(2.5)));
    EXPECT_FALSE(arbiter.inOwnSlot(0, Time::millis(2.5)));
    EXPECT_TRUE(arbiter.inOwnSlot(0, Time::millis(6.5)));
}

TEST(RadioSchedTest, TdmaGrantsTheSlotOwnerFirst)
{
    const TdmaArbiter arbiter(2, Time::millis(2.0));
    std::vector<RadioRequest> pending;
    pending.push_back({0, 0, Time(), Time::millis(1.0)});
    pending.push_back({1, 1, Time(), Time::millis(1.0)});
    // Channel frees in node 1's slot: node 1 goes first even though
    // node 0 asked earlier.
    Time start;
    const size_t chosen =
        arbiter.grant(pending, Time::millis(2.5), &start);
    EXPECT_EQ(chosen, 1u);
    EXPECT_DOUBLE_EQ(start.ms(), 2.5);
}

// --- Admission ----------------------------------------------------

/** Chain with heavy sensor costs so the free cut offloads. */
EngineTopology
offloadHappyTopology()
{
    return chainTopology(4000.0, 9000.0, 2500.0);
}

TEST(AdmissionTest, WithinBudgetKeepsTheFreeCut)
{
    const EngineTopology topology = offloadHappyTopology();
    const Placement cut =
        XProGenerator(topology, link2).generate().placement;
    ASSERT_LT(cut.sensorCellCount(), topology.graph.cellCount());

    std::vector<AdmissionCandidate> candidates;
    candidates.push_back({&topology, &cut, 4.0});
    const AdmissionResult result =
        admitFleet(candidates, link2, AdmissionConfig{});
    ASSERT_EQ(result.nodes.size(), 1u);
    EXPECT_EQ(result.nodes[0].outcome, AdmissionOutcome::Offloaded);
    EXPECT_EQ(result.nodes[0].placement.sensorCellCount(),
              cut.sensorCellCount());
    EXPECT_GT(result.cpuUtilization, 0.0);
    EXPECT_GT(result.power, Power());
}

TEST(AdmissionTest, TightCpuBudgetRepartitionsTowardSensor)
{
    const EngineTopology topology = offloadHappyTopology();
    const Placement cut =
        XProGenerator(topology, link2).generate().placement;
    const double free_share = aggregatorCpuShare(topology, cut, 4.0);
    ASSERT_GT(free_share, 0.0);

    AdmissionConfig config;
    config.maxCpuUtilization = free_share / 2.0;
    std::vector<AdmissionCandidate> candidates;
    candidates.push_back({&topology, &cut, 4.0});
    const AdmissionResult result =
        admitFleet(candidates, link2, config);
    ASSERT_EQ(result.nodes.size(), 1u);
    EXPECT_NE(result.nodes[0].outcome, AdmissionOutcome::Offloaded);
    // Whatever the outcome, the admitted demand respects the cap.
    EXPECT_LE(result.cpuUtilization,
              config.maxCpuUtilization + 1e-12);
    EXPECT_GE(result.nodes[0].placement.sensorCellCount(),
              cut.sensorCellCount());
}

TEST(AdmissionTest, SecondNodeSeesTheFirstOnesLoad)
{
    const EngineTopology topology = offloadHappyTopology();
    const Placement cut =
        XProGenerator(topology, link2).generate().placement;
    const double free_share = aggregatorCpuShare(topology, cut, 4.0);

    // Budget fits exactly one free cut: the second identical node
    // must be pushed back toward its sensor.
    AdmissionConfig config;
    config.maxCpuUtilization = free_share * 1.5;
    std::vector<AdmissionCandidate> candidates;
    candidates.push_back({&topology, &cut, 4.0});
    candidates.push_back({&topology, &cut, 4.0});
    const AdmissionResult result =
        admitFleet(candidates, link2, config);
    ASSERT_EQ(result.nodes.size(), 2u);
    EXPECT_EQ(result.nodes[0].outcome, AdmissionOutcome::Offloaded);
    EXPECT_NE(result.nodes[1].outcome, AdmissionOutcome::Offloaded);
    EXPECT_LE(result.cpuUtilization,
              config.maxCpuUtilization + 1e-12);
}

TEST(AdmissionTest, CpuShareIsSoftwareDelayTimesRate)
{
    const EngineTopology topology = chainTopology(100.0, 100.0, 100.0);
    const Placement all_agg = Placement::allInAggregator(topology);
    // Three cells at 5 us each, 4 events/s.
    EXPECT_NEAR(aggregatorCpuShare(topology, all_agg, 4.0),
                3 * 5e-6 * 4.0, 1e-12);
    const Placement all_sensor = Placement::allInSensor(topology);
    EXPECT_DOUBLE_EQ(aggregatorCpuShare(topology, all_sensor, 4.0),
                     0.0);
}

// --- Fleet event simulation ---------------------------------------

/** A cut chain: feature in-sensor, classifier+fusion offloaded. */
FleetMember
cutChainMember(const EngineTopology &topology, double rate)
{
    FleetMember member;
    member.topology = topology;
    member.placement = Placement::trivialCut(topology);
    member.eventsPerSecond = rate;
    return member;
}

TEST(FleetSimTest, SingleMemberMatchesSingleNodeSimulator)
{
    const EngineTopology topology =
        chainTopology(100.0, 200.0, 300.0);
    std::vector<FleetMember> members;
    members.push_back(cutChainMember(topology, 4.0));
    const SimResult single =
        simulateEvent(topology, members[0].placement, link2);

    const FcfsArbiter fcfs;
    const FleetSimResult fleet =
        simulateFleet(members, link2, fcfs, 3);
    ASSERT_EQ(fleet.members.size(), 1u);
    EXPECT_EQ(fleet.members[0].events, 3u);
    // Alone on the channel, every event sees the single-node
    // latency; deadlines are easily met at 4 events/s.
    EXPECT_DOUBLE_EQ(fleet.members[0].firstCompletion.ms(),
                     single.completion.ms());
    EXPECT_NEAR(fleet.members[0].worstLatency.ms(),
                single.completion.ms(), 1e-9);
    EXPECT_EQ(fleet.members[0].deadlineMisses, 0u);
    EXPECT_EQ(fleet.transfers, 3 * single.transfers);
}

TEST(FleetSimTest, TwoNodesContendOnTheSharedRadio)
{
    const EngineTopology topology =
        chainTopology(100.0, 200.0, 300.0);
    const SimResult single = simulateEvent(
        topology, Placement::trivialCut(topology), link2);
    ASSERT_GT(single.transfers, 0u)
        << "fixture must exercise the radio";

    std::vector<FleetMember> members;
    members.push_back(cutChainMember(topology, 4.0));
    members.push_back(cutChainMember(topology, 4.0));
    const FcfsArbiter fcfs;
    const FleetSimResult fleet =
        simulateFleet(members, link2, fcfs, 1);

    // Both nodes inject at t=0 and want the channel at the same
    // instant. One of them must wait: the fleet's completion is
    // STRICTLY above the single-node critical path.
    EXPECT_DOUBLE_EQ(fleet.members[0].firstCompletion.ms(),
                     single.completion.ms());
    EXPECT_GT(fleet.members[1].firstCompletion, single.completion);
    EXPECT_GT(fleet.span, single.completion);
    EXPECT_DOUBLE_EQ(fleet.radioBusy.ms(),
                     2 * single.radioBusy.ms());
}

TEST(FleetSimTest, EventLoopAllocationsIndependentOfEventCount)
{
    // Fault-free fleet runs only allocate during setup (flat
    // dataflow state, group splits, queue reserve); the shared
    // radio/CPU event loop itself is allocation-free. Setup cost is
    // independent of the event count, so the totals must be EQUAL —
    // any per-event heap traffic shows up as a difference of 8
    // events times two members here.
    const EngineTopology topology =
        chainTopology(100.0, 200.0, 300.0);
    const FcfsArbiter fcfs;
    const auto measure = [&](size_t eventsPerNode) {
        std::vector<FleetMember> members;
        members.push_back(cutChainMember(topology, 4.0));
        members.push_back(cutChainMember(topology, 4.0));
        xpro::testing::AllocScope scope;
        simulateFleet(members, link2, fcfs, eventsPerNode);
        return scope.count();
    };
    measure(2); // warm process-wide caches
    const size_t few = measure(4);
    const size_t many = measure(12);
    EXPECT_EQ(few, many)
        << "the shared event loop must not touch the heap";
}

TEST(FleetSimTest, AggregatorCellsSerializeOnOneCpu)
{
    // All-in-aggregator members: every cell is software on the one
    // shared CPU, so total busy time is exactly two events' worth.
    const EngineTopology topology =
        chainTopology(100.0, 200.0, 300.0);
    std::vector<FleetMember> members;
    for (int i = 0; i < 2; ++i) {
        FleetMember member;
        member.topology = topology;
        member.placement = Placement::allInAggregator(topology);
        member.eventsPerSecond = 4.0;
        members.push_back(member);
    }
    const FcfsArbiter fcfs;
    const FleetSimResult fleet =
        simulateFleet(members, link2, fcfs, 1);
    // 3 cells x 5 us per member per event.
    EXPECT_NEAR(fleet.aggregatorBusy.ms(), 2 * 3 * 0.005, 1e-9);
}

TEST(FleetSimTest, TdmaDelaysTransfersToOwnedSlots)
{
    const EngineTopology topology =
        chainTopology(100.0, 200.0, 300.0);
    std::vector<FleetMember> members;
    members.push_back(cutChainMember(topology, 4.0));
    members.push_back(cutChainMember(topology, 4.0));

    const FcfsArbiter fcfs;
    const FleetSimResult free_for_all =
        simulateFleet(members, link2, fcfs, 1);

    // Slots far longer than any payload: node 1's transfer must
    // wait for its own slot even though the channel is idle.
    const Time slot = Time::millis(5.0);
    const TdmaArbiter tdma(members.size(), slot);
    const FleetSimResult slotted =
        simulateFleet(members, link2, tdma, 1);
    EXPECT_GE(slotted.members[1].firstCompletion,
              free_for_all.members[1].firstCompletion);
    EXPECT_GE(slotted.members[1].firstCompletion, slot);
    // Same payloads move either way.
    EXPECT_DOUBLE_EQ(slotted.radioBusy.ms(),
                     free_for_all.radioBusy.ms());
    EXPECT_EQ(slotted.transfers, free_for_all.transfers);
}

// --- Fleet runs ---------------------------------------------------

TEST(FleetTest, HeterogeneousFleetCyclesCasesAndProcesses)
{
    const std::vector<FleetNodeSpec> specs = heterogeneousFleet(8);
    ASSERT_EQ(specs.size(), 8u);
    EXPECT_EQ(specs[0].testCase, TestCase::C1);
    EXPECT_EQ(specs[6].testCase, TestCase::C1);
    EXPECT_NE(specs[0].process, specs[1].process);
    for (size_t i = 0; i < specs.size(); ++i)
        EXPECT_EQ(specs[i].seed, 2017u + i);
}

/** Small-but-real fleet config that trains quickly. */
FleetConfig
tinyFleetConfig(size_t workers)
{
    FleetConfig config;
    config.nodes = heterogeneousFleet(3);
    for (FleetNodeSpec &node : config.nodes) {
        node.subspaceCandidates = 6;
        node.maxTrainingSegments = 60;
    }
    config.workers = workers;
    config.eventsPerNode = 3;
    return config;
}

TEST(FleetTest, ReportIsByteIdenticalForAnyWorkerCount)
{
    const FleetResult one = runFleet(tinyFleetConfig(1));
    const FleetResult two = runFleet(tinyFleetConfig(2));
    const FleetResult four = runFleet(tinyFleetConfig(4));

    const std::string bytes = one.report.serialize();
    EXPECT_EQ(bytes, two.report.serialize());
    EXPECT_EQ(bytes, four.report.serialize());

    // The admitted placements match cell by cell, not just in the
    // serialized summary.
    for (size_t n = 0; n < one.nodes.size(); ++n) {
        const Placement &a = one.nodes[n].admission.placement;
        const Placement &b = four.nodes[n].admission.placement;
        ASSERT_EQ(a.size(), b.size());
        for (size_t u = 0; u < a.size(); ++u)
            EXPECT_EQ(a.inSensor(u), b.inSensor(u));
    }
}

TEST(FleetTest, SixteenNodeParallelSweepReportIsByteIdentical)
{
    // A 16-node mixed-technology fleet (heterogeneousFleet cycles
    // the process nodes) designed sequentially must serialize byte
    // for byte like the fully parallel path: design workers fanned
    // out over nodes AND sweep workers inside every generator, with
    // the characterization cache shared across all of them.
    FleetConfig sequential;
    sequential.nodes = heterogeneousFleet(16);
    for (FleetNodeSpec &node : sequential.nodes) {
        node.subspaceCandidates = 4;
        node.maxTrainingSegments = 40;
    }
    sequential.eventsPerNode = 2;
    sequential.workers = 1;
    sequential.sweepWorkers = 1;

    FleetConfig parallel = sequential;
    parallel.workers = 4;
    parallel.sweepWorkers = 3;

    const FleetResult a = runFleet(sequential);
    const FleetResult b = runFleet(parallel);
    ASSERT_EQ(a.nodes.size(), 16u);
    EXPECT_EQ(a.report.serialize(), b.report.serialize());
    for (size_t n = 0; n < a.nodes.size(); ++n) {
        const Placement &pa = a.nodes[n].admission.placement;
        const Placement &pb = b.nodes[n].admission.placement;
        ASSERT_EQ(pa.size(), pb.size()) << "node " << n;
        for (size_t u = 0; u < pa.size(); ++u)
            EXPECT_EQ(pa.inSensor(u), pb.inSensor(u))
                << "node " << n << " cell " << u;
    }
}

TEST(FleetTest, FleetSeedThreadsIntoEveryNodeSpec)
{
    const std::vector<FleetNodeSpec> defaulted =
        heterogeneousFleet(4);
    const std::vector<FleetNodeSpec> seeded =
        heterogeneousFleet(4, 31337);
    for (size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(defaulted[i].seed, 2017u + i);
        EXPECT_EQ(seeded[i].seed, 31337u + i);
        // Only the RNG seeds differ; the case/process cycling is
        // part of the fleet's shape, not of the randomness.
        EXPECT_EQ(defaulted[i].testCase, seeded[i].testCase);
        EXPECT_EQ(defaulted[i].process, seeded[i].process);
    }
}

// --- CLI argument validation --------------------------------------

TEST(ArgparseTest, PositiveArgRejectsZeroNegativeAndGarbage)
{
    EXPECT_EQ(parsePositiveArg("6", "--fleet"), 6u);
    EXPECT_THROW(parsePositiveArg("0", "--fleet"), FatalError);
    EXPECT_THROW(parsePositiveArg("-3", "--workers"), FatalError);
    EXPECT_THROW(parsePositiveArg("abc", "--fleet"), FatalError);
    EXPECT_THROW(parsePositiveArg("4x", "--fleet"), FatalError);
    EXPECT_THROW(parsePositiveArg("", "--fleet"), FatalError);
}

TEST(ArgparseTest, SeedArgAcceptsZeroButNotNegatives)
{
    EXPECT_EQ(parseSeedArg("0", "--seed"), 0u);
    EXPECT_EQ(parseSeedArg("2017", "--seed"), 2017u);
    EXPECT_THROW(parseSeedArg("-1", "--seed"), FatalError);
    EXPECT_THROW(parseSeedArg("seed", "--seed"), FatalError);
}

TEST(ArgparseTest, ProbabilityArgBoundsTheRange)
{
    EXPECT_DOUBLE_EQ(parseProbabilityArg("0", "--ber"), 0.0);
    EXPECT_DOUBLE_EQ(parseProbabilityArg("1e-4", "--ber"), 1e-4);
    EXPECT_THROW(parseProbabilityArg("1", "--ber"), FatalError);
    EXPECT_THROW(parseProbabilityArg("-0.1", "--ber"), FatalError);
    EXPECT_THROW(parseProbabilityArg("nope", "--ber"), FatalError);
}

TEST(FleetTest, RunFleetPopulatesTheReport)
{
    FleetConfig config = tinyFleetConfig(2);
    config.policy = RadioPolicy::Tdma;
    const FleetResult result = runFleet(config);

    EXPECT_EQ(result.report.policy, "tdma");
    EXPECT_EQ(result.report.nodeCount, 3u);
    EXPECT_EQ(result.report.totalEvents, 9u);
    ASSERT_EQ(result.report.rows.size(), 3u);
    EXPECT_GT(result.report.spanMs, 0.0);
    EXPECT_GT(result.report.radioOccupancy, 0.0);
    EXPECT_GT(result.report.aggregatorLifetimeHours, 0.0);
    for (const FleetNodeReportRow &row : result.report.rows) {
        EXPECT_GT(row.accuracy, 0.5);
        EXPECT_GT(row.sensorLifetimeHours, 0.0);
        EXPECT_GT(row.totalCells, 0u);
    }
    EXPECT_EQ(result.report.csv().rowCount(), 3u);
    EXPECT_GT(result.designWork, Time());
    EXPECT_GE(result.designWork, result.designMakespan);
}

TEST(ArgparseTest, BoundedArgRejectsOverflowAndOutOfRange)
{
    EXPECT_EQ(parseBoundedArg("100", "--nodes", 1000), 100u);
    EXPECT_EQ(parseBoundedArg("1000", "--nodes", 1000), 1000u);
    EXPECT_THROW(parseBoundedArg("1001", "--nodes", 1000),
                 FatalError);
    EXPECT_THROW(parseBoundedArg("0", "--nodes", 1000), FatalError);
    EXPECT_THROW(parseBoundedArg("-5", "--nodes", 1000), FatalError);
    EXPECT_THROW(parseBoundedArg("abc", "--nodes", 1000),
                 FatalError);
    // Larger than long long: strtoll saturates with ERANGE; must be
    // fatal, not silently clamped.
    EXPECT_THROW(
        parseBoundedArg("99999999999999999999999", "--nodes", 1000),
        FatalError);
    EXPECT_THROW(parseBoundedArg("9223372036854775807", "--nodes",
                                 1000),
                 FatalError);
}

TEST(PopulationFleetTest, NodeStateCostsTensOfBytes)
{
    EXPECT_LE(NodeSlabs::bytesPerNode(), 64u);
}

TEST(PopulationFleetTest, ReportCoversTheWholePopulation)
{
    PopulationFleetConfig config;
    config.nodes = 2048;
    config.shards = 4;
    config.eventsPerNode = 3;
    const PopulationFleetResult result = runPopulationFleet(config);

    EXPECT_EQ(result.report.nodeCount, 2048u);
    EXPECT_EQ(result.report.policy, "tiered-fcfs");
    EXPECT_TRUE(result.report.tiers.enabled);
    EXPECT_GT(result.report.tiers.phones, 0u);
    EXPECT_GT(result.report.tiers.gateways, 0u);
    EXPECT_GT(result.report.tiers.windows, 0u);
    EXPECT_GT(result.report.spanMs, 0.0);
    EXPECT_LE(result.effectiveShards, 4u);
    // Every offered event is accounted for: delivered or locally
    // fallen back, never silently dropped.
    EXPECT_EQ(result.report.totalEvents +
                  result.report.tiers.localFallbacks,
              2048u * 3u);
    ASSERT_FALSE(result.report.rows.empty());
    for (const FleetNodeReportRow &row : result.report.rows) {
        EXPECT_EQ(row.admission, "tiered");
        EXPECT_GT(row.accuracy, 0.5);
    }
    EXPECT_GE(result.simulatedEvents, 2048u * 3u);
}

TEST(PopulationFleetTest, ReportByteIdenticalAcrossShardsAndWorkers)
{
    // The 10k-node determinism gate: FleetReport must be a pure
    // function of the configuration, with shard and worker counts
    // changing only wall-clock time (DESIGN.md §16).
    const auto runAt = [](size_t shards, size_t workers) {
        PopulationFleetConfig config;
        config.nodes = 10000;
        config.shards = shards;
        config.workers = workers;
        config.eventsPerNode = 2;
        return runPopulationFleet(config).report.serialize();
    };

    const std::string reference = runAt(1, 1);
    EXPECT_FALSE(reference.empty());
    for (size_t shards : {4, 16}) {
        for (size_t workers : {1, 2, 4}) {
            EXPECT_EQ(runAt(shards, workers), reference)
                << "shards=" << shards << " workers=" << workers;
        }
    }
}

TEST(PopulationFleetTest, CloudQuotaThrottlesUnderProvisionedTier)
{
    // Starve the cloud tier: throttled uplinks must defer and
    // eventually fall back locally rather than disappear.
    PopulationFleetConfig config;
    config.nodes = 4096;
    config.shards = 4;
    config.eventsPerNode = 2;
    config.tiers.cloudEventsPerSec = 100;
    const PopulationFleetResult result = runPopulationFleet(config);

    EXPECT_GT(result.report.tiers.cloudThrottled, 0u);
    EXPECT_GT(result.report.tiers.localFallbacks, 0u);
    EXPECT_EQ(result.report.totalEvents +
                  result.report.tiers.localFallbacks,
              4096u * 2u);
}

TEST(PopulationFleetTest, OutageStreakSaturatesAtSlabWidth)
{
    // A node dark for more events than uint16_t can count must pin
    // its streak at UINT16_MAX, not wrap back to a healthy-looking
    // small value. One dead-battery node misses 70000 events.
    PopulationFleetConfig config;
    config.nodes = 1;
    config.eventsPerNode = 70000;
    PopulationArchetype dead;
    dead.symbol = "X1";
    dead.process = "90nm";
    dead.batteryNj = 0; // exhausted from the first event
    dead.periodUs = 10;
    config.archetypes = {dead};
    config.chaos.enabled = true; // chaos report, zero scheduled
                                 // episodes
    const PopulationFleetResult result = runPopulationFleet(config);

    EXPECT_TRUE(result.report.chaos.enabled);
    EXPECT_EQ(result.report.chaos.maxOutageStreak, 65535u);
    EXPECT_EQ(result.report.chaos.gatewayCrashes, 0u);
    EXPECT_EQ(result.report.totalEvents, 0u);
}

TEST(PopulationFleetTest, WheelWraparoundSurvivesLongChaosBackoff)
{
    // Chaos retry backoff past the timing wheel's 2^32-tick top
    // horizon: the first defer lands in the top level, the second in
    // the far-overflow vector. Every event must still resolve (here:
    // fall back after maxDefers) with the shard-invariant report.
    const auto runAt = [](size_t shards) {
        PopulationFleetConfig config;
        config.nodes = 64;
        config.shards = shards;
        config.eventsPerNode = 4;
        // Zero gateway airtime: every phone->gateway hop defers
        // until maxDefers runs out, with no per-window clamp.
        config.tiers.gatewayAirtimeShare = 0.0;
        config.chaos.enabled = true;
        config.chaos.retryBackoffBaseUs = 2200000000ULL; // > 2^31
        return runPopulationFleet(config).report;
    };
    const FleetReport report = runAt(1);

    EXPECT_EQ(report.totalEvents, 0u); // nothing reaches the cloud
    EXPECT_EQ(report.tiers.localFallbacks, 64u * 4u);
    EXPECT_GT(report.tiers.deferredUplinks, 0u);
    // Two deferrals per event before the fallback, each a chaos
    // retry with exponential backoff.
    EXPECT_EQ(report.chaos.retries, 64u * 4u * 2u);
    EXPECT_EQ(runAt(4).serialize(), report.serialize());
}

} // namespace
