/**
 * @file
 * Unit tests for the double-precision statistical feature set.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"
#include "dsp/features.hh"

namespace
{

using namespace xpro;

const std::vector<double> ramp = {1.0, 2.0, 3.0, 4.0, 5.0};

TEST(FeaturesTest, MaxMinMean)
{
    EXPECT_DOUBLE_EQ(featureMax(ramp), 5.0);
    EXPECT_DOUBLE_EQ(featureMin(ramp), 1.0);
    EXPECT_DOUBLE_EQ(featureMean(ramp), 3.0);
}

TEST(FeaturesTest, VarAndStd)
{
    EXPECT_DOUBLE_EQ(featureVar(ramp), 2.0);
    EXPECT_DOUBLE_EQ(featureStd(ramp), std::sqrt(2.0));
}

TEST(FeaturesTest, ConstantSignal)
{
    const std::vector<double> flat(16, 7.0);
    EXPECT_DOUBLE_EQ(featureVar(flat), 0.0);
    EXPECT_DOUBLE_EQ(featureStd(flat), 0.0);
    EXPECT_DOUBLE_EQ(featureSkew(flat), 0.0);
    EXPECT_DOUBLE_EQ(featureKurt(flat), 0.0);
    EXPECT_DOUBLE_EQ(featureCzero(flat), 0.0);
}

TEST(FeaturesTest, ZeroCrossingsAlternating)
{
    const std::vector<double> alternating = {1.0, -1.0, 1.0, -1.0, 1.0};
    EXPECT_DOUBLE_EQ(featureCzero(alternating), 4.0);
}

TEST(FeaturesTest, ZeroCrossingsWithZeroSamples)
{
    // Zero counts as non-negative, matching the hardware comparator
    // on the sign bit.
    const std::vector<double> signal = {-1.0, 0.0, -1.0, 2.0};
    EXPECT_DOUBLE_EQ(featureCzero(signal), 3.0);
}

TEST(FeaturesTest, SkewOfSymmetricIsZero)
{
    const std::vector<double> symmetric = {-2.0, -1.0, 0.0, 1.0, 2.0};
    EXPECT_NEAR(featureSkew(symmetric), 0.0, 1e-12);
}

TEST(FeaturesTest, SkewSignFollowsTail)
{
    const std::vector<double> right_tail = {0.0, 0.0, 0.0, 0.0, 10.0};
    EXPECT_GT(featureSkew(right_tail), 0.0);
    const std::vector<double> left_tail = {0.0, 0.0, 0.0, 0.0, -10.0};
    EXPECT_LT(featureSkew(left_tail), 0.0);
}

TEST(FeaturesTest, KurtosisOfTwoPointMassIsOne)
{
    // Bernoulli(+-1) has kurtosis exactly 1 (non-excess).
    const std::vector<double> two_point = {1.0, -1.0, 1.0, -1.0};
    EXPECT_NEAR(featureKurt(two_point), 1.0, 1e-12);
}

TEST(FeaturesTest, GaussianKurtosisNearThree)
{
    Rng rng(77);
    std::vector<double> noise(200000);
    for (double &v : noise)
        v = rng.gaussian();
    EXPECT_NEAR(featureKurt(noise), 3.0, 0.1);
    EXPECT_NEAR(featureSkew(noise), 0.0, 0.05);
}

TEST(FeaturesTest, DispatchMatchesDirectCalls)
{
    for (FeatureKind kind : allFeatureKinds) {
        const double via_dispatch = computeFeature(kind, ramp);
        double direct = 0.0;
        switch (kind) {
          case FeatureKind::Max:   direct = featureMax(ramp); break;
          case FeatureKind::Min:   direct = featureMin(ramp); break;
          case FeatureKind::Mean:  direct = featureMean(ramp); break;
          case FeatureKind::Var:   direct = featureVar(ramp); break;
          case FeatureKind::Std:   direct = featureStd(ramp); break;
          case FeatureKind::Czero: direct = featureCzero(ramp); break;
          case FeatureKind::Skew:  direct = featureSkew(ramp); break;
          case FeatureKind::Kurt:  direct = featureKurt(ramp); break;
        }
        EXPECT_DOUBLE_EQ(via_dispatch, direct)
            << featureName(kind);
    }
}

TEST(FeaturesTest, ComputeAllMatchesCanonicalOrder)
{
    const auto all = computeAllFeatures(ramp);
    for (size_t i = 0; i < featureKindCount; ++i)
        EXPECT_DOUBLE_EQ(all[i], computeFeature(allFeatureKinds[i], ramp));
}

TEST(FeaturesTest, EmptySignalPanics)
{
    const std::vector<double> empty;
    EXPECT_THROW(featureMax(empty), PanicError);
    EXPECT_THROW(featureMean(empty), PanicError);
    EXPECT_THROW(featureCzero(empty), PanicError);
}

TEST(FeaturesTest, NamesAreUnique)
{
    std::set<std::string> names;
    for (FeatureKind kind : allFeatureKinds)
        names.insert(featureName(kind));
    EXPECT_EQ(names.size(), featureKindCount);
}

/** Invariance properties under shifting and scaling. */
class FeatureInvarianceTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FeatureInvarianceTest, ShiftAndScaleBehaviour)
{
    Rng rng(GetParam());
    std::vector<double> signal(128);
    for (double &v : signal)
        v = rng.gaussian(0.0, 2.0);

    std::vector<double> shifted = signal;
    for (double &v : shifted)
        v += 5.0;
    // Variance is shift-invariant; mean shifts by the offset.
    EXPECT_NEAR(featureVar(shifted), featureVar(signal), 1e-9);
    EXPECT_NEAR(featureMean(shifted), featureMean(signal) + 5.0, 1e-9);
    // Skew and kurtosis are shift- and scale-invariant.
    std::vector<double> scaled = signal;
    for (double &v : scaled)
        v *= 3.0;
    EXPECT_NEAR(featureSkew(scaled), featureSkew(signal), 1e-9);
    EXPECT_NEAR(featureKurt(scaled), featureKurt(signal), 1e-9);
    // Std scales linearly.
    EXPECT_NEAR(featureStd(scaled), 3.0 * featureStd(signal), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FeatureInvarianceTest,
                         ::testing::Values(5u, 6u, 7u, 8u));

} // namespace
