/**
 * @file
 * Unit tests for the functional-cell topology DAG.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/logging.hh"
#include "graph/dataflow_graph.hh"

namespace
{

using xpro::DataflowGraph;
using xpro::DataflowNode;

DataflowNode
makeCell(const std::string &name, size_t output_bits = 32)
{
    DataflowNode node;
    node.name = name;
    node.outputBits = output_bits;
    return node;
}

TEST(DataflowGraphTest, SourceNodeExists)
{
    DataflowGraph g(4096);
    EXPECT_EQ(g.nodeCount(), 1u);
    EXPECT_EQ(g.cellCount(), 0u);
    EXPECT_EQ(g.node(DataflowGraph::sourceId).name, "source");
    EXPECT_EQ(g.node(DataflowGraph::sourceId).outputBits, 4096u);
}

TEST(DataflowGraphTest, AddCellsAndEdges)
{
    DataflowGraph g(1024);
    const size_t feat = g.addCell(makeCell("Var@time"));
    const size_t svm = g.addCell(makeCell("SVM-1"));
    g.addEdge(DataflowGraph::sourceId, feat);
    g.addEdge(feat, svm);

    EXPECT_EQ(g.cellCount(), 2u);
    ASSERT_EQ(g.successors(DataflowGraph::sourceId).size(), 1u);
    EXPECT_EQ(g.successors(DataflowGraph::sourceId)[0], feat);
    ASSERT_EQ(g.predecessors(svm).size(), 1u);
    EXPECT_EQ(g.predecessors(svm)[0], feat);
}

TEST(DataflowGraphTest, DuplicateEdgeIgnored)
{
    DataflowGraph g(64);
    const size_t a = g.addCell(makeCell("a"));
    g.addEdge(DataflowGraph::sourceId, a);
    g.addEdge(DataflowGraph::sourceId, a);
    EXPECT_EQ(g.successors(DataflowGraph::sourceId).size(), 1u);
    EXPECT_EQ(g.predecessors(a).size(), 1u);
}

TEST(DataflowGraphTest, SelfLoopPanics)
{
    DataflowGraph g(64);
    const size_t a = g.addCell(makeCell("a"));
    EXPECT_THROW(g.addEdge(a, a), xpro::PanicError);
}

TEST(DataflowGraphTest, EdgeIntoSourcePanics)
{
    DataflowGraph g(64);
    const size_t a = g.addCell(makeCell("a"));
    EXPECT_THROW(g.addEdge(a, DataflowGraph::sourceId),
                 xpro::PanicError);
}

TEST(DataflowGraphTest, TerminalsAreSinkCells)
{
    DataflowGraph g(64);
    const size_t f1 = g.addCell(makeCell("f1"));
    const size_t f2 = g.addCell(makeCell("f2"));
    const size_t fusion = g.addCell(makeCell("fusion"));
    g.addEdge(DataflowGraph::sourceId, f1);
    g.addEdge(DataflowGraph::sourceId, f2);
    g.addEdge(f1, fusion);
    g.addEdge(f2, fusion);
    const std::vector<size_t> terminals = g.terminals();
    ASSERT_EQ(terminals.size(), 1u);
    EXPECT_EQ(terminals[0], fusion);
}

TEST(DataflowGraphTest, TopologicalOrderRespectsEdges)
{
    DataflowGraph g(64);
    const size_t a = g.addCell(makeCell("a"));
    const size_t b = g.addCell(makeCell("b"));
    const size_t c = g.addCell(makeCell("c"));
    g.addEdge(DataflowGraph::sourceId, a);
    g.addEdge(a, b);
    g.addEdge(a, c);
    g.addEdge(b, c);

    const std::vector<size_t> order = g.topologicalOrder();
    ASSERT_EQ(order.size(), 4u);
    auto position = [&](size_t node) {
        return std::find(order.begin(), order.end(), node) -
               order.begin();
    };
    EXPECT_LT(position(DataflowGraph::sourceId), position(a));
    EXPECT_LT(position(a), position(b));
    EXPECT_LT(position(b), position(c));
}

TEST(DataflowGraphTest, ValidatePassesOnWellFormedGraph)
{
    DataflowGraph g(64);
    const size_t a = g.addCell(makeCell("a"));
    const size_t b = g.addCell(makeCell("b"));
    g.addEdge(DataflowGraph::sourceId, a);
    g.addEdge(a, b);
    EXPECT_EQ(g.validate(), "");
}

TEST(DataflowGraphTest, ValidateFlagsUnreachableCell)
{
    DataflowGraph g(64);
    const size_t a = g.addCell(makeCell("a"));
    const size_t orphan = g.addCell(makeCell("orphan"));
    g.addEdge(DataflowGraph::sourceId, a);
    g.addEdge(orphan, a); // orphan feeds a but nothing feeds orphan
    const std::string error = g.validate();
    EXPECT_NE(error.find("orphan"), std::string::npos);
}

TEST(DataflowGraphTest, ValidateFlagsMissingInput)
{
    DataflowGraph g(64);
    g.addCell(makeCell("floating"));
    const std::string error = g.validate();
    EXPECT_NE(error.find("floating"), std::string::npos);
}

TEST(DataflowGraphTest, CostsStoredPerNode)
{
    DataflowGraph g(64);
    DataflowNode cell = makeCell("Var@time", 32);
    cell.costs.sensorEnergy = xpro::Energy::nanos(12.0);
    cell.costs.sensorDelay = xpro::Time::micros(3.0);
    cell.costs.aggregatorEnergy = xpro::Energy::nanos(40.0);
    cell.costs.aggregatorDelay = xpro::Time::micros(0.5);
    const size_t id = g.addCell(cell);
    EXPECT_DOUBLE_EQ(g.node(id).costs.sensorEnergy.nj(), 12.0);
    EXPECT_DOUBLE_EQ(g.node(id).costs.aggregatorDelay.us(), 0.5);
}

} // namespace
