/**
 * @file
 * Unit and property tests for the Dinic max-flow / min-cut engine
 * the Automatic XPro Generator builds on.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"
#include "graph/flow_network.hh"

namespace
{

using xpro::FlowNetwork;
using xpro::MinCutResult;

TEST(FlowNetworkTest, SingleEdge)
{
    FlowNetwork net(2);
    net.addEdge(0, 1, 5.0);
    EXPECT_DOUBLE_EQ(net.maxFlow(0, 1), 5.0);
}

TEST(FlowNetworkTest, SeriesTakesMinimum)
{
    FlowNetwork net(3);
    net.addEdge(0, 1, 5.0);
    net.addEdge(1, 2, 3.0);
    EXPECT_DOUBLE_EQ(net.maxFlow(0, 2), 3.0);
}

TEST(FlowNetworkTest, ParallelPathsAdd)
{
    FlowNetwork net(4);
    net.addEdge(0, 1, 2.0);
    net.addEdge(1, 3, 2.0);
    net.addEdge(0, 2, 3.0);
    net.addEdge(2, 3, 3.0);
    EXPECT_DOUBLE_EQ(net.maxFlow(0, 3), 5.0);
}

TEST(FlowNetworkTest, ClassicCLRSExample)
{
    // CLRS figure 26.6 instance; known max flow 23.
    FlowNetwork net(6);
    net.addEdge(0, 1, 16);
    net.addEdge(0, 2, 13);
    net.addEdge(1, 2, 10);
    net.addEdge(2, 1, 4);
    net.addEdge(1, 3, 12);
    net.addEdge(3, 2, 9);
    net.addEdge(2, 4, 14);
    net.addEdge(4, 3, 7);
    net.addEdge(3, 5, 20);
    net.addEdge(4, 5, 4);
    EXPECT_DOUBLE_EQ(net.maxFlow(0, 5), 23.0);
}

TEST(FlowNetworkTest, DisconnectedIsZero)
{
    FlowNetwork net(4);
    net.addEdge(0, 1, 10.0);
    net.addEdge(2, 3, 10.0);
    EXPECT_DOUBLE_EQ(net.maxFlow(0, 3), 0.0);
}

TEST(FlowNetworkTest, BackwardEdgeHasNoForwardCapacity)
{
    FlowNetwork net(2);
    net.addEdge(0, 1, 4.0);
    EXPECT_DOUBLE_EQ(net.maxFlow(1, 0), 0.0);
}

TEST(FlowNetworkTest, MinCutSidesPartitionNodes)
{
    FlowNetwork net(4);
    net.addEdge(0, 1, 1.0);
    net.addEdge(1, 2, 5.0);
    net.addEdge(2, 3, 1.0);
    const MinCutResult cut = net.minCut(0, 3);
    EXPECT_DOUBLE_EQ(cut.value, 1.0);
    EXPECT_TRUE(cut.sourceSide[0]);
    EXPECT_FALSE(cut.sourceSide[3]);
}

TEST(FlowNetworkTest, CutEdgesSumToCutValue)
{
    FlowNetwork net(5);
    net.addEdge(0, 1, 3.0);
    net.addEdge(0, 2, 2.0);
    net.addEdge(1, 3, 1.5);
    net.addEdge(2, 3, 4.0);
    net.addEdge(1, 2, 1.0);
    net.addEdge(3, 4, 10.0);
    const MinCutResult cut = net.minCut(0, 4);
    double sum = 0.0;
    for (size_t edge_id : cut.cutEdges)
        sum += net.edgeCapacity(edge_id);
    EXPECT_NEAR(sum, cut.value, 1e-9);
}

TEST(FlowNetworkTest, InfiniteEdgeNeverCut)
{
    FlowNetwork net(4);
    net.addEdge(0, 1, FlowNetwork::infiniteCapacity());
    net.addEdge(1, 2, 2.0);
    net.addEdge(2, 3, 5.0);
    const MinCutResult cut = net.minCut(0, 3);
    EXPECT_DOUBLE_EQ(cut.value, 2.0);
    // Node 1 must stay on the source side with its infinite feeder.
    EXPECT_TRUE(cut.sourceSide[1]);
    for (size_t edge_id : cut.cutEdges)
        EXPECT_FALSE(std::isinf(net.edgeCapacity(edge_id)));
}

TEST(FlowNetworkTest, InfiniteMaxFlowDetected)
{
    FlowNetwork net(2);
    net.addEdge(0, 1, FlowNetwork::infiniteCapacity());
    EXPECT_TRUE(std::isinf(net.maxFlow(0, 1)));
}

TEST(FlowNetworkTest, EdgeAccessors)
{
    FlowNetwork net(3);
    const size_t e = net.addEdge(1, 2, 7.5);
    EXPECT_EQ(net.edgeFrom(e), 1u);
    EXPECT_EQ(net.edgeTo(e), 2u);
    EXPECT_DOUBLE_EQ(net.edgeCapacity(e), 7.5);
}

TEST(FlowNetworkTest, FlowConservationAfterMaxFlow)
{
    FlowNetwork net(5);
    std::vector<size_t> edges;
    edges.push_back(net.addEdge(0, 1, 4));
    edges.push_back(net.addEdge(0, 2, 3));
    edges.push_back(net.addEdge(1, 3, 2));
    edges.push_back(net.addEdge(2, 3, 5));
    edges.push_back(net.addEdge(1, 2, 2));
    edges.push_back(net.addEdge(3, 4, 6));
    net.maxFlow(0, 4);
    // Net flow into every interior node equals net flow out.
    std::vector<double> balance(5, 0.0);
    for (size_t e : edges) {
        balance[net.edgeFrom(e)] -= net.edgeFlow(e);
        balance[net.edgeTo(e)] += net.edgeFlow(e);
    }
    EXPECT_NEAR(balance[1], 0.0, 1e-9);
    EXPECT_NEAR(balance[2], 0.0, 1e-9);
    EXPECT_NEAR(balance[3], 0.0, 1e-9);
    EXPECT_NEAR(balance[0] + balance[4], 0.0, 1e-9);
}

TEST(FlowNetworkTest, AddNodeGrowsGraph)
{
    FlowNetwork net(1);
    const size_t n = net.addNode();
    EXPECT_EQ(n, 1u);
    net.addEdge(0, n, 2.0);
    EXPECT_DOUBLE_EQ(net.maxFlow(0, n), 2.0);
}

TEST(FlowNetworkTest, RepeatedMaxFlowIsIdempotent)
{
    FlowNetwork net(3);
    net.addEdge(0, 1, 2.0);
    net.addEdge(1, 2, 2.0);
    EXPECT_DOUBLE_EQ(net.maxFlow(0, 2), 2.0);
    EXPECT_DOUBLE_EQ(net.maxFlow(0, 2), 2.0);
}

/**
 * Property: on random graphs the Dinic cut value equals the best cut
 * found by exhaustive enumeration of node bipartitions.
 */
class FlowNetworkPropertyTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FlowNetworkPropertyTest, MatchesExhaustiveMinCut)
{
    xpro::Rng rng(GetParam());
    const size_t n = 2 + rng.below(7); // up to 8 nodes
    struct EdgeSpec { size_t u, v; double cap; };
    std::vector<EdgeSpec> specs;
    FlowNetwork net(n);
    for (size_t u = 0; u < n; ++u) {
        for (size_t v = 0; v < n; ++v) {
            if (u == v || !rng.chance(0.45))
                continue;
            const double cap = rng.uniform(0.1, 10.0);
            specs.push_back({u, v, cap});
            net.addEdge(u, v, cap);
        }
    }
    const size_t s = 0;
    const size_t t = n - 1;
    const double flow = net.maxFlow(s, t);

    double best = std::numeric_limits<double>::infinity();
    const size_t interior = n - 2;
    for (size_t mask = 0; mask < (size_t{1} << interior); ++mask) {
        // side[v] true => source side. s fixed to source, t to sink.
        std::vector<bool> side(n, false);
        side[s] = true;
        for (size_t b = 0; b < interior; ++b)
            side[1 + b] = (mask >> b) & 1;
        side[t] = false;
        double cost = 0.0;
        for (const auto &e : specs) {
            if (side[e.u] && !side[e.v])
                cost += e.cap;
        }
        best = std::min(best, cost);
    }
    EXPECT_NEAR(flow, best, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowNetworkPropertyTest,
                         ::testing::Range(uint64_t{100}, uint64_t{130}));

/**
 * Property: after arbitrary capacity perturbations — raises and
 * drops, including drops below the carried flow — a warm
 * resumeMinCut() matches a cold solve of the same capacities: same
 * value, same (canonical) source side, same cut edges.
 */
TEST_P(FlowNetworkPropertyTest, WarmResolveMatchesColdAfterPerturbation)
{
    xpro::Rng rng(GetParam() + 5000);
    const size_t n = 2 + rng.below(7);
    struct EdgeSpec { size_t u, v; double cap; size_t id; };
    std::vector<EdgeSpec> specs;
    FlowNetwork net(n);
    for (size_t u = 0; u < n; ++u) {
        for (size_t v = 0; v < n; ++v) {
            if (u == v || !rng.chance(0.45))
                continue;
            EdgeSpec spec{u, v, rng.uniform(0.1, 10.0), 0};
            spec.id = net.addEdge(u, v, spec.cap);
            specs.push_back(spec);
        }
    }
    const size_t s = 0;
    const size_t t = n - 1;
    net.minCut(s, t);

    for (int round = 0; round < 6; ++round) {
        for (EdgeSpec &spec : specs) {
            if (!rng.chance(0.5))
                continue;
            // Half the perturbations scale down hard, so drops
            // below the current flow (excess cancellation) happen
            // regularly.
            spec.cap = rng.chance(0.5) ? spec.cap * rng.uniform(0.0, 0.6)
                                       : rng.uniform(0.1, 10.0);
            net.updateCapacity(spec.id, spec.cap);
        }
        const MinCutResult warm = net.resumeMinCut(s, t);

        FlowNetwork cold_net(n);
        for (const EdgeSpec &spec : specs)
            cold_net.addEdge(spec.u, spec.v, spec.cap);
        const MinCutResult cold = cold_net.minCut(s, t);

        EXPECT_NEAR(warm.value, cold.value, 1e-9)
            << "round " << round;
        EXPECT_EQ(warm.sourceSide, cold.sourceSide)
            << "round " << round;
        EXPECT_EQ(warm.cutEdges, cold.cutEdges)
            << "round " << round;
    }
}

TEST(FlowNetworkTest, ResumeAfterCapacityRaiseGrowsFlow)
{
    FlowNetwork net(3);
    const size_t a = net.addEdge(0, 1, 2.0);
    net.addEdge(1, 2, 5.0);
    EXPECT_DOUBLE_EQ(net.maxFlow(0, 2), 2.0);
    net.updateCapacity(a, 4.0);
    EXPECT_DOUBLE_EQ(net.resumeMaxFlow(0, 2), 4.0);
}

TEST(FlowNetworkTest, CapacityDropBelowFlowCancelsExcess)
{
    // Two disjoint paths carrying 3 + 3; dropping one mid-path edge
    // to 1 must reroute and leave a feasible flow of value 4.
    FlowNetwork net(4);
    net.addEdge(0, 1, 3.0);
    const size_t mid = net.addEdge(1, 3, 3.0);
    net.addEdge(0, 2, 3.0);
    net.addEdge(2, 3, 3.0);
    EXPECT_DOUBLE_EQ(net.maxFlow(0, 3), 6.0);
    net.updateCapacity(mid, 1.0);
    EXPECT_NEAR(net.flowValue(0), 4.0, 1e-9);
    EXPECT_DOUBLE_EQ(net.resumeMaxFlow(0, 3), 4.0);
    EXPECT_LE(net.edgeFlow(mid), 1.0 + 1e-9);
}

TEST(FlowNetworkTest, CapacityDropOnTerminalEdgeCancelsExcess)
{
    // The dropped edge touches the source, exercising the branch
    // that skips rerouting on the terminal's own side.
    FlowNetwork net(3);
    const size_t head = net.addEdge(0, 1, 5.0);
    net.addEdge(1, 2, 5.0);
    EXPECT_DOUBLE_EQ(net.maxFlow(0, 2), 5.0);
    net.updateCapacity(head, 2.0);
    EXPECT_NEAR(net.flowValue(0), 2.0, 1e-9);
    EXPECT_DOUBLE_EQ(net.resumeMaxFlow(0, 2), 2.0);
}

TEST(FlowNetworkTest, WarmCutSkippingEdgeEnumerationStillClassifies)
{
    FlowNetwork net(4);
    net.addEdge(0, 1, 1.0);
    net.addEdge(1, 2, 5.0);
    net.addEdge(2, 3, 1.0);
    net.maxFlow(0, 3);
    const MinCutResult cut = net.resumeMinCut(0, 3, false);
    EXPECT_DOUBLE_EQ(cut.value, 1.0);
    EXPECT_TRUE(cut.cutEdges.empty());
    EXPECT_TRUE(cut.sourceSide[0]);
    EXPECT_FALSE(cut.sourceSide[1]);
    EXPECT_FALSE(cut.sourceSide[3]);
}

} // namespace
