/**
 * @file
 * Tests for the fixed-point RBF-SVM and the end-to-end all-fixed
 * inference pipeline: the e^-t unit's accuracy, decision agreement
 * between the quantized and double-precision SVM, and the headline
 * check that the 32-bit fixed datapath (paper Section 4.4) preserves
 * the classifier's decisions on a real test case.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"
#include "core/fixed_pipeline.hh"
#include "data/testcases.hh"

namespace
{

using namespace xpro;

TEST(FixedExpTest, MatchesDoubleExponential)
{
    for (double t = 0.0; t <= 12.0; t += 0.037) {
        const double expected = std::exp(-t);
        const double got =
            fixedExpNeg(Fixed::fromDouble(t)).toDouble();
        EXPECT_NEAR(got, expected, 4e-4) << "t=" << t;
    }
}

TEST(FixedExpTest, BoundaryBehaviour)
{
    EXPECT_DOUBLE_EQ(fixedExpNeg(Fixed()).toDouble(), 1.0);
    // Negative inputs clamp to e^0.
    EXPECT_DOUBLE_EQ(fixedExpNeg(Fixed::fromDouble(-3.0)).toDouble(),
                     1.0);
    // Deep tail underflows to zero on the Q16.16 grid.
    EXPECT_DOUBLE_EQ(fixedExpNeg(Fixed::fromDouble(30.0)).toDouble(),
                     0.0);
    // Monotone non-increasing along the useful range.
    Fixed previous = Fixed::fromInt(1);
    for (double t = 0.0; t < 16.0; t += 0.25) {
        const Fixed v = fixedExpNeg(Fixed::fromDouble(t));
        EXPECT_LE(v.raw(), previous.raw()) << "t=" << t;
        previous = v;
    }
}

TEST(FixedSvmTest, DecisionsAgreeWithDoubleModel)
{
    Rng rng(2001);
    // Train a double SVM on separable 2-D data.
    LabeledData data;
    for (int i = 0; i < 120; ++i) {
        const bool positive = i % 2 == 0;
        data.rows.push_back({rng.gaussian(positive ? 0.7 : 0.3, 0.1),
                             rng.gaussian(positive ? 0.3 : 0.7, 0.1)});
        data.labels.push_back(positive ? 1 : -1);
    }
    SvmConfig config;
    config.kernel = {KernelKind::Rbf, 2.0};
    config.c = 10.0;
    const Svm model = Svm::train(data, config);
    const FixedSvm fixed(model);
    EXPECT_EQ(fixed.supportVectorCount(),
              model.supportVectorCount());

    size_t agree = 0;
    const size_t n = 500;
    for (size_t i = 0; i < n; ++i) {
        const std::vector<double> x = {rng.uniform(0.0, 1.0),
                                       rng.uniform(0.0, 1.0)};
        const std::vector<Fixed> xq = {Fixed::fromDouble(x[0]),
                                       Fixed::fromDouble(x[1])};
        agree += model.predict(x) == fixed.predict(xq);
    }
    // Disagreements can only occur within a hair of the boundary.
    EXPECT_GT(static_cast<double>(agree) / n, 0.98);
}

TEST(FixedSvmTest, DecisionValuesTrackDoubleModel)
{
    Rng rng(2003);
    LabeledData data;
    for (int i = 0; i < 60; ++i) {
        const bool positive = i % 2 == 0;
        data.rows.push_back({rng.gaussian(positive ? 0.8 : 0.2, 0.1)});
        data.labels.push_back(positive ? 1 : -1);
    }
    SvmConfig config;
    config.kernel = {KernelKind::Rbf, 1.0};
    const Svm model = Svm::train(data, config);
    const FixedSvm fixed(model);
    for (int i = 0; i < 50; ++i) {
        const double x = rng.uniform(0.0, 1.0);
        EXPECT_NEAR(fixed.decision({Fixed::fromDouble(x)}).toDouble(),
                    model.decision({x}), 0.02);
    }
}

TEST(FixedSvmTest, LinearKernelIsRejected)
{
    Rng rng(2005);
    LabeledData data;
    for (int i = 0; i < 20; ++i) {
        data.rows.push_back({rng.gaussian(i % 2 ? 1.0 : -1.0, 0.2)});
        data.labels.push_back(i % 2 ? 1 : -1);
    }
    SvmConfig config;
    config.kernel = {KernelKind::Linear, 0.0};
    const Svm model = Svm::train(data, config);
    EXPECT_THROW(FixedSvm{model}, PanicError);
}

TEST(FixedPipelineTest, EndToEndAgreementOnRealCase)
{
    // The headline hardware-faithfulness check: quantize a trained
    // pipeline and classify real segments entirely on the Q16.16
    // grid. The paper's 32-bit fixed-number choice must preserve
    // nearly every decision.
    const SignalDataset dataset = makeTestCase(TestCase::C1, 9);
    EngineConfig config;
    config.subspace.candidates = 25;
    config.subspace.keepFraction = 0.2;
    TrainingOptions options;
    options.maxTrainingSegments = 150;
    options.seed = 99;
    const TrainedPipeline pipeline =
        trainPipeline(dataset, config, options);
    const FixedPipeline fixed(pipeline);

    const double agreement =
        FixedPipeline::agreement(pipeline, fixed, dataset, 200);
    EXPECT_GT(agreement, 0.95);
}

TEST(FixedPipelineTest, FixedFeaturesMatchQuantizedReference)
{
    const SignalDataset dataset = makeTestCase(TestCase::E1, 9);
    EngineConfig config;
    config.subspace.candidates = 12;
    config.subspace.keepFraction = 0.25;
    TrainingOptions options;
    options.maxTrainingSegments = 80;
    const TrainedPipeline pipeline =
        trainPipeline(dataset, config, options);
    const FixedPipeline fixed(pipeline);

    // Spot-check: fixed features track the double extractor within
    // quantization error on a few segments.
    for (size_t s = 0; s < 5; ++s) {
        const auto &samples = dataset.segments[s].samples;
        const std::vector<Fixed> fixed_features =
            fixed.extractFeatures(samples);
        const std::vector<double> ref =
            pipeline.extractor.extractAll(samples);
        ASSERT_EQ(fixed_features.size(), ref.size());
        for (size_t c = 0; c < ref.size(); ++c) {
            EXPECT_NEAR(fixed_features[c].toDouble(), ref[c],
                        0.15 * (1.0 + std::fabs(ref[c])))
                << "feature " << featureFullName(featureFromIndex(c));
        }
    }
}

} // namespace
