/**
 * @file
 * Unit tests for stratified splitting and cross-validation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/logging.hh"
#include "common/random.hh"
#include "ml/crossval.hh"

namespace
{

using namespace xpro;

std::vector<int>
balancedLabels(size_t n)
{
    std::vector<int> labels(n);
    for (size_t i = 0; i < n; ++i)
        labels[i] = (i % 2) ? 1 : -1;
    return labels;
}

TEST(CrossvalTest, SplitCoversAllIndicesOnce)
{
    Rng rng(301);
    const std::vector<int> labels = balancedLabels(100);
    const Split split = stratifiedSplit(labels, 0.75, rng);
    std::set<size_t> all;
    all.insert(split.trainIndices.begin(), split.trainIndices.end());
    all.insert(split.testIndices.begin(), split.testIndices.end());
    EXPECT_EQ(all.size(), 100u);
    EXPECT_EQ(split.trainIndices.size() + split.testIndices.size(),
              100u);
}

TEST(CrossvalTest, SplitRespectsFraction)
{
    Rng rng(303);
    const std::vector<int> labels = balancedLabels(200);
    const Split split = stratifiedSplit(labels, 0.75, rng);
    EXPECT_EQ(split.trainIndices.size(), 150u);
    EXPECT_EQ(split.testIndices.size(), 50u);
}

TEST(CrossvalTest, SplitIsStratified)
{
    Rng rng(305);
    // Unbalanced: 30 positives, 90 negatives.
    std::vector<int> labels(120, -1);
    for (size_t i = 0; i < 30; ++i)
        labels[i] = 1;
    const Split split = stratifiedSplit(labels, 2.0 / 3.0, rng);
    size_t train_pos = 0;
    for (size_t idx : split.trainIndices)
        train_pos += labels[idx] == 1;
    EXPECT_EQ(train_pos, 20u);
    EXPECT_EQ(split.trainIndices.size(), 80u);
}

TEST(CrossvalTest, BadFractionPanics)
{
    Rng rng(307);
    const std::vector<int> labels = balancedLabels(10);
    EXPECT_THROW(stratifiedSplit(labels, 0.0, rng), PanicError);
    EXPECT_THROW(stratifiedSplit(labels, 1.0, rng), PanicError);
}

TEST(CrossvalTest, FoldsPartitionIndices)
{
    Rng rng(309);
    const std::vector<int> labels = balancedLabels(103);
    const auto folds = stratifiedFolds(labels, 10, rng);
    EXPECT_EQ(folds.size(), 10u);
    std::set<size_t> all;
    size_t total = 0;
    for (const auto &fold : folds) {
        all.insert(fold.begin(), fold.end());
        total += fold.size();
    }
    EXPECT_EQ(all.size(), 103u);
    EXPECT_EQ(total, 103u);
    // Folds should be nearly equal in size.
    for (const auto &fold : folds) {
        EXPECT_GE(fold.size(), 9u);
        EXPECT_LE(fold.size(), 12u);
    }
}

TEST(CrossvalTest, FoldsKeepClassBalance)
{
    Rng rng(311);
    const std::vector<int> labels = balancedLabels(100);
    const auto folds = stratifiedFolds(labels, 5, rng);
    for (const auto &fold : folds) {
        size_t pos = 0;
        for (size_t idx : fold)
            pos += labels[idx] == 1;
        EXPECT_EQ(pos, 10u);
    }
}

TEST(CrossvalTest, TooFewFoldsPanics)
{
    Rng rng(313);
    EXPECT_THROW(stratifiedFolds(balancedLabels(10), 1, rng),
                 PanicError);
}

TEST(CrossvalTest, SubsetMaterializesRows)
{
    LabeledData data;
    data.rows = {{0.0}, {1.0}, {2.0}, {3.0}};
    data.labels = {1, -1, 1, -1};
    const LabeledData sub = subset(data, {2, 0});
    ASSERT_EQ(sub.size(), 2u);
    EXPECT_DOUBLE_EQ(sub.rows[0][0], 2.0);
    EXPECT_EQ(sub.labels[1], 1);
}

TEST(CrossvalTest, SubsetOutOfRangePanics)
{
    LabeledData data;
    data.rows = {{0.0}};
    data.labels = {1};
    EXPECT_THROW(subset(data, {1}), PanicError);
}

TEST(CrossvalTest, CrossValidatedAccuracyOnSeparableData)
{
    Rng data_rng(315);
    LabeledData data;
    for (size_t i = 0; i < 60; ++i) {
        const bool positive = i % 2 == 0;
        data.rows.push_back(
            {data_rng.gaussian(positive ? 2.0 : -2.0, 0.4)});
        data.labels.push_back(positive ? 1 : -1);
    }
    SvmConfig config;
    config.kernel = {KernelKind::Rbf, 0.5};
    Rng cv_rng(317);
    const double acc = crossValidatedAccuracy(data, config, 5, cv_rng);
    EXPECT_GE(acc, 0.9);
    EXPECT_LE(acc, 1.0);
}

} // namespace
