/**
 * @file
 * Unit tests for kernel functions.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "ml/kernel.hh"

namespace
{

using namespace xpro;

TEST(KernelTest, DotProduct)
{
    EXPECT_DOUBLE_EQ(dotProduct({1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}),
                     32.0);
    EXPECT_DOUBLE_EQ(dotProduct({}, {}), 0.0);
}

TEST(KernelTest, SquaredDistance)
{
    EXPECT_DOUBLE_EQ(squaredDistance({0.0, 0.0}, {3.0, 4.0}), 25.0);
    EXPECT_DOUBLE_EQ(squaredDistance({1.0}, {1.0}), 0.0);
}

TEST(KernelTest, SizeMismatchPanics)
{
    EXPECT_THROW(dotProduct({1.0}, {1.0, 2.0}), PanicError);
    EXPECT_THROW(squaredDistance({1.0}, {1.0, 2.0}), PanicError);
}

TEST(KernelTest, LinearKernelIsDotProduct)
{
    Kernel k{KernelKind::Linear, 0.0};
    EXPECT_DOUBLE_EQ(k({1.0, 2.0}, {3.0, 4.0}), 11.0);
}

TEST(KernelTest, RbfAtZeroDistanceIsOne)
{
    Kernel k{KernelKind::Rbf, 0.7};
    EXPECT_DOUBLE_EQ(k({1.0, -2.0}, {1.0, -2.0}), 1.0);
}

TEST(KernelTest, RbfDecaysWithDistance)
{
    Kernel k{KernelKind::Rbf, 0.5};
    const double near = k({0.0}, {0.5});
    const double far = k({0.0}, {2.0});
    EXPECT_GT(near, far);
    EXPECT_NEAR(near, std::exp(-0.5 * 0.25), 1e-12);
    EXPECT_NEAR(far, std::exp(-0.5 * 4.0), 1e-12);
}

TEST(KernelTest, RbfGammaControlsWidth)
{
    Kernel narrow{KernelKind::Rbf, 5.0};
    Kernel wide{KernelKind::Rbf, 0.1};
    EXPECT_LT(narrow({0.0}, {1.0}), wide({0.0}, {1.0}));
}

TEST(KernelTest, RbfIsSymmetric)
{
    Kernel k{KernelKind::Rbf, 1.3};
    const std::vector<double> x = {0.2, -0.7, 1.5};
    const std::vector<double> z = {1.0, 0.0, -0.5};
    EXPECT_DOUBLE_EQ(k(x, z), k(z, x));
}

TEST(KernelTest, Names)
{
    EXPECT_EQ(Kernel{KernelKind::Linear}.name(), "linear");
    EXPECT_NE(Kernel({KernelKind::Rbf, 0.5}).name().find("rbf"),
              std::string::npos);
}

} // namespace
