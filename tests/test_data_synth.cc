/**
 * @file
 * Tests for the synthetic biosignal generators and the Table-1 test
 * cases.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"
#include "common/stats.hh"
#include "data/ecg_synth.hh"
#include "data/eeg_synth.hh"
#include "data/emg_synth.hh"
#include "data/testcases.hh"
#include "dsp/features.hh"

namespace
{

using namespace xpro;

TEST(EcgSynthTest, SegmentShapeAndRange)
{
    Rng rng(501);
    EcgSynthConfig config;
    const auto segment =
        synthesizeEcgSegment(82, 360.0, false, config, rng);
    EXPECT_EQ(segment.size(), 82u);
    // R peak dominates: max well above noise floor.
    EXPECT_GT(featureMax(segment), 0.5);
    EXPECT_LT(featureMax(segment), 3.0);
}

TEST(EcgSynthTest, AbnormalHasSmallerRAndT)
{
    Rng rng(503);
    EcgSynthConfig config;
    config.noiseLevel = 0.0;
    config.baselineWander = 0.0;
    xpro::Summary normal_max;
    xpro::Summary abnormal_max;
    for (int i = 0; i < 50; ++i) {
        normal_max.add(featureMax(
            synthesizeEcgSegment(128, 360.0, false, config, rng)));
        abnormal_max.add(featureMax(
            synthesizeEcgSegment(128, 360.0, true, config, rng)));
    }
    EXPECT_GT(normal_max.mean(), abnormal_max.mean());
}

TEST(EegSynthTest, PositiveClassHasHigherPeaks)
{
    Rng rng(505);
    EegSynthConfig config;
    xpro::Summary pos_kurt;
    xpro::Summary neg_kurt;
    for (int i = 0; i < 50; ++i) {
        pos_kurt.add(featureKurt(
            synthesizeEegSegment(128, 512.0, true, config, rng)));
        neg_kurt.add(featureKurt(
            synthesizeEegSegment(128, 512.0, false, config, rng)));
    }
    // Spike transients raise kurtosis on average.
    EXPECT_GT(pos_kurt.mean(), neg_kurt.mean());
}

TEST(EmgSynthTest, ClassesDifferInVariance)
{
    Rng rng(507);
    EmgSynthConfig config;
    xpro::Summary pos_var;
    xpro::Summary neg_var;
    for (int i = 0; i < 50; ++i) {
        pos_var.add(featureVar(
            synthesizeEmgSegment(132, 1000.0, true, config, rng)));
        neg_var.add(featureVar(
            synthesizeEmgSegment(132, 1000.0, false, config, rng)));
    }
    EXPECT_NE(pos_var.mean(), neg_var.mean());
}

TEST(EmgSynthTest, NearZeroMean)
{
    Rng rng(509);
    EmgSynthConfig config;
    const auto segment =
        synthesizeEmgSegment(132, 1000.0, true, config, rng);
    EXPECT_EQ(segment.size(), 132u);
    EXPECT_NEAR(featureMean(segment), 0.0, 0.3);
}

TEST(TestCasesTest, Table1ShapesMatchPaper)
{
    const struct
    {
        TestCase id;
        const char *symbol;
        size_t length;
        size_t count;
    } expected[] = {
        {TestCase::C1, "C1", 82, 1162},
        {TestCase::C2, "C2", 136, 884},
        {TestCase::E1, "E1", 128, 1000},
        {TestCase::E2, "E2", 128, 1000},
        {TestCase::M1, "M1", 132, 1200},
        {TestCase::M2, "M2", 132, 1200},
    };
    for (const auto &row : expected) {
        const TestCaseInfo &info = testCaseInfo(row.id);
        EXPECT_STREQ(info.symbol, row.symbol);
        EXPECT_EQ(info.segmentLength, row.length);
        EXPECT_EQ(info.segmentCount, row.count);
    }
}

TEST(TestCasesTest, MaterializedDatasetsMatchInfo)
{
    for (TestCase id : allTestCases) {
        const TestCaseInfo &info = testCaseInfo(id);
        const SignalDataset dataset = makeTestCase(id, 99);
        EXPECT_EQ(dataset.size(), info.segmentCount);
        EXPECT_EQ(dataset.symbol, info.symbol);
        for (size_t i = 0; i < 5; ++i) {
            EXPECT_EQ(dataset.segments[i].samples.size(),
                      info.segmentLength);
        }
    }
}

TEST(TestCasesTest, ClassBalanceIsEven)
{
    const SignalDataset dataset = makeTestCase(TestCase::E1, 99);
    const size_t pos = dataset.positiveCount();
    EXPECT_NEAR(static_cast<double>(pos) /
                    static_cast<double>(dataset.size()),
                0.5, 0.01);
}

TEST(TestCasesTest, DeterministicBySeed)
{
    const SignalDataset a = makeTestCase(TestCase::M1, 7);
    const SignalDataset b = makeTestCase(TestCase::M1, 7);
    const SignalDataset c = makeTestCase(TestCase::M1, 8);
    EXPECT_EQ(a.segments[0].samples, b.segments[0].samples);
    EXPECT_NE(a.segments[0].samples, c.segments[0].samples);
}

TEST(TestCasesTest, CasesAreDistinct)
{
    const SignalDataset e1 = makeTestCase(TestCase::E1, 7);
    const SignalDataset e2 = makeTestCase(TestCase::E2, 7);
    EXPECT_NE(e1.segments[0].samples, e2.segments[0].samples);
}

TEST(TestCasesTest, EventRatesArePlausible)
{
    for (TestCase id : allTestCases) {
        const SignalDataset dataset = makeTestCase(id, 3);
        const double rate = dataset.eventsPerSecond();
        // Segments last a fraction of a second up to a second.
        EXPECT_GT(rate, 1.0);
        EXPECT_LT(rate, 20.0);
    }
}

TEST(TestCasesTest, ModalityNames)
{
    EXPECT_EQ(modalityName(Modality::Ecg), "ECG");
    EXPECT_EQ(modalityName(Modality::Eeg), "EEG");
    EXPECT_EQ(modalityName(Modality::Emg), "EMG");
}

} // namespace
