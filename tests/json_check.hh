/**
 * @file
 * Minimal strict JSON validator for tests.
 *
 * A recursive-descent checker that accepts exactly the RFC 8259
 * grammar — in particular it REJECTS trailing commas, which is the
 * bug class the trace-export round-trip tests guard against (the old
 * writers emitted "...},\n]" for empty event lists and Chrome/
 * Perfetto silently tolerated it). Validation only; no DOM is built.
 */

#ifndef XPRO_TESTS_JSON_CHECK_HH
#define XPRO_TESTS_JSON_CHECK_HH

#include <cctype>
#include <cstdio>
#include <string>

namespace xpro::test
{

namespace json_detail
{

struct Parser
{
    const std::string &text;
    size_t pos = 0;
    std::string error;

    explicit Parser(const std::string &t) : text(t) {}

    bool fail(const char *what)
    {
        char buf[128];
        std::snprintf(buf, sizeof(buf), "%s at offset %zu", what,
                      pos);
        error = buf;
        return false;
    }

    void skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool consume(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool parseString()
    {
        if (!consume('"'))
            return fail("expected '\"'");
        while (pos < text.size()) {
            const char c = text[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c == '\\') {
                ++pos;
                if (pos >= text.size())
                    return fail("truncated escape");
                const char e = text[pos];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos;
                        if (pos >= text.size() ||
                            !std::isxdigit(
                                static_cast<unsigned char>(
                                    text[pos])))
                            return fail("bad \\u escape");
                    }
                } else if (e != '"' && e != '\\' && e != '/' &&
                           e != 'b' && e != 'f' && e != 'n' &&
                           e != 'r' && e != 't') {
                    return fail("bad escape");
                }
                ++pos;
                continue;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("control char in string");
            ++pos;
        }
        return fail("unterminated string");
    }

    bool digits()
    {
        if (pos >= text.size() ||
            !std::isdigit(static_cast<unsigned char>(text[pos])))
            return false;
        while (pos < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[pos])))
            ++pos;
        return true;
    }

    bool parseNumber()
    {
        consume('-');
        if (pos < text.size() && text[pos] == '0') {
            ++pos; // leading zero admits no more integer digits
        } else if (!digits()) {
            return fail("bad number");
        }
        if (consume('.') && !digits())
            return fail("bad fraction");
        if (pos < text.size() &&
            (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            if (!digits())
                return fail("bad exponent");
        }
        return true;
    }

    bool parseLiteral(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (pos >= text.size() || text[pos] != *p)
                return fail("bad literal");
            ++pos;
        }
        return true;
    }

    bool parseValue()
    {
        skipWs();
        if (pos >= text.size())
            return fail("expected value");
        switch (text[pos]) {
        case '{':
            return parseObject();
        case '[':
            return parseArray();
        case '"':
            return parseString();
        case 't':
            return parseLiteral("true");
        case 'f':
            return parseLiteral("false");
        case 'n':
            return parseLiteral("null");
        default:
            return parseNumber();
        }
    }

    bool parseObject()
    {
        consume('{');
        skipWs();
        if (consume('}'))
            return true;
        for (;;) {
            skipWs();
            if (!parseString())
                return false;
            skipWs();
            if (!consume(':'))
                return fail("expected ':'");
            if (!parseValue())
                return false;
            skipWs();
            if (consume(','))
                continue; // a '}' next iteration = trailing comma,
                          // rejected by parseString above
            if (consume('}'))
                return true;
            return fail("expected ',' or '}'");
        }
    }

    bool parseArray()
    {
        consume('[');
        skipWs();
        if (consume(']'))
            return true;
        for (;;) {
            if (!parseValue())
                return false;
            skipWs();
            if (consume(','))
                continue; // ']' next iteration = trailing comma,
                          // rejected by parseValue above
            if (consume(']'))
                return true;
            return fail("expected ',' or ']'");
        }
    }
};

} // namespace json_detail

/** True iff @p text is one complete, strictly valid JSON value
 *  (optionally surrounded by whitespace). On failure @p error, when
 *  given, receives a short "what at offset N" description. */
inline bool
jsonValid(const std::string &text, std::string *error = nullptr)
{
    json_detail::Parser p(text);
    bool ok = p.parseValue();
    if (ok) {
        p.skipWs();
        if (p.pos != p.text.size())
            ok = p.fail("trailing garbage");
    }
    if (!ok && error != nullptr)
        *error = p.error;
    return ok;
}

} // namespace xpro::test

#endif // XPRO_TESTS_JSON_CHECK_HH
