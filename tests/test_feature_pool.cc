/**
 * @file
 * Unit tests for the 48-feature pool, the extractor and the min-max
 * scaler.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/logging.hh"
#include "common/random.hh"
#include "dsp/feature_pool.hh"

namespace
{

using namespace xpro;

TEST(FeaturePoolTest, PoolSizeIs48)
{
    EXPECT_EQ(featurePoolSize, 48u);
    EXPECT_EQ(featureDomainCount * featureKindCount, featurePoolSize);
}

TEST(FeaturePoolTest, IndexRoundTrips)
{
    for (size_t i = 0; i < featurePoolSize; ++i) {
        const FeatureId id = featureFromIndex(i);
        EXPECT_EQ(featureIndex(id), i);
    }
}

TEST(FeaturePoolTest, IndexOutOfRangePanics)
{
    EXPECT_THROW(featureFromIndex(featurePoolSize), PanicError);
}

TEST(FeaturePoolTest, FullNamesAreUnique)
{
    std::set<std::string> names;
    for (size_t i = 0; i < featurePoolSize; ++i)
        names.insert(featureFullName(featureFromIndex(i)));
    EXPECT_EQ(names.size(), featurePoolSize);
}

TEST(FeaturePoolTest, DomainLevels)
{
    EXPECT_EQ(domainLevel(FeatureDomain::Time), 0u);
    EXPECT_EQ(domainLevel(FeatureDomain::Dwt1), 1u);
    EXPECT_EQ(domainLevel(FeatureDomain::Dwt5), 5u);
}

TEST(FeaturePoolTest, DomainSignalLengths)
{
    FeatureExtractor extractor;
    Rng rng(81);
    std::vector<double> segment(128);
    for (double &v : segment)
        v = rng.gaussian();

    EXPECT_EQ(extractor.domainSignal(segment, FeatureDomain::Time).size(),
              128u);
    EXPECT_EQ(extractor.domainSignal(segment, FeatureDomain::Dwt1).size(),
              64u);
    EXPECT_EQ(extractor.domainSignal(segment, FeatureDomain::Dwt4).size(),
              8u);
    // Level 5 holds both 4-sample segments (detail + approximation).
    EXPECT_EQ(extractor.domainSignal(segment, FeatureDomain::Dwt5).size(),
              8u);
}

TEST(FeaturePoolTest, ExtractAllMatchesSingleExtract)
{
    FeatureExtractor extractor;
    Rng rng(83);
    std::vector<double> segment(128);
    for (double &v : segment)
        v = rng.gaussian();

    const std::vector<double> all = extractor.extractAll(segment);
    ASSERT_EQ(all.size(), featurePoolSize);
    for (size_t i = 0; i < featurePoolSize; ++i) {
        const FeatureId id = featureFromIndex(i);
        EXPECT_NEAR(all[i], extractor.extract(segment, id), 1e-12)
            << featureFullName(id);
    }
}

TEST(FeaturePoolTest, TimeDomainUsesRawSegmentLength)
{
    // Short segments keep their native length in the time domain
    // (only the DWT path is framed to 128 samples).
    FeatureExtractor extractor;
    std::vector<double> segment(82, 0.0);
    segment[0] = 82.0; // make the mean depend on the divisor
    const double mean = extractor.extract(
        segment, {FeatureDomain::Time, FeatureKind::Mean});
    EXPECT_NEAR(mean, 1.0, 1e-12);
}

TEST(FeaturePoolTest, HaarAndDb4Differ)
{
    Rng rng(85);
    std::vector<double> segment(128);
    for (double &v : segment)
        v = rng.gaussian();
    FeatureExtractor haar(Wavelet::Haar);
    FeatureExtractor db4(Wavelet::Db4);
    const FeatureId var_d1{FeatureDomain::Dwt1, FeatureKind::Var};
    EXPECT_NE(haar.extract(segment, var_d1),
              db4.extract(segment, var_d1));
}

TEST(FeatureScalerTest, MapsToUnitInterval)
{
    FeatureScaler scaler;
    std::vector<std::vector<double>> rows = {
        {0.0, 10.0}, {5.0, 20.0}, {10.0, 30.0},
    };
    scaler.fit(rows);
    const std::vector<double> mid = scaler.transform({5.0, 20.0});
    EXPECT_DOUBLE_EQ(mid[0], 0.5);
    EXPECT_DOUBLE_EQ(mid[1], 0.5);
    const std::vector<double> low = scaler.transform({0.0, 10.0});
    EXPECT_DOUBLE_EQ(low[0], 0.0);
    const std::vector<double> high = scaler.transform({10.0, 30.0});
    EXPECT_DOUBLE_EQ(high[1], 1.0);
}

TEST(FeatureScalerTest, ClampsOutOfRangeTestValues)
{
    FeatureScaler scaler;
    scaler.fit(FlatMatrix{{0.0}, {1.0}});
    EXPECT_DOUBLE_EQ(scaler.transform({-5.0})[0], 0.0);
    EXPECT_DOUBLE_EQ(scaler.transform({5.0})[0], 1.0);
}

TEST(FeatureScalerTest, ConstantColumnMapsToZero)
{
    FeatureScaler scaler;
    scaler.fit(FlatMatrix{{3.0, 1.0}, {3.0, 2.0}});
    EXPECT_DOUBLE_EQ(scaler.transform({3.0, 1.5})[0], 0.0);
}

TEST(FeatureScalerTest, UnfittedTransformPanics)
{
    FeatureScaler scaler;
    EXPECT_THROW(scaler.transform({1.0}), PanicError);
    EXPECT_FALSE(scaler.fitted());
}

TEST(FeatureScalerTest, ColumnMismatchPanics)
{
    FeatureScaler scaler;
    scaler.fit(FlatMatrix{{1.0, 2.0}});
    EXPECT_THROW(scaler.transform({1.0}), PanicError);
}

// Golden feature vector for a deterministic probe signal, captured
// from the scalar extractor. Pins the whole chain — framing, DWT,
// domain slicing, every statistic — against silent numeric drift;
// the SIMD-vs-scalar half of the contract lives in
// test_hotpath_identity.cc.
TEST(FeaturePoolTest, GoldenFeatureVector)
{
    std::vector<double> signal(128);
    for (size_t i = 0; i < 128; ++i)
        signal[i] = std::sin(0.37 * double(i)) +
                    0.5 * std::cos(1.3 * double(i)) +
                    0.01 * double(i);

    const double golden[featurePoolSize] = {
        2.5132217202016442,     -1.3402197431652243,
        0.6812448670379404,     0.75659112872921852,
        0.86982246966218257,    20,
        0.0013319174640767997,  2.2647244580166328,
        0.43584080471586517,    -0.46607753737669633,
        -0.002527368535929728,  0.079889282261902422,
        0.28264692155037247,    52,
        -0.0024818626376288747, 1.6174515284446389,
        1.2428419631132028,     -1.0346456870505429,
        0.025940745297335893,   0.43952233241336891,
        0.66296480480744147,    11,
        0.025288424719681304,   1.9928404326995044,
        1.8251711792592367,     -1.8599147242913734,
        -0.044256987590351703,  1.6800713374224852,
        1.296175658397613,      14,
        0.098608375299362283,   1.5187198480577246,
        2.9691203529724501,     -1.8755822789175975,
        0.96865391294437153,    2.5624340270665917,
        1.6007604527431929,     2,
        -0.41105867330014956,   2.0378515609517445,
        6.8947559134969154,     -1.9770604860330581,
        1.6243920508066312,     7.6275907823482445,
        2.7618093312805367,     1,
        0.6542928959829365,     2.255774236126495,
    };

    const FeatureExtractor extractor(Wavelet::Db4);
    const std::vector<double> feats = extractor.extractAll(signal);
    ASSERT_EQ(feats.size(), featurePoolSize);
    for (size_t f = 0; f < featurePoolSize; ++f)
        EXPECT_EQ(feats[f], golden[f]) << "feature " << f;
}

} // namespace
