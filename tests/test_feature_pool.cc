/**
 * @file
 * Unit tests for the 48-feature pool, the extractor and the min-max
 * scaler.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/logging.hh"
#include "common/random.hh"
#include "dsp/feature_pool.hh"

namespace
{

using namespace xpro;

TEST(FeaturePoolTest, PoolSizeIs48)
{
    EXPECT_EQ(featurePoolSize, 48u);
    EXPECT_EQ(featureDomainCount * featureKindCount, featurePoolSize);
}

TEST(FeaturePoolTest, IndexRoundTrips)
{
    for (size_t i = 0; i < featurePoolSize; ++i) {
        const FeatureId id = featureFromIndex(i);
        EXPECT_EQ(featureIndex(id), i);
    }
}

TEST(FeaturePoolTest, IndexOutOfRangePanics)
{
    EXPECT_THROW(featureFromIndex(featurePoolSize), PanicError);
}

TEST(FeaturePoolTest, FullNamesAreUnique)
{
    std::set<std::string> names;
    for (size_t i = 0; i < featurePoolSize; ++i)
        names.insert(featureFullName(featureFromIndex(i)));
    EXPECT_EQ(names.size(), featurePoolSize);
}

TEST(FeaturePoolTest, DomainLevels)
{
    EXPECT_EQ(domainLevel(FeatureDomain::Time), 0u);
    EXPECT_EQ(domainLevel(FeatureDomain::Dwt1), 1u);
    EXPECT_EQ(domainLevel(FeatureDomain::Dwt5), 5u);
}

TEST(FeaturePoolTest, DomainSignalLengths)
{
    FeatureExtractor extractor;
    Rng rng(81);
    std::vector<double> segment(128);
    for (double &v : segment)
        v = rng.gaussian();

    EXPECT_EQ(extractor.domainSignal(segment, FeatureDomain::Time).size(),
              128u);
    EXPECT_EQ(extractor.domainSignal(segment, FeatureDomain::Dwt1).size(),
              64u);
    EXPECT_EQ(extractor.domainSignal(segment, FeatureDomain::Dwt4).size(),
              8u);
    // Level 5 holds both 4-sample segments (detail + approximation).
    EXPECT_EQ(extractor.domainSignal(segment, FeatureDomain::Dwt5).size(),
              8u);
}

TEST(FeaturePoolTest, ExtractAllMatchesSingleExtract)
{
    FeatureExtractor extractor;
    Rng rng(83);
    std::vector<double> segment(128);
    for (double &v : segment)
        v = rng.gaussian();

    const std::vector<double> all = extractor.extractAll(segment);
    ASSERT_EQ(all.size(), featurePoolSize);
    for (size_t i = 0; i < featurePoolSize; ++i) {
        const FeatureId id = featureFromIndex(i);
        EXPECT_NEAR(all[i], extractor.extract(segment, id), 1e-12)
            << featureFullName(id);
    }
}

TEST(FeaturePoolTest, TimeDomainUsesRawSegmentLength)
{
    // Short segments keep their native length in the time domain
    // (only the DWT path is framed to 128 samples).
    FeatureExtractor extractor;
    std::vector<double> segment(82, 0.0);
    segment[0] = 82.0; // make the mean depend on the divisor
    const double mean = extractor.extract(
        segment, {FeatureDomain::Time, FeatureKind::Mean});
    EXPECT_NEAR(mean, 1.0, 1e-12);
}

TEST(FeaturePoolTest, HaarAndDb4Differ)
{
    Rng rng(85);
    std::vector<double> segment(128);
    for (double &v : segment)
        v = rng.gaussian();
    FeatureExtractor haar(Wavelet::Haar);
    FeatureExtractor db4(Wavelet::Db4);
    const FeatureId var_d1{FeatureDomain::Dwt1, FeatureKind::Var};
    EXPECT_NE(haar.extract(segment, var_d1),
              db4.extract(segment, var_d1));
}

TEST(FeatureScalerTest, MapsToUnitInterval)
{
    FeatureScaler scaler;
    std::vector<std::vector<double>> rows = {
        {0.0, 10.0}, {5.0, 20.0}, {10.0, 30.0},
    };
    scaler.fit(rows);
    const std::vector<double> mid = scaler.transform({5.0, 20.0});
    EXPECT_DOUBLE_EQ(mid[0], 0.5);
    EXPECT_DOUBLE_EQ(mid[1], 0.5);
    const std::vector<double> low = scaler.transform({0.0, 10.0});
    EXPECT_DOUBLE_EQ(low[0], 0.0);
    const std::vector<double> high = scaler.transform({10.0, 30.0});
    EXPECT_DOUBLE_EQ(high[1], 1.0);
}

TEST(FeatureScalerTest, ClampsOutOfRangeTestValues)
{
    FeatureScaler scaler;
    scaler.fit(FlatMatrix{{0.0}, {1.0}});
    EXPECT_DOUBLE_EQ(scaler.transform({-5.0})[0], 0.0);
    EXPECT_DOUBLE_EQ(scaler.transform({5.0})[0], 1.0);
}

TEST(FeatureScalerTest, ConstantColumnMapsToZero)
{
    FeatureScaler scaler;
    scaler.fit(FlatMatrix{{3.0, 1.0}, {3.0, 2.0}});
    EXPECT_DOUBLE_EQ(scaler.transform({3.0, 1.5})[0], 0.0);
}

TEST(FeatureScalerTest, UnfittedTransformPanics)
{
    FeatureScaler scaler;
    EXPECT_THROW(scaler.transform({1.0}), PanicError);
    EXPECT_FALSE(scaler.fitted());
}

TEST(FeatureScalerTest, ColumnMismatchPanics)
{
    FeatureScaler scaler;
    scaler.fit(FlatMatrix{{1.0, 2.0}});
    EXPECT_THROW(scaler.transform({1.0}), PanicError);
}

} // namespace
