/**
 * @file
 * Unit and property tests for the Q16.16 fixed-point type that
 * models the paper's 32-bit in-sensor datapath.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/fixed_point.hh"
#include "common/random.hh"

namespace
{

using xpro::Fixed;

constexpr double quantum = 1.0 / 65536.0;

TEST(FixedPointTest, RoundTripSmallValues)
{
    for (double v : {0.0, 1.0, -1.0, 0.5, -0.25, 123.456, -9876.5}) {
        EXPECT_NEAR(Fixed::fromDouble(v).toDouble(), v, quantum)
            << "value " << v;
    }
}

TEST(FixedPointTest, FromIntExact)
{
    EXPECT_EQ(Fixed::fromInt(42).toDouble(), 42.0);
    EXPECT_EQ(Fixed::fromInt(-17).toInt(), -17);
    EXPECT_EQ(Fixed::fromInt(0).raw(), 0);
}

TEST(FixedPointTest, AdditionAndSubtraction)
{
    const Fixed a = Fixed::fromDouble(1.5);
    const Fixed b = Fixed::fromDouble(2.25);
    EXPECT_DOUBLE_EQ((a + b).toDouble(), 3.75);
    EXPECT_DOUBLE_EQ((b - a).toDouble(), 0.75);
    EXPECT_DOUBLE_EQ((-a).toDouble(), -1.5);
}

TEST(FixedPointTest, MultiplicationRounds)
{
    const Fixed a = Fixed::fromDouble(3.0);
    const Fixed b = Fixed::fromDouble(2.5);
    EXPECT_NEAR((a * b).toDouble(), 7.5, quantum);
    const Fixed tiny = Fixed::fromDouble(0.0001);
    EXPECT_NEAR((tiny * tiny).toDouble(), 0.0, quantum);
}

TEST(FixedPointTest, DivisionBasics)
{
    const Fixed a = Fixed::fromDouble(7.5);
    const Fixed b = Fixed::fromDouble(2.5);
    EXPECT_NEAR((a / b).toDouble(), 3.0, quantum);
    EXPECT_NEAR((b / a).toDouble(), 1.0 / 3.0, quantum);
}

TEST(FixedPointTest, DivisionByZeroSaturates)
{
    const Fixed pos = Fixed::fromDouble(5.0);
    const Fixed neg = Fixed::fromDouble(-5.0);
    EXPECT_EQ(pos / Fixed(), Fixed::max());
    EXPECT_EQ(neg / Fixed(), Fixed::min());
}

TEST(FixedPointTest, AdditionSaturates)
{
    const Fixed big = Fixed::fromDouble(32000.0);
    EXPECT_EQ(big + big, Fixed::max());
    EXPECT_EQ((-big) - big, Fixed::min());
}

TEST(FixedPointTest, MultiplicationSaturates)
{
    const Fixed big = Fixed::fromDouble(30000.0);
    EXPECT_EQ(big * big, Fixed::max());
    EXPECT_EQ(big * (-big), Fixed::min());
}

TEST(FixedPointTest, FromDoubleSaturates)
{
    EXPECT_EQ(Fixed::fromDouble(1.0e9), Fixed::max());
    EXPECT_EQ(Fixed::fromDouble(-1.0e9), Fixed::min());
}

TEST(FixedPointTest, AbsoluteValue)
{
    EXPECT_DOUBLE_EQ(Fixed::fromDouble(-3.5).abs().toDouble(), 3.5);
    EXPECT_DOUBLE_EQ(Fixed::fromDouble(3.5).abs().toDouble(), 3.5);
    EXPECT_EQ(Fixed().abs().raw(), 0);
}

TEST(FixedPointTest, Ordering)
{
    EXPECT_LT(Fixed::fromDouble(-1.0), Fixed::fromDouble(1.0));
    EXPECT_LT(Fixed::fromDouble(1.0), Fixed::fromDouble(1.5));
    EXPECT_EQ(Fixed::fromDouble(2.0), Fixed::fromInt(2));
}

TEST(FixedPointTest, SqrtExactSquares)
{
    for (int v : {0, 1, 4, 9, 16, 25, 100, 1024}) {
        const Fixed root = Fixed::fromInt(v).sqrt();
        EXPECT_NEAR(root.toDouble(), std::sqrt(double(v)), 2 * quantum)
            << "sqrt(" << v << ")";
    }
}

TEST(FixedPointTest, SqrtFractionalValues)
{
    EXPECT_NEAR(Fixed::fromDouble(2.0).sqrt().toDouble(),
                std::numbers::sqrt2, 2 * quantum);
    EXPECT_NEAR(Fixed::fromDouble(0.25).sqrt().toDouble(), 0.5,
                2 * quantum);
}

TEST(FixedPointTest, SqrtOfNegativeIsZero)
{
    EXPECT_EQ(Fixed::fromDouble(-4.0).sqrt().raw(), 0);
}

/** Property sweep: fixed arithmetic tracks double arithmetic. */
class FixedPointPropertyTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FixedPointPropertyTest, ArithmeticTracksDouble)
{
    xpro::Rng rng(GetParam());
    for (int i = 0; i < 200; ++i) {
        const double a = rng.uniform(-100.0, 100.0);
        const double b = rng.uniform(-100.0, 100.0);
        const Fixed fa = Fixed::fromDouble(a);
        const Fixed fb = Fixed::fromDouble(b);
        EXPECT_NEAR((fa + fb).toDouble(), a + b, 3 * quantum);
        EXPECT_NEAR((fa - fb).toDouble(), a - b, 3 * quantum);
        // Product error scales with the magnitudes involved.
        EXPECT_NEAR((fa * fb).toDouble(), a * b,
                    (std::fabs(a) + std::fabs(b) + 1.0) * quantum);
    }
}

TEST_P(FixedPointPropertyTest, SqrtSquaredIsIdentity)
{
    xpro::Rng rng(GetParam() + 17);
    for (int i = 0; i < 200; ++i) {
        const double v = rng.uniform(0.0, 1000.0);
        const Fixed f = Fixed::fromDouble(v);
        const Fixed root = f.sqrt();
        EXPECT_NEAR((root * root).toDouble(), v,
                    (2.0 * std::sqrt(v) + 2.0) * quantum)
            << "value " << v;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FixedPointPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 12345u));

} // namespace
