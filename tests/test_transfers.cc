/**
 * @file
 * Unit tests for broadcast transfer groups.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/transfers.hh"
#include "topology_fixtures.hh"

namespace
{

using namespace xpro;
using xpro::test::CellSpec;
using xpro::test::MiniTopology;
using xpro::test::chainTopology;

const BroadcastGroup *
findGroup(const std::vector<BroadcastGroup> &groups, size_t producer,
          size_t bits)
{
    for (const BroadcastGroup &group : groups) {
        if (group.producer == producer && group.bits == bits)
            return &group;
    }
    return nullptr;
}

TEST(TransfersTest, ChainHasOneGroupPerProducer)
{
    const EngineTopology topo = chainTopology(1, 1, 1, 1024);
    const auto groups = broadcastGroups(topo);
    // source, feature, svm each produce one payload; fusion none.
    ASSERT_EQ(groups.size(), 3u);
    EXPECT_NE(findGroup(groups, DataflowGraph::sourceId, 1024),
              nullptr);
}

TEST(TransfersTest, FanoutSharesOneGroup)
{
    MiniTopology mini(512);
    CellSpec spec;
    const size_t f = mini.addCell(spec);
    const size_t s1 = mini.addCell(spec);
    const size_t s2 = mini.addCell(spec);
    const size_t z = mini.addCell(spec);
    mini.connect(DataflowGraph::sourceId, f);
    mini.connect(f, s1);
    mini.connect(f, s2);
    mini.connect(s1, z);
    mini.connect(s2, z);
    const EngineTopology topo = mini.build(z);

    const auto groups = broadcastGroups(topo);
    const BroadcastGroup *group = findGroup(groups, f, 32);
    ASSERT_NE(group, nullptr);
    EXPECT_EQ(group->consumers.size(), 2u);
}

TEST(TransfersTest, DistinctPayloadsSplitGroups)
{
    MiniTopology mini(512);
    CellSpec dwt;
    dwt.outputBits = 256;
    const size_t d = mini.addCell(dwt);
    CellSpec spec;
    const size_t a = mini.addCell(spec);
    const size_t b = mini.addCell(spec);
    const size_t z = mini.addCell(spec);
    mini.connect(DataflowGraph::sourceId, d);
    mini.connect(d, a, 128); // detail band
    mini.connect(d, b, 64);  // approx band
    mini.connect(a, z);
    mini.connect(b, z);
    const EngineTopology topo = mini.build(z);

    const auto groups = broadcastGroups(topo);
    const BroadcastGroup *detail = findGroup(groups, d, 128);
    const BroadcastGroup *approx = findGroup(groups, d, 64);
    ASSERT_NE(detail, nullptr);
    ASSERT_NE(approx, nullptr);
    EXPECT_EQ(detail->consumers, std::vector<size_t>{a});
    EXPECT_EQ(approx->consumers, std::vector<size_t>{b});
}

TEST(TransfersTest, DefaultBitsComeFromProducerOutput)
{
    MiniTopology mini(2048);
    CellSpec spec;
    spec.outputBits = 96;
    const size_t f = mini.addCell(spec);
    const size_t z = mini.addCell(spec);
    mini.connect(DataflowGraph::sourceId, f);
    mini.connect(f, z); // no explicit payload: producer's 96 bits
    const EngineTopology topo = mini.build(z);
    EXPECT_NE(findGroup(broadcastGroups(topo), f, 96), nullptr);
}

TEST(TransfersTest, GroupCountBoundedByEdges)
{
    const EngineTopology topo = chainTopology(1, 1, 1);
    const auto groups = broadcastGroups(topo);
    size_t total_consumers = 0;
    for (const BroadcastGroup &group : groups)
        total_consumers += group.consumers.size();
    // Every edge appears in exactly one group.
    size_t edges = 0;
    for (size_t u = 0; u < topo.graph.nodeCount(); ++u)
        edges += topo.graph.successors(u).size();
    EXPECT_EQ(total_consumers, edges);
}

} // namespace
