/**
 * @file
 * Unit tests for the engine topology builder.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/pipeline.hh"
#include "core/topology.hh"
#include "data/testcases.hh"

namespace
{

using namespace xpro;

/** Small, fast training configuration shared by core tests. */
EngineConfig
testConfig()
{
    EngineConfig config;
    config.subspace.candidates = 12;
    config.subspace.keepFraction = 0.25;
    config.subspace.subspaceDimension = 8;
    return config;
}

TrainingOptions
testOptions()
{
    TrainingOptions options;
    options.maxTrainingSegments = 80;
    options.seed = 77;
    return options;
}

class TopologyTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        dataset = new SignalDataset(makeTestCase(TestCase::E1, 42));
        pipeline = new TrainedPipeline(
            trainPipeline(*dataset, testConfig(), testOptions()));
        topology = new EngineTopology(buildEngineTopology(
            pipeline->ensemble, dataset->segmentLength, testConfig(),
            dataset->eventsPerSecond()));
    }

    static void
    TearDownTestSuite()
    {
        delete topology;
        delete pipeline;
        delete dataset;
        topology = nullptr;
        pipeline = nullptr;
        dataset = nullptr;
    }

    static SignalDataset *dataset;
    static TrainedPipeline *pipeline;
    static EngineTopology *topology;
};

SignalDataset *TopologyTest::dataset = nullptr;
TrainedPipeline *TopologyTest::pipeline = nullptr;
EngineTopology *TopologyTest::topology = nullptr;

TEST_F(TopologyTest, GraphIsValid)
{
    EXPECT_EQ(topology->graph.validate(), "");
}

TEST_F(TopologyTest, SourceCarriesRawSegmentBits)
{
    EXPECT_EQ(topology->graph.node(DataflowGraph::sourceId).outputBits,
              dataset->segmentLength * wordBits);
}

TEST_F(TopologyTest, FusionIsTheOnlyTerminal)
{
    const auto terminals = topology->graph.terminals();
    ASSERT_EQ(terminals.size(), 1u);
    EXPECT_EQ(terminals[0], topology->fusionNode);
    EXPECT_EQ(topology->cells[topology->fusionNode].kind,
              ComponentKind::Fusion);
}

TEST_F(TopologyTest, OneSvmCellPerBaseClassifier)
{
    EXPECT_EQ(topology->svmNodes.size(),
              pipeline->ensemble.bases().size());
    for (size_t b = 0; b < topology->svmNodes.size(); ++b) {
        const CellInfo &info = topology->cells[topology->svmNodes[b]];
        EXPECT_EQ(info.kind, ComponentKind::Svm);
        EXPECT_EQ(info.svmIndex, b);
        // Each SVM reads one feature cell per subspace dimension.
        EXPECT_EQ(topology->graph
                      .predecessors(topology->svmNodes[b])
                      .size(),
                  pipeline->ensemble.bases()[b].featureIndices.size());
    }
}

TEST_F(TopologyTest, FeatureCellsMatchUsedFeatures)
{
    const std::vector<size_t> used =
        pipeline->ensemble.usedFeatureIndices();
    size_t feature_cells = 0;
    for (size_t idx = 0; idx < featurePoolSize; ++idx) {
        if (topology->featureNodes[idx] != 0)
            ++feature_cells;
    }
    EXPECT_EQ(feature_cells, used.size());
    for (size_t idx : used)
        EXPECT_NE(topology->featureNodes[idx], 0u);
}

TEST_F(TopologyTest, DwtChainCoversDeepestUsedLevel)
{
    size_t deepest = 0;
    for (size_t idx : pipeline->ensemble.usedFeatureIndices()) {
        deepest =
            std::max(deepest,
                     domainLevel(featureFromIndex(idx).domain));
    }
    EXPECT_EQ(topology->dwtNodes.size(), deepest);
    // The chain is connected source -> L1 -> L2 -> ...
    for (size_t k = 0; k < topology->dwtNodes.size(); ++k) {
        const size_t expected_pred =
            k == 0 ? DataflowGraph::sourceId : topology->dwtNodes[k - 1];
        const auto &preds =
            topology->graph.predecessors(topology->dwtNodes[k]);
        ASSERT_EQ(preds.size(), 1u);
        EXPECT_EQ(preds[0], expected_pred);
    }
}

TEST_F(TopologyTest, AllCellsHavePositiveCosts)
{
    for (size_t node = 1; node < topology->graph.nodeCount(); ++node) {
        const CellCosts &costs = topology->graph.node(node).costs;
        EXPECT_GT(costs.sensorEnergy.pj(), 0.0)
            << describeCell(*topology, node);
        EXPECT_GT(costs.sensorDelay.ns(), 0.0);
        EXPECT_GT(costs.aggregatorEnergy.pj(), 0.0);
        EXPECT_GT(costs.aggregatorDelay.ns(), 0.0);
    }
}

TEST_F(TopologyTest, StandbyRaisesSensorCostAtLowerEventRates)
{
    const EngineTopology slow = buildEngineTopology(
        pipeline->ensemble, dataset->segmentLength, testConfig(), 1.0);
    const EngineTopology fast = buildEngineTopology(
        pipeline->ensemble, dataset->segmentLength, testConfig(), 10.0);
    // Same cell: lower event rate => longer idle listening per event.
    EXPECT_GT(slow.graph.node(1).costs.sensorEnergy,
              fast.graph.node(1).costs.sensorEnergy);
    // Software costs are unaffected.
    EXPECT_EQ(slow.graph.node(1).costs.aggregatorEnergy.pj(),
              fast.graph.node(1).costs.aggregatorEnergy.pj());
}

TEST_F(TopologyTest, StdReusesVarWhenBothPresent)
{
    // Find a domain where both Var and Std cells exist.
    for (size_t d = 0; d < featureDomainCount; ++d) {
        const auto domain = static_cast<FeatureDomain>(d);
        const size_t var_node = topology->featureNodes[featureIndex(
            {domain, FeatureKind::Var})];
        const size_t std_node = topology->featureNodes[featureIndex(
            {domain, FeatureKind::Std})];
        if (var_node == 0 || std_node == 0)
            continue;
        // Std must read from Var, not from the domain producer.
        const auto &preds = topology->graph.predecessors(std_node);
        ASSERT_EQ(preds.size(), 1u);
        EXPECT_EQ(preds[0], var_node);
        // And the reused Std cell is far cheaper than the Var cell.
        EXPECT_LT(topology->graph.node(std_node).costs.sensorEnergy,
                  topology->graph.node(var_node).costs.sensorEnergy);
    }
}

TEST_F(TopologyTest, EdgeBitsShrinkAlongDwtChain)
{
    if (topology->dwtNodes.size() < 2)
        GTEST_SKIP() << "needs at least two DWT levels";
    const size_t l1 = topology->dwtNodes[0];
    const size_t l2 = topology->dwtNodes[1];
    EXPECT_LT(topology->graph.edgeBits(l1, l2),
              topology->graph.edgeBits(DataflowGraph::sourceId, l1));
}

TEST_F(TopologyTest, FeatureOutputsAreSingleWords)
{
    for (size_t idx = 0; idx < featurePoolSize; ++idx) {
        const size_t node = topology->featureNodes[idx];
        if (node != 0) {
            EXPECT_EQ(topology->graph.node(node).outputBits,
                      featureValueBits);
        }
    }
}

TEST_F(TopologyTest, DescribeCellMentionsName)
{
    const std::string desc =
        describeCell(*topology, topology->fusionNode);
    EXPECT_NE(desc.find("Fusion"), std::string::npos);
}

} // namespace
