/**
 * @file
 * Tests for the paper's Section 5.7 extension points beyond
 * multi-classification: plugging in custom wireless transceiver
 * models and custom sensor-platform parameters, and the Argmax
 * component added for multi-class engines.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/partitioner.hh"
#include "core/evaluator.hh"
#include "hw/characterize.hh"
#include "sim/system_sim.hh"
#include "topology_fixtures.hh"

namespace
{

using namespace xpro;
using xpro::test::chainTopology;

TEST(CustomWirelessTest, UserDefinedTransceiverWorksEndToEnd)
{
    // A hypothetical BLE-class radio: much higher energy per bit at
    // a lower rate; the generator should lean toward the sensor.
    Transceiver ble;
    ble.name = "BLE-class (15/14 nJ/bit, 1 Mbps)";
    ble.txPerBit = Energy::nanos(15.0);
    ble.rxPerBit = Energy::nanos(14.0);
    ble.dataRateBps = 1.0e6;
    const WirelessLink ble_link(ble);

    const EngineTopology topo = chainTopology(100, 200, 50, 4096);
    const Placement ble_cut =
        XProGenerator(topo, ble_link).minimumEnergyPlacement();

    const WirelessLink cheap_link(
        transceiver(WirelessModel::Model3));
    const Placement cheap_cut =
        XProGenerator(topo, cheap_link).minimumEnergyPlacement();

    // The expensive radio keeps at least as many cells local.
    EXPECT_GE(ble_cut.sensorCellCount(),
              cheap_cut.sensorCellCount());

    // Full evaluation plumbing accepts the custom link.
    const SensorNode sensor;
    const Aggregator aggregator;
    const auto eval = evaluateEngineKind(
        EngineKind::CrossEnd, topo, ble_link, sensor, aggregator,
        WorkloadContext{4.0});
    EXPECT_GT(eval.sensorLifetime.hr(), 0.0);

    // And the event simulator agrees with the analytic energy.
    const SimResult sim =
        simulateEvent(topo, eval.placement, ble_link);
    EXPECT_NEAR(sim.sensorEnergy.total().nj(),
                eval.sensorEnergy.total().nj(), 1e-6);
}

TEST(CustomWirelessTest, SlowerRadioLengthensWirelessDelay)
{
    Transceiver slow;
    slow.name = "slow";
    slow.txPerBit = Energy::nanos(1.0);
    slow.rxPerBit = Energy::nanos(1.0);
    slow.dataRateBps = 250.0e3; // 250 kbps
    const WirelessLink slow_link(slow);
    const WirelessLink fast_link(
        transceiver(WirelessModel::Model2));

    const EngineTopology topo = chainTopology(10, 10, 10, 4096);
    const Placement agg = Placement::allInAggregator(topo);
    EXPECT_GT(eventDelay(topo, agg, slow_link).wireless,
              eventDelay(topo, agg, fast_link).wireless);
}

TEST(CustomPlatformTest, BiggerBatteryScalesLifetime)
{
    SensorNodeConfig small;
    small.battery = Battery(40.0, 3.7);
    SensorNodeConfig large;
    large.battery = Battery(400.0, 3.7);
    const SensorNode small_node(small);
    const SensorNode large_node(large);
    const Energy per_event = Energy::micros(4.0);
    const double ratio = large_node.lifetime(per_event, 4.0) /
                         small_node.lifetime(per_event, 4.0);
    EXPECT_NEAR(ratio, 10.0, 0.2);
}

TEST(CustomPlatformTest, SensingPowerSetsTheFloor)
{
    SensorNodeConfig hungry;
    hungry.sensingPower = Power::micros(50.0);
    const SensorNode hungry_node(hungry);
    const SensorNode default_node;
    EXPECT_LT(hungry_node.lifetime(Energy::micros(1.0), 4.0),
              default_node.lifetime(Energy::micros(1.0), 4.0));
}

TEST(ArgmaxComponentTest, WorkloadIsCompareOnly)
{
    const CellWorkload w = argmaxCellWorkload(4);
    EXPECT_EQ(w.count(AluOp::Cmp), 3u);
    EXPECT_EQ(w.count(AluOp::Mul), 0u);
    EXPECT_EQ(w.datapathOps(), 3u);
    EXPECT_THROW(argmaxCellWorkload(1), PanicError);
}

TEST(ArgmaxComponentTest, NameAndCharacterization)
{
    EXPECT_EQ(componentName(ComponentKind::Argmax), "Argmax");
    const auto c = characterizeComponent(
        ComponentKind::Argmax, Technology::get(ProcessNode::Tsmc90));
    // A tiny compare tree: far cheaper than any feature cell in
    // every mode (a 3-comparator cell is so small that even full
    // unrolling is harmless, so the optimal mode may be parallel).
    for (AluMode mode : allAluModes)
        EXPECT_LT(c.mode(mode).energy.pj(), 1000.0)
            << aluModeName(mode);
}

TEST(ModePolicyTest, ForcedPoliciesAreHonored)
{
    // Covered at engine scale by bench_ablation_design_rules; here
    // just check the enum round-trips through EngineConfig.
    EngineConfig config;
    EXPECT_EQ(config.modePolicy, ModePolicy::Optimal);
    EXPECT_TRUE(config.enableCellReuse);
    config.modePolicy = ModePolicy::ForceParallel;
    config.enableCellReuse = false;
    EXPECT_EQ(config.modePolicy, ModePolicy::ForceParallel);
    EXPECT_FALSE(config.enableCellReuse);
}

TEST(WaveletConfigTest, HaarCheapensTheDwtChain)
{
    // Build two equal topologies differing only in wavelet family;
    // every DWT cell must get cheaper with the 2-tap Haar filters.
    xpro::test::MiniTopology unused(64); // keep fixture header used
    (void)unused;

    const CellWorkload db4 = dwtLevelWorkload(128, 4);
    const CellWorkload haar = dwtLevelWorkload(128, 2);
    const Technology &tech = Technology::get(ProcessNode::Tsmc90);
    EXPECT_LT(bestCellCosts(haar, tech).energy.nj(),
              0.7 * bestCellCosts(db4, tech).energy.nj());
}

TEST(AggregatorIdleTest, IdlePowerShortensLifetime)
{
    const Aggregator sleepy(Battery::aggregatorBattery(),
                            Power::micros(5.0));
    const Aggregator awake(Battery::aggregatorBattery(),
                           Power::millis(50.0));
    const Energy per_event = Energy::micros(50.0);
    EXPECT_GT(sleepy.lifetime(per_event, 4.0),
              awake.lifetime(per_event, 4.0));
    EXPECT_DOUBLE_EQ(sleepy.idlePower().uw(), 5.0);
}

TEST(StreamContentionTest, OverlappingEventsShareTheRadio)
{
    // An engine whose event takes longer than the period: later
    // events must queue behind earlier radio transfers, so per-event
    // latency grows monotonically across the stream.
    const EngineTopology topo = chainTopology(10, 10, 10, 65536);
    const WirelessLink link(transceiver(WirelessModel::Model2));
    const Placement agg = Placement::allInAggregator(topo);
    // One raw transfer takes ~33 ms; feed events every 10 ms.
    const StreamResult stream =
        simulateStream(topo, agg, link, 100.0, 4);
    EXPECT_EQ(stream.events, 4u);
    EXPECT_GT(stream.deadlineMisses, 0u);
    EXPECT_GT(stream.worstLatency, stream.meanLatency);
}

} // namespace
