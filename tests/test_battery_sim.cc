/**
 * @file
 * Tests for the time-stepping battery discharge simulator and the
 * Chrome trace exporter.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "core/partitioner.hh"
#include "platform/battery_sim.hh"
#include "sim/trace_export.hh"
#include "topology_fixtures.hh"

namespace
{

using namespace xpro;
using xpro::test::chainTopology;

TEST(BatterySimTest, ConstantLoadMatchesClosedForm)
{
    const Battery battery = Battery::sensorNodeBattery();
    const BatterySimulator sim(battery, Time::seconds(10.0));
    const Power load = Power::micros(25.0);
    const Time closed_form = battery.lifetime(load);
    const Time simulated =
        sim.lifetime({{load, Time::hours(1.0)}});
    EXPECT_NEAR(simulated.hr() / closed_form.hr(), 1.0, 0.01);
}

TEST(BatterySimTest, FinishedProfileReportsRemainingEnergy)
{
    const Battery battery = Battery::sensorNodeBattery();
    const BatterySimulator sim(battery);
    const DischargeResult result = sim.run(
        {{Power::micros(20.0), Time::hours(24.0)}});
    EXPECT_FALSE(result.depleted);
    EXPECT_GT(result.remaining.j(), 0.0);
    EXPECT_GT(result.depthOfDischarge, 0.0);
    EXPECT_LT(result.depthOfDischarge, 0.01);
}

TEST(BatterySimTest, HeavyLoadDepletesMidProfile)
{
    const Battery battery(1.0, 3.7); // tiny 1 mAh cell
    const BatterySimulator sim(battery, Time::seconds(1.0));
    const DischargeResult result = sim.run(
        {{Power::millis(100.0), Time::hours(1.0)}});
    EXPECT_TRUE(result.depleted);
    EXPECT_GT(result.diedAt.sec(), 0.0);
    EXPECT_LT(result.diedAt.hr(), 1.0);
    EXPECT_DOUBLE_EQ(result.remaining.j(), 0.0);
}

TEST(BatterySimTest, DutyCycledProfileOutlivesContinuous)
{
    const Battery battery = Battery::sensorNodeBattery();
    const BatterySimulator sim(battery, Time::seconds(30.0));
    const Power active = Power::micros(100.0);
    const Power sleep = Power::micros(2.0);
    const Time continuous = sim.lifetime({{active, Time::hours(1.0)}});
    const Time duty_cycled = sim.lifetime({
        {active, Time::hours(1.0)},
        {sleep, Time::hours(3.0)},
    });
    EXPECT_GT(duty_cycled, continuous);
    // ~4x less average energy -> roughly 4x the life (modulo
    // rate derating, which favours the duty-cycled profile).
    EXPECT_GT(duty_cycled / continuous, 3.5);
}

TEST(BatterySimTest, ZeroLoadProfileIsFatal)
{
    const BatterySimulator sim(Battery::sensorNodeBattery());
    EXPECT_THROW(sim.lifetime({{Power(), Time::hours(1.0)}}),
                 FatalError);
}

TEST(BatterySimTest, InvalidInputsPanic)
{
    const BatterySimulator sim(Battery::sensorNodeBattery());
    EXPECT_THROW(sim.run({}), PanicError);
    EXPECT_THROW(sim.run({{Power::micros(1.0), Time()}}),
                 PanicError);
    EXPECT_THROW(BatterySimulator(Battery::sensorNodeBattery(),
                                  Time()),
                 PanicError);
}

// --- ChargeTracker (online controller's battery telemetry) -------

TEST(ChargeTrackerTest, MonotoneQueriesExtrapolateLastSpan)
{
    const Battery battery = Battery::sensorNodeBattery();
    ChargeTracker tracker(battery);
    EXPECT_DOUBLE_EQ(tracker.stateOfCharge(), 1.0);
    EXPECT_FALSE(tracker.depleted());

    tracker.drainTo(Time::hours(1.0), Energy::millis(10.0));
    const double after_first = tracker.stateOfCharge();
    EXPECT_LT(after_first, 1.0);
    EXPECT_GT(after_first, 0.0);

    // Queries between drains extrapolate the last span's mean power
    // and must never increase with time.
    double previous = after_first;
    for (double h = 1.0; h <= 3.0; h += 0.25) {
        const double soc = tracker.stateOfCharge(Time::hours(h));
        EXPECT_LE(soc, previous);
        previous = soc;
    }
    // now() stays at the last drain; extrapolation is side-effect
    // free.
    EXPECT_DOUBLE_EQ(tracker.now().hr(), 1.0);
    EXPECT_DOUBLE_EQ(tracker.stateOfCharge(), after_first);
}

TEST(ChargeTrackerTest, DepletesToExactlyZeroAndStaysThere)
{
    const Battery battery(1.0, 3.7); // tiny 1 mAh cell
    ChargeTracker tracker(battery);
    const Energy usable = battery.usableEnergy(Power());

    // Drain ~60% of the usable capacity, then overshoot it. Gentle
    // hour-long spans keep the rate derating negligible.
    tracker.drainTo(Time::hours(1.0), usable * 0.6);
    EXPECT_FALSE(tracker.depleted());
    EXPECT_GT(tracker.stateOfCharge(), 0.0);

    tracker.drainTo(Time::hours(2.0), usable * 0.8);
    EXPECT_TRUE(tracker.depleted());
    EXPECT_DOUBLE_EQ(tracker.stateOfCharge(), 0.0);
    EXPECT_DOUBLE_EQ(tracker.stateOfCharge(Time::hours(5.0)), 0.0);

    // Death is interpolated inside the last span, not snapped to
    // its boundary.
    const Time died = tracker.depletionTime();
    EXPECT_GT(died.hr(), 1.0);
    EXPECT_LT(died.hr(), 2.0);

    // Consumption is capped at the usable limit (rate-derated, so
    // at or below the nominal usable energy).
    EXPECT_LE(tracker.consumed().j(), usable.j());

    // Further drains on a dead battery are harmless no-ops.
    tracker.drainTo(Time::hours(3.0), Energy::millis(1.0));
    EXPECT_DOUBLE_EQ(tracker.stateOfCharge(), 0.0);
    EXPECT_DOUBLE_EQ(tracker.depletionTime().sec(), died.sec());
}

TEST(ChargeTrackerTest, ZeroEnergySpansAdvanceTimeOnly)
{
    ChargeTracker tracker(Battery::sensorNodeBattery());
    tracker.drainTo(Time::seconds(10.0), Energy::millis(1.0));
    const double soc = tracker.stateOfCharge();
    tracker.drainTo(Time::seconds(20.0), Energy());
    EXPECT_DOUBLE_EQ(tracker.stateOfCharge(), soc);
    // An idle span resets the extrapolation basis: future queries
    // no longer project the earlier load.
    EXPECT_DOUBLE_EQ(tracker.stateOfCharge(Time::seconds(100.0)),
                     soc);
}

TEST(ChargeTrackerTest, InvalidUsePanics)
{
    ChargeTracker tracker(Battery::sensorNodeBattery());
    tracker.drainTo(Time::seconds(10.0), Energy::millis(1.0));
    // Time must advance monotonically.
    EXPECT_THROW(tracker.drainTo(Time::seconds(5.0), Energy()),
                 PanicError);
    // A nonzero drain needs a nonzero span.
    EXPECT_THROW(tracker.drainTo(Time::seconds(10.0),
                                 Energy::millis(1.0)),
                 PanicError);
    // Queries cannot look into the past.
    EXPECT_THROW(tracker.stateOfCharge(Time::seconds(1.0)),
                 PanicError);
    // Depletion time is undefined while the battery lives.
    EXPECT_THROW(tracker.depletionTime(), FatalError);
}

TEST(TraceExportTest, ProducesValidLookingJson)
{
    const EngineTopology topo = chainTopology(100, 200, 50, 2048);
    const WirelessLink link(transceiver(WirelessModel::Model2));
    const Placement placement =
        Placement::fromMask(topo, {true, true, false, false});
    const SimResult sim = simulateEvent(topo, placement, link);

    std::ostringstream out;
    writeChromeTrace(sim, topo, placement, out);
    const std::string json = out.str();

    EXPECT_EQ(json.front(), '[');
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("wireless channel"), std::string::npos);
    EXPECT_NE(json.find("sensor node"), std::string::npos);
    // The chain's cells appear as duration events.
    EXPECT_NE(json.find("feature"), std::string::npos);
    EXPECT_NE(json.find("svm"), std::string::npos);
    // Balanced brackets at the ends.
    EXPECT_EQ(json.back(), '\n');
    EXPECT_EQ(json[json.size() - 2], ']');
}

TEST(TraceExportTest, RadioEventsMatchTransferCount)
{
    const EngineTopology topo = chainTopology(100, 200, 50, 2048);
    const WirelessLink link(transceiver(WirelessModel::Model2));
    const Placement placement =
        Placement::fromMask(topo, {true, true, false, false});
    const SimResult sim = simulateEvent(topo, placement, link);

    std::ostringstream out;
    writeChromeTrace(sim, topo, placement, out);
    const std::string json = out.str();
    size_t radio_events = 0;
    size_t pos = 0;
    while ((pos = json.find("\"tid\":1}", pos)) != std::string::npos) {
        ++radio_events;
        pos += 1;
    }
    EXPECT_EQ(radio_events, sim.transfers);
}

TEST(TraceExportTest, FileWriterRoundTrips)
{
    const EngineTopology topo = chainTopology(10, 10, 10, 256);
    const WirelessLink link(transceiver(WirelessModel::Model2));
    const Placement placement = Placement::allInSensor(topo);
    const SimResult sim = simulateEvent(topo, placement, link);
    const std::string path = "/tmp/xpro_trace_test.json";
    writeChromeTraceFile(sim, topo, placement, path);
    std::ifstream in(path);
    EXPECT_TRUE(in.good());
    std::remove(path.c_str());
    EXPECT_THROW(writeChromeTraceFile(sim, topo, placement,
                                      "/nonexistent-dir/t.json"),
                 FatalError);
}

} // namespace
