/**
 * @file
 * Equivalence and determinism tests for the fast ML path: batched
 * Gram computation vs. pairwise kernel evaluation, batch inference
 * vs. per-sample inference, and bit-for-bit reproducibility of
 * parallel ensemble training and cross-validation at any worker
 * count.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.hh"
#include "ml/crossval.hh"
#include "ml/kernel.hh"
#include "ml/random_subspace.hh"
#include "ml/svm.hh"

namespace
{

using namespace xpro;

/** Random dense matrix with reproducible entries. */
FlatMatrix
randomMatrix(Rng &rng, size_t rows, size_t cols)
{
    FlatMatrix out(rows, cols);
    for (size_t i = 0; i < rows; ++i) {
        double *row = out.rowData(i);
        for (size_t c = 0; c < cols; ++c)
            row[c] = rng.gaussian(0.0, 1.0);
    }
    return out;
}

/** Two-cluster labeled data over a wide feature pool. */
LabeledData
clusterData(Rng &rng, size_t n, size_t pool)
{
    LabeledData data;
    data.rows = FlatMatrix(0, pool);
    data.rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        const bool positive = i % 2 == 0;
        std::vector<double> row(pool);
        for (size_t c = 0; c < pool; ++c) {
            const double center =
                c % 3 == 0 ? (positive ? 0.8 : -0.8) : 0.0;
            row[c] = rng.gaussian(center, 0.6);
        }
        data.rows.push_back(row);
        data.labels.push_back(positive ? 1 : -1);
    }
    return data;
}

RandomSubspaceConfig
ensembleConfig(size_t workers)
{
    RandomSubspaceConfig config;
    config.subspaceDimension = 5;
    config.candidates = 24;
    config.keepFraction = 0.25;
    config.svm.kernel = {KernelKind::Rbf, 0.5};
    config.svm.c = 5.0;
    config.seed = 977;
    config.workers = workers;
    return config;
}

TEST(BatchKernelTest, GramMatchesPairwiseRbf)
{
    Rng rng(11);
    const FlatMatrix a = randomMatrix(rng, 17, 7);
    const FlatMatrix b = randomMatrix(rng, 9, 7);
    const Kernel kernel{KernelKind::Rbf, 0.37};

    const FlatMatrix gram = kernel.gram(a, b);
    ASSERT_EQ(gram.size(), a.size());
    ASSERT_EQ(gram.cols(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        for (size_t j = 0; j < b.size(); ++j) {
            EXPECT_NEAR(gram[i][j], kernel(a.row(i), b.row(j)), 1e-12)
                << "entry (" << i << ", " << j << ")";
        }
    }
}

TEST(BatchKernelTest, GramMatchesPairwiseLinear)
{
    Rng rng(12);
    const FlatMatrix a = randomMatrix(rng, 8, 5);
    const FlatMatrix b = randomMatrix(rng, 13, 5);
    const Kernel kernel{KernelKind::Linear, 0.0};

    const FlatMatrix gram = kernel.gram(a, b);
    for (size_t i = 0; i < a.size(); ++i)
        for (size_t j = 0; j < b.size(); ++j)
            EXPECT_NEAR(gram[i][j], kernel(a.row(i), b.row(j)), 1e-12);
}

TEST(BatchKernelTest, SymmetricGramMatchesRectangular)
{
    Rng rng(13);
    const FlatMatrix a = randomMatrix(rng, 21, 6);
    const Kernel kernel{KernelKind::Rbf, 0.8};

    const FlatMatrix full = kernel.gram(a, a);
    const FlatMatrix sym = kernel.gramSymmetric(a);
    ASSERT_EQ(sym.size(), a.size());
    ASSERT_EQ(sym.cols(), a.size());
    for (size_t i = 0; i < a.size(); ++i) {
        for (size_t j = 0; j < a.size(); ++j) {
            EXPECT_NEAR(sym[i][j], full[i][j], 1e-12);
            // Mirrored fill must be exactly symmetric, not just
            // numerically close.
            EXPECT_EQ(sym[i][j], sym[j][i]);
        }
    }
}

TEST(BatchInferenceTest, SvmDecisionBatchMatchesPerSample)
{
    Rng rng(21);
    const LabeledData train = clusterData(rng, 60, 6);
    SvmConfig config;
    config.kernel = {KernelKind::Rbf, 0.5};
    config.c = 5.0;
    const Svm model = Svm::train(train, config);

    const FlatMatrix probe = randomMatrix(rng, 40, 6);
    const std::vector<double> batch = model.decisionBatch(probe);
    const std::vector<int> votes = model.predictBatch(probe);
    ASSERT_EQ(batch.size(), probe.size());
    for (size_t i = 0; i < probe.size(); ++i) {
        // Bit-for-bit: batch and per-sample paths share the same
        // norm-expansion evaluation order.
        EXPECT_EQ(batch[i], model.decision(probe.row(i)));
        EXPECT_EQ(votes[i], model.predict(probe.row(i)));
    }
}

TEST(BatchInferenceTest, EnsemblePredictBatchMatchesPerSample)
{
    Rng rng(22);
    const LabeledData train = clusterData(rng, 64, 12);
    const RandomSubspace ensemble =
        RandomSubspace::train(train, ensembleConfig(1));

    const FlatMatrix probe = randomMatrix(rng, 30, 12);
    const std::vector<double> scores = ensemble.scoreBatch(probe);
    const std::vector<int> votes = ensemble.predictBatch(probe);
    for (size_t i = 0; i < probe.size(); ++i) {
        EXPECT_EQ(scores[i], ensemble.score(probe.row(i)));
        EXPECT_EQ(votes[i], ensemble.predict(probe.row(i)));
    }
}

/** Exact structural equality of two trained ensembles. */
void
expectIdenticalEnsembles(const RandomSubspace &a,
                         const RandomSubspace &b)
{
    ASSERT_EQ(a.bases().size(), b.bases().size());
    for (size_t m = 0; m < a.bases().size(); ++m) {
        const BaseClassifier &lhs = a.bases()[m];
        const BaseClassifier &rhs = b.bases()[m];
        EXPECT_EQ(lhs.featureIndices, rhs.featureIndices);
        EXPECT_EQ(lhs.validationAccuracy, rhs.validationAccuracy);
        EXPECT_EQ(lhs.model.supportVectors(),
                  rhs.model.supportVectors());
        EXPECT_EQ(lhs.model.weights(), rhs.model.weights());
        EXPECT_EQ(lhs.model.bias(), rhs.model.bias());
    }
    EXPECT_EQ(a.fusionWeights(), b.fusionWeights());
    EXPECT_EQ(a.fusionBias(), b.fusionBias());
}

TEST(ParallelTrainingTest, WorkerCountDoesNotChangeEnsemble)
{
    Rng rng(31);
    const LabeledData train = clusterData(rng, 72, 14);
    const RandomSubspace serial =
        RandomSubspace::train(train, ensembleConfig(1));
    for (size_t workers : {size_t{2}, size_t{8}}) {
        const RandomSubspace parallel =
            RandomSubspace::train(train, ensembleConfig(workers));
        expectIdenticalEnsembles(serial, parallel);
    }
}

TEST(ParallelTrainingTest, CrossValidationIdenticalAcrossWorkers)
{
    Rng data_rng(32);
    const LabeledData data = clusterData(data_rng, 60, 6);
    SvmConfig config;
    config.kernel = {KernelKind::Rbf, 0.5};
    config.c = 5.0;

    Rng serial_rng(7);
    const double serial =
        crossValidatedAccuracy(data, config, 5, serial_rng, 1);
    for (size_t workers : {size_t{2}, size_t{8}}) {
        Rng rng(7);
        const double parallel =
            crossValidatedAccuracy(data, config, 5, rng, workers);
        EXPECT_EQ(serial, parallel) << workers << " workers";
    }
}

TEST(ParallelTrainingTest, WorkersZeroMeansHardwareConcurrency)
{
    Rng rng(33);
    const LabeledData train = clusterData(rng, 48, 10);
    const RandomSubspace serial =
        RandomSubspace::train(train, ensembleConfig(1));
    const RandomSubspace automatic =
        RandomSubspace::train(train, ensembleConfig(0));
    expectIdenticalEnsembles(serial, automatic);
}

} // namespace
