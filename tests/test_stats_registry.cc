/**
 * @file
 * Tests for the fleet-wide stats registry (obs/): registration
 * semantics under concurrency, counter/gauge/histogram mechanics,
 * slab merge order-invariance, JSON/table export shape, and the
 * tentpole contract — the stable section of a population-fleet
 * snapshot is byte-identical at any shards x workers combination.
 * Runs under the `obs` label (TSan-checked by check_tsan_fleet.sh).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "fleet/fleet.hh"
#include "json_check.hh"
#include "obs/stats_export.hh"
#include "obs/stats_registry.hh"

namespace
{

using namespace xpro;

/** Unique-per-test stat names: the registry is a process singleton
 *  and registrations survive reset(), so each test namespaces its
 *  stats to stay independent of execution order. */
std::string
statName(const char *test, const char *stat)
{
    return std::string("test.") + test + "." + stat;
}

TEST(StatsRegistryTest, CompileModeIsReported)
{
    EXPECT_EQ(statsCompiledIn(), kStatsEnabled);
}

TEST(StatsRegistryTest, CounterAccumulatesAndSnapshots)
{
    if (!statsCompiledIn())
        GTEST_SKIP() << "stats compiled out";
    StatsRegistry &reg = StatsRegistry::instance();
    const std::string name = statName("counter", "hits");
    const StatId id = reg.registerCounter(name);
    ASSERT_TRUE(id.valid());
    reg.add(id);
    reg.add(id, 41);
    EXPECT_EQ(reg.snapshot().value(name), 42u);
    // Registration is idempotent: same name, same cell.
    EXPECT_EQ(reg.registerCounter(name).cell, id.cell);
}

TEST(StatsRegistryTest, GaugeKeepsTheHighWaterMark)
{
    if (!statsCompiledIn())
        GTEST_SKIP() << "stats compiled out";
    StatsRegistry &reg = StatsRegistry::instance();
    const std::string name = statName("gauge", "depth");
    const StatId id = reg.registerGauge(name);
    reg.gaugeMax(id, 7);
    reg.gaugeMax(id, 100);
    reg.gaugeMax(id, 12); // lower value must not regress the gauge
    EXPECT_EQ(reg.snapshot().value(name), 100u);
}

TEST(StatsRegistryTest, KindMismatchOnReRegistrationPanics)
{
    if (!statsCompiledIn())
        GTEST_SKIP() << "stats compiled out";
    StatsRegistry &reg = StatsRegistry::instance();
    const std::string name = statName("mismatch", "stat");
    reg.registerCounter(name);
    EXPECT_THROW(reg.registerGauge(name), PanicError);
    EXPECT_THROW(reg.registerCounter(name, StatScope::Diag),
                 PanicError);
}

TEST(StatsRegistryTest, InvalidIdUpdatesAreNoOps)
{
    StatsRegistry &reg = StatsRegistry::instance();
    const size_t before = reg.snapshot().size();
    reg.add(StatId{});
    reg.gaugeMax(StatId{}, 99);
    reg.observe(StatId{}, 5);
    StatsSlab slab;
    slab.add(StatId{});
    EXPECT_EQ(reg.snapshot().size(), before);
}

TEST(StatsRegistryTest, HistogramBucketBoundaries)
{
    // Bucket 0 holds value 0; bucket b >= 1 holds [2^(b-1), 2^b-1].
    EXPECT_EQ(StatsRegistry::bucketOf(0), 0u);
    EXPECT_EQ(StatsRegistry::bucketOf(1), 1u);
    EXPECT_EQ(StatsRegistry::bucketOf(2), 2u);
    EXPECT_EQ(StatsRegistry::bucketOf(3), 2u);
    EXPECT_EQ(StatsRegistry::bucketOf(4), 3u);
    EXPECT_EQ(StatsRegistry::bucketOf(7), 3u);
    EXPECT_EQ(StatsRegistry::bucketOf(8), 4u);
    EXPECT_EQ(StatsRegistry::bucketOf((1ull << 20) - 1), 20u);
    EXPECT_EQ(StatsRegistry::bucketOf(1ull << 20), 21u);
    EXPECT_EQ(StatsRegistry::bucketOf(UINT64_MAX), 64u);
    EXPECT_EQ(StatsRegistry::bucketLowerBound(0), 0u);
    EXPECT_EQ(StatsRegistry::bucketLowerBound(1), 1u);
    EXPECT_EQ(StatsRegistry::bucketLowerBound(4), 8u);
    EXPECT_EQ(StatsRegistry::bucketLowerBound(21), 1ull << 20);
}

TEST(StatsRegistryTest, HistogramObservationsLandInTheirBuckets)
{
    if (!statsCompiledIn())
        GTEST_SKIP() << "stats compiled out";
    StatsRegistry &reg = StatsRegistry::instance();
    const std::string name = statName("hist", "latency");
    const StatId id = reg.registerHistogram(name);
    for (uint64_t v : {0ull, 1ull, 3ull, 4ull, 4ull, 100ull})
        reg.observe(id, v);

    const StatsSnapshot snap = reg.snapshot();
    const SnapshotEntry *entry = snap.find(name);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->kind, StatKind::Histogram);
    EXPECT_EQ(entry->hist.count, 6u);
    EXPECT_EQ(entry->hist.sum, 112u);
    // Sparse buckets, ascending: 0 -> 1, [1,1] -> 1, [2,3] -> 1,
    // [4,7] -> 2, [64,127] -> 1.
    const std::vector<std::pair<uint64_t, uint64_t>> expected = {
        {0, 1}, {1, 1}, {2, 1}, {4, 2}, {64, 1}};
    EXPECT_EQ(entry->hist.buckets, expected);
}

TEST(StatsRegistryTest, ConcurrentSameNameRegistrationAgrees)
{
    if (!statsCompiledIn())
        GTEST_SKIP() << "stats compiled out";
    StatsRegistry &reg = StatsRegistry::instance();
    const std::string name = statName("race", "counter");
    constexpr size_t kThreads = 8;
    constexpr uint64_t kAddsPerThread = 1000;
    std::vector<uint32_t> cells(kThreads, UINT32_MAX);
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            const StatId id = reg.registerCounter(name);
            cells[t] = id.cell;
            for (uint64_t i = 0; i < kAddsPerThread; ++i)
                reg.add(id);
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    // Every thread resolved the same cell, and no increment was
    // lost.
    for (size_t t = 1; t < kThreads; ++t)
        EXPECT_EQ(cells[t], cells[0]);
    EXPECT_EQ(reg.snapshot().value(name), kThreads * kAddsPerThread);
}

TEST(StatsRegistryTest, SlabAbsorbIsOrderInvariant)
{
    if (!statsCompiledIn())
        GTEST_SKIP() << "stats compiled out";
    StatsRegistry &reg = StatsRegistry::instance();
    const StatId counter =
        reg.registerCounter(statName("slab", "count"));
    const StatId gauge = reg.registerGauge(statName("slab", "peak"));
    const StatId hist =
        reg.registerHistogram(statName("slab", "sizes"));

    const auto fill = [&](StatsSlab &slab, uint64_t adds,
                          uint64_t peak, uint64_t sample) {
        for (uint64_t i = 0; i < adds; ++i)
            slab.add(counter);
        slab.gaugeMax(gauge, peak);
        slab.observe(hist, sample);
    };
    const auto runOrder = [&](bool reversed) {
        reg.reset();
        StatsSlab a, b, c;
        fill(a, 3, 10, 1);
        fill(b, 5, 99, 4);
        fill(c, 7, 50, 4);
        StatsSlab *slabs[] = {&a, &b, &c};
        if (reversed)
            std::swap(slabs[0], slabs[2]);
        for (StatsSlab *slab : slabs)
            reg.absorb(*slab);
        return statsJson(reg.snapshot());
    };
    const std::string forward = runOrder(false);
    EXPECT_EQ(forward, runOrder(true));

    // Absorb zeroes the slab: a second absorb adds nothing, and the
    // merged totals are the slab sums / maxes.
    reg.reset();
    StatsSlab slab;
    fill(slab, 4, 33, 2);
    reg.absorb(slab);
    reg.absorb(slab);
    const StatsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.value(statName("slab", "count")), 4u);
    EXPECT_EQ(snap.value(statName("slab", "peak")), 33u);
    const SnapshotEntry *sizes = snap.find(statName("slab", "sizes"));
    ASSERT_NE(sizes, nullptr);
    EXPECT_EQ(sizes->hist.count, 1u);
}

TEST(StatsRegistryTest, JsonExportIsStrictJsonWithBothSections)
{
    StatsRegistry &reg = StatsRegistry::instance();
    if (statsCompiledIn()) {
        reg.add(reg.registerCounter(statName("json", "stable")), 2);
        reg.add(reg.registerCounter(statName("json", "diag"),
                                    StatScope::Diag),
                3);
        reg.observe(reg.registerHistogram(statName("json", "hist")),
                    9);
    }
    const StatsSnapshot snap = reg.snapshot();
    const std::string json = statsJson(snap);
    std::string error;
    EXPECT_TRUE(test::jsonValid(json, &error)) << error;
    EXPECT_NE(json.find("\"stable\""), std::string::npos);
    EXPECT_NE(json.find("\"diag\""), std::string::npos);
    EXPECT_TRUE(test::jsonValid(statsStableJson(snap), &error))
        << error;

    std::ostringstream table;
    writeStatsTable(snap, table);
    if (statsCompiledIn()) {
        EXPECT_NE(table.str().find(statName("json", "stable")),
                  std::string::npos);
        EXPECT_NE(table.str().find(statName("json", "hist")),
                  std::string::npos);
    }
}

TEST(StatsRegistryTest, CompiledOutRegistryStaysEmpty)
{
    if (statsCompiledIn())
        GTEST_SKIP() << "stats compiled in";
    StatsRegistry &reg = StatsRegistry::instance();
    const StatId id = reg.registerCounter("test.off.counter");
    EXPECT_FALSE(id.valid());
    reg.add(id, 5);
    EXPECT_EQ(reg.snapshot().size(), 0u);
}

// ---------------------------------------------------------------
// The tentpole contract: population-fleet stable stats are a pure
// function of the workload — byte-identical snapshots at any
// shards x workers combination, matching the FleetReport totals.
// ---------------------------------------------------------------

TEST(StatsDeterminismTest, PopulationStableSnapshotIsShardInvariant)
{
    if (!statsCompiledIn())
        GTEST_SKIP() << "stats compiled out";
    StatsRegistry &reg = StatsRegistry::instance();

    const auto runAt = [&](size_t shards, size_t workers) {
        reg.reset();
        PopulationFleetConfig config;
        config.nodes = 4096;
        config.shards = shards;
        config.workers = workers;
        config.eventsPerNode = 2;
        const PopulationFleetResult result =
            runPopulationFleet(config);
        const StatsSnapshot snap = reg.snapshot();
        // Cross-check against the independently accumulated report.
        EXPECT_EQ(snap.value("population.completed"),
                  result.report.totalEvents);
        EXPECT_EQ(snap.value("population.local_fallbacks"),
                  result.report.tiers.localFallbacks);
        EXPECT_EQ(snap.value("population.cloud_throttled"),
                  result.report.tiers.cloudThrottled);
        const SnapshotEntry *latency =
            snap.find("population.latency_us");
        EXPECT_NE(latency, nullptr);
        return statsStableJson(snap);
    };

    const std::string reference = runAt(1, 1);
    ASSERT_FALSE(reference.empty());
    std::string error;
    ASSERT_TRUE(test::jsonValid(reference, &error)) << error;
    for (size_t shards : {4, 16}) {
        for (size_t workers : {1, 2, 4}) {
            EXPECT_EQ(runAt(shards, workers), reference)
                << "shards=" << shards << " workers=" << workers;
        }
    }
    reg.reset();
}

TEST(StatsDeterminismTest, CollectStatsOffLeavesPopulationStatsZero)
{
    if (!statsCompiledIn())
        GTEST_SKIP() << "stats compiled out";
    StatsRegistry &reg = StatsRegistry::instance();
    reg.reset();
    PopulationFleetConfig config;
    config.nodes = 1024;
    config.collectStats = false;
    runPopulationFleet(config);
    // The in-binary baseline knob really suppresses collection.
    EXPECT_EQ(reg.snapshot().value("population.completed"), 0u);
    reg.reset();
}

} // namespace
