# Empty dependencies file for test_random_subspace.
# This may be replaced when dependencies are built.
