file(REMOVE_RECURSE
  "CMakeFiles/test_random_subspace.dir/test_random_subspace.cc.o"
  "CMakeFiles/test_random_subspace.dir/test_random_subspace.cc.o.d"
  "test_random_subspace"
  "test_random_subspace.pdb"
  "test_random_subspace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_subspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
