file(REMOVE_RECURSE
  "CMakeFiles/test_lossy_link.dir/test_lossy_link.cc.o"
  "CMakeFiles/test_lossy_link.dir/test_lossy_link.cc.o.d"
  "test_lossy_link"
  "test_lossy_link.pdb"
  "test_lossy_link[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lossy_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
