# Empty compiler generated dependencies file for test_lossy_link.
# This may be replaced when dependencies are built.
