file(REMOVE_RECURSE
  "CMakeFiles/test_battery_sim.dir/test_battery_sim.cc.o"
  "CMakeFiles/test_battery_sim.dir/test_battery_sim.cc.o.d"
  "test_battery_sim"
  "test_battery_sim.pdb"
  "test_battery_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_battery_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
