# Empty dependencies file for test_battery_sim.
# This may be replaced when dependencies are built.
