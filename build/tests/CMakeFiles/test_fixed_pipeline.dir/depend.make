# Empty dependencies file for test_fixed_pipeline.
# This may be replaced when dependencies are built.
