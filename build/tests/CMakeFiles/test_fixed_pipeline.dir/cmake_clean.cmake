file(REMOVE_RECURSE
  "CMakeFiles/test_fixed_pipeline.dir/test_fixed_pipeline.cc.o"
  "CMakeFiles/test_fixed_pipeline.dir/test_fixed_pipeline.cc.o.d"
  "test_fixed_pipeline"
  "test_fixed_pipeline.pdb"
  "test_fixed_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fixed_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
