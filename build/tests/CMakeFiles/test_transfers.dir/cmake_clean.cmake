file(REMOVE_RECURSE
  "CMakeFiles/test_transfers.dir/test_transfers.cc.o"
  "CMakeFiles/test_transfers.dir/test_transfers.cc.o.d"
  "test_transfers"
  "test_transfers.pdb"
  "test_transfers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transfers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
