# Empty dependencies file for test_feature_pool.
# This may be replaced when dependencies are built.
