file(REMOVE_RECURSE
  "CMakeFiles/test_feature_pool.dir/test_feature_pool.cc.o"
  "CMakeFiles/test_feature_pool.dir/test_feature_pool.cc.o.d"
  "test_feature_pool"
  "test_feature_pool.pdb"
  "test_feature_pool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_feature_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
