# Empty compiler generated dependencies file for test_cell_sim.
# This may be replaced when dependencies are built.
