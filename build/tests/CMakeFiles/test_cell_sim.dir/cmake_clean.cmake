file(REMOVE_RECURSE
  "CMakeFiles/test_cell_sim.dir/test_cell_sim.cc.o"
  "CMakeFiles/test_cell_sim.dir/test_cell_sim.cc.o.d"
  "test_cell_sim"
  "test_cell_sim.pdb"
  "test_cell_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cell_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
