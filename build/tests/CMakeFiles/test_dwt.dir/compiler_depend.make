# Empty compiler generated dependencies file for test_dwt.
# This may be replaced when dependencies are built.
