file(REMOVE_RECURSE
  "CMakeFiles/test_dwt.dir/test_dwt.cc.o"
  "CMakeFiles/test_dwt.dir/test_dwt.cc.o.d"
  "test_dwt"
  "test_dwt.pdb"
  "test_dwt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dwt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
