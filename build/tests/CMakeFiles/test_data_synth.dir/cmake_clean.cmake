file(REMOVE_RECURSE
  "CMakeFiles/test_data_synth.dir/test_data_synth.cc.o"
  "CMakeFiles/test_data_synth.dir/test_data_synth.cc.o.d"
  "test_data_synth"
  "test_data_synth.pdb"
  "test_data_synth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
