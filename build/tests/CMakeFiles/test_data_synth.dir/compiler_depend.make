# Empty compiler generated dependencies file for test_data_synth.
# This may be replaced when dependencies are built.
