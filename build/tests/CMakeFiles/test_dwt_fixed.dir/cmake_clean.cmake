file(REMOVE_RECURSE
  "CMakeFiles/test_dwt_fixed.dir/test_dwt_fixed.cc.o"
  "CMakeFiles/test_dwt_fixed.dir/test_dwt_fixed.cc.o.d"
  "test_dwt_fixed"
  "test_dwt_fixed.pdb"
  "test_dwt_fixed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dwt_fixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
