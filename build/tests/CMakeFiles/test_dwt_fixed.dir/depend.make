# Empty dependencies file for test_dwt_fixed.
# This may be replaced when dependencies are built.
