file(REMOVE_RECURSE
  "CMakeFiles/test_features_fixed.dir/test_features_fixed.cc.o"
  "CMakeFiles/test_features_fixed.dir/test_features_fixed.cc.o.d"
  "test_features_fixed"
  "test_features_fixed.pdb"
  "test_features_fixed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_features_fixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
