# Empty compiler generated dependencies file for test_features_fixed.
# This may be replaced when dependencies are built.
