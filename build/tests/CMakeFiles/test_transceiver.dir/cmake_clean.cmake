file(REMOVE_RECURSE
  "CMakeFiles/test_transceiver.dir/test_transceiver.cc.o"
  "CMakeFiles/test_transceiver.dir/test_transceiver.cc.o.d"
  "test_transceiver"
  "test_transceiver.pdb"
  "test_transceiver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transceiver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
