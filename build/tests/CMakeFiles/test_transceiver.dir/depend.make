# Empty dependencies file for test_transceiver.
# This may be replaced when dependencies are built.
