file(REMOVE_RECURSE
  "CMakeFiles/test_delay_model.dir/test_delay_model.cc.o"
  "CMakeFiles/test_delay_model.dir/test_delay_model.cc.o.d"
  "test_delay_model"
  "test_delay_model.pdb"
  "test_delay_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delay_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
