# Empty compiler generated dependencies file for test_delay_model.
# This may be replaced when dependencies are built.
