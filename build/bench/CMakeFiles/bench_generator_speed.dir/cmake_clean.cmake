file(REMOVE_RECURSE
  "CMakeFiles/bench_generator_speed.dir/bench_generator_speed.cpp.o"
  "CMakeFiles/bench_generator_speed.dir/bench_generator_speed.cpp.o.d"
  "bench_generator_speed"
  "bench_generator_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_generator_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
