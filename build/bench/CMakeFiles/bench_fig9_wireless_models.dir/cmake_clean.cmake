file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_wireless_models.dir/bench_fig9_wireless_models.cpp.o"
  "CMakeFiles/bench_fig9_wireless_models.dir/bench_fig9_wireless_models.cpp.o.d"
  "bench_fig9_wireless_models"
  "bench_fig9_wireless_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_wireless_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
