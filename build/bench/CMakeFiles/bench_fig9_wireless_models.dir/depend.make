# Empty dependencies file for bench_fig9_wireless_models.
# This may be replaced when dependencies are built.
