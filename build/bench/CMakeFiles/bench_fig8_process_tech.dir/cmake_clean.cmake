file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_process_tech.dir/bench_fig8_process_tech.cpp.o"
  "CMakeFiles/bench_fig8_process_tech.dir/bench_fig8_process_tech.cpp.o.d"
  "bench_fig8_process_tech"
  "bench_fig8_process_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_process_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
