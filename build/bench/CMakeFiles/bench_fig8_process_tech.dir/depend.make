# Empty dependencies file for bench_fig8_process_tech.
# This may be replaced when dependencies are built.
