# Empty dependencies file for bench_fig4_alu_modes.
# This may be replaced when dependencies are built.
