file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_cuts.dir/bench_fig12_cuts.cpp.o"
  "CMakeFiles/bench_fig12_cuts.dir/bench_fig12_cuts.cpp.o.d"
  "bench_fig12_cuts"
  "bench_fig12_cuts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_cuts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
