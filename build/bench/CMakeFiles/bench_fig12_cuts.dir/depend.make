# Empty dependencies file for bench_fig12_cuts.
# This may be replaced when dependencies are built.
