file(REMOVE_RECURSE
  "CMakeFiles/export_figure_data.dir/export_figure_data.cpp.o"
  "CMakeFiles/export_figure_data.dir/export_figure_data.cpp.o.d"
  "export_figure_data"
  "export_figure_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_figure_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
