# Empty dependencies file for export_figure_data.
# This may be replaced when dependencies are built.
