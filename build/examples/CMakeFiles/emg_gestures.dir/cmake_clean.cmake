file(REMOVE_RECURSE
  "CMakeFiles/emg_gestures.dir/emg_gestures.cpp.o"
  "CMakeFiles/emg_gestures.dir/emg_gestures.cpp.o.d"
  "emg_gestures"
  "emg_gestures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emg_gestures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
