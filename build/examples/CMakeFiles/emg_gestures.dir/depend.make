# Empty dependencies file for emg_gestures.
# This may be replaced when dependencies are built.
