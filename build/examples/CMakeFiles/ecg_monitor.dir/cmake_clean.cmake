file(REMOVE_RECURSE
  "CMakeFiles/ecg_monitor.dir/ecg_monitor.cpp.o"
  "CMakeFiles/ecg_monitor.dir/ecg_monitor.cpp.o.d"
  "ecg_monitor"
  "ecg_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecg_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
