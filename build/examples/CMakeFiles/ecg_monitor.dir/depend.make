# Empty dependencies file for ecg_monitor.
# This may be replaced when dependencies are built.
