file(REMOVE_RECURSE
  "libxpro_common.a"
)
