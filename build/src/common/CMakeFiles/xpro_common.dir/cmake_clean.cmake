file(REMOVE_RECURSE
  "CMakeFiles/xpro_common.dir/fixed_point.cc.o"
  "CMakeFiles/xpro_common.dir/fixed_point.cc.o.d"
  "CMakeFiles/xpro_common.dir/logging.cc.o"
  "CMakeFiles/xpro_common.dir/logging.cc.o.d"
  "CMakeFiles/xpro_common.dir/matrix.cc.o"
  "CMakeFiles/xpro_common.dir/matrix.cc.o.d"
  "CMakeFiles/xpro_common.dir/random.cc.o"
  "CMakeFiles/xpro_common.dir/random.cc.o.d"
  "CMakeFiles/xpro_common.dir/stats.cc.o"
  "CMakeFiles/xpro_common.dir/stats.cc.o.d"
  "libxpro_common.a"
  "libxpro_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpro_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
