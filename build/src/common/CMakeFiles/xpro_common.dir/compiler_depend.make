# Empty compiler generated dependencies file for xpro_common.
# This may be replaced when dependencies are built.
