file(REMOVE_RECURSE
  "CMakeFiles/xpro_data.dir/biosignal.cc.o"
  "CMakeFiles/xpro_data.dir/biosignal.cc.o.d"
  "CMakeFiles/xpro_data.dir/ecg_synth.cc.o"
  "CMakeFiles/xpro_data.dir/ecg_synth.cc.o.d"
  "CMakeFiles/xpro_data.dir/eeg_synth.cc.o"
  "CMakeFiles/xpro_data.dir/eeg_synth.cc.o.d"
  "CMakeFiles/xpro_data.dir/emg_synth.cc.o"
  "CMakeFiles/xpro_data.dir/emg_synth.cc.o.d"
  "CMakeFiles/xpro_data.dir/gestures.cc.o"
  "CMakeFiles/xpro_data.dir/gestures.cc.o.d"
  "CMakeFiles/xpro_data.dir/testcases.cc.o"
  "CMakeFiles/xpro_data.dir/testcases.cc.o.d"
  "libxpro_data.a"
  "libxpro_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpro_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
