
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/biosignal.cc" "src/data/CMakeFiles/xpro_data.dir/biosignal.cc.o" "gcc" "src/data/CMakeFiles/xpro_data.dir/biosignal.cc.o.d"
  "/root/repo/src/data/ecg_synth.cc" "src/data/CMakeFiles/xpro_data.dir/ecg_synth.cc.o" "gcc" "src/data/CMakeFiles/xpro_data.dir/ecg_synth.cc.o.d"
  "/root/repo/src/data/eeg_synth.cc" "src/data/CMakeFiles/xpro_data.dir/eeg_synth.cc.o" "gcc" "src/data/CMakeFiles/xpro_data.dir/eeg_synth.cc.o.d"
  "/root/repo/src/data/emg_synth.cc" "src/data/CMakeFiles/xpro_data.dir/emg_synth.cc.o" "gcc" "src/data/CMakeFiles/xpro_data.dir/emg_synth.cc.o.d"
  "/root/repo/src/data/gestures.cc" "src/data/CMakeFiles/xpro_data.dir/gestures.cc.o" "gcc" "src/data/CMakeFiles/xpro_data.dir/gestures.cc.o.d"
  "/root/repo/src/data/testcases.cc" "src/data/CMakeFiles/xpro_data.dir/testcases.cc.o" "gcc" "src/data/CMakeFiles/xpro_data.dir/testcases.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xpro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
