file(REMOVE_RECURSE
  "libxpro_data.a"
)
