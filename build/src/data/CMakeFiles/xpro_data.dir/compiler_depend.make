# Empty compiler generated dependencies file for xpro_data.
# This may be replaced when dependencies are built.
