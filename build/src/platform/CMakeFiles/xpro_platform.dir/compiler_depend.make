# Empty compiler generated dependencies file for xpro_platform.
# This may be replaced when dependencies are built.
