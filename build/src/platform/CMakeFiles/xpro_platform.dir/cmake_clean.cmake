file(REMOVE_RECURSE
  "CMakeFiles/xpro_platform.dir/aggregator.cc.o"
  "CMakeFiles/xpro_platform.dir/aggregator.cc.o.d"
  "CMakeFiles/xpro_platform.dir/battery.cc.o"
  "CMakeFiles/xpro_platform.dir/battery.cc.o.d"
  "CMakeFiles/xpro_platform.dir/battery_sim.cc.o"
  "CMakeFiles/xpro_platform.dir/battery_sim.cc.o.d"
  "CMakeFiles/xpro_platform.dir/sensor_node.cc.o"
  "CMakeFiles/xpro_platform.dir/sensor_node.cc.o.d"
  "libxpro_platform.a"
  "libxpro_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpro_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
