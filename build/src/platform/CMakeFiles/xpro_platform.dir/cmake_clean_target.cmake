file(REMOVE_RECURSE
  "libxpro_platform.a"
)
