file(REMOVE_RECURSE
  "libxpro_core.a"
)
