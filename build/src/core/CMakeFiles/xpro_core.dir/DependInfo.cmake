
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/delay_model.cc" "src/core/CMakeFiles/xpro_core.dir/delay_model.cc.o" "gcc" "src/core/CMakeFiles/xpro_core.dir/delay_model.cc.o.d"
  "/root/repo/src/core/energy_model.cc" "src/core/CMakeFiles/xpro_core.dir/energy_model.cc.o" "gcc" "src/core/CMakeFiles/xpro_core.dir/energy_model.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/xpro_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/xpro_core.dir/engine.cc.o.d"
  "/root/repo/src/core/evaluator.cc" "src/core/CMakeFiles/xpro_core.dir/evaluator.cc.o" "gcc" "src/core/CMakeFiles/xpro_core.dir/evaluator.cc.o.d"
  "/root/repo/src/core/fixed_pipeline.cc" "src/core/CMakeFiles/xpro_core.dir/fixed_pipeline.cc.o" "gcc" "src/core/CMakeFiles/xpro_core.dir/fixed_pipeline.cc.o.d"
  "/root/repo/src/core/multiclass_topology.cc" "src/core/CMakeFiles/xpro_core.dir/multiclass_topology.cc.o" "gcc" "src/core/CMakeFiles/xpro_core.dir/multiclass_topology.cc.o.d"
  "/root/repo/src/core/partitioner.cc" "src/core/CMakeFiles/xpro_core.dir/partitioner.cc.o" "gcc" "src/core/CMakeFiles/xpro_core.dir/partitioner.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/xpro_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/xpro_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/placement.cc" "src/core/CMakeFiles/xpro_core.dir/placement.cc.o" "gcc" "src/core/CMakeFiles/xpro_core.dir/placement.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/xpro_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/xpro_core.dir/report.cc.o.d"
  "/root/repo/src/core/topology.cc" "src/core/CMakeFiles/xpro_core.dir/topology.cc.o" "gcc" "src/core/CMakeFiles/xpro_core.dir/topology.cc.o.d"
  "/root/repo/src/core/transfers.cc" "src/core/CMakeFiles/xpro_core.dir/transfers.cc.o" "gcc" "src/core/CMakeFiles/xpro_core.dir/transfers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xpro_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/xpro_data.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/xpro_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/xpro_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/xpro_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/xpro_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/xpro_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/wireless/CMakeFiles/xpro_wireless.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
