# Empty compiler generated dependencies file for xpro_core.
# This may be replaced when dependencies are built.
