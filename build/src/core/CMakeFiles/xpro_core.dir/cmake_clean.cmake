file(REMOVE_RECURSE
  "CMakeFiles/xpro_core.dir/delay_model.cc.o"
  "CMakeFiles/xpro_core.dir/delay_model.cc.o.d"
  "CMakeFiles/xpro_core.dir/energy_model.cc.o"
  "CMakeFiles/xpro_core.dir/energy_model.cc.o.d"
  "CMakeFiles/xpro_core.dir/engine.cc.o"
  "CMakeFiles/xpro_core.dir/engine.cc.o.d"
  "CMakeFiles/xpro_core.dir/evaluator.cc.o"
  "CMakeFiles/xpro_core.dir/evaluator.cc.o.d"
  "CMakeFiles/xpro_core.dir/fixed_pipeline.cc.o"
  "CMakeFiles/xpro_core.dir/fixed_pipeline.cc.o.d"
  "CMakeFiles/xpro_core.dir/multiclass_topology.cc.o"
  "CMakeFiles/xpro_core.dir/multiclass_topology.cc.o.d"
  "CMakeFiles/xpro_core.dir/partitioner.cc.o"
  "CMakeFiles/xpro_core.dir/partitioner.cc.o.d"
  "CMakeFiles/xpro_core.dir/pipeline.cc.o"
  "CMakeFiles/xpro_core.dir/pipeline.cc.o.d"
  "CMakeFiles/xpro_core.dir/placement.cc.o"
  "CMakeFiles/xpro_core.dir/placement.cc.o.d"
  "CMakeFiles/xpro_core.dir/report.cc.o"
  "CMakeFiles/xpro_core.dir/report.cc.o.d"
  "CMakeFiles/xpro_core.dir/topology.cc.o"
  "CMakeFiles/xpro_core.dir/topology.cc.o.d"
  "CMakeFiles/xpro_core.dir/transfers.cc.o"
  "CMakeFiles/xpro_core.dir/transfers.cc.o.d"
  "libxpro_core.a"
  "libxpro_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpro_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
