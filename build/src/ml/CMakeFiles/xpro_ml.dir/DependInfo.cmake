
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/crossval.cc" "src/ml/CMakeFiles/xpro_ml.dir/crossval.cc.o" "gcc" "src/ml/CMakeFiles/xpro_ml.dir/crossval.cc.o.d"
  "/root/repo/src/ml/kernel.cc" "src/ml/CMakeFiles/xpro_ml.dir/kernel.cc.o" "gcc" "src/ml/CMakeFiles/xpro_ml.dir/kernel.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/xpro_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/xpro_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/multiclass.cc" "src/ml/CMakeFiles/xpro_ml.dir/multiclass.cc.o" "gcc" "src/ml/CMakeFiles/xpro_ml.dir/multiclass.cc.o.d"
  "/root/repo/src/ml/random_subspace.cc" "src/ml/CMakeFiles/xpro_ml.dir/random_subspace.cc.o" "gcc" "src/ml/CMakeFiles/xpro_ml.dir/random_subspace.cc.o.d"
  "/root/repo/src/ml/svm.cc" "src/ml/CMakeFiles/xpro_ml.dir/svm.cc.o" "gcc" "src/ml/CMakeFiles/xpro_ml.dir/svm.cc.o.d"
  "/root/repo/src/ml/svm_fixed.cc" "src/ml/CMakeFiles/xpro_ml.dir/svm_fixed.cc.o" "gcc" "src/ml/CMakeFiles/xpro_ml.dir/svm_fixed.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xpro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
