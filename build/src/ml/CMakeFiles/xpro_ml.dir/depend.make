# Empty dependencies file for xpro_ml.
# This may be replaced when dependencies are built.
