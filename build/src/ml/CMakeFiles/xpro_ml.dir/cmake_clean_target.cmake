file(REMOVE_RECURSE
  "libxpro_ml.a"
)
