file(REMOVE_RECURSE
  "CMakeFiles/xpro_ml.dir/crossval.cc.o"
  "CMakeFiles/xpro_ml.dir/crossval.cc.o.d"
  "CMakeFiles/xpro_ml.dir/kernel.cc.o"
  "CMakeFiles/xpro_ml.dir/kernel.cc.o.d"
  "CMakeFiles/xpro_ml.dir/metrics.cc.o"
  "CMakeFiles/xpro_ml.dir/metrics.cc.o.d"
  "CMakeFiles/xpro_ml.dir/multiclass.cc.o"
  "CMakeFiles/xpro_ml.dir/multiclass.cc.o.d"
  "CMakeFiles/xpro_ml.dir/random_subspace.cc.o"
  "CMakeFiles/xpro_ml.dir/random_subspace.cc.o.d"
  "CMakeFiles/xpro_ml.dir/svm.cc.o"
  "CMakeFiles/xpro_ml.dir/svm.cc.o.d"
  "CMakeFiles/xpro_ml.dir/svm_fixed.cc.o"
  "CMakeFiles/xpro_ml.dir/svm_fixed.cc.o.d"
  "libxpro_ml.a"
  "libxpro_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpro_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
