file(REMOVE_RECURSE
  "CMakeFiles/xpro_dsp.dir/dwt.cc.o"
  "CMakeFiles/xpro_dsp.dir/dwt.cc.o.d"
  "CMakeFiles/xpro_dsp.dir/dwt_fixed.cc.o"
  "CMakeFiles/xpro_dsp.dir/dwt_fixed.cc.o.d"
  "CMakeFiles/xpro_dsp.dir/feature_pool.cc.o"
  "CMakeFiles/xpro_dsp.dir/feature_pool.cc.o.d"
  "CMakeFiles/xpro_dsp.dir/features.cc.o"
  "CMakeFiles/xpro_dsp.dir/features.cc.o.d"
  "CMakeFiles/xpro_dsp.dir/features_fixed.cc.o"
  "CMakeFiles/xpro_dsp.dir/features_fixed.cc.o.d"
  "CMakeFiles/xpro_dsp.dir/segment.cc.o"
  "CMakeFiles/xpro_dsp.dir/segment.cc.o.d"
  "libxpro_dsp.a"
  "libxpro_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpro_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
