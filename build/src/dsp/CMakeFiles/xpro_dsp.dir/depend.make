# Empty dependencies file for xpro_dsp.
# This may be replaced when dependencies are built.
