
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/dwt.cc" "src/dsp/CMakeFiles/xpro_dsp.dir/dwt.cc.o" "gcc" "src/dsp/CMakeFiles/xpro_dsp.dir/dwt.cc.o.d"
  "/root/repo/src/dsp/dwt_fixed.cc" "src/dsp/CMakeFiles/xpro_dsp.dir/dwt_fixed.cc.o" "gcc" "src/dsp/CMakeFiles/xpro_dsp.dir/dwt_fixed.cc.o.d"
  "/root/repo/src/dsp/feature_pool.cc" "src/dsp/CMakeFiles/xpro_dsp.dir/feature_pool.cc.o" "gcc" "src/dsp/CMakeFiles/xpro_dsp.dir/feature_pool.cc.o.d"
  "/root/repo/src/dsp/features.cc" "src/dsp/CMakeFiles/xpro_dsp.dir/features.cc.o" "gcc" "src/dsp/CMakeFiles/xpro_dsp.dir/features.cc.o.d"
  "/root/repo/src/dsp/features_fixed.cc" "src/dsp/CMakeFiles/xpro_dsp.dir/features_fixed.cc.o" "gcc" "src/dsp/CMakeFiles/xpro_dsp.dir/features_fixed.cc.o.d"
  "/root/repo/src/dsp/segment.cc" "src/dsp/CMakeFiles/xpro_dsp.dir/segment.cc.o" "gcc" "src/dsp/CMakeFiles/xpro_dsp.dir/segment.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xpro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
