file(REMOVE_RECURSE
  "libxpro_dsp.a"
)
