# Empty compiler generated dependencies file for xpro_graph.
# This may be replaced when dependencies are built.
