file(REMOVE_RECURSE
  "libxpro_graph.a"
)
