file(REMOVE_RECURSE
  "CMakeFiles/xpro_graph.dir/dataflow_graph.cc.o"
  "CMakeFiles/xpro_graph.dir/dataflow_graph.cc.o.d"
  "CMakeFiles/xpro_graph.dir/flow_network.cc.o"
  "CMakeFiles/xpro_graph.dir/flow_network.cc.o.d"
  "CMakeFiles/xpro_graph.dir/topo.cc.o"
  "CMakeFiles/xpro_graph.dir/topo.cc.o.d"
  "libxpro_graph.a"
  "libxpro_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpro_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
