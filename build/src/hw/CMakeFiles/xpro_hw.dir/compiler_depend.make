# Empty compiler generated dependencies file for xpro_hw.
# This may be replaced when dependencies are built.
