file(REMOVE_RECURSE
  "libxpro_hw.a"
)
