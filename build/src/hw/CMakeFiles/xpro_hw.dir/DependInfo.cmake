
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/alu_mode.cc" "src/hw/CMakeFiles/xpro_hw.dir/alu_mode.cc.o" "gcc" "src/hw/CMakeFiles/xpro_hw.dir/alu_mode.cc.o.d"
  "/root/repo/src/hw/cell_library.cc" "src/hw/CMakeFiles/xpro_hw.dir/cell_library.cc.o" "gcc" "src/hw/CMakeFiles/xpro_hw.dir/cell_library.cc.o.d"
  "/root/repo/src/hw/cell_model.cc" "src/hw/CMakeFiles/xpro_hw.dir/cell_model.cc.o" "gcc" "src/hw/CMakeFiles/xpro_hw.dir/cell_model.cc.o.d"
  "/root/repo/src/hw/cell_sim.cc" "src/hw/CMakeFiles/xpro_hw.dir/cell_sim.cc.o" "gcc" "src/hw/CMakeFiles/xpro_hw.dir/cell_sim.cc.o.d"
  "/root/repo/src/hw/characterize.cc" "src/hw/CMakeFiles/xpro_hw.dir/characterize.cc.o" "gcc" "src/hw/CMakeFiles/xpro_hw.dir/characterize.cc.o.d"
  "/root/repo/src/hw/technology.cc" "src/hw/CMakeFiles/xpro_hw.dir/technology.cc.o" "gcc" "src/hw/CMakeFiles/xpro_hw.dir/technology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xpro_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/xpro_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
