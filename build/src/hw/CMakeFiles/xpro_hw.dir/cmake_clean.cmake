file(REMOVE_RECURSE
  "CMakeFiles/xpro_hw.dir/alu_mode.cc.o"
  "CMakeFiles/xpro_hw.dir/alu_mode.cc.o.d"
  "CMakeFiles/xpro_hw.dir/cell_library.cc.o"
  "CMakeFiles/xpro_hw.dir/cell_library.cc.o.d"
  "CMakeFiles/xpro_hw.dir/cell_model.cc.o"
  "CMakeFiles/xpro_hw.dir/cell_model.cc.o.d"
  "CMakeFiles/xpro_hw.dir/cell_sim.cc.o"
  "CMakeFiles/xpro_hw.dir/cell_sim.cc.o.d"
  "CMakeFiles/xpro_hw.dir/characterize.cc.o"
  "CMakeFiles/xpro_hw.dir/characterize.cc.o.d"
  "CMakeFiles/xpro_hw.dir/technology.cc.o"
  "CMakeFiles/xpro_hw.dir/technology.cc.o.d"
  "libxpro_hw.a"
  "libxpro_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpro_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
