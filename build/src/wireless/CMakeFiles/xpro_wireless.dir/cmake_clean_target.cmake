file(REMOVE_RECURSE
  "libxpro_wireless.a"
)
