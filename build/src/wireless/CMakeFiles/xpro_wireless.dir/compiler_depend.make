# Empty compiler generated dependencies file for xpro_wireless.
# This may be replaced when dependencies are built.
