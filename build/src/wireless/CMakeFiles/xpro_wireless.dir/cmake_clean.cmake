file(REMOVE_RECURSE
  "CMakeFiles/xpro_wireless.dir/link.cc.o"
  "CMakeFiles/xpro_wireless.dir/link.cc.o.d"
  "CMakeFiles/xpro_wireless.dir/transceiver.cc.o"
  "CMakeFiles/xpro_wireless.dir/transceiver.cc.o.d"
  "libxpro_wireless.a"
  "libxpro_wireless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpro_wireless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
