file(REMOVE_RECURSE
  "CMakeFiles/xpro_sim.dir/event_queue.cc.o"
  "CMakeFiles/xpro_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/xpro_sim.dir/system_sim.cc.o"
  "CMakeFiles/xpro_sim.dir/system_sim.cc.o.d"
  "CMakeFiles/xpro_sim.dir/trace_export.cc.o"
  "CMakeFiles/xpro_sim.dir/trace_export.cc.o.d"
  "libxpro_sim.a"
  "libxpro_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpro_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
