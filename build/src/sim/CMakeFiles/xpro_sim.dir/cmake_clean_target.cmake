file(REMOVE_RECURSE
  "libxpro_sim.a"
)
