# Empty compiler generated dependencies file for xpro_sim.
# This may be replaced when dependencies are built.
