# Empty compiler generated dependencies file for xpro_cli.
# This may be replaced when dependencies are built.
