file(REMOVE_RECURSE
  "CMakeFiles/xpro_cli.dir/xpro_cli.cc.o"
  "CMakeFiles/xpro_cli.dir/xpro_cli.cc.o.d"
  "xpro_cli"
  "xpro_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpro_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
