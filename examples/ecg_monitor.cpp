/**
 * @file
 * A wearable heart monitor with a real-time abnormality analytic
 * engine -- the motivating application of the paper's introduction.
 *
 * The example trains the generic classifier to discriminate normal
 * from abnormal beats, generates the XPro cross-end partition, and
 * then *streams* a monitoring session through the event-driven
 * system simulator: every segment is classified by the actual
 * trained pipeline while the simulator tracks per-event latency and
 * the sensor battery drain.
 */

#include <cstdio>

#include "core/pipeline.hh"
#include "data/ecg_synth.hh"
#include "data/testcases.hh"
#include "dsp/segment.hh"
#include "sim/system_sim.hh"

using namespace xpro;

int
main()
{
    // Train on the ECG corpus.
    const SignalDataset dataset = makeTestCase(TestCase::C1);
    EngineConfig config;
    config.subspace.candidates = 40;
    TrainingOptions options;
    options.maxTrainingSegments = 250;
    const XProDesign design = designXPro(dataset, config, options);
    std::printf("trained ECG abnormality detector: %.1f%% accuracy, "
                "%zu cells, cut = %s\n",
                100.0 * design.pipeline.testAccuracy,
                design.topology.graph.cellCount(),
                design.partition.placement.summary(design.topology)
                    .c_str());

    // A fresh monitoring session as a *continuous* sample stream:
    // the wearable sees raw ADC samples and must find the beats
    // itself (peak-triggered segmentation), then classify each
    // extracted window with the trained pipeline.
    const size_t session_beats = 200;
    Rng rng(0xEC6);
    EcgSynthConfig ecg;
    std::vector<bool> truth;
    PeakSegmenterConfig seg_config;
    seg_config.windowLength = dataset.segmentLength;
    seg_config.prePeakFraction = 0.4;
    seg_config.thresholdRms = 2.5;
    seg_config.refractory =
        static_cast<size_t>(dataset.sampleRateHz * 0.5);
    PeakTriggeredSegmenter segmenter(seg_config);

    size_t classified = 0;
    size_t alarms = 0;
    size_t correct = 0;
    size_t missed = 0;
    for (size_t i = 0; i < session_beats; ++i) {
        const bool abnormal = rng.chance(0.3);
        truth.push_back(abnormal);
        // Render this beat inside a longer stretch of stream.
        segmenter.push(synthesizeEcgSegment(
            static_cast<size_t>(dataset.sampleRateHz * 0.8),
            dataset.sampleRateHz, abnormal, ecg, rng));
        while (segmenter.ready() > 0 && classified < truth.size()) {
            const int predicted =
                design.pipeline.classify(segmenter.pop());
            const bool was_abnormal = truth[classified];
            const int actual = was_abnormal ? -1 : 1;
            correct += predicted == actual;
            if (predicted == -1)
                ++alarms;
            else if (was_abnormal)
                ++missed;
            ++classified;
        }
    }
    std::printf("continuous session: %zu beats streamed, %zu beats "
                "detected and classified (%.1f%% correct), %zu "
                "alarms, %zu abnormal beats missed\n",
                session_beats, classified,
                classified
                    ? 100.0 * static_cast<double>(correct) /
                          static_cast<double>(classified)
                    : 0.0,
                alarms, missed);

    // Stream the session through the cross-end system simulator.
    const WirelessLink link(transceiver(config.wireless));
    const StreamResult stream = simulateStream(
        design.topology, design.partition.placement, link,
        dataset.eventsPerSecond(), 50);
    std::printf("real-time check over %zu events: worst latency "
                "%.3f ms, mean %.3f ms, %zu deadline misses\n",
                stream.events, stream.worstLatency.ms(),
                stream.meanLatency.ms(), stream.deadlineMisses);

    // Battery outlook for continuous monitoring.
    const SensorNode sensor;
    const Time lifetime =
        sensor.lifetime(design.partition.energy.total(),
                        dataset.eventsPerSecond());
    std::printf("40 mAh wristband battery outlook: %.0f hours "
                "(%.1f days) of continuous monitoring\n",
                lifetime.hr(), lifetime.hr() / 24.0);

    const SimResult one = simulateEvent(
        design.topology, design.partition.placement, link);
    std::printf("per event: %zu radio transfers, radio busy "
                "%.3f ms, detection latency %.3f ms\n",
                one.transfers, one.radioBusy.ms(),
                one.completion.ms());
    return 0;
}
