/**
 * @file
 * Quickstart: design an XPro cross-end engine for one health
 * application in a few lines.
 *
 *   1. Materialize a biosignal test case (synthetic ECG here).
 *   2. Train the generic classification pipeline (features + random
 *      subspace ensemble).
 *   3. Run the Automatic XPro Generator to split the engine between
 *      the wearable sensor and the aggregator.
 *   4. Compare the result against the two single-end designs.
 */

#include <cstdio>

#include "core/pipeline.hh"
#include "data/testcases.hh"

using namespace xpro;

int
main()
{
    // 1. A wearable ECG workload (paper test case C1).
    const SignalDataset dataset = makeTestCase(TestCase::C1);
    std::printf("dataset %s (%s): %zu segments of %zu samples\n",
                dataset.symbol.c_str(), dataset.name.c_str(),
                dataset.size(), dataset.segmentLength);

    // 2-3. Train and generate (90 nm process, wireless Model 2).
    EngineConfig config;
    config.subspace.candidates = 40; // quick demo budget
    TrainingOptions options;
    options.maxTrainingSegments = 250;
    const XProDesign design = designXPro(dataset, config, options);

    std::printf("classifier accuracy: %.1f%% on held-out data\n",
                100.0 * design.pipeline.testAccuracy);
    std::printf("engine topology: %zu functional cells\n",
                design.topology.graph.cellCount());
    std::printf("XPro cut: %s\n",
                design.partition.placement.summary(design.topology)
                    .c_str());
    std::printf("sensor energy: %.2f uJ/event "
                "(compute %.2f, tx %.2f, rx %.2f)\n",
                design.partition.energy.total().uj(),
                design.partition.energy.compute.uj(),
                design.partition.energy.tx.uj(),
                design.partition.energy.rx.uj());
    std::printf("event delay: %.3f ms (limit %.3f ms)\n",
                design.partition.delay.total().ms(),
                design.partition.delayLimit.ms());

    // 4. Compare against the single-end designs.
    const WirelessLink link(transceiver(config.wireless));
    const SensorNode sensor;
    const Aggregator aggregator;
    const WorkloadContext workload{dataset.eventsPerSecond()};

    std::printf("\n%-24s %14s %12s %14s\n", "engine", "energy/event",
                "delay", "battery life");
    for (EngineKind kind : allEngineKinds) {
        const EngineEvaluation eval =
            evaluateEngineKind(kind, design.topology, link, sensor,
                               aggregator, workload);
        std::printf("%-24s %11.2f uJ %9.3f ms %11.1f h\n",
                    engineKindName(kind).c_str(),
                    eval.sensorEnergy.total().uj(),
                    eval.delay.total().ms(),
                    eval.sensorLifetime.hr());
    }
    return 0;
}
