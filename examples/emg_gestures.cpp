/**
 * @file
 * Multi-classification on a wearable EMG armband (paper Section 5.7
 * extension): recognize four hand grasps (lateral, spherical, tip,
 * hook) with a one-vs-rest random-subspace engine, then let the
 * unchanged Automatic XPro Generator partition the extended topology
 * across the armband and the phone.
 */

#include <cstdio>

#include "core/multiclass_topology.hh"
#include "core/evaluator.hh"
#include "data/gestures.hh"
#include "ml/crossval.hh"

using namespace xpro;

int
main()
{
    // 1. Synthesize the 4-class grasp corpus and extract features.
    const GestureDataset raw = makeEmgGestureDataset(150);
    std::printf("dataset %s: %zu segments, %zu classes "
                "(%s/%s/%s/%s)\n",
                raw.name.c_str(), raw.size(), raw.classCount,
                raw.classNames[0].c_str(), raw.classNames[1].c_str(),
                raw.classNames[2].c_str(), raw.classNames[3].c_str());

    FeatureExtractor extractor;
    MultiClassData all;
    all.classCount = raw.classCount;
    for (const GestureSegment &segment : raw.segments) {
        all.rows.push_back(extractor.extractAll(segment.samples));
        all.labels.push_back(segment.label);
    }

    // 75/25 split (stratification via the binary helper on a
    // one-vs-rest view is overkill here; classes are interleaved).
    const size_t train_count = all.size() * 3 / 4;
    MultiClassData train;
    MultiClassData test;
    train.classCount = test.classCount = all.classCount;
    for (size_t i = 0; i < all.size(); ++i) {
        MultiClassData &dst = i < train_count ? train : test;
        dst.rows.push_back(all.rows[i]);
        dst.labels.push_back(all.labels[i]);
    }

    FeatureScaler scaler;
    scaler.fit(train.rows);
    scaler.transformRowsInPlace(train.rows);
    scaler.transformRowsInPlace(test.rows);

    // 2. Train the one-vs-rest ensemble.
    RandomSubspaceConfig subspace =
        EngineConfig::defaultSubspaceConfig();
    subspace.candidates = 40;
    const MultiClassSubspace model =
        MultiClassSubspace::train(train, subspace);
    std::printf("gesture recognizer: %.1f%% accuracy on held-out "
                "data (%zu one-vs-rest ensembles)\n",
                100.0 * model.accuracy(test), model.classCount());

    // Per-class recall.
    std::vector<size_t> correct(raw.classCount, 0);
    std::vector<size_t> totals(raw.classCount, 0);
    for (size_t i = 0; i < test.size(); ++i) {
        ++totals[test.labels[i]];
        correct[test.labels[i]] +=
            model.predict(test.rows[i]) == test.labels[i];
    }
    for (size_t cls = 0; cls < raw.classCount; ++cls) {
        std::printf("  %-10s recall %.1f%%\n",
                    raw.classNames[cls].c_str(),
                    100.0 * static_cast<double>(correct[cls]) /
                        static_cast<double>(totals[cls]));
    }

    // 3. Partition the extended topology with the same generator.
    const EngineConfig config;
    const EngineTopology topology = buildMultiClassTopology(
        model, raw.segmentLength, config, raw.eventsPerSecond());
    const WirelessLink link(transceiver(config.wireless));
    const SensorNode sensor;
    const Aggregator aggregator;
    const WorkloadContext workload{raw.eventsPerSecond()};

    std::printf("\nextended topology: %zu cells (%zu SVM cells "
                "across %zu classes)\n",
                topology.graph.cellCount(), topology.svmNodes.size(),
                model.classCount());
    std::printf("%-24s %14s %12s %14s\n", "engine", "energy/event",
                "delay", "battery life");
    for (EngineKind kind : allEngineKinds) {
        const EngineEvaluation eval = evaluateEngineKind(
            kind, topology, link, sensor, aggregator, workload);
        std::printf("%-24s %11.2f uJ %9.3f ms %11.1f h\n",
                    engineKindName(kind).c_str(),
                    eval.sensorEnergy.total().uj(),
                    eval.delay.total().ms(),
                    eval.sensorLifetime.hr());
    }
    std::printf("\n\"The rest of the proposed methodology can be "
                "applied directly.\" -- paper Section 5.7\n");
    return 0;
}
