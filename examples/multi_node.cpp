/**
 * @file
 * Multi-sensor body sensor network (paper Section 5.7, "extension
 * to multiple sensor nodes"): one aggregator serves an ECG
 * wristband, an EEG headband and an EMG armband, through the fleet
 * subsystem. Unlike the paper's separate-channel assumption, the
 * nodes here share one half-duplex radio channel and the single
 * aggregator CPU: the fleet run designs each node's cut (in
 * parallel), admits it against the aggregator's budget and then
 * replays all three event streams through one event-level
 * simulation of the shared resources.
 */

#include <cstdio>
#include <iostream>

#include "fleet/fleet.hh"

using namespace xpro;

int
main()
{
    FleetConfig config;
    const TestCase cases[] = {TestCase::C1, TestCase::E1,
                              TestCase::M1};
    for (TestCase tc : cases) {
        FleetNodeSpec spec;
        spec.testCase = tc;
        config.nodes.push_back(spec);
    }
    config.workers = 2;
    config.eventsPerNode = 4;

    std::printf("designing a %zu-node body sensor network...\n\n",
                config.nodes.size());
    const FleetResult result = runFleet(config);
    result.report.writeText(std::cout);

    std::printf("\n(the aggregator's own smartphone workload is not "
                "modeled; its power and lifetime above are\n"
                " the analytics overhead only, the view of the "
                "paper's Fig. 13)\n");
    return 0;
}
