/**
 * @file
 * Multi-sensor body sensor network (paper Section 5.7, "extension
 * to multiple sensor nodes"): one aggregator serves an ECG
 * wristband, an EEG headband and an EMG armband. Each node gets its
 * own XPro partition; the aggregator's total software + radio load
 * is checked against its battery.
 */

#include <cstdio>

#include "core/pipeline.hh"
#include "data/testcases.hh"

using namespace xpro;

int
main()
{
    const TestCase nodes[] = {TestCase::C1, TestCase::E1,
                              TestCase::M1};

    EngineConfig config;
    config.subspace.candidates = 40;
    TrainingOptions options;
    options.maxTrainingSegments = 250;

    const WirelessLink link(transceiver(config.wireless));
    const SensorNode sensor;
    const Aggregator aggregator;

    Power aggregator_load;
    std::printf("%-6s %-16s %10s %14s %14s %12s\n", "node",
                "dataset", "accuracy", "cut", "sensor life",
                "agg power");
    for (TestCase tc : nodes) {
        const SignalDataset dataset = makeTestCase(tc);
        const XProDesign design =
            designXPro(dataset, config, options);
        const WorkloadContext workload{dataset.eventsPerSecond()};
        const EngineEvaluation eval = evaluateEngine(
            EngineKind::CrossEnd, design.topology,
            design.partition.placement, link, sensor, aggregator,
            workload);

        const Power node_aggregator_power =
            eval.aggregatorEnergy.total().over(
                Time::seconds(1.0 / workload.eventsPerSecond));
        aggregator_load += node_aggregator_power;

        std::printf("%-6s %-16s %9.1f%% %8zu/%-5zu %11.0f h "
                    "%9.1f uW\n",
                    dataset.symbol.c_str(), dataset.name.c_str(),
                    100.0 * design.pipeline.testAccuracy,
                    design.partition.placement.sensorCellCount(),
                    design.topology.graph.cellCount(),
                    eval.sensorLifetime.hr(),
                    node_aggregator_power.uw());
    }

    // The aggregator hears the three nodes on separate channels
    // (MIMO or a specialized protocol, as the paper notes), so its
    // load is the sum of the per-node overheads.
    const Time aggregator_life =
        Battery::aggregatorBattery().lifetime(aggregator_load);
    std::printf("\naggregator total analytic load: %.1f uW -> "
                "%.0f hours on a 2900 mAh phone battery\n",
                aggregator_load.uw(), aggregator_life.hr());
    std::printf("(the aggregator's own smartphone workload is not "
                "modeled; this is the analytics overhead only,\n"
                " the view of the paper's Fig. 13)\n");
    return 0;
}
