/**
 * @file
 * Export the full evaluation grid as machine-readable CSV so the
 * paper's figures can be re-plotted with any tool: one row per
 * (test case, process node, wireless model, engine), carrying the
 * battery life, the sensor energy breakdown and the delay breakdown.
 *
 * Writes xpro_figures.csv into the current directory.
 */

#include <cstdio>

#include "core/pipeline.hh"
#include "core/report.hh"
#include "data/testcases.hh"

using namespace xpro;

int
main()
{
    CsvTable table({
        "case", "process", "wireless", "engine", "cells_in_sensor",
        "cells_total", "sensor_energy_uj", "compute_uj", "tx_uj",
        "rx_uj", "delay_ms", "front_ms", "wireless_ms", "back_ms",
        "battery_h", "aggregator_uj",
    });

    EngineConfig base;
    base.subspace.candidates = 40; // export-speed budget
    TrainingOptions options;
    options.maxTrainingSegments = 250;

    for (TestCase tc : allTestCases) {
        const SignalDataset dataset = makeTestCase(tc);
        const TrainedPipeline pipeline =
            trainPipeline(dataset, base, options);
        std::printf("trained %s (%.1f%%)\n", dataset.symbol.c_str(),
                    100.0 * pipeline.testAccuracy);

        for (ProcessNode node : allProcessNodes) {
            for (WirelessModel model : allWirelessModels) {
                EngineConfig config = base;
                config.process = node;
                config.wireless = model;
                const EngineTopology topology = buildEngineTopology(
                    pipeline.ensemble, dataset.segmentLength, config,
                    dataset.eventsPerSecond());
                const WirelessLink link(transceiver(model));
                SensorNodeConfig sensor_config;
                sensor_config.process = node;
                const SensorNode sensor(sensor_config);
                const Aggregator aggregator;
                const WorkloadContext workload{
                    dataset.eventsPerSecond()};

                for (EngineKind kind : allEngineKinds) {
                    const EngineEvaluation eval = evaluateEngineKind(
                        kind, topology, link, sensor, aggregator,
                        workload);
                    table.beginRow()
                        .add(std::string(dataset.symbol))
                        .add(processNodeName(node))
                        .add(wirelessModelName(model))
                        .add(engineKindTag(kind))
                        .add(eval.placement.sensorCellCount())
                        .add(topology.graph.cellCount())
                        .add(eval.sensorEnergy.total().uj())
                        .add(eval.sensorEnergy.compute.uj())
                        .add(eval.sensorEnergy.tx.uj())
                        .add(eval.sensorEnergy.rx.uj())
                        .add(eval.delay.total().ms())
                        .add(eval.delay.frontCompute.ms())
                        .add(eval.delay.wireless.ms())
                        .add(eval.delay.backCompute.ms())
                        .add(eval.sensorLifetime.hr())
                        .add(eval.aggregatorEnergy.total().uj());
                }
            }
        }
    }

    table.writeFile("xpro_figures.csv");
    std::printf("wrote %zu rows to xpro_figures.csv "
                "(6 cases x 3 nodes x 3 radios x 4 engines)\n",
                table.rowCount());
    return 0;
}
