/**
 * @file
 * Design-space exploration across process technologies and wireless
 * transceivers: for one application, print how the Automatic XPro
 * Generator's cut and the resulting battery life move as the
 * hardware assumptions change -- the exploration a system designer
 * would run before committing to a sensor-node design.
 */

#include <cstdio>

#include "core/pipeline.hh"
#include "data/testcases.hh"

using namespace xpro;

int
main()
{
    const SignalDataset dataset = makeTestCase(TestCase::E1);
    std::printf("design space for %s (%s), %.2f events/s\n\n",
                dataset.symbol.c_str(), dataset.name.c_str(),
                dataset.eventsPerSecond());

    // Train once; the classifier does not depend on the hardware.
    EngineConfig base;
    base.subspace.candidates = 40;
    TrainingOptions options;
    options.maxTrainingSegments = 250;
    const TrainedPipeline pipeline =
        trainPipeline(dataset, base, options);
    std::printf("classifier: %zu base SVMs over %zu features, "
                "%.1f%% accuracy\n\n",
                pipeline.ensemble.bases().size(),
                pipeline.ensemble.usedFeatureIndices().size(),
                100.0 * pipeline.testAccuracy);

    std::printf("%-8s %-28s %16s %14s %12s %12s\n", "process",
                "wireless", "in-sensor cells", "energy/event",
                "delay", "battery");
    for (ProcessNode node : allProcessNodes) {
        for (WirelessModel model : allWirelessModels) {
            EngineConfig config = base;
            config.process = node;
            config.wireless = model;

            const EngineTopology topology = buildEngineTopology(
                pipeline.ensemble, dataset.segmentLength, config,
                dataset.eventsPerSecond());
            const WirelessLink link(transceiver(model));
            const PartitionResult partition =
                XProGenerator(topology, link).generate();

            SensorNodeConfig sensor_config;
            sensor_config.process = node;
            const SensorNode sensor(sensor_config);
            const Time lifetime =
                sensor.lifetime(partition.energy.total(),
                                dataset.eventsPerSecond());

            std::printf("%-8s %-28s %9zu/%-6zu %11.2f uJ %9.3f ms "
                        "%9.0f h\n",
                        processNodeName(node).c_str(),
                        wirelessModelName(model).c_str(),
                        partition.placement.sensorCellCount(),
                        topology.graph.cellCount(),
                        partition.energy.total().uj(),
                        partition.delay.total().ms(), lifetime.hr());
        }
    }

    std::printf("\nReading: the generator shifts cells toward the "
                "aggregator as the radio gets cheaper\n"
                "(Model 3) and toward the sensor as silicon gets "
                "cheaper (45nm), exactly the trend\n"
                "the paper's Figures 8 and 9 report.\n");
    return 0;
}
