#include "dsp/features.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/simd.hh"

namespace xpro
{

const std::string &
featureName(FeatureKind kind)
{
    static const std::array<std::string, featureKindCount> names = {
        "Max", "Min", "Mean", "Var", "Std", "Czero", "Skew", "Kurt",
    };
    return names[static_cast<size_t>(kind)];
}

double
featureMax(const double *signal, size_t n)
{
    xproAssert(n > 0, "feature on empty signal");
    return *std::max_element(signal, signal + n);
}

double
featureMax(const std::vector<double> &signal)
{
    return featureMax(signal.data(), signal.size());
}

double
featureMin(const double *signal, size_t n)
{
    xproAssert(n > 0, "feature on empty signal");
    return *std::min_element(signal, signal + n);
}

double
featureMin(const std::vector<double> &signal)
{
    return featureMin(signal.data(), signal.size());
}

double
featureMean(const double *signal, size_t n)
{
    xproAssert(n > 0, "feature on empty signal");
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i)
        sum += signal[i];
    return sum / static_cast<double>(n);
}

double
featureMean(const std::vector<double> &signal)
{
    return featureMean(signal.data(), signal.size());
}

double
featureVar(const double *signal, size_t n)
{
    const double mu = featureMean(signal, n);
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const double d = signal[i] - mu;
        acc += d * d;
    }
    return acc / static_cast<double>(n);
}

double
featureVar(const std::vector<double> &signal)
{
    return featureVar(signal.data(), signal.size());
}

double
featureStd(const double *signal, size_t n)
{
    return std::sqrt(featureVar(signal, n));
}

double
featureStd(const std::vector<double> &signal)
{
    return featureStd(signal.data(), signal.size());
}

double
featureCzero(const double *signal, size_t n)
{
    xproAssert(n > 0, "feature on empty signal");
    size_t crossings = 0;
    for (size_t i = 1; i < n; ++i) {
        if ((signal[i - 1] < 0.0 && signal[i] >= 0.0) ||
            (signal[i - 1] >= 0.0 && signal[i] < 0.0)) {
            ++crossings;
        }
    }
    return static_cast<double>(crossings);
}

double
featureCzero(const std::vector<double> &signal)
{
    return featureCzero(signal.data(), signal.size());
}

double
featureSkew(const double *signal, size_t n)
{
    const double mu = featureMean(signal, n);
    const double sigma = featureStd(signal, n);
    if (sigma < 1e-12)
        return 0.0;
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const double z = (signal[i] - mu) / sigma;
        acc += z * z * z;
    }
    return acc / static_cast<double>(n);
}

double
featureSkew(const std::vector<double> &signal)
{
    return featureSkew(signal.data(), signal.size());
}

double
featureKurt(const double *signal, size_t n)
{
    const double mu = featureMean(signal, n);
    const double sigma = featureStd(signal, n);
    if (sigma < 1e-12)
        return 0.0;
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const double z = (signal[i] - mu) / sigma;
        acc += z * z * z * z;
    }
    return acc / static_cast<double>(n);
}

double
featureKurt(const std::vector<double> &signal)
{
    return featureKurt(signal.data(), signal.size());
}

void
computeAllKindsInto(const double *signal, size_t n, double *out)
{
    xproAssert(n > 0, "feature on empty signal");

    // Shared moments, each produced by the exact loop the per-kind
    // reference runs, so every downstream reuse is bit-identical.
    const double mu = featureMean(signal, n);
    double m2 = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const double d = signal[i] - mu;
        m2 += d * d;
    }
    const double var = m2 / static_cast<double>(n);
    const double sigma = std::sqrt(var);

    double skew = 0.0;
    double kurt = 0.0;
    if (sigma >= 1e-12) {
        // featureSkew()/featureKurt() each divide every sample by
        // sigma in their own serial loop; here one vectorized
        // z-score pass feeds both. Division is exactly rounded, so
        // the block-computed z values equal the scalar ones; the
        // accumulations stay serial left-to-right with the
        // reference association (z*z)*z and ((z*z)*z)*z.
        double z[64];
        double acc3 = 0.0;
        double acc4 = 0.0;
        for (size_t start = 0; start < n; start += 64) {
            const size_t m = std::min<size_t>(64, n - start);
            simdZScore(z, signal + start, mu, sigma, m);
            for (size_t j = 0; j < m; ++j) {
                const double z3 = z[j] * z[j] * z[j];
                acc3 += z3;
                acc4 += z3 * z[j];
            }
        }
        skew = acc3 / static_cast<double>(n);
        kurt = acc4 / static_cast<double>(n);
    }

    out[static_cast<size_t>(FeatureKind::Max)] = featureMax(signal, n);
    out[static_cast<size_t>(FeatureKind::Min)] = featureMin(signal, n);
    out[static_cast<size_t>(FeatureKind::Mean)] = mu;
    out[static_cast<size_t>(FeatureKind::Var)] = var;
    out[static_cast<size_t>(FeatureKind::Std)] = sigma;
    out[static_cast<size_t>(FeatureKind::Czero)] =
        featureCzero(signal, n);
    out[static_cast<size_t>(FeatureKind::Skew)] = skew;
    out[static_cast<size_t>(FeatureKind::Kurt)] = kurt;
}

void
computeAllKindsPacked(const double *packed, size_t n, size_t lanes,
                      double *out, size_t outStride)
{
    xproAssert(n > 0, "feature on empty signal");
    xproAssert(lanes >= 1 && lanes <= simdPackWidth,
               "bad lane count %zu", lanes);

    double mx[simdPackWidth], mn[simdPackWidth], sum[simdPackWidth];
    double mu[simdPackWidth], var[simdPackWidth];
    double sigma[simdPackWidth], safe[simdPackWidth];
    double varAcc[simdPackWidth], cz[simdPackWidth];
    double acc3[simdPackWidth], acc4[simdPackWidth];

    simdMaxMinSumPacked(packed, n, mx, mn, sum);
    for (size_t j = 0; j < simdPackWidth; ++j)
        mu[j] = sum[j] / static_cast<double>(n);
    simdCenteredSquareSumPacked(packed, n, mu, varAcc);
    for (size_t j = 0; j < simdPackWidth; ++j) {
        var[j] = varAcc[j] / static_cast<double>(n);
        sigma[j] = std::sqrt(var[j]);
        // Degenerate lanes (and the zero padding lanes) divide by
        // 1.0 in the moment pass; their skew/kurtosis are forced to
        // the reference 0.0 below.
        safe[j] = sigma[j] < 1e-12 ? 1.0 : sigma[j];
    }
    simdSignCrossingsPacked(packed, n, cz);
    simdMoment34Packed(packed, n, mu, safe, acc3, acc4);

    for (size_t j = 0; j < lanes; ++j) {
        double *o = out + j * outStride;
        o[static_cast<size_t>(FeatureKind::Max)] = mx[j];
        o[static_cast<size_t>(FeatureKind::Min)] = mn[j];
        o[static_cast<size_t>(FeatureKind::Mean)] = mu[j];
        o[static_cast<size_t>(FeatureKind::Var)] = var[j];
        o[static_cast<size_t>(FeatureKind::Std)] = sigma[j];
        o[static_cast<size_t>(FeatureKind::Czero)] = cz[j];
        const bool degenerate = sigma[j] < 1e-12;
        o[static_cast<size_t>(FeatureKind::Skew)] =
            degenerate ? 0.0 : acc3[j] / static_cast<double>(n);
        o[static_cast<size_t>(FeatureKind::Kurt)] =
            degenerate ? 0.0 : acc4[j] / static_cast<double>(n);
    }
}

double
computeFeature(FeatureKind kind, const double *signal, size_t n)
{
    switch (kind) {
      case FeatureKind::Max:   return featureMax(signal, n);
      case FeatureKind::Min:   return featureMin(signal, n);
      case FeatureKind::Mean:  return featureMean(signal, n);
      case FeatureKind::Var:   return featureVar(signal, n);
      case FeatureKind::Std:   return featureStd(signal, n);
      case FeatureKind::Czero: return featureCzero(signal, n);
      case FeatureKind::Skew:  return featureSkew(signal, n);
      case FeatureKind::Kurt:  return featureKurt(signal, n);
    }
    panic("unknown feature kind %d", static_cast<int>(kind));
}

double
computeFeature(FeatureKind kind, const std::vector<double> &signal)
{
    return computeFeature(kind, signal.data(), signal.size());
}

std::array<double, featureKindCount>
computeAllFeatures(const std::vector<double> &signal)
{
    std::array<double, featureKindCount> out{};
    for (size_t i = 0; i < featureKindCount; ++i)
        out[i] = computeFeature(allFeatureKinds[i], signal);
    return out;
}

} // namespace xpro
