#include "dsp/features.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace xpro
{

const std::string &
featureName(FeatureKind kind)
{
    static const std::array<std::string, featureKindCount> names = {
        "Max", "Min", "Mean", "Var", "Std", "Czero", "Skew", "Kurt",
    };
    return names[static_cast<size_t>(kind)];
}

double
featureMax(const std::vector<double> &signal)
{
    xproAssert(!signal.empty(), "feature on empty signal");
    return *std::max_element(signal.begin(), signal.end());
}

double
featureMin(const std::vector<double> &signal)
{
    xproAssert(!signal.empty(), "feature on empty signal");
    return *std::min_element(signal.begin(), signal.end());
}

double
featureMean(const std::vector<double> &signal)
{
    xproAssert(!signal.empty(), "feature on empty signal");
    double sum = 0.0;
    for (double v : signal)
        sum += v;
    return sum / static_cast<double>(signal.size());
}

double
featureVar(const std::vector<double> &signal)
{
    const double mu = featureMean(signal);
    double acc = 0.0;
    for (double v : signal) {
        const double d = v - mu;
        acc += d * d;
    }
    return acc / static_cast<double>(signal.size());
}

double
featureStd(const std::vector<double> &signal)
{
    return std::sqrt(featureVar(signal));
}

double
featureCzero(const std::vector<double> &signal)
{
    xproAssert(!signal.empty(), "feature on empty signal");
    size_t crossings = 0;
    for (size_t i = 1; i < signal.size(); ++i) {
        if ((signal[i - 1] < 0.0 && signal[i] >= 0.0) ||
            (signal[i - 1] >= 0.0 && signal[i] < 0.0)) {
            ++crossings;
        }
    }
    return static_cast<double>(crossings);
}

double
featureSkew(const std::vector<double> &signal)
{
    const double mu = featureMean(signal);
    const double sigma = featureStd(signal);
    if (sigma < 1e-12)
        return 0.0;
    double acc = 0.0;
    for (double v : signal) {
        const double z = (v - mu) / sigma;
        acc += z * z * z;
    }
    return acc / static_cast<double>(signal.size());
}

double
featureKurt(const std::vector<double> &signal)
{
    const double mu = featureMean(signal);
    const double sigma = featureStd(signal);
    if (sigma < 1e-12)
        return 0.0;
    double acc = 0.0;
    for (double v : signal) {
        const double z = (v - mu) / sigma;
        acc += z * z * z * z;
    }
    return acc / static_cast<double>(signal.size());
}

double
computeFeature(FeatureKind kind, const std::vector<double> &signal)
{
    switch (kind) {
      case FeatureKind::Max:   return featureMax(signal);
      case FeatureKind::Min:   return featureMin(signal);
      case FeatureKind::Mean:  return featureMean(signal);
      case FeatureKind::Var:   return featureVar(signal);
      case FeatureKind::Std:   return featureStd(signal);
      case FeatureKind::Czero: return featureCzero(signal);
      case FeatureKind::Skew:  return featureSkew(signal);
      case FeatureKind::Kurt:  return featureKurt(signal);
    }
    panic("unknown feature kind %d", static_cast<int>(kind));
}

std::array<double, featureKindCount>
computeAllFeatures(const std::vector<double> &signal)
{
    std::array<double, featureKindCount> out{};
    for (size_t i = 0; i < featureKindCount; ++i)
        out[i] = computeFeature(allFeatureKinds[i], signal);
    return out;
}

} // namespace xpro
