#include "dsp/segment.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace xpro
{

SlidingWindowSegmenter::SlidingWindowSegmenter(size_t window_length,
                                               size_t hop)
    : _windowLength(window_length), _hop(hop)
{
    xproAssert(window_length > 0, "window length must be positive");
    xproAssert(hop > 0, "hop must be positive");
}

void
SlidingWindowSegmenter::push(double sample)
{
    _history.push_back(sample);
    // Keep just enough history for the next window to complete.
    while (_history.size() > _windowLength)
        _history.pop_front();

    if (_first) {
        if (_history.size() == _windowLength) {
            _ready.emplace_back(_history.begin(), _history.end());
            _first = false;
            _sincePrevious = 0;
        }
        return;
    }
    if (++_sincePrevious == _hop) {
        // A window ends here only when enough history is buffered
        // (hop > window length leaves gaps by design).
        if (_history.size() == _windowLength)
            _ready.emplace_back(_history.begin(), _history.end());
        _sincePrevious = 0;
    }
}

void
SlidingWindowSegmenter::push(const std::vector<double> &samples)
{
    for (double sample : samples)
        push(sample);
}

std::vector<double>
SlidingWindowSegmenter::pop()
{
    xproAssert(!_ready.empty(), "no completed window to pop");
    std::vector<double> window = std::move(_ready.front());
    _ready.pop_front();
    return window;
}

PeakTriggeredSegmenter::PeakTriggeredSegmenter(
    const PeakSegmenterConfig &config)
    : _config(config)
{
    xproAssert(config.windowLength > 1, "window too short");
    xproAssert(config.prePeakFraction >= 0.0 &&
                   config.prePeakFraction < 1.0,
               "pre-peak fraction out of range");
    xproAssert(config.thresholdRms > 0.0,
               "threshold must be positive");
}

double
PeakTriggeredSegmenter::threshold() const
{
    return _config.thresholdRms * std::sqrt(_meanSquare);
}

void
PeakTriggeredSegmenter::push(double sample)
{
    _history.push_back(sample);
    const size_t index = _absoluteIndex++;

    // Running RMS of the stream for the adaptive threshold; adapt
    // fast during warm-up so the threshold settles before detection
    // is armed.
    const bool warming = index < _config.warmupSamples;
    const double alpha = warming ? 0.05 : _config.rmsAlpha;
    _meanSquare += alpha * (sample * sample - _meanSquare);

    const bool refractory_over =
        !_hasPeak || index - _lastPeak >= _config.refractory;
    if (!warming && refractory_over &&
        std::fabs(sample) > threshold()) {
        _lastPeak = index;
        _hasPeak = true;
        ++_peaksDetected;
        _pendingPeaks.push_back(index);
    }

    tryEmit();

    // Trim history no pending window can still need.
    const size_t pre = static_cast<size_t>(
        _config.prePeakFraction *
        static_cast<double>(_config.windowLength));
    const size_t keep =
        _config.windowLength + pre + _config.refractory;
    while (_history.size() > keep &&
           (_pendingPeaks.empty() ||
            _historyStart + pre < _pendingPeaks.front())) {
        _history.pop_front();
        ++_historyStart;
    }
}

void
PeakTriggeredSegmenter::push(const std::vector<double> &samples)
{
    for (double sample : samples)
        push(sample);
}

void
PeakTriggeredSegmenter::tryEmit()
{
    const size_t pre = static_cast<size_t>(
        _config.prePeakFraction *
        static_cast<double>(_config.windowLength));

    while (!_pendingPeaks.empty()) {
        const size_t peak = _pendingPeaks.front();
        // Window spans [peak - pre, peak - pre + windowLength).
        const size_t start = peak >= pre ? peak - pre : 0;
        const size_t end = start + _config.windowLength;
        if (_absoluteIndex < end)
            break; // still buffering the tail of this beat
        if (start < _historyStart) {
            // Too-early peak whose pre-window history is gone.
            _pendingPeaks.pop_front();
            continue;
        }
        std::vector<double> window;
        window.reserve(_config.windowLength);
        for (size_t i = start; i < end; ++i)
            window.push_back(_history[i - _historyStart]);
        _ready.push_back(std::move(window));
        _pendingPeaks.pop_front();
    }
}

std::vector<double>
PeakTriggeredSegmenter::pop()
{
    xproAssert(!_ready.empty(), "no completed window to pop");
    std::vector<double> window = std::move(_ready.front());
    _ready.pop_front();
    return window;
}

} // namespace xpro
