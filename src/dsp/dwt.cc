#include "dsp/dwt.hh"

#include <cmath>
#include <numbers>

#include "common/logging.hh"

namespace xpro
{

namespace
{

/** Analysis low-pass filter taps for each wavelet family. */
const std::vector<double> &
lowPassTaps(Wavelet wavelet)
{
    static const std::vector<double> haar = {
        1.0 / std::numbers::sqrt2, 1.0 / std::numbers::sqrt2,
    };
    // Daubechies-4 (two vanishing moments) analysis taps.
    static const std::vector<double> db4 = {
        0.48296291314469025, 0.83651630373746899,
        0.22414386804185735, -0.12940952255092145,
    };
    return wavelet == Wavelet::Haar ? haar : db4;
}

/** High-pass taps by the quadrature-mirror relation. */
std::vector<double>
highPassTaps(Wavelet wavelet)
{
    const std::vector<double> &low = lowPassTaps(wavelet);
    std::vector<double> high(low.size());
    for (size_t i = 0; i < low.size(); ++i) {
        const double sign = (i % 2 == 0) ? 1.0 : -1.0;
        high[i] = sign * low[low.size() - 1 - i];
    }
    return high;
}

} // namespace

const std::string &
waveletName(Wavelet wavelet)
{
    static const std::string haar = "Haar";
    static const std::string db4 = "Db4";
    return wavelet == Wavelet::Haar ? haar : db4;
}

DwtLevel
dwtStep(const std::vector<double> &signal, Wavelet wavelet)
{
    const std::vector<double> &low = lowPassTaps(wavelet);
    const std::vector<double> high = highPassTaps(wavelet);
    const size_t n = signal.size();
    xproAssert(n % 2 == 0, "DWT input length %zu must be even", n);
    xproAssert(n >= low.size(), "DWT input shorter than filter");

    DwtLevel out;
    out.approx.resize(n / 2);
    out.detail.resize(n / 2);
    for (size_t k = 0; k < n / 2; ++k) {
        double a = 0.0;
        double d = 0.0;
        for (size_t tap = 0; tap < low.size(); ++tap) {
            const double sample = signal[(2 * k + tap) % n];
            a += low[tap] * sample;
            d += high[tap] * sample;
        }
        out.approx[k] = a;
        out.detail[k] = d;
    }
    return out;
}

std::vector<double>
idwtStep(const DwtLevel &level, Wavelet wavelet)
{
    const std::vector<double> &low = lowPassTaps(wavelet);
    const std::vector<double> high = highPassTaps(wavelet);
    const size_t half = level.approx.size();
    xproAssert(level.detail.size() == half,
               "approx/detail length mismatch");

    std::vector<double> out(2 * half, 0.0);
    for (size_t k = 0; k < half; ++k) {
        for (size_t tap = 0; tap < low.size(); ++tap) {
            const size_t idx = (2 * k + tap) % (2 * half);
            out[idx] += low[tap] * level.approx[k] +
                        high[tap] * level.detail[k];
        }
    }
    return out;
}

DwtDecomposition
dwtDecompose(const std::vector<double> &signal, Wavelet wavelet,
             size_t levels)
{
    xproAssert(levels > 0, "need at least one DWT level");
    const size_t divisor = size_t{1} << levels;
    xproAssert(signal.size() % divisor == 0,
               "signal length %zu not divisible by 2^%zu",
               signal.size(), levels);

    DwtDecomposition decomp;
    std::vector<double> current = signal;
    for (size_t level = 0; level < levels; ++level) {
        DwtLevel step = dwtStep(current, wavelet);
        decomp.detail.push_back(std::move(step.detail));
        current = std::move(step.approx);
    }
    decomp.approx = std::move(current);
    return decomp;
}

std::vector<double>
dwtReconstruct(const DwtDecomposition &decomp, Wavelet wavelet)
{
    std::vector<double> current = decomp.approx;
    for (size_t level = decomp.detail.size(); level-- > 0;) {
        DwtLevel step;
        step.approx = std::move(current);
        step.detail = decomp.detail[level];
        current = idwtStep(step, wavelet);
    }
    return current;
}

std::vector<double>
frameForDwt(const std::vector<double> &signal)
{
    std::vector<double> frame(dwtFrameLength, 0.0);
    const size_t n = std::min(signal.size(), dwtFrameLength);
    for (size_t i = 0; i < n; ++i)
        frame[i] = signal[i];
    return frame;
}

} // namespace xpro
