#include "dsp/dwt.hh"

#include <cmath>
#include <numbers>

#include <cstring>

#include "common/logging.hh"
#include "common/simd.hh"

namespace xpro
{

namespace
{

/** Analysis low-pass filter taps for each wavelet family. */
const std::vector<double> &
lowPassTaps(Wavelet wavelet)
{
    static const std::vector<double> haar = {
        1.0 / std::numbers::sqrt2, 1.0 / std::numbers::sqrt2,
    };
    // Daubechies-4 (two vanishing moments) analysis taps.
    static const std::vector<double> db4 = {
        0.48296291314469025, 0.83651630373746899,
        0.22414386804185735, -0.12940952255092145,
    };
    return wavelet == Wavelet::Haar ? haar : db4;
}

/** High-pass taps by the quadrature-mirror relation. */
std::vector<double>
highPassTaps(Wavelet wavelet)
{
    const std::vector<double> &low = lowPassTaps(wavelet);
    std::vector<double> high(low.size());
    for (size_t i = 0; i < low.size(); ++i) {
        const double sign = (i % 2 == 0) ? 1.0 : -1.0;
        high[i] = sign * low[low.size() - 1 - i];
    }
    return high;
}

/**
 * Cached high-pass taps; the steady-state decompose() path must not
 * construct the tap vector per call (zero-allocation contract).
 */
const std::vector<double> &
highPassTapsCached(Wavelet wavelet)
{
    static const std::vector<double> haar =
        highPassTaps(Wavelet::Haar);
    static const std::vector<double> db4 =
        highPassTaps(Wavelet::Db4);
    return wavelet == Wavelet::Haar ? haar : db4;
}

} // namespace

const std::string &
waveletName(Wavelet wavelet)
{
    static const std::string haar = "Haar";
    static const std::string db4 = "Db4";
    return wavelet == Wavelet::Haar ? haar : db4;
}

DwtLevel
dwtStep(const std::vector<double> &signal, Wavelet wavelet)
{
    const std::vector<double> &low = lowPassTaps(wavelet);
    const std::vector<double> high = highPassTaps(wavelet);
    const size_t n = signal.size();
    xproAssert(n % 2 == 0, "DWT input length %zu must be even", n);
    xproAssert(n >= low.size(), "DWT input shorter than filter");

    DwtLevel out;
    out.approx.resize(n / 2);
    out.detail.resize(n / 2);
    for (size_t k = 0; k < n / 2; ++k) {
        double a = 0.0;
        double d = 0.0;
        for (size_t tap = 0; tap < low.size(); ++tap) {
            const double sample = signal[(2 * k + tap) % n];
            a += low[tap] * sample;
            d += high[tap] * sample;
        }
        out.approx[k] = a;
        out.detail[k] = d;
    }
    return out;
}

std::vector<double>
idwtStep(const DwtLevel &level, Wavelet wavelet)
{
    const std::vector<double> &low = lowPassTaps(wavelet);
    const std::vector<double> high = highPassTaps(wavelet);
    const size_t half = level.approx.size();
    xproAssert(level.detail.size() == half,
               "approx/detail length mismatch");

    std::vector<double> out(2 * half, 0.0);
    for (size_t k = 0; k < half; ++k) {
        for (size_t tap = 0; tap < low.size(); ++tap) {
            const size_t idx = (2 * k + tap) % (2 * half);
            out[idx] += low[tap] * level.approx[k] +
                        high[tap] * level.detail[k];
        }
    }
    return out;
}

void
DwtScratch::decompose(const double *signal, size_t n,
                      Wavelet wavelet, size_t levels)
{
    xproAssert(levels > 0, "need at least one DWT level");
    const size_t divisor = size_t{1} << levels;
    xproAssert(n % divisor == 0,
               "signal length %zu not divisible by 2^%zu", n,
               levels);

    const std::vector<double> &low = lowPassTaps(wavelet);
    const std::vector<double> &high = highPassTapsCached(wavelet);
    const size_t taps = low.size();
    // Periodic extension: tap t reads phase element k + t/2, so the
    // phase buffers carry taps/2 - 1 wrapped elements past the end.
    const size_t ext = taps / 2 - 1;

    // Grow-only sizing; no-ops once the high-water mark is reached.
    if (_coefs.size() < n)
        _coefs.resize(n);
    if (_work.size() < n / 2)
        _work.resize(n / 2);
    if (_evenExt.size() < n / 2 + ext)
        _evenExt.resize(n / 2 + ext);
    if (_oddExt.size() < n / 2 + ext)
        _oddExt.resize(n / 2 + ext);
    if (_detailOffsets.size() < levels)
        _detailOffsets.resize(levels);
    _levels = levels;
    _n = n;

    const double *cur = signal;
    size_t m = n;
    size_t coefCursor = 0;
    for (size_t level = 0; level < levels; ++level) {
        xproAssert(m % 2 == 0, "DWT input length %zu must be even",
                   m);
        xproAssert(m >= taps, "DWT input shorter than filter");
        const size_t half = m / 2;

        // Split into phases; the split copies the input out, so the
        // approximation may safely overwrite it in place below.
        for (size_t k = 0; k < half; ++k) {
            _evenExt[k] = cur[2 * k];
            _oddExt[k] = cur[2 * k + 1];
        }
        for (size_t e = 0; e < ext; ++e) {
            _evenExt[half + e] = _evenExt[e];
            _oddExt[half + e] = _oddExt[e];
        }

        double *detail = _coefs.data() + coefCursor;
        _detailOffsets[level] = coefCursor;
        coefCursor += half;
        double *approx = _work.data();

        // Start each output at 0.0 and add one tap's contribution
        // per pass, in tap order — element-for-element the schedule
        // of dwtStep()'s scalar loop, hence bit-identical (including
        // signed-zero behaviour, which a scale-then-add start would
        // not preserve).
        std::memset(approx, 0, half * sizeof(double));
        std::memset(detail, 0, half * sizeof(double));
        for (size_t tap = 0; tap < taps; ++tap) {
            const double *phase = (tap % 2 == 0 ? _evenExt.data()
                                                : _oddExt.data()) +
                                  tap / 2;
            simdAxpy(approx, phase, low[tap], half);
            simdAxpy(detail, phase, high[tap], half);
        }

        cur = _work.data();
        m = half;
    }

    _approxOffset = coefCursor;
    std::memcpy(_coefs.data() + _approxOffset, cur,
                m * sizeof(double));
}

DwtDecomposition
dwtDecompose(const std::vector<double> &signal, Wavelet wavelet,
             size_t levels)
{
    DwtScratch scratch;
    scratch.decompose(signal.data(), signal.size(), wavelet, levels);

    DwtDecomposition decomp;
    decomp.detail.reserve(levels);
    for (size_t level = 0; level < levels; ++level) {
        const double *d = scratch.detailData(level);
        decomp.detail.emplace_back(d, d + scratch.detailSize(level));
    }
    const double *a = scratch.approxData();
    decomp.approx.assign(a, a + scratch.approxSize());
    return decomp;
}

std::vector<double>
dwtReconstruct(const DwtDecomposition &decomp, Wavelet wavelet)
{
    std::vector<double> current = decomp.approx;
    for (size_t level = decomp.detail.size(); level-- > 0;) {
        DwtLevel step;
        step.approx = std::move(current);
        step.detail = decomp.detail[level];
        current = idwtStep(step, wavelet);
    }
    return current;
}

std::vector<double>
frameForDwt(const std::vector<double> &signal)
{
    std::vector<double> frame(dwtFrameLength, 0.0);
    const size_t n = std::min(signal.size(), dwtFrameLength);
    for (size_t i = 0; i < n; ++i)
        frame[i] = signal[i];
    return frame;
}

} // namespace xpro
