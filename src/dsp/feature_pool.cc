#include "dsp/feature_pool.hh"

#include <algorithm>
#include <array>
#include <limits>

#include "common/logging.hh"
#include "common/simd.hh"

namespace xpro
{

const std::string &
domainName(FeatureDomain domain)
{
    static const std::array<std::string, featureDomainCount> names = {
        "time", "dwt1", "dwt2", "dwt3", "dwt4", "dwt5",
    };
    return names[static_cast<size_t>(domain)];
}

size_t
domainLevel(FeatureDomain domain)
{
    return static_cast<size_t>(domain);
}

size_t
featureIndex(FeatureId id)
{
    return static_cast<size_t>(id.domain) * featureKindCount +
           static_cast<size_t>(id.kind);
}

FeatureId
featureFromIndex(size_t index)
{
    xproAssert(index < featurePoolSize, "feature index %zu out of range",
               index);
    return FeatureId{
        static_cast<FeatureDomain>(index / featureKindCount),
        static_cast<FeatureKind>(index % featureKindCount),
    };
}

std::string
featureFullName(FeatureId id)
{
    return featureName(id.kind) + "@" + domainName(id.domain);
}

FeatureExtractor::FeatureExtractor(Wavelet wavelet)
    : _wavelet(wavelet)
{
}

std::vector<double>
FeatureExtractor::domainSignal(const std::vector<double> &segment,
                               FeatureDomain domain) const
{
    if (domain == FeatureDomain::Time)
        return segment;

    const std::vector<double> frame = frameForDwt(segment);
    const DwtDecomposition decomp =
        dwtDecompose(frame, _wavelet, dwtLevels);
    const size_t level = domainLevel(domain);
    std::vector<double> out = decomp.detail[level - 1];
    if (level == dwtLevels) {
        // Level 5 covers both 4-sample segments: detail and final
        // approximation.
        out.insert(out.end(), decomp.approx.begin(), decomp.approx.end());
    }
    return out;
}

double
FeatureExtractor::extract(const std::vector<double> &segment,
                          FeatureId id) const
{
    return computeFeature(id.kind, domainSignal(segment, id.domain));
}

std::vector<double>
FeatureExtractor::extractAll(const std::vector<double> &segment) const
{
    std::vector<double> out(featurePoolSize, 0.0);
    DwtScratch scratch;
    extractAllInto(segment.data(), segment.size(), out.data(),
                   scratch);
    return out;
}

void
FeatureExtractor::extractAllInto(const double *segment, size_t n,
                                 double *out,
                                 DwtScratch &scratch) const
{
    // Decompose once and reuse across all domains, as the shared DWT
    // cells do in the hardware pipeline. The frame and the dwt5
    // concatenation live on the stack; the decomposition reuses
    // @p scratch — no heap traffic in steady state.
    double frame[dwtFrameLength] = {};
    const size_t copied = std::min(n, dwtFrameLength);
    for (size_t i = 0; i < copied; ++i)
        frame[i] = segment[i];
    scratch.decompose(frame, dwtFrameLength, _wavelet, dwtLevels);

    for (size_t d = 0; d < featureDomainCount; ++d) {
        const auto domain = static_cast<FeatureDomain>(d);
        const double *signal;
        size_t signalLen;
        double dwt5[2 * (dwtFrameLength >> dwtLevels)];
        if (domain == FeatureDomain::Time) {
            // Time-domain statistics run on the RAW segment, not the
            // zero-padded frame.
            signal = segment;
            signalLen = n;
        } else {
            const size_t level = domainLevel(domain);
            signal = scratch.detailData(level - 1);
            signalLen = scratch.detailSize(level - 1);
            if (level == dwtLevels) {
                // Level 5 covers both 4-sample segments: detail and
                // final approximation.
                for (size_t i = 0; i < signalLen; ++i)
                    dwt5[i] = signal[i];
                const double *approx = scratch.approxData();
                for (size_t i = 0; i < scratch.approxSize(); ++i)
                    dwt5[signalLen + i] = approx[i];
                signalLen += scratch.approxSize();
                signal = dwt5;
            }
        }
        // The pool layout is domain-major with kinds in enum order,
        // so the fused per-domain pass writes its eight statistics
        // straight into the pool slice.
        computeAllKindsInto(signal, signalLen,
                            out + d * featureKindCount);
    }
}

void
FeatureExtractor::extractAllPackedInto(const double *const *segments,
                                       size_t count, size_t n,
                                       double *outRows,
                                       DwtScratch &scratch,
                                       Arena &arena) const
{
    xproAssert(count >= 1 && count <= simdPackWidth,
               "bad pack count %zu", count);

    // Domain signal lengths are fixed by the frame length, except
    // the time domain which runs on the raw segment.
    size_t lens[featureDomainCount];
    lens[0] = n;
    for (size_t level = 1; level < dwtLevels; ++level)
        lens[level] = dwtFrameLength >> level;
    lens[dwtLevels] = 2 * (dwtFrameLength >> dwtLevels);

    double *tiles[featureDomainCount];
    for (size_t d = 0; d < featureDomainCount; ++d) {
        tiles[d] = arena.alloc<double>(lens[d] * simdPackWidth);
        // Zero the padding lanes so the packed kernels never see
        // stale arena bytes (NaN/denormal lanes would be slow even
        // though their results are discarded).
        for (size_t i = 0; i < lens[d] && count < simdPackWidth;
             ++i) {
            for (size_t j = count; j < simdPackWidth; ++j)
                tiles[d][i * simdPackWidth + j] = 0.0;
        }
    }

    for (size_t j = 0; j < count; ++j) {
        double frame[dwtFrameLength] = {};
        const size_t copied = std::min(n, dwtFrameLength);
        for (size_t i = 0; i < copied; ++i)
            frame[i] = segments[j][i];
        scratch.decompose(frame, dwtFrameLength, _wavelet,
                          dwtLevels);

        for (size_t i = 0; i < n; ++i)
            tiles[0][i * simdPackWidth + j] = segments[j][i];
        for (size_t level = 1; level <= dwtLevels; ++level) {
            const double *detail = scratch.detailData(level - 1);
            const size_t detailLen = scratch.detailSize(level - 1);
            double *tile = tiles[level];
            for (size_t i = 0; i < detailLen; ++i)
                tile[i * simdPackWidth + j] = detail[i];
            if (level == dwtLevels) {
                // Level 5 covers both 4-sample segments: detail and
                // final approximation.
                const double *approx = scratch.approxData();
                for (size_t i = 0; i < scratch.approxSize(); ++i)
                    tile[(detailLen + i) * simdPackWidth + j] =
                        approx[i];
                xproAssert(detailLen + scratch.approxSize() ==
                               lens[level],
                           "dwt5 length mismatch");
            } else {
                xproAssert(detailLen == lens[level],
                           "dwt%zu length mismatch", level);
            }
        }
    }

    for (size_t d = 0; d < featureDomainCount; ++d)
        computeAllKindsPacked(tiles[d], lens[d], count,
                              outRows + d * featureKindCount,
                              featurePoolSize);
}

void
FeatureScaler::fit(const std::vector<std::vector<double>> &rows)
{
    xproAssert(!rows.empty(), "cannot fit scaler on empty data");
    const size_t cols = rows.front().size();
    _min.assign(cols, std::numeric_limits<double>::infinity());
    _max.assign(cols, -std::numeric_limits<double>::infinity());
    for (const auto &row : rows) {
        xproAssert(row.size() == cols, "ragged feature rows");
        for (size_t c = 0; c < cols; ++c) {
            _min[c] = std::min(_min[c], row[c]);
            _max[c] = std::max(_max[c], row[c]);
        }
    }
}

void
FeatureScaler::fit(const FlatMatrix &rows)
{
    xproAssert(!rows.empty(), "cannot fit scaler on empty data");
    const size_t cols = rows.cols();
    _min.assign(cols, std::numeric_limits<double>::infinity());
    _max.assign(cols, -std::numeric_limits<double>::infinity());
    for (size_t i = 0; i < rows.size(); ++i) {
        const double *row = rows.rowData(i);
        for (size_t c = 0; c < cols; ++c) {
            _min[c] = std::min(_min[c], row[c]);
            _max[c] = std::max(_max[c], row[c]);
        }
    }
}

void
FeatureScaler::transformRowsInPlace(FlatMatrix &rows) const
{
    xproAssert(fitted(), "scaler not fitted");
    xproAssert(rows.cols() == _min.size(), "column count mismatch");
    for (size_t i = 0; i < rows.size(); ++i) {
        double *row = rows.rowData(i);
        for (size_t c = 0; c < rows.cols(); ++c) {
            const double range = _max[c] - _min[c];
            if (range < 1e-12) {
                row[c] = 0.0;
            } else {
                row[c] = std::clamp((row[c] - _min[c]) / range,
                                    0.0, 1.0);
            }
        }
    }
}

std::vector<double>
FeatureScaler::transform(const std::vector<double> &row) const
{
    xproAssert(row.size() == _min.size(), "column count mismatch");
    std::vector<double> out(row.size());
    transformInto(row.data(), out.data());
    return out;
}

void
FeatureScaler::transformInto(const double *row, double *out) const
{
    xproAssert(fitted(), "scaler not fitted");
    for (size_t c = 0; c < _min.size(); ++c) {
        const double range = _max[c] - _min[c];
        if (range < 1e-12) {
            out[c] = 0.0;
        } else {
            out[c] = std::clamp((row[c] - _min[c]) / range, 0.0, 1.0);
        }
    }
}

} // namespace xpro
