#include "dsp/feature_pool.hh"

#include <algorithm>
#include <array>
#include <limits>

#include "common/logging.hh"

namespace xpro
{

const std::string &
domainName(FeatureDomain domain)
{
    static const std::array<std::string, featureDomainCount> names = {
        "time", "dwt1", "dwt2", "dwt3", "dwt4", "dwt5",
    };
    return names[static_cast<size_t>(domain)];
}

size_t
domainLevel(FeatureDomain domain)
{
    return static_cast<size_t>(domain);
}

size_t
featureIndex(FeatureId id)
{
    return static_cast<size_t>(id.domain) * featureKindCount +
           static_cast<size_t>(id.kind);
}

FeatureId
featureFromIndex(size_t index)
{
    xproAssert(index < featurePoolSize, "feature index %zu out of range",
               index);
    return FeatureId{
        static_cast<FeatureDomain>(index / featureKindCount),
        static_cast<FeatureKind>(index % featureKindCount),
    };
}

std::string
featureFullName(FeatureId id)
{
    return featureName(id.kind) + "@" + domainName(id.domain);
}

FeatureExtractor::FeatureExtractor(Wavelet wavelet)
    : _wavelet(wavelet)
{
}

std::vector<double>
FeatureExtractor::domainSignal(const std::vector<double> &segment,
                               FeatureDomain domain) const
{
    if (domain == FeatureDomain::Time)
        return segment;

    const std::vector<double> frame = frameForDwt(segment);
    const DwtDecomposition decomp =
        dwtDecompose(frame, _wavelet, dwtLevels);
    const size_t level = domainLevel(domain);
    std::vector<double> out = decomp.detail[level - 1];
    if (level == dwtLevels) {
        // Level 5 covers both 4-sample segments: detail and final
        // approximation.
        out.insert(out.end(), decomp.approx.begin(), decomp.approx.end());
    }
    return out;
}

double
FeatureExtractor::extract(const std::vector<double> &segment,
                          FeatureId id) const
{
    return computeFeature(id.kind, domainSignal(segment, id.domain));
}

std::vector<double>
FeatureExtractor::extractAll(const std::vector<double> &segment) const
{
    std::vector<double> out(featurePoolSize, 0.0);

    // Decompose once and reuse across all domains, as the shared DWT
    // cells do in the hardware pipeline.
    const std::vector<double> frame = frameForDwt(segment);
    const DwtDecomposition decomp =
        dwtDecompose(frame, _wavelet, dwtLevels);

    for (size_t d = 0; d < featureDomainCount; ++d) {
        const auto domain = static_cast<FeatureDomain>(d);
        std::vector<double> signal;
        if (domain == FeatureDomain::Time) {
            signal = segment;
        } else {
            const size_t level = domainLevel(domain);
            signal = decomp.detail[level - 1];
            if (level == dwtLevels) {
                signal.insert(signal.end(), decomp.approx.begin(),
                              decomp.approx.end());
            }
        }
        const auto values = computeAllFeatures(signal);
        for (size_t k = 0; k < featureKindCount; ++k) {
            out[featureIndex({domain, allFeatureKinds[k]})] = values[k];
        }
    }
    return out;
}

void
FeatureScaler::fit(const std::vector<std::vector<double>> &rows)
{
    xproAssert(!rows.empty(), "cannot fit scaler on empty data");
    const size_t cols = rows.front().size();
    _min.assign(cols, std::numeric_limits<double>::infinity());
    _max.assign(cols, -std::numeric_limits<double>::infinity());
    for (const auto &row : rows) {
        xproAssert(row.size() == cols, "ragged feature rows");
        for (size_t c = 0; c < cols; ++c) {
            _min[c] = std::min(_min[c], row[c]);
            _max[c] = std::max(_max[c], row[c]);
        }
    }
}

void
FeatureScaler::fit(const FlatMatrix &rows)
{
    xproAssert(!rows.empty(), "cannot fit scaler on empty data");
    const size_t cols = rows.cols();
    _min.assign(cols, std::numeric_limits<double>::infinity());
    _max.assign(cols, -std::numeric_limits<double>::infinity());
    for (size_t i = 0; i < rows.size(); ++i) {
        const double *row = rows.rowData(i);
        for (size_t c = 0; c < cols; ++c) {
            _min[c] = std::min(_min[c], row[c]);
            _max[c] = std::max(_max[c], row[c]);
        }
    }
}

void
FeatureScaler::transformRowsInPlace(FlatMatrix &rows) const
{
    xproAssert(fitted(), "scaler not fitted");
    xproAssert(rows.cols() == _min.size(), "column count mismatch");
    for (size_t i = 0; i < rows.size(); ++i) {
        double *row = rows.rowData(i);
        for (size_t c = 0; c < rows.cols(); ++c) {
            const double range = _max[c] - _min[c];
            if (range < 1e-12) {
                row[c] = 0.0;
            } else {
                row[c] = std::clamp((row[c] - _min[c]) / range,
                                    0.0, 1.0);
            }
        }
    }
}

std::vector<double>
FeatureScaler::transform(const std::vector<double> &row) const
{
    xproAssert(fitted(), "scaler not fitted");
    xproAssert(row.size() == _min.size(), "column count mismatch");
    std::vector<double> out(row.size());
    for (size_t c = 0; c < row.size(); ++c) {
        const double range = _max[c] - _min[c];
        if (range < 1e-12) {
            out[c] = 0.0;
        } else {
            out[c] = std::clamp((row[c] - _min[c]) / range, 0.0, 1.0);
        }
    }
    return out;
}

} // namespace xpro
