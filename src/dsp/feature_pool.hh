/**
 * @file
 * The complete candidate feature pool of the generic classification
 * framework: the 8 statistical features evaluated on the time domain
 * and on each of the 5 DWT levels (paper Sections 2.1 and 4.4),
 * 48 features in total. The random-subspace classifier draws its
 * per-base-classifier subsets from this pool, and the XPro topology
 * builder maps every selected feature back to a functional cell.
 */

#ifndef XPRO_DSP_FEATURE_POOL_HH
#define XPRO_DSP_FEATURE_POOL_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/arena.hh"
#include "common/matrix.hh"
#include "dsp/dwt.hh"
#include "dsp/features.hh"

namespace xpro
{

/** Signal domain a feature is computed on. */
enum class FeatureDomain
{
    Time,
    Dwt1,
    Dwt2,
    Dwt3,
    Dwt4,
    Dwt5,
};

/** Number of feature domains (time + 5 DWT levels). */
constexpr size_t featureDomainCount = 6;

/** Number of DWT levels used by the generic framework. */
constexpr size_t dwtLevels = 5;

/** Total number of candidate features in the pool. */
constexpr size_t featurePoolSize = featureDomainCount * featureKindCount;

/** Display name, e.g. "time" or "dwt3". */
const std::string &domainName(FeatureDomain domain);

/** DWT level of a domain (1-based); 0 for the time domain. */
size_t domainLevel(FeatureDomain domain);

/** Identity of one pooled feature. */
struct FeatureId
{
    FeatureDomain domain;
    FeatureKind kind;

    bool operator==(const FeatureId &) const = default;
};

/** Dense index of a feature in [0, featurePoolSize). */
size_t featureIndex(FeatureId id);

/** Inverse of featureIndex(). */
FeatureId featureFromIndex(size_t index);

/** Display name, e.g. "Var@dwt2". */
std::string featureFullName(FeatureId id);

/**
 * Extracts the full 48-feature vector from a segment.
 *
 * The segment is framed to dwtFrameLength samples and decomposed
 * once; each domain's statistics reuse that decomposition, exactly as
 * the shared DWT functional cells do in hardware. The 5th DWT domain
 * covers both 4-sample segments (approximation and detail)
 * concatenated, matching the paper's description.
 */
class FeatureExtractor
{
  public:
    explicit FeatureExtractor(Wavelet wavelet = Wavelet::Db4);

    /** Samples belonging to @p domain for the given segment. */
    std::vector<double> domainSignal(const std::vector<double> &segment,
                                     FeatureDomain domain) const;

    /** Single feature value. */
    double extract(const std::vector<double> &segment, FeatureId id) const;

    /** Full pool vector, indexed by featureIndex(). */
    std::vector<double>
    extractAll(const std::vector<double> &segment) const;

    /**
     * Allocation-free extractAll: writes the featurePoolSize values
     * into @p out, reusing @p scratch for the DWT (zero heap
     * allocations once the scratch reached its high-water mark).
     * Bit-identical to extractAll(), which delegates here.
     */
    void extractAllInto(const double *segment, size_t n, double *out,
                        DwtScratch &scratch) const;

    /**
     * Cross-event extractAll: extracts the full pool for up to
     * simdPackWidth equal-length segments at once, writing segment
     * j's featurePoolSize values to outRows[j * featurePoolSize ..].
     * The DWT still runs per event (into @p scratch), but each
     * domain's signals are transposed into a packed lane tile (drawn
     * from @p arena) and all statistics run through
     * computeAllKindsPacked() — one event per lane, bit-identical to
     * extractAllInto() per segment, with the reduction chains
     * amortized across the group. Allocation-free once @p arena and
     * @p scratch reached their high-water marks.
     */
    void extractAllPackedInto(const double *const *segments,
                              size_t count, size_t n,
                              double *outRows, DwtScratch &scratch,
                              Arena &arena) const;

    Wavelet wavelet() const { return _wavelet; }

  private:
    Wavelet _wavelet;
};

/**
 * Min-max scaler mapping each feature column to [0, 1] with ranges
 * learned on the training set (paper Section 4.4: "all the
 * statistical features are normalized to range [0, 1]").
 */
class FeatureScaler
{
  public:
    /** Learn per-column min/max from row-major feature vectors. */
    void fit(const std::vector<std::vector<double>> &rows);

    /** Learn per-column min/max from a flat feature matrix. */
    void fit(const FlatMatrix &rows);

    /** Scale one vector; columns with zero range map to 0. */
    std::vector<double> transform(const std::vector<double> &row) const;

    /**
     * Allocation-free transform: scales row[0..cols) into out[0..cols)
     * where cols is the fitted column count. @p out may alias @p row.
     */
    void transformInto(const double *row, double *out) const;

    /** Scale every row of a flat feature matrix in place. */
    void transformRowsInPlace(FlatMatrix &rows) const;

    bool fitted() const { return !_min.empty(); }

    /** Learned per-column minima (for quantized inference). */
    const std::vector<double> &mins() const { return _min; }
    /** Learned per-column maxima. */
    const std::vector<double> &maxes() const { return _max; }

  private:
    std::vector<double> _min;
    std::vector<double> _max;
};

} // namespace xpro

#endif // XPRO_DSP_FEATURE_POOL_HH
