/**
 * @file
 * Continuous-stream segmentation.
 *
 * The paper's test cases are pre-segmented (one beat / burst per
 * segment); a deployed wearable receives a continuous sample stream
 * and must extract those segments itself before the analytic engine
 * runs. This module provides the two segmenters such a front-end
 * uses:
 *
 *  - SlidingWindowSegmenter: fixed-length windows with configurable
 *    hop (EEG/EMG-style epoching);
 *  - PeakTriggeredSegmenter: adaptive-threshold peak detection with
 *    a refractory period, emitting a window centred on each detected
 *    peak (ECG-style beat alignment).
 *
 * Both are incremental: push samples as they arrive, pop segments as
 * they complete.
 */

#ifndef XPRO_DSP_SEGMENT_HH
#define XPRO_DSP_SEGMENT_HH

#include <cstddef>
#include <deque>
#include <vector>

namespace xpro
{

/** Fixed-length windows with a configurable hop. */
class SlidingWindowSegmenter
{
  public:
    /**
     * @param window_length Samples per emitted segment.
     * @param hop Samples between consecutive window starts; equal to
     *        window_length for non-overlapping epochs.
     */
    SlidingWindowSegmenter(size_t window_length, size_t hop);

    /** Feed one sample. */
    void push(double sample);

    /** Feed a block of samples. */
    void push(const std::vector<double> &samples);

    /** Completed windows ready to pop. */
    size_t ready() const { return _ready.size(); }

    /** Pop the oldest completed window. */
    std::vector<double> pop();

  private:
    size_t _windowLength;
    size_t _hop;
    size_t _sincePrevious = 0;
    bool _first = true;
    std::deque<double> _history;
    std::deque<std::vector<double>> _ready;
};

/** Configuration of the peak-triggered segmenter. */
struct PeakSegmenterConfig
{
    /** Samples per emitted segment. */
    size_t windowLength = 82;
    /** Fraction of the window placed before the peak. */
    double prePeakFraction = 0.4;
    /** Detection threshold as a multiple of the running RMS. */
    double thresholdRms = 3.0;
    /** Minimum samples between detected peaks (refractory). */
    size_t refractory = 60;
    /** Smoothing factor of the running RMS estimate. */
    double rmsAlpha = 0.005;
    /** Samples used to warm up the RMS estimate before any
     *  detection fires. */
    size_t warmupSamples = 100;
};

/**
 * Adaptive-threshold peak detector emitting peak-centred windows
 * (R-peak-style beat segmentation).
 */
class PeakTriggeredSegmenter
{
  public:
    explicit PeakTriggeredSegmenter(
        const PeakSegmenterConfig &config = {});

    /** Feed one sample. */
    void push(double sample);

    /** Feed a block of samples. */
    void push(const std::vector<double> &samples);

    /** Completed beat windows ready to pop. */
    size_t ready() const { return _ready.size(); }

    /** Pop the oldest completed window. */
    std::vector<double> pop();

    /** Peaks detected so far (including ones still buffering). */
    size_t peaksDetected() const { return _peaksDetected; }

    /** Current adaptive threshold (diagnostics). */
    double threshold() const;

  private:
    void tryEmit();

    PeakSegmenterConfig _config;
    std::deque<double> _history;
    size_t _absoluteIndex = 0;
    size_t _historyStart = 0;
    double _meanSquare = 1e-6;
    size_t _lastPeak = 0;
    bool _hasPeak = false;
    size_t _peaksDetected = 0;
    std::deque<size_t> _pendingPeaks;
    std::deque<std::vector<double>> _ready;
};

} // namespace xpro

#endif // XPRO_DSP_SEGMENT_HH
