/**
 * @file
 * Fixed-point implementations of the statistical feature set.
 *
 * These mirror the Q16.16 datapath of the in-sensor functional cells
 * (paper Section 4.4: 32-bit fixed numbers, 16 integer / 16 decimal
 * bits). Accumulations use wide (64-bit) internal registers, as a
 * synthesized accumulator would, and quantize back to Q16.16 at the
 * cell output. Tests verify each feature tracks the double-precision
 * reference within quantization error.
 */

#ifndef XPRO_DSP_FEATURES_FIXED_HH
#define XPRO_DSP_FEATURES_FIXED_HH

#include <vector>

#include "common/fixed_point.hh"
#include "dsp/features.hh"

namespace xpro
{

/** Quantize a double-precision signal onto the Q16.16 grid. */
std::vector<Fixed> quantizeSignal(const std::vector<double> &signal);

Fixed fixedMax(const std::vector<Fixed> &signal);
Fixed fixedMin(const std::vector<Fixed> &signal);
Fixed fixedMean(const std::vector<Fixed> &signal);
Fixed fixedVar(const std::vector<Fixed> &signal);
Fixed fixedStd(const std::vector<Fixed> &signal);
Fixed fixedCzero(const std::vector<Fixed> &signal);
Fixed fixedSkew(const std::vector<Fixed> &signal);
Fixed fixedKurt(const std::vector<Fixed> &signal);

/** Dispatch by kind. */
Fixed computeFixedFeature(FeatureKind kind,
                          const std::vector<Fixed> &signal);

} // namespace xpro

#endif // XPRO_DSP_FEATURES_FIXED_HH
