/**
 * @file
 * The eight hardware-friendly statistical features of the generic
 * classification framework (paper Section 2.1): Max, Min, Mean, Var,
 * Std, Czero, Skew and Kurt, computed in double precision. The
 * fixed-point datapath the in-sensor cells implement lives in
 * features_fixed.hh; tests check both agree within quantization error.
 */

#ifndef XPRO_DSP_FEATURES_HH
#define XPRO_DSP_FEATURES_HH

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace xpro
{

/** The statistical feature set of the generic framework. */
enum class FeatureKind
{
    Max,
    Min,
    Mean,
    Var,
    Std,
    Czero,
    Skew,
    Kurt,
};

/** Number of distinct statistical features. */
constexpr size_t featureKindCount = 8;

/** All feature kinds in a fixed canonical order. */
constexpr std::array<FeatureKind, featureKindCount> allFeatureKinds = {
    FeatureKind::Max,  FeatureKind::Min,  FeatureKind::Mean,
    FeatureKind::Var,  FeatureKind::Std,  FeatureKind::Czero,
    FeatureKind::Skew, FeatureKind::Kurt,
};

/** Short display name, e.g. "Var". */
const std::string &featureName(FeatureKind kind);

/** Maximal sample value. */
double featureMax(const std::vector<double> &signal);
/** Minimal sample value. */
double featureMin(const std::vector<double> &signal);
/** Arithmetic mean. */
double featureMean(const std::vector<double> &signal);
/** Population variance. */
double featureVar(const std::vector<double> &signal);
/** Population standard deviation. */
double featureStd(const std::vector<double> &signal);
/** Number of zero crossings (sign changes between samples). */
double featureCzero(const std::vector<double> &signal);
/** Skewness E[(x-mu)^3] / sigma^3 (zero for constant signals). */
double featureSkew(const std::vector<double> &signal);
/** Kurtosis E[(x-mu)^4] / sigma^4, non-excess form. */
double featureKurt(const std::vector<double> &signal);

/** Dispatch by kind. */
double computeFeature(FeatureKind kind, const std::vector<double> &signal);

/** Compute all eight features in canonical order. */
std::array<double, featureKindCount>
computeAllFeatures(const std::vector<double> &signal);

} // namespace xpro

#endif // XPRO_DSP_FEATURES_HH
