/**
 * @file
 * The eight hardware-friendly statistical features of the generic
 * classification framework (paper Section 2.1): Max, Min, Mean, Var,
 * Std, Czero, Skew and Kurt, computed in double precision. The
 * fixed-point datapath the in-sensor cells implement lives in
 * features_fixed.hh; tests check both agree within quantization error.
 */

#ifndef XPRO_DSP_FEATURES_HH
#define XPRO_DSP_FEATURES_HH

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace xpro
{

/** The statistical feature set of the generic framework. */
enum class FeatureKind
{
    Max,
    Min,
    Mean,
    Var,
    Std,
    Czero,
    Skew,
    Kurt,
};

/** Number of distinct statistical features. */
constexpr size_t featureKindCount = 8;

/** All feature kinds in a fixed canonical order. */
constexpr std::array<FeatureKind, featureKindCount> allFeatureKinds = {
    FeatureKind::Max,  FeatureKind::Min,  FeatureKind::Mean,
    FeatureKind::Var,  FeatureKind::Std,  FeatureKind::Czero,
    FeatureKind::Skew, FeatureKind::Kurt,
};

/** Short display name, e.g. "Var". */
const std::string &featureName(FeatureKind kind);

/*
 * Each feature exists in two forms: a pointer-span core used by the
 * allocation-free serving hot path, and a std::vector convenience
 * wrapper delegating to it (identical arithmetic, same accumulation
 * order).
 */

/** Maximal sample value. */
double featureMax(const double *signal, size_t n);
double featureMax(const std::vector<double> &signal);
/** Minimal sample value. */
double featureMin(const double *signal, size_t n);
double featureMin(const std::vector<double> &signal);
/** Arithmetic mean. */
double featureMean(const double *signal, size_t n);
double featureMean(const std::vector<double> &signal);
/** Population variance. */
double featureVar(const double *signal, size_t n);
double featureVar(const std::vector<double> &signal);
/** Population standard deviation. */
double featureStd(const double *signal, size_t n);
double featureStd(const std::vector<double> &signal);
/** Number of zero crossings (sign changes between samples). */
double featureCzero(const double *signal, size_t n);
double featureCzero(const std::vector<double> &signal);
/** Skewness E[(x-mu)^3] / sigma^3 (zero for constant signals). */
double featureSkew(const double *signal, size_t n);
double featureSkew(const std::vector<double> &signal);
/** Kurtosis E[(x-mu)^4] / sigma^4, non-excess form. */
double featureKurt(const double *signal, size_t n);
double featureKurt(const std::vector<double> &signal);

/**
 * All featureKindCount statistics of one signal, written to
 * @p out[k] in allFeatureKinds order. Bit-identical to calling
 * computeFeature() per kind — every shared moment (mean, variance,
 * sigma) is produced by the same serial loop the per-kind function
 * runs, and the skew/kurtosis accumulations keep the reference
 * association — but in one fused pass set: the mean and variance
 * loops run once instead of being recomputed by Var/Std/Skew/Kurt,
 * and the two per-element z-score division loops collapse into a
 * single vectorized simdZScore() pass (the dominant cost of the
 * serving feature stage). Allocation-free.
 */
void computeAllKindsInto(const double *signal, size_t n, double *out);

/**
 * Cross-event form of computeAllKindsInto(): @p packed holds up to
 * simdPackWidth independent equal-length signals in the interleaved
 * lane layout of simdPackRows() (packed[i * simdPackWidth + j] =
 * sample i of signal j, padding lanes zero-filled), and all
 * featureKindCount statistics of signal j land in
 * out[j * outStride ..] in allFeatureKinds order, for j <
 * @p lanes. Each lane runs the same serial reduction schedule as
 * computeAllKindsInto() on that signal alone — the packed kernels
 * vectorize ACROSS lanes, never within one — so every lane's eight
 * values are bit-identical to the single-signal path. This is where
 * cross-user batching buys its throughput: the loop-carried
 * accumulator chains that bound the per-event path advance
 * simdPackWidth events per trip.
 */
void computeAllKindsPacked(const double *packed, size_t n,
                           size_t lanes, double *out,
                           size_t outStride);

/** Dispatch by kind. */
double computeFeature(FeatureKind kind, const double *signal,
                      size_t n);
double computeFeature(FeatureKind kind, const std::vector<double> &signal);

/** Compute all eight features in canonical order. */
std::array<double, featureKindCount>
computeAllFeatures(const std::vector<double> &signal);

} // namespace xpro

#endif // XPRO_DSP_FEATURES_HH
