#include "dsp/dwt_fixed.hh"

#include <numbers>

#include "common/logging.hh"

namespace xpro
{

namespace
{

/** Quantize double taps onto the Q16.16 grid. */
std::vector<Fixed>
quantizeTaps(const std::vector<double> &taps)
{
    std::vector<Fixed> out;
    out.reserve(taps.size());
    for (double tap : taps)
        out.push_back(Fixed::fromDouble(tap));
    return out;
}

/** Double-precision analysis taps (shared with dsp/dwt.cc values). */
std::vector<double>
doubleLowPass(Wavelet wavelet)
{
    if (wavelet == Wavelet::Haar) {
        return {1.0 / std::numbers::sqrt2, 1.0 / std::numbers::sqrt2};
    }
    return {0.48296291314469025, 0.83651630373746899,
            0.22414386804185735, -0.12940952255092145};
}

std::vector<double>
doubleHighPass(Wavelet wavelet)
{
    const std::vector<double> low = doubleLowPass(wavelet);
    std::vector<double> high(low.size());
    for (size_t i = 0; i < low.size(); ++i) {
        const double sign = (i % 2 == 0) ? 1.0 : -1.0;
        high[i] = sign * low[low.size() - 1 - i];
    }
    return high;
}

/**
 * One output coefficient: a taps-wide MAC with a 64-bit (Q32.32)
 * accumulator, rounded back to Q16.16 once at the end -- the wide
 * accumulator every synthesized MAC unit provides.
 */
Fixed
macCoefficient(const std::vector<Fixed> &signal, size_t start,
               const std::vector<Fixed> &taps)
{
    int64_t acc_q32 = 0;
    const size_t n = signal.size();
    for (size_t t = 0; t < taps.size(); ++t) {
        const Fixed sample = signal[(start + t) % n];
        acc_q32 += static_cast<int64_t>(sample.raw()) * taps[t].raw();
    }
    const int64_t rounding = int64_t{1} << (Fixed::fracBits - 1);
    const int64_t raw = (acc_q32 + rounding) >> Fixed::fracBits;
    if (raw > std::numeric_limits<int32_t>::max())
        return Fixed::max();
    if (raw < std::numeric_limits<int32_t>::min())
        return Fixed::min();
    return Fixed::fromRaw(static_cast<int32_t>(raw));
}

} // namespace

std::vector<Fixed>
fixedLowPassTaps(Wavelet wavelet)
{
    return quantizeTaps(doubleLowPass(wavelet));
}

std::vector<Fixed>
fixedHighPassTaps(Wavelet wavelet)
{
    return quantizeTaps(doubleHighPass(wavelet));
}

FixedDwtLevel
fixedDwtStep(const std::vector<Fixed> &signal, Wavelet wavelet)
{
    const std::vector<Fixed> low = fixedLowPassTaps(wavelet);
    const std::vector<Fixed> high = fixedHighPassTaps(wavelet);
    const size_t n = signal.size();
    xproAssert(n % 2 == 0, "fixed DWT input length %zu must be even",
               n);
    xproAssert(n >= low.size(), "fixed DWT input shorter than filter");

    FixedDwtLevel out;
    out.approx.reserve(n / 2);
    out.detail.reserve(n / 2);
    for (size_t k = 0; k < n / 2; ++k) {
        out.approx.push_back(macCoefficient(signal, 2 * k, low));
        out.detail.push_back(macCoefficient(signal, 2 * k, high));
    }
    return out;
}

FixedDwtDecomposition
fixedDwtDecompose(const std::vector<Fixed> &signal, Wavelet wavelet,
                  size_t levels)
{
    xproAssert(levels > 0, "need at least one DWT level");
    const size_t divisor = size_t{1} << levels;
    xproAssert(signal.size() % divisor == 0,
               "signal length %zu not divisible by 2^%zu",
               signal.size(), levels);

    FixedDwtDecomposition decomp;
    std::vector<Fixed> current = signal;
    for (size_t level = 0; level < levels; ++level) {
        FixedDwtLevel step = fixedDwtStep(current, wavelet);
        decomp.detail.push_back(std::move(step.detail));
        current = std::move(step.approx);
    }
    decomp.approx = std::move(current);
    return decomp;
}

} // namespace xpro
