/**
 * @file
 * Fixed-point (Q16.16) discrete wavelet transform.
 *
 * This is the datapath the in-sensor DWT cells implement: filter
 * taps quantized onto the Q16.16 grid, MACs accumulated in a wide
 * (64-bit) register and rounded once per output coefficient, exactly
 * like a synthesized MAC unit. Together with features_fixed it
 * closes the hardware-faithful path raw samples -> DWT bands ->
 * statistical features, and tests bound the quantization error
 * against the double-precision reference across all five levels.
 */

#ifndef XPRO_DSP_DWT_FIXED_HH
#define XPRO_DSP_DWT_FIXED_HH

#include <vector>

#include "common/fixed_point.hh"
#include "dsp/dwt.hh"

namespace xpro
{

/** Result of a single fixed-point decomposition level. */
struct FixedDwtLevel
{
    std::vector<Fixed> approx;
    std::vector<Fixed> detail;
};

/** Multi-level fixed-point decomposition. */
struct FixedDwtDecomposition
{
    std::vector<std::vector<Fixed>> detail;
    std::vector<Fixed> approx;
};

/** Analysis filter taps quantized to Q16.16. */
std::vector<Fixed> fixedLowPassTaps(Wavelet wavelet);
std::vector<Fixed> fixedHighPassTaps(Wavelet wavelet);

/**
 * One analysis step with periodic extension on the Q16.16 grid;
 * input length must be even and >= the filter length.
 */
FixedDwtLevel fixedDwtStep(const std::vector<Fixed> &signal,
                           Wavelet wavelet);

/**
 * Decompose @p signal into @p levels levels. The signal length must
 * be divisible by 2^levels.
 */
FixedDwtDecomposition
fixedDwtDecompose(const std::vector<Fixed> &signal, Wavelet wavelet,
                  size_t levels);

} // namespace xpro

#endif // XPRO_DSP_DWT_FIXED_HH
