#include "dsp/features_fixed.hh"

#include <algorithm>

#include "common/logging.hh"

namespace xpro
{

namespace
{

/**
 * Divide a wide Q16.16 accumulator by the sample count, rounding to
 * nearest, and saturate back to a Fixed. This models the wide
 * accumulator register every synthesized mean/variance cell uses.
 */
Fixed
accumulatorToFixed(int64_t acc_raw, size_t n)
{
    const int64_t count = static_cast<int64_t>(n);
    const int64_t half = acc_raw >= 0 ? count / 2 : -(count / 2);
    const int64_t mean_raw = (acc_raw + half) / count;
    if (mean_raw > std::numeric_limits<int32_t>::max())
        return Fixed::max();
    if (mean_raw < std::numeric_limits<int32_t>::min())
        return Fixed::min();
    return Fixed::fromRaw(static_cast<int32_t>(mean_raw));
}

} // namespace

std::vector<Fixed>
quantizeSignal(const std::vector<double> &signal)
{
    std::vector<Fixed> out;
    out.reserve(signal.size());
    for (double v : signal)
        out.push_back(Fixed::fromDouble(v));
    return out;
}

Fixed
fixedMax(const std::vector<Fixed> &signal)
{
    xproAssert(!signal.empty(), "fixed feature on empty signal");
    return *std::max_element(signal.begin(), signal.end());
}

Fixed
fixedMin(const std::vector<Fixed> &signal)
{
    xproAssert(!signal.empty(), "fixed feature on empty signal");
    return *std::min_element(signal.begin(), signal.end());
}

Fixed
fixedMean(const std::vector<Fixed> &signal)
{
    xproAssert(!signal.empty(), "fixed feature on empty signal");
    int64_t acc = 0;
    for (Fixed v : signal)
        acc += v.raw();
    return accumulatorToFixed(acc, signal.size());
}

Fixed
fixedVar(const std::vector<Fixed> &signal)
{
    const Fixed mu = fixedMean(signal);
    // Squared deviations accumulate in Q32.32 inside the wide
    // register, then shift back to Q16.16 after the division.
    int64_t acc_q32 = 0;
    for (Fixed v : signal) {
        const int64_t d = static_cast<int64_t>(v.raw()) - mu.raw();
        acc_q32 += d * d;
    }
    const int64_t count = static_cast<int64_t>(signal.size());
    const int64_t var_q32 = (acc_q32 + count / 2) / count;
    const int64_t var_q16 =
        (var_q32 + (int64_t{1} << (Fixed::fracBits - 1))) >>
        Fixed::fracBits;
    if (var_q16 > std::numeric_limits<int32_t>::max())
        return Fixed::max();
    return Fixed::fromRaw(static_cast<int32_t>(var_q16));
}

Fixed
fixedStd(const std::vector<Fixed> &signal)
{
    // The Std cell reuses the Var cell output and adds one hardware
    // square root (paper Fig. 5).
    return fixedVar(signal).sqrt();
}

Fixed
fixedCzero(const std::vector<Fixed> &signal)
{
    xproAssert(!signal.empty(), "fixed feature on empty signal");
    int32_t crossings = 0;
    for (size_t i = 1; i < signal.size(); ++i) {
        const bool prev_neg = signal[i - 1].raw() < 0;
        const bool cur_neg = signal[i].raw() < 0;
        if (prev_neg != cur_neg)
            ++crossings;
    }
    return Fixed::fromInt(crossings);
}

Fixed
fixedSkew(const std::vector<Fixed> &signal)
{
    const Fixed mu = fixedMean(signal);
    const Fixed sigma = fixedStd(signal);
    if (sigma.raw() <= 1)
        return Fixed();
    int64_t acc = 0;
    for (Fixed v : signal) {
        const Fixed z = (v - mu) / sigma;
        acc += (z * z * z).raw();
    }
    return accumulatorToFixed(acc, signal.size());
}

Fixed
fixedKurt(const std::vector<Fixed> &signal)
{
    const Fixed mu = fixedMean(signal);
    const Fixed sigma = fixedStd(signal);
    if (sigma.raw() <= 1)
        return Fixed();
    int64_t acc = 0;
    for (Fixed v : signal) {
        const Fixed z = (v - mu) / sigma;
        const Fixed z2 = z * z;
        acc += (z2 * z2).raw();
    }
    return accumulatorToFixed(acc, signal.size());
}

Fixed
computeFixedFeature(FeatureKind kind, const std::vector<Fixed> &signal)
{
    switch (kind) {
      case FeatureKind::Max:   return fixedMax(signal);
      case FeatureKind::Min:   return fixedMin(signal);
      case FeatureKind::Mean:  return fixedMean(signal);
      case FeatureKind::Var:   return fixedVar(signal);
      case FeatureKind::Std:   return fixedStd(signal);
      case FeatureKind::Czero: return fixedCzero(signal);
      case FeatureKind::Skew:  return fixedSkew(signal);
      case FeatureKind::Kurt:  return fixedKurt(signal);
    }
    panic("unknown feature kind %d", static_cast<int>(kind));
}

} // namespace xpro
