/**
 * @file
 * Discrete wavelet transform for multi-scale biosignal analysis
 * (paper Sections 2.1 and 4.4).
 *
 * The generic framework extracts the statistical feature set on up to
 * five DWT levels. For the paper's segment sizes the transform runs
 * on a 128-sample frame (inputs are zero-padded or truncated), giving
 * detail lengths 64, 32, 16, 8 and 4, with the 5th level also
 * producing the 4-sample approximation ("the 5-th level has two
 * 4-sample segments").
 */

#ifndef XPRO_DSP_DWT_HH
#define XPRO_DSP_DWT_HH

#include <cstddef>
#include <string>
#include <vector>

namespace xpro
{

/** Supported wavelet families. */
enum class Wavelet
{
    Haar,
    Db4,
};

/** Display name of a wavelet. */
const std::string &waveletName(Wavelet wavelet);

/** Result of a single decomposition level. */
struct DwtLevel
{
    /** Approximation (low-pass) coefficients, length N/2. */
    std::vector<double> approx;
    /** Detail (high-pass) coefficients, length N/2. */
    std::vector<double> detail;
};

/**
 * One DWT analysis step with periodic boundary extension. The input
 * length must be even and >= the filter length.
 *
 * This is the retained scalar reference of the transform: plain
 * per-output tap loops, against which the vectorized decomposition
 * (DwtScratch / dwtDecompose) is differentially tested for exact
 * equality.
 */
DwtLevel dwtStep(const std::vector<double> &signal, Wavelet wavelet);

/** Inverse of dwtStep(); reconstructs the even-length input. */
std::vector<double> idwtStep(const DwtLevel &level, Wavelet wavelet);

/** Multi-level decomposition result. */
struct DwtDecomposition
{
    /** detail[k] holds level k+1 coefficients (length N/2^(k+1)). */
    std::vector<std::vector<double>> detail;
    /** Final approximation at the deepest level. */
    std::vector<double> approx;
};

/**
 * Reusable workspace for allocation-free multi-level DWT on the
 * serving hot path.
 *
 * decompose() splits each level's input into even/odd phase halves
 * (with a periodic extension tail), then builds every output element
 * as a sum of SIMD axpy passes — one per filter tap, in tap order —
 * so each coefficient accumulates exactly like dwtStep()'s scalar
 * tap loop and the results are bit-identical to it.
 *
 * All buffers grow to the workload's high-water mark on first use
 * and are reused afterwards: steady-state decompose() calls perform
 * zero heap allocations. Coefficients live inside the scratch until
 * the next decompose() call; copy them out if they must outlive it.
 */
class DwtScratch
{
  public:
    /**
     * Decompose signal[0..n) into @p levels levels. @p n must be
     * divisible by 2^levels and each level's input at least as long
     * as the filter.
     */
    void decompose(const double *signal, size_t n, Wavelet wavelet,
                   size_t levels);

    /** Number of levels of the last decompose() call. */
    size_t levels() const { return _levels; }

    /** Detail coefficients of level @p level (0-based, matching
     * DwtDecomposition::detail indexing). */
    const double *
    detailData(size_t level) const
    {
        return _coefs.data() + _detailOffsets[level];
    }
    size_t
    detailSize(size_t level) const
    {
        return _n >> (level + 1);
    }

    /** Final approximation at the deepest level. */
    const double *
    approxData() const
    {
        return _coefs.data() + _approxOffset;
    }
    size_t approxSize() const { return _n >> _levels; }

  private:
    std::vector<double> _coefs;   ///< details then final approx
    std::vector<double> _work;    ///< inter-level approx ping buffer
    std::vector<double> _evenExt; ///< even phase + periodic tail
    std::vector<double> _oddExt;  ///< odd phase + periodic tail
    std::vector<size_t> _detailOffsets;
    size_t _approxOffset = 0;
    size_t _levels = 0;
    size_t _n = 0;
};

/**
 * Decompose @p signal into @p levels DWT levels. The signal length
 * must be divisible by 2^levels. Runs on the vectorized DwtScratch
 * path; results are bit-identical to chaining dwtStep().
 */
DwtDecomposition dwtDecompose(const std::vector<double> &signal,
                              Wavelet wavelet, size_t levels);

/** Reconstruct the signal from a full decomposition. */
std::vector<double> dwtReconstruct(const DwtDecomposition &decomp,
                                   Wavelet wavelet);

/**
 * Frame length used by the generic classification engine: inputs are
 * zero-padded or truncated to this power of two before the DWT.
 */
constexpr size_t dwtFrameLength = 128;

/** Pad with zeros or truncate to dwtFrameLength samples. */
std::vector<double> frameForDwt(const std::vector<double> &signal);

} // namespace xpro

#endif // XPRO_DSP_DWT_HH
