/**
 * @file
 * Discrete wavelet transform for multi-scale biosignal analysis
 * (paper Sections 2.1 and 4.4).
 *
 * The generic framework extracts the statistical feature set on up to
 * five DWT levels. For the paper's segment sizes the transform runs
 * on a 128-sample frame (inputs are zero-padded or truncated), giving
 * detail lengths 64, 32, 16, 8 and 4, with the 5th level also
 * producing the 4-sample approximation ("the 5-th level has two
 * 4-sample segments").
 */

#ifndef XPRO_DSP_DWT_HH
#define XPRO_DSP_DWT_HH

#include <cstddef>
#include <string>
#include <vector>

namespace xpro
{

/** Supported wavelet families. */
enum class Wavelet
{
    Haar,
    Db4,
};

/** Display name of a wavelet. */
const std::string &waveletName(Wavelet wavelet);

/** Result of a single decomposition level. */
struct DwtLevel
{
    /** Approximation (low-pass) coefficients, length N/2. */
    std::vector<double> approx;
    /** Detail (high-pass) coefficients, length N/2. */
    std::vector<double> detail;
};

/**
 * One DWT analysis step with periodic boundary extension. The input
 * length must be even and >= the filter length.
 */
DwtLevel dwtStep(const std::vector<double> &signal, Wavelet wavelet);

/** Inverse of dwtStep(); reconstructs the even-length input. */
std::vector<double> idwtStep(const DwtLevel &level, Wavelet wavelet);

/** Multi-level decomposition result. */
struct DwtDecomposition
{
    /** detail[k] holds level k+1 coefficients (length N/2^(k+1)). */
    std::vector<std::vector<double>> detail;
    /** Final approximation at the deepest level. */
    std::vector<double> approx;
};

/**
 * Decompose @p signal into @p levels DWT levels. The signal length
 * must be divisible by 2^levels.
 */
DwtDecomposition dwtDecompose(const std::vector<double> &signal,
                              Wavelet wavelet, size_t levels);

/** Reconstruct the signal from a full decomposition. */
std::vector<double> dwtReconstruct(const DwtDecomposition &decomp,
                                   Wavelet wavelet);

/**
 * Frame length used by the generic classification engine: inputs are
 * zero-padded or truncated to this power of two before the DWT.
 */
constexpr size_t dwtFrameLength = 128;

/** Pad with zeros or truncate to dwtFrameLength samples. */
std::vector<double> frameForDwt(const std::vector<double> &signal);

} // namespace xpro

#endif // XPRO_DSP_DWT_HH
