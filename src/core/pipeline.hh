/**
 * @file
 * End-to-end training pipeline and top-level XPro design entry
 * point: dataset -> feature extraction -> random-subspace training
 * -> engine topology -> Automatic XPro Generator (paper Sections 2,
 * 4.4).
 */

#ifndef XPRO_CORE_PIPELINE_HH
#define XPRO_CORE_PIPELINE_HH

#include <cstdint>

#include "core/evaluator.hh"
#include "core/topology.hh"
#include "data/biosignal.hh"
#include "dsp/feature_pool.hh"
#include "ml/random_subspace.hh"

namespace xpro
{

/** Training options beyond the classifier hyper-parameters. */
struct TrainingOptions
{
    /** Fraction of segments used for training (paper: 75%). */
    double trainFraction = 0.75;
    /**
     * Cap on the number of segments used for training; 0 means use
     * everything. The paper trains on the full sets; the cap exists
     * so tests and quick runs stay fast without changing the code
     * path.
     */
    size_t maxTrainingSegments = 0;
    /** Seed for splitting and subspace sampling. */
    uint64_t seed = 2017;
    /**
     * Worker threads for ensemble candidate training (0 = one per
     * hardware thread, 1 = inline). Results are bit-for-bit
     * identical at any setting.
     */
    size_t mlWorkers = 1;
};

/** A trained classification pipeline plus its quality numbers. */
struct TrainedPipeline
{
    FeatureExtractor extractor;
    FeatureScaler scaler;
    RandomSubspace ensemble;
    /** Accuracy on the held-out test split. */
    double testAccuracy = 0.0;
    /** Accuracy on the training split. */
    double trainAccuracy = 0.0;
    /** Segments in the train/test splits. */
    size_t trainCount = 0;
    size_t testCount = 0;

    /** Classify one raw segment. */
    int classify(const std::vector<double> &segment) const;
};

/** Train the generic classification pipeline on a dataset. */
TrainedPipeline trainPipeline(const SignalDataset &dataset,
                              const EngineConfig &config,
                              const TrainingOptions &options = {});

/** A complete generated XPro design for one dataset. */
struct XProDesign
{
    TrainedPipeline pipeline;
    EngineTopology topology;
    PartitionResult partition;
    EngineConfig config;
};

/**
 * One-call design flow: train the classifier, build the topology,
 * and run the Automatic XPro Generator.
 */
XProDesign designXPro(const SignalDataset &dataset,
                      const EngineConfig &config = {},
                      const TrainingOptions &options = {});

} // namespace xpro

#endif // XPRO_CORE_PIPELINE_HH
