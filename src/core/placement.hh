/**
 * @file
 * A placement assigns every functional cell to the sensor end or
 * the aggregator end; the source node is always at the sensor. The
 * in-sensor analytic part is the true-side, the in-aggregator part
 * the false-side (paper Section 2.2).
 */

#ifndef XPRO_CORE_PLACEMENT_HH
#define XPRO_CORE_PLACEMENT_HH

#include <cstddef>
#include <string>
#include <vector>

#include "core/topology.hh"

namespace xpro
{

/** Per-node end assignment; true = in-sensor. */
class Placement
{
  public:
    Placement() = default;

    /** All cells on one end (the two extreme designs). */
    static Placement allInSensor(const EngineTopology &topology);
    static Placement allInAggregator(const EngineTopology &topology);

    /**
     * The intuitive "trivial cut" of paper Fig. 12: DWT and feature
     * cells in the sensor, classifiers (SVM + fusion) in the
     * aggregator.
     */
    static Placement trivialCut(const EngineTopology &topology);

    /** Build from an explicit per-node boolean vector. */
    static Placement fromMask(const EngineTopology &topology,
                              std::vector<bool> in_sensor);

    bool inSensor(size_t node) const { return _inSensor[node]; }
    size_t size() const { return _inSensor.size(); }

    /** Number of cells (excluding source) placed in the sensor. */
    size_t sensorCellCount() const;

    /** True if any cell reading the raw source sits in the
     *  aggregator, i.e. the raw segment must be transmitted. */
    bool rawDataTransmitted(const EngineTopology &topology) const;

    /** One-line summary, e.g. "5/12 cells in-sensor". */
    std::string summary(const EngineTopology &topology) const;

  private:
    explicit Placement(std::vector<bool> in_sensor)
        : _inSensor(std::move(in_sensor))
    {}

    std::vector<bool> _inSensor;
};

} // namespace xpro

#endif // XPRO_CORE_PLACEMENT_HH
