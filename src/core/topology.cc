#include "core/topology.hh"

#include <algorithm>

#include "common/logging.hh"
#include "hw/cost_cache.hh"
#include "platform/aggregator.hh"

namespace xpro
{

namespace
{

/** Words in DWT level @p level's band consumed by feature cells. */
size_t
dwtFeatureWords(size_t level)
{
    const size_t detail = dwtFrameLength >> level;
    // Level 5 exposes both 4-sample segments (detail + approx).
    return level == dwtLevels ? 2 * detail : detail;
}

/** Samples a feature cell at @p domain processes. */
size_t
domainInputLength(FeatureDomain domain, size_t segment_length)
{
    if (domain == FeatureDomain::Time)
        return segment_length;
    return dwtFeatureWords(domainLevel(domain));
}

} // namespace

EngineTopology
buildEngineTopology(const RandomSubspace &ensemble,
                    size_t segment_length, const EngineConfig &config,
                    double events_per_second)
{
    xproAssert(segment_length >= 2, "segment too short");
    xproAssert(!ensemble.bases().empty(), "ensemble not trained");
    xproAssert(events_per_second > 0.0, "event rate must be positive");

    const Technology &tech = Technology::get(config.process);
    const AggregatorCpu cpu;
    const Energy standby_per_event =
        tech.cellStandbyPower() *
        Time::seconds(1.0 / events_per_second);

    EngineTopology topo;
    topo.segmentLength = segment_length;
    topo.designEventsPerSecond = events_per_second;
    topo.graph = DataflowGraph(segment_length * wordBits);
    topo.cells.resize(1); // placeholder for the source node

    const auto chooseMode = [&](const CellWorkload &workload) {
        switch (config.modePolicy) {
          case ModePolicy::Optimal:
            return cachedBestCellMode(workload, tech);
          case ModePolicy::ForceSerial:
            return AluMode::Serial;
          case ModePolicy::ForceParallel:
            return AluMode::Parallel;
          case ModePolicy::ForcePipeline:
            return AluMode::Pipeline;
        }
        panic("unknown mode policy %d",
              static_cast<int>(config.modePolicy));
    };

    auto addCell = [&](const std::string &name,
                       const CellWorkload &workload, size_t output_bits,
                       CellInfo info) {
        DataflowNode node;
        node.name = name;
        node.outputBits = output_bits;
        const AluMode mode = chooseMode(workload);
        const ModeCosts hw = cachedCellMode(workload, mode, tech);
        const SoftwareCosts sw = cpu.run(workload);
        node.costs.sensorEnergy = hw.energy + standby_per_event;
        node.costs.sensorStandby = tech.cellStandbyPower();
        node.costs.sensorDelay = hw.delay;
        node.costs.aggregatorEnergy = sw.energy;
        node.costs.aggregatorDelay = sw.delay;
        const size_t id = topo.graph.addCell(node);
        info.mode = mode;
        topo.cells.push_back(info);
        xproAssert(topo.cells.size() == topo.graph.nodeCount(),
                   "cell metadata out of sync");
        return id;
    };

    // Which pool features the surviving bases consume.
    const std::vector<size_t> used = ensemble.usedFeatureIndices();
    size_t max_level = 0;
    for (size_t idx : used) {
        max_level = std::max(
            max_level, domainLevel(featureFromIndex(idx).domain));
    }

    // DWT level chain. Level k transforms the level k-1
    // approximation; level 1 reads the framed raw segment.
    topo.dwtNodes.clear();
    for (size_t level = 1; level <= max_level; ++level) {
        const size_t input_len = dwtFrameLength >> (level - 1);
        CellInfo info;
        info.kind = ComponentKind::Dwt;
        info.dwtLevel = level;
        const size_t taps =
            config.wavelet == Wavelet::Haar ? 2 : 4;
        const size_t id =
            addCell("DWT-L" + std::to_string(level),
                    dwtLevelWorkload(input_len, taps),
                    input_len * wordBits, info);
        if (level == 1) {
            // The DWT frame is derived from the same raw segment the
            // time-domain cells read (padding is not transmitted),
            // so this edge carries the raw segment itself and joins
            // the source's single broadcast group.
            topo.graph.addEdge(DataflowGraph::sourceId, id,
                               segment_length * wordBits);
        } else {
            // Approximation band of the previous level.
            topo.graph.addEdge(topo.dwtNodes.back(), id,
                               (dwtFrameLength >> (level - 1)) *
                                   wordBits);
        }
        topo.dwtNodes.push_back(id);
    }

    // Feature cells, with Var-cell reuse for Std (Fig. 5).
    topo.featureNodes.fill(0);
    auto hasFeature = [&](FeatureDomain domain, FeatureKind kind) {
        const size_t idx = featureIndex({domain, kind});
        return std::find(used.begin(), used.end(), idx) != used.end();
    };
    auto domainProducer = [&](FeatureDomain domain) -> size_t {
        if (domain == FeatureDomain::Time)
            return DataflowGraph::sourceId;
        return topo.dwtNodes[domainLevel(domain) - 1];
    };
    auto domainEdgeBits = [&](FeatureDomain domain) -> size_t {
        if (domain == FeatureDomain::Time)
            return segment_length * wordBits;
        return dwtFeatureWords(domainLevel(domain)) * wordBits;
    };

    for (size_t idx : used) {
        const FeatureId id = featureFromIndex(idx);
        const size_t input_len =
            domainInputLength(id.domain, segment_length);

        CellInfo info;
        info.kind = componentForFeature(id.kind);
        info.feature = id;

        size_t node;
        if (config.enableCellReuse && id.kind == FeatureKind::Std &&
            hasFeature(id.domain, FeatureKind::Var)) {
            // Reuse: Std consumes the Var cell output, adds a sqrt.
            node = addCell(featureFullName(id), stdFromVarWorkload(),
                           featureValueBits, info);
            // Var cells are created in pool-index order; Var's index
            // precedes Std's within a domain, so it already exists.
            const size_t var_node =
                topo.featureNodes[featureIndex(
                    {id.domain, FeatureKind::Var})];
            xproAssert(var_node != 0, "Var cell missing for reuse");
            topo.graph.addEdge(var_node, node, featureValueBits);
        } else {
            node = addCell(featureFullName(id),
                           featureCellWorkload(id.kind, input_len),
                           featureValueBits, info);
            topo.graph.addEdge(domainProducer(id.domain), node,
                               domainEdgeBits(id.domain));
        }
        topo.featureNodes[idx] = node;
    }

    // One SVM cell per surviving base classifier.
    topo.svmNodes.clear();
    for (size_t b = 0; b < ensemble.bases().size(); ++b) {
        const BaseClassifier &base = ensemble.bases()[b];
        CellInfo info;
        info.kind = ComponentKind::Svm;
        info.svmIndex = b;
        const size_t sv_count =
            std::max<size_t>(base.model.supportVectorCount(), 1);
        const size_t id = addCell(
            "SVM-" + std::to_string(b + 1),
            svmCellWorkload(base.featureIndices.size(), sv_count),
            featureValueBits, info);
        for (size_t feat : base.featureIndices) {
            const size_t feat_node = topo.featureNodes[feat];
            xproAssert(feat_node != 0, "feature cell %zu missing",
                       feat);
            topo.graph.addEdge(feat_node, id, featureValueBits);
        }
        topo.svmNodes.push_back(id);
    }

    // Weighted-voting score fusion.
    {
        CellInfo info;
        info.kind = ComponentKind::Fusion;
        topo.fusionNode =
            addCell("Fusion",
                    fusionCellWorkload(ensemble.bases().size()),
                    EngineTopology::resultBits, info);
        for (size_t svm : topo.svmNodes)
            topo.graph.addEdge(svm, topo.fusionNode,
                               featureValueBits);
    }

    const std::string error = topo.graph.validate();
    xproAssert(error.empty(), "invalid topology: %s", error.c_str());
    return topo;
}

std::string
describeCell(const EngineTopology &topology, size_t node)
{
    const DataflowNode &n = topology.graph.node(node);
    if (node == DataflowGraph::sourceId)
        return "source (" + std::to_string(n.outputBits) + " bits)";
    const CellInfo &info = topology.cells[node];
    return n.name + " [" + componentName(info.kind) + ", " +
           aluModeName(info.mode) + ", " +
           std::to_string(n.costs.sensorEnergy.nj()) + " nJ hw]";
}

} // namespace xpro
