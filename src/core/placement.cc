#include "core/placement.hh"

#include "common/logging.hh"

namespace xpro
{

Placement
Placement::allInSensor(const EngineTopology &topology)
{
    return Placement(
        std::vector<bool>(topology.graph.nodeCount(), true));
}

Placement
Placement::allInAggregator(const EngineTopology &topology)
{
    std::vector<bool> mask(topology.graph.nodeCount(), false);
    mask[DataflowGraph::sourceId] = true;
    return Placement(std::move(mask));
}

Placement
Placement::trivialCut(const EngineTopology &topology)
{
    std::vector<bool> mask(topology.graph.nodeCount(), false);
    mask[DataflowGraph::sourceId] = true;
    for (size_t node = 1; node < topology.graph.nodeCount(); ++node) {
        const ComponentKind kind = topology.cells[node].kind;
        mask[node] = kind != ComponentKind::Svm &&
                     kind != ComponentKind::Fusion;
    }
    return Placement(std::move(mask));
}

Placement
Placement::fromMask(const EngineTopology &topology,
                    std::vector<bool> in_sensor)
{
    xproAssert(in_sensor.size() == topology.graph.nodeCount(),
               "placement size %zu, topology has %zu nodes",
               in_sensor.size(), topology.graph.nodeCount());
    xproAssert(in_sensor[DataflowGraph::sourceId],
               "the raw-data source lives at the sensor");
    return Placement(std::move(in_sensor));
}

size_t
Placement::sensorCellCount() const
{
    size_t count = 0;
    for (size_t node = 1; node < _inSensor.size(); ++node)
        count += _inSensor[node];
    return count;
}

bool
Placement::rawDataTransmitted(const EngineTopology &topology) const
{
    for (size_t consumer :
         topology.graph.successors(DataflowGraph::sourceId)) {
        if (!_inSensor[consumer])
            return true;
    }
    return false;
}

std::string
Placement::summary(const EngineTopology &topology) const
{
    return std::to_string(sensorCellCount()) + "/" +
           std::to_string(topology.graph.cellCount()) +
           " cells in-sensor" +
           (rawDataTransmitted(topology) ? ", raw data transmitted"
                                         : "");
}

} // namespace xpro
