/**
 * @file
 * The four analytic-engine designs the paper evaluates: the
 * in-aggregator approach (A), the in-sensor approach (S), the
 * intuitive trivial cut between features and classifiers, and the
 * cross-end XPro design produced by the Automatic XPro Generator
 * (Sections 4.4 and 5.5). The single-end designs are the two extreme
 * cuts of the XPro design space.
 */

#ifndef XPRO_CORE_ENGINE_HH
#define XPRO_CORE_ENGINE_HH

#include <array>
#include <string>

#include "core/partitioner.hh"

namespace xpro
{

/** Engine design under comparison. */
enum class EngineKind
{
    InAggregator, ///< "aggregator engine" (A)
    InSensor,     ///< "sensor node engine" (S)
    TrivialCut,   ///< features in-sensor, classifiers in-aggregator
    CrossEnd,     ///< XPro (C)
};

/** All engine kinds in presentation order. */
constexpr std::array<EngineKind, 4> allEngineKinds = {
    EngineKind::InAggregator,
    EngineKind::InSensor,
    EngineKind::TrivialCut,
    EngineKind::CrossEnd,
};

/** Display name, e.g. "cross-end engine (C)". */
const std::string &engineKindName(EngineKind kind);

/** Short tag used in tables: "A", "S", "Trivial" or "C". */
const std::string &engineKindTag(EngineKind kind);

/**
 * The placement realizing an engine kind on a topology. CrossEnd
 * runs the Automatic XPro Generator (delay-constrained).
 */
Placement enginePlacement(EngineKind kind,
                          const EngineTopology &topology,
                          const WirelessLink &link);

} // namespace xpro

#endif // XPRO_CORE_ENGINE_HH
