/**
 * @file
 * Broadcast transfer groups.
 *
 * A producer whose output crosses the wireless link transmits it
 * once; every consumer on the other end hears the same payload. The
 * paper expresses this for the raw source data with the dummy "D"
 * node (Section 3.2.2, "grouped" cells); XPro generalizes the same
 * construction to every fan-out producer. Consumers of one producer
 * are grouped by the payload they read (e.g. a DWT level's detail
 * band vs. its approximation band); each group is one potential
 * broadcast.
 */

#ifndef XPRO_CORE_TRANSFERS_HH
#define XPRO_CORE_TRANSFERS_HH

#include <cstddef>
#include <vector>

#include "core/topology.hh"

namespace xpro
{

/** One potential broadcast: a producer payload and its readers. */
struct BroadcastGroup
{
    size_t producer = 0;
    /** Payload bits on the air if this group crosses the link. */
    size_t bits = 0;
    std::vector<size_t> consumers;
};

/** All broadcast groups of a topology, source node included. */
std::vector<BroadcastGroup>
broadcastGroups(const EngineTopology &topology);

} // namespace xpro

#endif // XPRO_CORE_TRANSFERS_HH
