#include "core/multiclass_topology.hh"

#include <algorithm>

#include "common/logging.hh"
#include "hw/cost_cache.hh"
#include "platform/aggregator.hh"

namespace xpro
{

namespace
{

/** Words in DWT level @p level's band consumed by feature cells. */
size_t
dwtFeatureWords(size_t level)
{
    const size_t detail = dwtFrameLength >> level;
    return level == dwtLevels ? 2 * detail : detail;
}

size_t
domainInputLength(FeatureDomain domain, size_t segment_length)
{
    if (domain == FeatureDomain::Time)
        return segment_length;
    return dwtFeatureWords(domainLevel(domain));
}

} // namespace

EngineTopology
buildMultiClassTopology(const MultiClassSubspace &ensemble,
                        size_t segment_length,
                        const EngineConfig &config,
                        double events_per_second)
{
    xproAssert(segment_length >= 2, "segment too short");
    xproAssert(ensemble.classCount() >= 2, "not a multi-class model");
    xproAssert(events_per_second > 0.0, "event rate must be positive");

    const Technology &tech = Technology::get(config.process);
    const AggregatorCpu cpu;
    const Energy standby_per_event =
        tech.cellStandbyPower() *
        Time::seconds(1.0 / events_per_second);

    EngineTopology topo;
    topo.segmentLength = segment_length;
    topo.graph = DataflowGraph(segment_length * wordBits);
    topo.cells.resize(1);

    auto addCell = [&](const std::string &name,
                       const CellWorkload &workload, size_t output_bits,
                       CellInfo info) {
        DataflowNode node;
        node.name = name;
        node.outputBits = output_bits;
        const AluMode mode = cachedBestCellMode(workload, tech);
        const ModeCosts hw = cachedCellMode(workload, mode, tech);
        const SoftwareCosts sw = cpu.run(workload);
        node.costs.sensorEnergy = hw.energy + standby_per_event;
        node.costs.sensorDelay = hw.delay;
        node.costs.aggregatorEnergy = sw.energy;
        node.costs.aggregatorDelay = sw.delay;
        const size_t id = topo.graph.addCell(node);
        info.mode = mode;
        topo.cells.push_back(info);
        return id;
    };

    // Shared feature cells: union over every class ensemble.
    const std::vector<size_t> used = ensemble.usedFeatureIndices();
    size_t max_level = 0;
    for (size_t idx : used) {
        max_level = std::max(
            max_level, domainLevel(featureFromIndex(idx).domain));
    }

    for (size_t level = 1; level <= max_level; ++level) {
        const size_t input_len = dwtFrameLength >> (level - 1);
        CellInfo info;
        info.kind = ComponentKind::Dwt;
        info.dwtLevel = level;
        const size_t taps =
            config.wavelet == Wavelet::Haar ? 2 : 4;
        const size_t id =
            addCell("DWT-L" + std::to_string(level),
                    dwtLevelWorkload(input_len, taps),
                    input_len * wordBits, info);
        if (level == 1) {
            topo.graph.addEdge(DataflowGraph::sourceId, id,
                               segment_length * wordBits);
        } else {
            topo.graph.addEdge(topo.dwtNodes.back(), id,
                               (dwtFrameLength >> (level - 1)) *
                                   wordBits);
        }
        topo.dwtNodes.push_back(id);
    }

    topo.featureNodes.fill(0);
    auto hasFeature = [&](FeatureDomain domain, FeatureKind kind) {
        const size_t idx = featureIndex({domain, kind});
        return std::find(used.begin(), used.end(), idx) != used.end();
    };
    for (size_t idx : used) {
        const FeatureId id = featureFromIndex(idx);
        CellInfo info;
        info.kind = componentForFeature(id.kind);
        info.feature = id;

        size_t node;
        if (id.kind == FeatureKind::Std &&
            hasFeature(id.domain, FeatureKind::Var)) {
            node = addCell(featureFullName(id), stdFromVarWorkload(),
                           featureValueBits, info);
            const size_t var_node =
                topo.featureNodes[featureIndex(
                    {id.domain, FeatureKind::Var})];
            xproAssert(var_node != 0, "Var cell missing for reuse");
            topo.graph.addEdge(var_node, node, featureValueBits);
        } else {
            const size_t input_len =
                domainInputLength(id.domain, segment_length);
            node = addCell(featureFullName(id),
                           featureCellWorkload(id.kind, input_len),
                           featureValueBits, info);
            if (id.domain == FeatureDomain::Time) {
                topo.graph.addEdge(DataflowGraph::sourceId, node,
                                   segment_length * wordBits);
            } else {
                const size_t level = domainLevel(id.domain);
                topo.graph.addEdge(topo.dwtNodes[level - 1], node,
                                   dwtFeatureWords(level) * wordBits);
            }
        }
        topo.featureNodes[idx] = node;
    }

    // Per-class SVM + fusion cells; class fusions feed the argmax.
    std::vector<size_t> class_fusions;
    for (size_t cls = 0; cls < ensemble.classCount(); ++cls) {
        const RandomSubspace &class_ensemble =
            ensemble.classEnsemble(cls);
        std::vector<size_t> class_svms;
        for (size_t b = 0; b < class_ensemble.bases().size(); ++b) {
            const BaseClassifier &base = class_ensemble.bases()[b];
            CellInfo info;
            info.kind = ComponentKind::Svm;
            info.svmIndex = b;
            info.classIndex = cls;
            const size_t sv_count = std::max<size_t>(
                base.model.supportVectorCount(), 1);
            const size_t id = addCell(
                "SVM-c" + std::to_string(cls) + "-" +
                    std::to_string(b + 1),
                svmCellWorkload(base.featureIndices.size(), sv_count),
                featureValueBits, info);
            for (size_t feat : base.featureIndices) {
                xproAssert(topo.featureNodes[feat] != 0,
                           "feature cell %zu missing", feat);
                topo.graph.addEdge(topo.featureNodes[feat], id,
                                   featureValueBits);
            }
            class_svms.push_back(id);
            topo.svmNodes.push_back(id);
        }

        CellInfo info;
        info.kind = ComponentKind::Fusion;
        info.classIndex = cls;
        const size_t fusion = addCell(
            "Fusion-c" + std::to_string(cls),
            fusionCellWorkload(class_ensemble.bases().size()),
            featureValueBits, info);
        for (size_t svm : class_svms)
            topo.graph.addEdge(svm, fusion, featureValueBits);
        class_fusions.push_back(fusion);
    }

    {
        CellInfo info;
        info.kind = ComponentKind::Argmax;
        topo.fusionNode =
            addCell("Argmax",
                    argmaxCellWorkload(ensemble.classCount()),
                    EngineTopology::resultBits, info);
        for (size_t fusion : class_fusions)
            topo.graph.addEdge(fusion, topo.fusionNode,
                               featureValueBits);
    }

    const std::string error = topo.graph.validate();
    xproAssert(error.empty(), "invalid multi-class topology: %s",
               error.c_str());
    return topo;
}

} // namespace xpro
