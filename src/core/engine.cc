#include "core/engine.hh"

#include "common/logging.hh"

namespace xpro
{

const std::string &
engineKindName(EngineKind kind)
{
    static const std::array<std::string, 4> names = {
        "aggregator engine (A)",
        "sensor node engine (S)",
        "trivial cut",
        "cross-end engine (C)",
    };
    return names[static_cast<size_t>(kind)];
}

const std::string &
engineKindTag(EngineKind kind)
{
    static const std::array<std::string, 4> tags = {
        "A", "S", "Trivial", "C",
    };
    return tags[static_cast<size_t>(kind)];
}

Placement
enginePlacement(EngineKind kind, const EngineTopology &topology,
                const WirelessLink &link)
{
    switch (kind) {
      case EngineKind::InAggregator:
        return Placement::allInAggregator(topology);
      case EngineKind::InSensor:
        return Placement::allInSensor(topology);
      case EngineKind::TrivialCut:
        return Placement::trivialCut(topology);
      case EngineKind::CrossEnd:
        return XProGenerator(topology, link).generate().placement;
    }
    panic("unknown engine kind %d", static_cast<int>(kind));
}

} // namespace xpro
