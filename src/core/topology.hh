/**
 * @file
 * Builds the functional-cell topology graph of a generic
 * classification engine from a trained random-subspace ensemble
 * (paper Section 2.2, Fig. 2).
 *
 * The topology contains exactly the cells the trained classifier
 * needs: the DWT level chain up to the deepest level any selected
 * feature uses, one feature cell per (domain, statistic) the
 * surviving base classifiers consume, one SVM cell per base
 * classifier and a single score-fusion cell ("not all the
 * statistical features are necessarily used ... the number of
 * functional cells is decided by the feature set and random
 * subspace training").
 *
 * Cell-level reuse (Fig. 5) is applied: when both Var and Std exist
 * on a domain, the Std cell consumes the Var cell's output and only
 * contains the square root.
 */

#ifndef XPRO_CORE_TOPOLOGY_HH
#define XPRO_CORE_TOPOLOGY_HH

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/engine_config.hh"
#include "dsp/feature_pool.hh"
#include "graph/dataflow_graph.hh"
#include "hw/cell_library.hh"

namespace xpro
{

/** Role metadata of one topology node. */
struct CellInfo
{
    ComponentKind kind = ComponentKind::Fusion;
    /** Feature identity for feature cells. */
    std::optional<FeatureId> feature;
    /** DWT level (1-based) for DWT cells. */
    size_t dwtLevel = 0;
    /** Base-classifier index for SVM cells. */
    size_t svmIndex = 0;
    /** One-vs-rest class index (multi-class topologies). */
    size_t classIndex = 0;
    /** Chosen (energy-optimal) S-ALU mode of the hardware variant. */
    AluMode mode = AluMode::Serial;
};

/** The complete functional-cell topology of one engine. */
struct EngineTopology
{
    DataflowGraph graph{0};
    /** Metadata per node id (index 0 = source, unused entry). */
    std::vector<CellInfo> cells;
    /** Node id of the fusion (result) cell. */
    size_t fusionNode = 0;
    /** Node ids of the SVM cells, by base index. */
    std::vector<size_t> svmNodes;
    /** Node ids of feature cells by pool index (0 = absent). */
    std::array<size_t, featurePoolSize> featureNodes{};
    /** Node ids of the DWT level cells (level 1 first). */
    std::vector<size_t> dwtNodes;
    /** Samples in the raw segment. */
    size_t segmentLength = 0;
    /**
     * Event rate the per-cell standby shares were amortized at when
     * the topology was built. Runtime adaptation (control/) uses it
     * to re-amortize CellCosts::sensorStandby at an observed rate
     * without rebuilding the topology.
     */
    double designEventsPerSecond = 4.0;

    /** Bits of the final classification result. */
    static constexpr size_t resultBits = featureValueBits;
};

/**
 * Build the engine topology for a trained ensemble.
 *
 * Each cell's in-sensor energy includes its standby share: the
 * input-channel logic of an idle cell keeps listening for the whole
 * event period (Fig. 3), so sensorEnergy = execution energy +
 * standby power / event rate. This makes the cost of parking a cell
 * in the sensor depend on how often events arrive, exactly the
 * trade-off the Automatic XPro Generator explores.
 *
 * @param ensemble Trained random-subspace classifier.
 * @param segment_length Samples per raw segment.
 * @param config Process/wireless/word configuration.
 * @param events_per_second Segment analysis rate of the workload.
 */
EngineTopology buildEngineTopology(const RandomSubspace &ensemble,
                                   size_t segment_length,
                                   const EngineConfig &config,
                                   double events_per_second = 4.0);

/** Human-readable one-line description of a node. */
std::string describeCell(const EngineTopology &topology, size_t node);

} // namespace xpro

#endif // XPRO_CORE_TOPOLOGY_HH
