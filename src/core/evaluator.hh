/**
 * @file
 * Full-system evaluation of a placed engine on a workload: sensor
 * battery lifetime (Figs. 8, 9, 12), delay breakdown (Fig. 10),
 * sensor energy breakdown (Fig. 11) and aggregator overhead
 * (Fig. 13).
 */

#ifndef XPRO_CORE_EVALUATOR_HH
#define XPRO_CORE_EVALUATOR_HH

#include "core/delay_model.hh"
#include "core/energy_model.hh"
#include "core/engine.hh"
#include "platform/aggregator.hh"
#include "platform/sensor_node.hh"

namespace xpro
{

/** Everything measured about one engine on one workload. */
struct EngineEvaluation
{
    EngineKind kind = EngineKind::CrossEnd;
    Placement placement;
    /** Sensor per-event energy by contributor. */
    SensorEnergyBreakdown sensorEnergy;
    /** Aggregator per-event energy by contributor. */
    AggregatorEnergyBreakdown aggregatorEnergy;
    /** End-to-end delay breakdown. */
    DelayBreakdown delay;
    /** Sensor battery lifetime. */
    Time sensorLifetime;
    /** Aggregator battery lifetime if it ran only this engine. */
    Time aggregatorLifetime;
};

/** Workload context: how often events arrive. */
struct WorkloadContext
{
    /** Segments analyzed per second (dataset sample rate / length). */
    double eventsPerSecond = 4.0;
};

/** Evaluate one placement end to end. */
EngineEvaluation
evaluateEngine(EngineKind kind, const EngineTopology &topology,
               const Placement &placement, const WirelessLink &link,
               const SensorNode &sensor, const Aggregator &aggregator,
               const WorkloadContext &workload);

/** Build the placement for @p kind and evaluate it. */
EngineEvaluation
evaluateEngineKind(EngineKind kind, const EngineTopology &topology,
                   const WirelessLink &link, const SensorNode &sensor,
                   const Aggregator &aggregator,
                   const WorkloadContext &workload);

} // namespace xpro

#endif // XPRO_CORE_EVALUATOR_HH
