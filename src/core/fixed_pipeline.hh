/**
 * @file
 * All-fixed-point inference pipeline: what the in-sensor hardware
 * actually computes when every cell of a trained engine runs on the
 * sensor.
 *
 * A TrainedPipeline (double-precision training artifacts) is
 * quantized into Q16.16 form: raw samples are quantized once at the
 * ADC, the DWT bands come from dwt_fixed, every feature from
 * features_fixed, the min-max scaler from quantized (min, 1/range)
 * pairs, the base classifiers from FixedSvm and the weighted voting
 * from quantized fusion weights. Tests bound the end-to-end decision
 * disagreement against the double pipeline — the figure of merit for
 * the paper's 32-bit fixed-number design choice (Section 4.4).
 */

#ifndef XPRO_CORE_FIXED_PIPELINE_HH
#define XPRO_CORE_FIXED_PIPELINE_HH

#include <vector>

#include "core/pipeline.hh"
#include "dsp/dwt_fixed.hh"
#include "dsp/features_fixed.hh"
#include "ml/svm_fixed.hh"

namespace xpro
{

/** Quantized min-max scaler for one feature column. */
struct FixedScalerColumn
{
    Fixed min;
    /** 1 / (max - min); zero for constant columns. */
    Fixed invRange;
};

/** A fully quantized inference pipeline. */
class FixedPipeline
{
  public:
    /** Quantize a trained pipeline. */
    explicit FixedPipeline(const TrainedPipeline &pipeline);

    /** Classify one raw segment entirely on the Q16.16 grid. */
    int classify(const std::vector<double> &segment) const;

    /** The quantized full-pool feature vector of a segment. */
    std::vector<Fixed>
    extractFeatures(const std::vector<double> &segment) const;

    /** Fraction of segments where fixed and double inference agree. */
    static double agreement(const TrainedPipeline &reference,
                            const FixedPipeline &fixed,
                            const SignalDataset &dataset,
                            size_t max_segments = 0);

  private:
    struct FixedBase
    {
        std::vector<size_t> featureIndices;
        FixedSvm model;
    };

    Wavelet _wavelet;
    std::vector<FixedScalerColumn> _scaler;
    std::vector<FixedBase> _bases;
    std::vector<Fixed> _fusionWeights;
    Fixed _fusionBias;
};

} // namespace xpro

#endif // XPRO_CORE_FIXED_PIPELINE_HH
