/**
 * @file
 * Shared configuration of an XPro engine instance: process node,
 * wireless model, data word width and classifier hyper-parameters
 * (paper Section 4.4 defaults).
 */

#ifndef XPRO_CORE_ENGINE_CONFIG_HH
#define XPRO_CORE_ENGINE_CONFIG_HH

#include <cstddef>

#include "dsp/dwt.hh"
#include "hw/technology.hh"
#include "ml/random_subspace.hh"
#include "wireless/transceiver.hh"

namespace xpro
{

/** Word width of raw samples and DWT coefficients on the wire
 *  (paper Section 4.4: 32-bit fixed numbers). */
constexpr size_t wordBits = 32;

/**
 * Wire width of feature values, base-classifier votes and the final
 * result. Features are min-max normalized to [0, 1] (paper Section
 * 4.4), so the 16 fractional bits of the Q16.16 datapath carry their
 * full precision; transmitting the fraction halves the payload of
 * every post-feature transfer.
 */
constexpr size_t featureValueBits = 16;

/**
 * S-ALU mode selection policy for the in-sensor cells. The paper's
 * design rule 2 picks the energy-optimal monotonic mode per
 * component; the forced policies exist for ablation studies.
 */
enum class ModePolicy
{
    Optimal,
    ForceSerial,
    ForceParallel,
    ForcePipeline,
};

/** Full configuration of one engine build. */
struct EngineConfig
{
    ProcessNode process = ProcessNode::Tsmc90;
    WirelessModel wireless = WirelessModel::Model2;
    /** Random-subspace training setup (paper defaults scaled). */
    RandomSubspaceConfig subspace = defaultSubspaceConfig();
    /** Design rule 2: per-component optimal ALU mode. */
    ModePolicy modePolicy = ModePolicy::Optimal;
    /** Design rule 3: Std reuses the Var cell (Fig. 5). */
    bool enableCellReuse = true;
    /** Wavelet family of the DWT cells (paper default: Db4-class). */
    Wavelet wavelet = Wavelet::Db4;

    /** Paper Section 4.4 classifier configuration. */
    static RandomSubspaceConfig
    defaultSubspaceConfig()
    {
        RandomSubspaceConfig config;
        config.subspaceDimension = 12;
        config.candidates = 100;
        config.keepFraction = 0.1;
        config.svm.kernel = {KernelKind::Rbf, 2.0};
        config.svm.c = 10.0;
        return config;
    }
};

} // namespace xpro

#endif // XPRO_CORE_ENGINE_CONFIG_HH
