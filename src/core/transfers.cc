#include "core/transfers.hh"

#include <map>

namespace xpro
{

std::vector<BroadcastGroup>
broadcastGroups(const EngineTopology &topology)
{
    const DataflowGraph &graph = topology.graph;
    std::vector<BroadcastGroup> groups;
    for (size_t u = 0; u < graph.nodeCount(); ++u) {
        std::map<size_t, BroadcastGroup> by_bits;
        for (size_t v : graph.successors(u)) {
            const size_t bits = graph.edgeBits(u, v);
            BroadcastGroup &group = by_bits[bits];
            group.producer = u;
            group.bits = bits;
            group.consumers.push_back(v);
        }
        for (auto &[bits, group] : by_bits)
            groups.push_back(std::move(group));
    }
    return groups;
}

} // namespace xpro
