/**
 * @file
 * Per-event energy model of a placed engine (paper Section 3.2.1,
 * Eq. 1-3): the sensor node pays compute energy for its analytic
 * part, transmission energy for every value crossing to the
 * aggregator (the raw segment is sent once if any of its consumers
 * live there), reception energy for values crossing back, and the
 * final result transfer when the fusion cell sits in the sensor.
 *
 * The s-t graph of the Automatic XPro Generator is constructed from
 * exactly these terms, so a cut's capacity equals the sensor energy
 * computed here (a tested invariant).
 */

#ifndef XPRO_CORE_ENERGY_MODEL_HH
#define XPRO_CORE_ENERGY_MODEL_HH

#include "core/placement.hh"
#include "core/topology.hh"
#include "wireless/link.hh"

namespace xpro
{

/** Sensor-node per-event energy, by contributor (paper Fig. 11). */
struct SensorEnergyBreakdown
{
    /** Functional-cell computation (Ep). */
    Energy compute;
    /** Wireless transmission (part of Ew). */
    Energy tx;
    /** Wireless reception (part of Ew). */
    Energy rx;

    Energy total() const { return compute + tx + rx; }
    Energy wireless() const { return tx + rx; }
};

/** Aggregator per-event energy (paper Fig. 13). */
struct AggregatorEnergyBreakdown
{
    /** Software execution of the in-aggregator analytic part. */
    Energy compute;
    /** The aggregator radio's rx/tx for the inter-end traffic. */
    Energy radio;

    Energy total() const { return compute + radio; }
};

/** Sensor-node energy of one event under a placement. */
SensorEnergyBreakdown
sensorEventEnergy(const EngineTopology &topology,
                  const Placement &placement, const WirelessLink &link);

/** Aggregator energy of one event under a placement. */
AggregatorEnergyBreakdown
aggregatorEventEnergy(const EngineTopology &topology,
                      const Placement &placement,
                      const WirelessLink &link);

} // namespace xpro

#endif // XPRO_CORE_ENERGY_MODEL_HH
