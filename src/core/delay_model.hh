/**
 * @file
 * End-to-end delay model of a placed engine (paper Sections 3.2.3
 * and 5.3): the time to process one event from data availability,
 * through front-end cells, the wireless channel, and back-end cells,
 * to the classification result arriving at the aggregator. Cells
 * execute data-driven, so the delay is the critical path through the
 * placed dataflow graph; inter-end edges add link serialization
 * time.
 */

#ifndef XPRO_CORE_DELAY_MODEL_HH
#define XPRO_CORE_DELAY_MODEL_HH

#include "core/placement.hh"
#include "core/topology.hh"
#include "wireless/link.hh"

namespace xpro
{

/** Delay of one event attributed along the critical path
 *  (paper Fig. 10's stacked bars). */
struct DelayBreakdown
{
    /** In-sensor (front-end) cell processing on the critical path. */
    Time frontCompute;
    /** Wireless transfer time on the critical path. */
    Time wireless;
    /** In-aggregator (back-end) processing on the critical path. */
    Time backCompute;

    Time total() const { return frontCompute + wireless + backCompute; }
};

/** End-to-end delay of one event under a placement. */
DelayBreakdown eventDelay(const EngineTopology &topology,
                          const Placement &placement,
                          const WirelessLink &link);

} // namespace xpro

#endif // XPRO_CORE_DELAY_MODEL_HH
