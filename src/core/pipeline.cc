#include "core/pipeline.hh"

#include <algorithm>

#include "common/logging.hh"
#include "ml/crossval.hh"

namespace xpro
{

int
TrainedPipeline::classify(const std::vector<double> &segment) const
{
    const std::vector<double> raw = extractor.extractAll(segment);
    return ensemble.predict(scaler.transform(raw));
}

TrainedPipeline
trainPipeline(const SignalDataset &dataset, const EngineConfig &config,
              const TrainingOptions &options)
{
    xproAssert(dataset.size() >= 8, "dataset too small to train on");

    TrainedPipeline pipeline;
    pipeline.extractor = FeatureExtractor(config.wavelet);

    // Extract the full 48-feature pool for every segment into one
    // flat row-major matrix.
    FlatMatrix raw_rows;
    std::vector<int> labels;
    raw_rows.reserve(dataset.size());
    labels.reserve(dataset.size());
    for (const Segment &segment : dataset.segments) {
        raw_rows.push_back(
            pipeline.extractor.extractAll(segment.samples));
        labels.push_back(segment.label);
    }

    // Split 75/25 (paper Section 4.4), stratified.
    Rng rng(options.seed);
    const Split split =
        stratifiedSplit(labels, options.trainFraction, rng);
    std::vector<size_t> train_idx = split.trainIndices;
    if (options.maxTrainingSegments > 0 &&
        train_idx.size() > options.maxTrainingSegments) {
        train_idx.resize(options.maxTrainingSegments);
    }

    const auto gather = [&](const std::vector<size_t> &indices) {
        LabeledData out;
        out.rows = FlatMatrix(0, raw_rows.cols());
        out.rows.reserve(indices.size());
        out.labels.reserve(indices.size());
        for (size_t idx : indices) {
            out.rows.push_back(raw_rows.row(idx));
            out.labels.push_back(labels[idx]);
        }
        return out;
    };
    LabeledData train = gather(train_idx);
    LabeledData test = gather(split.testIndices);

    // Min-max normalization fitted on the training rows only.
    pipeline.scaler.fit(train.rows);
    pipeline.scaler.transformRowsInPlace(train.rows);
    if (test.size() > 0)
        pipeline.scaler.transformRowsInPlace(test.rows);

    RandomSubspaceConfig subspace = config.subspace;
    subspace.seed = options.seed ^ 0xABCDEF;
    subspace.workers = options.mlWorkers;
    pipeline.ensemble = RandomSubspace::train(train, subspace);
    pipeline.trainAccuracy = pipeline.ensemble.accuracy(train);
    pipeline.testAccuracy =
        test.size() > 0 ? pipeline.ensemble.accuracy(test) : 0.0;
    pipeline.trainCount = train.size();
    pipeline.testCount = test.size();
    return pipeline;
}

XProDesign
designXPro(const SignalDataset &dataset, const EngineConfig &config,
           const TrainingOptions &options)
{
    XProDesign design;
    design.config = config;
    design.pipeline = trainPipeline(dataset, config, options);
    design.topology = buildEngineTopology(
        design.pipeline.ensemble, dataset.segmentLength, config);
    const WirelessLink link(transceiver(config.wireless));
    design.partition =
        XProGenerator(design.topology, link).generate();
    return design;
}

} // namespace xpro
