#include "core/pipeline.hh"

#include <algorithm>

#include "common/logging.hh"
#include "ml/crossval.hh"

namespace xpro
{

int
TrainedPipeline::classify(const std::vector<double> &segment) const
{
    const std::vector<double> raw = extractor.extractAll(segment);
    return ensemble.predict(scaler.transform(raw));
}

TrainedPipeline
trainPipeline(const SignalDataset &dataset, const EngineConfig &config,
              const TrainingOptions &options)
{
    xproAssert(dataset.size() >= 8, "dataset too small to train on");

    TrainedPipeline pipeline;
    pipeline.extractor = FeatureExtractor(config.wavelet);

    // Extract the full 48-feature pool for every segment.
    std::vector<std::vector<double>> raw_rows;
    std::vector<int> labels;
    raw_rows.reserve(dataset.size());
    labels.reserve(dataset.size());
    for (const Segment &segment : dataset.segments) {
        raw_rows.push_back(
            pipeline.extractor.extractAll(segment.samples));
        labels.push_back(segment.label);
    }

    // Split 75/25 (paper Section 4.4), stratified.
    Rng rng(options.seed);
    const Split split =
        stratifiedSplit(labels, options.trainFraction, rng);
    std::vector<size_t> train_idx = split.trainIndices;
    if (options.maxTrainingSegments > 0 &&
        train_idx.size() > options.maxTrainingSegments) {
        train_idx.resize(options.maxTrainingSegments);
    }

    // Min-max normalization fitted on the training rows only.
    std::vector<std::vector<double>> train_raw;
    train_raw.reserve(train_idx.size());
    for (size_t idx : train_idx)
        train_raw.push_back(raw_rows[idx]);
    pipeline.scaler.fit(train_raw);

    LabeledData train;
    for (size_t idx : train_idx) {
        train.rows.push_back(pipeline.scaler.transform(raw_rows[idx]));
        train.labels.push_back(labels[idx]);
    }
    LabeledData test;
    for (size_t idx : split.testIndices) {
        test.rows.push_back(pipeline.scaler.transform(raw_rows[idx]));
        test.labels.push_back(labels[idx]);
    }

    RandomSubspaceConfig subspace = config.subspace;
    subspace.seed = options.seed ^ 0xABCDEF;
    pipeline.ensemble = RandomSubspace::train(train, subspace);
    pipeline.trainAccuracy = pipeline.ensemble.accuracy(train);
    pipeline.testAccuracy =
        test.size() > 0 ? pipeline.ensemble.accuracy(test) : 0.0;
    pipeline.trainCount = train.size();
    pipeline.testCount = test.size();
    return pipeline;
}

XProDesign
designXPro(const SignalDataset &dataset, const EngineConfig &config,
           const TrainingOptions &options)
{
    XProDesign design;
    design.config = config;
    design.pipeline = trainPipeline(dataset, config, options);
    design.topology = buildEngineTopology(
        design.pipeline.ensemble, dataset.segmentLength, config);
    const WirelessLink link(transceiver(config.wireless));
    design.partition =
        XProGenerator(design.topology, link).generate();
    return design;
}

} // namespace xpro
