/**
 * @file
 * Reporting helpers: CSV emission for the evaluation series so the
 * paper's figures can be re-plotted from machine-readable data, a
 * small fixed-width table writer shared by tools, and the fleet
 * report consumed by the fleet simulation surfaces (CLI, examples,
 * benches, tests).
 */

#ifndef XPRO_CORE_REPORT_HH
#define XPRO_CORE_REPORT_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace xpro
{

/** Accumulates rows and writes RFC-4180-style CSV. */
class CsvTable
{
  public:
    /** Define the header row. */
    explicit CsvTable(std::vector<std::string> columns);

    /** Start a new row; values are appended with add(). */
    CsvTable &beginRow();

    /** Append a string cell (quoted/escaped as needed). */
    CsvTable &add(const std::string &value);

    /** Append a numeric cell. */
    CsvTable &add(double value);
    CsvTable &add(size_t value);

    size_t rowCount() const { return _rows.size(); }

    /** Write header plus rows. Panics on ragged rows. */
    void write(std::ostream &out) const;

    /** Convenience: write to a file path; fatal on I/O failure. */
    void writeFile(const std::string &path) const;

  private:
    static std::string escape(const std::string &value);

    std::vector<std::string> _columns;
    std::vector<std::vector<std::string>> _rows;
};

/**
 * Outcome of one fault-injected run: what the bursty-loss channel,
 * the bounded ARQ and the outage detector did. Plain data filled by
 * the event simulators (sim/, fleet/); disabled (all zeros) when
 * fault injection is off, in which case serializers emit nothing so
 * legacy outputs stay byte-identical.
 *
 * Deterministic: for a fixed fault seed and configuration the
 * report is a pure function of the run, regardless of host worker
 * counts (a tested invariant).
 */
struct RobustnessReport
{
    /** True when a fault profile was active for the run. */
    bool enabled = false;
    /** Payload packets submitted to the ARQ machine (excluding
     *  recovery probes). */
    size_t packetsOffered = 0;
    /** Packets eventually acknowledged. */
    size_t packetsDelivered = 0;
    /** Packets abandoned after exhausting max retries. */
    size_t packetsAbandoned = 0;
    /** Transmission attempts across all packets and probes. */
    size_t attempts = 0;
    /** retryHistogram[r] = packets delivered after r retries. */
    std::vector<size_t> retryHistogram;
    /** Recovery probes sent while the link was declared down. */
    size_t probes = 0;
    /** Events classified via the sensor-local fallback placement. */
    size_t degradedEvents = 0;
    /** Locally classified results still awaiting replay at the end
     *  of the run (link never recovered in time). */
    size_t bufferedResults = 0;
    /** Locally classified results delivered after link recovery. */
    size_t replayedResults = 0;
    /** Outage episodes declared by the K-consecutive-abandon
     *  detector. */
    size_t outages = 0;
    /** Total declared-outage time. */
    double outageTimeMs = 0.0;
    /** Mean local-classification-to-replay-delivery latency over
     *  replayed results. */
    double meanRecoveryMs = 0.0;

    /** Canonical, byte-exact serialization (same rules as
     *  FleetReport::serialize). */
    std::string serialize() const;

    /** Human-readable summary. */
    void writeText(std::ostream &out) const;
};

/**
 * One decision of the runtime-adaptive cross-end controller
 * (control/): what it observed at a control-window boundary and what
 * it did about it.
 */
struct ControlDecision
{
    /** Control-window index the decision closed (0-based). */
    size_t window = 0;
    /** Simulated time of the window boundary. */
    double atMs = 0.0;
    /**
     * What happened: "repartition" (new cut adopted and cells
     * migrated), "retune" (knobs changed but the cut held),
     * "hold" (proposal within the hysteresis band),
     * "dwell" (proposal suppressed by the minimum dwell time) or
     * "steady" (telemetry matched the active operating point).
     */
    std::string action;
    /** Mean ARQ attempts per delivered packet fed to the generator
     *  (1 = nominal channel). */
    double observedScale = 1.0;
    /** Observed event rate fed to the generator (events/s). */
    double observedRate = 0.0;
    /** Battery state of charge at the boundary, 0..1. */
    double stateOfCharge = 0.0;
    /** Duty-cycle level index chosen for the next window. */
    size_t dutyLevel = 0;
    /** In-sensor cells after the decision. */
    size_t sensorCells = 0;
    /** Cells migrated across ends by the handover. */
    size_t movedCells = 0;
    /** Snapshot + drain + cutover energy charged to the sensor. */
    double handoverUj = 0.0;
    /** Airtime the handover occupied on the shared channel. */
    double handoverMs = 0.0;
    /** Relative objective improvement of the adopted (or rejected)
     *  proposal over the active placement, e.g. 0.12 = 12%. */
    double improvement = 0.0;
};

/**
 * Decision trace of one adaptive run. Disabled (empty) when the
 * controller is off, in which case serializers emit nothing so
 * static-path outputs stay byte-identical. Deterministic: for a
 * fixed seed and configuration the trace is a pure function of the
 * run, regardless of host worker counts (a tested invariant).
 */
struct ControlReport
{
    /** True when the adaptive controller drove the run. */
    bool enabled = false;
    /** Control windows evaluated. */
    size_t windows = 0;
    /** Adopted re-partitions (cells actually migrated). */
    size_t repartitions = 0;
    /** Proposals rejected by the hysteresis band. */
    size_t hysteresisHolds = 0;
    /** Proposals suppressed by the minimum dwell time. */
    size_t dwellHolds = 0;
    /** Flow networks built from scratch by the generator. */
    size_t coldSolves = 0;
    /** Warm cut re-solves on the persistent network. */
    size_t warmSolves = 0;
    /** Total handover energy charged to the sensor battery. */
    double handoverTotalUj = 0.0;
    /** Total handover airtime. */
    double handoverTotalMs = 0.0;
    /** Chronological decision trace (one entry per window, up to
     *  the controller's retention cap). */
    std::vector<ControlDecision> decisions;
    /** Decisions beyond the retention cap: counted above but not
     *  retained in @ref decisions (multi-week lifetime runs would
     *  otherwise grow the trace without bound). */
    size_t droppedDecisions = 0;

    /** Canonical, byte-exact serialization (same rules as
     *  FleetReport::serialize). */
    std::string serialize() const;

    /** Human-readable decision trace plus totals. */
    void writeText(std::ostream &out) const;
};

/**
 * Outcome of the fleet's steady-state serving phase: the trained
 * pipelines classifying a round-robin stream of segments through
 * the allocation-free SIMD hot path (serve/), batched across users.
 * Disabled when the run served no events, in which case serializers
 * emit nothing so legacy reports stay byte-identical.
 *
 * Deliberately records only prediction-derived counts — never batch
 * size, worker count or timings — so the serialized report is
 * byte-identical at any --batch-events / --serve-workers setting
 * (the cross-user batching bit-identity invariant, tested).
 */
struct ServingReport
{
    /** True when the run served at least one event. */
    bool enabled = false;
    /** Serving events classified fleet-wide. */
    size_t events = 0;
    /** Fleet nodes (users) the events were drawn from. */
    size_t users = 0;
    /** Events classified +1 fleet-wide. */
    size_t positives = 0;
    /** Per-node events served / +1 classifications. */
    std::vector<size_t> nodeEvents;
    std::vector<size_t> nodePositives;

    /** Canonical, byte-exact serialization (same rules as
     *  FleetReport::serialize). */
    std::string serialize() const;

    /** Human-readable summary. */
    void writeText(std::ostream &out) const;
};

/**
 * Outcome of the hierarchical aggregation tiers in a
 * population-scale fleet run (fleet/tiers, fleet/population):
 * sensor -> phone -> edge gateway -> cloud counters. Disabled (and
 * absent from both serializations) for the detailed per-cell fleet
 * path, so legacy reports stay byte-identical.
 *
 * Deliberately records only simulation-derived counts — never shard
 * or worker counts — so the serialized report is byte-identical at
 * any --shards / --workers setting (a tested invariant).
 */
struct TiersReport
{
    /** True when the run went through the tier hierarchy. */
    bool enabled = false;
    /** Fan-out actually used. */
    size_t sensorsPerPhone = 0;
    size_t phonesPerGateway = 0;
    /** Instantiated tier populations. */
    size_t phones = 0;
    size_t gateways = 0;
    /** Synchronization windows the simulation ran. */
    size_t windows = 0;
    /** Uplinks pushed to a later window for lack of phone compute
     *  or gateway airtime budget. */
    size_t deferredUplinks = 0;
    /** Events that exhausted the defer cap and were classified
     *  locally on the sensor. */
    size_t localFallbacks = 0;
    /** Events suppressed by the sensors' duty-cycle gating. */
    size_t dutySuppressed = 0;
    /** Events bounced by the per-gateway cloud ingest quota. */
    size_t cloudThrottled = 0;
    /** Phone-tier analytics compute actually spent. */
    double phoneBusyMs = 0.0;
    /** Gateway airtime actually occupied. */
    double gatewayBusyMs = 0.0;

    /** Canonical, byte-exact serialization (same rules as
     *  FleetReport::serialize). */
    std::string serialize() const;

    /** Human-readable summary. */
    void writeText(std::ostream &out) const;
};

/**
 * One transition of the deterministic chaos schedule: a gateway
 * crash/restart or a cloud reachability flip, stamped with the
 * window boundary it happened at and the nodes it re-homed.
 */
struct ChaosEpisode
{
    /** Simulated time of the window boundary. */
    double atMs = 0.0;
    /** "crash", "restart", "cloud-down" or "cloud-up". */
    std::string kind;
    /** Gateway the transition hit (0 for cloud transitions). */
    size_t gateway = 0;
    /** Nodes migrated (failover) or failed back (restart) by the
     *  transition's self-healing response. */
    size_t nodes = 0;
};

/**
 * Outcome of a population run under the deterministic chaos layer
 * (fleet/chaos): injected failures, the self-healing responses they
 * triggered, and the degradation ladder's per-rung counts. Disabled
 * (and absent from both serializations) when chaos is off, so
 * chaos-free reports stay byte-identical to the pre-chaos output.
 *
 * Like TiersReport, records only simulation-derived counts — never
 * shard or worker counts — so the serialization is byte-identical at
 * any --shards / --workers combination (a tested invariant).
 */
struct ChaosReport
{
    /** True when a chaos schedule drove the run. */
    bool enabled = false;
    /** Injected gateway transitions. */
    size_t gatewayCrashes = 0;
    size_t gatewayRestarts = 0;
    /** Crashes that found a live neighbor gateway to fail over to
     *  (the remainder were total blackouts). */
    size_t failovers = 0;
    /** Node re-homings, failover and fail-back combined. */
    size_t migratedNodes = 0;
    /** Nodes returned to their restarted native gateway. */
    size_t failbackNodes = 0;
    /** Pending event-queue items re-keyed to a new gateway's shard
     *  by migrations. */
    size_t rekeyedItems = 0;
    /** Deferred events re-scheduled by the exponential-backoff
     *  retry path (chaos runs retry instead of window-parking). */
    size_t retries = 0;
    /** In-flight transport events dropped when their node churned
     *  out (the queue's documented drop side of the contract). */
    size_t droppedEvents = 0;
    /** Sensing self-events parked until their node rejoins (the
     *  redirect side of the contract). */
    size_t parkedInjects = 0;
    /** Events sensed late — after a churn absence — and replayed. */
    size_t replayedEvents = 0;
    /** Events completed by gateway-local aggregation while the
     *  cloud tier was unreachable (degradation rung 1). */
    size_t gatewayLocalEvents = 0;
    /** Events classified sensor-locally because every reachable
     *  gateway was down (degradation rung 2). */
    size_t blackoutFallbacks = 0;
    /** Churn transitions actually applied. */
    size_t churnLeaves = 0;
    size_t churnJoins = 0;
    /** Per-tier downtime: sum over windows of down gateways, and
     *  windows the cloud was unreachable. */
    size_t gatewayDownWindows = 0;
    size_t cloudDownWindows = 0;
    /** Worst consecutive-failure streak any node accumulated. */
    size_t maxOutageStreak = 0;
    /** Total handover penalty charged to re-keyed items. */
    double handoverMs = 0.0;
    /** Chronological transition trace, up to the retention cap. */
    std::vector<ChaosEpisode> episodes;
    /** Transitions beyond the cap: counted above, not retained. */
    size_t droppedEpisodes = 0;

    /** Canonical, byte-exact serialization (same rules as
     *  FleetReport::serialize). */
    std::string serialize() const;

    /** Human-readable summary. */
    void writeText(std::ostream &out) const;
};

/**
 * One node's line in a fleet report. Plain data (names and SI-scaled
 * numbers) so the report stays independent of the fleet subsystem's
 * types and serializes canonically.
 */
struct FleetNodeReportRow
{
    /** Test-case symbol, e.g. "C1". */
    std::string symbol;
    /** Process node of the in-sensor part, e.g. "90 nm". */
    std::string process;
    /** Admission outcome: "offload", "repartition" or "in-sensor". */
    std::string admission;
    /** Cells placed in the sensor / total cells. */
    size_t sensorCells = 0;
    size_t totalCells = 0;
    /** Held-out classification accuracy. */
    double accuracy = 0.0;
    /** Event (segment) rate of the node. */
    double eventsPerSecond = 0.0;
    /** Sensor battery lifetime under the admitted placement. */
    double sensorLifetimeHours = 0.0;
    /** Simulated events and real-time deadline misses. */
    size_t events = 0;
    size_t deadlineMisses = 0;
    /** Simulated completion latencies. */
    double meanLatencyMs = 0.0;
    double worstLatencyMs = 0.0;
    /** Aggregator analytics power the node was admitted with. */
    double aggregatorPowerUw = 0.0;
    /** Events this node classified via its local fallback (only
     *  nonzero in fault-injected runs). */
    size_t degradedEvents = 0;
};

/**
 * Fleet-level results of one many-node simulation: per-node rows
 * plus shared-resource (radio, aggregator) figures.
 *
 * The report is a pure function of the fleet configuration: the
 * design phase may run on any number of worker threads and
 * serialize() must still produce byte-identical output (a tested
 * invariant).
 */
struct FleetReport
{
    /** Radio arbitration policy tag ("fcfs" or "tdma"). */
    std::string policy;
    size_t nodeCount = 0;
    size_t totalEvents = 0;
    size_t totalDeadlineMisses = 0;
    /** Simulated time span (last completion). */
    double spanMs = 0.0;
    /** Shared-channel occupancy. */
    double radioBusyMs = 0.0;
    /** radioBusy / span. */
    double radioOccupancy = 0.0;
    size_t transfers = 0;
    /** Aggregator CPU busy time in the event simulation. */
    double aggregatorBusyMs = 0.0;
    /** aggregatorBusy / span. */
    double aggregatorUtilization = 0.0;
    /** Admitted aggregator CPU share (analytic, steady state). */
    double aggregatorCpuShare = 0.0;
    /** Admitted aggregator analytics power. */
    double aggregatorPowerUw = 0.0;
    /** Aggregator battery lifetime under the analytics load. */
    double aggregatorLifetimeHours = 0.0;
    std::vector<FleetNodeReportRow> rows;
    /** Fault-injection outcome; disabled (and absent from both
     *  serializations) when the run had no fault profile. */
    RobustnessReport robustness;
    /** Adaptive-controller outcome, merged over the fleet's nodes;
     *  disabled (and absent) when the controller was off. */
    ControlReport control;
    /** Steady-state serving outcome; disabled (and absent) when the
     *  run served no events. */
    ServingReport serving;
    /** Aggregation-tier outcome of a population-scale run; disabled
     *  (and absent) on the detailed per-cell fleet path. */
    TiersReport tiers;
    /** Chaos-layer outcome of a population-scale run; disabled (and
     *  absent) when no chaos schedule was active. */
    ChaosReport chaos;

    /**
     * Canonical, byte-exact serialization: fixed formats, no
     * locale, no timestamps. Equal reports serialize equally; the
     * determinism tests compare these bytes across worker counts.
     */
    std::string serialize() const;

    /** Human-readable fixed-width summary plus per-node table. */
    void writeText(std::ostream &out) const;

    /** Per-node CSV (one row per fleet node). */
    CsvTable csv() const;
};

} // namespace xpro

#endif // XPRO_CORE_REPORT_HH
