/**
 * @file
 * Reporting helpers: CSV emission for the evaluation series so the
 * paper's figures can be re-plotted from machine-readable data, and
 * a small fixed-width table writer shared by tools.
 */

#ifndef XPRO_CORE_REPORT_HH
#define XPRO_CORE_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

namespace xpro
{

/** Accumulates rows and writes RFC-4180-style CSV. */
class CsvTable
{
  public:
    /** Define the header row. */
    explicit CsvTable(std::vector<std::string> columns);

    /** Start a new row; values are appended with add(). */
    CsvTable &beginRow();

    /** Append a string cell (quoted/escaped as needed). */
    CsvTable &add(const std::string &value);

    /** Append a numeric cell. */
    CsvTable &add(double value);
    CsvTable &add(size_t value);

    size_t rowCount() const { return _rows.size(); }

    /** Write header plus rows. Panics on ragged rows. */
    void write(std::ostream &out) const;

    /** Convenience: write to a file path; fatal on I/O failure. */
    void writeFile(const std::string &path) const;

  private:
    static std::string escape(const std::string &value);

    std::vector<std::string> _columns;
    std::vector<std::vector<std::string>> _rows;
};

} // namespace xpro

#endif // XPRO_CORE_REPORT_HH
