#include "core/delay_model.hh"

#include <algorithm>

#include "common/logging.hh"
#include "graph/topo.hh"

namespace xpro
{

namespace
{

/** Cell processing time under the placement. */
Time
nodeDelay(const EngineTopology &topology, const Placement &placement,
          size_t node)
{
    if (node == DataflowGraph::sourceId)
        return Time();
    const CellCosts &costs = topology.graph.node(node).costs;
    return placement.inSensor(node) ? costs.sensorDelay
                                    : costs.aggregatorDelay;
}

/** Link time charged on edge (u, v) under the placement. */
Time
edgeDelay(const EngineTopology &topology, const Placement &placement,
          const WirelessLink &link, size_t u, size_t v)
{
    // Crossing edges cost one payload serialization. Fan-out is a
    // broadcast: every consumer of the same payload sees the same
    // arrival time, which the critical path combines with max, so
    // charging the payload on each crossing edge is exact.
    if (placement.inSensor(u) == placement.inSensor(v))
        return Time();
    return link.transfer(topology.graph.edgeBits(u, v)).airTime;
}

} // namespace

DelayBreakdown
eventDelay(const EngineTopology &topology, const Placement &placement,
           const WirelessLink &link)
{
    const DataflowGraph &graph = topology.graph;

    const auto node_fn = [&](size_t node) {
        return nodeDelay(topology, placement, node);
    };
    const auto edge_fn = [&](size_t u, size_t v) {
        return edgeDelay(topology, placement, link, u, v);
    };
    const std::vector<Time> done =
        completionTimes(graph, node_fn, edge_fn);

    // Backtrack the critical path from the fusion cell, attributing
    // each element to front-end compute, wireless, or back-end
    // compute.
    DelayBreakdown out;
    size_t node = topology.fusionNode;
    while (true) {
        const Time own = nodeDelay(topology, placement, node);
        if (node != DataflowGraph::sourceId) {
            if (placement.inSensor(node))
                out.frontCompute += own;
            else
                out.backCompute += own;
        }
        if (graph.predecessors(node).empty())
            break;
        // The predecessor whose arrival set this node's start time.
        size_t critical_pred = graph.predecessors(node).front();
        Time best_arrival;
        bool first = true;
        for (size_t p : graph.predecessors(node)) {
            const Time arrival = done[p] + edge_fn(p, node);
            if (first || arrival > best_arrival) {
                best_arrival = arrival;
                critical_pred = p;
                first = false;
            }
        }
        out.wireless += edge_fn(critical_pred, node);
        node = critical_pred;
    }

    // Result delivery to the aggregator.
    if (placement.inSensor(topology.fusionNode)) {
        out.wireless +=
            link.transfer(EngineTopology::resultBits).airTime;
    }
    return out;
}

} // namespace xpro
