#include "core/evaluator.hh"

#include "common/logging.hh"

namespace xpro
{

EngineEvaluation
evaluateEngine(EngineKind kind, const EngineTopology &topology,
               const Placement &placement, const WirelessLink &link,
               const SensorNode &sensor, const Aggregator &aggregator,
               const WorkloadContext &workload)
{
    xproAssert(workload.eventsPerSecond > 0.0,
               "event rate must be positive");

    EngineEvaluation eval;
    eval.kind = kind;
    eval.placement = placement;
    eval.sensorEnergy = sensorEventEnergy(topology, placement, link);
    eval.aggregatorEnergy =
        aggregatorEventEnergy(topology, placement, link);
    eval.delay = eventDelay(topology, placement, link);
    eval.sensorLifetime = sensor.lifetime(
        eval.sensorEnergy.total(), workload.eventsPerSecond);
    eval.aggregatorLifetime = aggregator.lifetime(
        eval.aggregatorEnergy.total(), workload.eventsPerSecond);
    return eval;
}

EngineEvaluation
evaluateEngineKind(EngineKind kind, const EngineTopology &topology,
                   const WirelessLink &link, const SensorNode &sensor,
                   const Aggregator &aggregator,
                   const WorkloadContext &workload)
{
    return evaluateEngine(kind, topology,
                          enginePlacement(kind, topology, link), link,
                          sensor, aggregator, workload);
}

} // namespace xpro
