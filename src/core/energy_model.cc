#include "core/energy_model.hh"

#include "core/transfers.hh"

namespace xpro
{

SensorEnergyBreakdown
sensorEventEnergy(const EngineTopology &topology,
                  const Placement &placement, const WirelessLink &link)
{
    const DataflowGraph &graph = topology.graph;
    SensorEnergyBreakdown out;

    // Compute energy of the in-sensor analytic part.
    for (size_t node = 1; node < graph.nodeCount(); ++node) {
        if (placement.inSensor(node))
            out.compute += graph.node(node).costs.sensorEnergy;
    }

    // Broadcast transfers: each producer payload crosses the link at
    // most once per direction, regardless of fan-out (the paper's
    // "grouped" source-data rule, applied to every producer).
    for (const BroadcastGroup &group : broadcastGroups(topology)) {
        bool consumer_in_sensor = false;
        bool consumer_in_aggregator = false;
        for (size_t v : group.consumers) {
            if (placement.inSensor(v))
                consumer_in_sensor = true;
            else
                consumer_in_aggregator = true;
        }
        if (placement.inSensor(group.producer)) {
            if (consumer_in_aggregator)
                out.tx += link.transfer(group.bits).txEnergy;
        } else if (consumer_in_sensor) {
            out.rx += link.transfer(group.bits).rxEnergy;
        }
    }

    // The classification result always ends at the aggregator.
    if (placement.inSensor(topology.fusionNode)) {
        out.tx +=
            link.transfer(EngineTopology::resultBits).txEnergy;
    }
    return out;
}

AggregatorEnergyBreakdown
aggregatorEventEnergy(const EngineTopology &topology,
                      const Placement &placement,
                      const WirelessLink &link)
{
    const DataflowGraph &graph = topology.graph;
    AggregatorEnergyBreakdown out;

    for (size_t node = 1; node < graph.nodeCount(); ++node) {
        if (!placement.inSensor(node))
            out.compute += graph.node(node).costs.aggregatorEnergy;
    }

    // The aggregator's radio mirrors the sensor's transfers: it
    // receives what the sensor transmits and transmits what the
    // sensor receives (same transceiver class on both ends).
    for (const BroadcastGroup &group : broadcastGroups(topology)) {
        bool consumer_in_sensor = false;
        bool consumer_in_aggregator = false;
        for (size_t v : group.consumers) {
            if (placement.inSensor(v))
                consumer_in_sensor = true;
            else
                consumer_in_aggregator = true;
        }
        if (placement.inSensor(group.producer)) {
            if (consumer_in_aggregator)
                out.radio += link.transfer(group.bits).rxEnergy;
        } else if (consumer_in_sensor) {
            out.radio += link.transfer(group.bits).txEnergy;
        }
    }
    if (placement.inSensor(topology.fusionNode)) {
        out.radio +=
            link.transfer(EngineTopology::resultBits).rxEnergy;
    }
    return out;
}

} // namespace xpro
