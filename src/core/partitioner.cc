#include "core/partitioner.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "common/worker_pool.hh"
#include "core/transfers.hh"

namespace xpro
{

namespace
{

/** Node layout inside the s-t graph. */
constexpr size_t nodeF = 0; ///< front-end (sensor) terminal
constexpr size_t nodeB = 1; ///< back-end (aggregator) terminal
constexpr size_t cellBase = 2;

} // namespace

/**
 * The generator's persistent s-t graph. Capacities are affine in the
 * sweep parameters — capacity = energy + lambda * delay, with the
 * F -> cell penalty edges' energy term scaling with the
 * aggregator-energy weight — so re-solving at another sweep point is
 * a batch of updateCapacity() calls plus a warm resumeMinCut().
 */
struct XProGenerator::SweepNetwork
{
    /** One finite edge and its cost attributes. */
    struct SweepEdge
    {
        size_t id = 0;
        /** Energy term in joules (penalty edges: weighted). */
        double energyJ = 0.0;
        /** Delay term in seconds, scaled by lambda. */
        double delaySec = 0.0;
    };

    /** F -> cell penalty edge: index into edges + raw energy. */
    struct PenaltyEdge
    {
        size_t edgeIndex = 0;
        /** Unweighted aggregator software energy in joules. */
        double aggregatorEnergyJ = 0.0;
    };

    /** cell -> B edge: execution energy + standby share by rate. */
    struct CellEdge
    {
        size_t edgeIndex = 0;
        /** Execution-only energy in joules (standby stripped). */
        double executionJ = 0.0;
        /** Input-channel standby draw in watts. */
        double standbyW = 0.0;
    };

    FlowNetwork net{0};
    std::vector<SweepEdge> edges;
    std::vector<PenaltyEdge> penaltyEdges;
    /** Indices (into edges) of tx/rx/result transfer edges, whose
     *  energy terms scale with the observed channel cost. */
    std::vector<size_t> transferEdges;
    /** Nominal energy of each transfer edge (scale == 1). */
    std::vector<double> transferBaseJ;
    std::vector<CellEdge> cellEdges;
    size_t cells = 0;
    double lambda = 0.0;
};

XProGenerator::XProGenerator(const EngineTopology &topology,
                             const WirelessLink &link,
                             const GeneratorOptions &options)
    : _topology(topology), _link(link), _options(options)
{}

XProGenerator::~XProGenerator() = default;

XProGenerator::SweepNetwork &
XProGenerator::sweep() const
{
    if (_sweep)
        return *_sweep;

    auto sweep = std::make_unique<SweepNetwork>();
    const DataflowGraph &graph = _topology.graph;
    sweep->cells = graph.nodeCount(); // includes source slot
    sweep->net = FlowNetwork(cellBase + sweep->cells);
    FlowNetwork &net = sweep->net;

    // Edges start at their lambda == 0 capacity; solves at other
    // sweep points update them before solving.
    const auto track = [&](size_t u, size_t v, Energy e, Time t) {
        SweepNetwork::SweepEdge edge;
        edge.id = net.addEdge(u, v, e.j());
        edge.energyJ = e.j();
        edge.delaySec = t.sec();
        sweep->edges.push_back(edge);
        return sweep->edges.size() - 1;
    };
    /** track() + register as a channel-scaled transfer edge. */
    const auto trackTransfer = [&](size_t u, size_t v, Energy e,
                                   Time t) {
        const size_t index = track(u, v, e, t);
        sweep->transferEdges.push_back(index);
        sweep->transferBaseJ.push_back(e.j());
        return index;
    };

    // The raw-data source is pinned to the sensor: it is terminal F.
    const auto mapped = [](size_t node) {
        return node == DataflowGraph::sourceId ? nodeF
                                               : cellBase + node;
    };

    const double design_rate = _topology.designEventsPerSecond;
    for (size_t u = 1; u < sweep->cells; ++u) {
        const DataflowNode &node = graph.node(u);
        // cell -> B: the cell's in-sensor execution cost. The
        // standby share baked into sensorEnergy is amortized at the
        // topology's design rate; recording it separately lets
        // setEventRate() re-amortize without a rebuild.
        SweepNetwork::CellEdge cell;
        cell.edgeIndex = track(cellBase + u, nodeB,
                               node.costs.sensorEnergy,
                               node.costs.sensorDelay);
        cell.standbyW = node.costs.sensorStandby.w();
        cell.executionJ = node.costs.sensorEnergy.j() -
                          cell.standbyW / design_rate;
        sweep->cellEdges.push_back(cell);
        // Placing the cell in the aggregator instead costs software
        // time and, under an admission-control penalty, weighted
        // software energy. Charge both on the F -> cell side so the
        // Lagrangian can trade both directions; with lambda == 0 and
        // no penalty this edge is zero and never cut.
        SweepNetwork::PenaltyEdge penalty;
        penalty.edgeIndex = track(
            nodeF, cellBase + u,
            node.costs.aggregatorEnergy *
                _options.aggregatorEnergyWeight,
            node.costs.aggregatorDelay);
        penalty.aggregatorEnergyJ =
            node.costs.aggregatorEnergy.j();
        sweep->penaltyEdges.push_back(penalty);
    }

    // Broadcast groups: one dummy node pair per producer payload,
    // generalizing the paper's dummy "D" node (for the raw source
    // data this construction *is* the paper's F -> D edge plus
    // infinite D -> consumer edges).
    for (const BroadcastGroup &group : broadcastGroups(_topology)) {
        const TransferCost transfer = _link.transfer(group.bits);

        // Transmit dummy: if any consumer is in the aggregator while
        // the producer is in the sensor, the payload crosses once.
        const size_t tx_node = net.addNode();
        trackTransfer(mapped(group.producer), tx_node,
                      transfer.txEnergy, transfer.airTime);
        for (size_t v : group.consumers) {
            net.addEdge(tx_node, mapped(v),
                        FlowNetwork::infiniteCapacity());
        }

        // Receive dummy: if any consumer is in the sensor while the
        // producer is in the aggregator, the sensor receives once.
        // The source is always in the sensor, so it needs none.
        if (group.producer != DataflowGraph::sourceId) {
            const size_t rx_node = net.addNode();
            trackTransfer(rx_node, mapped(group.producer),
                          transfer.rxEnergy, transfer.airTime);
            for (size_t v : group.consumers) {
                net.addEdge(mapped(v), rx_node,
                            FlowNetwork::infiniteCapacity());
            }
        }
    }

    // The result always ends at the aggregator: keeping the fusion
    // cell in the sensor costs one result transfer.
    const TransferCost result =
        _link.transfer(EngineTopology::resultBits);
    trackTransfer(cellBase + _topology.fusionNode, nodeB,
                  result.txEnergy, result.airTime);

    _sweep = std::move(sweep);
    ++_coldSolves;
    // Apply any runtime-adaptation state set before the first solve.
    if (_transferScale != 1.0)
        applyTransferScale();
    if (_eventsPerSecond > 0.0)
        applyEventRate();
    return *_sweep;
}

void
XProGenerator::applyTransferScale() const
{
    SweepNetwork &sweep = *_sweep;
    for (size_t i = 0; i < sweep.transferEdges.size(); ++i) {
        sweep.edges[sweep.transferEdges[i]].energyJ =
            sweep.transferBaseJ[i] * _transferScale;
        // The capacity itself is refreshed by the next cutAt().
    }
}

void
XProGenerator::applyEventRate() const
{
    SweepNetwork &sweep = *_sweep;
    const double rate = _eventsPerSecond > 0.0
                            ? _eventsPerSecond
                            : _topology.designEventsPerSecond;
    for (const SweepNetwork::CellEdge &cell : sweep.cellEdges) {
        sweep.edges[cell.edgeIndex].energyJ =
            cell.executionJ + cell.standbyW / rate;
    }
}

void
XProGenerator::setTransferEnergyScale(double scale)
{
    xproAssert(scale > 0.0, "non-positive transfer scale %f", scale);
    _transferScale = scale;
    if (_sweep)
        applyTransferScale();
}

void
XProGenerator::setEventRate(double events_per_second)
{
    xproAssert(events_per_second > 0.0,
               "event rate must be positive, got %f",
               events_per_second);
    _eventsPerSecond = events_per_second;
    if (_sweep)
        applyEventRate();
}

LambdaCut
XProGenerator::cutAt(double lambda) const
{
    xproAssert(lambda >= 0.0, "negative lambda %f", lambda);
    SweepNetwork &sweep = this->sweep();
    for (const SweepNetwork::SweepEdge &edge : sweep.edges) {
        sweep.net.updateCapacity(
            edge.id, edge.energyJ + lambda * edge.delaySec);
    }
    sweep.lambda = lambda;
    ++_warmSolves;

    const MinCutResult cut =
        sweep.net.resumeMinCut(nodeF, nodeB, false);

    LambdaCut result;
    result.cutValue = cut.value;
    std::vector<bool> in_sensor(sweep.cells, false);
    in_sensor[DataflowGraph::sourceId] = true;
    for (size_t u = 1; u < sweep.cells; ++u)
        in_sensor[u] = cut.sourceSide[cellBase + u];
    result.placement =
        Placement::fromMask(_topology, std::move(in_sensor));
    return result;
}

void
XProGenerator::setAggregatorEnergyWeight(double weight)
{
    xproAssert(weight >= 0.0, "negative penalty weight %f", weight);
    _options.aggregatorEnergyWeight = weight;
    if (!_sweep)
        return; // next solve builds with the new weight
    for (const SweepNetwork::PenaltyEdge &penalty :
         _sweep->penaltyEdges) {
        SweepNetwork::SweepEdge &edge =
            _sweep->edges[penalty.edgeIndex];
        edge.energyJ = penalty.aggregatorEnergyJ * weight;
        // The capacity itself is refreshed by the next cutAt().
    }
}

Placement
XProGenerator::minimumEnergyPlacement() const
{
    return cutAt(0.0).placement;
}

Energy
XProGenerator::objective(const Placement &placement) const
{
    // Price the candidate exactly as the adapted cut does, so the
    // sweep's candidate ranking agrees with the min-cut solves:
    // wireless crossings at the observed channel scale, in-sensor
    // standby re-amortized at the observed event rate.
    const SensorEnergyBreakdown breakdown =
        sensorEventEnergy(_topology, placement, _link);
    // At the nominal scale keep total()'s summation order so the
    // static path stays bit-identical to the pre-adaptive objective.
    Energy value =
        _transferScale == 1.0
            ? breakdown.total()
            : breakdown.compute +
                  breakdown.wireless() * _transferScale;
    if (_eventsPerSecond > 0.0) {
        const double design_rate = _topology.designEventsPerSecond;
        Power standby;
        for (size_t u = 1; u < _topology.graph.nodeCount(); ++u) {
            if (placement.inSensor(u))
                standby +=
                    _topology.graph.node(u).costs.sensorStandby;
        }
        value += standby * Time::seconds(1.0 / _eventsPerSecond -
                                         1.0 / design_rate);
    }
    if (_options.aggregatorEnergyWeight > 0.0) {
        Energy software;
        for (size_t u = 1; u < _topology.graph.nodeCount(); ++u) {
            if (!placement.inSensor(u))
                software +=
                    _topology.graph.node(u).costs.aggregatorEnergy;
        }
        value += software * _options.aggregatorEnergyWeight;
    }
    return value;
}

Time
XProGenerator::delayLimit() const
{
    const Time t_sensor =
        eventDelay(_topology, Placement::allInSensor(_topology),
                   _link)
            .total();
    const Time t_aggregator =
        eventDelay(_topology,
                   Placement::allInAggregator(_topology), _link)
            .total();
    return std::min(t_sensor, t_aggregator);
}

PartitionResult
XProGenerator::generate() const
{
    const Time limit = delayLimit();

    // Unconstrained energy-optimal cut first.
    Placement best = minimumEnergyPlacement();
    SensorEnergyBreakdown best_energy =
        sensorEventEnergy(_topology, best, _link);
    Energy best_objective = objective(best);
    DelayBreakdown best_delay = eventDelay(_topology, best, _link);

    PartitionResult result;
    result.unconstrainedCutValue = best_energy.total();
    result.delayLimit = limit;
    result.unconstrainedFeasible = best_delay.total() <= limit;

    if (!result.unconstrainedFeasible) {
        // Lagrangian sweep: penalize delay with growing lambda
        // (joules per second) until feasible cuts appear; keep the
        // cheapest feasible placement found. The cut solves run
        // sequentially — each warm-starts from the previous
        // lambda's flow — and the per-candidate true-delay check
        // and objective fan out over the sweep worker pool.
        std::vector<Placement> candidates;
        for (double lambda = 1e-10; lambda <= 1e4; lambda *= 1.3)
            candidates.push_back(cutAt(lambda).placement);

        // The faster single end is always feasible by construction
        // (the limit is the minimum of the two); considering both
        // also guarantees the "not worse than either feasible
        // single-end design" property of Section 3.2.3.
        candidates.push_back(Placement::allInSensor(_topology));
        candidates.push_back(Placement::allInAggregator(_topology));
        candidates.push_back(Placement::trivialCut(_topology));

        struct Scored
        {
            bool feasible = false;
            Energy objective;
            DelayBreakdown delay;
        };
        WorkerPool pool(_options.sweepWorkers);
        const std::vector<Scored> scored = pool.map<Scored>(
            candidates.size(), [&](size_t i) {
                Scored entry;
                entry.delay =
                    eventDelay(_topology, candidates[i], _link);
                entry.feasible = entry.delay.total() <= limit;
                if (entry.feasible)
                    entry.objective = objective(candidates[i]);
                return entry;
            });

        // Deterministic reduction in candidate order: identical to
        // the sequential sweep for any worker count.
        bool found = false;
        for (size_t i = 0; i < candidates.size(); ++i) {
            if (!scored[i].feasible)
                continue;
            if (!found || scored[i].objective < best_objective) {
                best = candidates[i];
                best_objective = scored[i].objective;
                best_delay = scored[i].delay;
                found = true;
            }
        }
        xproAssert(found, "delay limit excludes every design");
        best_energy = sensorEventEnergy(_topology, best, _link);
    }

    result.placement = best;
    result.energy = best_energy;
    result.delay = best_delay;
    return result;
}

Placement
XProGenerator::exhaustiveOptimum(Time delay_limit,
                                 size_t max_cells) const
{
    const size_t cells = _topology.graph.cellCount();
    if (cells > max_cells) {
        fatal("exhaustive search over %zu cells exceeds the cap of "
              "%zu",
              cells, max_cells);
    }

    Placement best = Placement::allInSensor(_topology);
    bool found = false;
    Energy best_energy;
    for (size_t mask = 0; mask < (size_t{1} << cells); ++mask) {
        std::vector<bool> in_sensor(cells + 1, false);
        in_sensor[DataflowGraph::sourceId] = true;
        for (size_t c = 0; c < cells; ++c)
            in_sensor[1 + c] = (mask >> c) & 1;
        const Placement candidate =
            Placement::fromMask(_topology, std::move(in_sensor));
        if (eventDelay(_topology, candidate, _link).total() >
            delay_limit) {
            continue;
        }
        const Energy energy = objective(candidate);
        if (!found || energy < best_energy) {
            best = candidate;
            best_energy = energy;
            found = true;
        }
    }
    xproAssert(found, "no placement meets the delay limit");
    return best;
}

} // namespace xpro
