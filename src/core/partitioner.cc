#include "core/partitioner.hh"

#include <algorithm>

#include "common/logging.hh"
#include "core/transfers.hh"

namespace xpro
{

namespace
{

/** Node layout inside the s-t graph. */
constexpr size_t nodeF = 0; ///< front-end (sensor) terminal
constexpr size_t nodeB = 1; ///< back-end (aggregator) terminal
constexpr size_t cellBase = 2;

} // namespace

Placement
XProGenerator::cutPlacement(double lambda) const
{
    const DataflowGraph &graph = _topology.graph;
    const size_t cells = graph.nodeCount(); // includes source slot

    // Weight of an s-t edge: energy plus lambda times the delay the
    // corresponding decision adds (joules + lambda * seconds).
    const auto weight = [lambda](Energy e, Time t) {
        return e.j() + lambda * t.sec();
    };

    FlowNetwork net(cellBase + cells);

    // The raw-data source is pinned to the sensor: it is terminal F.
    const auto mapped = [](size_t node) {
        return node == DataflowGraph::sourceId ? nodeF
                                               : cellBase + node;
    };

    for (size_t u = 1; u < cells; ++u) {
        const DataflowNode &node = graph.node(u);
        // cell -> B: the cell's in-sensor execution cost.
        net.addEdge(cellBase + u, nodeB,
                    weight(node.costs.sensorEnergy,
                           node.costs.sensorDelay));
        // Placing the cell in the aggregator instead costs software
        // time and, under an admission-control penalty, weighted
        // software energy. Charge both on the F -> cell side so the
        // Lagrangian can trade both directions; with lambda == 0 and
        // no penalty this edge is zero and never cut.
        const double penalty = weight(
            node.costs.aggregatorEnergy *
                _options.aggregatorEnergyWeight,
            node.costs.aggregatorDelay);
        if (penalty > 0.0)
            net.addEdge(nodeF, cellBase + u, penalty);
    }

    // Broadcast groups: one dummy node pair per producer payload,
    // generalizing the paper's dummy "D" node (for the raw source
    // data this construction *is* the paper's F -> D edge plus
    // infinite D -> consumer edges).
    for (const BroadcastGroup &group : broadcastGroups(_topology)) {
        const TransferCost transfer = _link.transfer(group.bits);

        // Transmit dummy: if any consumer is in the aggregator while
        // the producer is in the sensor, the payload crosses once.
        const size_t tx_node = net.addNode();
        net.addEdge(mapped(group.producer), tx_node,
                    weight(transfer.txEnergy, transfer.airTime));
        for (size_t v : group.consumers) {
            net.addEdge(tx_node, mapped(v),
                        FlowNetwork::infiniteCapacity());
        }

        // Receive dummy: if any consumer is in the sensor while the
        // producer is in the aggregator, the sensor receives once.
        // The source is always in the sensor, so it needs none.
        if (group.producer != DataflowGraph::sourceId) {
            const size_t rx_node = net.addNode();
            net.addEdge(rx_node, mapped(group.producer),
                        weight(transfer.rxEnergy, transfer.airTime));
            for (size_t v : group.consumers) {
                net.addEdge(mapped(v), rx_node,
                            FlowNetwork::infiniteCapacity());
            }
        }
    }

    // The result always ends at the aggregator: keeping the fusion
    // cell in the sensor costs one result transfer.
    const TransferCost result =
        _link.transfer(EngineTopology::resultBits);
    net.addEdge(cellBase + _topology.fusionNode, nodeB,
                weight(result.txEnergy, result.airTime));

    const MinCutResult cut = net.minCut(nodeF, nodeB);

    std::vector<bool> in_sensor(cells, false);
    in_sensor[DataflowGraph::sourceId] = true;
    for (size_t u = 1; u < cells; ++u)
        in_sensor[u] = cut.sourceSide[cellBase + u];
    return Placement::fromMask(_topology, std::move(in_sensor));
}

Placement
XProGenerator::minimumEnergyPlacement() const
{
    return cutPlacement(0.0);
}

Energy
XProGenerator::objective(const Placement &placement) const
{
    Energy value =
        sensorEventEnergy(_topology, placement, _link).total();
    if (_options.aggregatorEnergyWeight > 0.0) {
        Energy software;
        for (size_t u = 1; u < _topology.graph.nodeCount(); ++u) {
            if (!placement.inSensor(u))
                software +=
                    _topology.graph.node(u).costs.aggregatorEnergy;
        }
        value += software * _options.aggregatorEnergyWeight;
    }
    return value;
}

Time
XProGenerator::delayLimit() const
{
    const Time t_sensor =
        eventDelay(_topology, Placement::allInSensor(_topology),
                   _link)
            .total();
    const Time t_aggregator =
        eventDelay(_topology,
                   Placement::allInAggregator(_topology), _link)
            .total();
    return std::min(t_sensor, t_aggregator);
}

PartitionResult
XProGenerator::generate() const
{
    const Time limit = delayLimit();

    // Unconstrained energy-optimal cut first.
    Placement best = minimumEnergyPlacement();
    SensorEnergyBreakdown best_energy =
        sensorEventEnergy(_topology, best, _link);
    Energy best_objective = objective(best);
    DelayBreakdown best_delay = eventDelay(_topology, best, _link);

    PartitionResult result;
    result.unconstrainedCutValue = best_energy.total();
    result.delayLimit = limit;
    result.unconstrainedFeasible = best_delay.total() <= limit;

    if (!result.unconstrainedFeasible) {
        bool found = false;
        const auto consider = [&](const Placement &candidate) {
            const DelayBreakdown delay =
                eventDelay(_topology, candidate, _link);
            if (delay.total() > limit)
                return;
            const Energy value = objective(candidate);
            if (!found || value < best_objective) {
                best = candidate;
                best_energy =
                    sensorEventEnergy(_topology, candidate, _link);
                best_objective = value;
                best_delay = delay;
                found = true;
            }
        };

        // Lagrangian sweep: penalize delay with growing lambda
        // (joules per second) until feasible cuts appear; keep the
        // cheapest feasible placement found.
        for (double lambda = 1e-10; lambda <= 1e4; lambda *= 1.3)
            consider(cutPlacement(lambda));

        // The faster single end is always feasible by construction
        // (the limit is the minimum of the two); considering both
        // also guarantees the "not worse than either feasible
        // single-end design" property of Section 3.2.3.
        consider(Placement::allInSensor(_topology));
        consider(Placement::allInAggregator(_topology));
        consider(Placement::trivialCut(_topology));
        xproAssert(found, "delay limit excludes every design");
    }

    result.placement = best;
    result.energy = best_energy;
    result.delay = best_delay;
    return result;
}

Placement
XProGenerator::exhaustiveOptimum(Time delay_limit,
                                 size_t max_cells) const
{
    const size_t cells = _topology.graph.cellCount();
    if (cells > max_cells) {
        fatal("exhaustive search over %zu cells exceeds the cap of "
              "%zu",
              cells, max_cells);
    }

    Placement best = Placement::allInSensor(_topology);
    bool found = false;
    Energy best_energy;
    for (size_t mask = 0; mask < (size_t{1} << cells); ++mask) {
        std::vector<bool> in_sensor(cells + 1, false);
        in_sensor[DataflowGraph::sourceId] = true;
        for (size_t c = 0; c < cells; ++c)
            in_sensor[1 + c] = (mask >> c) & 1;
        const Placement candidate =
            Placement::fromMask(_topology, std::move(in_sensor));
        if (eventDelay(_topology, candidate, _link).total() >
            delay_limit) {
            continue;
        }
        const Energy energy = objective(candidate);
        if (!found || energy < best_energy) {
            best = candidate;
            best_energy = energy;
            found = true;
        }
    }
    xproAssert(found, "no placement meets the delay limit");
    return best;
}

} // namespace xpro
