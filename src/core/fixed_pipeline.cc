#include "core/fixed_pipeline.hh"

#include <algorithm>

#include "common/logging.hh"

namespace xpro
{

FixedPipeline::FixedPipeline(const TrainedPipeline &pipeline)
    : _wavelet(pipeline.extractor.wavelet())
{
    xproAssert(pipeline.scaler.fitted(), "pipeline not trained");

    const std::vector<double> &mins = pipeline.scaler.mins();
    const std::vector<double> &maxes = pipeline.scaler.maxes();
    _scaler.reserve(mins.size());
    for (size_t c = 0; c < mins.size(); ++c) {
        FixedScalerColumn column;
        column.min = Fixed::fromDouble(mins[c]);
        const double range = maxes[c] - mins[c];
        column.invRange = range < 1e-12
                              ? Fixed()
                              : Fixed::fromDouble(1.0 / range);
        _scaler.push_back(column);
    }

    for (const BaseClassifier &base : pipeline.ensemble.bases()) {
        FixedBase fixed_base{base.featureIndices,
                             FixedSvm(base.model)};
        _bases.push_back(std::move(fixed_base));
    }
    for (double w : pipeline.ensemble.fusionWeights())
        _fusionWeights.push_back(Fixed::fromDouble(w));
    _fusionBias = Fixed::fromDouble(pipeline.ensemble.fusionBias());
}

std::vector<Fixed>
FixedPipeline::extractFeatures(const std::vector<double> &segment) const
{
    // Quantize at the ADC, frame, and decompose on the fixed grid.
    const std::vector<Fixed> samples = quantizeSignal(segment);
    std::vector<Fixed> frame(dwtFrameLength, Fixed());
    const size_t n = std::min(samples.size(), dwtFrameLength);
    for (size_t i = 0; i < n; ++i)
        frame[i] = samples[i];
    const FixedDwtDecomposition decomp =
        fixedDwtDecompose(frame, _wavelet, dwtLevels);

    std::vector<Fixed> out(featurePoolSize, Fixed());
    for (size_t d = 0; d < featureDomainCount; ++d) {
        const auto domain = static_cast<FeatureDomain>(d);
        std::vector<Fixed> signal;
        if (domain == FeatureDomain::Time) {
            signal = samples;
        } else {
            const size_t level = domainLevel(domain);
            signal = decomp.detail[level - 1];
            if (level == dwtLevels) {
                signal.insert(signal.end(), decomp.approx.begin(),
                              decomp.approx.end());
            }
        }
        for (FeatureKind kind : allFeatureKinds) {
            out[featureIndex({domain, kind})] =
                computeFixedFeature(kind, signal);
        }
    }
    return out;
}

int
FixedPipeline::classify(const std::vector<double> &segment) const
{
    xproAssert(!_bases.empty(), "pipeline not quantized");
    const std::vector<Fixed> raw = extractFeatures(segment);
    xproAssert(raw.size() == _scaler.size(),
               "feature/scaler size mismatch");

    // Min-max normalization on the fixed grid, clamped to [0, 1].
    std::vector<Fixed> scaled(raw.size());
    const Fixed one = Fixed::fromInt(1);
    for (size_t c = 0; c < raw.size(); ++c) {
        const Fixed value =
            (raw[c] - _scaler[c].min) * _scaler[c].invRange;
        scaled[c] = std::clamp(value, Fixed(), one);
    }

    // Weighted voting over the quantized base decisions.
    Fixed score = _fusionBias;
    for (size_t m = 0; m < _bases.size(); ++m) {
        std::vector<Fixed> projected;
        projected.reserve(_bases[m].featureIndices.size());
        for (size_t idx : _bases[m].featureIndices)
            projected.push_back(scaled[idx]);
        const int vote = _bases[m].model.predict(projected);
        score += _fusionWeights[m] * Fixed::fromInt(vote);
    }
    return score.raw() >= 0 ? 1 : -1;
}

double
FixedPipeline::agreement(const TrainedPipeline &reference,
                         const FixedPipeline &fixed,
                         const SignalDataset &dataset,
                         size_t max_segments)
{
    const size_t n = max_segments > 0
                         ? std::min(max_segments, dataset.size())
                         : dataset.size();
    xproAssert(n > 0, "empty dataset");
    size_t agree = 0;
    for (size_t i = 0; i < n; ++i) {
        const auto &samples = dataset.segments[i].samples;
        agree += reference.classify(samples) ==
                 fixed.classify(samples);
    }
    return static_cast<double>(agree) / static_cast<double>(n);
}

} // namespace xpro
