/**
 * @file
 * The Automatic XPro Generator (paper Section 3.2): formally finds
 * the functional-cell distribution that minimizes the sensor node's
 * per-event energy, under the delay constraint
 * T <= min(T_in-sensor, T_in-aggregator).
 *
 * The unconstrained problem reduces to a minimum s-t cut on a graph
 * with a front-end terminal F, a back-end terminal B and a dummy
 * node D for the raw source data (Fig. 7):
 *
 *  - F -> D, weight = energy to transmit the raw segment; infinite
 *    D -> cell edges for every cell reading raw data enforce the
 *    "grouped" lemma;
 *  - cell -> B, weight = the cell's in-sensor compute energy;
 *  - for each dataflow edge u -> v, a forward edge weighted with the
 *    tx energy of u's output and a reverse edge weighted with the rx
 *    energy;
 *  - fusion -> B carries an extra parallel edge with the result
 *    transmission energy (the classification always ends at the
 *    aggregator).
 *
 * A cut's capacity then equals the sensor-node energy of the induced
 * placement (tested invariant), and Dinic solves it in polynomial
 * time. The delay constraint is handled as in the paper's max-flow
 * min-cut reformulation by a Lagrangian sweep: edges carry a second
 * (delay) attribute, cuts of capacity E + lambda*D are enumerated
 * over lambda, every induced placement's true critical-path delay is
 * checked, and the cheapest feasible one wins; the faster single-end
 * design is the guaranteed-feasible fallback.
 */

#ifndef XPRO_CORE_PARTITIONER_HH
#define XPRO_CORE_PARTITIONER_HH

#include <vector>

#include "core/energy_model.hh"
#include "core/delay_model.hh"
#include "core/placement.hh"
#include "graph/flow_network.hh"

namespace xpro
{

/** Optional adjustments to the generator's objective. */
struct GeneratorOptions
{
    /**
     * Weight on the aggregator-side software energy added to the
     * min-cut objective: the generator then minimizes
     * sensorEnergy + weight * (software energy of the
     * aggregator-placed cells). Zero, the default, reproduces the
     * paper's sensor-only objective. Fleet admission control raises
     * the weight to squeeze a node's offloaded load back into the
     * sensor when the shared aggregator is over budget; as the
     * weight grows the cut converges to the all-in-sensor design.
     */
    double aggregatorEnergyWeight = 0.0;
};

/** Result of one generator run. */
struct PartitionResult
{
    Placement placement;
    /** Sensor-node per-event energy of the chosen placement. */
    SensorEnergyBreakdown energy;
    /** End-to-end delay of the chosen placement. */
    DelayBreakdown delay;
    /** The delay limit that was enforced. */
    Time delayLimit;
    /** Min-cut value of the unconstrained solve (diagnostics). */
    Energy unconstrainedCutValue;
    /** True when the unconstrained min-cut already met the limit. */
    bool unconstrainedFeasible = false;
};

/** The Automatic XPro Generator. */
class XProGenerator
{
  public:
    XProGenerator(const EngineTopology &topology,
                  const WirelessLink &link,
                  const GeneratorOptions &options = {})
        : _topology(topology), _link(link), _options(options)
    {}

    /**
     * Unconstrained minimum-energy placement via min s-t cut.
     */
    Placement minimumEnergyPlacement() const;

    /**
     * Full generation with the paper's delay constraint
     * T <= min(T_F, T_B).
     */
    PartitionResult generate() const;

    /**
     * Exhaustive oracle for small topologies (tests): enumerate all
     * placements, minimize energy subject to the delay limit.
     * Fatal for topologies with more than @p max_cells cells.
     */
    Placement exhaustiveOptimum(Time delay_limit,
                                size_t max_cells = 24) const;

    /** The delay limit min(T_in-sensor, T_in-aggregator). */
    Time delayLimit() const;

    /**
     * The value the generator minimizes for @p placement: sensor
     * energy plus the weighted aggregator software energy (equal to
     * plain sensor energy at the default options).
     */
    Energy objective(const Placement &placement) const;

  private:
    /**
     * Build the s-t graph with capacities energy + lambda * delay
     * and return the induced placement of its min cut.
     */
    Placement cutPlacement(double lambda_seconds_weight) const;

    const EngineTopology &_topology;
    const WirelessLink &_link;
    GeneratorOptions _options;
};

} // namespace xpro

#endif // XPRO_CORE_PARTITIONER_HH
