/**
 * @file
 * The Automatic XPro Generator (paper Section 3.2): formally finds
 * the functional-cell distribution that minimizes the sensor node's
 * per-event energy, under the delay constraint
 * T <= min(T_in-sensor, T_in-aggregator).
 *
 * The unconstrained problem reduces to a minimum s-t cut on a graph
 * with a front-end terminal F, a back-end terminal B and a dummy
 * node D for the raw source data (Fig. 7):
 *
 *  - F -> D, weight = energy to transmit the raw segment; infinite
 *    D -> cell edges for every cell reading raw data enforce the
 *    "grouped" lemma;
 *  - cell -> B, weight = the cell's in-sensor compute energy;
 *  - for each dataflow edge u -> v, a forward edge weighted with the
 *    tx energy of u's output and a reverse edge weighted with the rx
 *    energy;
 *  - fusion -> B carries an extra parallel edge with the result
 *    transmission energy (the classification always ends at the
 *    aggregator).
 *
 * A cut's capacity then equals the sensor-node energy of the induced
 * placement (tested invariant), and Dinic solves it in polynomial
 * time. The delay constraint is handled as in the paper's max-flow
 * min-cut reformulation by a Lagrangian sweep: edges carry a second
 * (delay) attribute, cuts of capacity E + lambda*D are enumerated
 * over lambda, every induced placement's true critical-path delay is
 * checked, and the cheapest feasible one wins; the faster single-end
 * design is the guaranteed-feasible fallback.
 */

#ifndef XPRO_CORE_PARTITIONER_HH
#define XPRO_CORE_PARTITIONER_HH

#include <memory>
#include <vector>

#include "core/energy_model.hh"
#include "core/delay_model.hh"
#include "core/placement.hh"
#include "graph/flow_network.hh"

namespace xpro
{

/** Optional adjustments to the generator's objective. */
struct GeneratorOptions
{
    /**
     * Weight on the aggregator-side software energy added to the
     * min-cut objective: the generator then minimizes
     * sensorEnergy + weight * (software energy of the
     * aggregator-placed cells). Zero, the default, reproduces the
     * paper's sensor-only objective. Fleet admission control raises
     * the weight to squeeze a node's offloaded load back into the
     * sensor when the shared aggregator is over budget; as the
     * weight grows the cut converges to the all-in-sensor design.
     */
    double aggregatorEnergyWeight = 0.0;

    /**
     * Worker threads evaluating the Lagrangian sweep's candidate
     * placements (true-delay feasibility + objective). The cut
     * solves themselves stay sequential — they warm-start each
     * other — and the result is index-keyed, so the generated
     * design is identical for any worker count. 0 and 1 both run
     * inline on the calling thread.
     */
    size_t sweepWorkers = 1;
};

/** One lambda point of the generator's delay sweep. */
struct LambdaCut
{
    /** Placement induced by the min cut at this lambda. */
    Placement placement;
    /** Raw cut capacity: joules + lambda * seconds. */
    double cutValue = 0.0;
};

/** Result of one generator run. */
struct PartitionResult
{
    Placement placement;
    /** Sensor-node per-event energy of the chosen placement. */
    SensorEnergyBreakdown energy;
    /** End-to-end delay of the chosen placement. */
    DelayBreakdown delay;
    /** The delay limit that was enforced. */
    Time delayLimit;
    /** Min-cut value of the unconstrained solve (diagnostics). */
    Energy unconstrainedCutValue;
    /** True when the unconstrained min-cut already met the limit. */
    bool unconstrainedFeasible = false;
};

/**
 * The Automatic XPro Generator.
 *
 * A generator instance owns one warm-started s-t flow network: the
 * first cut solve builds it, and every later solve (another lambda
 * of the delay sweep, or a tightened admission penalty via
 * setAggregatorEnergyWeight()) only updates edge capacities and
 * resumes from the previous feasible flow. Solves on one instance
 * are therefore stateful and NOT safe to run concurrently; use one
 * generator per thread (as the fleet design phase does).
 */
class XProGenerator
{
  public:
    XProGenerator(const EngineTopology &topology,
                  const WirelessLink &link,
                  const GeneratorOptions &options = {});

    ~XProGenerator();

    /**
     * Unconstrained minimum-energy placement via min s-t cut.
     */
    Placement minimumEnergyPlacement() const;

    /**
     * Min cut of the graph with capacities energy + lambda * delay.
     * Warm-started: successive calls reuse the instance's flow
     * network and prior flow, returning results identical to a
     * cold solve at every lambda (property-tested).
     */
    LambdaCut cutAt(double lambda) const;

    /**
     * Tighten (or relax) the aggregator-energy penalty without
     * discarding the warm flow network: only the penalty edges'
     * capacities change, so the admission loop's re-cuts resume
     * from the previous round's flow.
     */
    void setAggregatorEnergyWeight(double weight);

    /**
     * Scale every transfer edge's energy term (tx, rx and the
     * result transfer) by @p scale without discarding the warm flow
     * network. The online controller sets the scale to the observed
     * mean ARQ attempts per packet, so a degrading Gilbert-Elliott
     * channel prices wireless crossings at their effective (retried)
     * cost and the warm re-cut migrates cells back into the sensor.
     * 1.0 restores the nominal expectation-level link.
     */
    void setTransferEnergyScale(double scale);

    /**
     * Re-amortize every cell's standby share at a new observed
     * event rate (cell edges: execution energy + standby / rate)
     * without discarding the warm flow network. Rate drift changes
     * the execution-vs-standby balance the cut trades off; the next
     * cutAt()/generate() resumes from the previous flow. Cells whose
     * CellCosts carry no separate standby power (hand-built
     * fixtures) keep their built-in sensorEnergy.
     */
    void setEventRate(double events_per_second);

    /**
     * Solve accounting for the runtime-adaptive controller's
     * steady-state gate: networks built from scratch vs. cuts
     * resumed on the persistent network. A controller that keeps
     * one generator alive sees coldSolves() == 1 forever.
     */
    size_t coldSolves() const { return _coldSolves; }
    size_t warmSolves() const { return _warmSolves; }

    /**
     * Full generation with the paper's delay constraint
     * T <= min(T_F, T_B).
     */
    PartitionResult generate() const;

    /**
     * Exhaustive oracle for small topologies (tests): enumerate all
     * placements, minimize energy subject to the delay limit.
     * Fatal for topologies with more than @p max_cells cells.
     */
    Placement exhaustiveOptimum(Time delay_limit,
                                size_t max_cells = 24) const;

    /** The delay limit min(T_in-sensor, T_in-aggregator). */
    Time delayLimit() const;

    /**
     * The value the generator minimizes for @p placement: sensor
     * energy plus the weighted aggregator software energy (equal to
     * plain sensor energy at the default options).
     */
    Energy objective(const Placement &placement) const;

  private:
    /** The warm-started s-t graph (built on first use). */
    struct SweepNetwork;

    SweepNetwork &sweep() const;
    /** Re-price the sweep's transfer edges at _transferScale. */
    void applyTransferScale() const;
    /** Re-amortize the sweep's cell standby at _eventsPerSecond. */
    void applyEventRate() const;

    const EngineTopology &_topology;
    const WirelessLink &_link;
    GeneratorOptions _options;
    /** Runtime-adaptation state (applied to the sweep's edges). */
    double _transferScale = 1.0;
    double _eventsPerSecond = 0.0; ///< 0 = topology's design rate
    mutable std::unique_ptr<SweepNetwork> _sweep;
    mutable size_t _coldSolves = 0;
    mutable size_t _warmSolves = 0;
};

} // namespace xpro

#endif // XPRO_CORE_PARTITIONER_HH
