#include "core/report.hh"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace xpro
{

CsvTable::CsvTable(std::vector<std::string> columns)
    : _columns(std::move(columns))
{
    xproAssert(!_columns.empty(), "CSV table needs columns");
}

CsvTable &
CsvTable::beginRow()
{
    if (!_rows.empty()) {
        xproAssert(_rows.back().size() == _columns.size(),
                   "previous row has %zu of %zu cells",
                   _rows.back().size(), _columns.size());
    }
    _rows.emplace_back();
    return *this;
}

CsvTable &
CsvTable::add(const std::string &value)
{
    xproAssert(!_rows.empty(), "add() before beginRow()");
    xproAssert(_rows.back().size() < _columns.size(),
               "row already has %zu cells", _columns.size());
    _rows.back().push_back(value);
    return *this;
}

CsvTable &
CsvTable::add(double value)
{
    std::ostringstream out;
    if (std::isfinite(value) &&
        value == std::floor(value) && std::fabs(value) < 1e15) {
        out << static_cast<long long>(value);
    } else {
        out.precision(9);
        out << value;
    }
    return add(out.str());
}

CsvTable &
CsvTable::add(size_t value)
{
    return add(std::to_string(value));
}

std::string
CsvTable::escape(const std::string &value)
{
    if (value.find_first_of(",\"\n") == std::string::npos)
        return value;
    std::string out = "\"";
    for (char c : value) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
CsvTable::write(std::ostream &out) const
{
    for (size_t c = 0; c < _columns.size(); ++c)
        out << (c ? "," : "") << escape(_columns[c]);
    out << '\n';
    for (const auto &row : _rows) {
        xproAssert(row.size() == _columns.size(),
                   "ragged row with %zu of %zu cells", row.size(),
                   _columns.size());
        for (size_t c = 0; c < row.size(); ++c)
            out << (c ? "," : "") << escape(row[c]);
        out << '\n';
    }
}

void
CsvTable::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    write(out);
    if (!out)
        fatal("write to '%s' failed", path.c_str());
}

} // namespace xpro
