#include "core/report.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace xpro
{

CsvTable::CsvTable(std::vector<std::string> columns)
    : _columns(std::move(columns))
{
    xproAssert(!_columns.empty(), "CSV table needs columns");
}

CsvTable &
CsvTable::beginRow()
{
    if (!_rows.empty()) {
        xproAssert(_rows.back().size() == _columns.size(),
                   "previous row has %zu of %zu cells",
                   _rows.back().size(), _columns.size());
    }
    _rows.emplace_back();
    return *this;
}

CsvTable &
CsvTable::add(const std::string &value)
{
    xproAssert(!_rows.empty(), "add() before beginRow()");
    xproAssert(_rows.back().size() < _columns.size(),
               "row already has %zu cells", _columns.size());
    _rows.back().push_back(value);
    return *this;
}

CsvTable &
CsvTable::add(double value)
{
    std::ostringstream out;
    if (std::isfinite(value) &&
        value == std::floor(value) && std::fabs(value) < 1e15) {
        out << static_cast<long long>(value);
    } else {
        out.precision(9);
        out << value;
    }
    return add(out.str());
}

CsvTable &
CsvTable::add(size_t value)
{
    return add(std::to_string(value));
}

std::string
CsvTable::escape(const std::string &value)
{
    if (value.find_first_of(",\"\n") == std::string::npos)
        return value;
    std::string out = "\"";
    for (char c : value) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
CsvTable::write(std::ostream &out) const
{
    for (size_t c = 0; c < _columns.size(); ++c)
        out << (c ? "," : "") << escape(_columns[c]);
    out << '\n';
    for (const auto &row : _rows) {
        xproAssert(row.size() == _columns.size(),
                   "ragged row with %zu of %zu cells", row.size(),
                   _columns.size());
        for (size_t c = 0; c < row.size(); ++c)
            out << (c ? "," : "") << escape(row[c]);
        out << '\n';
    }
}

void
CsvTable::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    write(out);
    if (!out)
        fatal("write to '%s' failed", path.c_str());
}

namespace
{

/** Fixed-format double for the canonical serialization. */
std::string
canonical(double value)
{
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.9e", value);
    return buffer;
}

} // namespace

std::string
RobustnessReport::serialize() const
{
    std::ostringstream out;
    out << "robustness v1\n"
        << "packets " << packetsOffered << ' ' << packetsDelivered
        << ' ' << packetsAbandoned << '\n'
        << "attempts " << attempts << '\n'
        << "retries";
    if (retryHistogram.empty()) {
        out << " -";
    } else {
        for (size_t count : retryHistogram)
            out << ' ' << count;
    }
    out << '\n'
        << "probes " << probes << '\n'
        << "degraded_events " << degradedEvents << '\n'
        << "buffered " << bufferedResults << '\n'
        << "replayed " << replayedResults << '\n'
        << "outages " << outages << '\n'
        << "outage_ms " << canonical(outageTimeMs) << '\n'
        << "recovery_ms " << canonical(meanRecoveryMs) << '\n';
    return out.str();
}

void
RobustnessReport::writeText(std::ostream &out) const
{
    char line[256];
    std::snprintf(line, sizeof(line),
                  "faults: %zu/%zu packets delivered (%zu abandoned), "
                  "%zu attempts, %zu probes\n",
                  packetsDelivered, packetsOffered, packetsAbandoned,
                  attempts, probes);
    out << line;
    out << "retry histogram:";
    if (retryHistogram.empty()) {
        out << " (no deliveries)";
    } else {
        for (size_t r = 0; r < retryHistogram.size(); ++r) {
            std::snprintf(line, sizeof(line), " %zux%zu",
                          retryHistogram[r], r);
            out << line;
        }
        out << " (packets x retries)";
    }
    out << '\n';
    std::snprintf(line, sizeof(line),
                  "degraded: %zu events local-fallback, %zu results "
                  "replayed, %zu still buffered\n",
                  degradedEvents, replayedResults, bufferedResults);
    out << line;
    std::snprintf(line, sizeof(line),
                  "outages: %zu declared, %.3f ms down, mean "
                  "recovery %.3f ms\n",
                  outages, outageTimeMs, meanRecoveryMs);
    out << line;
}

std::string
ControlReport::serialize() const
{
    std::ostringstream out;
    out << "control v1\n"
        << "windows " << windows << '\n'
        << "repartitions " << repartitions << '\n'
        << "holds " << hysteresisHolds << ' ' << dwellHolds << '\n'
        << "solves " << coldSolves << ' ' << warmSolves << '\n'
        << "handover_uj " << canonical(handoverTotalUj) << '\n'
        << "handover_ms " << canonical(handoverTotalMs) << '\n';
    if (droppedDecisions > 0)
        out << "dropped " << droppedDecisions << '\n';
    for (const ControlDecision &d : decisions) {
        out << "decision " << d.window << ' ' << canonical(d.atMs)
            << ' ' << d.action << ' ' << canonical(d.observedScale)
            << ' ' << canonical(d.observedRate) << ' '
            << canonical(d.stateOfCharge) << ' ' << d.dutyLevel
            << ' ' << d.sensorCells << ' ' << d.movedCells << ' '
            << canonical(d.handoverUj) << ' '
            << canonical(d.handoverMs) << ' '
            << canonical(d.improvement) << '\n';
    }
    return out.str();
}

void
ControlReport::writeText(std::ostream &out) const
{
    char line[256];
    std::snprintf(line, sizeof(line),
                  "control: %zu windows, %zu repartitions "
                  "(%zu hysteresis holds, %zu dwell holds)\n",
                  windows, repartitions, hysteresisHolds,
                  dwellHolds);
    out << line;
    std::snprintf(line, sizeof(line),
                  "solves: %zu cold, %zu warm; handover %.3f uJ / "
                  "%.3f ms\n",
                  coldSolves, warmSolves, handoverTotalUj,
                  handoverTotalMs);
    out << line;
    // Long traces are elided for readability: adopted re-partitions
    // and level changes always print, runs of steady/hold windows
    // collapse into one summary line.
    size_t elided = 0;
    const auto flushElided = [&]() {
        if (elided == 0)
            return;
        std::snprintf(line, sizeof(line),
                      "  ... %zu steady/hold window(s) ...\n",
                      elided);
        out << line;
        elided = 0;
    };
    for (size_t i = 0; i < decisions.size(); ++i) {
        const ControlDecision &d = decisions[i];
        const bool landmark = d.action == "repartition" ||
                              d.action == "retune" || i == 0 ||
                              i + 1 == decisions.size();
        if (!landmark && decisions.size() > 48) {
            ++elided;
            continue;
        }
        flushElided();
        std::snprintf(line, sizeof(line),
                      "  w%-3zu %10.1f ms %-11s scale %5.2f rate "
                      "%5.2f/s soc %5.1f%% duty L%zu cut %zu",
                      d.window, d.atMs, d.action.c_str(),
                      d.observedScale, d.observedRate,
                      100.0 * d.stateOfCharge, d.dutyLevel,
                      d.sensorCells);
        out << line;
        if (d.movedCells > 0) {
            std::snprintf(line, sizeof(line),
                          " (moved %zu, %.3f uJ, %.3f ms)",
                          d.movedCells, d.handoverUj, d.handoverMs);
            out << line;
        }
        out << '\n';
    }
    flushElided();
    if (droppedDecisions > 0) {
        std::snprintf(line, sizeof(line),
                      "  (%zu later decisions counted but not "
                      "retained)\n",
                      droppedDecisions);
        out << line;
    }
}

std::string
ServingReport::serialize() const
{
    std::ostringstream out;
    out << "serving v1\n"
        << "events " << events << '\n'
        << "users " << users << '\n'
        << "positives " << positives << '\n'
        << "node_events";
    for (size_t count : nodeEvents)
        out << ' ' << count;
    out << '\n' << "node_positives";
    for (size_t count : nodePositives)
        out << ' ' << count;
    out << '\n';
    return out.str();
}

void
ServingReport::writeText(std::ostream &out) const
{
    char line[256];
    std::snprintf(line, sizeof(line),
                  "serving: %zu events over %zu users, "
                  "%zu classified positive\n",
                  events, users, positives);
    out << line;
}

std::string
TiersReport::serialize() const
{
    std::ostringstream out;
    out << "tiers v1\n"
        << "fanout " << sensorsPerPhone << ' ' << phonesPerGateway
        << '\n'
        << "phones " << phones << '\n'
        << "gateways " << gateways << '\n'
        << "windows " << windows << '\n'
        << "deferred " << deferredUplinks << '\n'
        << "local_fallbacks " << localFallbacks << '\n'
        << "duty_suppressed " << dutySuppressed << '\n'
        << "cloud_throttled " << cloudThrottled << '\n'
        << "phone_busy_ms " << canonical(phoneBusyMs) << '\n'
        << "gateway_busy_ms " << canonical(gatewayBusyMs) << '\n';
    return out.str();
}

void
TiersReport::writeText(std::ostream &out) const
{
    char line[256];
    std::snprintf(line, sizeof(line),
                  "tiers: %zu phones (x%zu sensors), %zu gateways "
                  "(x%zu phones), %zu windows\n",
                  phones, sensorsPerPhone, gateways,
                  phonesPerGateway, windows);
    out << line;
    std::snprintf(line, sizeof(line),
                  "backpressure: %zu deferred, %zu local fallbacks, "
                  "%zu duty-suppressed, %zu cloud-throttled\n",
                  deferredUplinks, localFallbacks, dutySuppressed,
                  cloudThrottled);
    out << line;
    std::snprintf(line, sizeof(line),
                  "tier busy: %.3f ms phone compute, %.3f ms "
                  "gateway airtime\n",
                  phoneBusyMs, gatewayBusyMs);
    out << line;
}

std::string
ChaosReport::serialize() const
{
    std::ostringstream out;
    out << "chaos v1\n"
        << "gateway_crashes " << gatewayCrashes << '\n'
        << "gateway_restarts " << gatewayRestarts << '\n'
        << "failovers " << failovers << '\n'
        << "migrated_nodes " << migratedNodes << '\n'
        << "failback_nodes " << failbackNodes << '\n'
        << "rekeyed_items " << rekeyedItems << '\n'
        << "retries " << retries << '\n'
        << "dropped_events " << droppedEvents << '\n'
        << "parked_injects " << parkedInjects << '\n'
        << "replayed_events " << replayedEvents << '\n'
        << "gateway_local_events " << gatewayLocalEvents << '\n'
        << "blackout_fallbacks " << blackoutFallbacks << '\n'
        << "churn " << churnLeaves << ' ' << churnJoins << '\n'
        << "gateway_down_windows " << gatewayDownWindows << '\n'
        << "cloud_down_windows " << cloudDownWindows << '\n'
        << "max_outage_streak " << maxOutageStreak << '\n'
        << "handover_ms " << canonical(handoverMs) << '\n';
    for (const ChaosEpisode &e : episodes)
        out << "episode " << canonical(e.atMs) << ' ' << e.kind << ' '
            << e.gateway << ' ' << e.nodes << '\n';
    if (droppedEpisodes > 0)
        out << "dropped_episodes " << droppedEpisodes << '\n';
    return out.str();
}

void
ChaosReport::writeText(std::ostream &out) const
{
    char line[256];
    std::snprintf(line, sizeof(line),
                  "chaos: %zu crashes / %zu restarts, %zu failovers "
                  "(%zu nodes migrated, %zu failed back, %zu items "
                  "re-keyed)\n",
                  gatewayCrashes, gatewayRestarts, failovers,
                  migratedNodes, failbackNodes, rekeyedItems);
    out << line;
    std::snprintf(line, sizeof(line),
                  "healing: %zu retries, %zu gateway-local, "
                  "%zu blackout fallbacks, %.3f ms handover, worst "
                  "outage streak %zu\n",
                  retries, gatewayLocalEvents, blackoutFallbacks,
                  handoverMs, maxOutageStreak);
    out << line;
    std::snprintf(line, sizeof(line),
                  "churn: %zu left / %zu rejoined, %zu in-flight "
                  "dropped, %zu injects parked, %zu replayed\n",
                  churnLeaves, churnJoins, droppedEvents,
                  parkedInjects, replayedEvents);
    out << line;
    std::snprintf(line, sizeof(line),
                  "downtime: %zu gateway-windows, %zu cloud-windows "
                  "(%zu transitions logged, %zu dropped)\n",
                  gatewayDownWindows, cloudDownWindows,
                  episodes.size(), droppedEpisodes);
    out << line;
}

std::string
FleetReport::serialize() const
{
    std::ostringstream out;
    out << "fleet-report v1\n"
        << "policy " << policy << '\n'
        << "nodes " << nodeCount << '\n'
        << "events " << totalEvents << '\n'
        << "misses " << totalDeadlineMisses << '\n'
        << "span_ms " << canonical(spanMs) << '\n'
        << "radio_busy_ms " << canonical(radioBusyMs) << '\n'
        << "radio_occupancy " << canonical(radioOccupancy) << '\n'
        << "transfers " << transfers << '\n'
        << "agg_busy_ms " << canonical(aggregatorBusyMs) << '\n'
        << "agg_utilization " << canonical(aggregatorUtilization)
        << '\n'
        << "agg_cpu_share " << canonical(aggregatorCpuShare) << '\n'
        << "agg_power_uw " << canonical(aggregatorPowerUw) << '\n'
        << "agg_lifetime_h " << canonical(aggregatorLifetimeHours)
        << '\n';
    for (const FleetNodeReportRow &row : rows) {
        out << "node " << row.symbol << ' ' << row.process << ' '
            << row.admission << ' ' << row.sensorCells << '/'
            << row.totalCells << ' ' << canonical(row.accuracy)
            << ' ' << canonical(row.eventsPerSecond) << ' '
            << canonical(row.sensorLifetimeHours) << ' '
            << row.events << ' ' << row.deadlineMisses << ' '
            << canonical(row.meanLatencyMs) << ' '
            << canonical(row.worstLatencyMs) << ' '
            << canonical(row.aggregatorPowerUw) << '\n';
    }
    // Fault-injection section only when the run injected faults, so
    // fault-free reports stay byte-identical to earlier versions.
    if (robustness.enabled) {
        out << robustness.serialize();
        out << "degraded";
        for (const FleetNodeReportRow &row : rows)
            out << ' ' << row.degradedEvents;
        out << '\n';
    }
    // Controller section only for adaptive runs, same reasoning.
    if (control.enabled)
        out << control.serialize();
    // Serving section only when events were served, same reasoning.
    // Its content is prediction-derived only, so the bytes are also
    // identical at any batch size and worker count.
    if (serving.enabled)
        out << serving.serialize();
    // Tier section only for population-scale runs. Its content is
    // simulation-derived only (no shard or worker counts), so the
    // bytes are identical at any --shards / --workers setting.
    if (tiers.enabled)
        out << tiers.serialize();
    // Chaos section only when a chaos schedule was active, so
    // chaos-free population reports keep their pre-chaos bytes.
    if (chaos.enabled)
        out << chaos.serialize();
    return out.str();
}

void
FleetReport::writeText(std::ostream &out) const
{
    char line[256];
    std::snprintf(line, sizeof(line),
                  "fleet: %zu nodes, %s radio, %zu events "
                  "(%zu deadline misses)\n",
                  nodeCount, policy.c_str(), totalEvents,
                  totalDeadlineMisses);
    out << line;
    std::snprintf(line, sizeof(line),
                  "radio: %.3f ms busy / %.3f ms span "
                  "(%.1f%% occupancy, %zu transfers)\n",
                  radioBusyMs, spanMs, 100.0 * radioOccupancy,
                  transfers);
    out << line;
    std::snprintf(line, sizeof(line),
                  "aggregator: %.1f%% CPU in-sim, %.1f%% admitted, "
                  "%.1f uW analytics -> %.0f h battery\n",
                  100.0 * aggregatorUtilization,
                  100.0 * aggregatorCpuShare, aggregatorPowerUw,
                  aggregatorLifetimeHours);
    out << line;
    std::snprintf(line, sizeof(line),
                  "%-5s %-7s %-11s %8s %9s %8s %11s %7s %10s %10s "
                  "%9s\n",
                  "node", "process", "admission", "cut", "accuracy",
                  "events/s", "sensor life", "misses", "mean lat",
                  "worst lat", "agg power");
    out << line;
    for (const FleetNodeReportRow &row : rows) {
        char cut[32];
        std::snprintf(cut, sizeof(cut), "%zu/%zu", row.sensorCells,
                      row.totalCells);
        std::snprintf(line, sizeof(line),
                      "%-5s %-7s %-11s %8s %8.1f%% %8.2f %9.0f h "
                      "%3zu/%-3zu %7.3f ms %7.3f ms %6.1f uW\n",
                      row.symbol.c_str(), row.process.c_str(),
                      row.admission.c_str(), cut,
                      100.0 * row.accuracy, row.eventsPerSecond,
                      row.sensorLifetimeHours, row.deadlineMisses,
                      row.events, row.meanLatencyMs,
                      row.worstLatencyMs, row.aggregatorPowerUw);
        out << line;
    }
    if (robustness.enabled)
        robustness.writeText(out);
    if (control.enabled)
        control.writeText(out);
    if (serving.enabled)
        serving.writeText(out);
    if (tiers.enabled)
        tiers.writeText(out);
    if (chaos.enabled)
        chaos.writeText(out);
}

CsvTable
FleetReport::csv() const
{
    CsvTable table({"node", "process", "admission", "sensor_cells",
                    "total_cells", "accuracy", "events_per_second",
                    "sensor_lifetime_h", "events", "deadline_misses",
                    "mean_latency_ms", "worst_latency_ms",
                    "aggregator_power_uw"});
    for (const FleetNodeReportRow &row : rows) {
        table.beginRow()
            .add(row.symbol)
            .add(row.process)
            .add(row.admission)
            .add(row.sensorCells)
            .add(row.totalCells)
            .add(row.accuracy)
            .add(row.eventsPerSecond)
            .add(row.sensorLifetimeHours)
            .add(row.events)
            .add(row.deadlineMisses)
            .add(row.meanLatencyMs)
            .add(row.worstLatencyMs)
            .add(row.aggregatorPowerUw);
    }
    return table;
}

} // namespace xpro
