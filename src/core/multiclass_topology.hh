/**
 * @file
 * Multi-classification topology extension (paper Section 5.7):
 * "simply add more base classifiers that extend only the topology of
 * generic classification. The rest of the proposed methodology can
 * be applied directly."
 *
 * A one-vs-rest MultiClassSubspace maps to one engine topology:
 * feature cells are the union over every class ensemble (shared, so
 * a feature computed once serves all classes), each class
 * contributes its SVM cells and a fusion cell, and a final argmax
 * cell selects the winning class. The resulting EngineTopology runs
 * through the unchanged Automatic XPro Generator, energy/delay
 * models, evaluator and simulator.
 */

#ifndef XPRO_CORE_MULTICLASS_TOPOLOGY_HH
#define XPRO_CORE_MULTICLASS_TOPOLOGY_HH

#include "core/topology.hh"
#include "ml/multiclass.hh"

namespace xpro
{

/**
 * Build the engine topology of a one-vs-rest multi-class ensemble.
 *
 * @param ensemble Trained one-vs-rest classifier.
 * @param segment_length Samples per raw segment.
 * @param config Process/wireless configuration.
 * @param events_per_second Segment analysis rate of the workload.
 */
EngineTopology
buildMultiClassTopology(const MultiClassSubspace &ensemble,
                        size_t segment_length,
                        const EngineConfig &config,
                        double events_per_second = 4.0);

} // namespace xpro

#endif // XPRO_CORE_MULTICLASS_TOPOLOGY_HH
