/**
 * @file
 * Fault-injected transfer machinery shared by the single-node system
 * simulator (sim/system_sim) and the fleet simulator (fleet/fleet):
 *
 *  - FaultState: one seeded loss process plus the run's
 *    RobustnessReport counters.
 *  - runArq(): drives one packet through bounded stop-and-wait ARQ
 *    on top of whatever channel-granting host the simulator uses
 *    (the single-node FIFO radio or the fleet's arbitrated shared
 *    radio). Each attempt is a separate channel grant, so the
 *    channel is free for other traffic during ACK timeouts and
 *    backoff — which is also what keeps a dead node from stalling
 *    FCFS/TDMA arbitration.
 *  - computeLocalFallback(): the graceful-degradation plan. When a
 *    payload is abandoned (or the link is declared down), the
 *    sensor finishes the event locally: every cell whose output is
 *    not already available in-sensor is recomputed there, and the
 *    completion time is the local critical path from the fallback
 *    instant. Classification therefore continues through outages;
 *    results are buffered and replayed on recovery.
 */

#ifndef XPRO_SIM_FAULT_SIM_HH
#define XPRO_SIM_FAULT_SIM_HH

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/energy_model.hh"
#include "core/placement.hh"
#include "core/report.hh"
#include "core/topology.hh"
#include "sim/event_queue.hh"
#include "wireless/fault.hh"
#include "wireless/link.hh"

namespace xpro
{

/** Mutable fault-injection state of one simulation run: the seeded
 *  channel chain plus the outcome counters. */
class FaultState
{
  public:
    explicit FaultState(const FaultProfile &profile)
        : _profile(profile), _loss(profile)
    {
        _stats.enabled = profile.enabled;
    }

    const FaultProfile &profile() const { return _profile; }
    LossProcess &loss() { return _loss; }
    RobustnessReport &stats() { return _stats; }
    const RobustnessReport &stats() const { return _stats; }

  private:
    FaultProfile _profile;
    LossProcess _loss;
    RobustnessReport _stats;
};

/** One packet submitted to the ARQ machine. */
struct ArqPacket
{
    /** Payload bits; the link adds the protocol header. */
    size_t payloadBits = 0;
    /** Which end transmits the data frame (decides which of the
     *  sensor's tx/rx meters each attempt charges). */
    bool senderInSensor = true;
    /** Trace tag, e.g. "svm payload #0". */
    std::string what;
    /** Recovery probes don't count toward packetsOffered or the
     *  outage detector's abandon streak. */
    bool isProbe = false;
    /** Optional per-packet loss override evaluated before the
     *  shared loss process (e.g. a scripted dead fleet node). A
     *  forced loss consumes no stochastic draw. */
    std::function<bool(Time)> forceLost;
};

/**
 * How the host simulator grants its (possibly shared, possibly
 * arbitrated) channel to one transmission attempt: occupy the
 * channel for @p air, then call @p on_done.
 */
using ChannelGrant =
    std::function<void(Time air, const std::string &what,
                       EventQueue::Handler on_done)>;

/** Fires exactly once per packet with the final outcome. */
using ArqDone = std::function<void(bool delivered, size_t attempts)>;

/**
 * Drive @p packet through bounded stop-and-wait ARQ.
 *
 * Per attempt: the packet's fate is drawn from @p faults (scripted
 * outages, then the Gilbert-Elliott chain), the per-attempt energies
 * are charged to @p sensor (if non-null) according to the sending
 * end — data frame every attempt, ACK frame only on success — and
 * the channel is acquired through @p grant for the attempt's air
 * time (data only when lost, data + ACK when delivered). A lost
 * attempt backs off per the profile's ArqConfig before retrying;
 * after maxRetries failed retries the packet is abandoned.
 *
 * @param note Optional trace hook for "retry ..."/"drop ..."
 *        markers (may be null).
 */
void runArq(EventQueue &queue, FaultState &faults,
            const WirelessLink &link, ArqPacket packet,
            SensorEnergyBreakdown *sensor, ChannelGrant grant,
            std::function<void(const std::string &)> note,
            ArqDone done);

/** The local-fallback plan for one partially executed event. */
struct LocalFallback
{
    /** When the locally computed classification is ready. */
    Time completion;
    /** Extra sensor compute energy of the recomputed cells. */
    Energy compute;
    /** Cells recomputed locally (the rest already ran in-sensor). */
    size_t recomputedCells = 0;
};

/**
 * Plan finishing event locally from time @p at.
 *
 * @p sensor_finish_at[v] is set iff cell v already started (or
 * finished) on the *sensor* end, holding its completion time; those
 * outputs are reused. Every other cell — never started, or started
 * on the now-unreachable aggregator — is recomputed in-sensor,
 * data-driven along the topology's DAG. Because each cell is
 * charged at most once per event, a degraded event's compute energy
 * never exceeds the all-in-sensor engine's (a tested invariant).
 */
LocalFallback computeLocalFallback(
    const EngineTopology &topology, const Placement &placement,
    const std::vector<std::optional<Time>> &sensor_finish_at,
    Time at);

} // namespace xpro

#endif // XPRO_SIM_FAULT_SIM_HH
