#include "sim/system_sim.hh"

#include <algorithm>
#include <functional>
#include <optional>

#include "common/logging.hh"
#include "core/transfers.hh"
#include "sim/event_queue.hh"
#include "sim/fault_sim.hh"

namespace xpro
{

namespace
{

/** Shared half-duplex radio: serializes transfer requests FIFO. */
class Radio
{
  public:
    Radio(EventQueue &queue, SimResult &result, bool capture_trace)
        : _queue(queue), _result(result),
          _captureTrace(capture_trace)
    {
        _backlog.reserve(16);
    }

    /**
     * Request a transfer of @p cost; @p on_delivered fires when the
     * payload lands on the other end.
     */
    void
    request(const TransferCost &cost, EventQueue::Handler on_delivered,
            const std::string &what)
    {
        occupy(cost.airTime, what, std::move(on_delivered));
    }

    /**
     * Occupy the channel for @p air (one ARQ attempt, or one
     * expectation-folded transfer); @p on_done fires when the
     * occupation ends.
     */
    void
    occupy(Time air, const std::string &what,
           EventQueue::Handler on_done)
    {
        _backlog.push_back(
            {air, std::move(on_done), _captureTrace ? what : ""});
        if (!_busy)
            startNext();
    }

  private:
    struct Pending
    {
        Time air;
        EventQueue::Handler onDone;
        std::string what;
    };

    void
    startNext()
    {
        if (_backlog.empty()) {
            _busy = false;
            return;
        }
        _busy = true;
        // The in-flight job lives in a member, so the completion
        // callback needs only [this] — small enough for the
        // std::function small-buffer slot, keeping the steady-state
        // loop free of heap allocations. The channel is half-duplex:
        // at most one occupation is in flight at a time.
        _current = std::move(_backlog.front());
        _backlog.erase(_backlog.begin());
        if (_captureTrace) {
            _result.trace.push_back(
                {_queue.now(), "radio start: " + _current.what});
        }
        _result.radioBusy += _current.air;
        ++_result.transfers;
        _queue.scheduleAfter(_current.air, [this]() {
            if (_captureTrace) {
                _result.trace.push_back(
                    {_queue.now(), "radio done: " + _current.what});
            }
            // Move the handler out first: it may request the next
            // transfer, which must land in the backlog, not clobber
            // the job being completed.
            EventQueue::Handler on_done = std::move(_current.onDone);
            on_done();
            startNext();
        });
    }

    EventQueue &_queue;
    SimResult &_result;
    const bool _captureTrace;
    bool _busy = false;
    Pending _current;
    std::vector<Pending> _backlog;
};

/**
 * Simulates a sequence of independent events through one placed
 * engine sharing a single radio. Per-event dataflow state is kept
 * per instance so consecutive segments may overlap in time.
 *
 * With a fault profile, inter-end payloads go through bounded ARQ
 * (sim/fault_sim) instead of the expectation-folded transfer costs,
 * and abandoned packets drive the outage detector / local-fallback
 * machinery. Without one, the legacy path is taken verbatim.
 */
class SystemSimulator
{
  public:
    SystemSimulator(const EngineTopology &topology,
                    const Placement &placement,
                    const WirelessLink &link, size_t events,
                    const FaultProfile *faults = nullptr,
                    Time probe_horizon = Time(),
                    bool capture_trace = true)
        : _topology(topology),
          _placement(placement),
          _link(link),
          _groups(broadcastGroups(topology)),
          _captureTrace(capture_trace),
          _radio(_queue, _result, capture_trace),
          _instances(events),
          _probeHorizon(probe_horizon)
    {
        const DataflowGraph &graph = topology.graph;
        if (faults && faults->enabled)
            _faults.emplace(*faults);
        // Per-instance dataflow counters live in two flat arrays so
        // the setup's allocation count is independent of the event
        // count (the counting-allocator tests compare stream runs of
        // different lengths). sensorFinishAt stays per instance: it
        // exists only on the fault path, which is exempt from the
        // zero-allocation claim.
        const size_t nodes = graph.nodeCount();
        _inputsPending.assign(events * nodes, 0);
        _done.assign(events * nodes, 0);
        for (size_t k = 0; k < events; ++k) {
            for (size_t v = 1; v < nodes; ++v) {
                _inputsPending[k * nodes + v] =
                    graph.predecessors(v).size();
            }
        }
        if (_faults) {
            for (Instance &instance : _instances) {
                instance.sensorFinishAt.assign(nodes, std::nullopt);
            }
        }
        // Placement is fixed for the whole run, so each broadcast
        // group's consumer split (same end as the producer vs the
        // other end) is static: precompute it once instead of
        // building an other-end vector per event. The same-end list
        // preserves the group's consumer order, so deliveries happen
        // in the original sequence.
        _splits.resize(_groups.size());
        for (size_t g = 0; g < _groups.size(); ++g) {
            const BroadcastGroup &group = _groups[g];
            const bool producer_in_sensor =
                _placement.inSensor(group.producer);
            for (size_t v : group.consumers) {
                if (_placement.inSensor(v) == producer_in_sensor)
                    _splits[g].sameEnd.push_back(v);
                else
                    _splits[g].otherEnd.push_back(v);
            }
        }
        // Pre-size the event heap: all stream injections plus a few
        // in-flight completions per event.
        _queue.reserve(events + 32);
    }

    /** Inject event @p k's raw segment at time @p at. */
    void
    inject(size_t k, Time at)
    {
        _queue.schedule(at, [this, k]() {
            completeNode(k, DataflowGraph::sourceId);
        });
    }

    /** Run to completion and harvest results. */
    SimResult
    run()
    {
        _queue.runAll();
        for (size_t k = 0; k < _instances.size(); ++k) {
            const Instance &instance = _instances[k];
            xproAssert(instance.resultAt.has_value(),
                       "event %zu never completed", k);
            // A degraded event legitimately skips cells: the local
            // fallback recomputes them outside the dataflow walk.
            if (instance.degraded)
                continue;
            const size_t nodes = _topology.graph.nodeCount();
            for (size_t v = 1; v < nodes; ++v) {
                xproAssert(_done[k * nodes + v],
                           "cell '%s' never executed for event %zu",
                           _topology.graph.node(v).name.c_str(), k);
            }
        }
        if (_faults) {
            RobustnessReport &stats = _faults->stats();
            stats.bufferedResults = _buffered.size();
            if (_degradedMode)
                stats.outageTimeMs +=
                    (_queue.now() - _outageStart).ms();
            if (stats.replayedResults > 0) {
                stats.meanRecoveryMs =
                    _recoverySum.ms() /
                    static_cast<double>(stats.replayedResults);
            }
            _result.robustness = stats;
        }
        _result.completion = *_instances.back().resultAt;
        return _result;
    }

    /** Completion time of event @p k. */
    Time
    completionOf(size_t k) const
    {
        return *_instances[k].resultAt;
    }

  private:
    struct Instance
    {
        std::optional<Time> resultAt;
        Time injectedAt;
        /** Fault path: completion time of every node that started on
         *  the sensor end (source included), for the fallback DP. */
        std::vector<std::optional<Time>> sensorFinishAt;
        /** Fault path: classified via the local fallback. */
        bool degraded = false;
        /** Fault path: when the local classification was produced. */
        std::optional<Time> localResultAt;
    };

    void
    deliverTo(size_t k, size_t v)
    {
        size_t &pending =
            _inputsPending[k * _topology.graph.nodeCount() + v];
        xproAssert(pending > 0, "duplicate delivery to '%s'",
                   _topology.graph.node(v).name.c_str());
        if (--pending == 0)
            completeNode(k, v);
    }

    void
    completeNode(size_t k, size_t u)
    {
        const DataflowGraph &graph = _topology.graph;
        Instance &instance = _instances[k];
        Time exec;
        if (u != DataflowGraph::sourceId) {
            const CellCosts &costs = graph.node(u).costs;
            if (_placement.inSensor(u)) {
                exec = costs.sensorDelay;
                _result.sensorEnergy.compute += costs.sensorEnergy;
                if (_faults)
                    instance.sensorFinishAt[u] = _queue.now() + exec;
            } else {
                exec = costs.aggregatorDelay;
            }
        } else {
            instance.injectedAt = _queue.now();
            if (_faults) {
                instance.sensorFinishAt[u] = _queue.now();
                // Injected mid-outage: don't even try the link, go
                // straight to the local fallback.
                if (_degradedMode)
                    degradeEvent(k);
            }
        }
        // Pack (event, node) into one word so the capture fits the
        // std::function small-buffer slot (16 bytes with `this`):
        // no allocation per node completion.
        const size_t nodes = graph.nodeCount();
        _queue.scheduleAfter(exec, [this, packed = k * nodes + u]() {
            const size_t nodes2 = _topology.graph.nodeCount();
            finishNode(packed / nodes2, packed % nodes2);
        });
    }

    void
    finishNode(size_t k, size_t u)
    {
        const DataflowGraph &graph = _topology.graph;
        Instance &instance = _instances[k];
        _done[k * graph.nodeCount() + u] = 1;
        if (_captureTrace) {
            _result.trace.push_back(
                {_queue.now(), "done " + graph.node(u).name + " #" +
                                   std::to_string(k)});
        }

        // Degraded instances stop propagating: everything not yet
        // started is being recomputed by the local fallback, and the
        // link is considered down for this event.
        if (instance.degraded)
            return;

        if (u == _topology.fusionNode) {
            if (_placement.inSensor(u)) {
                if (_faults)
                    sendResult(k);
                else
                    sendResultLegacy(k);
            } else {
                instance.resultAt = _queue.now();
            }
        }

        for (size_t g = 0; g < _groups.size(); ++g) {
            const BroadcastGroup &group = _groups[g];
            if (group.producer != u)
                continue;
            const GroupSplit &split = _splits[g];
            for (size_t v : split.sameEnd)
                deliverTo(k, v);
            if (!split.otherEnd.empty()) {
                std::string what;
                if (_captureTrace || _faults) {
                    what = graph.node(u).name + " payload #" +
                           std::to_string(k);
                }
                if (_faults) {
                    sendPayload(k, u, group.bits, split.otherEnd,
                                what);
                } else {
                    const TransferCost cost =
                        _link.transfer(group.bits);
                    if (_placement.inSensor(u))
                        _result.sensorEnergy.tx += cost.txEnergy;
                    else
                        _result.sensorEnergy.rx += cost.rxEnergy;
                    // Deliveries read the static split, so the
                    // capture is one packed (event, group) word:
                    // allocation-free like completeNode above.
                    const size_t groups = _groups.size();
                    _radio.request(
                        cost,
                        [this, packed = k * groups + g]() {
                            const size_t groups2 = _groups.size();
                            const size_t k2 = packed / groups2;
                            for (size_t v :
                                 _splits[packed % groups2].otherEnd)
                                deliverTo(k2, v);
                        },
                        what);
                }
            }
        }
    }

    /** Legacy (expectation-folded) result transfer. */
    void
    sendResultLegacy(size_t k)
    {
        const TransferCost cost =
            _link.transfer(EngineTopology::resultBits);
        _result.sensorEnergy.tx += cost.txEnergy;
        std::string what;
        if (_captureTrace)
            what = "result #" + std::to_string(k);
        _radio.request(
            cost,
            [this, k]() { _instances[k].resultAt = _queue.now(); },
            what);
    }

    // ---- Fault-injected path -------------------------------------

    ChannelGrant
    grantFn()
    {
        return [this](Time air, const std::string &what,
                      EventQueue::Handler on_done) {
            _radio.occupy(air, what, std::move(on_done));
        };
    }

    std::function<void(const std::string &)>
    noteFn()
    {
        return [this](const std::string &what) {
            _result.trace.push_back({_queue.now(), what});
        };
    }

    /** Cross-end payload under ARQ. */
    void
    sendPayload(size_t k, size_t u, size_t bits,
                std::vector<size_t> other_end, const std::string &what)
    {
        ArqPacket packet;
        packet.payloadBits = bits;
        packet.senderInSensor = _placement.inSensor(u);
        packet.what = what;
        runArq(_queue, *_faults, _link, std::move(packet),
               &_result.sensorEnergy, grantFn(), noteFn(),
               [this, k, other_end = std::move(other_end)](
                   bool delivered, size_t) {
                   onPacketOutcome(delivered);
                   Instance &instance = _instances[k];
                   if (delivered) {
                       if (!instance.degraded) {
                           for (size_t v : other_end)
                               deliverTo(k, v);
                       }
                   } else {
                       degradeEvent(k);
                   }
               });
    }

    /** In-sensor fusion result under ARQ. */
    void
    sendResult(size_t k)
    {
        ArqPacket packet;
        packet.payloadBits = EngineTopology::resultBits;
        packet.senderInSensor = true;
        packet.what = "result #" + std::to_string(k);
        runArq(_queue, *_faults, _link, std::move(packet),
               &_result.sensorEnergy, grantFn(), noteFn(),
               [this, k](bool delivered, size_t) {
                   onPacketOutcome(delivered);
                   Instance &instance = _instances[k];
                   if (instance.degraded)
                       return;
                   if (delivered)
                       instance.resultAt = _queue.now();
                   else
                       degradeEvent(k);
               });
    }

    /** Replay a buffered local classification after recovery. */
    void
    replayResult(size_t k)
    {
        ArqPacket packet;
        packet.payloadBits = EngineTopology::resultBits;
        packet.senderInSensor = true;
        packet.what = "replay result #" + std::to_string(k);
        runArq(_queue, *_faults, _link, std::move(packet),
               &_result.sensorEnergy, grantFn(), noteFn(),
               [this, k](bool delivered, size_t) {
                   onPacketOutcome(delivered);
                   if (delivered) {
                       ++_faults->stats().replayedResults;
                       _recoverySum += _queue.now() -
                                       *_instances[k].localResultAt;
                   } else {
                       // Back to the shelf until the next recovery.
                       _buffered.push_back(k);
                   }
               });
    }

    /** Outage detector: every final packet outcome lands here. */
    void
    onPacketOutcome(bool delivered)
    {
        RobustnessReport &stats = _faults->stats();
        if (delivered) {
            _abandonStreak = 0;
            if (_degradedMode) {
                _degradedMode = false;
                stats.outageTimeMs +=
                    (_queue.now() - _outageStart).ms();
                _result.trace.push_back({_queue.now(), "outage end"});
                flushBuffered();
            }
            return;
        }
        ++_abandonStreak;
        if (!_degradedMode &&
            _abandonStreak >= _faults->profile().outageThreshold) {
            _degradedMode = true;
            _outageStart = _queue.now();
            ++stats.outages;
            _result.trace.push_back({_queue.now(), "outage start"});
            scheduleProbe();
        }
    }

    void
    flushBuffered()
    {
        std::vector<size_t> pending;
        pending.swap(_buffered);
        for (size_t k : pending)
            replayResult(k);
    }

    void
    scheduleProbe()
    {
        const Time next = _queue.now() +
                          _faults->profile().probeInterval;
        // Probing stops past the horizon so the queue always drains
        // under a permanent outage.
        if (next > _probeHorizon)
            return;
        _queue.schedule(next, [this]() {
            if (!_degradedMode)
                return;
            sendProbe();
        });
    }

    void
    sendProbe()
    {
        ArqPacket packet;
        packet.payloadBits = EngineTopology::resultBits;
        packet.senderInSensor = true;
        packet.what = "probe #" + std::to_string(_probeCount++);
        packet.isProbe = true;
        runArq(_queue, *_faults, _link, std::move(packet),
               &_result.sensorEnergy, grantFn(), noteFn(),
               [this](bool delivered, size_t) {
                   if (!_degradedMode)
                       return;
                   if (delivered)
                       onPacketOutcome(true);
                   else
                       scheduleProbe();
               });
    }

    /** Finish event @p k locally from the current time. */
    void
    degradeEvent(size_t k)
    {
        Instance &instance = _instances[k];
        if (instance.degraded)
            return;
        instance.degraded = true;
        ++_faults->stats().degradedEvents;
        const Time at = _queue.now();
        _result.trace.push_back(
            {at, "fallback #" + std::to_string(k)});
        const LocalFallback plan = computeLocalFallback(
            _topology, _placement, instance.sensorFinishAt, at);
        _result.sensorEnergy.compute += plan.compute;
        _queue.schedule(plan.completion, [this, k]() {
            Instance &instance = _instances[k];
            instance.resultAt = _queue.now();
            instance.localResultAt = _queue.now();
            _result.trace.push_back(
                {_queue.now(),
                 "local result #" + std::to_string(k)});
            if (_degradedMode)
                _buffered.push_back(k);
            else
                replayResult(k);
        });
    }

    /** Static consumer split of one broadcast group under the fixed
     * placement (consumer order preserved within each list). */
    struct GroupSplit
    {
        std::vector<size_t> sameEnd;
        std::vector<size_t> otherEnd;
    };

    const EngineTopology &_topology;
    const Placement &_placement;
    const WirelessLink &_link;
    std::vector<BroadcastGroup> _groups;
    std::vector<GroupSplit> _splits;
    const bool _captureTrace;
    EventQueue _queue;
    SimResult _result;
    Radio _radio;
    std::vector<Instance> _instances;
    /** Flat per-(event, node) dataflow state: pending predecessor
     * counts and executed flags, indexed k * nodeCount + v. */
    std::vector<size_t> _inputsPending;
    std::vector<uint8_t> _done;

    // Fault-injection state (unused on the legacy path).
    std::optional<FaultState> _faults;
    Time _probeHorizon;
    size_t _abandonStreak = 0;
    bool _degradedMode = false;
    Time _outageStart;
    std::vector<size_t> _buffered;
    Time _recoverySum;
    size_t _probeCount = 0;
};

StreamResult
runStream(const EngineTopology &topology, const Placement &placement,
          const WirelessLink &link, double events_per_second,
          size_t events, const FaultProfile *faults)
{
    xproAssert(events_per_second > 0.0, "event rate must be positive");
    xproAssert(events > 0, "need at least one event");

    const Time period = Time::seconds(1.0 / events_per_second);
    // Recovery probes run at most one period past the last
    // injection; afterwards a still-down link stays down.
    const Time horizon = period * static_cast<double>(events);
    // StreamResult carries no trace, so stream runs skip trace
    // capture entirely: same simulation, same numbers, and the
    // steady-state fault-free event loop stays allocation-free.
    SystemSimulator simulator(topology, placement, link, events,
                              faults, horizon,
                              /*capture_trace=*/false);
    for (size_t k = 0; k < events; ++k)
        simulator.inject(k, period * static_cast<double>(k));
    const SimResult sim = simulator.run();

    StreamResult result;
    result.events = events;
    result.sensorEnergy = sim.sensorEnergy;
    result.robustness = sim.robustness;
    result.degradedEvents = sim.robustness.degradedEvents;
    Time latency_sum;
    for (size_t k = 0; k < events; ++k) {
        const Time latency = simulator.completionOf(k) -
                             period * static_cast<double>(k);
        latency_sum += latency;
        result.worstLatency = std::max(result.worstLatency, latency);
        // Real-time requirement: done before the next segment has
        // been fully acquired.
        if (latency > period)
            ++result.deadlineMisses;
    }
    result.meanLatency =
        Time::seconds(latency_sum.sec() / static_cast<double>(events));
    return result;
}

} // namespace

SimResult
simulateEvent(const EngineTopology &topology,
              const Placement &placement, const WirelessLink &link)
{
    SystemSimulator simulator(topology, placement, link, 1);
    simulator.inject(0, Time());
    return simulator.run();
}

SimResult
simulateEvent(const EngineTopology &topology,
              const Placement &placement, const WirelessLink &link,
              const FaultProfile &faults)
{
    if (!faults.enabled)
        return simulateEvent(topology, placement, link);
    faults.validate();
    SystemSimulator simulator(topology, placement, link, 1, &faults,
                              Time());
    simulator.inject(0, Time());
    return simulator.run();
}

StreamResult
simulateStream(const EngineTopology &topology,
               const Placement &placement, const WirelessLink &link,
               double events_per_second, size_t events)
{
    return runStream(topology, placement, link, events_per_second,
                     events, nullptr);
}

StreamResult
simulateStream(const EngineTopology &topology,
               const Placement &placement, const WirelessLink &link,
               double events_per_second, size_t events,
               const FaultProfile &faults)
{
    if (!faults.enabled) {
        return runStream(topology, placement, link, events_per_second,
                         events, nullptr);
    }
    faults.validate();
    return runStream(topology, placement, link, events_per_second,
                     events, &faults);
}

} // namespace xpro
