#include "sim/system_sim.hh"

#include <algorithm>
#include <functional>
#include <optional>

#include "common/logging.hh"
#include "core/transfers.hh"
#include "sim/event_queue.hh"

namespace xpro
{

namespace
{

/** Shared half-duplex radio: serializes transfer requests FIFO. */
class Radio
{
  public:
    Radio(EventQueue &queue, SimResult &result)
        : _queue(queue), _result(result)
    {}

    /**
     * Request a transfer of @p cost; @p on_delivered fires when the
     * payload lands on the other end.
     */
    void
    request(const TransferCost &cost, EventQueue::Handler on_delivered,
            const std::string &what)
    {
        _backlog.push_back({cost, std::move(on_delivered), what});
        if (!_busy)
            startNext();
    }

  private:
    struct Pending
    {
        TransferCost cost;
        EventQueue::Handler onDelivered;
        std::string what;
    };

    void
    startNext()
    {
        if (_backlog.empty()) {
            _busy = false;
            return;
        }
        _busy = true;
        Pending job = std::move(_backlog.front());
        _backlog.erase(_backlog.begin());
        _result.trace.push_back(
            {_queue.now(), "radio start: " + job.what});
        _result.radioBusy += job.cost.airTime;
        ++_result.transfers;
        _queue.scheduleAfter(
            job.cost.airTime,
            [this, job = std::move(job)]() mutable {
                _result.trace.push_back(
                    {_queue.now(), "radio done: " + job.what});
                job.onDelivered();
                startNext();
            });
    }

    EventQueue &_queue;
    SimResult &_result;
    bool _busy = false;
    std::vector<Pending> _backlog;
};

/**
 * Simulates a sequence of independent events through one placed
 * engine sharing a single radio. Per-event dataflow state is kept
 * per instance so consecutive segments may overlap in time.
 */
class SystemSimulator
{
  public:
    SystemSimulator(const EngineTopology &topology,
                    const Placement &placement,
                    const WirelessLink &link, size_t events)
        : _topology(topology),
          _placement(placement),
          _link(link),
          _groups(broadcastGroups(topology)),
          _radio(_queue, _result),
          _instances(events)
    {
        const DataflowGraph &graph = topology.graph;
        for (Instance &instance : _instances) {
            instance.inputsPending.assign(graph.nodeCount(), 0);
            for (size_t v = 1; v < graph.nodeCount(); ++v) {
                instance.inputsPending[v] =
                    graph.predecessors(v).size();
            }
            instance.done.assign(graph.nodeCount(), false);
        }
    }

    /** Inject event @p k's raw segment at time @p at. */
    void
    inject(size_t k, Time at)
    {
        _queue.schedule(at, [this, k]() {
            completeNode(k, DataflowGraph::sourceId);
        });
    }

    /** Run to completion and harvest results. */
    SimResult
    run()
    {
        _queue.runAll();
        for (size_t k = 0; k < _instances.size(); ++k) {
            const Instance &instance = _instances[k];
            xproAssert(instance.resultAt.has_value(),
                       "event %zu never completed", k);
            for (size_t v = 1; v < _topology.graph.nodeCount(); ++v) {
                xproAssert(instance.done[v],
                           "cell '%s' never executed for event %zu",
                           _topology.graph.node(v).name.c_str(), k);
            }
        }
        _result.completion = *_instances.back().resultAt;
        return _result;
    }

    /** Completion time of event @p k. */
    Time
    completionOf(size_t k) const
    {
        return *_instances[k].resultAt;
    }

  private:
    struct Instance
    {
        std::vector<size_t> inputsPending;
        std::vector<bool> done;
        std::optional<Time> resultAt;
        Time injectedAt;
    };

    void
    deliverTo(size_t k, size_t v)
    {
        Instance &instance = _instances[k];
        xproAssert(instance.inputsPending[v] > 0,
                   "duplicate delivery to '%s'",
                   _topology.graph.node(v).name.c_str());
        if (--instance.inputsPending[v] == 0)
            completeNode(k, v);
    }

    void
    completeNode(size_t k, size_t u)
    {
        const DataflowGraph &graph = _topology.graph;
        Time exec;
        if (u != DataflowGraph::sourceId) {
            const CellCosts &costs = graph.node(u).costs;
            if (_placement.inSensor(u)) {
                exec = costs.sensorDelay;
                _result.sensorEnergy.compute += costs.sensorEnergy;
            } else {
                exec = costs.aggregatorDelay;
            }
        } else {
            _instances[k].injectedAt = _queue.now();
        }
        _queue.scheduleAfter(exec, [this, k, u]() {
            finishNode(k, u);
        });
    }

    void
    finishNode(size_t k, size_t u)
    {
        const DataflowGraph &graph = _topology.graph;
        Instance &instance = _instances[k];
        instance.done[u] = true;
        _result.trace.push_back(
            {_queue.now(), "done " + graph.node(u).name + " #" +
                               std::to_string(k)});

        if (u == _topology.fusionNode) {
            if (_placement.inSensor(u)) {
                const TransferCost cost =
                    _link.transfer(EngineTopology::resultBits);
                _result.sensorEnergy.tx += cost.txEnergy;
                _radio.request(
                    cost,
                    [this, k]() {
                        _instances[k].resultAt = _queue.now();
                    },
                    "result #" + std::to_string(k));
            } else {
                instance.resultAt = _queue.now();
            }
        }

        for (const BroadcastGroup &group : _groups) {
            if (group.producer != u)
                continue;
            std::vector<size_t> other_end;
            for (size_t v : group.consumers) {
                if (_placement.inSensor(v) == _placement.inSensor(u))
                    deliverTo(k, v);
                else
                    other_end.push_back(v);
            }
            if (!other_end.empty()) {
                const TransferCost cost = _link.transfer(group.bits);
                if (_placement.inSensor(u))
                    _result.sensorEnergy.tx += cost.txEnergy;
                else
                    _result.sensorEnergy.rx += cost.rxEnergy;
                _radio.request(
                    cost,
                    [this, k, other_end]() {
                        for (size_t v : other_end)
                            deliverTo(k, v);
                    },
                    graph.node(u).name + " payload #" +
                        std::to_string(k));
            }
        }
    }

    const EngineTopology &_topology;
    const Placement &_placement;
    const WirelessLink &_link;
    std::vector<BroadcastGroup> _groups;
    EventQueue _queue;
    SimResult _result;
    Radio _radio;
    std::vector<Instance> _instances;
};

} // namespace

SimResult
simulateEvent(const EngineTopology &topology,
              const Placement &placement, const WirelessLink &link)
{
    SystemSimulator simulator(topology, placement, link, 1);
    simulator.inject(0, Time());
    return simulator.run();
}

StreamResult
simulateStream(const EngineTopology &topology,
               const Placement &placement, const WirelessLink &link,
               double events_per_second, size_t events)
{
    xproAssert(events_per_second > 0.0, "event rate must be positive");
    xproAssert(events > 0, "need at least one event");

    SystemSimulator simulator(topology, placement, link, events);
    const Time period = Time::seconds(1.0 / events_per_second);
    for (size_t k = 0; k < events; ++k)
        simulator.inject(k, period * static_cast<double>(k));
    simulator.run();

    StreamResult result;
    result.events = events;
    Time latency_sum;
    for (size_t k = 0; k < events; ++k) {
        const Time latency = simulator.completionOf(k) -
                             period * static_cast<double>(k);
        latency_sum += latency;
        result.worstLatency = std::max(result.worstLatency, latency);
        // Real-time requirement: done before the next segment has
        // been fully acquired.
        if (latency > period)
            ++result.deadlineMisses;
    }
    result.meanLatency =
        Time::seconds(latency_sum.sec() / static_cast<double>(events));
    return result;
}

} // namespace xpro
