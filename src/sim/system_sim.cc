#include "sim/system_sim.hh"

#include <algorithm>
#include <functional>
#include <optional>

#include "common/logging.hh"
#include "core/transfers.hh"
#include "sim/event_queue.hh"
#include "sim/fault_sim.hh"

namespace xpro
{

namespace
{

/** Shared half-duplex radio: serializes transfer requests FIFO. */
class Radio
{
  public:
    Radio(EventQueue &queue, SimResult &result)
        : _queue(queue), _result(result)
    {}

    /**
     * Request a transfer of @p cost; @p on_delivered fires when the
     * payload lands on the other end.
     */
    void
    request(const TransferCost &cost, EventQueue::Handler on_delivered,
            const std::string &what)
    {
        occupy(cost.airTime, what, std::move(on_delivered));
    }

    /**
     * Occupy the channel for @p air (one ARQ attempt, or one
     * expectation-folded transfer); @p on_done fires when the
     * occupation ends.
     */
    void
    occupy(Time air, const std::string &what,
           EventQueue::Handler on_done)
    {
        _backlog.push_back({air, std::move(on_done), what});
        if (!_busy)
            startNext();
    }

  private:
    struct Pending
    {
        Time air;
        EventQueue::Handler onDone;
        std::string what;
    };

    void
    startNext()
    {
        if (_backlog.empty()) {
            _busy = false;
            return;
        }
        _busy = true;
        Pending job = std::move(_backlog.front());
        _backlog.erase(_backlog.begin());
        _result.trace.push_back(
            {_queue.now(), "radio start: " + job.what});
        _result.radioBusy += job.air;
        ++_result.transfers;
        _queue.scheduleAfter(
            job.air, [this, job = std::move(job)]() mutable {
                _result.trace.push_back(
                    {_queue.now(), "radio done: " + job.what});
                job.onDone();
                startNext();
            });
    }

    EventQueue &_queue;
    SimResult &_result;
    bool _busy = false;
    std::vector<Pending> _backlog;
};

/**
 * Simulates a sequence of independent events through one placed
 * engine sharing a single radio. Per-event dataflow state is kept
 * per instance so consecutive segments may overlap in time.
 *
 * With a fault profile, inter-end payloads go through bounded ARQ
 * (sim/fault_sim) instead of the expectation-folded transfer costs,
 * and abandoned packets drive the outage detector / local-fallback
 * machinery. Without one, the legacy path is taken verbatim.
 */
class SystemSimulator
{
  public:
    SystemSimulator(const EngineTopology &topology,
                    const Placement &placement,
                    const WirelessLink &link, size_t events,
                    const FaultProfile *faults = nullptr,
                    Time probe_horizon = Time())
        : _topology(topology),
          _placement(placement),
          _link(link),
          _groups(broadcastGroups(topology)),
          _radio(_queue, _result),
          _instances(events),
          _probeHorizon(probe_horizon)
    {
        const DataflowGraph &graph = topology.graph;
        if (faults && faults->enabled)
            _faults.emplace(*faults);
        for (Instance &instance : _instances) {
            instance.inputsPending.assign(graph.nodeCount(), 0);
            for (size_t v = 1; v < graph.nodeCount(); ++v) {
                instance.inputsPending[v] =
                    graph.predecessors(v).size();
            }
            instance.done.assign(graph.nodeCount(), false);
            if (_faults) {
                instance.sensorFinishAt.assign(graph.nodeCount(),
                                               std::nullopt);
            }
        }
    }

    /** Inject event @p k's raw segment at time @p at. */
    void
    inject(size_t k, Time at)
    {
        _queue.schedule(at, [this, k]() {
            completeNode(k, DataflowGraph::sourceId);
        });
    }

    /** Run to completion and harvest results. */
    SimResult
    run()
    {
        _queue.runAll();
        for (size_t k = 0; k < _instances.size(); ++k) {
            const Instance &instance = _instances[k];
            xproAssert(instance.resultAt.has_value(),
                       "event %zu never completed", k);
            // A degraded event legitimately skips cells: the local
            // fallback recomputes them outside the dataflow walk.
            if (instance.degraded)
                continue;
            for (size_t v = 1; v < _topology.graph.nodeCount(); ++v) {
                xproAssert(instance.done[v],
                           "cell '%s' never executed for event %zu",
                           _topology.graph.node(v).name.c_str(), k);
            }
        }
        if (_faults) {
            RobustnessReport &stats = _faults->stats();
            stats.bufferedResults = _buffered.size();
            if (_degradedMode)
                stats.outageTimeMs +=
                    (_queue.now() - _outageStart).ms();
            if (stats.replayedResults > 0) {
                stats.meanRecoveryMs =
                    _recoverySum.ms() /
                    static_cast<double>(stats.replayedResults);
            }
            _result.robustness = stats;
        }
        _result.completion = *_instances.back().resultAt;
        return _result;
    }

    /** Completion time of event @p k. */
    Time
    completionOf(size_t k) const
    {
        return *_instances[k].resultAt;
    }

  private:
    struct Instance
    {
        std::vector<size_t> inputsPending;
        std::vector<bool> done;
        std::optional<Time> resultAt;
        Time injectedAt;
        /** Fault path: completion time of every node that started on
         *  the sensor end (source included), for the fallback DP. */
        std::vector<std::optional<Time>> sensorFinishAt;
        /** Fault path: classified via the local fallback. */
        bool degraded = false;
        /** Fault path: when the local classification was produced. */
        std::optional<Time> localResultAt;
    };

    void
    deliverTo(size_t k, size_t v)
    {
        Instance &instance = _instances[k];
        xproAssert(instance.inputsPending[v] > 0,
                   "duplicate delivery to '%s'",
                   _topology.graph.node(v).name.c_str());
        if (--instance.inputsPending[v] == 0)
            completeNode(k, v);
    }

    void
    completeNode(size_t k, size_t u)
    {
        const DataflowGraph &graph = _topology.graph;
        Instance &instance = _instances[k];
        Time exec;
        if (u != DataflowGraph::sourceId) {
            const CellCosts &costs = graph.node(u).costs;
            if (_placement.inSensor(u)) {
                exec = costs.sensorDelay;
                _result.sensorEnergy.compute += costs.sensorEnergy;
                if (_faults)
                    instance.sensorFinishAt[u] = _queue.now() + exec;
            } else {
                exec = costs.aggregatorDelay;
            }
        } else {
            instance.injectedAt = _queue.now();
            if (_faults) {
                instance.sensorFinishAt[u] = _queue.now();
                // Injected mid-outage: don't even try the link, go
                // straight to the local fallback.
                if (_degradedMode)
                    degradeEvent(k);
            }
        }
        _queue.scheduleAfter(exec, [this, k, u]() {
            finishNode(k, u);
        });
    }

    void
    finishNode(size_t k, size_t u)
    {
        const DataflowGraph &graph = _topology.graph;
        Instance &instance = _instances[k];
        instance.done[u] = true;
        _result.trace.push_back(
            {_queue.now(), "done " + graph.node(u).name + " #" +
                               std::to_string(k)});

        // Degraded instances stop propagating: everything not yet
        // started is being recomputed by the local fallback, and the
        // link is considered down for this event.
        if (instance.degraded)
            return;

        if (u == _topology.fusionNode) {
            if (_placement.inSensor(u)) {
                if (_faults)
                    sendResult(k);
                else
                    sendResultLegacy(k);
            } else {
                instance.resultAt = _queue.now();
            }
        }

        for (const BroadcastGroup &group : _groups) {
            if (group.producer != u)
                continue;
            std::vector<size_t> other_end;
            for (size_t v : group.consumers) {
                if (_placement.inSensor(v) == _placement.inSensor(u))
                    deliverTo(k, v);
                else
                    other_end.push_back(v);
            }
            if (!other_end.empty()) {
                const std::string what = graph.node(u).name +
                                         " payload #" +
                                         std::to_string(k);
                if (_faults) {
                    sendPayload(k, u, group.bits,
                                std::move(other_end), what);
                } else {
                    const TransferCost cost =
                        _link.transfer(group.bits);
                    if (_placement.inSensor(u))
                        _result.sensorEnergy.tx += cost.txEnergy;
                    else
                        _result.sensorEnergy.rx += cost.rxEnergy;
                    _radio.request(
                        cost,
                        [this, k, other_end]() {
                            for (size_t v : other_end)
                                deliverTo(k, v);
                        },
                        what);
                }
            }
        }
    }

    /** Legacy (expectation-folded) result transfer. */
    void
    sendResultLegacy(size_t k)
    {
        const TransferCost cost =
            _link.transfer(EngineTopology::resultBits);
        _result.sensorEnergy.tx += cost.txEnergy;
        _radio.request(
            cost,
            [this, k]() { _instances[k].resultAt = _queue.now(); },
            "result #" + std::to_string(k));
    }

    // ---- Fault-injected path -------------------------------------

    ChannelGrant
    grantFn()
    {
        return [this](Time air, const std::string &what,
                      EventQueue::Handler on_done) {
            _radio.occupy(air, what, std::move(on_done));
        };
    }

    std::function<void(const std::string &)>
    noteFn()
    {
        return [this](const std::string &what) {
            _result.trace.push_back({_queue.now(), what});
        };
    }

    /** Cross-end payload under ARQ. */
    void
    sendPayload(size_t k, size_t u, size_t bits,
                std::vector<size_t> other_end, const std::string &what)
    {
        ArqPacket packet;
        packet.payloadBits = bits;
        packet.senderInSensor = _placement.inSensor(u);
        packet.what = what;
        runArq(_queue, *_faults, _link, std::move(packet),
               &_result.sensorEnergy, grantFn(), noteFn(),
               [this, k, other_end = std::move(other_end)](
                   bool delivered, size_t) {
                   onPacketOutcome(delivered);
                   Instance &instance = _instances[k];
                   if (delivered) {
                       if (!instance.degraded) {
                           for (size_t v : other_end)
                               deliverTo(k, v);
                       }
                   } else {
                       degradeEvent(k);
                   }
               });
    }

    /** In-sensor fusion result under ARQ. */
    void
    sendResult(size_t k)
    {
        ArqPacket packet;
        packet.payloadBits = EngineTopology::resultBits;
        packet.senderInSensor = true;
        packet.what = "result #" + std::to_string(k);
        runArq(_queue, *_faults, _link, std::move(packet),
               &_result.sensorEnergy, grantFn(), noteFn(),
               [this, k](bool delivered, size_t) {
                   onPacketOutcome(delivered);
                   Instance &instance = _instances[k];
                   if (instance.degraded)
                       return;
                   if (delivered)
                       instance.resultAt = _queue.now();
                   else
                       degradeEvent(k);
               });
    }

    /** Replay a buffered local classification after recovery. */
    void
    replayResult(size_t k)
    {
        ArqPacket packet;
        packet.payloadBits = EngineTopology::resultBits;
        packet.senderInSensor = true;
        packet.what = "replay result #" + std::to_string(k);
        runArq(_queue, *_faults, _link, std::move(packet),
               &_result.sensorEnergy, grantFn(), noteFn(),
               [this, k](bool delivered, size_t) {
                   onPacketOutcome(delivered);
                   if (delivered) {
                       ++_faults->stats().replayedResults;
                       _recoverySum += _queue.now() -
                                       *_instances[k].localResultAt;
                   } else {
                       // Back to the shelf until the next recovery.
                       _buffered.push_back(k);
                   }
               });
    }

    /** Outage detector: every final packet outcome lands here. */
    void
    onPacketOutcome(bool delivered)
    {
        RobustnessReport &stats = _faults->stats();
        if (delivered) {
            _abandonStreak = 0;
            if (_degradedMode) {
                _degradedMode = false;
                stats.outageTimeMs +=
                    (_queue.now() - _outageStart).ms();
                _result.trace.push_back({_queue.now(), "outage end"});
                flushBuffered();
            }
            return;
        }
        ++_abandonStreak;
        if (!_degradedMode &&
            _abandonStreak >= _faults->profile().outageThreshold) {
            _degradedMode = true;
            _outageStart = _queue.now();
            ++stats.outages;
            _result.trace.push_back({_queue.now(), "outage start"});
            scheduleProbe();
        }
    }

    void
    flushBuffered()
    {
        std::vector<size_t> pending;
        pending.swap(_buffered);
        for (size_t k : pending)
            replayResult(k);
    }

    void
    scheduleProbe()
    {
        const Time next = _queue.now() +
                          _faults->profile().probeInterval;
        // Probing stops past the horizon so the queue always drains
        // under a permanent outage.
        if (next > _probeHorizon)
            return;
        _queue.schedule(next, [this]() {
            if (!_degradedMode)
                return;
            sendProbe();
        });
    }

    void
    sendProbe()
    {
        ArqPacket packet;
        packet.payloadBits = EngineTopology::resultBits;
        packet.senderInSensor = true;
        packet.what = "probe #" + std::to_string(_probeCount++);
        packet.isProbe = true;
        runArq(_queue, *_faults, _link, std::move(packet),
               &_result.sensorEnergy, grantFn(), noteFn(),
               [this](bool delivered, size_t) {
                   if (!_degradedMode)
                       return;
                   if (delivered)
                       onPacketOutcome(true);
                   else
                       scheduleProbe();
               });
    }

    /** Finish event @p k locally from the current time. */
    void
    degradeEvent(size_t k)
    {
        Instance &instance = _instances[k];
        if (instance.degraded)
            return;
        instance.degraded = true;
        ++_faults->stats().degradedEvents;
        const Time at = _queue.now();
        _result.trace.push_back(
            {at, "fallback #" + std::to_string(k)});
        const LocalFallback plan = computeLocalFallback(
            _topology, _placement, instance.sensorFinishAt, at);
        _result.sensorEnergy.compute += plan.compute;
        _queue.schedule(plan.completion, [this, k]() {
            Instance &instance = _instances[k];
            instance.resultAt = _queue.now();
            instance.localResultAt = _queue.now();
            _result.trace.push_back(
                {_queue.now(),
                 "local result #" + std::to_string(k)});
            if (_degradedMode)
                _buffered.push_back(k);
            else
                replayResult(k);
        });
    }

    const EngineTopology &_topology;
    const Placement &_placement;
    const WirelessLink &_link;
    std::vector<BroadcastGroup> _groups;
    EventQueue _queue;
    SimResult _result;
    Radio _radio;
    std::vector<Instance> _instances;

    // Fault-injection state (unused on the legacy path).
    std::optional<FaultState> _faults;
    Time _probeHorizon;
    size_t _abandonStreak = 0;
    bool _degradedMode = false;
    Time _outageStart;
    std::vector<size_t> _buffered;
    Time _recoverySum;
    size_t _probeCount = 0;
};

StreamResult
runStream(const EngineTopology &topology, const Placement &placement,
          const WirelessLink &link, double events_per_second,
          size_t events, const FaultProfile *faults)
{
    xproAssert(events_per_second > 0.0, "event rate must be positive");
    xproAssert(events > 0, "need at least one event");

    const Time period = Time::seconds(1.0 / events_per_second);
    // Recovery probes run at most one period past the last
    // injection; afterwards a still-down link stays down.
    const Time horizon = period * static_cast<double>(events);
    SystemSimulator simulator(topology, placement, link, events,
                              faults, horizon);
    for (size_t k = 0; k < events; ++k)
        simulator.inject(k, period * static_cast<double>(k));
    const SimResult sim = simulator.run();

    StreamResult result;
    result.events = events;
    result.sensorEnergy = sim.sensorEnergy;
    result.robustness = sim.robustness;
    result.degradedEvents = sim.robustness.degradedEvents;
    Time latency_sum;
    for (size_t k = 0; k < events; ++k) {
        const Time latency = simulator.completionOf(k) -
                             period * static_cast<double>(k);
        latency_sum += latency;
        result.worstLatency = std::max(result.worstLatency, latency);
        // Real-time requirement: done before the next segment has
        // been fully acquired.
        if (latency > period)
            ++result.deadlineMisses;
    }
    result.meanLatency =
        Time::seconds(latency_sum.sec() / static_cast<double>(events));
    return result;
}

} // namespace

SimResult
simulateEvent(const EngineTopology &topology,
              const Placement &placement, const WirelessLink &link)
{
    SystemSimulator simulator(topology, placement, link, 1);
    simulator.inject(0, Time());
    return simulator.run();
}

SimResult
simulateEvent(const EngineTopology &topology,
              const Placement &placement, const WirelessLink &link,
              const FaultProfile &faults)
{
    if (!faults.enabled)
        return simulateEvent(topology, placement, link);
    faults.validate();
    SystemSimulator simulator(topology, placement, link, 1, &faults,
                              Time());
    simulator.inject(0, Time());
    return simulator.run();
}

StreamResult
simulateStream(const EngineTopology &topology,
               const Placement &placement, const WirelessLink &link,
               double events_per_second, size_t events)
{
    return runStream(topology, placement, link, events_per_second,
                     events, nullptr);
}

StreamResult
simulateStream(const EngineTopology &topology,
               const Placement &placement, const WirelessLink &link,
               double events_per_second, size_t events,
               const FaultProfile &faults)
{
    if (!faults.enabled) {
        return runStream(topology, placement, link, events_per_second,
                         events, nullptr);
    }
    faults.validate();
    return runStream(topology, placement, link, events_per_second,
                     events, &faults);
}

} // namespace xpro
