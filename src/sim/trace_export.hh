/**
 * @file
 * Export a system-simulation trace as Chrome trace-event JSON
 * (load it at chrome://tracing or https://ui.perfetto.dev) so a
 * cross-end schedule — cells firing on both ends, payloads
 * serializing over the radio — can be inspected visually.
 */

#ifndef XPRO_SIM_TRACE_EXPORT_HH
#define XPRO_SIM_TRACE_EXPORT_HH

#include <ostream>
#include <string>

#include "sim/system_sim.hh"

namespace xpro
{

/**
 * Write @p result's trace as a Chrome trace-event JSON array.
 *
 * "start X"/"done X" pairs become duration events on the sensor or
 * aggregator track; "radio start"/"radio done" pairs land on the
 * radio track. Fault-injection markers ("retry"/"drop" on the radio
 * track, "outage"/"fallback"/"local result" on the sensor track)
 * become instant events.
 *
 * @param result Simulation result with a populated trace.
 * @param topology Topology the simulation ran on (for placement).
 * @param placement Placement used (selects the track per cell).
 * @param out Destination stream.
 */
void writeChromeTrace(const SimResult &result,
                      const EngineTopology &topology,
                      const Placement &placement, std::ostream &out);

/** Convenience: write to a file path; fatal on I/O failure. */
void writeChromeTraceFile(const SimResult &result,
                          const EngineTopology &topology,
                          const Placement &placement,
                          const std::string &path);

/**
 * Write a controller decision trace (control/) as Chrome
 * trace-event JSON: every decision becomes an instant event on the
 * controller track ("repartition w3", "hold w4", ...), and adopted
 * re-partitions additionally put their handover airtime on the
 * wireless-channel track as a duration event.
 */
void writeControlTrace(const ControlReport &report,
                       std::ostream &out);

/** Convenience: write to a file path; fatal on I/O failure. */
void writeControlTraceFile(const ControlReport &report,
                           const std::string &path);

} // namespace xpro

#endif // XPRO_SIM_TRACE_EXPORT_HH
