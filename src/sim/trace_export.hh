/**
 * @file
 * Export a system-simulation trace as Chrome trace-event JSON
 * (load it at chrome://tracing or https://ui.perfetto.dev) so a
 * cross-end schedule — cells firing on both ends, payloads
 * serializing over the radio — can be inspected visually.
 */

#ifndef XPRO_SIM_TRACE_EXPORT_HH
#define XPRO_SIM_TRACE_EXPORT_HH

#include <ostream>
#include <string>

#include "obs/stats_registry.hh"
#include "sim/system_sim.hh"

namespace xpro
{

/**
 * Write @p result's trace as a Chrome trace-event JSON array.
 *
 * "start X"/"done X" pairs become duration events on the sensor or
 * aggregator track; "radio start"/"radio done" pairs land on the
 * radio track. Fault-injection markers ("retry"/"drop" on the radio
 * track, "outage"/"fallback"/"local result" on the sensor track)
 * become instant events, and each ARQ retry/drop additionally feeds
 * a cumulative counter track ("arq retries"/"arq drops") so the
 * loss story renders as a step plot in Perfetto.
 *
 * The emitted array is valid JSON at any event count (records are
 * comma-joined, never comma-terminated), which test_trace_export
 * round-trips through a strict parser.
 *
 * @param result Simulation result with a populated trace.
 * @param topology Topology the simulation ran on (for placement).
 * @param placement Placement used (selects the track per cell).
 * @param out Destination stream.
 * @param stats Optional registry snapshot; when given, every
 *        nonzero stable counter/gauge becomes a flat "stat <name>"
 *        counter track spanning the trace (used by xpro_cli when
 *        --stats/--stats-out accompany --trace). Not part of the
 *        deterministic per-sim output, so byte-identity tests pass
 *        nullptr.
 */
void writeChromeTrace(const SimResult &result,
                      const EngineTopology &topology,
                      const Placement &placement, std::ostream &out,
                      const StatsSnapshot *stats = nullptr);

/** Convenience: write to a file path; fatal on I/O failure. */
void writeChromeTraceFile(const SimResult &result,
                          const EngineTopology &topology,
                          const Placement &placement,
                          const std::string &path,
                          const StatsSnapshot *stats = nullptr);

/**
 * Write a controller decision trace (control/) as Chrome
 * trace-event JSON: every decision becomes an instant event on the
 * controller track ("repartition w3", "hold w4", ...), and adopted
 * re-partitions additionally put their handover airtime on the
 * wireless-channel track as a duration event.
 */
void writeControlTrace(const ControlReport &report,
                       std::ostream &out);

/** Convenience: write to a file path; fatal on I/O failure. */
void writeControlTraceFile(const ControlReport &report,
                           const std::string &path);

/**
 * Write a population chaos trace (fleet/chaos) as Chrome
 * trace-event JSON: every recorded episode becomes an instant event
 * on the chaos track ("crash g3 (2048 nodes)", "restart g3",
 * "cloud-down", ...), and cumulative crash/restart counts plus the
 * live down-gateway count render as counter tracks.
 */
void writeChaosTrace(const ChaosReport &report, std::ostream &out);

/** Convenience: write to a file path; fatal on I/O failure. */
void writeChaosTraceFile(const ChaosReport &report,
                         const std::string &path);

} // namespace xpro

#endif // XPRO_SIM_TRACE_EXPORT_HH
