/**
 * @file
 * Discrete-event simulation kernels.
 *
 * Two queues live here:
 *
 *  - EventQueue: the original time-ordered queue of callbacks, a
 *    binary heap over a plain vector. Used by the cross-end system
 *    simulator and the detailed (per-cell) fleet simulation. Storage
 *    is reserve()d up front and reused across events, and the (time,
 *    sequence) strict total order makes the pop order identical to
 *    the former std::priority_queue implementation.
 *
 *  - TimeWheel + ShardedEventQueue: the population-scale kernel
 *    (DESIGN.md §16). Events are plain 24-byte records (no
 *    std::function), times are integer ticks (microseconds), and
 *    items pop in (tick, node, kind, data) order — a strict total
 *    order independent of insertion order, which is what makes the
 *    sharded drain deterministic. A hierarchical wheel (4 levels x
 *    256 slots with occupancy bitmaps) makes schedule/pop O(1)
 *    amortized; ShardedEventQueue runs S wheels under conservative
 *    time-window synchronization on a WorkerPool.
 */

#ifndef XPRO_SIM_EVENT_QUEUE_HH
#define XPRO_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/logging.hh"
#include "common/units.hh"
#include "common/worker_pool.hh"
#include "obs/stats_registry.hh"

namespace xpro
{

/** A time-ordered event queue. */
class EventQueue
{
  public:
    using Handler = std::function<void()>;

    /** Current simulation time. */
    Time now() const { return _now; }

    /** Schedule @p handler at absolute time @p at (>= now). */
    void schedule(Time at, Handler handler);

    /** Schedule @p handler @p delay after the current time. */
    void scheduleAfter(Time delay, Handler handler);

    /** Events currently pending. */
    size_t pending() const { return _events.size(); }

    /** Pre-size the underlying storage so scheduling up to
     * @p capacity concurrent events never reallocates. */
    void reserve(size_t capacity) { _events.reserve(capacity); }

    /**
     * Pop and run the earliest event.
     * @return False when the queue is empty.
     */
    bool runOne();

    /**
     * Run until the queue drains.
     * @param max_events Safety cap; exceeding it panics (an event
     *        loop in the simulated system).
     *
     * Publishes `sim.events_run` / `sim.queue_depth_highwater` to
     * the stats registry when it returns (DESIGN.md section 17).
     */
    void runAll(size_t max_events = 1000000);

  private:
    struct Event
    {
        Time at;
        uint64_t sequence; // FIFO tie-break for simultaneous events
        Handler handler;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.at.sec() != b.at.sec())
                return a.at > b.at;
            return a.sequence > b.sequence;
        }
    };

    Time _now;
    uint64_t _nextSequence = 0;
    std::vector<Event> _events; // heap ordered by Later
    size_t _maxPending = 0;     // high-water, published by runAll
};

/**
 * One pending population-scale event: plain data, no callback. The
 * meaning of (kind, data) belongs to the caller; the wheel only
 * promises the pop order (at, node, kind, data) — a strict total
 * order over distinct items, so the drain sequence is a pure
 * function of the set of scheduled items, never of their insertion
 * order. That is the (timestamp, node-id) tie-break the fleet
 * report's shard/worker determinism rests on.
 */
struct WheelItem
{
    /** Absolute due time in integer ticks (microseconds in the
     *  population fleet). */
    uint64_t at = 0;
    /** Owning node id: the deterministic tie-break for simultaneous
     *  events. */
    uint32_t node = 0;
    /** Caller-defined event kind (secondary tie-break). */
    uint32_t kind = 0;
    /** Caller-defined payload (tertiary tie-break). */
    uint32_t data = 0;
};

/**
 * Hierarchical timing wheel over integer ticks: 4 levels of 256
 * slots (level l spans 256^(l+1) ticks at 256^l granularity), with
 * a 256-bit occupancy bitmap per level so empty regions are skipped
 * in O(1) word scans rather than slot-by-slot. Items beyond the
 * top level's 2^32-tick horizon overflow into a side vector and are
 * re-filed when the wheel catches up.
 *
 * Scheduling is O(1); draining a populated slot is O(items log
 * items) for the per-slot sort (all items in a drained slot share
 * one tick, so the sort only orders the (node, kind, data)
 * tie-break). Slot vectors keep their capacity, so the steady-state
 * loop stops allocating once the high-water occupancy is reached.
 */
class TimeWheel
{
  public:
    /**
     * Plain per-wheel tallies, maintained with ordinary stores on
     * the (single-threaded-per-wheel) schedule/drain path and
     * published to the StatsRegistry by ShardedEventQueue::run once
     * per run. All Diag scope: slot sharing, cascade count and the
     * far-overflow split depend on how items land across shards.
     */
    struct Counters {
        uint64_t cascades = 0;     ///< items re-filed on window entry
        uint64_t farFiled = 0;     ///< items past the 2^32 horizon
        uint64_t farRefiled = 0;   ///< overflow items pulled back in
        uint64_t slotDrains = 0;   ///< non-empty slots drained
        uint64_t itemsDrained = 0; ///< items handed to drain fns
        /** pending() high-water, sampled at drainUntil() entry (the
         *  pending count peaks right after the fill burst that
         *  precedes a drain) — never updated per filed item, which
         *  would put a read-modify-write on the hottest path in the
         *  tree (DESIGN.md §17: batch-boundary sampling). */
        uint64_t maxPending = 0;
    };

    TimeWheel();

    const Counters &counters() const { return _counters; }

    /** Current tick: every item handed out so far had at <= now(),
     *  every item still pending has at >= now(). */
    uint64_t now() const { return _now; }

    size_t pending() const { return _size; }
    bool empty() const { return _size == 0; }

    /**
     * File @p item. Must not be in the past, and while a slot is
     * being drained new items must land strictly after the current
     * tick (an item scheduled AT the tick being drained would have
     * to be merged into an order that was already decided).
     */
    void
    schedule(const WheelItem &item)
    {
        xproAssert(item.at >= _now && (!_draining || item.at > _now),
                   "wheel item at tick %llu scheduled at now=%llu",
                   static_cast<unsigned long long>(item.at),
                   static_cast<unsigned long long>(_now));
        const uint64_t delta = item.at - _now;
        for (size_t level = 0; level < kLevels; ++level) {
            if (delta < (uint64_t(1) << (kSlotBits * (level + 1)))) {
                file(level, item);
                return;
            }
        }
        if (_far.empty() || item.at < _farMin)
            _farMin = item.at;
        _far.push_back(item);
        ++_size;
        XPRO_STAT(++_counters.farFiled);
    }

    /**
     * Pop every item with at < @p end in (at, node, kind, data)
     * order, invoking fn(item) for each; fn may schedule() new items
     * (strictly after the item's tick). Advances now() to @p end.
     */
    template <typename Fn>
    void
    drainUntil(uint64_t end, Fn &&fn)
    {
        xproAssert(end >= _now, "drain window ends in the past");
        // Drain-call-boundary stats (DESIGN.md §17): the high-water
        // is sampled once per call — the pending count peaks right
        // after the fill burst that precedes a drain — and the slot
        // and item counts accumulate in locals the compiler keeps in
        // registers, folded into the counter struct once at the end.
        // Per-slot writes to _counters here measurably slowed the
        // whole population fleet (bench_stats_overhead caught ~3%).
        XPRO_STAT(_counters.maxPending = std::max<uint64_t>(
                      _counters.maxPending, _size));
        [[maybe_unused]] uint64_t slot_drains = 0;
        [[maybe_unused]] uint64_t items_drained = 0;
        while (_size > 0 && _now < end) {
            const uint64_t base = _now & ~kSlotMask;
            const int slot =
                nextOccupied(0, static_cast<size_t>(_now - base));
            if (slot >= 0) {
                const uint64_t tick =
                    base + static_cast<uint64_t>(slot);
                if (tick >= end)
                    break;
                [[maybe_unused]] const size_t drained =
                    drainSlot(tick, static_cast<size_t>(slot), fn);
                XPRO_STAT(++slot_drains);
                XPRO_STAT(items_drained += drained);
                advanceTo(tick + 1);
                continue;
            }
            // Current 256-tick window exhausted: jump to the next
            // window that can hold an item (cascading on entry).
            const uint64_t next = nextCandidate();
            if (next >= end)
                break;
            advanceTo(next);
        }
        if (_now < end)
            advanceTo(end);
        XPRO_STAT(_counters.slotDrains += slot_drains);
        XPRO_STAT(_counters.itemsDrained += items_drained);
    }

    /**
     * Remove every pending item matching @p pred and append it to
     * @p out (in unspecified order — callers re-file into wheels,
     * whose pop order is insertion-order independent, or count).
     * O(slots + pending). Must not be called from inside a drain;
     * it is meant for the ShardedEventQueue barrier, where the
     * chaos layer re-homes migrated/churned nodes.
     */
    template <typename Pred>
    void
    extractIf(Pred &&pred, std::vector<WheelItem> &out)
    {
        xproAssert(!_draining, "cannot extract mid-drain");
        for (size_t level = 0; level < kLevels; ++level) {
            for (size_t slot = 0; slot < kSlots; ++slot) {
                std::vector<WheelItem> &items = _slots[level][slot];
                if (items.empty())
                    continue;
                auto keep = items.begin();
                for (WheelItem &item : items) {
                    if (pred(static_cast<const WheelItem &>(item))) {
                        out.push_back(item);
                        --_size;
                    } else {
                        *keep++ = item;
                    }
                }
                items.erase(keep, items.end());
                if (items.empty())
                    clearBit(level, slot);
            }
        }
        if (!_far.empty()) {
            auto keep = _far.begin();
            for (WheelItem &item : _far) {
                if (pred(static_cast<const WheelItem &>(item))) {
                    out.push_back(item);
                    --_size;
                } else {
                    *keep++ = item;
                }
            }
            if (keep != _far.end()) {
                _far.erase(keep, _far.end());
                recomputeFarMin();
            }
        }
    }

  private:
    static constexpr size_t kLevels = 4;
    static constexpr size_t kSlotBits = 8;
    static constexpr size_t kSlots = size_t(1) << kSlotBits;
    static constexpr uint64_t kSlotMask = kSlots - 1;
    static constexpr size_t kWordsPerLevel = kSlots / 64;

    /** Width of one slot at @p level, in ticks. */
    static constexpr uint64_t
    width(size_t level)
    {
        return uint64_t(1) << (kSlotBits * level);
    }

    /** Ticks covered by all of @p level's slots. */
    static constexpr uint64_t
    span(size_t level)
    {
        return uint64_t(1) << (kSlotBits * (level + 1));
    }

    size_t
    slotIndex(size_t level, uint64_t at) const
    {
        return static_cast<size_t>((at >> (kSlotBits * level)) &
                                   kSlotMask);
    }

    void file(size_t level, const WheelItem &item);

    /** Next occupied slot index >= @p from at @p level, or -1. */
    int nextOccupied(size_t level, size_t from) const;

    /**
     * Earliest tick (possibly an under-estimate for levels >= 1,
     * never an over-estimate) at which any pending item can be due,
     * given that the current level-0 window is empty.
     */
    uint64_t nextCandidate();

    /** Move now() to @p t, cascading higher-level entry slots down
     *  whenever a window boundary is crossed. */
    void advanceTo(uint64_t t);

    /** Returns the number of items handed to @p fn, so drainUntil
     *  can count drained work without this inner loop touching the
     *  counter struct. */
    template <typename Fn>
    size_t
    drainSlot(uint64_t tick, size_t slot, Fn &&fn)
    {
        _now = tick;
        // Swap out: fn may schedule items that hash to this same
        // slot (one full rotation later); they must stay filed.
        _scratch.swap(_slots[0][slot]);
        clearBit(0, slot);
        std::sort(_scratch.begin(), _scratch.end(),
                  [](const WheelItem &a, const WheelItem &b) {
                      if (a.node != b.node)
                          return a.node < b.node;
                      if (a.kind != b.kind)
                          return a.kind < b.kind;
                      return a.data < b.data;
                  });
        const size_t drained = _scratch.size();
        _draining = true;
        for (const WheelItem &item : _scratch) {
            xproAssert(item.at == tick,
                       "slot %zu mixes ticks %llu and %llu", slot,
                       static_cast<unsigned long long>(item.at),
                       static_cast<unsigned long long>(tick));
            --_size;
            fn(item);
        }
        _draining = false;
        _scratch.clear();
        return drained;
    }

    void setBit(size_t level, size_t slot);
    void clearBit(size_t level, size_t slot);

    /** Restore the _farMin invariant after extractIf removed
     *  far-overflow items. */
    void recomputeFarMin();

    uint64_t _now = 0;
    size_t _size = 0;
    bool _draining = false;
    Counters _counters;
    std::vector<WheelItem> _slots[kLevels][kSlots];
    uint64_t _occupied[kLevels][kWordsPerLevel] = {};
    std::vector<WheelItem> _far; ///< beyond the top level's horizon
    uint64_t _farMin = 0;
    std::vector<WheelItem> _scratch; ///< drainSlot working set
};

/**
 * S independent time wheels under conservative time-window
 * synchronization: the simulated timeline is cut into fixed windows
 * of @p window_ticks, every shard drains its own wheel through the
 * window (concurrently, on a WorkerPool), and a barrier runs on the
 * calling thread between windows. Shards may only couple through
 * state exchanged at the barrier, so the window length is the
 * lookahead: any cross-shard influence must take at least one
 * window to propagate (DESIGN.md §16 gives the determinism
 * argument).
 *
 * Each shard's drain is a pure function of its own item set (the
 * wheel's (at, node, kind, data) order), so the outcome is
 * byte-identical at any worker count; and when per-shard results
 * are merged by commutative-associative reduction keyed on stable
 * ids (never on arrival order), the outcome is also byte-identical
 * at any shard count.
 */
class ShardedEventQueue
{
  public:
    ShardedEventQueue(size_t shards, uint64_t window_ticks);

    size_t shardCount() const { return _wheels.size(); }
    uint64_t windowTicks() const { return _window; }

    TimeWheel &shard(size_t s) { return _wheels[s]; }
    const TimeWheel &shard(size_t s) const { return _wheels[s]; }

    /** Pending items across all shards. */
    size_t pending() const;

    /**
     * Run windows until every shard drains. For window w covering
     * ticks [w*W, (w+1)*W), every shard s executes
     * shard_fn(s, item) for its due items (in wheel order) on
     * @p pool; then barrier(w, window_end_tick) runs on the calling
     * thread. shard_fn must only touch shard-s state; the barrier
     * may touch everything.
     */
    template <typename ShardFn, typename BarrierFn>
    void
    run(WorkerPool &pool, ShardFn &&shard_fn, BarrierFn &&barrier)
    {
        uint64_t window = 0;
        while (pending() > 0) {
            const uint64_t end = (window + 1) * _window;
            pool.run(_wheels.size(), [&](size_t s) {
                _wheels[s].drainUntil(
                    end, [&](const WheelItem &item) {
                        shard_fn(s, item);
                    });
            });
            barrier(window, end);
            ++window;
        }
        publishRunStats(window);
    }

    /**
     * The removed-node contract (DESIGN.md §18): when a node leaves
     * the population mid-run, its pending items must not linger and
     * pop against stale slab state. The owner decides per item
     * between the two legal outcomes:
     *
     *  - **drop** — dropIf(): in-flight transport events addressed
     *    to the departed node are discarded (they can never
     *    complete; the accounting charges them explicitly);
     *  - **redirect** — rekeyIf(): self-events that should survive
     *    the absence are re-filed, possibly at a later tick and/or
     *    into another shard (a rejoining node's parked work, or a
     *    migrated node's items following it to the new gateway).
     *
     * Anything else — in particular leaving items filed and testing
     * slab state at pop — is a bug: it makes the drain order depend
     * on when the slab was mutated, which the determinism contract
     * forbids. Both calls are barrier-only (single-threaded, no
     * shard drain in flight).
     */

    /** Remove every pending item matching @p pred across all
     *  shards. Returns the number of items dropped. */
    template <typename Pred>
    size_t
    dropIf(Pred &&pred)
    {
        _extractScratch.clear();
        for (TimeWheel &wheel : _wheels)
            wheel.extractIf(pred, _extractScratch);
        const size_t dropped = _extractScratch.size();
        _extractScratch.clear();
        return dropped;
    }

    /**
     * dropIf restricted to the shards flagged in @p source_shards
     * (one byte per shard, nonzero = scan). The caller asserts that
     * no matching item lives outside the flagged shards — in the
     * population fleet every item of node n sits in the shard of
     * n's serving gateway, so the owner knows the source set
     * exactly, and a migration barrier scans a couple of wheels
     * instead of all of them.
     */
    template <typename Pred>
    size_t
    dropIf(const std::vector<uint8_t> &source_shards, Pred &&pred)
    {
        xproAssert(source_shards.size() == _wheels.size(),
                   "shard mask size mismatch");
        _extractScratch.clear();
        for (size_t s = 0; s < _wheels.size(); ++s)
            if (source_shards[s])
                _wheels[s].extractIf(pred, _extractScratch);
        const size_t dropped = _extractScratch.size();
        _extractScratch.clear();
        return dropped;
    }

    /**
     * Extract every pending item matching @p pred across all
     * shards, apply fn(item) — which may raise item.at and returns
     * the target shard index — and re-file each item into its
     * target wheel. All matches are extracted before any is
     * re-filed, so fn may keep matching the moved items without
     * double-processing. Returns the number of items moved.
     */
    template <typename Pred, typename RekeyFn>
    size_t
    rekeyIf(Pred &&pred, RekeyFn &&fn)
    {
        _extractScratch.clear();
        for (TimeWheel &wheel : _wheels)
            wheel.extractIf(pred, _extractScratch);
        return refileScratch(fn);
    }

    /** rekeyIf restricted to the shards flagged in @p source_shards
     *  — same contract as the masked dropIf: the caller guarantees
     *  every matching item lives in a flagged shard. Targets are
     *  unrestricted. */
    template <typename Pred, typename RekeyFn>
    size_t
    rekeyIf(const std::vector<uint8_t> &source_shards, Pred &&pred,
            RekeyFn &&fn)
    {
        xproAssert(source_shards.size() == _wheels.size(),
                   "shard mask size mismatch");
        _extractScratch.clear();
        for (size_t s = 0; s < _wheels.size(); ++s)
            if (source_shards[s])
                _wheels[s].extractIf(pred, _extractScratch);
        return refileScratch(fn);
    }

  private:
    /** Re-file the extracted scratch items through @p fn (shared
     *  tail of both rekeyIf flavors): all matches were already
     *  extracted, so fn may keep matching moved items without
     *  double-processing. */
    template <typename RekeyFn>
    size_t
    refileScratch(RekeyFn &&fn)
    {
        for (WheelItem &item : _extractScratch) {
            const size_t target = fn(item);
            xproAssert(target < _wheels.size(),
                       "rekey target shard %zu out of range", target);
            _wheels[target].schedule(item);
        }
        const size_t moved = _extractScratch.size();
        _extractScratch.clear();
        return moved;
    }

    /** Fold every wheel's Counters into the stats registry
     *  (event_queue.* Diag stats); no-op when stats are off. */
    void publishRunStats(uint64_t windows) const;

    std::vector<TimeWheel> _wheels;
    uint64_t _window;
    std::vector<WheelItem> _extractScratch; ///< dropIf/rekeyIf buffer
};

} // namespace xpro

#endif // XPRO_SIM_EVENT_QUEUE_HH
