/**
 * @file
 * Minimal discrete-event simulation kernel: a time-ordered queue of
 * callbacks. Used by the cross-end system simulator to execute the
 * data-driven cell schedule and the serialized radio channel.
 *
 * The queue is a binary heap over a plain vector so storage can be
 * reserve()d up front and reused across events: in the steady-state
 * serving loop neither scheduling nor popping touches the heap
 * allocator (handlers are moved, never copied, and the (time,
 * sequence) strict total order makes the pop order identical to the
 * former std::priority_queue implementation).
 */

#ifndef XPRO_SIM_EVENT_QUEUE_HH
#define XPRO_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.hh"

namespace xpro
{

/** A time-ordered event queue. */
class EventQueue
{
  public:
    using Handler = std::function<void()>;

    /** Current simulation time. */
    Time now() const { return _now; }

    /** Schedule @p handler at absolute time @p at (>= now). */
    void schedule(Time at, Handler handler);

    /** Schedule @p handler @p delay after the current time. */
    void scheduleAfter(Time delay, Handler handler);

    /** Events currently pending. */
    size_t pending() const { return _events.size(); }

    /** Pre-size the underlying storage so scheduling up to
     * @p capacity concurrent events never reallocates. */
    void reserve(size_t capacity) { _events.reserve(capacity); }

    /**
     * Pop and run the earliest event.
     * @return False when the queue is empty.
     */
    bool runOne();

    /**
     * Run until the queue drains.
     * @param max_events Safety cap; exceeding it panics (an event
     *        loop in the simulated system).
     */
    void runAll(size_t max_events = 1000000);

  private:
    struct Event
    {
        Time at;
        uint64_t sequence; // FIFO tie-break for simultaneous events
        Handler handler;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.at.sec() != b.at.sec())
                return a.at > b.at;
            return a.sequence > b.sequence;
        }
    };

    Time _now;
    uint64_t _nextSequence = 0;
    std::vector<Event> _events; // heap ordered by Later
};

} // namespace xpro

#endif // XPRO_SIM_EVENT_QUEUE_HH
