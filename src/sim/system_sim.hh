/**
 * @file
 * Event-driven cross-end system simulator.
 *
 * Where the analytic models (core/energy_model, core/delay_model)
 * compute closed-form per-event costs, this simulator actually
 * executes one event through the placed engine: cells fire
 * data-driven as their inputs land on their end, and every inter-end
 * payload is serialized over a single half-duplex radio channel
 * (first come, first served). Energies must agree exactly with the
 * analytic model; the completion time is lower-bounded by the
 * analytic critical path and exceeds it exactly when transfers
 * contend for the radio -- both are tested invariants, and the gap
 * is reported so the bench for Fig. 10 can show radio contention is
 * negligible for these workloads.
 *
 * The fault-injected overloads run the same dataflow over a bursty
 * Gilbert-Elliott channel (wireless/fault): every inter-end payload
 * goes through bounded stop-and-wait ARQ, abandoned packets feed a
 * K-consecutive-failure outage detector, and detected outages
 * degrade the node to sensor-local classification with results
 * buffered for replay on recovery. A disabled profile routes to the
 * legacy path and reproduces its results bit for bit (a tested
 * invariant).
 */

#ifndef XPRO_SIM_SYSTEM_SIM_HH
#define XPRO_SIM_SYSTEM_SIM_HH

#include <string>
#include <vector>

#include "core/energy_model.hh"
#include "core/placement.hh"
#include "core/report.hh"
#include "core/topology.hh"
#include "wireless/fault.hh"
#include "wireless/link.hh"

namespace xpro
{

/** One timestamped trace record. */
struct TraceEntry
{
    Time at;
    std::string what;
};

/** Outcome of simulating one event. */
struct SimResult
{
    /** Time the classification result reaches the aggregator. */
    Time completion;
    /** Sensor energy accumulated by the simulation. */
    SensorEnergyBreakdown sensorEnergy;
    /** Number of radio transfers performed. */
    size_t transfers = 0;
    /** Total radio occupancy. */
    Time radioBusy;
    /** Chronological activity trace. */
    std::vector<TraceEntry> trace;
    /** Fault-injection outcome; disabled for fault-free runs. */
    RobustnessReport robustness;
    /** Adaptive-controller outcome; disabled for static runs
     *  (filled by control/adaptive_sim, never by simulateEvent). */
    ControlReport control;
};

/** Simulate one event end to end. */
SimResult simulateEvent(const EngineTopology &topology,
                        const Placement &placement,
                        const WirelessLink &link);

/**
 * Simulate one event over a fault-injected channel. A disabled
 * profile is exactly the overload above; single-event runs send no
 * recovery probes (there is no later traffic to recover for), so the
 * event completes via local fallback under a permanent outage.
 */
SimResult simulateEvent(const EngineTopology &topology,
                        const Placement &placement,
                        const WirelessLink &link,
                        const FaultProfile &faults);

/** Outcome of simulating a periodic stream of events. */
struct StreamResult
{
    size_t events = 0;
    /** Events whose result missed the next segment boundary. */
    size_t deadlineMisses = 0;
    /** Worst observed completion latency. */
    Time worstLatency;
    /** Mean completion latency. */
    Time meanLatency;
    /** Sensor energy accumulated over the whole stream. */
    SensorEnergyBreakdown sensorEnergy;
    /** Events classified via the sensor-local fallback. */
    size_t degradedEvents = 0;
    /** Fault-injection outcome; disabled for fault-free runs. */
    RobustnessReport robustness;
    /** Adaptive-controller outcome; disabled for static runs
     *  (filled by control/adaptive_sim, never by simulateStream). */
    ControlReport control;
};

/**
 * Simulate @p events consecutive segments arriving every
 * 1/events_per_second; each event must complete before the next
 * segment is fully acquired to count as real-time.
 */
StreamResult simulateStream(const EngineTopology &topology,
                            const Placement &placement,
                            const WirelessLink &link,
                            double events_per_second, size_t events);

/**
 * Simulate the stream over a fault-injected channel. Recovery
 * probes are sent every FaultProfile::probeInterval while the link
 * is declared down, up to one period past the last injection (so
 * the run always terminates); an event's completion under outage is
 * its sensor-local classification time.
 */
StreamResult simulateStream(const EngineTopology &topology,
                            const Placement &placement,
                            const WirelessLink &link,
                            double events_per_second, size_t events,
                            const FaultProfile &faults);

} // namespace xpro

#endif // XPRO_SIM_SYSTEM_SIM_HH
