#include "sim/event_queue.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace xpro
{

void
EventQueue::schedule(Time at, Handler handler)
{
    xproAssert(at >= _now, "cannot schedule into the past");
    _events.push_back({at, _nextSequence++, std::move(handler)});
    std::push_heap(_events.begin(), _events.end(), Later{});
}

void
EventQueue::scheduleAfter(Time delay, Handler handler)
{
    schedule(_now + delay, std::move(handler));
}

bool
EventQueue::runOne()
{
    if (_events.empty())
        return false;
    // Heap-depth high-water, sampled before the pop: the size seen
    // here is the local maximum after any burst of schedule() calls,
    // so per-schedule bookkeeping buys nothing (DESIGN.md §17).
    XPRO_STAT(_maxPending = std::max(_maxPending, _events.size()));
    // Move out before running: the handler may schedule new events.
    std::pop_heap(_events.begin(), _events.end(), Later{});
    Event event = std::move(_events.back());
    _events.pop_back();
    _now = event.at;
    event.handler();
    return true;
}

void
EventQueue::runAll(size_t max_events)
{
    size_t executed = 0;
    while (runOne()) {
        if (++executed > max_events)
            panic("event cap %zu exceeded; simulated system loops",
                  max_events);
    }
#if !defined(XPRO_STATS_OFF)
    // Detailed-path queue telemetry: cumulative events executed and
    // the deepest the heap ever got. Single-threaded per queue and
    // deterministic per run, so Stable scope.
    struct Ids {
        StatId run, events, depth;
    };
    static const Ids ids = [] {
        StatsRegistry &reg = StatsRegistry::instance();
        return Ids{reg.registerCounter("sim.queue_runs"),
                   reg.registerCounter("sim.events_run"),
                   reg.registerGauge("sim.queue_depth_highwater")};
    }();
    StatsRegistry &reg = StatsRegistry::instance();
    reg.add(ids.run);
    reg.add(ids.events, executed);
    reg.gaugeMax(ids.depth, _maxPending);
    _maxPending = _events.size();
#endif
}

// --- TimeWheel ------------------------------------------------------

TimeWheel::TimeWheel()
{
    // Drained slots are revisited one rotation later, so their
    // vectors keep capacity; the scratch vector grows once to the
    // densest slot ever seen.
    _scratch.reserve(16);
}

void
TimeWheel::setBit(size_t level, size_t slot)
{
    _occupied[level][slot >> 6] |= uint64_t(1) << (slot & 63);
}

void
TimeWheel::clearBit(size_t level, size_t slot)
{
    _occupied[level][slot >> 6] &= ~(uint64_t(1) << (slot & 63));
}

void
TimeWheel::file(size_t level, const WheelItem &item)
{
    const size_t slot = slotIndex(level, item.at);
    _slots[level][slot].push_back(item);
    setBit(level, slot);
    ++_size;
}

int
TimeWheel::nextOccupied(size_t level, size_t from) const
{
    if (from >= kSlots)
        return -1;
    size_t word = from >> 6;
    uint64_t bits =
        _occupied[level][word] & (~uint64_t(0) << (from & 63));
    while (true) {
        if (bits != 0) {
            return static_cast<int>((word << 6) +
                                    static_cast<size_t>(
                                        __builtin_ctzll(bits)));
        }
        if (++word >= kWordsPerLevel)
            return -1;
        bits = _occupied[level][word];
    }
}

uint64_t
TimeWheel::nextCandidate()
{
    // The caller established that the current level-0 window holds
    // nothing from now() onward. Every other pending item is either
    //  (a) in a level-0 slot BEHIND the cursor — exactly one
    //      rotation ahead (filed with delta < 256 after the cursor
    //      passed the slot), due at base + 256 + slot;
    //  (b) in a level >= 1 slot at-or-after that level's cursor —
    //      due no earlier than the slot's span start (slots at the
    //      cursor itself only hold next-rotation items, since entry
    //      cascades emptied the current-rotation ones);
    //  (c) in a level >= 1 slot behind that level's cursor — one
    //      rotation of that level ahead;
    //  (d) in the far-overflow vector.
    // Levels >= 1 give under-estimates (the item sits somewhere in
    // a multi-tick slot), never over-estimates, so jumping to the
    // minimum can land early — the drain loop just computes the
    // next candidate again — but can never skip an item.
    uint64_t best = ~uint64_t(0);
    const uint64_t level0_base = _now & ~kSlotMask;
    const size_t level0_cursor = static_cast<size_t>(_now & kSlotMask);
    {
        const int behind = nextOccupied(0, 0);
        if (behind >= 0 &&
            static_cast<size_t>(behind) <= level0_cursor) {
            best = std::min(best, level0_base + kSlots +
                                      static_cast<uint64_t>(behind));
        }
    }
    for (size_t level = 1; level < kLevels; ++level) {
        const uint64_t base = _now & ~(span(level) - 1);
        const size_t cursor = slotIndex(level, _now);
        const int ahead = nextOccupied(level, cursor + 1);
        if (ahead >= 0) {
            best = std::min(
                best, base + static_cast<uint64_t>(ahead) *
                                 width(level));
        }
        const int behind = nextOccupied(level, 0);
        if (behind >= 0 && static_cast<size_t>(behind) <= cursor) {
            best = std::min(
                best, base + span(level) +
                          static_cast<uint64_t>(behind) *
                              width(level));
        }
    }
    if (!_far.empty())
        best = std::min(best, _farMin);
    xproAssert(best != ~uint64_t(0) || _size == 0,
               "%zu items pending but none locatable", _size);
    return best;
}

void
TimeWheel::advanceTo(uint64_t t)
{
    xproAssert(t >= _now, "wheel cannot rewind");
    const bool crossed = (t & ~kSlotMask) != (_now & ~kSlotMask);
    _now = t;
    if (!crossed)
        return;
    // Entering a new 256-tick window: cascade the entry slots top
    // down, so items due in the window now sit at their exact
    // level-0 slots. Re-filing is just schedule() again — the
    // shrunken delta picks the right (lower) level. Items that hash
    // to an entry slot but belong to a later rotation are re-filed
    // back where they were; harmless.
    for (size_t level = kLevels - 1; level >= 1; --level) {
        const size_t slot = slotIndex(level, _now);
        if (_slots[level][slot].empty())
            continue;
        _scratch.swap(_slots[level][slot]);
        clearBit(level, slot);
        _size -= _scratch.size();
        XPRO_STAT(_counters.cascades += _scratch.size());
        for (const WheelItem &item : _scratch)
            schedule(item);
        _scratch.clear();
    }
    // The far overflow re-files once the top level can hold its
    // earliest item; stragglers go back with a fresh minimum.
    if (!_far.empty() && _farMin - _now < span(kLevels - 1)) {
        std::vector<WheelItem> pending;
        pending.swap(_far);
        _size -= pending.size();
        _farMin = 0;
        XPRO_STAT(_counters.farRefiled += pending.size());
        for (const WheelItem &item : pending)
            schedule(item);
    }
}

void
TimeWheel::recomputeFarMin()
{
    _farMin = 0;
    if (_far.empty())
        return;
    _farMin = ~uint64_t(0);
    for (const WheelItem &item : _far)
        _farMin = std::min(_farMin, item.at);
}

// --- ShardedEventQueue ----------------------------------------------

ShardedEventQueue::ShardedEventQueue(size_t shards,
                                     uint64_t window_ticks)
    : _wheels(shards), _window(window_ticks)
{
    xproAssert(shards > 0, "need at least one shard");
    xproAssert(window_ticks > 0,
               "conservative sync needs a nonzero window");
}

size_t
ShardedEventQueue::pending() const
{
    size_t total = 0;
    for (const TimeWheel &wheel : _wheels)
        total += wheel.pending();
    return total;
}

void
ShardedEventQueue::publishRunStats(uint64_t windows) const
{
#if defined(XPRO_STATS_OFF)
    (void)windows;
#else
    // Wheel internals are Diag scope: cascade counts, slot sharing,
    // the far-overflow split and per-shard high-waters all depend on
    // how nodes hash across shards. items_drained is kept Diag too:
    // cascaded items are counted once per drain, but the snapshot
    // section split is about what we *promise*, and we only promise
    // shard-invariance for the stable section.
    struct Ids {
        StatId runs, windows, cascades, farFiled, farRefiled;
        StatId slotDrains, itemsDrained, maxPending, shardItems;
    };
    static const Ids ids = [] {
        StatsRegistry &reg = StatsRegistry::instance();
        const StatScope d = StatScope::Diag;
        return Ids{
            reg.registerCounter("event_queue.runs", d),
            reg.registerCounter("event_queue.windows", d),
            reg.registerCounter("event_queue.cascades", d),
            reg.registerCounter("event_queue.far_filed", d),
            reg.registerCounter("event_queue.far_refiled", d),
            reg.registerCounter("event_queue.slot_drains", d),
            reg.registerCounter("event_queue.items_drained", d),
            reg.registerGauge("event_queue.wheel_pending_highwater",
                              d),
            reg.registerHistogram("event_queue.shard_items", d),
        };
    }();
    StatsRegistry &reg = StatsRegistry::instance();
    reg.add(ids.runs);
    reg.add(ids.windows, windows);
    for (const TimeWheel &wheel : _wheels) {
        const TimeWheel::Counters &c = wheel.counters();
        reg.add(ids.cascades, c.cascades);
        reg.add(ids.farFiled, c.farFiled);
        reg.add(ids.farRefiled, c.farRefiled);
        reg.add(ids.slotDrains, c.slotDrains);
        reg.add(ids.itemsDrained, c.itemsDrained);
        reg.gaugeMax(ids.maxPending, c.maxPending);
        reg.observe(ids.shardItems, c.itemsDrained);
    }
#endif
}

} // namespace xpro
