#include "sim/event_queue.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace xpro
{

void
EventQueue::schedule(Time at, Handler handler)
{
    xproAssert(at >= _now, "cannot schedule into the past");
    _events.push_back({at, _nextSequence++, std::move(handler)});
    std::push_heap(_events.begin(), _events.end(), Later{});
}

void
EventQueue::scheduleAfter(Time delay, Handler handler)
{
    schedule(_now + delay, std::move(handler));
}

bool
EventQueue::runOne()
{
    if (_events.empty())
        return false;
    // Move out before running: the handler may schedule new events.
    std::pop_heap(_events.begin(), _events.end(), Later{});
    Event event = std::move(_events.back());
    _events.pop_back();
    _now = event.at;
    event.handler();
    return true;
}

void
EventQueue::runAll(size_t max_events)
{
    size_t executed = 0;
    while (runOne()) {
        if (++executed > max_events)
            panic("event cap %zu exceeded; simulated system loops",
                  max_events);
    }
}

} // namespace xpro
