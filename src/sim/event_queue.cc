#include "sim/event_queue.hh"

#include <utility>

#include "common/logging.hh"

namespace xpro
{

void
EventQueue::schedule(Time at, Handler handler)
{
    xproAssert(at >= _now, "cannot schedule into the past");
    _events.push({at, _nextSequence++, std::move(handler)});
}

void
EventQueue::scheduleAfter(Time delay, Handler handler)
{
    schedule(_now + delay, std::move(handler));
}

bool
EventQueue::runOne()
{
    if (_events.empty())
        return false;
    // Copy out before popping: the handler may schedule new events.
    Event event = _events.top();
    _events.pop();
    _now = event.at;
    event.handler();
    return true;
}

void
EventQueue::runAll(size_t max_events)
{
    size_t executed = 0;
    while (runOne()) {
        if (++executed > max_events)
            panic("event cap %zu exceeded; simulated system loops",
                  max_events);
    }
}

} // namespace xpro
