#include "sim/trace_export.hh"

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <vector>

#include "common/logging.hh"

namespace xpro
{

namespace
{

/** Track ids in the exported trace. */
constexpr int tidSensor = 0;
constexpr int tidRadio = 1;
constexpr int tidAggregator = 2;

/** Escape a string for a JSON literal. */
std::string
jsonEscape(const std::string &value)
{
    std::string out;
    for (char c : value) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

/** One complete ("X") or instant ("i") trace event. */
struct TraceEvent
{
    std::string name;
    double startUs;
    double durationUs;
    int tid;
    /** Zero-duration marker (retry/drop/outage/fallback). */
    bool instant = false;
};

/** Find the topology node whose name matches @p name. */
std::optional<size_t>
findNodeByName(const EngineTopology &topology, const std::string &name)
{
    for (size_t id = 1; id < topology.graph.nodeCount(); ++id) {
        if (topology.graph.node(id).name == name)
            return id;
    }
    return std::nullopt;
}

/** Track-name metadata record. */
std::string
trackRecord(int tid, const char *name)
{
    std::ostringstream out;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
        << "\"tid\":" << tid << ",\"args\":{\"name\":\"" << name
        << "\"}}";
    return out.str();
}

/** One duration ("X") or instant ("i") record. */
std::string
eventRecord(const TraceEvent &e)
{
    std::ostringstream out;
    out << "{\"name\":\"" << jsonEscape(e.name) << "\",";
    if (e.instant)
        out << "\"ph\":\"i\",\"ts\":" << e.startUs << ",\"s\":\"t\"";
    else
        out << "\"ph\":\"X\",\"ts\":" << e.startUs
            << ",\"dur\":" << e.durationUs;
    out << ",\"pid\":0,\"tid\":" << e.tid << "}";
    return out.str();
}

/** One counter ("C") sample: Perfetto renders each distinct name as
 *  its own counter track with a step plot of @p value over time. */
std::string
counterRecord(const std::string &name, double ts_us,
              const char *series, uint64_t value)
{
    std::ostringstream out;
    out << "{\"name\":\"" << jsonEscape(name)
        << "\",\"ph\":\"C\",\"ts\":" << ts_us << ",\"pid\":0,"
        << "\"args\":{\"" << series << "\":" << value << "}}";
    return out.str();
}

/**
 * Emit the whole document: records joined with comma-newline, so the
 * output is valid JSON for ANY record count — including zero events
 * after the metadata, which the old inline writer got wrong (it
 * always comma-terminated the metadata records and produced a
 * trailing comma before the closing bracket; see
 * test_trace_export's empty-report round trips).
 */
void
emitRecords(const std::vector<std::string> &records, std::ostream &out)
{
    out << "[\n";
    for (size_t i = 0; i < records.size(); ++i)
        out << "  " << records[i]
            << (i + 1 < records.size() ? "," : "") << "\n";
    out << "]\n";
}

} // namespace

void
writeChromeTrace(const SimResult &result,
                 const EngineTopology &topology,
                 const Placement &placement, std::ostream &out,
                 const StatsSnapshot *stats)
{
    std::vector<TraceEvent> events;
    // Cumulative ARQ counter samples, one per retry/drop marker, so
    // Perfetto draws the loss story as step plots under the tracks.
    std::vector<std::string> counters;
    uint64_t retries = 0;
    uint64_t drops = 0;
    // Radio transfers: pair "radio start: X" with the next
    // "radio done: X" (the channel is FIFO, so order pairs them).
    std::vector<std::pair<std::string, double>> radio_starts;

    for (const TraceEntry &entry : result.trace) {
        const double at_us = entry.at.us();
        if (entry.what.rfind("radio start: ", 0) == 0) {
            radio_starts.emplace_back(entry.what.substr(13), at_us);
            continue;
        }
        if (entry.what.rfind("radio done: ", 0) == 0) {
            const std::string what = entry.what.substr(12);
            xproAssert(!radio_starts.empty() &&
                           radio_starts.front().first == what,
                       "unpaired radio completion '%s'",
                       what.c_str());
            events.push_back({what, radio_starts.front().second,
                              at_us - radio_starts.front().second,
                              tidRadio});
            radio_starts.erase(radio_starts.begin());
            continue;
        }
        // Fault-injection markers become instant events: ARQ
        // retries and drops on the radio track, outage / fallback /
        // local-classification milestones on the sensor track.
        const auto marker = [&](const char *prefix, int tid) {
            if (entry.what.rfind(prefix, 0) != 0)
                return false;
            events.push_back({entry.what, at_us, 0.0, tid, true});
            return true;
        };
        if (entry.what.rfind("retry ", 0) == 0)
            counters.push_back(counterRecord("arq retries", at_us,
                                             "count", ++retries));
        else if (entry.what.rfind("drop ", 0) == 0)
            counters.push_back(
                counterRecord("arq drops", at_us, "count", ++drops));
        if (marker("retry ", tidRadio) || marker("drop ", tidRadio) ||
            marker("outage ", tidSensor) ||
            marker("fallback #", tidSensor) ||
            marker("local result #", tidSensor) ||
            marker("repartition", tidSensor) ||
            marker("handover", tidRadio))
            continue;
        if (entry.what.rfind("done ", 0) == 0) {
            // "done <name> #<k>" or "done <name>".
            std::string name = entry.what.substr(5);
            const size_t hash = name.rfind(" #");
            if (hash != std::string::npos)
                name = name.substr(0, hash);
            const auto node = findNodeByName(topology, name);
            if (!node)
                continue; // the source node or foreign entries
            const CellCosts &costs =
                topology.graph.node(*node).costs;
            const bool sensor = placement.inSensor(*node);
            const double duration = sensor
                                        ? costs.sensorDelay.us()
                                        : costs.aggregatorDelay.us();
            events.push_back({entry.what.substr(5),
                              at_us - duration, duration,
                              sensor ? tidSensor : tidAggregator});
        }
    }

    std::vector<std::string> records;
    records.reserve(3 + events.size() + counters.size());
    records.push_back(trackRecord(tidSensor, "sensor node"));
    records.push_back(trackRecord(tidRadio, "wireless channel"));
    records.push_back(trackRecord(tidAggregator, "aggregator"));
    for (const TraceEvent &e : events)
        records.push_back(eventRecord(e));
    for (std::string &record : counters)
        records.push_back(std::move(record));

    // Registry counters (opt-in): each stable counter/gauge becomes
    // its own flat counter track spanning the trace, so aggregate
    // telemetry (cache hit rates, ARQ totals, tier counts) renders
    // next to the schedule it came from.
    if (stats != nullptr) {
        double end_us = 0.0;
        for (const TraceEvent &e : events)
            end_us = std::max(end_us, e.startUs + e.durationUs);
        for (const SnapshotEntry &entry : stats->entries) {
            if (entry.scope != StatScope::Stable ||
                entry.kind == StatKind::Histogram ||
                entry.value == 0)
                continue;
            const std::string name = "stat " + entry.name;
            records.push_back(
                counterRecord(name, 0.0, "value", entry.value));
            records.push_back(
                counterRecord(name, end_us, "value", entry.value));
        }
    }
    emitRecords(records, out);
}

void
writeControlTrace(const ControlReport &report, std::ostream &out)
{
    constexpr int tid_controller = 3;
    std::vector<TraceEvent> events;
    std::vector<std::string> counters;
    uint64_t repartitions = 0;
    for (const ControlDecision &d : report.decisions) {
        const double at_us = d.atMs * 1e3;
        char name[128];
        std::snprintf(name, sizeof(name),
                      "%s w%zu (duty L%zu, cut %zu)",
                      d.action.c_str(), d.window, d.dutyLevel,
                      d.sensorCells);
        events.push_back({name, at_us, 0.0, tid_controller, true});
        if (d.movedCells > 0) {
            std::snprintf(name, sizeof(name),
                          "handover (%zu cells, %.3f uJ)",
                          d.movedCells, d.handoverUj);
            events.push_back(
                {name, at_us, d.handoverMs * 1e3, tidRadio});
        }
        // Controller state as counter tracks: duty level, the cut's
        // sensor-side cell count, and cumulative repartitions.
        counters.push_back(counterRecord("duty level", at_us,
                                         "level", d.dutyLevel));
        counters.push_back(counterRecord("sensor cells", at_us,
                                         "cells", d.sensorCells));
        if (d.action == "repartition")
            ++repartitions;
        counters.push_back(counterRecord("repartitions", at_us,
                                         "count", repartitions));
    }

    std::vector<std::string> records;
    records.reserve(2 + events.size() + counters.size());
    records.push_back(trackRecord(tidRadio, "wireless channel"));
    records.push_back(trackRecord(tid_controller, "controller"));
    for (const TraceEvent &e : events)
        records.push_back(eventRecord(e));
    for (std::string &record : counters)
        records.push_back(std::move(record));
    emitRecords(records, out);
}

void
writeControlTraceFile(const ControlReport &report,
                      const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    writeControlTrace(report, out);
    if (!out)
        fatal("write to '%s' failed", path.c_str());
}

void
writeChaosTrace(const ChaosReport &report, std::ostream &out)
{
    constexpr int tid_chaos = 4;
    std::vector<TraceEvent> events;
    std::vector<std::string> counters;
    uint64_t crashes = 0;
    uint64_t restarts = 0;
    int64_t gateways_down = 0;
    for (const ChaosEpisode &e : report.episodes) {
        const double at_us = e.atMs * 1e3;
        char name[128];
        if (e.kind == "crash" || e.kind == "restart") {
            std::snprintf(name, sizeof(name),
                          "%s g%llu (%llu nodes)", e.kind.c_str(),
                          static_cast<unsigned long long>(e.gateway),
                          static_cast<unsigned long long>(e.nodes));
        } else {
            std::snprintf(name, sizeof(name), "%s",
                          e.kind.c_str());
        }
        events.push_back({name, at_us, 0.0, tid_chaos, true});
        if (e.kind == "crash") {
            ++crashes;
            ++gateways_down;
        } else if (e.kind == "restart") {
            ++restarts;
            if (gateways_down > 0)
                --gateways_down;
        }
        counters.push_back(counterRecord("gateways down", at_us,
                                         "count", gateways_down));
        counters.push_back(
            counterRecord("crashes", at_us, "count", crashes));
        counters.push_back(
            counterRecord("restarts", at_us, "count", restarts));
    }

    std::vector<std::string> records;
    records.reserve(1 + events.size() + counters.size());
    records.push_back(trackRecord(tid_chaos, "chaos"));
    for (const TraceEvent &e : events)
        records.push_back(eventRecord(e));
    for (std::string &record : counters)
        records.push_back(std::move(record));
    emitRecords(records, out);
}

void
writeChaosTraceFile(const ChaosReport &report,
                    const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    writeChaosTrace(report, out);
    if (!out)
        fatal("write to '%s' failed", path.c_str());
}

void
writeChromeTraceFile(const SimResult &result,
                     const EngineTopology &topology,
                     const Placement &placement,
                     const std::string &path,
                     const StatsSnapshot *stats)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    writeChromeTrace(result, topology, placement, out, stats);
    if (!out)
        fatal("write to '%s' failed", path.c_str());
}

} // namespace xpro
