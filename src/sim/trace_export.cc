#include "sim/trace_export.hh"

#include <cstdio>
#include <fstream>
#include <optional>
#include <vector>

#include "common/logging.hh"

namespace xpro
{

namespace
{

/** Track ids in the exported trace. */
constexpr int tidSensor = 0;
constexpr int tidRadio = 1;
constexpr int tidAggregator = 2;

/** Escape a string for a JSON literal. */
std::string
jsonEscape(const std::string &value)
{
    std::string out;
    for (char c : value) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

/** One complete ("X") or instant ("i") trace event. */
struct TraceEvent
{
    std::string name;
    double startUs;
    double durationUs;
    int tid;
    /** Zero-duration marker (retry/drop/outage/fallback). */
    bool instant = false;
};

/** Find the topology node whose name matches @p name. */
std::optional<size_t>
findNodeByName(const EngineTopology &topology, const std::string &name)
{
    for (size_t id = 1; id < topology.graph.nodeCount(); ++id) {
        if (topology.graph.node(id).name == name)
            return id;
    }
    return std::nullopt;
}

} // namespace

void
writeChromeTrace(const SimResult &result,
                 const EngineTopology &topology,
                 const Placement &placement, std::ostream &out)
{
    std::vector<TraceEvent> events;
    // Radio transfers: pair "radio start: X" with the next
    // "radio done: X" (the channel is FIFO, so order pairs them).
    std::vector<std::pair<std::string, double>> radio_starts;

    for (const TraceEntry &entry : result.trace) {
        const double at_us = entry.at.us();
        if (entry.what.rfind("radio start: ", 0) == 0) {
            radio_starts.emplace_back(entry.what.substr(13), at_us);
            continue;
        }
        if (entry.what.rfind("radio done: ", 0) == 0) {
            const std::string what = entry.what.substr(12);
            xproAssert(!radio_starts.empty() &&
                           radio_starts.front().first == what,
                       "unpaired radio completion '%s'",
                       what.c_str());
            events.push_back({what, radio_starts.front().second,
                              at_us - radio_starts.front().second,
                              tidRadio});
            radio_starts.erase(radio_starts.begin());
            continue;
        }
        // Fault-injection markers become instant events: ARQ
        // retries and drops on the radio track, outage / fallback /
        // local-classification milestones on the sensor track.
        const auto marker = [&](const char *prefix, int tid) {
            if (entry.what.rfind(prefix, 0) != 0)
                return false;
            events.push_back({entry.what, at_us, 0.0, tid, true});
            return true;
        };
        if (marker("retry ", tidRadio) || marker("drop ", tidRadio) ||
            marker("outage ", tidSensor) ||
            marker("fallback #", tidSensor) ||
            marker("local result #", tidSensor) ||
            marker("repartition", tidSensor) ||
            marker("handover", tidRadio))
            continue;
        if (entry.what.rfind("done ", 0) == 0) {
            // "done <name> #<k>" or "done <name>".
            std::string name = entry.what.substr(5);
            const size_t hash = name.rfind(" #");
            if (hash != std::string::npos)
                name = name.substr(0, hash);
            const auto node = findNodeByName(topology, name);
            if (!node)
                continue; // the source node or foreign entries
            const CellCosts &costs =
                topology.graph.node(*node).costs;
            const bool sensor = placement.inSensor(*node);
            const double duration = sensor
                                        ? costs.sensorDelay.us()
                                        : costs.aggregatorDelay.us();
            events.push_back({entry.what.substr(5),
                              at_us - duration, duration,
                              sensor ? tidSensor : tidAggregator});
        }
    }

    out << "[\n";
    // Track-name metadata.
    const std::pair<int, const char *> tracks[] = {
        {tidSensor, "sensor node"},
        {tidRadio, "wireless channel"},
        {tidAggregator, "aggregator"},
    };
    for (const auto &[tid, name] : tracks) {
        out << "  {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
            << "\"tid\":" << tid << ",\"args\":{\"name\":\"" << name
            << "\"}},\n";
    }
    for (size_t i = 0; i < events.size(); ++i) {
        const TraceEvent &e = events[i];
        out << "  {\"name\":\"" << jsonEscape(e.name) << "\",";
        if (e.instant) {
            out << "\"ph\":\"i\",\"ts\":" << e.startUs
                << ",\"s\":\"t\"";
        } else {
            out << "\"ph\":\"X\",\"ts\":" << e.startUs
                << ",\"dur\":" << e.durationUs;
        }
        out << ",\"pid\":0,\"tid\":" << e.tid << "}"
            << (i + 1 < events.size() ? "," : "") << "\n";
    }
    out << "]\n";
}

void
writeControlTrace(const ControlReport &report, std::ostream &out)
{
    constexpr int tid_controller = 3;
    std::vector<TraceEvent> events;
    for (const ControlDecision &d : report.decisions) {
        const double at_us = d.atMs * 1e3;
        char name[128];
        std::snprintf(name, sizeof(name),
                      "%s w%zu (duty L%zu, cut %zu)",
                      d.action.c_str(), d.window, d.dutyLevel,
                      d.sensorCells);
        events.push_back({name, at_us, 0.0, tid_controller, true});
        if (d.movedCells > 0) {
            std::snprintf(name, sizeof(name),
                          "handover (%zu cells, %.3f uJ)",
                          d.movedCells, d.handoverUj);
            events.push_back(
                {name, at_us, d.handoverMs * 1e3, tidRadio});
        }
    }

    out << "[\n";
    const std::pair<int, const char *> tracks[] = {
        {tidRadio, "wireless channel"},
        {tid_controller, "controller"},
    };
    for (const auto &[tid, name] : tracks) {
        out << "  {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
            << "\"tid\":" << tid << ",\"args\":{\"name\":\"" << name
            << "\"}},\n";
    }
    for (size_t i = 0; i < events.size(); ++i) {
        const TraceEvent &e = events[i];
        out << "  {\"name\":\"" << jsonEscape(e.name) << "\",";
        if (e.instant) {
            out << "\"ph\":\"i\",\"ts\":" << e.startUs
                << ",\"s\":\"t\"";
        } else {
            out << "\"ph\":\"X\",\"ts\":" << e.startUs
                << ",\"dur\":" << e.durationUs;
        }
        out << ",\"pid\":0,\"tid\":" << e.tid << "}"
            << (i + 1 < events.size() ? "," : "") << "\n";
    }
    out << "]\n";
}

void
writeControlTraceFile(const ControlReport &report,
                      const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    writeControlTrace(report, out);
    if (!out)
        fatal("write to '%s' failed", path.c_str());
}

void
writeChromeTraceFile(const SimResult &result,
                     const EngineTopology &topology,
                     const Placement &placement,
                     const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    writeChromeTrace(result, topology, placement, out);
    if (!out)
        fatal("write to '%s' failed", path.c_str());
}

} // namespace xpro
