#include "sim/fault_sim.hh"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/logging.hh"
#include "graph/dataflow_graph.hh"
#include "obs/stats_registry.hh"

namespace xpro
{

namespace
{

/** Mutable per-packet ARQ progress shared across attempt callbacks. */
struct ArqJob
{
    ArqPacket packet;
    AttemptCost cost;
    /** 0-based index of the ongoing attempt. */
    size_t attempt = 0;
};

// Stable scope: losses are drawn from the seeded channel in a
// deterministic single-threaded order, so attempt/retry/drop counts
// are a pure function of the configuration. Probes are excluded,
// mirroring RobustnessReport.
struct ArqStatIds
{
    StatId attempts, delivered, retries, drops, triesHist;
};

const ArqStatIds &
arqStatIds()
{
    static const ArqStatIds ids = [] {
        StatsRegistry &reg = StatsRegistry::instance();
        return ArqStatIds{
            reg.registerCounter("arq.attempts"),
            reg.registerCounter("arq.delivered"),
            reg.registerCounter("arq.retries"),
            reg.registerCounter("arq.drops"),
            reg.registerHistogram("arq.tries_per_packet")};
    }();
    return ids;
}

} // namespace

void
runArq(EventQueue &queue, FaultState &faults, const WirelessLink &link,
       ArqPacket packet, SensorEnergyBreakdown *sensor,
       ChannelGrant grant, std::function<void(const std::string &)> note,
       ArqDone done)
{
    xproAssert(faults.profile().enabled,
               "runArq on a disabled fault profile");
    if (packet.isProbe)
        ++faults.stats().probes;
    else
        ++faults.stats().packetsOffered;

    auto job = std::make_shared<ArqJob>();
    job->packet = std::move(packet);
    job->cost = link.attempt(job->packet.payloadBits);

    // Self-continuing attempt loop. Each attempt is its own channel
    // grant, so the channel serves other traffic during ACK timeouts
    // and backoff; the self-reference is cleared on the terminal
    // paths to break the ownership cycle.
    auto attemptOnce = std::make_shared<std::function<void()>>();
    *attemptOnce = [&queue, &faults, job, sensor,
                    grant = std::move(grant), note = std::move(note),
                    done = std::move(done), attemptOnce]() {
        ++faults.stats().attempts;
        StatsRegistry::instance().add(arqStatIds().attempts);
        const Time now = queue.now();
        // The packet's fate is drawn when the attempt is initiated
        // (a deterministic single-threaded order), not when the
        // possibly-backlogged channel actually serializes it — a
        // documented simplification. Scripted losses (outage
        // windows, dead fleet nodes) consume no stochastic draw.
        const bool forced =
            job->packet.forceLost && job->packet.forceLost(now);
        const bool lost = forced || faults.loss().dropPacket(now);

        // The receiver listens for the data frame on every attempt;
        // the ACK exchange happens only when the frame got through.
        if (sensor) {
            if (job->packet.senderInSensor) {
                sensor->tx += job->cost.dataTx;
                if (!lost)
                    sensor->rx += job->cost.ackRx;
            } else {
                sensor->rx += job->cost.dataRx;
                if (!lost)
                    sensor->tx += job->cost.ackTx;
            }
        }

        const Time air =
            lost ? job->cost.dataAirTime
                 : job->cost.dataAirTime + job->cost.ackAirTime;
        std::string what = job->packet.what;
        if (job->attempt > 0)
            what += " try " + std::to_string(job->attempt);
        grant(air, what, [&queue, &faults, job, lost, note, done,
                          attemptOnce]() {
            RobustnessReport &stats = faults.stats();
            if (!lost) {
                const size_t retries = job->attempt;
                if (!job->packet.isProbe) {
                    ++stats.packetsDelivered;
                    if (stats.retryHistogram.size() <= retries)
                        stats.retryHistogram.resize(retries + 1, 0);
                    ++stats.retryHistogram[retries];
                    StatsRegistry &reg = StatsRegistry::instance();
                    const ArqStatIds &ids = arqStatIds();
                    reg.add(ids.delivered);
                    reg.add(ids.retries, retries);
                    reg.observe(ids.triesHist, retries + 1);
                }
                *attemptOnce = nullptr;
                done(true, retries + 1);
                return;
            }
            const ArqConfig &arq = faults.profile().arq;
            if (job->attempt >= arq.maxRetries) {
                if (note)
                    note("drop " + job->packet.what);
                if (!job->packet.isProbe) {
                    ++stats.packetsAbandoned;
                    StatsRegistry &reg = StatsRegistry::instance();
                    const ArqStatIds &ids = arqStatIds();
                    reg.add(ids.drops);
                    reg.add(ids.retries, job->attempt);
                    reg.observe(ids.triesHist, job->attempt + 1);
                }
                const size_t attempts = job->attempt + 1;
                *attemptOnce = nullptr;
                done(false, attempts);
                return;
            }
            if (note)
                note("retry " + job->packet.what);
            const Time wait = arq.backoff(job->attempt);
            ++job->attempt;
            queue.scheduleAfter(wait,
                               [attemptOnce]() { (*attemptOnce)(); });
        });
    };
    (*attemptOnce)();
}

LocalFallback
computeLocalFallback(const EngineTopology &topology,
                     const Placement &placement,
                     const std::vector<std::optional<Time>>
                         &sensor_finish_at,
                     Time at)
{
    const DataflowGraph &graph = topology.graph;
    xproAssert(sensor_finish_at.size() == graph.nodeCount(),
               "finish-time vector has %zu entries for %zu nodes",
               sensor_finish_at.size(), graph.nodeCount());
    xproAssert(sensor_finish_at[DataflowGraph::sourceId].has_value(),
               "raw segment not yet acquired at fallback time");

    LocalFallback plan;
    std::vector<Time> avail(graph.nodeCount());
    for (size_t v : graph.topologicalOrder()) {
        if (sensor_finish_at[v].has_value()) {
            // Output already produced (or in flight) in-sensor:
            // reuse it, charging nothing.
            xproAssert(v == DataflowGraph::sourceId ||
                           placement.inSensor(v),
                       "cell '%s' finished in-sensor but is placed "
                       "in the aggregator",
                       graph.node(v).name.c_str());
            avail[v] = std::max(*sensor_finish_at[v], at);
            continue;
        }
        Time ready = at;
        for (size_t u : graph.predecessors(v))
            ready = std::max(ready, avail[u]);
        const CellCosts &costs = graph.node(v).costs;
        avail[v] = ready + costs.sensorDelay;
        plan.compute += costs.sensorEnergy;
        ++plan.recomputedCells;
    }
    plan.completion = avail[topology.fusionNode];
    return plan;
}

} // namespace xpro
