#include "serve/hot_path.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/simd.hh"

namespace xpro
{

HotPathPipeline::HotPathPipeline(const TrainedPipeline &pipeline)
    : _extractor(pipeline.extractor), _scaler(pipeline.scaler),
      _fusionBias(pipeline.ensemble.fusionBias())
{
    const std::vector<BaseClassifier> &bases =
        pipeline.ensemble.bases();
    xproAssert(!bases.empty(), "ensemble not trained");
    xproAssert(_scaler.fitted(), "scaler not fitted");

    _bases.reserve(bases.size());
    for (size_t m = 0; m < bases.size(); ++m) {
        const BaseClassifier &base = bases[m];
        const Svm &model = base.model;
        const FlatMatrix &svs = model.supportVectors();

        PackedBase packed;
        packed.featureIndices = base.featureIndices;
        packed.weights = model.weights();
        packed.svNorms = model.supportVectorNorms();
        packed.bias = model.bias();
        packed.gamma = model.kernel().gamma;
        packed.kind = model.kernel().kind;
        packed.svCount = svs.size();
        packed.dims = model.dimension();
        packed.fusionWeight = pipeline.ensemble.fusionWeights()[m];

        const size_t tiles =
            (packed.svCount + simdPackWidth - 1) / simdPackWidth;
        packed.packedTiles.resize(tiles * packed.dims *
                                  simdPackWidth);
        const double *tileRows[simdPackWidth];
        for (size_t t = 0; t < tiles; ++t) {
            const size_t k0 = t * simdPackWidth;
            const size_t count =
                std::min(simdPackWidth, packed.svCount - k0);
            for (size_t j = 0; j < count; ++j)
                tileRows[j] = svs.rowData(k0 + j);
            simdPackRows(tileRows, count, packed.dims,
                         packed.packedTiles.data() +
                             t * packed.dims * simdPackWidth);
        }
        _bases.push_back(std::move(packed));
    }
}

int
HotPathPipeline::classify(const double *segment, size_t n,
                          Arena &arena, DwtScratch &dwt) const
{
    arena.reset();
    double *feats = arena.alloc<double>(featurePoolSize);
    _extractor.extractAllInto(segment, n, feats, dwt);
    _scaler.transformInto(feats, feats);
    return decide(feats, arena);
}

void
HotPathPipeline::classifyMany(const double *const *segments,
                              size_t count, size_t n, int *out,
                              Arena &arena, DwtScratch &dwt) const
{
    arena.reset();
    double *feats = arena.alloc<double>(count * featurePoolSize);
    _extractor.extractAllPackedInto(segments, count, n, feats, dwt,
                                    arena);
    for (size_t j = 0; j < count; ++j) {
        double *row = feats + j * featurePoolSize;
        _scaler.transformInto(row, row);
        out[j] = decide(row, arena);
    }
}

int
HotPathPipeline::decide(const double *feats, Arena &arena) const
{
    double score = _fusionBias;
    double lane[simdPackWidth];
    for (const PackedBase &base : _bases) {
        double *sub = arena.alloc<double>(base.dims);
        for (size_t c = 0; c < base.dims; ++c)
            sub[c] = feats[base.featureIndices[c]];

        // Svm::decision()'s schedule: bias first, then one weighted
        // kernel term per support vector in SV order; each dot runs
        // serially over the subspace dimensions inside the packed
        // micro-kernel, so the value matches the scalar path bitwise.
        double acc = base.bias;
        if (base.kind == KernelKind::Rbf) {
            const double x_norm =
                scalar_ref::squaredNorm(sub, base.dims);
            for (size_t k0 = 0; k0 < base.svCount;
                 k0 += simdPackWidth) {
                simdDotPacked(sub,
                              base.packedTiles.data() +
                                  (k0 / simdPackWidth) * base.dims *
                                      simdPackWidth,
                              base.dims, lane);
                const size_t count =
                    std::min(simdPackWidth, base.svCount - k0);
                for (size_t j = 0; j < count; ++j)
                    acc += base.weights[k0 + j] *
                           rbfFromParts(base.gamma, x_norm,
                                        base.svNorms[k0 + j],
                                        lane[j]);
            }
        } else {
            for (size_t k0 = 0; k0 < base.svCount;
                 k0 += simdPackWidth) {
                simdDotPacked(sub,
                              base.packedTiles.data() +
                                  (k0 / simdPackWidth) * base.dims *
                                      simdPackWidth,
                              base.dims, lane);
                const size_t count =
                    std::min(simdPackWidth, base.svCount - k0);
                for (size_t j = 0; j < count; ++j)
                    acc += base.weights[k0 + j] * lane[j];
            }
        }
        const int vote = acc >= 0.0 ? 1 : -1;
        score += base.fusionWeight * static_cast<double>(vote);
    }
    return score >= 0.0 ? 1 : -1;
}

} // namespace xpro
