#include "serve/batch_server.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/simd.hh"

namespace xpro
{

namespace
{

// events_classified is Stable (the stream length is configuration-
// independent); lane-group shapes are Diag — worker slicing splits
// per-user runs at slice boundaries, so occupancy varies with the
// batch/worker configuration.
struct ServeStatIds
{
    StatId events, groups, laneIdle, groupSize;
};

const ServeStatIds &
serveStatIds()
{
    static const ServeStatIds ids = [] {
        StatsRegistry &reg = StatsRegistry::instance();
        const StatScope d = StatScope::Diag;
        return ServeStatIds{
            reg.registerCounter("serve.events_classified"),
            reg.registerCounter("serve.lane_groups", d),
            reg.registerCounter("serve.lane_slots_idle", d),
            reg.registerHistogram("serve.lane_group_size", d)};
    }();
    return ids;
}

} // namespace

BatchServer::BatchServer(std::vector<const HotPathPipeline *> users,
                         size_t batchEvents, size_t workers)
    : _users(std::move(users)), _batchEvents(batchEvents),
      _pool(resolveWorkerCount(workers)),
      _scratch(std::max<size_t>(1, _pool.workerCount()))
{
    xproAssert(!_users.empty(), "batch server needs users");
    for (const HotPathPipeline *user : _users)
        xproAssert(user != nullptr, "null user pipeline");
    // Register ids up front so the per-worker slabs grow (one
    // allocation each) on the first served event, never later.
    serveStatIds();
}

void
BatchServer::serveInto(const ServingEvent *events, size_t count,
                       int *out)
{
    const size_t batch = _batchEvents == 0 ? count : _batchEvents;
    for (size_t begin = 0; begin < count; begin += batch) {
        const size_t n = std::min(batch, count - begin);
        serveBatch(events + begin, n, out + begin);
    }
    if constexpr (kStatsEnabled) {
        StatsRegistry &reg = StatsRegistry::instance();
        for (WorkerScratch &scratch : _scratch)
            reg.absorb(scratch.stats);
    }
}

std::vector<int>
BatchServer::serve(const std::vector<ServingEvent> &events)
{
    std::vector<int> out(events.size());
    serveInto(events.data(), events.size(), out.data());
    return out;
}

void
BatchServer::serveBatch(const ServingEvent *events, size_t count,
                        int *out)
{
    const size_t workers = std::max<size_t>(1, _pool.workerCount());
    if (workers == 1 || count <= 1) {
        workerServe(0, events, count, out);
        return;
    }
    // Contiguous slices keyed by worker index: slice w always covers
    // the same events regardless of scheduling, and results land at
    // original positions, so output is worker-count-invariant.
    const size_t share = (count + workers - 1) / workers;
    _pool.run(workers, [&](size_t w) {
        const size_t begin = w * share;
        if (begin >= count)
            return;
        const size_t end = std::min(count, begin + share);
        workerServe(w, events + begin, end - begin, out + begin);
    });
}

void
BatchServer::workerServe(size_t worker, const ServingEvent *events,
                         size_t count, int *out)
{
    WorkerScratch &scratch = _scratch[worker];
    for (size_t i = 0; i < count; ++i)
        xproAssert(events[i].user < _users.size(),
                   "event user %u out of range", events[i].user);
    // Group by user: one pass over the slice per user keeps that
    // user's packed SV tiles cache-hot, and runs of equal-length
    // events feed the lane-packed classifyMany() up to simdPackWidth
    // at a time. Grouping only reorders computation between
    // independent events — each prediction is bit-identical to
    // classifying its event alone — and the index buffer is
    // grow-only, so the steady-state loop stays allocation-free.
    for (uint32_t u = 0; u < _users.size(); ++u) {
        const HotPathPipeline *pipeline = _users[u];
        scratch.indices.clear();
        for (size_t i = 0; i < count; ++i) {
            if (events[i].user == u)
                scratch.indices.push_back(i);
        }
        size_t g = 0;
        while (g < scratch.indices.size()) {
            const size_t length =
                events[scratch.indices[g]].length;
            size_t m = 1;
            while (m < simdPackWidth &&
                   g + m < scratch.indices.size() &&
                   events[scratch.indices[g + m]].length == length)
                ++m;
            const double *segments[simdPackWidth];
            int labels[simdPackWidth];
            for (size_t t = 0; t < m; ++t)
                segments[t] =
                    events[scratch.indices[g + t]].segment;
            pipeline->classifyMany(segments, m, length, labels,
                                   scratch.arena, scratch.dwt);
            if constexpr (kStatsEnabled) {
                const ServeStatIds &ids = serveStatIds();
                scratch.stats.add(ids.events, m);
                scratch.stats.add(ids.groups);
                scratch.stats.add(ids.laneIdle, simdPackWidth - m);
                scratch.stats.observe(ids.groupSize, m);
            }
            for (size_t t = 0; t < m; ++t)
                out[scratch.indices[g + t]] = labels[t];
            g += m;
        }
    }
}

} // namespace xpro
