/**
 * @file
 * Compiled allocation-free serving form of a trained pipeline.
 *
 * HotPathPipeline takes a TrainedPipeline apart once at construction
 * — support vectors transposed into packed SIMD tiles
 * (common/simd.hh), per-SV norms and weights flattened, fusion
 * weights captured — so that classify() runs segment → DWT →
 * features → scaling → per-base RBF decision → weighted vote with
 * zero heap allocations (all scratch comes from a caller-provided
 * Arena and DwtScratch, which stop growing after the first event).
 *
 * The float path is bit-identical to TrainedPipeline::classify():
 * feature extraction and scaling share the same code
 * (extractAllInto/transformInto), and every kernel dot product
 * accumulates serially left-to-right exactly like Svm::decision(),
 * with vectorization only across support vectors. The differential
 * tests (label `hotpath`) compare the two paths with exact equality.
 */

#ifndef XPRO_SERVE_HOT_PATH_HH
#define XPRO_SERVE_HOT_PATH_HH

#include <cstddef>
#include <vector>

#include "common/arena.hh"
#include "core/pipeline.hh"
#include "dsp/dwt.hh"
#include "dsp/feature_pool.hh"
#include "ml/kernel.hh"

namespace xpro
{

class HotPathPipeline
{
  public:
    /** Compile @p pipeline (which must be trained) for serving. The
     * trained pipeline is copied from; it need not stay alive. */
    explicit HotPathPipeline(const TrainedPipeline &pipeline);

    /**
     * Classify one raw segment. Resets @p arena on entry and draws
     * all scratch from it and from @p dwt; performs no heap
     * allocations once both have warmed up. Returns the same +-1
     * label as TrainedPipeline::classify(), bit-identically.
     */
    int classify(const double *segment, size_t n, Arena &arena,
                 DwtScratch &dwt) const;

    int
    classify(const std::vector<double> &segment, Arena &arena,
             DwtScratch &dwt) const
    {
        return classify(segment.data(), segment.size(), arena, dwt);
    }

    /**
     * Classify up to simdPackWidth equal-length segments in one
     * call, writing out[j] for segment j. Feature extraction runs
     * lane-packed (one event per SIMD lane, see
     * computeAllKindsPacked()), so the per-event reduction chains
     * amortize across the group; scaling and the ensemble decision
     * then run per event on the shared scratch. Each out[j] is
     * bit-identical to classify(segments[j], n, ...). Resets
     * @p arena on entry; allocation-free once warmed up.
     */
    void classifyMany(const double *const *segments, size_t count,
                      size_t n, int *out, Arena &arena,
                      DwtScratch &dwt) const;

    /** Ensemble members compiled in. */
    size_t baseCount() const { return _bases.size(); }

  private:
    /** One ensemble member with its support vectors pre-packed into
     * simdPackWidth-wide tiles. */
    struct PackedBase
    {
        std::vector<size_t> featureIndices;
        /** ceil(svCount / simdPackWidth) tiles, each dims *
         * simdPackWidth doubles. */
        std::vector<double> packedTiles;
        std::vector<double> weights;
        std::vector<double> svNorms;
        double bias = 0.0;
        double gamma = 0.0;
        KernelKind kind = KernelKind::Rbf;
        size_t svCount = 0;
        size_t dims = 0;
        double fusionWeight = 0.0;
    };

    /** Scaled feature row -> +-1 label (the post-feature part of
     * classify(); draws per-base subspace scratch from @p arena
     * without resetting it). */
    int decide(const double *feats, Arena &arena) const;

    FeatureExtractor _extractor;
    FeatureScaler _scaler;
    std::vector<PackedBase> _bases;
    double _fusionBias = 0.0;
};

} // namespace xpro

#endif // XPRO_SERVE_HOT_PATH_HH
