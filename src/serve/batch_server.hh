/**
 * @file
 * Cross-user batched inference server over compiled hot-path
 * pipelines.
 *
 * A fleet's nodes raise classification events concurrently; the
 * server drains them in arrival order, slicing the stream into
 * batches of `batchEvents` that may span many users' models, and
 * fans each batch out over a persistent worker pool. Every event is
 * classified by its user's HotPathPipeline with per-worker scratch
 * (Arena + DwtScratch), and predictions land at the event's original
 * index — so the output is bit-identical at ANY batch size and ANY
 * worker count to classifying each event alone (PR 3's
 * batch-vs-per-sample discipline, enforced by the `hotpath` tests).
 *
 * Within a worker's slice events are processed grouped by user, so
 * one user's packed support-vector tiles stay cache-hot across that
 * user's events in the batch; grouping only reorders computation
 * between independent events, never arithmetic inside one.
 *
 * With workers == 1 the steady-state serve loop performs zero heap
 * allocations (counting-allocator test); multi-worker runs allocate
 * only in the pool fan-out, never per event.
 */

#ifndef XPRO_SERVE_BATCH_SERVER_HH
#define XPRO_SERVE_BATCH_SERVER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/arena.hh"
#include "common/worker_pool.hh"
#include "dsp/dwt.hh"
#include "obs/stats_registry.hh"
#include "serve/hot_path.hh"

namespace xpro
{

/** One pending inference: which user raised it and the raw segment
 * samples (borrowed; must outlive the serve call). */
struct ServingEvent
{
    uint32_t user = 0;
    const double *segment = nullptr;
    size_t length = 0;
};

class BatchServer
{
  public:
    /**
     * @param users Compiled pipeline per user id (borrowed; must
     *        outlive the server).
     * @param batchEvents Events per cross-user batch; 0 serves the
     *        whole stream as one batch.
     * @param workers Worker threads per batch (0 = one per hardware
     *        thread, 1 = inline).
     */
    BatchServer(std::vector<const HotPathPipeline *> users,
                size_t batchEvents, size_t workers);

    /**
     * Classify events[0..count) into out[0..count), in original
     * event order. Allocation-free in steady state when running
     * inline (workers == 1).
     */
    void serveInto(const ServingEvent *events, size_t count,
                   int *out);

    /** Convenience wrapper allocating the result vector. */
    std::vector<int> serve(const std::vector<ServingEvent> &events);

    size_t userCount() const { return _users.size(); }
    size_t batchEvents() const { return _batchEvents; }
    size_t workerCount() const { return _pool.workerCount(); }

  private:
    void serveBatch(const ServingEvent *events, size_t count,
                    int *out);
    void workerServe(size_t worker, const ServingEvent *events,
                     size_t count, int *out);

    std::vector<const HotPathPipeline *> _users;
    size_t _batchEvents;
    WorkerPool _pool;

    struct WorkerScratch
    {
        Arena arena;
        DwtScratch dwt;
        /** Per-user event indices of the current slice (grow-only,
         * so the steady-state loop stays allocation-free). */
        std::vector<size_t> indices;
        /** serve.* telemetry, plain writes; grows once on the first
         * event and is absorbed per serveInto call, keeping the
         * steady-state loop allocation- and atomic-free. */
        StatsSlab stats;
    };
    std::vector<WorkerScratch> _scratch;
};

} // namespace xpro

#endif // XPRO_SERVE_BATCH_SERVER_HH
