/**
 * @file
 * The six evaluation test cases of the paper (Table 1):
 *
 *   | Case | Dataset        | Segment length | Segments |
 *   |------|----------------|----------------|----------|
 *   | C1   | ECGTwoLead     | 82             | 1162     |
 *   | C2   | ECGFiveDays    | 136            | 884      |
 *   | E1   | EEGDifficult01 | 128            | 1000     |
 *   | E2   | EEGDifficult02 | 128            | 1000     |
 *   | M1   | EMGHandLat     | 132            | 1200     |
 *   | M2   | EMGHandTip     | 132            | 1200     |
 *
 * Each case is materialized with the synthetic generators; shapes
 * match Table 1 exactly and class balance is approximately even.
 */

#ifndef XPRO_DATA_TESTCASES_HH
#define XPRO_DATA_TESTCASES_HH

#include <array>
#include <cstddef>

#include "data/biosignal.hh"

namespace xpro
{

/** Identifiers of the six paper test cases. */
enum class TestCase
{
    C1,
    C2,
    E1,
    E2,
    M1,
    M2,
};

/** All test cases in the paper's order. */
constexpr std::array<TestCase, 6> allTestCases = {
    TestCase::C1, TestCase::C2, TestCase::E1,
    TestCase::E2, TestCase::M1, TestCase::M2,
};

/** Static Table-1 attributes of one test case. */
struct TestCaseInfo
{
    TestCase id;
    const char *symbol;
    const char *datasetName;
    Modality modality;
    size_t segmentLength;
    size_t segmentCount;
    /** ADC rate assumed for the modality (sets the event rate). */
    double sampleRateHz;
};

/** Table-1 attributes for @p id. */
const TestCaseInfo &testCaseInfo(TestCase id);

/**
 * Materialize a test case with the synthetic generators.
 *
 * @param id Which case.
 * @param seed Generator seed; equal seeds give identical datasets.
 * @return Dataset with Table-1 shape and roughly even class split.
 */
SignalDataset makeTestCase(TestCase id, uint64_t seed = 2017);

} // namespace xpro

#endif // XPRO_DATA_TESTCASES_HH
