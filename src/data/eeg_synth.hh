/**
 * @file
 * Synthetic EEG segment generator.
 *
 * Background activity is a mixture of band-limited oscillations
 * (delta, theta, alpha, beta) with random phases plus 1/f-like
 * noise. The two classes mimic the spike-discrimination task of the
 * Quiroga neural data used for the paper's E1/E2 cases: the positive
 * class injects transient spike events (sharp biphasic deflections),
 * and the class contrast can be softened to model the "difficult"
 * variants.
 */

#ifndef XPRO_DATA_EEG_SYNTH_HH
#define XPRO_DATA_EEG_SYNTH_HH

#include "common/random.hh"
#include "data/biosignal.hh"

namespace xpro
{

/** Tunable parameters of the synthetic EEG generator. */
struct EegSynthConfig
{
    /** Number of spike transients in a positive segment. */
    size_t spikesPerPositive = 2;
    /** Spike peak amplitude relative to background RMS. */
    double spikeAmplitude = 2.6;
    /** Spike half-width in seconds. */
    double spikeWidthSec = 0.012;
    /** Alpha-band power scale of the positive class. */
    double positiveAlphaScale = 1.5;
    /** Additive white noise level. */
    double noiseLevel = 0.25;
};

/**
 * Generate one EEG segment.
 *
 * @param length Samples per segment.
 * @param sample_rate_hz Rendering rate.
 * @param positive True for the spike-bearing (label +1) class.
 * @param config Generator tuning.
 * @param rng Randomness source.
 */
std::vector<double> synthesizeEegSegment(size_t length,
                                         double sample_rate_hz,
                                         bool positive,
                                         const EegSynthConfig &config,
                                         Rng &rng);

} // namespace xpro

#endif // XPRO_DATA_EEG_SYNTH_HH
