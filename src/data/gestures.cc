#include "data/gestures.hh"

#include "common/random.hh"
#include "data/emg_synth.hh"

namespace xpro
{

GestureDataset
makeEmgGestureDataset(size_t segments_per_class, uint64_t seed)
{
    GestureDataset dataset;
    dataset.name = "EMGHandGestures";
    dataset.segmentLength = 132;
    dataset.sampleRateHz = 1000.0;
    dataset.classCount = 4;
    dataset.classNames = {"lateral", "spherical", "tip", "hook"};

    // Per-grasp activation envelopes: each class differs in burst
    // count, duration and contraction strength, extending the binary
    // M1/M2 contrasts to a four-way problem.
    struct GraspProfile
    {
        size_t bursts;
        double lengthSec;
        double amplitude;
    };
    const GraspProfile profiles[4] = {
        {1, 0.30, 1.00}, // lateral: one long moderate burst
        {2, 0.14, 1.45}, // spherical: two short strong bursts
        {2, 0.22, 0.85}, // tip: two medium weak bursts
        {3, 0.10, 1.20}, // hook: three brief strong bursts
    };

    Rng rng(seed ^ 0x6E57ull);
    for (size_t i = 0; i < segments_per_class; ++i) {
        for (size_t cls = 0; cls < dataset.classCount; ++cls) {
            const GraspProfile &profile = profiles[cls];
            // Reuse the binary generator's positive-class path with
            // per-class envelope parameters.
            EmgSynthConfig config;
            config.burstsClassPositive = profile.bursts;
            config.burstLenPositiveSec = profile.lengthSec;
            config.amplitudePositive = profile.amplitude;

            GestureSegment segment;
            segment.label = cls;
            segment.samples = synthesizeEmgSegment(
                dataset.segmentLength, dataset.sampleRateHz, true,
                config, rng);
            dataset.segments.push_back(std::move(segment));
        }
    }
    return dataset;
}

} // namespace xpro
