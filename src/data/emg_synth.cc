#include "data/emg_synth.hh"

#include <cmath>
#include <numbers>

namespace xpro
{

std::vector<double>
synthesizeEmgSegment(size_t length, double sample_rate_hz,
                     bool positive, const EmgSynthConfig &config,
                     Rng &rng)
{
    const size_t bursts = positive ? config.burstsClassPositive
                                   : config.burstsClassNegative;
    const double burst_len = positive ? config.burstLenPositiveSec
                                      : config.burstLenNegativeSec;
    const double amplitude = positive ? config.amplitudePositive
                                      : config.amplitudeNegative;
    const double duration =
        static_cast<double>(length) / sample_rate_hz;

    // Envelope: resting tone plus Hann-shaped activation bursts.
    std::vector<double> envelope(length, config.restingNoise);
    for (size_t b = 0; b < bursts; ++b) {
        const double jitter = 1.0 + 0.15 * rng.gaussian();
        const double len = burst_len * std::fabs(jitter);
        const double start =
            rng.uniform(0.05 * duration,
                        std::max(0.05 * duration + 1e-6,
                                 0.95 * duration - len));
        for (size_t i = 0; i < length; ++i) {
            const double t = static_cast<double>(i) / sample_rate_hz;
            if (t < start || t > start + len)
                continue;
            const double phase = (t - start) / len;
            const double hann =
                0.5 * (1.0 - std::cos(2.0 * std::numbers::pi * phase));
            envelope[i] += amplitude * hann * (1.0 + 0.1 * rng.gaussian());
        }
    }

    std::vector<double> segment(length);
    for (size_t i = 0; i < length; ++i)
        segment[i] = envelope[i] * rng.gaussian();
    return segment;
}

} // namespace xpro
