/**
 * @file
 * Synthetic EMG segment generator.
 *
 * Surface EMG is modeled as zero-mean Gaussian noise amplitude-
 * modulated by muscle-activation burst envelopes. The two classes
 * mimic the hand-movement discrimination of the UCI EMG corpus (M1:
 * lateral vs. spherical grasp, M2: tip vs. hook): they differ in
 * burst count, envelope duration and contraction strength.
 */

#ifndef XPRO_DATA_EMG_SYNTH_HH
#define XPRO_DATA_EMG_SYNTH_HH

#include "common/random.hh"
#include "data/biosignal.hh"

namespace xpro
{

/** Tunable parameters of the synthetic EMG generator. */
struct EmgSynthConfig
{
    /** Bursts in a class +1 segment. */
    size_t burstsClassPositive = 1;
    /** Bursts in a class -1 segment. */
    size_t burstsClassNegative = 2;
    /** Burst envelope duration (seconds) for class +1. */
    double burstLenPositiveSec = 0.28;
    /** Burst envelope duration (seconds) for class -1. */
    double burstLenNegativeSec = 0.12;
    /** Contraction amplitude for class +1. */
    double amplitudePositive = 1.0;
    /** Contraction amplitude for class -1. */
    double amplitudeNegative = 1.4;
    /** Resting-tone noise floor. */
    double restingNoise = 0.06;
};

/**
 * Generate one EMG segment.
 *
 * @param length Samples per segment.
 * @param sample_rate_hz Rendering rate.
 * @param positive True for the label +1 movement class.
 * @param config Generator tuning.
 * @param rng Randomness source.
 */
std::vector<double> synthesizeEmgSegment(size_t length,
                                         double sample_rate_hz,
                                         bool positive,
                                         const EmgSynthConfig &config,
                                         Rng &rng);

} // namespace xpro

#endif // XPRO_DATA_EMG_SYNTH_HH
