#include "data/eeg_synth.hh"

#include <cmath>
#include <numbers>

namespace xpro
{

namespace
{

/** One rhythmic background band. */
struct Band
{
    double loHz;
    double hiHz;
    double amplitude;
};

} // namespace

std::vector<double>
synthesizeEegSegment(size_t length, double sample_rate_hz,
                     bool positive, const EegSynthConfig &config,
                     Rng &rng)
{
    const Band bands[] = {
        {1.0, 4.0, 0.8},   // delta
        {4.0, 8.0, 0.5},   // theta
        {8.0, 13.0, 0.6},  // alpha
        {13.0, 30.0, 0.3}, // beta
    };

    // Each band contributes a few sinusoids at random frequencies
    // and phases; alpha power differs across classes.
    struct Component
    {
        double freq;
        double phase;
        double amp;
    };
    std::vector<Component> components;
    for (const Band &band : bands) {
        const bool is_alpha = band.loHz == 8.0;
        const double scale =
            (positive && is_alpha) ? config.positiveAlphaScale : 1.0;
        for (int k = 0; k < 3; ++k) {
            components.push_back({
                rng.uniform(band.loHz, band.hiHz),
                rng.uniform(0.0, 2.0 * std::numbers::pi),
                band.amplitude * scale * rng.uniform(0.5, 1.0),
            });
        }
    }

    std::vector<double> segment(length, 0.0);
    for (size_t i = 0; i < length; ++i) {
        const double t = static_cast<double>(i) / sample_rate_hz;
        double value = 0.0;
        for (const Component &c : components)
            value += c.amp *
                     std::sin(2.0 * std::numbers::pi * c.freq * t +
                              c.phase);
        value += config.noiseLevel * rng.gaussian();
        segment[i] = value;
    }

    if (positive) {
        // Inject biphasic spike transients at random positions away
        // from the edges.
        const double duration =
            static_cast<double>(length) / sample_rate_hz;
        for (size_t s = 0; s < config.spikesPerPositive; ++s) {
            const double center = duration * rng.uniform(0.15, 0.85);
            const double polarity = rng.chance(0.5) ? 1.0 : -1.0;
            for (size_t i = 0; i < length; ++i) {
                const double t =
                    static_cast<double>(i) / sample_rate_hz;
                const double z =
                    (t - center) / config.spikeWidthSec;
                // Biphasic: derivative-of-Gaussian shape.
                segment[i] += polarity * config.spikeAmplitude *
                              (-z) * std::exp(-0.5 * z * z);
            }
        }
    }
    return segment;
}

} // namespace xpro
