#include "data/biosignal.hh"

#include <array>

namespace xpro
{

const std::string &
modalityName(Modality modality)
{
    static const std::array<std::string, 3> names = {
        "ECG", "EEG", "EMG",
    };
    return names[static_cast<size_t>(modality)];
}

size_t
SignalDataset::positiveCount() const
{
    size_t count = 0;
    for (const Segment &segment : segments)
        count += segment.label == 1;
    return count;
}

} // namespace xpro
