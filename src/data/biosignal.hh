/**
 * @file
 * Core containers for biosignal segment datasets.
 *
 * The paper evaluates on six binary-classification test cases drawn
 * from the UCR time-series archive, the Quiroga neural spike data and
 * the UCI EMG corpus (Table 1). Those corpora are not redistributable
 * here, so the `xpro::data` generators synthesize waveforms with the
 * same segment shapes and two separable classes per case; everything
 * downstream (features, training, partitioning, energy accounting)
 * only depends on segment length, bit width and event rate.
 */

#ifndef XPRO_DATA_BIOSIGNAL_HH
#define XPRO_DATA_BIOSIGNAL_HH

#include <cstddef>
#include <string>
#include <vector>

namespace xpro
{

/** Biosignal modality. */
enum class Modality
{
    Ecg,
    Eeg,
    Emg,
};

/** Display name of a modality. */
const std::string &modalityName(Modality modality);

/** One labeled signal segment. */
struct Segment
{
    std::vector<double> samples;
    /** Binary class label in {-1, +1}. */
    int label = 1;
};

/** A segmented biosignal dataset. */
struct SignalDataset
{
    /** Long name, e.g. "ECGTwoLead". */
    std::string name;
    /** Paper symbol, e.g. "C1". */
    std::string symbol;
    Modality modality = Modality::Ecg;
    /** Samples per segment. */
    size_t segmentLength = 0;
    /** ADC sampling rate; fixes the event (segment) rate. */
    double sampleRateHz = 0.0;
    std::vector<Segment> segments;

    size_t size() const { return segments.size(); }

    /** Segments analyzed per second of monitoring. */
    double
    eventsPerSecond() const
    {
        return sampleRateHz / static_cast<double>(segmentLength);
    }

    /** Count of segments with label +1. */
    size_t positiveCount() const;
};

} // namespace xpro

#endif // XPRO_DATA_BIOSIGNAL_HH
