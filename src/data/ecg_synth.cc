#include "data/ecg_synth.hh"

#include <cmath>
#include <numbers>

namespace xpro
{

namespace
{

/** One Gaussian wave component of a PQRST complex. */
struct WaveComponent
{
    /** Offset from the R peak in seconds. */
    double offsetSec;
    /** Peak amplitude in millivolts. */
    double amplitude;
    /** Width (standard deviation) in seconds. */
    double widthSec;
};

} // namespace

std::vector<double>
synthesizeEcgSegment(size_t length, double sample_rate_hz,
                     bool abnormal, const EcgSynthConfig &config,
                     Rng &rng)
{
    // Canonical PQRST morphology (amplitudes in mV, times in s).
    WaveComponent waves[] = {
        {-0.20, 0.12, 0.025}, // P
        {-0.035, -0.16, 0.010}, // Q
        {0.0, 1.10, 0.011},   // R
        {0.045, -0.22, 0.012}, // S
        {0.28, 0.30, 0.045},  // T
    };

    if (abnormal) {
        for (WaveComponent &wave : waves) {
            // Widen the QRS complex (Q, R, S).
            if (std::fabs(wave.offsetSec) < 0.1)
                wave.widthSec *= config.abnormalQrsWidening;
        }
        waves[2].amplitude *= config.abnormalRScale;
        waves[4].amplitude *= config.abnormalTScale;
        // Abnormal beats also show a displaced T wave.
        waves[4].offsetSec += 0.05;
    }

    // Small per-segment physiological variability.
    const double amplitude_jitter = 1.0 + 0.08 * rng.gaussian();
    const double width_jitter = 1.0 + 0.05 * rng.gaussian();

    const double duration =
        static_cast<double>(length) / sample_rate_hz;
    // Place the R peak randomly inside the middle half so features
    // cannot key on a fixed sample position.
    const double r_time =
        duration * (0.35 + 0.3 * rng.uniform());

    const double wander_phase =
        rng.uniform(0.0, 2.0 * std::numbers::pi);
    const double wander_freq = rng.uniform(0.15, 0.45);

    std::vector<double> segment(length);
    for (size_t i = 0; i < length; ++i) {
        const double t = static_cast<double>(i) / sample_rate_hz;
        double value = 0.0;
        for (const WaveComponent &wave : waves) {
            const double center = r_time + wave.offsetSec;
            const double width = wave.widthSec * width_jitter;
            const double z = (t - center) / width;
            value += wave.amplitude * amplitude_jitter *
                     std::exp(-0.5 * z * z);
        }
        value += config.baselineWander *
                 std::sin(2.0 * std::numbers::pi * wander_freq * t +
                          wander_phase);
        value += config.noiseLevel * rng.gaussian();
        segment[i] = value;
    }
    return segment;
}

} // namespace xpro
