/**
 * @file
 * Multi-class EMG gesture dataset for the paper's Section 5.7
 * multi-classification extension.
 *
 * The UCI EMG corpus behind the paper's M1/M2 cases discriminates
 * hand movements pairwise (lateral vs. spherical, tip vs. hook);
 * this generator synthesizes all four grasps as one 4-class problem
 * with per-class burst envelopes, so the one-vs-rest extension can
 * be exercised end to end.
 */

#ifndef XPRO_DATA_GESTURES_HH
#define XPRO_DATA_GESTURES_HH

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "data/biosignal.hh"

namespace xpro
{

/** One labeled multi-class segment. */
struct GestureSegment
{
    std::vector<double> samples;
    /** Class label in [0, classCount). */
    size_t label = 0;
};

/** A multi-class EMG gesture dataset. */
struct GestureDataset
{
    std::string name;
    size_t segmentLength = 0;
    double sampleRateHz = 0.0;
    size_t classCount = 0;
    std::vector<GestureSegment> segments;
    std::vector<std::string> classNames;

    size_t size() const { return segments.size(); }

    double
    eventsPerSecond() const
    {
        return sampleRateHz / static_cast<double>(segmentLength);
    }
};

/**
 * Generate the 4-class hand-grasp dataset (lateral, spherical, tip,
 * hook).
 *
 * @param segments_per_class Segments generated per grasp.
 * @param seed Generator seed.
 */
GestureDataset makeEmgGestureDataset(size_t segments_per_class = 250,
                                     uint64_t seed = 2017);

} // namespace xpro

#endif // XPRO_DATA_GESTURES_HH
