#include "data/testcases.hh"

#include "common/logging.hh"
#include "common/random.hh"
#include "data/ecg_synth.hh"
#include "data/eeg_synth.hh"
#include "data/emg_synth.hh"

namespace xpro
{

namespace
{

const std::array<TestCaseInfo, 6> table1 = {{
    {TestCase::C1, "C1", "ECGTwoLead", Modality::Ecg, 82, 1162, 360.0},
    {TestCase::C2, "C2", "ECGFiveDays", Modality::Ecg, 136, 884, 360.0},
    {TestCase::E1, "E1", "EEGDifficult01", Modality::Eeg, 128, 1000,
     512.0},
    {TestCase::E2, "E2", "EEGDifficult02", Modality::Eeg, 128, 1000,
     512.0},
    {TestCase::M1, "M1", "EMGHandLat", Modality::Emg, 132, 1200,
     1000.0},
    {TestCase::M2, "M2", "EMGHandTip", Modality::Emg, 132, 1200,
     1000.0},
}};

} // namespace

const TestCaseInfo &
testCaseInfo(TestCase id)
{
    for (const TestCaseInfo &info : table1) {
        if (info.id == id)
            return info;
    }
    panic("unknown test case %d", static_cast<int>(id));
}

SignalDataset
makeTestCase(TestCase id, uint64_t seed)
{
    const TestCaseInfo &info = testCaseInfo(id);

    SignalDataset dataset;
    dataset.name = info.datasetName;
    dataset.symbol = info.symbol;
    dataset.modality = info.modality;
    dataset.segmentLength = info.segmentLength;
    dataset.sampleRateHz = info.sampleRateHz;
    dataset.segments.reserve(info.segmentCount);

    Rng rng(seed ^ (static_cast<uint64_t>(id) << 32));

    // Per-case generator tunings. The two cases of each modality
    // differ, mirroring how the paper's dataset pairs differ in
    // class structure and difficulty.
    EcgSynthConfig ecg;
    if (id == TestCase::C2) {
        ecg.noiseLevel = 0.06;
        ecg.abnormalQrsWidening = 1.5;
        ecg.abnormalTScale = 0.5;
    }

    EegSynthConfig eeg;
    if (id == TestCase::E2) {
        // "Difficult02": weaker spikes, smaller band contrast.
        eeg.spikeAmplitude = 1.8;
        eeg.positiveAlphaScale = 1.25;
        eeg.noiseLevel = 0.35;
    }

    EmgSynthConfig emg;
    if (id == TestCase::M2) {
        // Tip vs. hook: closer envelopes than lateral vs. spherical.
        emg.burstsClassPositive = 2;
        emg.burstsClassNegative = 3;
        emg.burstLenPositiveSec = 0.20;
        emg.burstLenNegativeSec = 0.13;
        emg.amplitudePositive = 1.1;
        emg.amplitudeNegative = 1.3;
    }

    for (size_t i = 0; i < info.segmentCount; ++i) {
        // Alternate labels for an even class balance.
        const bool positive = (i % 2) == 0;
        Segment segment;
        segment.label = positive ? 1 : -1;
        switch (info.modality) {
          case Modality::Ecg:
            // Positive = normal beat, negative = abnormal morphology.
            segment.samples = synthesizeEcgSegment(
                info.segmentLength, info.sampleRateHz, !positive, ecg,
                rng);
            break;
          case Modality::Eeg:
            segment.samples = synthesizeEegSegment(
                info.segmentLength, info.sampleRateHz, positive, eeg,
                rng);
            break;
          case Modality::Emg:
            segment.samples = synthesizeEmgSegment(
                info.segmentLength, info.sampleRateHz, positive, emg,
                rng);
            break;
        }
        dataset.segments.push_back(std::move(segment));
    }
    return dataset;
}

} // namespace xpro
