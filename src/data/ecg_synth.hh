/**
 * @file
 * Synthetic ECG segment generator.
 *
 * Beats are modeled as sums of Gaussian bumps for the P, Q, R, S and
 * T waves (a discretized simplification of the McSharry/ECGSYN
 * dynamical model), plus baseline wander and measurement noise. Two
 * classes are produced by morphology changes that mimic the normal /
 * abnormal contrast of the UCR ECG test cases: the abnormal class
 * widens the QRS complex, depresses the T wave and perturbs the R
 * amplitude.
 */

#ifndef XPRO_DATA_ECG_SYNTH_HH
#define XPRO_DATA_ECG_SYNTH_HH

#include "common/random.hh"
#include "data/biosignal.hh"

namespace xpro
{

/** Tunable morphology of the synthetic ECG generator. */
struct EcgSynthConfig
{
    /** Heart rate used to place the beat inside the segment. */
    double heartRateBpm = 72.0;
    /** Standard deviation of additive white noise. */
    double noiseLevel = 0.04;
    /** Amplitude of slow baseline wander. */
    double baselineWander = 0.05;
    /** Relative QRS widening of the abnormal class. */
    double abnormalQrsWidening = 1.8;
    /** T-wave amplitude scale of the abnormal class. */
    double abnormalTScale = 0.35;
    /** R-peak amplitude scale of the abnormal class. */
    double abnormalRScale = 0.75;
};

/**
 * Generate one ECG segment.
 *
 * @param length Samples in the segment.
 * @param sample_rate_hz ADC rate the waveform is rendered at.
 * @param abnormal True for the abnormal (label -1) morphology.
 * @param config Generator tuning.
 * @param rng Randomness source (beat phase, noise, jitter).
 */
std::vector<double> synthesizeEcgSegment(size_t length,
                                         double sample_rate_hz,
                                         bool abnormal,
                                         const EcgSynthConfig &config,
                                         Rng &rng);

} // namespace xpro

#endif // XPRO_DATA_ECG_SYNTH_HH
