/**
 * @file
 * S-ALU working modes (paper Section 3.1.2). Every component of XPro
 * uses one monotonic mode for all its functional cells; different
 * components may use different modes.
 */

#ifndef XPRO_HW_ALU_MODE_HH
#define XPRO_HW_ALU_MODE_HH

#include <array>
#include <cstddef>
#include <string>

namespace xpro
{

/** The three S-ALU working modes. */
enum class AluMode
{
    Serial,
    Parallel,
    Pipeline,
};

/** All modes, in the paper's order. */
constexpr std::array<AluMode, 3> allAluModes = {
    AluMode::Serial, AluMode::Parallel, AluMode::Pipeline,
};

/** Display name, e.g. "serial". */
const std::string &aluModeName(AluMode mode);

} // namespace xpro

#endif // XPRO_HW_ALU_MODE_HH
