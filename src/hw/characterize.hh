/**
 * @file
 * Per-component ALU-mode energy characterization (paper Section
 * 3.1.2, Fig. 4): evaluate every component of the generic engine in
 * the three S-ALU modes and identify the energy-optimal mode (the
 * figure's red stars).
 */

#ifndef XPRO_HW_CHARACTERIZE_HH
#define XPRO_HW_CHARACTERIZE_HH

#include <vector>

#include "hw/cell_library.hh"
#include "hw/cell_model.hh"

namespace xpro
{

/** Energy characterization of one component across the modes. */
struct ComponentCharacterization
{
    ComponentKind kind = ComponentKind::Max;
    /** Costs indexed by AluMode. */
    std::array<ModeCosts, 3> costs;
    /** Energy-optimal mode (the red star). */
    AluMode bestMode = AluMode::Serial;

    const ModeCosts &
    mode(AluMode m) const
    {
        return costs[static_cast<size_t>(m)];
    }

    const ModeCosts &best() const { return mode(bestMode); }
};

/** Parameters of the representative workloads used in Fig. 4. */
struct CharacterizationSetup
{
    /** Samples per feature-cell input (time-domain frame). */
    size_t featureInputLength = 128;
    /** DWT level-1 input length. */
    size_t dwtInputLength = 128;
    /** Filter taps (Db4). */
    size_t dwtTaps = 4;
    /** SVM subspace dimension (paper: 12). */
    size_t svmDimension = 12;
    /** Representative support-vector count. */
    size_t svmSupportVectors = 40;
    /** Ensemble size feeding the fusion cell. */
    size_t fusionBases = 10;
};

/** Workload of one component under a characterization setup. */
CellWorkload componentWorkload(ComponentKind kind,
                               const CharacterizationSetup &setup);

/** Characterize one component on one technology. */
ComponentCharacterization
characterizeComponent(ComponentKind kind, const Technology &tech,
                      const CharacterizationSetup &setup = {});

/** Characterize all 11 components (the full Fig. 4 row set). */
std::vector<ComponentCharacterization>
characterizeAllComponents(const Technology &tech,
                          const CharacterizationSetup &setup = {});

} // namespace xpro

#endif // XPRO_HW_CHARACTERIZE_HH
