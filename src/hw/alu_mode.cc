#include "hw/alu_mode.hh"

namespace xpro
{

const std::string &
aluModeName(AluMode mode)
{
    static const std::array<std::string, 3> names = {
        "serial", "parallel", "pipeline",
    };
    return names[static_cast<size_t>(mode)];
}

} // namespace xpro
