#include "hw/cell_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace xpro
{

namespace
{

/**
 * Mode-dependent dynamic-energy factors per operation, relative to
 * the Technology base energy.
 *
 * Serial: multi-cycle units pay feedback-register and loop-control
 * energy per iteration; the serial sqrt is microcoded as Newton
 * iterations on the shared S-ALU, costing several dividers' worth.
 *
 * Pipeline: registered stage boundaries add a few percent to cheap
 * ops; the unrolled divider replicates quotient-selection logic per
 * stage (expensive), whereas the non-restoring sqrt array is made of
 * cheap add/sub stages and beats its microcoded serial form.
 */
constexpr std::array<double, aluOpCount> serialFactor = {
    1.00, // Add
    1.00, // Cmp
    1.00, // Mul
    1.05, // Div
    4.00, // Sqrt (microcoded: ~4 divide-class iterations)
    1.15, // Exp
    1.00, // Buf
};

constexpr std::array<double, aluOpCount> pipelineFactor = {
    1.03, // Add
    1.03, // Cmp
    1.10, // Mul
    1.40, // Div
    0.90, // Sqrt (dedicated non-restoring array)
    1.60, // Exp (unrolled iterative exponent: expensive stages)
    1.00, // Buf
};

/** Pipeline stage depth contributed by one unit of each kind. */
constexpr std::array<size_t, aluOpCount> pipelineDepth = {
    1,  // Add
    1,  // Cmp
    2,  // Mul
    16, // Div
    4,  // Sqrt
    24, // Exp
    0,  // Buf (access overlaps the stream)
};

/**
 * Broadcast/mux overhead per instantiated unit in fully-unrolled
 * parallel mode: each operand fans out across, and each result is
 * selected from, a network whose energy grows with the array size.
 */
constexpr double parallelRoutingPerUnit = 0.15;

/** Clock-load growth per instantiated parallel unit. */
constexpr double parallelClockPerUnit = 0.02;

/** Pipeline register clock overhead per stage-traversal. */
constexpr double pipelineClockPerStage = 0.35;

/** Fixed pipeline fill/drain + configuration cost, in clock-cycles
 * worth of energy. */
constexpr double pipelineFixedCycles = 130.0;

ModeCosts
evaluateSerial(const CellWorkload &w, const Technology &tech)
{
    size_t cycles = 0;
    Energy dynamic;
    size_t unit_kinds = 0;
    for (AluOp op : allAluOps) {
        const size_t n = w.count(op);
        if (n == 0)
            continue;
        ++unit_kinds;
        cycles += n * tech.opCycles(op);
        dynamic += tech.opEnergy(op) *
                   (static_cast<double>(n) *
                    serialFactor[static_cast<size_t>(op)]);
    }

    ModeCosts costs;
    costs.cycles = cycles;
    costs.delay = Time::cycles(static_cast<double>(cycles),
                               Technology::cellClockHz);
    costs.energy = dynamic +
                   tech.clockEnergyPerCycle() *
                       static_cast<double>(cycles) +
                   tech.unitLeakage() *
                       static_cast<double>(std::max<size_t>(
                           unit_kinds, 1)) *
                       costs.delay +
                   tech.wakeEnergy();
    return costs;
}

ModeCosts
evaluatePipeline(const CellWorkload &w, const Technology &tech)
{
    size_t depth = 0;
    Energy dynamic;
    Energy stage_clock;
    for (AluOp op : allAluOps) {
        const size_t n = w.count(op);
        if (n == 0)
            continue;
        const size_t idx = static_cast<size_t>(op);
        depth += pipelineDepth[idx];
        double effective = static_cast<double>(n);
        if (op == AluOp::Buf)
            effective *= w.pipelineBufferScale;
        dynamic += tech.opEnergy(op) * (effective * pipelineFactor[idx]);
        // Register energy: every op traverses its unit's stages.
        stage_clock += tech.clockEnergyPerCycle() *
                       (pipelineClockPerStage * effective *
                        static_cast<double>(pipelineDepth[idx]));
    }

    const size_t stream =
        w.pipelineStream > 0 ? w.pipelineStream : w.datapathOps();
    const size_t cycles = stream + depth;

    ModeCosts costs;
    costs.cycles = cycles;
    costs.delay = Time::cycles(static_cast<double>(cycles),
                               Technology::cellClockHz);
    costs.energy = dynamic + stage_clock +
                   tech.clockEnergyPerCycle() *
                       static_cast<double>(cycles) +
                   tech.clockEnergyPerCycle() * pipelineFixedCycles +
                   tech.unitLeakage() *
                       static_cast<double>(std::max<size_t>(depth, 1)) *
                       costs.delay +
                   tech.wakeEnergy();
    return costs;
}

ModeCosts
evaluateParallel(const CellWorkload &w, const Technology &tech)
{
    const size_t units = std::max<size_t>(w.datapathOps(), 1);
    const double routing =
        1.0 + parallelRoutingPerUnit * static_cast<double>(units);

    size_t cycles = 0;
    Energy dynamic;
    for (AluOp op : allAluOps) {
        const size_t n = w.count(op);
        if (n == 0)
            continue;
        if (op == AluOp::Buf) {
            // Operand staging still touches every word once.
            dynamic += tech.opEnergy(op) * static_cast<double>(n);
            continue;
        }
        // One wave per op kind: all instances fire simultaneously.
        cycles += tech.opCycles(op);
        dynamic += tech.opEnergy(op) *
                   (static_cast<double>(n) * routing);
    }
    // Reduction/selection tree to collect the unrolled results.
    cycles += static_cast<size_t>(
                  std::ceil(std::log2(static_cast<double>(units) + 1.0))) +
              1;

    ModeCosts costs;
    costs.cycles = cycles;
    costs.delay = Time::cycles(static_cast<double>(cycles),
                               Technology::cellClockHz);
    costs.energy = dynamic +
                   tech.clockEnergyPerCycle() *
                       (static_cast<double>(cycles) *
                        (1.0 + parallelClockPerUnit *
                                   static_cast<double>(units))) +
                   tech.unitLeakage() * static_cast<double>(units) *
                       costs.delay +
                   tech.wakeEnergy();
    return costs;
}

} // namespace

size_t
CellWorkload::datapathOps() const
{
    size_t total = 0;
    for (AluOp op : allAluOps) {
        if (op != AluOp::Buf)
            total += count(op);
    }
    return total;
}

CellWorkload &
CellWorkload::operator+=(const CellWorkload &other)
{
    for (size_t i = 0; i < aluOpCount; ++i)
        ops[i] += other.ops[i];
    pipelineStream += other.pipelineStream;
    // Composite cells inherit the weaker streaming benefit.
    pipelineBufferScale =
        std::max(pipelineBufferScale, other.pipelineBufferScale);
    return *this;
}

ModeCosts
evaluateCellMode(const CellWorkload &workload, AluMode mode,
                 const Technology &tech)
{
    switch (mode) {
      case AluMode::Serial:
        return evaluateSerial(workload, tech);
      case AluMode::Pipeline:
        return evaluatePipeline(workload, tech);
      case AluMode::Parallel:
        return evaluateParallel(workload, tech);
    }
    panic("unknown ALU mode %d", static_cast<int>(mode));
}

AluMode
bestCellMode(const CellWorkload &workload, const Technology &tech)
{
    AluMode best = AluMode::Serial;
    Energy best_energy =
        evaluateCellMode(workload, AluMode::Serial, tech).energy;
    for (AluMode mode : {AluMode::Parallel, AluMode::Pipeline}) {
        const Energy e = evaluateCellMode(workload, mode, tech).energy;
        if (e < best_energy) {
            best_energy = e;
            best = mode;
        }
    }
    return best;
}

ModeCosts
bestCellCosts(const CellWorkload &workload, const Technology &tech)
{
    return evaluateCellMode(workload, bestCellMode(workload, tech),
                            tech);
}

} // namespace xpro
