#include "hw/cell_library.hh"

#include "common/logging.hh"

namespace xpro
{

const std::string &
componentName(ComponentKind kind)
{
    static const std::array<std::string, 12> names = {
        "Max",  "Min",  "Mean",   "Var", "Std", "Czero",
        "Skew", "Kurt", "DWT",    "SVM", "Fusion", "Argmax",
    };
    return names[static_cast<size_t>(kind)];
}

ComponentKind
componentForFeature(FeatureKind kind)
{
    switch (kind) {
      case FeatureKind::Max:   return ComponentKind::Max;
      case FeatureKind::Min:   return ComponentKind::Min;
      case FeatureKind::Mean:  return ComponentKind::Mean;
      case FeatureKind::Var:   return ComponentKind::Var;
      case FeatureKind::Std:   return ComponentKind::Std;
      case FeatureKind::Czero: return ComponentKind::Czero;
      case FeatureKind::Skew:  return ComponentKind::Skew;
      case FeatureKind::Kurt:  return ComponentKind::Kurt;
    }
    panic("unknown feature kind %d", static_cast<int>(kind));
}

CellWorkload
featureCellWorkload(FeatureKind kind, size_t n)
{
    xproAssert(n >= 2, "feature cell needs at least 2 samples");
    CellWorkload w;
    switch (kind) {
      case FeatureKind::Max:
      case FeatureKind::Min:
        // Running compare over the stream.
        w.count(AluOp::Cmp) = n - 1;
        w.count(AluOp::Buf) = n;
        w.pipelineStream = n;
        break;
      case FeatureKind::Mean:
        // Accumulate, then one divide by the sample count (the
        // executable cell simulator confirms these counts).
        w.count(AluOp::Add) = n;
        w.count(AluOp::Div) = 1;
        w.count(AluOp::Buf) = n;
        w.pipelineStream = n;
        break;
      case FeatureKind::Var:
        // Two passes: mean (accumulate + divide), then subtract,
        // square and accumulate per sample, then divide.
        w.count(AluOp::Add) = 3 * n;
        w.count(AluOp::Mul) = n;
        w.count(AluOp::Div) = 2;
        w.count(AluOp::Buf) = 2 * n;
        w.pipelineStream = 2 * n;
        break;
      case FeatureKind::Std:
        // Standalone variant: full Var plus a hardware square root.
        w = featureCellWorkload(FeatureKind::Var, n);
        w += stdFromVarWorkload();
        break;
      case FeatureKind::Czero:
        // Sign compare per adjacent pair plus a counter increment on
        // roughly half the transitions.
        w.count(AluOp::Cmp) = n - 1;
        w.count(AluOp::Add) = n / 2;
        w.count(AluOp::Buf) = n;
        w.pipelineStream = n;
        break;
      case FeatureKind::Skew:
        // Passes for mean and sigma (reusing the mean), then
        // z = (x-mu)/sigma and z^3 per sample.
        w.count(AluOp::Add) = 5 * n;
        w.count(AluOp::Mul) = 3 * n;
        w.count(AluOp::Div) = n + 3;
        w.count(AluOp::Sqrt) = 1;
        w.count(AluOp::Buf) = 3 * n;
        w.pipelineStream = 3 * n;
        break;
      case FeatureKind::Kurt:
        w.count(AluOp::Add) = 5 * n;
        w.count(AluOp::Mul) = 3 * n;
        w.count(AluOp::Div) = n + 3;
        w.count(AluOp::Sqrt) = 1;
        w.count(AluOp::Buf) = 3 * n;
        w.pipelineStream = 3 * n;
        break;
    }
    return w;
}

CellWorkload
stdFromVarWorkload()
{
    CellWorkload w;
    w.count(AluOp::Sqrt) = 1;
    w.count(AluOp::Buf) = 2;
    w.pipelineStream = 1;
    return w;
}

CellWorkload
dwtLevelWorkload(size_t input_length, size_t taps)
{
    xproAssert(input_length >= 2 && input_length % 2 == 0,
               "DWT level input length %zu must be even",
               input_length);
    xproAssert(taps >= 2, "need at least a 2-tap filter");

    // Each of the input_length output coefficients (half approx,
    // half detail) is a taps-wide MAC.
    const size_t outputs = input_length;
    CellWorkload w;
    w.count(AluOp::Mul) = taps * outputs;
    w.count(AluOp::Add) = (taps - 1) * outputs;
    // Serial implementation re-reads operands and taps per MAC and
    // writes the coefficient arrays back to the buffer.
    w.count(AluOp::Buf) = 2 * taps * outputs + outputs;
    w.pipelineStream = taps * outputs;
    // Streaming pipeline keeps the sliding window and taps in
    // registers; only input reads and output writes remain.
    w.pipelineBufferScale = 0.15;
    return w;
}

CellWorkload
svmCellWorkload(size_t dimension, size_t support_vectors)
{
    xproAssert(dimension > 0, "SVM needs a positive dimension");
    xproAssert(support_vectors > 0, "SVM needs support vectors");

    // Per support vector: d differences, d squarings, d-1 adds for
    // the distance, one exp for the RBF kernel and one MAC for the
    // weighted sum.
    CellWorkload w;
    w.count(AluOp::Add) = 2 * dimension * support_vectors;
    w.count(AluOp::Mul) = (dimension + 1) * support_vectors;
    w.count(AluOp::Exp) = support_vectors;
    w.count(AluOp::Cmp) = 1;
    w.count(AluOp::Buf) =
        dimension * support_vectors + dimension + support_vectors;
    w.pipelineStream = 2 * dimension * support_vectors;
    return w;
}

CellWorkload
argmaxCellWorkload(size_t classes)
{
    xproAssert(classes >= 2, "argmax needs at least two classes");
    CellWorkload w;
    w.count(AluOp::Cmp) = classes - 1;
    w.count(AluOp::Buf) = classes;
    w.pipelineStream = classes;
    return w;
}

CellWorkload
fusionCellWorkload(size_t bases)
{
    xproAssert(bases > 0, "fusion needs at least one base vote");
    CellWorkload w;
    w.count(AluOp::Mul) = bases;
    w.count(AluOp::Add) = bases;
    w.count(AluOp::Cmp) = 1;
    w.count(AluOp::Buf) = 2 * bases;
    w.pipelineStream = bases;
    return w;
}

} // namespace xpro
