/**
 * @file
 * Operation-count models for every component of the generic
 * classification engine: the eight statistical feature cells, the
 * DWT level cells, the SVM base-classifier cell and the score-fusion
 * cell. Workloads are parameterized by input length (and, for SVM,
 * by subspace dimension and support-vector count) so the same
 * library serves every test case and every trained ensemble.
 *
 * Cell-level reuse (paper Section 3.1.3, Fig. 5) is expressed by the
 * "incremental" Std variant that reuses a Var cell's output and only
 * adds the square root.
 */

#ifndef XPRO_HW_CELL_LIBRARY_HH
#define XPRO_HW_CELL_LIBRARY_HH

#include <cstddef>
#include <string>
#include <vector>

#include "dsp/features.hh"
#include "hw/cell_model.hh"

namespace xpro
{

/** Kinds of components a generic classification engine contains. */
enum class ComponentKind
{
    Max,
    Min,
    Mean,
    Var,
    Std,
    Czero,
    Skew,
    Kurt,
    Dwt,
    Svm,
    Fusion,
    Argmax, ///< multi-classification extension (paper Section 5.7)
};

/** All component kinds, feature cells first (paper Fig. 4 order). */
constexpr std::array<ComponentKind, 11> allComponentKinds = {
    ComponentKind::Max,  ComponentKind::Min,   ComponentKind::Mean,
    ComponentKind::Var,  ComponentKind::Std,   ComponentKind::Czero,
    ComponentKind::Skew, ComponentKind::Kurt,  ComponentKind::Dwt,
    ComponentKind::Svm,  ComponentKind::Fusion,
};

/** Display name, e.g. "DWT". */
const std::string &componentName(ComponentKind kind);

/** Component kind implementing a statistical feature. */
ComponentKind componentForFeature(FeatureKind kind);

/**
 * Workload of a statistical feature cell over @p input_length
 * samples. Std is the full standalone variant (Var + sqrt).
 */
CellWorkload featureCellWorkload(FeatureKind kind, size_t input_length);

/**
 * Workload of an Std cell that reuses an existing Var cell's output
 * (paper Fig. 5): just the hardware square root.
 */
CellWorkload stdFromVarWorkload();

/**
 * Workload of one DWT analysis level transforming @p input_length
 * samples into two half-length bands with a @p taps -tap filter pair
 * (4 taps for Db4, 2 for Haar).
 */
CellWorkload dwtLevelWorkload(size_t input_length, size_t taps = 4);

/**
 * Workload of an RBF-SVM base-classifier cell with @p dimension
 * inputs and @p support_vectors stored vectors.
 */
CellWorkload svmCellWorkload(size_t dimension, size_t support_vectors);

/** Workload of the weighted-voting score fusion over @p bases votes. */
CellWorkload fusionCellWorkload(size_t bases);

/**
 * Workload of the argmax cell that selects the winning class from
 * @p classes one-vs-rest fusion scores (multi-classification
 * extension, paper Section 5.7).
 */
CellWorkload argmaxCellWorkload(size_t classes);

} // namespace xpro

#endif // XPRO_HW_CELL_LIBRARY_HH
