/**
 * @file
 * Reconstructed process-technology energy library.
 *
 * The paper characterizes functional cells with Synopsys Design
 * Compiler / Power Compiler against TSMC 130nm, 90nm and 45nm
 * standard-cell libraries (Section 4.3). Those tools and libraries
 * are unavailable here, so this module provides an analytic
 * per-operation energy/delay table per process node, calibrated so
 * the relative costs that drive every result in the paper hold:
 *
 *  - multiply >> add/compare; divide, square root and exponent are
 *    expensive multi-cycle "super computation" ops (Section 3.1.1);
 *  - dynamic energy shrinks roughly quadratically with feature size
 *    while leakage shrinks more slowly;
 *  - a serial (microcoded) square root costs several divisions,
 *    whereas a dedicated pipelined non-restoring array is cheap --
 *    this is what makes Std pipeline-optimal in Fig. 4;
 *  - an unrolled pipelined divider is area/energy-expensive, keeping
 *    the division-heavy Skew/Kurt cells serial-optimal.
 *
 * All cells run from private asynchronous 16 MHz clocks (Section
 * 4.3) and are power gated while idle (Section 3.1.1).
 */

#ifndef XPRO_HW_TECHNOLOGY_HH
#define XPRO_HW_TECHNOLOGY_HH

#include <array>
#include <cstddef>
#include <string>

#include "common/units.hh"

namespace xpro
{

/** Available process nodes. */
enum class ProcessNode
{
    Tsmc130,
    Tsmc90,
    Tsmc45,
};

/** All process nodes, largest feature size first (paper order). */
constexpr std::array<ProcessNode, 3> allProcessNodes = {
    ProcessNode::Tsmc130, ProcessNode::Tsmc90, ProcessNode::Tsmc45,
};

/** Display name, e.g. "90nm". */
const std::string &processNodeName(ProcessNode node);

/** Primitive datapath operations of the S-ALU. */
enum class AluOp
{
    Add,    ///< 32-bit add/subtract/shift.
    Cmp,    ///< comparison / sign test.
    Mul,    ///< 32-bit fixed-point multiply.
    Div,    ///< iterative divider.
    Sqrt,   ///< square root ("super computation").
    Exp,    ///< exponential ("super computation", RBF kernel).
    Buf,    ///< local buffer/SRAM access (one word).
};

/** Number of distinct ALU operations. */
constexpr size_t aluOpCount = 7;

/** All ALU ops in declaration order. */
constexpr std::array<AluOp, aluOpCount> allAluOps = {
    AluOp::Add, AluOp::Cmp, AluOp::Mul, AluOp::Div,
    AluOp::Sqrt, AluOp::Exp, AluOp::Buf,
};

/** Short op name, e.g. "mul". */
const std::string &aluOpName(AluOp op);

/** Per-node energy/delay parameters. */
class Technology
{
  public:
    /** Functional-cell clock frequency (paper Section 4.3). */
    static constexpr double cellClockHz = 16.0e6;

    /** Look up the singleton table for a node. */
    static const Technology &get(ProcessNode node);

    ProcessNode node() const { return _node; }
    const std::string &name() const { return processNodeName(_node); }

    /** Dynamic energy of one execution of @p op. */
    Energy opEnergy(AluOp op) const;

    /** Serial-mode latency of @p op in cell clock cycles. */
    size_t opCycles(AluOp op) const;

    /** Clock-tree + control energy per active cell cycle. */
    Energy clockEnergyPerCycle() const;

    /** Leakage power of one powered-on functional unit. */
    Power unitLeakage() const;

    /**
     * Standby power of one functional cell while idle. Power gating
     * removes the datapath, but the input channel ("Data Ready"
     * latches and the Enable logic of Fig. 3) keeps passively
     * waiting for data and cannot be gated; it draws this power for
     * the whole event period, which is what makes parking many cells
     * in the sensor a real energy commitment.
     */
    Power cellStandbyPower() const;

    /** One-time wake-up cost when power gating un-gates the cell. */
    Energy wakeEnergy() const;

  private:
    explicit Technology(ProcessNode node);

    ProcessNode _node;
    /** Dynamic-energy scale relative to the 90nm baseline. */
    double _dynamicScale;
    /** Leakage scale relative to the 90nm baseline. */
    double _leakageScale;
};

} // namespace xpro

#endif // XPRO_HW_TECHNOLOGY_HH
