/**
 * @file
 * Thread-safe memoization of functional-cell characterization.
 *
 * The circuit-level cell model is pure: the costs of a workload in
 * an S-ALU mode depend only on (technology node, ALU mode, the
 * workload itself) — and every characterization workload is a
 * function of a CharacterizationSetup, so repeated `characterize`
 * calls across generator candidates and fleet nodes keep asking for
 * the same table rows. This cache memoizes them once per process.
 *
 * A cache entry covers all three ALU modes of one (node, workload)
 * pair plus the derived energy-optimal mode, so a best-mode query
 * and the subsequent cost query hit the same entry. Values are
 * bit-identical to the uncached model (same arithmetic, executed
 * once), which is what keeps cached fleet runs byte-identical to
 * uncached ones — a property the fleet tests pin down.
 *
 * The singleton is shared by every thread of the fleet design pool;
 * lookups take a mutex, which is invisible next to the SMO training
 * runs surrounding them.
 */

#ifndef XPRO_HW_COST_CACHE_HH
#define XPRO_HW_COST_CACHE_HH

#include <array>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "hw/cell_model.hh"

namespace xpro
{

/** Snapshot of cache effectiveness counters. */
struct CostCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;

    uint64_t lookups() const { return hits + misses; }

    double
    hitRate() const
    {
        return lookups() > 0
                   ? static_cast<double>(hits) /
                         static_cast<double>(lookups())
                   : 0.0;
    }
};

/** Process-wide memo table for cell-mode characterization. */
class CellCostCache
{
  public:
    /** The process-wide instance. */
    static CellCostCache &instance();

    /** Memoized evaluateCellMode(). */
    ModeCosts costs(const CellWorkload &workload, AluMode mode,
                    const Technology &tech);

    /** Memoized bestCellMode() (the Fig. 4 red star). */
    AluMode bestMode(const CellWorkload &workload,
                     const Technology &tech);

    CostCacheStats stats() const;

    /** Drop every entry and reset the counters (tests, benches). */
    void clear();

  private:
    struct Key
    {
        ProcessNode node;
        std::array<size_t, aluOpCount> ops;
        size_t pipelineStream;
        double pipelineBufferScale;

        bool operator==(const Key &other) const = default;
    };

    struct KeyHash
    {
        size_t operator()(const Key &key) const;
    };

    /** All three modes plus the derived optimum. */
    struct Entry
    {
        std::array<ModeCosts, 3> costs;
        AluMode bestMode = AluMode::Serial;
    };

    const Entry &lookup(const CellWorkload &workload,
                        const Technology &tech);

    mutable std::mutex _mutex;
    std::unordered_map<Key, Entry, KeyHash> _entries;
    CostCacheStats _stats;
};

/** Cached drop-in for evaluateCellMode(). */
ModeCosts cachedCellMode(const CellWorkload &workload, AluMode mode,
                         const Technology &tech);

/** Cached drop-in for bestCellMode(). */
AluMode cachedBestCellMode(const CellWorkload &workload,
                           const Technology &tech);

} // namespace xpro

#endif // XPRO_HW_COST_CACHE_HH
