#include "hw/cell_sim.hh"

#include <limits>

#include "common/logging.hh"
#include "dsp/features_fixed.hh"

namespace xpro
{

Fixed
SerialAluSim::divAccumulator(int64_t acc_raw, size_t n)
{
    issue(AluOp::Div);
    const int64_t count = static_cast<int64_t>(n);
    const int64_t half = acc_raw >= 0 ? count / 2 : -(count / 2);
    const int64_t mean_raw = (acc_raw + half) / count;
    if (mean_raw > std::numeric_limits<int32_t>::max())
        return Fixed::max();
    if (mean_raw < std::numeric_limits<int32_t>::min())
        return Fixed::min();
    return Fixed::fromRaw(static_cast<int32_t>(mean_raw));
}

Fixed
SerialAluSim::divAccumulatorWide(int64_t acc_q32, size_t n)
{
    issue(AluOp::Div);
    const int64_t count = static_cast<int64_t>(n);
    const int64_t var_q32 = (acc_q32 + count / 2) / count;
    const int64_t var_q16 =
        (var_q32 + (int64_t{1} << (Fixed::fracBits - 1))) >>
        Fixed::fracBits;
    if (var_q16 > std::numeric_limits<int32_t>::max())
        return Fixed::max();
    return Fixed::fromRaw(static_cast<int32_t>(var_q16));
}

namespace
{

Fixed
runMax(SerialAluSim &alu, const std::vector<Fixed> &input, bool max)
{
    Fixed best = alu.load(input, 0);
    for (size_t i = 1; i < input.size(); ++i) {
        const Fixed v = alu.load(input, i);
        const bool take = max ? alu.less(best, v) : alu.less(v, best);
        if (take)
            best = v;
    }
    return best;
}

Fixed
runMean(SerialAluSim &alu, const std::vector<Fixed> &input)
{
    int64_t acc = 0;
    for (size_t i = 0; i < input.size(); ++i)
        acc = alu.accumulate(acc, alu.load(input, i));
    return alu.divAccumulator(acc, input.size());
}

Fixed
runVarGivenMean(SerialAluSim &alu, const std::vector<Fixed> &input,
                Fixed mu)
{
    int64_t acc_q32 = 0;
    for (size_t i = 0; i < input.size(); ++i) {
        const Fixed v = alu.load(input, i);
        // Wide subtract + square, as the synthesized datapath does
        // (the deviation cannot saturate in the 64-bit register).
        const Fixed d = alu.sub(v, mu);
        acc_q32 = alu.accumulateWide(acc_q32, alu.mulWide(d, d));
    }
    return alu.divAccumulatorWide(acc_q32, input.size());
}

Fixed
runVar(SerialAluSim &alu, const std::vector<Fixed> &input)
{
    return runVarGivenMean(alu, input, runMean(alu, input));
}

Fixed
runCzero(SerialAluSim &alu, const std::vector<Fixed> &input)
{
    int32_t crossings = 0;
    bool prev_neg = alu.signBit(alu.load(input, 0));
    for (size_t i = 1; i < input.size(); ++i) {
        const bool cur_neg = alu.signBit(alu.load(input, i));
        if (cur_neg != prev_neg) {
            alu.add(Fixed::fromInt(crossings), Fixed::fromInt(1));
            ++crossings;
        }
        prev_neg = cur_neg;
    }
    return Fixed::fromInt(crossings);
}

Fixed
runMoment(SerialAluSim &alu, const std::vector<Fixed> &input,
          bool fourth)
{
    const Fixed mu = runMean(alu, input);
    // sigma via the Var path (reusing mu) plus one sqrt (Fig. 5).
    const Fixed sigma =
        alu.sqrt(runVarGivenMean(alu, input, mu));
    if (sigma.raw() <= 1)
        return Fixed();
    int64_t acc = 0;
    for (size_t i = 0; i < input.size(); ++i) {
        const Fixed v = alu.load(input, i);
        const Fixed z = alu.div(alu.sub(v, mu), sigma);
        Fixed term;
        if (fourth) {
            const Fixed z2 = alu.mul(z, z);
            term = alu.mul(z2, z2);
        } else {
            term = alu.mul(alu.mul(z, z), z);
        }
        acc = alu.accumulateWide(acc, term.raw());
    }
    return alu.divAccumulator(acc, input.size());
}

} // namespace

CellExecution
executeFeatureCell(FeatureKind kind, const std::vector<Fixed> &input,
                   const Technology &tech)
{
    xproAssert(input.size() >= 2, "cell input too short");
    SerialAluSim alu(tech);

    Fixed result;
    switch (kind) {
      case FeatureKind::Max:
        result = runMax(alu, input, true);
        break;
      case FeatureKind::Min:
        result = runMax(alu, input, false);
        break;
      case FeatureKind::Mean:
        result = runMean(alu, input);
        break;
      case FeatureKind::Var:
        result = runVar(alu, input);
        break;
      case FeatureKind::Std:
        result = alu.sqrt(runVar(alu, input));
        break;
      case FeatureKind::Czero:
        result = runCzero(alu, input);
        break;
      case FeatureKind::Skew:
        result = runMoment(alu, input, false);
        break;
      case FeatureKind::Kurt:
        result = runMoment(alu, input, true);
        break;
      default:
        panic("unknown feature kind %d", static_cast<int>(kind));
    }

    CellExecution execution;
    execution.result = result;
    execution.ops = alu.ops();
    execution.cycles = alu.cycles();
    return execution;
}

} // namespace xpro
