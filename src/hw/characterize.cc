#include "hw/characterize.hh"

#include "common/logging.hh"
#include "hw/cost_cache.hh"

namespace xpro
{

CellWorkload
componentWorkload(ComponentKind kind,
                  const CharacterizationSetup &setup)
{
    switch (kind) {
      case ComponentKind::Max:
        return featureCellWorkload(FeatureKind::Max,
                                   setup.featureInputLength);
      case ComponentKind::Min:
        return featureCellWorkload(FeatureKind::Min,
                                   setup.featureInputLength);
      case ComponentKind::Mean:
        return featureCellWorkload(FeatureKind::Mean,
                                   setup.featureInputLength);
      case ComponentKind::Var:
        return featureCellWorkload(FeatureKind::Var,
                                   setup.featureInputLength);
      case ComponentKind::Std:
        return featureCellWorkload(FeatureKind::Std,
                                   setup.featureInputLength);
      case ComponentKind::Czero:
        return featureCellWorkload(FeatureKind::Czero,
                                   setup.featureInputLength);
      case ComponentKind::Skew:
        return featureCellWorkload(FeatureKind::Skew,
                                   setup.featureInputLength);
      case ComponentKind::Kurt:
        return featureCellWorkload(FeatureKind::Kurt,
                                   setup.featureInputLength);
      case ComponentKind::Dwt:
        return dwtLevelWorkload(setup.dwtInputLength, setup.dwtTaps);
      case ComponentKind::Svm:
        return svmCellWorkload(setup.svmDimension,
                               setup.svmSupportVectors);
      case ComponentKind::Fusion:
        return fusionCellWorkload(setup.fusionBases);
      case ComponentKind::Argmax:
        return argmaxCellWorkload(4);
    }
    panic("unknown component kind %d", static_cast<int>(kind));
}

ComponentCharacterization
characterizeComponent(ComponentKind kind, const Technology &tech,
                      const CharacterizationSetup &setup)
{
    const CellWorkload workload = componentWorkload(kind, setup);

    ComponentCharacterization result;
    result.kind = kind;
    for (AluMode mode : allAluModes) {
        result.costs[static_cast<size_t>(mode)] =
            cachedCellMode(workload, mode, tech);
    }
    result.bestMode = cachedBestCellMode(workload, tech);
    return result;
}

std::vector<ComponentCharacterization>
characterizeAllComponents(const Technology &tech,
                          const CharacterizationSetup &setup)
{
    std::vector<ComponentCharacterization> results;
    results.reserve(allComponentKinds.size());
    for (ComponentKind kind : allComponentKinds)
        results.push_back(characterizeComponent(kind, tech, setup));
    return results;
}

} // namespace xpro
