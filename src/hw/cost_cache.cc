#include "hw/cost_cache.hh"

#include <bit>
#include <cstring>

#include "obs/stats_registry.hh"

namespace xpro
{

namespace
{

// Stable scope: the cache mutex is held from probe through insert,
// so the first lookup of a key is a miss and every later one a hit
// regardless of which worker thread gets there first — the hit/miss
// split is a pure function of the workload.
struct CacheStatIds
{
    StatId hits, misses;
};

const CacheStatIds &
cacheStatIds()
{
    static const CacheStatIds ids = [] {
        StatsRegistry &reg = StatsRegistry::instance();
        return CacheStatIds{reg.registerCounter("cost_cache.hits"),
                            reg.registerCounter("cost_cache.misses")};
    }();
    return ids;
}

} // namespace

namespace
{

/** splitmix64: cheap, well-mixed combiner for the key fields. */
uint64_t
mix(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

size_t
CellCostCache::KeyHash::operator()(const Key &key) const
{
    uint64_t h = mix(static_cast<uint64_t>(key.node));
    for (size_t count : key.ops)
        h = mix(h ^ static_cast<uint64_t>(count));
    h = mix(h ^ static_cast<uint64_t>(key.pipelineStream));
    h = mix(h ^ std::bit_cast<uint64_t>(key.pipelineBufferScale));
    return static_cast<size_t>(h);
}

CellCostCache &
CellCostCache::instance()
{
    static CellCostCache cache;
    return cache;
}

const CellCostCache::Entry &
CellCostCache::lookup(const CellWorkload &workload,
                      const Technology &tech)
{
    Key key;
    key.node = tech.node();
    key.ops = workload.ops;
    key.pipelineStream = workload.pipelineStream;
    key.pipelineBufferScale = workload.pipelineBufferScale;

    std::lock_guard<std::mutex> guard(_mutex);
    auto it = _entries.find(key);
    if (it != _entries.end()) {
        ++_stats.hits;
        StatsRegistry::instance().add(cacheStatIds().hits);
        return it->second;
    }
    ++_stats.misses;
    StatsRegistry::instance().add(cacheStatIds().misses);

    Entry entry;
    for (AluMode mode : allAluModes) {
        entry.costs[static_cast<size_t>(mode)] =
            evaluateCellMode(workload, mode, tech);
    }
    entry.bestMode = bestCellMode(workload, tech);
    return _entries.emplace(key, entry).first->second;
}

ModeCosts
CellCostCache::costs(const CellWorkload &workload, AluMode mode,
                     const Technology &tech)
{
    return lookup(workload, tech).costs[static_cast<size_t>(mode)];
}

AluMode
CellCostCache::bestMode(const CellWorkload &workload,
                        const Technology &tech)
{
    return lookup(workload, tech).bestMode;
}

CostCacheStats
CellCostCache::stats() const
{
    std::lock_guard<std::mutex> guard(_mutex);
    return _stats;
}

void
CellCostCache::clear()
{
    std::lock_guard<std::mutex> guard(_mutex);
    _entries.clear();
    _stats = CostCacheStats();
}

ModeCosts
cachedCellMode(const CellWorkload &workload, AluMode mode,
               const Technology &tech)
{
    return CellCostCache::instance().costs(workload, mode, tech);
}

AluMode
cachedBestCellMode(const CellWorkload &workload,
                   const Technology &tech)
{
    return CellCostCache::instance().bestMode(workload, tech);
}

} // namespace xpro
