/**
 * @file
 * Executable serial functional-cell simulator.
 *
 * The cost library (cell_library.hh) *models* each component's
 * operation counts; this module *executes* the feature algorithms
 * op-by-op on a serial S-ALU with the Q16.16 datapath, counting every
 * issued operation and its cycles. Tests close the loop in both
 * directions:
 *
 *  - the computed value must equal the features_fixed datapath bit
 *    for bit (the cell really computes what the classifier was
 *    trained on);
 *  - the executed op counts and cycle totals must agree with the
 *    cost library's model within a small tolerance (the energy
 *    numbers feeding the generator rest on real programs, not
 *    guesses).
 */

#ifndef XPRO_HW_CELL_SIM_HH
#define XPRO_HW_CELL_SIM_HH

#include <vector>

#include "common/fixed_point.hh"
#include "dsp/features.hh"
#include "hw/technology.hh"

namespace xpro
{

/** Operation/cycle accounting of one simulated cell execution. */
struct CellExecution
{
    /** The Q16.16 result the cell produced. */
    Fixed result;
    /** Issued operations by kind. */
    std::array<size_t, aluOpCount> ops{};
    /** Total serial cycles at the 16 MHz cell clock. */
    size_t cycles = 0;

    size_t
    count(AluOp op) const
    {
        return ops[static_cast<size_t>(op)];
    }
};

/**
 * A serial S-ALU with op/cycle accounting. Every datapath method
 * issues exactly one operation; buffer reads are explicit.
 */
class SerialAluSim
{
  public:
    explicit SerialAluSim(const Technology &tech) : _tech(tech) {}

    /** Read one word from the cell's input buffer. */
    Fixed
    load(const std::vector<Fixed> &buffer, size_t index)
    {
        issue(AluOp::Buf);
        return buffer[index];
    }

    Fixed
    add(Fixed a, Fixed b)
    {
        issue(AluOp::Add);
        return a + b;
    }

    Fixed
    sub(Fixed a, Fixed b)
    {
        issue(AluOp::Add);
        return a - b;
    }

    /** Wide-accumulator add: raw Q16.16 into a 64-bit register. */
    int64_t
    accumulate(int64_t acc, Fixed value)
    {
        issue(AluOp::Add);
        return acc + value.raw();
    }

    /** Wide-accumulator add of a Q32.32 product term. */
    int64_t
    accumulateWide(int64_t acc, int64_t term_q32)
    {
        issue(AluOp::Add);
        return acc + term_q32;
    }

    Fixed
    mul(Fixed a, Fixed b)
    {
        issue(AluOp::Mul);
        return a * b;
    }

    /** Squared deviation as a Q32.32 product (wide multiplier). */
    int64_t
    mulWide(Fixed a, Fixed b)
    {
        issue(AluOp::Mul);
        return static_cast<int64_t>(a.raw()) * b.raw();
    }

    Fixed
    div(Fixed a, Fixed b)
    {
        issue(AluOp::Div);
        return a / b;
    }

    /** Divide a wide accumulator by a count, rounding to nearest. */
    Fixed divAccumulator(int64_t acc_raw, size_t n);

    /** Divide a Q32.32 accumulator by a count down to Q16.16. */
    Fixed divAccumulatorWide(int64_t acc_q32, size_t n);

    Fixed
    sqrt(Fixed a)
    {
        issue(AluOp::Sqrt);
        return a.sqrt();
    }

    bool
    less(Fixed a, Fixed b)
    {
        issue(AluOp::Cmp);
        return a < b;
    }

    bool
    signBit(Fixed a)
    {
        issue(AluOp::Cmp);
        return a.raw() < 0;
    }

    size_t cycles() const { return _cycles; }
    const std::array<size_t, aluOpCount> &ops() const { return _ops; }

  private:
    void
    issue(AluOp op)
    {
        ++_ops[static_cast<size_t>(op)];
        _cycles += _tech.opCycles(op);
    }

    const Technology &_tech;
    std::array<size_t, aluOpCount> _ops{};
    size_t _cycles = 0;
};

/**
 * Execute a statistical feature cell on a quantized input segment.
 * The result is bit-exact with computeFixedFeature().
 */
CellExecution executeFeatureCell(FeatureKind kind,
                                 const std::vector<Fixed> &input,
                                 const Technology &tech);

} // namespace xpro

#endif // XPRO_HW_CELL_SIM_HH
