/**
 * @file
 * Circuit-level functional-cell cost model (paper Sections 3.1 and
 * 4.3).
 *
 * A functional cell is an asynchronous micro-computing unit with a
 * private S-ALU, buffer and clock (Fig. 3), power gated while idle.
 * Given a cell's operation workload, this model evaluates the energy
 * per event and processing delay in each of the three S-ALU modes
 * (Section 3.1.2):
 *
 *  - Serial: one shared unit per op kind, microcoded multi-cycle
 *    "super computation"; lowest area, longest runtime, and the
 *    runtime is paid in private-clock/control energy every cycle.
 *  - Pipeline: initiation-interval-1 streaming datapath; registers
 *    between stages add per-stage clock energy, an unrolled divider
 *    is disproportionately expensive, but a non-restoring sqrt array
 *    pipelines cheaply and streaming transforms (DWT) avoid most
 *    intermediate buffer traffic.
 *  - Parallel: fully unrolled (monotonic) array of units; a large
 *    operand-broadcast/result-mux network makes per-op energy grow
 *    with the unit count, which is what puts the parallel DWT two
 *    orders of magnitude above serial in Fig. 4.
 *
 * Energies are "effective cell-level" values (datapath + local
 * control + I/O registers), calibrated against published uW-class
 * in-sensor classification ASICs so that a full generic
 * classification engine lands in the uJ/event range.
 */

#ifndef XPRO_HW_CELL_MODEL_HH
#define XPRO_HW_CELL_MODEL_HH

#include <array>
#include <cstddef>

#include "common/units.hh"
#include "hw/alu_mode.hh"
#include "hw/technology.hh"

namespace xpro
{

/** Per-event operation workload of one functional cell. */
struct CellWorkload
{
    /** Operation counts indexed by AluOp. */
    std::array<size_t, aluOpCount> ops{};

    /**
     * Element initiations in pipeline mode (the II=1 stream length,
     * usually the number of input elements times the passes over
     * them).
     */
    size_t pipelineStream = 0;

    /**
     * Fraction of the serial-mode buffer traffic that remains in
     * pipeline mode. Streaming transforms forward intermediates in
     * registers (well below 1); reduction cells already touch each
     * input only once (1.0).
     */
    double pipelineBufferScale = 1.0;

    size_t &count(AluOp op) { return ops[static_cast<size_t>(op)]; }
    size_t count(AluOp op) const { return ops[static_cast<size_t>(op)]; }

    /** Total non-buffer operations (parallel-mode unit count). */
    size_t datapathOps() const;

    /** Merge another workload into this one (cell composition). */
    CellWorkload &operator+=(const CellWorkload &other);
};

/** Evaluated costs of one cell in one mode. */
struct ModeCosts
{
    Energy energy;
    Time delay;
    size_t cycles = 0;

    /** Average power while the cell is active. */
    Power
    activePower() const
    {
        return delay.sec() > 0.0 ? energy.over(delay) : Power();
    }
};

/** Evaluate a workload under one S-ALU mode and technology. */
ModeCosts evaluateCellMode(const CellWorkload &workload, AluMode mode,
                           const Technology &tech);

/** The energy-optimal mode for a workload (paper's red stars). */
AluMode bestCellMode(const CellWorkload &workload,
                     const Technology &tech);

/** Costs of the energy-optimal mode. */
ModeCosts bestCellCosts(const CellWorkload &workload,
                        const Technology &tech);

} // namespace xpro

#endif // XPRO_HW_CELL_MODEL_HH
