#include "hw/technology.hh"

#include "common/logging.hh"

namespace xpro
{

namespace
{

/**
 * 90 nm baseline effective energy per operation, in pJ. These are
 * cell-level values (datapath + local control + operand/result
 * registers + short interconnect), not bare standard-cell datapath
 * energies, calibrated so a full generic-classification engine lands
 * in the uJ/event range of published uW-class in-sensor biosignal
 * classifiers (e.g. Shoaib et al. 2014). The ratios carry the
 * architecture results: multiply is ~8x an add, the iterative super
 * computation units are an order above that, and a buffer word
 * access is half an add.
 */
constexpr std::array<double, aluOpCount> baselineOpPj = {
    16.0,  // Add
    10.0,  // Cmp
    120.0, // Mul
    240.0, // Div
    240.0, // Sqrt (dedicated non-restoring array, full computation)
    260.0, // Exp
    8.0,   // Buf
};

/** Serial-mode latencies in 16 MHz cell cycles. */
constexpr std::array<size_t, aluOpCount> serialCycles = {
    1,  // Add
    1,  // Cmp
    2,  // Mul
    16, // Div (iterative SRT)
    64, // Sqrt (microcoded Newton iterations on the shared S-ALU)
    24, // Exp (iterative shift-and-add)
    1,  // Buf
};

} // namespace

const std::string &
processNodeName(ProcessNode node)
{
    static const std::array<std::string, 3> names = {
        "130nm", "90nm", "45nm",
    };
    return names[static_cast<size_t>(node)];
}

const std::string &
aluOpName(AluOp op)
{
    static const std::array<std::string, aluOpCount> names = {
        "add", "cmp", "mul", "div", "sqrt", "exp", "buf",
    };
    return names[static_cast<size_t>(op)];
}

Technology::Technology(ProcessNode node)
    : _node(node)
{
    switch (node) {
      case ProcessNode::Tsmc130:
        // Dynamic energy roughly follows (feature size)^2 at equal
        // voltage headroom; leakage improves less.
        _dynamicScale = 2.1;
        _leakageScale = 1.3;
        break;
      case ProcessNode::Tsmc90:
        _dynamicScale = 1.0;
        _leakageScale = 1.0;
        break;
      case ProcessNode::Tsmc45:
        _dynamicScale = 0.33;
        _leakageScale = 0.85;
        break;
      default:
        panic("unknown process node %d", static_cast<int>(node));
    }
}

const Technology &
Technology::get(ProcessNode node)
{
    static const Technology tsmc130(ProcessNode::Tsmc130);
    static const Technology tsmc90(ProcessNode::Tsmc90);
    static const Technology tsmc45(ProcessNode::Tsmc45);
    switch (node) {
      case ProcessNode::Tsmc130: return tsmc130;
      case ProcessNode::Tsmc90:  return tsmc90;
      case ProcessNode::Tsmc45:  return tsmc45;
    }
    panic("unknown process node %d", static_cast<int>(node));
}

Energy
Technology::opEnergy(AluOp op) const
{
    return Energy::picos(baselineOpPj[static_cast<size_t>(op)] *
                         _dynamicScale);
}

size_t
Technology::opCycles(AluOp op) const
{
    return serialCycles[static_cast<size_t>(op)];
}

Energy
Technology::clockEnergyPerCycle() const
{
    // Private clock + enable/control of a single-unit cell.
    return Energy::picos(6.0 * _dynamicScale);
}

Power
Technology::unitLeakage() const
{
    // Leakage of one powered-on datapath unit; idle cells are power
    // gated so this only applies while a cell works on an event.
    return Power::micros(0.02 * _leakageScale);
}

Power
Technology::cellStandbyPower() const
{
    // Always-on input-channel/enable logic of an idle (power-gated)
    // cell; scales with leakage.
    return Power::micros(0.15 * _leakageScale);
}

Energy
Technology::wakeEnergy() const
{
    // Power-gating wake cost; prior work (and the paper, Section
    // 4.3) finds this small enough not to affect conclusions.
    return Energy::picos(60.0 * _dynamicScale);
}

} // namespace xpro
