/**
 * @file
 * Topology utilities over DataflowGraph: critical-path (longest
 * path) evaluation and reachability, used by the delay model and the
 * partition validators.
 */

#ifndef XPRO_GRAPH_TOPO_HH
#define XPRO_GRAPH_TOPO_HH

#include <functional>
#include <vector>

#include "common/units.hh"
#include "graph/dataflow_graph.hh"

namespace xpro
{

/** Delay charged for executing a node, given its id. */
using NodeDelayFn = std::function<Time(size_t)>;

/** Delay charged for moving data along edge (producer, consumer). */
using EdgeDelayFn = std::function<Time(size_t, size_t)>;

/**
 * Longest (critical) path through the DAG from the source node to
 * any terminal, where each node contributes node_delay(id) and each
 * edge contributes edge_delay(u, v). This models data-driven
 * execution: a cell starts when its slowest input is available.
 *
 * @return Completion time of the slowest terminal.
 */
Time criticalPath(const DataflowGraph &graph,
                  const NodeDelayFn &node_delay,
                  const EdgeDelayFn &edge_delay);

/**
 * Per-node completion times under the same model as criticalPath().
 */
std::vector<Time> completionTimes(const DataflowGraph &graph,
                                  const NodeDelayFn &node_delay,
                                  const EdgeDelayFn &edge_delay);

/** Nodes reachable from @p start following successor edges. */
std::vector<bool> reachableFrom(const DataflowGraph &graph, size_t start);

} // namespace xpro

#endif // XPRO_GRAPH_TOPO_HH
