#include "graph/flow_network.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace xpro
{

namespace
{

/** Tolerance below which residual capacity counts as exhausted. */
constexpr double residualEpsilon = 1e-12;

} // namespace

FlowNetwork::FlowNetwork(size_t node_count)
    : _adjacency(node_count)
{
}

size_t
FlowNetwork::addNode()
{
    _adjacency.emplace_back();
    return _adjacency.size() - 1;
}

size_t
FlowNetwork::addEdge(size_t u, size_t v, double capacity)
{
    xproAssert(u < _adjacency.size() && v < _adjacency.size(),
               "edge endpoint out of range");
    xproAssert(capacity >= 0.0, "negative capacity %f", capacity);
    const size_t id = _edges.size();
    _edges.push_back({v, capacity, 0.0});
    _edges.push_back({u, 0.0, 0.0});
    _adjacency[u].push_back(id);
    _adjacency[v].push_back(id + 1);
    _residualLevelsValid = false;
    return id / 2;
}

size_t
FlowNetwork::edgeFrom(size_t edge_id) const
{
    return _edges[2 * edge_id + 1].to;
}

size_t
FlowNetwork::edgeTo(size_t edge_id) const
{
    return _edges[2 * edge_id].to;
}

double
FlowNetwork::edgeCapacity(size_t edge_id) const
{
    return _edges[2 * edge_id].capacity;
}

double
FlowNetwork::edgeFlow(size_t edge_id) const
{
    return _edges[2 * edge_id].flow;
}

bool
FlowNetwork::buildLevels(size_t s, size_t t)
{
    _level.assign(_adjacency.size(), -1);
    _frontier.clear();
    _level[s] = 0;
    _frontier.push_back(s);
    for (size_t head = 0; head < _frontier.size(); ++head) {
        const size_t u = _frontier[head];
        // Once t is leveled, nodes at t's level or deeper cannot lie
        // on a shortest augmenting path, so stop expanding. A failed
        // BFS never takes this exit and still explores the full
        // residual source side (which classifySourceSide() reuses).
        if (_level[t] >= 0 && _level[u] >= _level[t])
            break;
        for (size_t edge_id : _adjacency[u]) {
            const Edge &e = _edges[edge_id];
            if (_level[e.to] < 0 &&
                e.capacity - e.flow > residualEpsilon) {
                _level[e.to] = _level[u] + 1;
                _frontier.push_back(e.to);
            }
        }
    }
    return _level[t] >= 0;
}

double
FlowNetwork::sendBlocking(size_t u, size_t t, double pushed)
{
    if (u == t)
        return pushed;
    for (size_t &i = _iter[u]; i < _adjacency[u].size(); ++i) {
        const size_t edge_id = _adjacency[u][i];
        Edge &e = _edges[edge_id];
        const double residual = e.capacity - e.flow;
        if (residual <= residualEpsilon || _level[e.to] != _level[u] + 1)
            continue;
        const double sent =
            sendBlocking(e.to, t, std::min(pushed, residual));
        if (sent > 0.0) {
            e.flow += sent;
            _edges[edge_id ^ 1].flow -= sent;
            return sent;
        }
    }
    return 0.0;
}

double
FlowNetwork::augment(size_t s, size_t t)
{
    double total = 0.0;
    _residualLevelsValid = false;
    while (buildLevels(s, t)) {
        _iter.assign(_adjacency.size(), 0);
        while (true) {
            const double sent =
                sendBlocking(s, t, infiniteCapacity());
            if (sent <= 0.0)
                break;
            total += sent;
            if (std::isinf(total)) {
                // An infinite-capacity augmenting path exists; the
                // cut value is unbounded and node classification is
                // still well defined, so stop augmenting here.
                return total;
            }
        }
    }
    // The failed BFS that ended the loop visited exactly the nodes
    // with residual capacity from s: _level doubles as the canonical
    // cut's source side until the flow changes again.
    _residualLevelsValid = true;
    return total;
}

double
FlowNetwork::maxFlow(size_t s, size_t t)
{
    for (Edge &e : _edges)
        e.flow = 0.0;
    _solved = false;
    return resumeMaxFlow(s, t);
}

double
FlowNetwork::resumeMaxFlow(size_t s, size_t t)
{
    xproAssert(s < _adjacency.size() && t < _adjacency.size(),
               "terminal out of range");
    xproAssert(s != t, "source and sink must differ");
    xproAssert(!_solved || (_lastSource == s && _lastSink == t),
               "warm resume must keep the terminals of the last "
               "solve");
    _solved = true;
    _lastSource = s;
    _lastSink = t;

    const double carried = flowValue(s);
    const double grown = augment(s, t);
    if (std::isinf(grown))
        return grown;
    return carried + grown;
}

double
FlowNetwork::flowValue(size_t s) const
{
    // Every edge id in s's adjacency is either a forward edge out of
    // s (flow counted positive) or the reverse twin of an edge into
    // s (flow stored negated), so the plain sum is outflow - inflow.
    double value = 0.0;
    for (size_t edge_id : _adjacency[s])
        value += _edges[edge_id].flow;
    return value;
}

double
FlowNetwork::pushResidual(size_t from, size_t to, double amount)
{
    double remaining = amount;
    std::vector<size_t> parent(_adjacency.size());
    while (remaining > residualEpsilon) {
        // BFS for any residual path from -> to.
        parent.assign(_adjacency.size(),
                      std::numeric_limits<size_t>::max());
        _frontier.clear();
        parent[from] = 0; // sentinel: visited, no parent edge
        _frontier.push_back(from);
        bool reached = (from == to);
        for (size_t head = 0;
             head < _frontier.size() && !reached; ++head) {
            const size_t u = _frontier[head];
            for (size_t edge_id : _adjacency[u]) {
                const Edge &e = _edges[edge_id];
                if (parent[e.to] !=
                        std::numeric_limits<size_t>::max() ||
                    e.to == from ||
                    e.capacity - e.flow <= residualEpsilon) {
                    continue;
                }
                parent[e.to] = edge_id;
                if (e.to == to) {
                    reached = true;
                    break;
                }
                _frontier.push_back(e.to);
            }
        }
        if (!reached)
            break;

        double bottleneck = remaining;
        for (size_t v = to; v != from;) {
            const Edge &e = _edges[parent[v]];
            bottleneck =
                std::min(bottleneck, e.capacity - e.flow);
            v = _edges[parent[v] ^ 1].to;
        }
        for (size_t v = to; v != from;) {
            const size_t edge_id = parent[v];
            _edges[edge_id].flow += bottleneck;
            _edges[edge_id ^ 1].flow -= bottleneck;
            v = _edges[edge_id ^ 1].to;
        }
        remaining -= bottleneck;
    }
    return amount - remaining;
}

void
FlowNetwork::updateCapacity(size_t edge_id, double new_capacity)
{
    xproAssert(2 * edge_id < _edges.size(), "edge id out of range");
    xproAssert(new_capacity >= 0.0, "negative capacity %f",
               new_capacity);
    Edge &forward = _edges[2 * edge_id];
    const double excess = forward.flow - new_capacity;
    if (forward.capacity != new_capacity)
        _residualLevelsValid = false;
    forward.capacity = new_capacity;
    if (excess <= residualEpsilon)
        return;

    // The edge now carries more flow than it may: lower its flow by
    // the excess and repair conservation. Removing `excess` from
    // u -> v leaves u with surplus inflow and v short of inflow. By
    // flow decomposition the excess sits on source -> sink paths
    // through u -> v and on flow cycles through u -> v (cycles
    // arise once earlier repairs have pulled flow backwards), so
    // the repair has two parts: reroute as much as possible from u
    // straight back to v through the residual graph (cancels the
    // cyclic share at unchanged flow value), then drain the path
    // share from u to the source and pull the sink's intake back to
    // v (drops the value by that share). Either way the result is a
    // feasible flow for resumeMinCut() to grow again.
    xproAssert(_solved,
               "capacity decrease below flow requires a prior solve");
    const size_t u = _edges[2 * edge_id + 1].to;
    const size_t v = forward.to;
    forward.flow -= excess;
    _edges[2 * edge_id + 1].flow += excess;

    double surplus = excess; // unmatched inflow at u
    double deficit = excess; // missing inflow at v
    const bool u_free = u == _lastSource || u == _lastSink;
    const bool v_free = v == _lastSource || v == _lastSink;
    if (!u_free && !v_free && surplus > residualEpsilon) {
        const double rerouted = pushResidual(u, v, surplus);
        surplus -= rerouted;
        deficit -= rerouted;
    }
    if (!u_free && surplus > residualEpsilon) {
        surplus -= pushResidual(u, _lastSource, surplus);
        if (surplus > residualEpsilon)
            surplus -= pushResidual(u, _lastSink, surplus);
        xproAssert(surplus <= 1e-9 * (1.0 + excess),
                   "failed to drain %f of surplus flow", surplus);
    }
    if (!v_free && deficit > residualEpsilon) {
        deficit -= pushResidual(_lastSink, v, deficit);
        if (deficit > residualEpsilon)
            deficit -= pushResidual(_lastSource, v, deficit);
        xproAssert(deficit <= 1e-9 * (1.0 + excess),
                   "failed to pull back %f of sink flow", deficit);
    }
}

void
FlowNetwork::classifySourceSide(size_t s, MinCutResult &result,
                                bool enumerate_cut_edges) const
{
    // Source side = nodes reachable from s through residual capacity.
    result.sourceSide.assign(_adjacency.size(), false);
    if (_residualLevelsValid) {
        // augment()'s terminating BFS already computed reachability.
        for (size_t u = 0; u < _level.size(); ++u)
            result.sourceSide[u] = _level[u] >= 0;
    } else {
        std::vector<size_t> frontier;
        frontier.reserve(_adjacency.size());
        result.sourceSide[s] = true;
        frontier.push_back(s);
        for (size_t head = 0; head < frontier.size(); ++head) {
            const size_t u = frontier[head];
            for (size_t edge_id : _adjacency[u]) {
                const Edge &e = _edges[edge_id];
                if (!result.sourceSide[e.to] &&
                    e.capacity - e.flow > residualEpsilon) {
                    result.sourceSide[e.to] = true;
                    frontier.push_back(e.to);
                }
            }
        }
    }

    if (!enumerate_cut_edges)
        return;
    for (size_t id = 0; id < _edges.size(); id += 2) {
        const size_t u = _edges[id + 1].to;
        const size_t v = _edges[id].to;
        if (result.sourceSide[u] && !result.sourceSide[v] &&
            _edges[id].capacity > 0.0) {
            result.cutEdges.push_back(id / 2);
        }
    }
}

MinCutResult
FlowNetwork::minCut(size_t s, size_t t)
{
    MinCutResult result;
    result.value = maxFlow(s, t);
    classifySourceSide(s, result, true);
    return result;
}

MinCutResult
FlowNetwork::resumeMinCut(size_t s, size_t t,
                          bool enumerate_cut_edges)
{
    MinCutResult result;
    result.value = resumeMaxFlow(s, t);
    classifySourceSide(s, result, enumerate_cut_edges);
    return result;
}

} // namespace xpro
