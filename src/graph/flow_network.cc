#include "graph/flow_network.hh"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/logging.hh"

namespace xpro
{

namespace
{

/** Tolerance below which residual capacity counts as exhausted. */
constexpr double residualEpsilon = 1e-12;

} // namespace

FlowNetwork::FlowNetwork(size_t node_count)
    : _adjacency(node_count)
{
}

size_t
FlowNetwork::addNode()
{
    _adjacency.emplace_back();
    return _adjacency.size() - 1;
}

size_t
FlowNetwork::addEdge(size_t u, size_t v, double capacity)
{
    xproAssert(u < _adjacency.size() && v < _adjacency.size(),
               "edge endpoint out of range");
    xproAssert(capacity >= 0.0, "negative capacity %f", capacity);
    const size_t id = _edges.size();
    _edges.push_back({v, capacity, 0.0});
    _edges.push_back({u, 0.0, 0.0});
    _adjacency[u].push_back(id);
    _adjacency[v].push_back(id + 1);
    return id / 2;
}

size_t
FlowNetwork::edgeFrom(size_t edge_id) const
{
    return _edges[2 * edge_id + 1].to;
}

size_t
FlowNetwork::edgeTo(size_t edge_id) const
{
    return _edges[2 * edge_id].to;
}

double
FlowNetwork::edgeCapacity(size_t edge_id) const
{
    return _edges[2 * edge_id].capacity;
}

double
FlowNetwork::edgeFlow(size_t edge_id) const
{
    return _edges[2 * edge_id].flow;
}

bool
FlowNetwork::buildLevels(size_t s, size_t t)
{
    _level.assign(_adjacency.size(), -1);
    std::queue<size_t> frontier;
    _level[s] = 0;
    frontier.push(s);
    while (!frontier.empty()) {
        const size_t u = frontier.front();
        frontier.pop();
        for (size_t edge_id : _adjacency[u]) {
            const Edge &e = _edges[edge_id];
            if (_level[e.to] < 0 &&
                e.capacity - e.flow > residualEpsilon) {
                _level[e.to] = _level[u] + 1;
                frontier.push(e.to);
            }
        }
    }
    return _level[t] >= 0;
}

double
FlowNetwork::sendBlocking(size_t u, size_t t, double pushed)
{
    if (u == t)
        return pushed;
    for (size_t &i = _iter[u]; i < _adjacency[u].size(); ++i) {
        const size_t edge_id = _adjacency[u][i];
        Edge &e = _edges[edge_id];
        const double residual = e.capacity - e.flow;
        if (residual <= residualEpsilon || _level[e.to] != _level[u] + 1)
            continue;
        const double sent =
            sendBlocking(e.to, t, std::min(pushed, residual));
        if (sent > 0.0) {
            e.flow += sent;
            _edges[edge_id ^ 1].flow -= sent;
            return sent;
        }
    }
    return 0.0;
}

double
FlowNetwork::maxFlow(size_t s, size_t t)
{
    xproAssert(s < _adjacency.size() && t < _adjacency.size(),
               "terminal out of range");
    xproAssert(s != t, "source and sink must differ");

    for (Edge &e : _edges)
        e.flow = 0.0;

    double total = 0.0;
    while (buildLevels(s, t)) {
        _iter.assign(_adjacency.size(), 0);
        while (true) {
            const double sent =
                sendBlocking(s, t, infiniteCapacity());
            if (sent <= 0.0)
                break;
            total += sent;
            if (std::isinf(total)) {
                // An infinite-capacity augmenting path exists; the
                // cut value is unbounded and node classification is
                // still well defined, so stop augmenting here.
                return total;
            }
        }
    }
    return total;
}

MinCutResult
FlowNetwork::minCut(size_t s, size_t t)
{
    MinCutResult result;
    result.value = maxFlow(s, t);

    // Source side = nodes reachable from s through residual capacity.
    result.sourceSide.assign(_adjacency.size(), false);
    std::queue<size_t> frontier;
    result.sourceSide[s] = true;
    frontier.push(s);
    while (!frontier.empty()) {
        const size_t u = frontier.front();
        frontier.pop();
        for (size_t edge_id : _adjacency[u]) {
            const Edge &e = _edges[edge_id];
            if (!result.sourceSide[e.to] &&
                e.capacity - e.flow > residualEpsilon) {
                result.sourceSide[e.to] = true;
                frontier.push(e.to);
            }
        }
    }

    for (size_t id = 0; id < _edges.size(); id += 2) {
        const size_t u = _edges[id + 1].to;
        const size_t v = _edges[id].to;
        if (result.sourceSide[u] && !result.sourceSide[v] &&
            _edges[id].capacity > 0.0) {
            result.cutEdges.push_back(id / 2);
        }
    }
    return result;
}

} // namespace xpro
