#include "graph/dataflow_graph.hh"

#include <queue>

#include "common/logging.hh"

namespace xpro
{

DataflowGraph::DataflowGraph(size_t source_bits)
{
    DataflowNode source;
    source.name = "source";
    source.outputBits = source_bits;
    _nodes.push_back(source);
    _successors.emplace_back();
    _predecessors.emplace_back();
}

size_t
DataflowGraph::addCell(const DataflowNode &node)
{
    _nodes.push_back(node);
    _successors.emplace_back();
    _predecessors.emplace_back();
    return _nodes.size() - 1;
}

void
DataflowGraph::addEdge(size_t producer, size_t consumer,
                       size_t payload_bits)
{
    xproAssert(producer < _nodes.size() && consumer < _nodes.size(),
               "edge endpoint out of range");
    xproAssert(producer != consumer, "self-loop on node %zu", producer);
    xproAssert(consumer != sourceId, "source node cannot consume data");
    for (size_t existing : _successors[producer]) {
        if (existing == consumer)
            return; // Idempotent: duplicate edges carry no new data.
    }
    _successors[producer].push_back(consumer);
    _predecessors[consumer].push_back(producer);
    if (payload_bits > 0)
        _edgePayloadBits[{producer, consumer}] = payload_bits;
}

size_t
DataflowGraph::edgeBits(size_t producer, size_t consumer) const
{
    xproAssert(producer < _nodes.size() && consumer < _nodes.size(),
               "edge endpoint out of range");
    const auto it = _edgePayloadBits.find({producer, consumer});
    if (it != _edgePayloadBits.end())
        return it->second;
    return _nodes[producer].outputBits;
}

const std::vector<size_t> &
DataflowGraph::successors(size_t id) const
{
    xproAssert(id < _nodes.size(), "node %zu out of range", id);
    return _successors[id];
}

const std::vector<size_t> &
DataflowGraph::predecessors(size_t id) const
{
    xproAssert(id < _nodes.size(), "node %zu out of range", id);
    return _predecessors[id];
}

std::vector<size_t>
DataflowGraph::terminals() const
{
    std::vector<size_t> result;
    for (size_t id = 1; id < _nodes.size(); ++id) {
        if (_successors[id].empty())
            result.push_back(id);
    }
    return result;
}

std::vector<size_t>
DataflowGraph::tryTopologicalOrder() const
{
    std::vector<size_t> indegree(_nodes.size(), 0);
    for (size_t id = 0; id < _nodes.size(); ++id)
        indegree[id] = _predecessors[id].size();

    std::queue<size_t> ready;
    for (size_t id = 0; id < _nodes.size(); ++id) {
        if (indegree[id] == 0)
            ready.push(id);
    }

    std::vector<size_t> order;
    order.reserve(_nodes.size());
    while (!ready.empty()) {
        const size_t u = ready.front();
        ready.pop();
        order.push_back(u);
        for (size_t v : _successors[u]) {
            if (--indegree[v] == 0)
                ready.push(v);
        }
    }
    if (order.size() != _nodes.size())
        order.clear();
    return order;
}

std::vector<size_t>
DataflowGraph::topologicalOrder() const
{
    std::vector<size_t> order = tryTopologicalOrder();
    xproAssert(!order.empty() || _nodes.empty(),
               "cycle in dataflow graph");
    return order;
}

std::string
DataflowGraph::validate() const
{
    if (tryTopologicalOrder().empty() && !_nodes.empty())
        return "graph contains a cycle";

    // Reachability from the source node.
    std::vector<bool> reached(_nodes.size(), false);
    std::queue<size_t> frontier;
    reached[sourceId] = true;
    frontier.push(sourceId);
    while (!frontier.empty()) {
        const size_t u = frontier.front();
        frontier.pop();
        for (size_t v : _successors[u]) {
            if (!reached[v]) {
                reached[v] = true;
                frontier.push(v);
            }
        }
    }
    for (size_t id = 1; id < _nodes.size(); ++id) {
        if (!reached[id]) {
            return "cell '" + _nodes[id].name +
                   "' is not reachable from the source";
        }
        if (_predecessors[id].empty()) {
            return "cell '" + _nodes[id].name +
                   "' has no input edge";
        }
    }
    return "";
}

} // namespace xpro
