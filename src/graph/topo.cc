#include "graph/topo.hh"

#include <algorithm>
#include <queue>

namespace xpro
{

std::vector<Time>
completionTimes(const DataflowGraph &graph,
                const NodeDelayFn &node_delay,
                const EdgeDelayFn &edge_delay)
{
    const std::vector<size_t> order = graph.topologicalOrder();
    std::vector<Time> done(graph.nodeCount());

    for (size_t u : order) {
        Time ready;
        for (size_t p : graph.predecessors(u)) {
            const Time arrival = done[p] + edge_delay(p, u);
            ready = std::max(ready, arrival);
        }
        done[u] = ready + node_delay(u);
    }
    return done;
}

Time
criticalPath(const DataflowGraph &graph,
             const NodeDelayFn &node_delay,
             const EdgeDelayFn &edge_delay)
{
    const std::vector<Time> done =
        completionTimes(graph, node_delay, edge_delay);
    Time worst;
    for (size_t t : graph.terminals())
        worst = std::max(worst, done[t]);
    // A graph with no cells still takes the source's own delay.
    worst = std::max(worst, done[DataflowGraph::sourceId]);
    return worst;
}

std::vector<bool>
reachableFrom(const DataflowGraph &graph, size_t start)
{
    std::vector<bool> reached(graph.nodeCount(), false);
    std::queue<size_t> frontier;
    reached[start] = true;
    frontier.push(start);
    while (!frontier.empty()) {
        const size_t u = frontier.front();
        frontier.pop();
        for (size_t v : graph.successors(u)) {
            if (!reached[v]) {
                reached[v] = true;
                frontier.push(v);
            }
        }
    }
    return reached;
}

} // namespace xpro
