/**
 * @file
 * Functional-cell topology graph (paper Section 3.2.2, Fig. 6b).
 *
 * A DataflowGraph is a DAG whose nodes are the functional cells of a
 * generic classification engine plus a distinguished source node
 * representing the raw sensed segment. Each node records the data
 * volume it produces per event and the cost of executing it on each
 * end; edges carry data from producer to consumer in data-driven
 * execution order.
 */

#ifndef XPRO_GRAPH_DATAFLOW_GRAPH_HH
#define XPRO_GRAPH_DATAFLOW_GRAPH_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/units.hh"

namespace xpro
{

/** Per-end execution costs of one functional cell for one event. */
struct CellCosts
{
    /** Energy drawn from the sensor battery if placed in-sensor.
     *  Includes the cell's standby share amortized at the event rate
     *  the topology was built for (EngineTopology::
     *  designEventsPerSecond). */
    Energy sensorEnergy;
    /** Processing latency of the in-sensor hardware implementation. */
    Time sensorDelay;
    /** Energy drawn from the aggregator battery if placed there. */
    Energy aggregatorEnergy;
    /** Processing latency of the software implementation. */
    Time aggregatorDelay;
    /**
     * Continuous input-channel standby draw of the in-sensor
     * implementation (zero for hand-built fixtures that fold standby
     * into sensorEnergy). Kept separately so runtime adaptation —
     * the online controller re-cutting at an observed event rate —
     * can re-amortize standby per event without rebuilding the
     * topology: per-event standby at rate r is sensorStandby / r.
     */
    Power sensorStandby;
};

/** One node of the functional-cell topology graph. */
struct DataflowNode
{
    /** Human-readable cell name, e.g. "Var@dwt2". */
    std::string name;
    /** Bits this cell outputs per analyzed event. */
    size_t outputBits = 0;
    /** Execution costs on the two ends (zero for the source node). */
    CellCosts costs;
};

/**
 * DAG of functional cells. Node 0 is always the source node that
 * models the raw sensed data segment; its outputBits is the raw
 * segment size in bits.
 */
class DataflowGraph
{
  public:
    /** Index of the raw-data source pseudo-node. */
    static constexpr size_t sourceId = 0;

    /** Create a graph whose source emits @p source_bits per event. */
    explicit DataflowGraph(size_t source_bits);

    /** Add a functional cell; returns its node index (>= 1). */
    size_t addCell(const DataflowNode &node);

    /**
     * Add a dependency edge: @p producer's output feeds
     * @p consumer. Rejects self-loops and unknown nodes; cycles are
     * caught by validate().
     *
     * @param payload_bits Bits actually moved along this edge per
     *        event; 0 (default) means the producer's full
     *        outputBits. Lets a multi-band producer (e.g. a DWT
     *        level) feed each consumer only the band it reads.
     */
    void addEdge(size_t producer, size_t consumer,
                 size_t payload_bits = 0);

    /** Bits moved along edge (producer, consumer) per event. */
    size_t edgeBits(size_t producer, size_t consumer) const;

    size_t nodeCount() const { return _nodes.size(); }
    /** Number of functional cells, excluding the source node. */
    size_t cellCount() const { return _nodes.size() - 1; }

    const DataflowNode &node(size_t id) const { return _nodes[id]; }
    DataflowNode &node(size_t id) { return _nodes[id]; }

    const std::vector<size_t> &successors(size_t id) const;
    const std::vector<size_t> &predecessors(size_t id) const;

    /** Cells with no successors (the engine outputs). */
    std::vector<size_t> terminals() const;

    /**
     * Topological order over all nodes (source first). Calls
     * panic() if the graph contains a cycle; use validate() to check
     * user-supplied graphs gracefully.
     */
    std::vector<size_t> topologicalOrder() const;

    /**
     * Check structural invariants: acyclic, every cell reachable
     * from the source, every cell has at least one predecessor.
     * @return An empty string when valid, else a description of the
     *         first violation found.
     */
    std::string validate() const;

  private:
    /** Kahn's algorithm; empty result indicates a cycle. */
    std::vector<size_t> tryTopologicalOrder() const;

    std::vector<DataflowNode> _nodes;
    std::vector<std::vector<size_t>> _successors;
    std::vector<std::vector<size_t>> _predecessors;
    /** Per-edge payload overrides; absent means producer's output. */
    std::map<std::pair<size_t, size_t>, size_t> _edgePayloadBits;
};

} // namespace xpro

#endif // XPRO_GRAPH_DATAFLOW_GRAPH_HH
