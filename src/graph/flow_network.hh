/**
 * @file
 * Directed flow network with Dinic max-flow and min s-t cut
 * extraction.
 *
 * This is the graph-theory engine behind the Automatic XPro Generator
 * (paper Section 3.2): the generator reduces functional-cell
 * partitioning to a min-cut on an s-t graph, which by max-flow/min-cut
 * duality is solved here in polynomial time.
 *
 * The network supports *warm-started* re-solves: the generator's
 * Lagrangian delay sweep and the fleet admission loop re-enter the
 * same graph with slightly perturbed capacities, so instead of
 * solving from zero every time, updateCapacity() keeps the current
 * flow feasible (cancelling excess flow when a capacity drops below
 * it) and resumeMaxFlow()/resumeMinCut() merely augment from there.
 * Because the set of nodes reachable from s in the residual graph of
 * *any* maximum flow is the same (the canonical minimum cut), warm
 * and cold solves classify nodes identically — the property-test
 * suite pins this down.
 */

#ifndef XPRO_GRAPH_FLOW_NETWORK_HH
#define XPRO_GRAPH_FLOW_NETWORK_HH

#include <cstddef>
#include <limits>
#include <vector>

namespace xpro
{

/** Result of a min s-t cut computation. */
struct MinCutResult
{
    /** Total capacity of the cut == max-flow value. */
    double value = 0.0;
    /**
     * For each node, true if the node is on the source side of the
     * cut (reachable from s in the residual graph).
     */
    std::vector<bool> sourceSide;
    /** Indices (into the network's edge list) of the cut edges. */
    std::vector<size_t> cutEdges;
};

/**
 * A capacitated directed graph supporting max-flow queries.
 *
 * Nodes are dense indices [0, nodeCount). Capacities are doubles;
 * use infiniteCapacity() for edges that must never be cut.
 */
class FlowNetwork
{
  public:
    /** Capacity treated as uncuttable. */
    static constexpr double
    infiniteCapacity()
    {
        return std::numeric_limits<double>::infinity();
    }

    /** Create a network with @p node_count nodes and no edges. */
    explicit FlowNetwork(size_t node_count);

    /** Add a node; returns its index. */
    size_t addNode();

    /**
     * Add a directed edge u -> v with the given capacity.
     * @return An edge id usable with edgeCapacity()/edgeFlow().
     */
    size_t addEdge(size_t u, size_t v, double capacity);

    size_t nodeCount() const { return _adjacency.size(); }
    size_t edgeCount() const { return _edges.size() / 2; }

    /** Endpoints and capacity of a previously added edge. */
    size_t edgeFrom(size_t edge_id) const;
    size_t edgeTo(size_t edge_id) const;
    double edgeCapacity(size_t edge_id) const;

    /** Flow over an edge after the last maxFlow() call. */
    double edgeFlow(size_t edge_id) const;

    /**
     * Compute the maximum s-t flow with Dinic's algorithm.
     * Residual state is reset on every call.
     */
    double maxFlow(size_t s, size_t t);

    /**
     * Compute a minimum s-t cut. Runs maxFlow() and then classifies
     * nodes by residual reachability from s.
     */
    MinCutResult minCut(size_t s, size_t t);

    /**
     * Change the capacity of a previously added edge, preserving a
     * feasible flow. Raising a capacity leaves the flow untouched;
     * lowering it below the edge's current flow cancels exactly the
     * excess by rerouting it back to the terminals of the last
     * solve, so resumeMaxFlow() can continue from the remaining
     * flow instead of starting over.
     */
    void updateCapacity(size_t edge_id, double new_capacity);

    /**
     * Warm-started maximum flow: augment from the current feasible
     * flow (as left by a previous solve plus any updateCapacity()
     * calls) instead of resetting to zero. With no prior flow this
     * is identical to maxFlow().
     */
    double resumeMaxFlow(size_t s, size_t t);

    /**
     * Warm-started minimum cut on top of resumeMaxFlow(). Callers
     * that only need the node classification (the generator's
     * lambda sweep) can skip the cut-edge enumeration.
     */
    MinCutResult resumeMinCut(size_t s, size_t t,
                              bool enumerate_cut_edges = true);

    /** Net flow currently leaving @p s (the last solve's value). */
    double flowValue(size_t s) const;

  private:
    struct Edge
    {
        size_t to;
        double capacity;
        double flow;
    };

    bool buildLevels(size_t s, size_t t);
    double sendBlocking(size_t u, size_t t, double pushed);
    double augment(size_t s, size_t t);
    double pushResidual(size_t from, size_t to, double amount);
    void classifySourceSide(size_t s, MinCutResult &result,
                            bool enumerate_cut_edges) const;

    /** Forward/backward edge pairs at indices 2k / 2k+1. */
    std::vector<Edge> _edges;
    std::vector<std::vector<size_t>> _adjacency;
    std::vector<int> _level;
    std::vector<size_t> _iter;
    /** Reusable BFS frontier (head-indexed vector, no deque). */
    std::vector<size_t> _frontier;
    /**
     * True while _level still holds the residual reachability left
     * by the last completed augment() — lets min-cut classification
     * skip its own BFS. Any capacity or topology change clears it.
     */
    bool _residualLevelsValid = false;
    /** Terminals of the last solve (for excess cancellation). */
    bool _solved = false;
    size_t _lastSource = 0;
    size_t _lastSink = 0;
};

} // namespace xpro

#endif // XPRO_GRAPH_FLOW_NETWORK_HH
