/**
 * @file
 * Directed flow network with Dinic max-flow and min s-t cut
 * extraction.
 *
 * This is the graph-theory engine behind the Automatic XPro Generator
 * (paper Section 3.2): the generator reduces functional-cell
 * partitioning to a min-cut on an s-t graph, which by max-flow/min-cut
 * duality is solved here in polynomial time.
 */

#ifndef XPRO_GRAPH_FLOW_NETWORK_HH
#define XPRO_GRAPH_FLOW_NETWORK_HH

#include <cstddef>
#include <limits>
#include <vector>

namespace xpro
{

/** Result of a min s-t cut computation. */
struct MinCutResult
{
    /** Total capacity of the cut == max-flow value. */
    double value = 0.0;
    /**
     * For each node, true if the node is on the source side of the
     * cut (reachable from s in the residual graph).
     */
    std::vector<bool> sourceSide;
    /** Indices (into the network's edge list) of the cut edges. */
    std::vector<size_t> cutEdges;
};

/**
 * A capacitated directed graph supporting max-flow queries.
 *
 * Nodes are dense indices [0, nodeCount). Capacities are doubles;
 * use infiniteCapacity() for edges that must never be cut.
 */
class FlowNetwork
{
  public:
    /** Capacity treated as uncuttable. */
    static constexpr double
    infiniteCapacity()
    {
        return std::numeric_limits<double>::infinity();
    }

    /** Create a network with @p node_count nodes and no edges. */
    explicit FlowNetwork(size_t node_count);

    /** Add a node; returns its index. */
    size_t addNode();

    /**
     * Add a directed edge u -> v with the given capacity.
     * @return An edge id usable with edgeCapacity()/edgeFlow().
     */
    size_t addEdge(size_t u, size_t v, double capacity);

    size_t nodeCount() const { return _adjacency.size(); }
    size_t edgeCount() const { return _edges.size() / 2; }

    /** Endpoints and capacity of a previously added edge. */
    size_t edgeFrom(size_t edge_id) const;
    size_t edgeTo(size_t edge_id) const;
    double edgeCapacity(size_t edge_id) const;

    /** Flow over an edge after the last maxFlow() call. */
    double edgeFlow(size_t edge_id) const;

    /**
     * Compute the maximum s-t flow with Dinic's algorithm.
     * Residual state is reset on every call.
     */
    double maxFlow(size_t s, size_t t);

    /**
     * Compute a minimum s-t cut. Runs maxFlow() and then classifies
     * nodes by residual reachability from s.
     */
    MinCutResult minCut(size_t s, size_t t);

  private:
    struct Edge
    {
        size_t to;
        double capacity;
        double flow;
    };

    bool buildLevels(size_t s, size_t t);
    double sendBlocking(size_t u, size_t t, double pushed);

    /** Forward/backward edge pairs at indices 2k / 2k+1. */
    std::vector<Edge> _edges;
    std::vector<std::vector<size_t>> _adjacency;
    std::vector<int> _level;
    std::vector<size_t> _iter;
};

} // namespace xpro

#endif // XPRO_GRAPH_FLOW_NETWORK_HH
