#include "ml/kernel.hh"

#include <cmath>

#include <algorithm>

#include "common/logging.hh"
#include "common/simd.hh"

namespace xpro
{

double
dotProduct(RowView x, RowView z)
{
    xproAssert(x.size() == z.size(), "vector size mismatch %zu vs %zu",
               x.size(), z.size());
    double acc = 0.0;
    for (size_t i = 0; i < x.size(); ++i)
        acc += x[i] * z[i];
    return acc;
}

double
squaredDistance(RowView x, RowView z)
{
    xproAssert(x.size() == z.size(), "vector size mismatch %zu vs %zu",
               x.size(), z.size());
    double acc = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
        const double d = x[i] - z[i];
        acc += d * d;
    }
    return acc;
}

double
Kernel::operator()(RowView x, RowView z) const
{
    switch (kind) {
      case KernelKind::Linear:
        return dotProduct(x, z);
      case KernelKind::Rbf:
        return std::exp(-gamma * squaredDistance(x, z));
    }
    panic("unknown kernel kind %d", static_cast<int>(kind));
}

FlatMatrix
Kernel::gram(const FlatMatrix &a, const FlatMatrix &b) const
{
    // One blocked cross-product pass gives every dot product; the
    // RBF then needs only the per-row squared norms on top.
    FlatMatrix out = a.multiplyTransposed(b);
    if (kind == KernelKind::Linear)
        return out;

    const std::vector<double> a_norms = a.rowSquaredNorms();
    const std::vector<double> b_norms = b.rowSquaredNorms();
    for (size_t i = 0; i < a.size(); ++i) {
        double *row = out.rowData(i);
        for (size_t j = 0; j < b.size(); ++j)
            row[j] = rbfFromParts(gamma, a_norms[i], b_norms[j],
                                  row[j]);
    }
    return out;
}

FlatMatrix
Kernel::gramSymmetric(const FlatMatrix &a) const
{
    const size_t n = a.size();
    const size_t dims = a.cols();
    FlatMatrix out(n, n, 0.0);
    const std::vector<double> norms =
        kind == KernelKind::Rbf ? a.rowSquaredNorms()
                                : std::vector<double>();

    // Fill the upper triangle, mirror the lower: half the kernel
    // evaluations of the dense rectangular path. Column tiles of
    // simdPackWidth rows go through the packed SIMD multi-dot
    // kernel; lanes below the diagonal are computed but dropped
    // (each retained dot still accumulates serially left-to-right,
    // so values match the scalar schedule bitwise).
    std::vector<double> packed(dims * simdPackWidth);
    const double *tileRows[simdPackWidth];
    double lane[simdPackWidth];
    for (size_t jb = 0; jb < n; jb += simdPackWidth) {
        const size_t count = std::min(simdPackWidth, n - jb);
        for (size_t j = 0; j < count; ++j)
            tileRows[j] = a.rowData(jb + j);
        simdPackRows(tileRows, count, dims, packed.data());
        const size_t iEnd = std::min(jb + count, n);
        for (size_t i = 0; i < iEnd; ++i) {
            simdDotPacked(a.rowData(i), packed.data(), dims, lane);
            double *oi = out.rowData(i);
            const size_t jFirst = i > jb ? i - jb : 0;
            for (size_t j = jFirst; j < count; ++j) {
                const double value =
                    kind == KernelKind::Rbf
                        ? rbfFromParts(gamma, norms[i],
                                       norms[jb + j], lane[j])
                        : lane[j];
                oi[jb + j] = value;
                out.rowData(jb + j)[i] = value;
            }
        }
    }
    return out;
}

std::string
Kernel::name() const
{
    if (kind == KernelKind::Linear)
        return "linear";
    return "rbf(gamma=" + std::to_string(gamma) + ")";
}

} // namespace xpro
