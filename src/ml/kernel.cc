#include "ml/kernel.hh"

#include <cmath>

#include "common/logging.hh"

namespace xpro
{

double
dotProduct(RowView x, RowView z)
{
    xproAssert(x.size() == z.size(), "vector size mismatch %zu vs %zu",
               x.size(), z.size());
    double acc = 0.0;
    for (size_t i = 0; i < x.size(); ++i)
        acc += x[i] * z[i];
    return acc;
}

double
squaredDistance(RowView x, RowView z)
{
    xproAssert(x.size() == z.size(), "vector size mismatch %zu vs %zu",
               x.size(), z.size());
    double acc = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
        const double d = x[i] - z[i];
        acc += d * d;
    }
    return acc;
}

double
Kernel::operator()(RowView x, RowView z) const
{
    switch (kind) {
      case KernelKind::Linear:
        return dotProduct(x, z);
      case KernelKind::Rbf:
        return std::exp(-gamma * squaredDistance(x, z));
    }
    panic("unknown kernel kind %d", static_cast<int>(kind));
}

FlatMatrix
Kernel::gram(const FlatMatrix &a, const FlatMatrix &b) const
{
    // One blocked cross-product pass gives every dot product; the
    // RBF then needs only the per-row squared norms on top.
    FlatMatrix out = a.multiplyTransposed(b);
    if (kind == KernelKind::Linear)
        return out;

    const std::vector<double> a_norms = a.rowSquaredNorms();
    const std::vector<double> b_norms = b.rowSquaredNorms();
    for (size_t i = 0; i < a.size(); ++i) {
        double *row = out.rowData(i);
        for (size_t j = 0; j < b.size(); ++j)
            row[j] = rbfFromParts(gamma, a_norms[i], b_norms[j],
                                  row[j]);
    }
    return out;
}

FlatMatrix
Kernel::gramSymmetric(const FlatMatrix &a) const
{
    const size_t n = a.size();
    const size_t dims = a.cols();
    FlatMatrix out(n, n, 0.0);
    const std::vector<double> norms =
        kind == KernelKind::Rbf ? a.rowSquaredNorms()
                                : std::vector<double>();

    // Fill the upper triangle, mirror the lower: half the kernel
    // evaluations of the dense rectangular path.
    for (size_t i = 0; i < n; ++i) {
        const double *ri = a.rowData(i);
        double *oi = out.rowData(i);
        for (size_t j = i; j < n; ++j) {
            const double *rj = a.rowData(j);
            double dot = 0.0;
            for (size_t k = 0; k < dims; ++k)
                dot += ri[k] * rj[k];
            const double value =
                kind == KernelKind::Rbf
                    ? rbfFromParts(gamma, norms[i], norms[j], dot)
                    : dot;
            oi[j] = value;
            out.rowData(j)[i] = value;
        }
    }
    return out;
}

std::string
Kernel::name() const
{
    if (kind == KernelKind::Linear)
        return "linear";
    return "rbf(gamma=" + std::to_string(gamma) + ")";
}

} // namespace xpro
