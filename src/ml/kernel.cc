#include "ml/kernel.hh"

#include <cmath>

#include "common/logging.hh"

namespace xpro
{

double
dotProduct(const std::vector<double> &x, const std::vector<double> &z)
{
    xproAssert(x.size() == z.size(), "vector size mismatch %zu vs %zu",
               x.size(), z.size());
    double acc = 0.0;
    for (size_t i = 0; i < x.size(); ++i)
        acc += x[i] * z[i];
    return acc;
}

double
squaredDistance(const std::vector<double> &x,
                const std::vector<double> &z)
{
    xproAssert(x.size() == z.size(), "vector size mismatch %zu vs %zu",
               x.size(), z.size());
    double acc = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
        const double d = x[i] - z[i];
        acc += d * d;
    }
    return acc;
}

double
Kernel::operator()(const std::vector<double> &x,
                   const std::vector<double> &z) const
{
    switch (kind) {
      case KernelKind::Linear:
        return dotProduct(x, z);
      case KernelKind::Rbf:
        return std::exp(-gamma * squaredDistance(x, z));
    }
    panic("unknown kernel kind %d", static_cast<int>(kind));
}

std::string
Kernel::name() const
{
    if (kind == KernelKind::Linear)
        return "linear";
    return "rbf(gamma=" + std::to_string(gamma) + ")";
}

} // namespace xpro
