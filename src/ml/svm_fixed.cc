#include "ml/svm_fixed.hh"

#include <limits>

#include "common/logging.hh"

namespace xpro
{

Fixed
fixedExpNeg(Fixed t)
{
    if (t.raw() <= 0)
        return Fixed::fromInt(1);

    // Range reduction: e^-t = 2^-(t * log2(e)) = 2^-(n + f),
    // n integer, f in [0, 1).
    static const Fixed log2e = Fixed::fromDouble(1.4426950408889634);
    const Fixed u = t * log2e;
    const int32_t n = u.toInt();
    if (n >= 31)
        return Fixed(); // underflows the Q16.16 grid
    const Fixed f = u - Fixed::fromInt(n);

    // 2^-f on [0, 1) via a least-squares cubic (max error ~1e-4):
    //   2^-f ~= 0.99990 - 0.69108 f + 0.23059 f^2 - 0.03951 f^3.
    static const Fixed c0 = Fixed::fromDouble(0.99989874);
    static const Fixed c1 = Fixed::fromDouble(-0.69107711);
    static const Fixed c2 = Fixed::fromDouble(0.23059481);
    static const Fixed c3 = Fixed::fromDouble(-0.03951021);
    const Fixed poly = c0 + f * (c1 + f * (c2 + f * c3));

    // Shift right by the integer part (a barrel shifter in the
    // hardware unit), rounding to nearest.
    if (n == 0)
        return poly;
    const int32_t raw = poly.raw();
    const int32_t shifted =
        (raw + (int32_t{1} << (n - 1))) >> n;
    return Fixed::fromRaw(shifted);
}

FixedSvm::FixedSvm(const Svm &model)
    : _dimension(model.dimension())
{
    xproAssert(model.kernel().kind == KernelKind::Rbf,
               "fixed inference implements the RBF kernel");
    _gamma = Fixed::fromDouble(model.kernel().gamma);
    _bias = Fixed::fromDouble(model.bias());
    _supportVectors.reserve(model.supportVectorCount());
    for (const auto &sv : model.supportVectors()) {
        std::vector<Fixed> q;
        q.reserve(sv.size());
        for (double v : sv)
            q.push_back(Fixed::fromDouble(v));
        _supportVectors.push_back(std::move(q));
    }
    _weights.reserve(model.weights().size());
    for (double w : model.weights())
        _weights.push_back(Fixed::fromDouble(w));
}

Fixed
FixedSvm::decision(const std::vector<Fixed> &x) const
{
    xproAssert(x.size() == _dimension,
               "input dimension %zu, model expects %zu", x.size(),
               _dimension);

    // Accumulate the weighted kernel sum in a wide register and
    // round once at the end, like the fusion adder tree.
    int64_t acc_raw = _bias.raw();
    for (size_t k = 0; k < _supportVectors.size(); ++k) {
        // Squared distance with a wide accumulator (Q32.32).
        int64_t dist_q32 = 0;
        const std::vector<Fixed> &sv = _supportVectors[k];
        for (size_t d = 0; d < _dimension; ++d) {
            const int64_t diff =
                static_cast<int64_t>(x[d].raw()) - sv[d].raw();
            dist_q32 += diff * diff;
        }
        const int64_t dist_q16 =
            (dist_q32 + (int64_t{1} << (Fixed::fracBits - 1))) >>
            Fixed::fracBits;
        const Fixed dist =
            dist_q16 > std::numeric_limits<int32_t>::max()
                ? Fixed::max()
                : Fixed::fromRaw(static_cast<int32_t>(dist_q16));

        const Fixed kernel = fixedExpNeg(_gamma * dist);
        acc_raw += (_weights[k] * kernel).raw();
    }
    if (acc_raw > std::numeric_limits<int32_t>::max())
        return Fixed::max();
    if (acc_raw < std::numeric_limits<int32_t>::min())
        return Fixed::min();
    return Fixed::fromRaw(static_cast<int32_t>(acc_raw));
}

} // namespace xpro
