/**
 * @file
 * Train/test splitting and k-fold cross-validation utilities
 * (paper Section 4.4: 75/25 random split, 10-fold cross-validation
 * on the training set).
 *
 * Fold composition is always drawn from the caller's Rng before any
 * training happens, and per-fold results are collected by fold
 * index, so crossValidatedAccuracy() returns bit-identical numbers
 * for any worker count.
 */

#ifndef XPRO_ML_CROSSVAL_HH
#define XPRO_ML_CROSSVAL_HH

#include <cstddef>
#include <vector>

#include "common/random.hh"
#include "ml/svm.hh"

namespace xpro
{

/** A train/test index split. */
struct Split
{
    std::vector<size_t> trainIndices;
    std::vector<size_t> testIndices;
};

/**
 * Random stratified split keeping the class balance: each class
 * contributes @p train_fraction of its members to the training set.
 */
Split stratifiedSplit(const std::vector<int> &labels,
                      double train_fraction, Rng &rng);

/**
 * Stratified k-fold partition: returns @p folds index sets of nearly
 * equal size, each with approximately the global class balance.
 */
std::vector<std::vector<size_t>>
stratifiedFolds(const std::vector<int> &labels, size_t folds, Rng &rng);

/** Materialize a subset of a dataset by indices. */
LabeledData subset(const LabeledData &data,
                   const std::vector<size_t> &indices);

/**
 * Mean k-fold cross-validated accuracy of an SVM configuration on a
 * dataset. The k held-out folds train independently, fanned out over
 * @p workers threads (0 = hardware concurrency, 1 = inline); the
 * result is identical for any worker count.
 */
double crossValidatedAccuracy(const LabeledData &data,
                              const SvmConfig &config, size_t folds,
                              Rng &rng, size_t workers = 1);

} // namespace xpro

#endif // XPRO_ML_CROSSVAL_HH
