/**
 * @file
 * Binary support vector machine trained with sequential minimal
 * optimization (SMO). This is the base classifier of the random
 * subspace ensemble (paper Section 2.1), and the number of support
 * vectors of a trained model drives the hardware cost of its SVM
 * functional cell.
 *
 * The hot path is batch-first: training consumes one symmetric Gram
 * matrix built in a single blocked pass, the SMO loop runs on a
 * cached error vector (no kernel evaluations inside the loop), and
 * inference over a whole dataset goes through decisionBatch(), which
 * evaluates the test-by-support-vector kernel block with the same
 * batched Gram builder. Per-sample decision() shares the exact
 * floating-point schedule, so batch and per-sample results are
 * bit-identical.
 */

#ifndef XPRO_ML_SVM_HH
#define XPRO_ML_SVM_HH

#include <cstddef>
#include <vector>

#include "common/matrix.hh"
#include "ml/kernel.hh"

namespace xpro
{

/** Labeled dataset: flat row-major features plus +-1 labels. */
struct LabeledData
{
    FlatMatrix rows;
    std::vector<int> labels;

    size_t size() const { return rows.size(); }
    size_t dimension() const { return rows.cols(); }
};

/** SVM training hyper-parameters. */
struct SvmConfig
{
    Kernel kernel;
    /** Soft-margin penalty. */
    double c = 1.0;
    /** KKT violation tolerance. */
    double tolerance = 1e-3;
    /** Stop after this many passes without alpha updates. */
    size_t maxPassesWithoutChange = 3;
    /** Hard cap on optimization sweeps. */
    size_t maxIterations = 200;
};

/** A trained binary SVM. */
class Svm
{
  public:
    /**
     * Train on @p data with labels in {-1, +1}. The data must
     * contain both classes.
     */
    static Svm train(const LabeledData &data, const SvmConfig &config);

    /** Signed decision value; positive means class +1. */
    double decision(RowView x) const;

    /** Predicted label in {-1, +1}. */
    int predict(RowView x) const;

    /** Decision values for every row of @p rows, batch-evaluated. */
    std::vector<double> decisionBatch(const FlatMatrix &rows) const;

    /** Predicted labels for every row of @p rows. */
    std::vector<int> predictBatch(const FlatMatrix &rows) const;

    /** Fraction of correct predictions on @p data. */
    double accuracy(const LabeledData &data) const;

    /** Number of support vectors retained. */
    size_t supportVectorCount() const { return _supportVectors.size(); }

    /** Input dimensionality. */
    size_t dimension() const { return _dimension; }

    const Kernel &kernel() const { return _kernel; }
    double bias() const { return _bias; }

    /** Stored support vectors (for quantized inference). */
    const FlatMatrix &
    supportVectors() const
    {
        return _supportVectors;
    }

    /** alpha_i * y_i weight per support vector. */
    const std::vector<double> &weights() const { return _weights; }

    /** Cached squared norm per support vector (RBF hot path). */
    const std::vector<double> &
    supportVectorNorms() const
    {
        return _svNorms;
    }

  private:
    Kernel _kernel;
    double _bias = 0.0;
    size_t _dimension = 0;
    FlatMatrix _supportVectors;
    /** Squared norm per support vector (batch RBF evaluation). */
    std::vector<double> _svNorms;
    /** alpha_i * y_i for each support vector. */
    std::vector<double> _weights;
};

} // namespace xpro

#endif // XPRO_ML_SVM_HH
