/**
 * @file
 * Fixed-point (Q16.16) RBF-SVM inference — the datapath of the
 * in-sensor SVM cells.
 *
 * A trained double-precision Svm is quantized (support vectors,
 * weights, bias, gamma) and evaluated entirely on the Q16.16 grid:
 * squared distances accumulate in a wide register, and the RBF
 * kernel's e^-t is computed with the shift-and-polynomial scheme an
 * S-ALU "super computation" unit implements (range reduction to
 * 2^-f on [0,1) plus a cubic polynomial). Together with dwt_fixed
 * and features_fixed this closes the hardware-faithful inference
 * path end to end; tests bound the decision disagreement against
 * the double model.
 */

#ifndef XPRO_ML_SVM_FIXED_HH
#define XPRO_ML_SVM_FIXED_HH

#include <vector>

#include "common/fixed_point.hh"
#include "ml/svm.hh"

namespace xpro
{

/**
 * e^-t on the Q16.16 grid for t >= 0 (negative inputs are clamped
 * to 0, i.e. return 1.0). Accuracy is a few 1e-4 across the useful
 * range; inputs beyond ~22 underflow to 0 exactly like the hardware
 * unit.
 */
Fixed fixedExpNeg(Fixed t);

/** A quantized RBF-SVM ready for fixed-point inference. */
class FixedSvm
{
  public:
    /** Quantize a trained double-precision model. */
    explicit FixedSvm(const Svm &model);

    /** Signed decision value on the Q16.16 grid. */
    Fixed decision(const std::vector<Fixed> &x) const;

    /** Predicted label in {-1, +1}. */
    int
    predict(const std::vector<Fixed> &x) const
    {
        return decision(x).raw() >= 0 ? 1 : -1;
    }

    size_t supportVectorCount() const { return _supportVectors.size(); }
    size_t dimension() const { return _dimension; }

  private:
    size_t _dimension;
    Fixed _gamma;
    Fixed _bias;
    std::vector<std::vector<Fixed>> _supportVectors;
    std::vector<Fixed> _weights;
};

} // namespace xpro

#endif // XPRO_ML_SVM_FIXED_HH
