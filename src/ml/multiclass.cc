#include "ml/multiclass.hh"

#include <algorithm>
#include <set>

#include "common/logging.hh"

namespace xpro
{

MultiClassSubspace
MultiClassSubspace::train(const MultiClassData &data,
                          const RandomSubspaceConfig &config)
{
    xproAssert(data.classCount >= 2, "need at least two classes");
    xproAssert(data.labels.size() == data.rows.size(),
               "label/row count mismatch");
    for (size_t label : data.labels)
        xproAssert(label < data.classCount, "label %zu out of range",
                   label);

    MultiClassSubspace model;
    model._perClass.reserve(data.classCount);
    for (size_t cls = 0; cls < data.classCount; ++cls) {
        LabeledData binary;
        binary.rows = data.rows;
        binary.labels.reserve(data.size());
        for (size_t label : data.labels)
            binary.labels.push_back(label == cls ? 1 : -1);

        RandomSubspaceConfig per_class = config;
        per_class.seed = config.seed ^ (0x9E37ull * (cls + 1));
        model._perClass.push_back(
            RandomSubspace::train(binary, per_class));
    }
    return model;
}

std::vector<double>
MultiClassSubspace::scores(RowView full_row) const
{
    xproAssert(!_perClass.empty(), "model not trained");
    std::vector<double> out;
    out.reserve(_perClass.size());
    for (const RandomSubspace &ensemble : _perClass)
        out.push_back(ensemble.score(full_row));
    return out;
}

size_t
MultiClassSubspace::predict(RowView full_row) const
{
    const std::vector<double> s = scores(full_row);
    return static_cast<size_t>(
        std::max_element(s.begin(), s.end()) - s.begin());
}

std::vector<size_t>
MultiClassSubspace::predictBatch(const FlatMatrix &full_rows) const
{
    xproAssert(!_perClass.empty(), "model not trained");
    // One batched score sweep per class ensemble, then argmax across
    // the per-class score columns.
    std::vector<std::vector<double>> per_class;
    per_class.reserve(_perClass.size());
    for (const RandomSubspace &ensemble : _perClass)
        per_class.push_back(ensemble.scoreBatch(full_rows));

    std::vector<size_t> out(full_rows.size(), 0);
    for (size_t i = 0; i < full_rows.size(); ++i) {
        size_t best = 0;
        for (size_t cls = 1; cls < per_class.size(); ++cls) {
            if (per_class[cls][i] > per_class[best][i])
                best = cls;
        }
        out[i] = best;
    }
    return out;
}

double
MultiClassSubspace::accuracy(const MultiClassData &data) const
{
    xproAssert(data.size() > 0, "accuracy on empty dataset");
    const std::vector<size_t> predicted = predictBatch(data.rows);
    size_t correct = 0;
    for (size_t i = 0; i < data.size(); ++i)
        correct += predicted[i] == data.labels[i];
    return static_cast<double>(correct) /
           static_cast<double>(data.size());
}

std::vector<size_t>
MultiClassSubspace::usedFeatureIndices() const
{
    std::set<size_t> used;
    for (const RandomSubspace &ensemble : _perClass) {
        const std::vector<size_t> indices =
            ensemble.usedFeatureIndices();
        used.insert(indices.begin(), indices.end());
    }
    return {used.begin(), used.end()};
}

} // namespace xpro
