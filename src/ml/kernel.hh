/**
 * @file
 * Kernel functions for the SVM base classifiers. The paper's
 * evaluation uses a binary SVM with a radial basis function kernel
 * (Section 4.4); the linear kernel is kept both for tests and because
 * prior in-sensor designs are linear-SVM-only (Section 1).
 *
 * Besides the pairwise form, kernels evaluate in batch over flat
 * row-major matrices: the RBF Gram matrix is assembled from per-row
 * squared norms and one blocked cross-product pass,
 * K(i,j) = exp(-gamma * (|xi|^2 + |xj|^2 - 2 xi.xj)), which is what
 * both SMO training and whole-test-set inference consume.
 */

#ifndef XPRO_ML_KERNEL_HH
#define XPRO_ML_KERNEL_HH

#include <cmath>
#include <cstddef>
#include <string>

#include "common/matrix.hh"

namespace xpro
{

/** Kernel family. */
enum class KernelKind
{
    Linear,
    Rbf,
};

/**
 * RBF value from precomputed parts: squared norms of both operands
 * plus their dot product. The batched Gram builders and the
 * per-sample decision path share this helper (with identically
 * ordered dot products), so batch and per-sample results are
 * bit-identical.
 */
inline double
rbfFromParts(double gamma, double x_norm, double z_norm, double dot)
{
    return std::exp(-gamma * (x_norm + z_norm - 2.0 * dot));
}

/** Kernel configuration: family plus RBF width. */
struct Kernel
{
    KernelKind kind = KernelKind::Rbf;
    /** RBF gamma in K(x,z) = exp(-gamma * |x - z|^2). */
    double gamma = 1.0;

    /** Evaluate the kernel on two equally sized rows. */
    double operator()(RowView x, RowView z) const;

    /**
     * Batched Gram matrix K(i,j) = kernel(a[i], b[j]) over two flat
     * row matrices with matching widths.
     */
    FlatMatrix gram(const FlatMatrix &a, const FlatMatrix &b) const;

    /**
     * Self-Gram K(i,j) = kernel(a[i], a[j]). Exploits symmetry:
     * only the upper triangle is evaluated, the lower is mirrored.
     */
    FlatMatrix gramSymmetric(const FlatMatrix &a) const;

    /** Display name, e.g. "rbf(gamma=0.5)". */
    std::string name() const;
};

/** Squared Euclidean distance between two equally sized rows. */
double squaredDistance(RowView x, RowView z);

/** Dot product of two equally sized rows. */
double dotProduct(RowView x, RowView z);

} // namespace xpro

#endif // XPRO_ML_KERNEL_HH
