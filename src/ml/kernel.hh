/**
 * @file
 * Kernel functions for the SVM base classifiers. The paper's
 * evaluation uses a binary SVM with a radial basis function kernel
 * (Section 4.4); the linear kernel is kept both for tests and because
 * prior in-sensor designs are linear-SVM-only (Section 1).
 */

#ifndef XPRO_ML_KERNEL_HH
#define XPRO_ML_KERNEL_HH

#include <cstddef>
#include <string>
#include <vector>

namespace xpro
{

/** Kernel family. */
enum class KernelKind
{
    Linear,
    Rbf,
};

/** Kernel configuration: family plus RBF width. */
struct Kernel
{
    KernelKind kind = KernelKind::Rbf;
    /** RBF gamma in K(x,z) = exp(-gamma * |x - z|^2). */
    double gamma = 1.0;

    /** Evaluate the kernel on two equally sized vectors. */
    double operator()(const std::vector<double> &x,
                      const std::vector<double> &z) const;

    /** Display name, e.g. "rbf(gamma=0.5)". */
    std::string name() const;
};

/** Squared Euclidean distance between two equally sized vectors. */
double squaredDistance(const std::vector<double> &x,
                       const std::vector<double> &z);

/** Dot product of two equally sized vectors. */
double dotProduct(const std::vector<double> &x,
                  const std::vector<double> &z);

} // namespace xpro

#endif // XPRO_ML_KERNEL_HH
