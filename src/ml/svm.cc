#include "ml/svm.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"

namespace xpro
{

Svm
Svm::train(const LabeledData &data, const SvmConfig &config)
{
    const size_t n = data.size();
    xproAssert(n >= 2, "SVM training needs at least two samples");
    xproAssert(data.labels.size() == n, "label/row count mismatch");
    bool has_pos = false;
    bool has_neg = false;
    for (int label : data.labels) {
        xproAssert(label == 1 || label == -1,
                   "labels must be +-1, got %d", label);
        has_pos |= label == 1;
        has_neg |= label == -1;
    }
    if (!has_pos || !has_neg)
        fatal("SVM training data must contain both classes");

    // One batched pass builds the full training Gram (upper triangle
    // evaluated, lower mirrored); the SMO loop below never calls the
    // kernel again.
    const FlatMatrix gram = config.kernel.gramSymmetric(data.rows);

    // Simplified SMO (Platt 1998 as in the CS229 formulation):
    // repeatedly pick KKT-violating multipliers and optimize pairs
    // analytically. error[k] caches f(x_k) - y_k and is updated
    // incrementally after every successful pair step, so candidate
    // screening is O(1) per sample instead of a fresh O(n) decision
    // sum.
    std::vector<double> alpha(n, 0.0);
    std::vector<double> error(n);
    for (size_t k = 0; k < n; ++k)
        error[k] = -static_cast<double>(data.labels[k]);
    double bias = 0.0;
    Rng rng(0xC0FFEE);

    size_t quiet_passes = 0;
    size_t iterations = 0;
    while (quiet_passes < config.maxPassesWithoutChange &&
           iterations < config.maxIterations) {
        ++iterations;
        size_t changed = 0;
        for (size_t i = 0; i < n; ++i) {
            const double error_i = error[i];
            const bool violates =
                (data.labels[i] * error_i < -config.tolerance &&
                 alpha[i] < config.c) ||
                (data.labels[i] * error_i > config.tolerance &&
                 alpha[i] > 0.0);
            if (!violates)
                continue;

            // Pick a random second multiplier distinct from i.
            size_t j = static_cast<size_t>(rng.below(n - 1));
            if (j >= i)
                ++j;
            const double error_j = error[j];

            const double alpha_i_old = alpha[i];
            const double alpha_j_old = alpha[j];

            double low;
            double high;
            if (data.labels[i] != data.labels[j]) {
                low = std::max(0.0, alpha[j] - alpha[i]);
                high = std::min(config.c,
                                config.c + alpha[j] - alpha[i]);
            } else {
                low = std::max(0.0, alpha[i] + alpha[j] - config.c);
                high = std::min(config.c, alpha[i] + alpha[j]);
            }
            if (high - low < 1e-12)
                continue;

            const double k_ii = gram.row(i)[i];
            const double k_jj = gram.row(j)[j];
            const double k_ij = gram.row(i)[j];
            const double eta = 2.0 * k_ij - k_ii - k_jj;
            if (eta >= -1e-12)
                continue;

            double alpha_j_new =
                alpha_j_old -
                data.labels[j] * (error_i - error_j) / eta;
            alpha_j_new = std::clamp(alpha_j_new, low, high);
            if (std::fabs(alpha_j_new - alpha_j_old) < 1e-7)
                continue;

            const double alpha_i_new =
                alpha_i_old + data.labels[i] * data.labels[j] *
                                  (alpha_j_old - alpha_j_new);
            alpha[i] = alpha_i_new;
            alpha[j] = alpha_j_new;

            const double b1 =
                bias - error_i -
                data.labels[i] * (alpha_i_new - alpha_i_old) * k_ii -
                data.labels[j] * (alpha_j_new - alpha_j_old) * k_ij;
            const double b2 =
                bias - error_j -
                data.labels[i] * (alpha_i_new - alpha_i_old) * k_ij -
                data.labels[j] * (alpha_j_new - alpha_j_old) * k_jj;
            double bias_new;
            if (alpha_i_new > 0.0 && alpha_i_new < config.c) {
                bias_new = b1;
            } else if (alpha_j_new > 0.0 && alpha_j_new < config.c) {
                bias_new = b2;
            } else {
                bias_new = 0.5 * (b1 + b2);
            }

            // Propagate the pair step into the cached errors: the
            // decision function moved by the two weighted kernel
            // rows plus the bias shift.
            const double delta_i =
                (alpha_i_new - alpha_i_old) * data.labels[i];
            const double delta_j =
                (alpha_j_new - alpha_j_old) * data.labels[j];
            const double delta_b = bias_new - bias;
            const double *row_i = gram.rowData(i);
            const double *row_j = gram.rowData(j);
            for (size_t k = 0; k < n; ++k) {
                error[k] += delta_i * row_i[k] + delta_j * row_j[k] +
                            delta_b;
            }
            bias = bias_new;
            ++changed;
        }
        quiet_passes = changed == 0 ? quiet_passes + 1 : 0;
    }

    Svm model;
    model._kernel = config.kernel;
    model._bias = bias;
    model._dimension = data.dimension();
    for (size_t i = 0; i < n; ++i) {
        if (alpha[i] > 1e-9) {
            model._supportVectors.push_back(data.rows[i]);
            model._weights.push_back(alpha[i] * data.labels[i]);
        }
    }
    model._svNorms = model._supportVectors.rowSquaredNorms();
    // Degenerate but possible on separable data with loose
    // tolerances: keep the model usable as a constant classifier.
    if (model._supportVectors.empty())
        warn("SVM training produced no support vectors");
    return model;
}

double
Svm::decision(RowView x) const
{
    xproAssert(x.size() == _dimension,
               "input dimension %zu, model expects %zu", x.size(),
               _dimension);
    double acc = _bias;
    if (_kernel.kind == KernelKind::Rbf) {
        // Same norm-expansion schedule as the batched Gram path:
        // |x|^2 once, then one dot product per support vector.
        double x_norm = 0.0;
        for (size_t d = 0; d < _dimension; ++d)
            x_norm += x[d] * x[d];
        for (size_t k = 0; k < _supportVectors.size(); ++k) {
            const double *sv = _supportVectors.rowData(k);
            double dot = 0.0;
            for (size_t d = 0; d < _dimension; ++d)
                dot += x[d] * sv[d];
            acc += _weights[k] *
                   rbfFromParts(_kernel.gamma, x_norm, _svNorms[k],
                                dot);
        }
    } else {
        for (size_t k = 0; k < _supportVectors.size(); ++k)
            acc += _weights[k] * dotProduct(x, _supportVectors[k]);
    }
    return acc;
}

int
Svm::predict(RowView x) const
{
    return decision(x) >= 0.0 ? 1 : -1;
}

std::vector<double>
Svm::decisionBatch(const FlatMatrix &rows) const
{
    xproAssert(rows.empty() || rows.cols() == _dimension,
               "input dimension %zu, model expects %zu", rows.cols(),
               _dimension);
    std::vector<double> out(rows.size(), _bias);
    if (_supportVectors.empty())
        return out;

    // K(test, SV) in one batched pass, then a weighted row sum.
    const FlatMatrix k = _kernel.gram(rows, _supportVectors);
    const size_t m = _supportVectors.size();
    for (size_t i = 0; i < rows.size(); ++i) {
        const double *row = k.rowData(i);
        double acc = _bias;
        for (size_t j = 0; j < m; ++j)
            acc += _weights[j] * row[j];
        out[i] = acc;
    }
    return out;
}

std::vector<int>
Svm::predictBatch(const FlatMatrix &rows) const
{
    const std::vector<double> decisions = decisionBatch(rows);
    std::vector<int> out(decisions.size());
    for (size_t i = 0; i < decisions.size(); ++i)
        out[i] = decisions[i] >= 0.0 ? 1 : -1;
    return out;
}

double
Svm::accuracy(const LabeledData &data) const
{
    xproAssert(data.size() > 0, "accuracy on empty dataset");
    const std::vector<int> predicted = predictBatch(data.rows);
    size_t correct = 0;
    for (size_t i = 0; i < data.size(); ++i)
        correct += predicted[i] == data.labels[i];
    return static_cast<double>(correct) /
           static_cast<double>(data.size());
}

} // namespace xpro
