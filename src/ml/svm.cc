#include "ml/svm.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"

namespace xpro
{

namespace
{

/** Dense kernel matrix for small training sets. */
class KernelMatrix
{
  public:
    KernelMatrix(const LabeledData &data, const Kernel &kernel)
        : _n(data.size()), _values(_n * _n)
    {
        for (size_t i = 0; i < _n; ++i) {
            for (size_t j = i; j < _n; ++j) {
                const double k = kernel(data.rows[i], data.rows[j]);
                _values[i * _n + j] = k;
                _values[j * _n + i] = k;
            }
        }
    }

    double at(size_t i, size_t j) const { return _values[i * _n + j]; }

  private:
    size_t _n;
    std::vector<double> _values;
};

} // namespace

Svm
Svm::train(const LabeledData &data, const SvmConfig &config)
{
    const size_t n = data.size();
    xproAssert(n >= 2, "SVM training needs at least two samples");
    xproAssert(data.labels.size() == n, "label/row count mismatch");
    bool has_pos = false;
    bool has_neg = false;
    for (int label : data.labels) {
        xproAssert(label == 1 || label == -1,
                   "labels must be +-1, got %d", label);
        has_pos |= label == 1;
        has_neg |= label == -1;
    }
    if (!has_pos || !has_neg)
        fatal("SVM training data must contain both classes");

    const KernelMatrix gram(data, config.kernel);

    // Simplified SMO (Platt 1998 as in the CS229 formulation):
    // repeatedly pick KKT-violating multipliers and optimize pairs
    // analytically.
    std::vector<double> alpha(n, 0.0);
    double bias = 0.0;
    Rng rng(0xC0FFEE);

    auto decision_on_train = [&](size_t i) {
        double acc = bias;
        for (size_t k = 0; k < n; ++k) {
            if (alpha[k] > 0.0)
                acc += alpha[k] * data.labels[k] * gram.at(k, i);
        }
        return acc;
    };

    size_t quiet_passes = 0;
    size_t iterations = 0;
    while (quiet_passes < config.maxPassesWithoutChange &&
           iterations < config.maxIterations) {
        ++iterations;
        size_t changed = 0;
        for (size_t i = 0; i < n; ++i) {
            const double error_i =
                decision_on_train(i) - data.labels[i];
            const bool violates =
                (data.labels[i] * error_i < -config.tolerance &&
                 alpha[i] < config.c) ||
                (data.labels[i] * error_i > config.tolerance &&
                 alpha[i] > 0.0);
            if (!violates)
                continue;

            // Pick a random second multiplier distinct from i.
            size_t j = static_cast<size_t>(rng.below(n - 1));
            if (j >= i)
                ++j;
            const double error_j =
                decision_on_train(j) - data.labels[j];

            const double alpha_i_old = alpha[i];
            const double alpha_j_old = alpha[j];

            double low;
            double high;
            if (data.labels[i] != data.labels[j]) {
                low = std::max(0.0, alpha[j] - alpha[i]);
                high = std::min(config.c,
                                config.c + alpha[j] - alpha[i]);
            } else {
                low = std::max(0.0, alpha[i] + alpha[j] - config.c);
                high = std::min(config.c, alpha[i] + alpha[j]);
            }
            if (high - low < 1e-12)
                continue;

            const double eta = 2.0 * gram.at(i, j) - gram.at(i, i) -
                               gram.at(j, j);
            if (eta >= -1e-12)
                continue;

            double alpha_j_new =
                alpha_j_old -
                data.labels[j] * (error_i - error_j) / eta;
            alpha_j_new = std::clamp(alpha_j_new, low, high);
            if (std::fabs(alpha_j_new - alpha_j_old) < 1e-7)
                continue;

            const double alpha_i_new =
                alpha_i_old + data.labels[i] * data.labels[j] *
                                  (alpha_j_old - alpha_j_new);
            alpha[i] = alpha_i_new;
            alpha[j] = alpha_j_new;

            const double b1 =
                bias - error_i -
                data.labels[i] * (alpha_i_new - alpha_i_old) *
                    gram.at(i, i) -
                data.labels[j] * (alpha_j_new - alpha_j_old) *
                    gram.at(i, j);
            const double b2 =
                bias - error_j -
                data.labels[i] * (alpha_i_new - alpha_i_old) *
                    gram.at(i, j) -
                data.labels[j] * (alpha_j_new - alpha_j_old) *
                    gram.at(j, j);
            if (alpha_i_new > 0.0 && alpha_i_new < config.c) {
                bias = b1;
            } else if (alpha_j_new > 0.0 && alpha_j_new < config.c) {
                bias = b2;
            } else {
                bias = 0.5 * (b1 + b2);
            }
            ++changed;
        }
        quiet_passes = changed == 0 ? quiet_passes + 1 : 0;
    }

    Svm model;
    model._kernel = config.kernel;
    model._bias = bias;
    model._dimension = data.dimension();
    for (size_t i = 0; i < n; ++i) {
        if (alpha[i] > 1e-9) {
            model._supportVectors.push_back(data.rows[i]);
            model._weights.push_back(alpha[i] * data.labels[i]);
        }
    }
    // Degenerate but possible on separable data with loose
    // tolerances: keep the model usable as a constant classifier.
    if (model._supportVectors.empty())
        warn("SVM training produced no support vectors");
    return model;
}

double
Svm::decision(const std::vector<double> &x) const
{
    xproAssert(x.size() == _dimension,
               "input dimension %zu, model expects %zu", x.size(),
               _dimension);
    double acc = _bias;
    for (size_t k = 0; k < _supportVectors.size(); ++k)
        acc += _weights[k] * _kernel(_supportVectors[k], x);
    return acc;
}

int
Svm::predict(const std::vector<double> &x) const
{
    return decision(x) >= 0.0 ? 1 : -1;
}

double
Svm::accuracy(const LabeledData &data) const
{
    xproAssert(data.size() > 0, "accuracy on empty dataset");
    size_t correct = 0;
    for (size_t i = 0; i < data.size(); ++i)
        correct += predict(data.rows[i]) == data.labels[i];
    return static_cast<double>(correct) /
           static_cast<double>(data.size());
}

} // namespace xpro
