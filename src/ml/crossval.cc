#include "ml/crossval.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/worker_pool.hh"

namespace xpro
{

namespace
{

/** Indices of each class, shuffled. */
std::pair<std::vector<size_t>, std::vector<size_t>>
shuffledClassIndices(const std::vector<int> &labels, Rng &rng)
{
    std::vector<size_t> pos;
    std::vector<size_t> neg;
    for (size_t i = 0; i < labels.size(); ++i)
        (labels[i] == 1 ? pos : neg).push_back(i);
    rng.shuffle(pos);
    rng.shuffle(neg);
    return {std::move(pos), std::move(neg)};
}

} // namespace

Split
stratifiedSplit(const std::vector<int> &labels, double train_fraction,
                Rng &rng)
{
    xproAssert(train_fraction > 0.0 && train_fraction < 1.0,
               "train fraction %f out of (0,1)", train_fraction);
    auto [pos, neg] = shuffledClassIndices(labels, rng);

    Split split;
    for (const std::vector<size_t> *group : {&pos, &neg}) {
        const size_t train_count = static_cast<size_t>(
            train_fraction * static_cast<double>(group->size()) + 0.5);
        for (size_t i = 0; i < group->size(); ++i) {
            if (i < train_count)
                split.trainIndices.push_back((*group)[i]);
            else
                split.testIndices.push_back((*group)[i]);
        }
    }
    rng.shuffle(split.trainIndices);
    rng.shuffle(split.testIndices);
    return split;
}

std::vector<std::vector<size_t>>
stratifiedFolds(const std::vector<int> &labels, size_t folds, Rng &rng)
{
    xproAssert(folds >= 2, "need at least two folds, got %zu", folds);
    auto [pos, neg] = shuffledClassIndices(labels, rng);

    std::vector<std::vector<size_t>> result(folds);
    size_t next = 0;
    for (const std::vector<size_t> *group : {&pos, &neg}) {
        for (size_t idx : *group) {
            result[next % folds].push_back(idx);
            ++next;
        }
    }
    return result;
}

LabeledData
subset(const LabeledData &data, const std::vector<size_t> &indices)
{
    LabeledData out;
    out.rows = FlatMatrix(0, data.rows.cols());
    out.rows.reserve(indices.size());
    out.labels.reserve(indices.size());
    for (size_t idx : indices) {
        xproAssert(idx < data.size(), "subset index %zu out of range",
                   idx);
        out.rows.push_back(data.rows[idx]);
        out.labels.push_back(data.labels[idx]);
    }
    return out;
}

double
crossValidatedAccuracy(const LabeledData &data, const SvmConfig &config,
                       size_t folds, Rng &rng, size_t workers)
{
    // Fold composition is fixed here, before any training, so the
    // parallel fan-out below cannot perturb it.
    const std::vector<std::vector<size_t>> parts =
        stratifiedFolds(data.labels, folds, rng);

    // Each held-out fold trains independently; results are keyed by
    // fold index (NaN marks a skipped fold), making the reduction
    // identical for any worker count.
    WorkerPool pool(resolveWorkerCount(workers));
    const std::vector<double> fold_accuracy = pool.map<double>(
        folds, [&](size_t held_out) -> double {
            std::vector<size_t> train_idx;
            for (size_t f = 0; f < folds; ++f) {
                if (f == held_out)
                    continue;
                train_idx.insert(train_idx.end(), parts[f].begin(),
                                 parts[f].end());
            }
            const LabeledData train = subset(data, train_idx);
            const LabeledData test = subset(data, parts[held_out]);
            if (test.size() == 0)
                return std::nan("");
            // Skip degenerate folds missing a class.
            const bool trainable =
                std::count(train.labels.begin(), train.labels.end(),
                           1) > 0 &&
                std::count(train.labels.begin(), train.labels.end(),
                           -1) > 0;
            if (!trainable)
                return std::nan("");
            const Svm model = Svm::train(train, config);
            return model.accuracy(test);
        });

    double accuracy_sum = 0.0;
    size_t evaluated = 0;
    for (double acc : fold_accuracy) {
        if (std::isnan(acc))
            continue;
        accuracy_sum += acc;
        ++evaluated;
    }
    if (evaluated == 0)
        fatal("cross-validation had no usable folds");
    return accuracy_sum / static_cast<double>(evaluated);
}

} // namespace xpro
