#include "ml/random_subspace.hh"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/logging.hh"
#include "common/matrix.hh"
#include "ml/crossval.hh"

namespace xpro
{

std::vector<double>
RandomSubspace::project(const std::vector<double> &full_row,
                        const std::vector<size_t> &indices)
{
    std::vector<double> out;
    out.reserve(indices.size());
    for (size_t idx : indices) {
        xproAssert(idx < full_row.size(),
                   "feature index %zu out of range", idx);
        out.push_back(full_row[idx]);
    }
    return out;
}

RandomSubspace
RandomSubspace::train(const LabeledData &data,
                      const RandomSubspaceConfig &config)
{
    xproAssert(config.candidates > 0, "need at least one candidate");
    xproAssert(config.keepFraction > 0.0 && config.keepFraction <= 1.0,
               "keep fraction %f out of (0,1]", config.keepFraction);
    const size_t pool = data.dimension();
    xproAssert(config.subspaceDimension <= pool,
               "subspace dimension %zu exceeds pool %zu",
               config.subspaceDimension, pool);

    Rng rng(config.seed);

    // Hold out a validation part of the training data for candidate
    // selection so accuracies are not measured on the fit set.
    const Split split = stratifiedSplit(data.labels, 0.8, rng);
    const LabeledData fit_set = subset(data, split.trainIndices);
    const LabeledData val_set = subset(data, split.testIndices);

    std::vector<BaseClassifier> candidates;
    candidates.reserve(config.candidates);
    for (size_t c = 0; c < config.candidates; ++c) {
        BaseClassifier base;
        base.featureIndices =
            rng.sampleWithoutReplacement(pool, config.subspaceDimension);
        std::sort(base.featureIndices.begin(),
                  base.featureIndices.end());

        LabeledData projected;
        projected.labels = fit_set.labels;
        projected.rows.reserve(fit_set.size());
        for (const auto &row : fit_set.rows)
            projected.rows.push_back(project(row, base.featureIndices));

        base.model = Svm::train(projected, config.svm);

        LabeledData val_projected;
        val_projected.labels = val_set.labels;
        for (const auto &row : val_set.rows)
            val_projected.rows.push_back(
                project(row, base.featureIndices));
        base.validationAccuracy =
            val_projected.size() > 0
                ? base.model.accuracy(val_projected)
                : 0.5;
        candidates.push_back(std::move(base));
    }

    // Keep the top fraction by validation accuracy.
    const size_t keep = std::max<size_t>(
        1, static_cast<size_t>(std::lround(
               config.keepFraction *
               static_cast<double>(config.candidates))));
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const BaseClassifier &a, const BaseClassifier &b) {
                         return a.validationAccuracy >
                                b.validationAccuracy;
                     });
    candidates.resize(std::min(keep, candidates.size()));

    RandomSubspace ensemble;
    ensemble._bases = std::move(candidates);

    // Least-squares voting weights: regress the +-1 label on the
    // base decision signs over the whole training set (weighted
    // voting trained by least squares, paper Section 4.4).
    const size_t members = ensemble._bases.size();
    Matrix design(data.size(), members + 1);
    Matrix target(data.size(), 1);
    for (size_t i = 0; i < data.size(); ++i) {
        for (size_t m = 0; m < members; ++m) {
            const BaseClassifier &base = ensemble._bases[m];
            const int vote = base.model.predict(
                project(data.rows[i], base.featureIndices));
            design(i, m) = static_cast<double>(vote);
        }
        design(i, members) = 1.0; // bias column
        target(i, 0) = static_cast<double>(data.labels[i]);
    }
    const Matrix weights =
        Matrix::leastSquares(design, target, config.fusionRidge);
    ensemble._weights.resize(members);
    for (size_t m = 0; m < members; ++m)
        ensemble._weights[m] = weights(m, 0);
    ensemble._weightBias = weights(members, 0);
    return ensemble;
}

double
RandomSubspace::score(const std::vector<double> &full_row) const
{
    xproAssert(!_bases.empty(), "ensemble not trained");
    double acc = _weightBias;
    for (size_t m = 0; m < _bases.size(); ++m) {
        const int vote = _bases[m].model.predict(
            project(full_row, _bases[m].featureIndices));
        acc += _weights[m] * static_cast<double>(vote);
    }
    return acc;
}

int
RandomSubspace::predict(const std::vector<double> &full_row) const
{
    return score(full_row) >= 0.0 ? 1 : -1;
}

double
RandomSubspace::accuracy(const LabeledData &data) const
{
    xproAssert(data.size() > 0, "accuracy on empty dataset");
    size_t correct = 0;
    for (size_t i = 0; i < data.size(); ++i)
        correct += predict(data.rows[i]) == data.labels[i];
    return static_cast<double>(correct) /
           static_cast<double>(data.size());
}

std::vector<size_t>
RandomSubspace::usedFeatureIndices() const
{
    std::set<size_t> used;
    for (const BaseClassifier &base : _bases)
        used.insert(base.featureIndices.begin(),
                    base.featureIndices.end());
    return {used.begin(), used.end()};
}

} // namespace xpro
